//===- tools/dra-opt.cpp - Command-line pipeline driver -------------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// A small `opt`-style driver: reads functions in the textual IR syntax
// (see src/ir/Parser.h), runs one of the five allocation pipelines, and
// prints the resulting machine code, statistics, and (optionally) the
// simulated execution profile. Useful for poking at the encoder with
// hand-written programs. Multiple input files are compiled as one batch
// on a worker pool (--jobs) and can dump a Chrome trace (--trace-out).
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "core/BinaryEmitter.h"
#include "core/Pipeline.h"
#include "driver/BatchCompiler.h"
#include "driver/ResultCache.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "opt/ConstantFold.h"
#include "opt/DeadCode.h"
#include "opt/SimplifyCfg.h"
#include "sim/LowEndSim.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-opt [options] [input.dra ...]\n"
    "\n"
    "Reads functions in the textual IR syntax (stdin when no file is\n"
    "given), runs one of the five allocation pipelines on each, and\n"
    "prints statistics. Multiple inputs are compiled as one batch.\n"
    "\n"
    "pipeline options:\n"
    "  --scheme=NAME      baseline|ospill|remap|select|coalesce\n"
    "                     (default coalesce)\n"
    "  --baseline-k=N     registers of the unmodified ISA (default 8)\n"
    "  --regn=N           differential registers (default 12)\n"
    "  --diffn=N          difference codes (default 8)\n"
    "  --diffw=N          field width in bits (default 3)\n"
    "  --remap-starts=N   remapping restarts (default 200)\n"
    "  --remap-jobs=N     shard the multi-start remap search over N pool\n"
    "                     workers (default 1; 0 = hardware concurrency;\n"
    "                     results are bit-identical at any value)\n"
    "  --adaptive         Section 8.2 selective enabling\n"
    "  --cleanup          run fold/simplify/DCE before allocation\n"
    "\n"
    "portfolio options:\n"
    "  --portfolio=MODE   off (default) | race (race the scheme\n"
    "                     portfolio per function, commit the\n"
    "                     deterministic winner) | choose (consult the\n"
    "                     --portfolio-table chooser, race on low\n"
    "                     confidence); overrides --scheme\n"
    "  --portfolio-jobs=N workers per race (default 1; 0 = one per\n"
    "                     arm; results bit-identical at any N)\n"
    "  --portfolio-table=FILE\n"
    "                     portfolio-v1 decision table (dra-tune\n"
    "                     output) for --portfolio=choose\n"
    "  --min-confidence=F race instead of trusting the chooser below\n"
    "                     this leaf confidence (default 0.75)\n"
    "\n"
    "driver options:\n"
    "  --jobs=N           compile inputs on N pool workers\n"
    "                     (default 1; 0 = hardware concurrency)\n"
    "  --trace-out=FILE   write a Chrome trace-event JSON of the batch\n"
    "                     (open in chrome://tracing or ui.perfetto.dev)\n"
    "  --metrics-out=FILE write allocator-deep metrics (counters, gauges,\n"
    "                     stage histograms) as dra-metrics-v1 JSON;\n"
    "                     compare runs with dra-stats\n"
    "  --cache-dir=DIR    persistent content-addressed result cache\n"
    "                     (dra-cache-v1 entries; stale/corrupt entries\n"
    "                     quarantine as misses, never errors)\n"
    "  --cache-mem-mb=N   in-memory cache tier budget in MiB (default 64;\n"
    "                     implies caching even without --cache-dir)\n"
    "  --cache-verify=F   recompile fraction F (0..1) of cache hits and\n"
    "                     compare byte-for-byte (exit 1 on mismatch)\n"
    "\n"
    "output options:\n"
    "  --simulate         run the pipeline model and print cycles\n"
    "  --print-code       print the resulting function\n"
    "  --emit-size        print bit-exact binary sizes (direct vs diff)\n"
    "  --help             show this text\n"
    "\n"
    "exit status: 0 on success, 1 when any pipeline changes semantics or\n"
    "an input fails to parse, 2 on a command-line error.\n";

struct Options {
  Scheme S = Scheme::Coalesce;
  unsigned BaselineK = 8;
  unsigned RegN = 12;
  unsigned DiffN = 8;
  unsigned DiffW = 3;
  unsigned RemapStarts = 200;
  unsigned RemapJobs = 1;
  unsigned Jobs = 1;
  PortfolioMode Portfolio = PortfolioMode::Off;
  unsigned PortfolioJobs = 1;
  std::string PortfolioTable;
  double MinConfidence = 0.75;
  bool Adaptive = false;
  bool Cleanup = false;
  bool Simulate = false;
  bool PrintCode = false;
  bool EmitSize = false;
  bool Help = false;
  std::string TraceOut;
  std::string MetricsOut;
  std::string CacheDir;
  unsigned CacheMemMb = 64;
  double CacheVerify = 0;
  bool UseCache = false;
  std::vector<std::string> InputFiles;
};

bool parseScheme(const std::string &Name, Scheme &Out) {
  if (Name == "baseline")
    Out = Scheme::Baseline;
  else if (Name == "ospill")
    Out = Scheme::OSpill;
  else if (Name == "remap")
    Out = Scheme::Remap;
  else if (Name == "select")
    Out = Scheme::Select;
  else if (Name == "coalesce")
    Out = Scheme::Coalesce;
  else
    return false;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--scheme=")) {
      if (!parseScheme(V, O.S)) {
        std::fprintf(stderr, "error: unknown scheme '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--baseline-k=")) {
      if (!cli::parseUnsigned("--baseline-k", V, O.BaselineK))
        return false;
    } else if (const char *V = Value("--regn=")) {
      if (!cli::parseUnsigned("--regn", V, O.RegN))
        return false;
    } else if (const char *V = Value("--diffn=")) {
      if (!cli::parseUnsigned("--diffn", V, O.DiffN))
        return false;
    } else if (const char *V = Value("--diffw=")) {
      if (!cli::parseUnsigned("--diffw", V, O.DiffW))
        return false;
    } else if (const char *V = Value("--remap-starts=")) {
      if (!cli::parseUnsigned("--remap-starts", V, O.RemapStarts))
        return false;
    } else if (const char *V = Value("--remap-jobs=")) {
      if (!cli::parseUnsigned("--remap-jobs", V, O.RemapJobs))
        return false;
      if (O.RemapJobs == 0)
        O.RemapJobs = std::thread::hardware_concurrency();
    } else if (const char *V = Value("--jobs=")) {
      if (!cli::parseUnsigned("--jobs", V, O.Jobs))
        return false;
    } else if (const char *V = Value("--portfolio=")) {
      if (!parsePortfolioMode(V, O.Portfolio)) {
        std::fprintf(stderr,
                     "error: --portfolio must be off, race, or choose\n");
        return false;
      }
    } else if (const char *V = Value("--portfolio-jobs=")) {
      if (!cli::parseUnsigned("--portfolio-jobs", V, O.PortfolioJobs))
        return false;
    } else if (const char *V = Value("--portfolio-table=")) {
      O.PortfolioTable = V;
    } else if (const char *V = Value("--min-confidence=")) {
      if (!cli::parseDouble("--min-confidence", V, O.MinConfidence))
        return false;
      if (O.MinConfidence < 0 || O.MinConfidence > 1) {
        std::fprintf(stderr, "error: --min-confidence must be in [0, 1]\n");
        return false;
      }
    } else if (const char *V = Value("--trace-out=")) {
      O.TraceOut = V;
    } else if (const char *V = Value("--metrics-out=")) {
      O.MetricsOut = V;
    } else if (const char *V = Value("--cache-dir=")) {
      O.CacheDir = V;
      O.UseCache = true;
    } else if (const char *V = Value("--cache-mem-mb=")) {
      if (!cli::parseUnsigned("--cache-mem-mb", V, O.CacheMemMb))
        return false;
      O.UseCache = true;
    } else if (const char *V = Value("--cache-verify=")) {
      if (!cli::parseDouble("--cache-verify", V, O.CacheVerify))
        return false;
      if (O.CacheVerify < 0 || O.CacheVerify > 1) {
        std::fprintf(stderr, "error: --cache-verify must be in [0, 1]\n");
        return false;
      }
      O.UseCache = true;
    } else if (Arg == "--adaptive") {
      O.Adaptive = true;
    } else if (Arg == "--cleanup") {
      O.Cleanup = true;
    } else if (Arg == "--simulate") {
      O.Simulate = true;
    } else if (Arg == "--print-code") {
      O.PrintCode = true;
    } else if (Arg == "--emit-size") {
      O.EmitSize = true;
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    } else {
      O.InputFiles.push_back(Arg);
    }
  }
  return true;
}

/// One parsed input.
struct InputUnit {
  std::string Label; // file name, or "<stdin>"
  Function F;
  uint64_t ReferenceFp = 0;
  int64_t ReturnValue = 0;
};

bool readInput(const std::string &Label, const std::string &Text,
               const Options &O, std::vector<InputUnit> &Units) {
  std::string Err;
  auto Parsed = parseFunction(Text, &Err);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s: parse failed: %s\n", Label.c_str(),
                 Err.c_str());
    return false;
  }
  if (!verifyFunction(*Parsed, &Err)) {
    std::fprintf(stderr, "error: %s: invalid function: %s\n", Label.c_str(),
                 Err.c_str());
    return false;
  }
  if (O.Cleanup) {
    ConstantFoldStats CF = foldConstants(*Parsed);
    SimplifyCfgStats SC = simplifyCfg(*Parsed);
    size_t Dce = eliminateDeadCode(*Parsed);
    std::printf("%s: cleanup: folded %zu insts + %zu branches, merged %zu "
                "blocks, removed %zu dead insts\n",
                Label.c_str(), CF.InstsFolded, CF.BranchesFolded,
                SC.BlocksMerged, Dce);
  }
  InputUnit U;
  U.Label = Label;
  ExecResult Reference = interpret(*Parsed);
  U.ReferenceFp = fingerprint(Reference);
  U.ReturnValue = Reference.ReturnValue;
  U.F = std::move(*Parsed);
  Units.push_back(std::move(U));
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }

  std::vector<InputUnit> Units;
  if (O.InputFiles.empty()) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    if (!readInput("<stdin>", Buffer.str(), O, Units))
      return 1;
  } else {
    for (const std::string &File : O.InputFiles) {
      std::ifstream In(File);
      if (!In) {
        std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
        return 1;
      }
      std::string Text(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>{});
      if (!readInput(File, Text, O, Units))
        return 1;
    }
  }

  PipelineConfig Config;
  Config.S = O.S;
  Config.BaselineK = O.BaselineK;
  Config.Enc.RegN = O.RegN;
  Config.Enc.DiffN = O.DiffN;
  Config.Enc.DiffW = O.DiffW;
  Config.Remap.NumStarts = O.RemapStarts;
  Config.Remap.Jobs = O.RemapJobs;
  Config.AdaptiveEnable = O.Adaptive;
  if (!Config.Enc.valid()) {
    std::fprintf(stderr, "error: invalid encoding configuration "
                         "(regn/diffn/diffw)\n");
    return 2;
  }

  // The table must outlive the batch (PortfolioConfig borrows it).
  DecisionTable Table;
  if (O.Portfolio != PortfolioMode::Off) {
    Config.Portfolio.Mode = O.Portfolio;
    Config.Portfolio.Jobs = O.PortfolioJobs;
    Config.Portfolio.MinConfidence = O.MinConfidence;
    if (!O.PortfolioTable.empty()) {
      std::ifstream In(O.PortfolioTable, std::ios::binary);
      if (!In) {
        std::fprintf(stderr, "error: cannot open --portfolio-table '%s'\n",
                     O.PortfolioTable.c_str());
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string TErr;
      if (!DecisionTable::fromJson(SS.str(), Table, &TErr)) {
        std::fprintf(stderr, "error: %s: %s\n", O.PortfolioTable.c_str(),
                     TErr.c_str());
        return 2;
      }
      Config.Portfolio.Table = &Table;
    }
  }

  Telemetry Telem;
  MetricsRegistry Metrics;
  if (!O.MetricsOut.empty())
    Config.Metrics = &Metrics;
  std::unique_ptr<ResultCache> Cache;
  if (O.UseCache) {
    ResultCacheOptions CO;
    CO.MemBudgetBytes = static_cast<size_t>(O.CacheMemMb) << 20;
    CO.DiskDir = O.CacheDir;
    CO.VerifyFraction = O.CacheVerify;
    Cache = std::make_unique<ResultCache>(CO);
    if (!O.MetricsOut.empty())
      Cache->setMetrics(&Metrics);
  }
  BatchOptions BO;
  BO.Jobs = O.Jobs;
  BO.Telem = O.TraceOut.empty() ? nullptr : &Telem;
  BO.Cache = Cache.get();
  BatchCompiler Batch(BO);

  std::vector<Function> Functions;
  for (const InputUnit &U : Units)
    Functions.push_back(U.F);
  std::vector<PipelineResult> Results = Batch.run(Functions, Config);

  bool AllSame = true;
  for (size_t I = 0; I != Units.size(); ++I) {
    const InputUnit &U = Units[I];
    const PipelineResult &R = Results[I];
    const char *Prefix = Units.size() > 1 ? U.Label.c_str() : "input";
    std::printf("%s: %zu instructions, %u virtual registers, returns "
                "%lld\n",
                Prefix, U.F.numInsts(), U.F.NumRegs,
                static_cast<long long>(U.ReturnValue));

    ExecResult After = interpret(R.F);
    bool Same = fingerprint(After) == U.ReferenceFp;
    AllSame = AllSame && Same;
    const char *SchemeL =
        O.Portfolio == PortfolioMode::Race    ? "auto (race)"
        : O.Portfolio == PortfolioMode::Choose ? "auto (choose)"
                                               : schemeName(O.S);
    std::printf("%s: %zu insts (%zu spill, %zu set_last_reg), code %zu "
                "bytes, semantics %s\n",
                SchemeL, R.NumInsts, R.SpillInsts, R.SetLastRegs,
                R.CodeBytes, Same ? "preserved" : "CHANGED (bug!)");
    if (R.AdaptiveFellBack)
      std::printf("adaptive mode chose the baseline for this function\n");

    if (O.Simulate) {
      SimResult Sim = simulate(R.F);
      std::printf("simulated: %llu cycles, %llu insts, I$ miss %llu, D$ "
                  "miss %llu, spill accesses %llu, slr slots %llu\n",
                  static_cast<unsigned long long>(Sim.Cycles),
                  static_cast<unsigned long long>(Sim.DynInsts),
                  static_cast<unsigned long long>(Sim.ICacheMisses),
                  static_cast<unsigned long long>(Sim.DCacheMisses),
                  static_cast<unsigned long long>(Sim.SpillAccesses),
                  static_cast<unsigned long long>(Sim.SlrSlots));
    }

    if (O.EmitSize && R.DiffEncoded) {
      Function Stripped = stripSetLastReg(R.F);
      EncodedFunction E = encodeFunction(Stripped, Config.Enc);
      BinaryModule Diff = emitDifferential(E, Config.Enc);
      BinaryModule Direct = emitDirect(Stripped);
      std::printf("binary: direct %zu bits (%u-bit fields), differential "
                  "%zu bits (%u-bit fields)\n",
                  Direct.BitCount, Direct.FieldWidth, Diff.BitCount,
                  Diff.FieldWidth);
    }

    if (O.PrintCode)
      std::printf("\n%s", printFunction(R.F).c_str());
  }

  if (Cache) {
    ResultCacheStats CS = Cache->stats();
    std::printf("cache: %llu hit(s) (%llu mem, %llu disk), %llu miss(es), "
                "%llu load error(s), %llu verified, %llu mismatch(es)\n",
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.MemHits),
                static_cast<unsigned long long>(CS.DiskHits),
                static_cast<unsigned long long>(CS.Misses),
                static_cast<unsigned long long>(CS.LoadErrors),
                static_cast<unsigned long long>(CS.VerifyRecompiles),
                static_cast<unsigned long long>(CS.VerifyMismatches));
    if (CS.VerifyMismatches != 0) {
      std::fprintf(stderr, "error: cache verification found %llu "
                           "mismatch(es) (cached != fresh)\n",
                   static_cast<unsigned long long>(CS.VerifyMismatches));
      AllSame = false;
    }
    Cache->flushMetrics(Metrics);
  }

  if (!O.TraceOut.empty()) {
    std::ofstream Out(O.TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", O.TraceOut.c_str());
      return 1;
    }
    Telem.writeChromeTrace(Out);
    std::fprintf(stderr, "trace written to %s\n", O.TraceOut.c_str());
  }

  if (!O.MetricsOut.empty()) {
    std::string Err;
    if (!Metrics.writeJsonFile(O.MetricsOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", O.MetricsOut.c_str());
  }

  return AllSame ? 0 : 1;
}
