//===- tools/dra-opt.cpp - Command-line pipeline driver -------------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// A small `opt`-style driver: reads a function in the textual IR syntax
// (see src/ir/Parser.h), runs one of the five allocation pipelines, and
// prints the resulting machine code, statistics, and (optionally) the
// simulated execution profile. Useful for poking at the encoder with
// hand-written programs.
//
// Usage:
//   dra-opt [options] [input.dra]          (stdin when no file given)
//     --scheme=baseline|ospill|remap|select|coalesce   (default coalesce)
//     --baseline-k=N     registers of the unmodified ISA (default 8)
//     --regn=N           differential registers (default 12)
//     --diffn=N          difference codes (default 8)
//     --diffw=N          field width in bits (default 3)
//     --remap-starts=N   remapping restarts (default 200)
//     --adaptive         Section 8.2 selective enabling
//     --cleanup          run fold/simplify/DCE before allocation
//     --simulate         run the pipeline model and print cycles
//     --print-code       print the resulting function
//     --emit-size        print bit-exact binary sizes (direct vs diff)
//
//===----------------------------------------------------------------------===//

#include "core/BinaryEmitter.h"
#include "opt/ConstantFold.h"
#include "opt/DeadCode.h"
#include "opt/SimplifyCfg.h"
#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "sim/LowEndSim.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>

using namespace dra;

namespace {

struct Options {
  Scheme S = Scheme::Coalesce;
  unsigned BaselineK = 8;
  unsigned RegN = 12;
  unsigned DiffN = 8;
  unsigned DiffW = 3;
  unsigned RemapStarts = 200;
  bool Adaptive = false;
  bool Cleanup = false;
  bool Simulate = false;
  bool PrintCode = false;
  bool EmitSize = false;
  std::string InputFile;
};

bool parseScheme(const std::string &Name, Scheme &Out) {
  if (Name == "baseline")
    Out = Scheme::Baseline;
  else if (Name == "ospill")
    Out = Scheme::OSpill;
  else if (Name == "remap")
    Out = Scheme::Remap;
  else if (Name == "select")
    Out = Scheme::Select;
  else if (Name == "coalesce")
    Out = Scheme::Coalesce;
  else
    return false;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--scheme=")) {
      if (!parseScheme(V, O.S)) {
        std::fprintf(stderr, "error: unknown scheme '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--baseline-k=")) {
      O.BaselineK = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--regn=")) {
      O.RegN = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--diffn=")) {
      O.DiffN = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--diffw=")) {
      O.DiffW = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--remap-starts=")) {
      O.RemapStarts = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--adaptive") {
      O.Adaptive = true;
    } else if (Arg == "--cleanup") {
      O.Cleanup = true;
    } else if (Arg == "--simulate") {
      O.Simulate = true;
    } else if (Arg == "--print-code") {
      O.PrintCode = true;
    } else if (Arg == "--emit-size") {
      O.EmitSize = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      O.InputFile = Arg;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 1;

  std::string Text;
  if (O.InputFile.empty()) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Text = Buffer.str();
  } else {
    std::ifstream In(O.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   O.InputFile.c_str());
      return 1;
    }
    Text.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  }

  std::string Err;
  auto Parsed = parseFunction(Text, &Err);
  if (!Parsed) {
    std::fprintf(stderr, "error: parse failed: %s\n", Err.c_str());
    return 1;
  }
  if (!verifyFunction(*Parsed, &Err)) {
    std::fprintf(stderr, "error: invalid function: %s\n", Err.c_str());
    return 1;
  }

  if (O.Cleanup) {
    ConstantFoldStats CF = foldConstants(*Parsed);
    SimplifyCfgStats SC = simplifyCfg(*Parsed);
    size_t Dce = eliminateDeadCode(*Parsed);
    std::printf("cleanup: folded %zu insts + %zu branches, merged %zu "
                "blocks, removed %zu dead insts\n",
                CF.InstsFolded, CF.BranchesFolded, SC.BlocksMerged, Dce);
  }

  ExecResult Reference = interpret(*Parsed);
  std::printf("input: %zu instructions, %u virtual registers, returns "
              "%lld\n",
              Parsed->numInsts(), Parsed->NumRegs,
              static_cast<long long>(Reference.ReturnValue));

  PipelineConfig Config;
  Config.S = O.S;
  Config.BaselineK = O.BaselineK;
  Config.Enc.RegN = O.RegN;
  Config.Enc.DiffN = O.DiffN;
  Config.Enc.DiffW = O.DiffW;
  Config.Remap.NumStarts = O.RemapStarts;
  Config.AdaptiveEnable = O.Adaptive;
  if (!Config.Enc.valid()) {
    std::fprintf(stderr, "error: invalid encoding configuration "
                         "(regn/diffn/diffw)\n");
    return 1;
  }

  PipelineResult R = runPipeline(*Parsed, Config);
  ExecResult After = interpret(R.F);
  bool Same = fingerprint(After) == fingerprint(Reference);
  std::printf("%s: %zu insts (%zu spill, %zu set_last_reg), code %zu "
              "bytes, semantics %s\n",
              schemeName(O.S), R.NumInsts, R.SpillInsts, R.SetLastRegs,
              R.CodeBytes, Same ? "preserved" : "CHANGED (bug!)");
  if (R.AdaptiveFellBack)
    std::printf("adaptive mode chose the baseline for this function\n");

  if (O.Simulate) {
    SimResult Sim = simulate(R.F);
    std::printf("simulated: %llu cycles, %llu insts, I$ miss %llu, D$ "
                "miss %llu, spill accesses %llu, slr slots %llu\n",
                static_cast<unsigned long long>(Sim.Cycles),
                static_cast<unsigned long long>(Sim.DynInsts),
                static_cast<unsigned long long>(Sim.ICacheMisses),
                static_cast<unsigned long long>(Sim.DCacheMisses),
                static_cast<unsigned long long>(Sim.SpillAccesses),
                static_cast<unsigned long long>(Sim.SlrSlots));
  }

  if (O.EmitSize && R.DiffEncoded) {
    Function Stripped = stripSetLastReg(R.F);
    EncodedFunction E = encodeFunction(Stripped, Config.Enc);
    BinaryModule Diff = emitDifferential(E, Config.Enc);
    BinaryModule Direct = emitDirect(Stripped);
    std::printf("binary: direct %zu bits (%u-bit fields), differential "
                "%zu bits (%u-bit fields)\n",
                Direct.BitCount, Direct.FieldWidth, Diff.BitCount,
                Diff.FieldWidth);
  }

  if (O.PrintCode)
    std::printf("\n%s", printFunction(R.F).c_str());

  return Same ? 0 : 1;
}
