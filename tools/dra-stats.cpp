//===- tools/dra-stats.cpp - Metrics diff / regression gate ---------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Loads two dra-metrics-v1 JSON files (written by dra-opt/dra-batch
// --metrics-out, the bench binaries' BENCH_*.json, or any
// MetricsRegistry::writeJsonFile call), prints a per-metric diff with
// percentage deltas, and — with --fail-on — exits non-zero when a named
// metric regresses beyond a threshold. Designed as a CI gate: check in a
// baseline snapshot, diff every build against it.
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "driver/Json.h"
#include "driver/Metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-stats [options] <baseline.json> <current.json>\n"
    "       dra-stats --validate <file.json> [file.json ...]\n"
    "       dra-stats --validate-trace <trace.json> [trace.json ...]\n"
    "\n"
    "Compares two dra-metrics-v1 metrics files (see driver/Metrics.h;\n"
    "written by dra-opt/dra-batch --metrics-out and the bench binaries'\n"
    "BENCH_*.json) and prints a per-metric diff with % deltas. Counters\n"
    "and gauges compare their values; histograms compare their sums (the\n"
    "count and p50/p90/p99 shifts are shown in the table).\n"
    "\n"
    "options:\n"
    "  --validate           parse and schema-check the given files instead\n"
    "                       of diffing; exit 1 on the first invalid one\n"
    "  --validate-trace     schema-check Chrome trace-event JSON (as\n"
    "                       written by --trace-out of dra-opt/dra-batch/\n"
    "                       dra-loadgen): a traceEvents array whose events\n"
    "                       carry string name/ph, numeric pid/tid/ts, and\n"
    "                       a non-negative dur on every ph=\"X\" event;\n"
    "                       exit 1 on the first invalid file\n"
    "  --threshold=PCT      only print rows changing by at least PCT\n"
    "                       percent (default 0 = print everything)\n"
    "  --fail-on=M[:PCT]    exit 3 when metric M increases by more than\n"
    "                       PCT percent over the baseline (default 0);\n"
    "                       M is a flat key like `pipeline.spill_insts`\n"
    "                       or `pipeline.spill_insts{scheme=coalesce}`\n"
    "                       and bare names match every labeled series of\n"
    "                       that name; repeatable. Histograms gate on\n"
    "                       their sum by default; append one of\n"
    "                       .p50/.p90/.p95/.p99/.count/.sum/.min/.max to\n"
    "                       gate a summary statistic instead (e.g.\n"
    "                       `server.latency_us{tier=miss}.p99:10` fails\n"
    "                       when the miss-tier p99 grows over 10%%).\n"
    "                       A negative PCT flips\n"
    "                       the gate into a required improvement: the\n"
    "                       check fails unless M *dropped* by more than\n"
    "                       |PCT| percent (e.g. `M:-80` demands current\n"
    "                       be below a fifth of baseline — use it to\n"
    "                       assert an optimization keeps paying off)\n"
    "  --help               show this text\n"
    "\n"
    "exit status: 0 on success, 1 when a file cannot be read or fails\n"
    "validation, 2 on a command-line error (including a --fail-on metric\n"
    "absent from both files), 3 when any --fail-on metric regressed.\n";

struct FailRule {
  std::string Metric;
  double ThresholdPct = 0;
};

struct Options {
  bool Validate = false;
  bool ValidateTrace = false;
  bool Help = false;
  double ThresholdPct = 0;
  std::vector<FailRule> FailOn;
  std::vector<std::string> Files;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (Arg == "--validate") {
      O.Validate = true;
    } else if (Arg == "--validate-trace") {
      O.ValidateTrace = true;
    } else if (const char *V = Value("--threshold=")) {
      if (!cli::parseDouble("--threshold", V, O.ThresholdPct))
        return false;
    } else if (const char *V = Value("--fail-on=")) {
      FailRule Rule;
      std::string Spec = V;
      size_t Colon = Spec.rfind(':');
      // A ':' only splits a threshold when what follows parses as a
      // number; metric names themselves never contain ':'.
      if (Colon != std::string::npos &&
          cli::parseDoubleValue(Spec.c_str() + Colon + 1,
                                Rule.ThresholdPct)) {
        Rule.Metric = Spec.substr(0, Colon);
      } else if (Colon != std::string::npos && Colon + 1 != Spec.size()) {
        std::fprintf(stderr,
                     "error: bad threshold '%s' in '--fail-on=%s'\n",
                     Spec.c_str() + Colon + 1, V);
        return false;
      } else {
        Rule.Metric = Spec;
      }
      if (Rule.Metric.empty()) {
        std::fprintf(stderr, "error: empty metric in '--fail-on=%s'\n", V);
        return false;
      }
      O.FailOn.push_back(Rule);
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    } else {
      O.Files.push_back(Arg);
    }
  }
  return true;
}

bool loadFile(const std::string &Path, MetricsFileData &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::string Err;
  if (!loadMetricsJson(In, Out, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return false;
  }
  return true;
}

/// Schema-checks one Chrome trace-event document: a top-level object with
/// a `traceEvents` array; every event an object with string `name`/`ph`,
/// numeric `pid`/`tid`/`ts`, and — on "X" complete events — a numeric,
/// non-negative `dur`. Counts events per phase into \p XEvents/\p MEvents.
bool validateTraceFile(const std::string &Path, size_t &XEvents,
                       size_t &MEvents) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::string Text{std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>{}};
  JsonValue Root;
  std::string Err;
  if (!parseJson(Text, Root, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return false;
  }
  auto Fail = [&](size_t Index, const char *What) {
    std::fprintf(stderr, "error: %s: traceEvents[%zu]: %s\n", Path.c_str(),
                 Index, What);
    return false;
  };
  if (Root.K != JsonValue::Object) {
    std::fprintf(stderr, "error: %s: top level is not an object\n",
                 Path.c_str());
    return false;
  }
  const JsonValue *Events = Root.field("traceEvents");
  if (!Events || Events->K != JsonValue::Array) {
    std::fprintf(stderr, "error: %s: missing traceEvents array\n",
                 Path.c_str());
    return false;
  }
  XEvents = MEvents = 0;
  for (size_t I = 0; I != Events->Arr.size(); ++I) {
    const JsonValue &E = Events->Arr[I];
    if (E.K != JsonValue::Object)
      return Fail(I, "event is not an object");
    const JsonValue *Name = E.field("name");
    const JsonValue *Ph = E.field("ph");
    if (!Name || Name->K != JsonValue::String)
      return Fail(I, "missing string 'name'");
    if (!Ph || Ph->K != JsonValue::String || Ph->Str.empty())
      return Fail(I, "missing string 'ph'");
    for (const char *Key : {"pid", "tid"}) {
      const JsonValue *V = E.field(Key);
      if (!V || V->K != JsonValue::Number)
        return Fail(I, "missing numeric 'pid'/'tid'");
    }
    if (Ph->Str == "X") {
      const JsonValue *Ts = E.field("ts");
      const JsonValue *Dur = E.field("dur");
      if (!Ts || Ts->K != JsonValue::Number)
        return Fail(I, "complete event missing numeric 'ts'");
      if (!Dur || Dur->K != JsonValue::Number || Dur->Num < 0)
        return Fail(I, "complete event missing non-negative 'dur'");
      ++XEvents;
    } else if (Ph->Str == "M") {
      ++MEvents;
    }
  }
  return true;
}

/// Does flat key \p Key (e.g. "pipeline.spills{scheme=coalesce}") match the
/// user-provided \p Metric? Exact match, or bare-name match of every
/// labeled series of that name.
bool metricMatches(const std::string &Key, const std::string &Metric) {
  if (Key == Metric)
    return true;
  return Key.size() > Metric.size() + 1 &&
         Key.compare(0, Metric.size(), Metric) == 0 &&
         Key[Metric.size()] == '{';
}

double pctDelta(double Base, double Cur) {
  if (Base == 0)
    return Cur == 0 ? 0 : HUGE_VAL;
  return 100.0 * (Cur - Base) / Base;
}

/// Which files a diffed series appears in.
enum class Presence { Both, OnlyBase, OnlyCur };

/// One diff-table line. A series present in only one file is a
/// structural change, not a value change: it is never threshold-
/// suppressed and is labeled "removed"/"added" instead of faking a 0 on
/// the missing side (which made a zero-valued series dropping out of —
/// or appearing in — one file vanish from the diff entirely, and showed
/// a removal as a -100% value drop).
void printRow(const std::string &Key, double Base, double Cur,
              double ThresholdPct, Presence P = Presence::Both) {
  if (P == Presence::OnlyBase) {
    std::printf("  %-58s %14g %14s %s\n", Key.c_str(), Base, "-",
                " removed");
    return;
  }
  if (P == Presence::OnlyCur) {
    std::printf("  %-58s %14s %14g %s\n", Key.c_str(), "-", Cur,
                "   added");
    return;
  }
  double Pct = pctDelta(Base, Cur);
  if (std::fabs(Pct) < ThresholdPct && Base != Cur)
    return;
  if (ThresholdPct > 0 && Base == Cur)
    return;
  char PctBuf[32];
  if (std::isinf(Pct))
    std::snprintf(PctBuf, sizeof PctBuf, "     new");
  else
    std::snprintf(PctBuf, sizeof PctBuf, "%+7.2f%%", Pct);
  std::printf("  %-58s %14g %14g %s\n", Key.c_str(), Base, Cur, PctBuf);
}

/// Diffs one section (counters or gauges) over the union of keys.
void diffSection(const char *Title, const std::map<std::string, double> &B,
                 const std::map<std::string, double> &C,
                 double ThresholdPct) {
  if (B.empty() && C.empty())
    return;
  std::printf("%s:\n", Title);
  auto IB = B.begin();
  auto IC = C.begin();
  while (IB != B.end() || IC != C.end()) {
    if (IC == C.end() || (IB != B.end() && IB->first < IC->first)) {
      printRow(IB->first, IB->second, 0, ThresholdPct, Presence::OnlyBase);
      ++IB;
    } else if (IB == B.end() || IC->first < IB->first) {
      printRow(IC->first, 0, IC->second, ThresholdPct, Presence::OnlyCur);
      ++IC;
    } else {
      printRow(IB->first, IB->second, IC->second, ThresholdPct);
      ++IB;
      ++IC;
    }
  }
}

void diffHistograms(const MetricsFileData &B, const MetricsFileData &C,
                    double ThresholdPct) {
  if (B.Histograms.empty() && C.Histograms.empty())
    return;
  std::printf("histograms (sum | count | p50 -> p50):\n");
  auto Row = [&](const std::string &Key,
                 const MetricsFileData::HistSummary &Base,
                 const MetricsFileData::HistSummary &Cur,
                 Presence P = Presence::Both) {
    // Same structural-change rule as printRow: one-sided histograms are
    // always reported, labeled, and never shown as a -100% sum change.
    if (P == Presence::OnlyBase) {
      std::printf("  %-58s %14g %14s %s  n %g -> -\n", Key.c_str(),
                  Base.Sum, "-", " removed", Base.Count);
      return;
    }
    if (P == Presence::OnlyCur) {
      std::printf("  %-58s %14s %14g %s  n - -> %g\n", Key.c_str(), "-",
                  Cur.Sum, "   added", Cur.Count);
      return;
    }
    double Pct = pctDelta(Base.Sum, Cur.Sum);
    if (ThresholdPct > 0 &&
        (std::fabs(Pct) < ThresholdPct || Base.Sum == Cur.Sum))
      return;
    // An empty histogram has no percentiles: print '-' instead of a
    // misleading 0.
    char BaseP50[32], CurP50[32];
    if (Base.Count > 0)
      std::snprintf(BaseP50, sizeof BaseP50, "%g", Base.P50);
    else
      std::snprintf(BaseP50, sizeof BaseP50, "-");
    if (Cur.Count > 0)
      std::snprintf(CurP50, sizeof CurP50, "%g", Cur.P50);
    else
      std::snprintf(CurP50, sizeof CurP50, "-");
    std::printf("  %-58s %14g %14g %+7.2f%%  n %g -> %g  p50 %s -> %s\n",
                Key.c_str(), Base.Sum, Cur.Sum, std::isinf(Pct) ? 0.0 : Pct,
                Base.Count, Cur.Count, BaseP50, CurP50);
  };
  MetricsFileData::HistSummary Zero;
  auto IB = B.Histograms.begin();
  auto IC = C.Histograms.begin();
  while (IB != B.Histograms.end() || IC != C.Histograms.end()) {
    if (IC == C.Histograms.end() ||
        (IB != B.Histograms.end() && IB->first < IC->first)) {
      Row(IB->first, IB->second, Zero, Presence::OnlyBase);
      ++IB;
    } else if (IB == B.Histograms.end() || IC->first < IB->first) {
      Row(IC->first, Zero, IC->second, Presence::OnlyCur);
      ++IC;
    } else {
      Row(IB->first, IB->second, IC->second);
      ++IB;
      ++IC;
    }
  }
}

/// Collects (key, baseline, current) triples matching \p Metric across the
/// counter, gauge, and histogram (by sum) sections of both files.
struct MatchedValue {
  std::string Key;
  double Base = 0;
  double Cur = 0;
  /// False when the side's value is undefined: a distribution statistic
  /// (.min/.max/.pNN) of a histogram that is empty (count=0) or absent.
  /// .count and .sum are always defined (0 for empty/absent).
  bool BaseOk = true;
  bool CurOk = true;
};

/// The histogram summary statistics addressable as a `.stat` suffix on a
/// --fail-on metric (`server.latency_us.p99`,
/// `loadgen.latency_us{tier=miss}.p95`, ...).
struct HistStatSuffix {
  const char *Name;
  double MetricsFileData::HistSummary::*Field;
};

const HistStatSuffix HistStatSuffixes[] = {
    {"count", &MetricsFileData::HistSummary::Count},
    {"sum", &MetricsFileData::HistSummary::Sum},
    {"min", &MetricsFileData::HistSummary::Min},
    {"max", &MetricsFileData::HistSummary::Max},
    {"p50", &MetricsFileData::HistSummary::P50},
    {"p90", &MetricsFileData::HistSummary::P90},
    {"p95", &MetricsFileData::HistSummary::P95},
    {"p99", &MetricsFileData::HistSummary::P99},
};

/// If \p Metric ends in a recognized `.stat` suffix, strips it into
/// \p BareMetric and returns the addressed summary field; null otherwise.
double MetricsFileData::HistSummary::*
splitHistStat(const std::string &Metric, std::string &BareMetric) {
  for (const HistStatSuffix &S : HistStatSuffixes) {
    std::string Suffix = std::string(".") + S.Name;
    if (Metric.size() > Suffix.size() &&
        Metric.compare(Metric.size() - Suffix.size(), Suffix.size(),
                       Suffix) == 0) {
      BareMetric = Metric.substr(0, Metric.size() - Suffix.size());
      return S.Field;
    }
  }
  return nullptr;
}

std::vector<MatchedValue> collectMatches(const MetricsFileData &B,
                                         const MetricsFileData &C,
                                         const std::string &Metric) {
  std::map<std::string, MatchedValue> ByKey;
  auto Add = [&](const std::string &Key, double V, bool IsBase) {
    MatchedValue &M = ByKey[Key];
    M.Key = Key;
    (IsBase ? M.Base : M.Cur) = V;
  };

  // A percentile/statistic suffix addresses histogram summaries only:
  // `name.p99` gates the p99 of every labeled series of that histogram,
  // `name{k=v}.p99` exactly one.
  std::string BareMetric;
  if (double MetricsFileData::HistSummary::*Field =
          splitHistStat(Metric, BareMetric)) {
    std::string Suffix = Metric.substr(BareMetric.size());
    // Distribution statistics have no value without samples; only the
    // additive .count/.sum suffixes read 0 from an empty histogram.
    bool Dist = Field != &MetricsFileData::HistSummary::Count &&
                Field != &MetricsFileData::HistSummary::Sum;
    auto AddHist = [&](const std::string &Key,
                       const MetricsFileData::HistSummary &V, bool IsBase) {
      MatchedValue &M = ByKey[Key];
      if (M.Key.empty()) {
        M.Key = Key;
        // A side never filled in stays 0; for a distribution statistic
        // that absence is "undefined", not "0".
        M.BaseOk = M.CurOk = !Dist;
      }
      (IsBase ? M.Base : M.Cur) = V.*Field;
      (IsBase ? M.BaseOk : M.CurOk) = !Dist || V.Count > 0;
    };
    for (const auto &[K, V] : B.Histograms)
      if (metricMatches(K, BareMetric))
        AddHist(K + Suffix, V, true);
    for (const auto &[K, V] : C.Histograms)
      if (metricMatches(K, BareMetric))
        AddHist(K + Suffix, V, false);
    std::vector<MatchedValue> Out;
    for (auto &[K, M] : ByKey)
      Out.push_back(M);
    return Out;
  }

  auto AddMatching = [&](const std::string &Key, double V, bool IsBase) {
    if (metricMatches(Key, Metric))
      Add(Key, V, IsBase);
  };
  for (const auto &[K, V] : B.Counters)
    AddMatching(K, V, true);
  for (const auto &[K, V] : C.Counters)
    AddMatching(K, V, false);
  for (const auto &[K, V] : B.Gauges)
    AddMatching(K, V, true);
  for (const auto &[K, V] : C.Gauges)
    AddMatching(K, V, false);
  for (const auto &[K, V] : B.Histograms)
    AddMatching(K, V.Sum, true);
  for (const auto &[K, V] : C.Histograms)
    AddMatching(K, V.Sum, false);
  std::vector<MatchedValue> Out;
  for (auto &[K, M] : ByKey)
    Out.push_back(M);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }

  if (O.ValidateTrace) {
    if (O.Files.empty()) {
      std::fprintf(stderr,
                   "error: --validate-trace needs at least one file\n");
      return 2;
    }
    for (const std::string &File : O.Files) {
      size_t XEvents = 0, MEvents = 0;
      if (!validateTraceFile(File, XEvents, MEvents))
        return 1;
      std::printf("%s: valid chrome-trace (%zu span event(s), %zu "
                  "metadata event(s))\n",
                  File.c_str(), XEvents, MEvents);
    }
    return 0;
  }

  if (O.Validate) {
    if (O.Files.empty()) {
      std::fprintf(stderr, "error: --validate needs at least one file\n");
      return 2;
    }
    for (const std::string &File : O.Files) {
      MetricsFileData Data;
      if (!loadFile(File, Data))
        return 1;
      std::printf("%s: valid %s (%zu counters, %zu gauges, %zu "
                  "histograms)\n",
                  File.c_str(), Data.Schema.c_str(), Data.Counters.size(),
                  Data.Gauges.size(), Data.Histograms.size());
    }
    return 0;
  }

  if (O.Files.size() != 2) {
    std::fprintf(stderr,
                 "error: expected <baseline.json> <current.json> "
                 "(got %zu files; try --help)\n",
                 O.Files.size());
    return 2;
  }

  MetricsFileData Base, Cur;
  if (!loadFile(O.Files[0], Base) || !loadFile(O.Files[1], Cur))
    return 1;

  std::printf("baseline: %s\ncurrent:  %s\n\n", O.Files[0].c_str(),
              O.Files[1].c_str());
  diffSection("counters", Base.Counters, Cur.Counters, O.ThresholdPct);
  diffSection("gauges", Base.Gauges, Cur.Gauges, O.ThresholdPct);
  diffHistograms(Base, Cur, O.ThresholdPct);

  int Exit = 0;
  for (const FailRule &Rule : O.FailOn) {
    std::vector<MatchedValue> Matches =
        collectMatches(Base, Cur, Rule.Metric);
    if (Matches.empty()) {
      std::fprintf(stderr,
                   "error: --fail-on metric '%s' found in neither file\n",
                   Rule.Metric.c_str());
      return 2;
    }
    for (const MatchedValue &M : Matches) {
      if (!M.BaseOk || !M.CurOk) {
        std::fprintf(stderr,
                     "error: --fail-on '%s': %s has no samples in %s "
                     "(count=0); the statistic is undefined\n",
                     Rule.Metric.c_str(), M.Key.c_str(),
                     !M.BaseOk && !M.CurOk ? "either file"
                     : !M.BaseOk          ? "the baseline"
                                          : "the current file");
        return 2;
      }
      double Pct = pctDelta(M.Base, M.Cur);
      if (Rule.ThresholdPct < 0) {
        // Improvement gate: current must sit more than |PCT| percent
        // below baseline. Anything short of that drop — including any
        // increase — fails.
        if (Pct > Rule.ThresholdPct) {
          std::fprintf(stderr,
                       "IMPROVEMENT NOT MET: %s: %g -> %g (%.2f%%, "
                       "needs < %.2f%%)\n",
                       M.Key.c_str(), M.Base, M.Cur,
                       std::isinf(Pct) ? 100.0 : Pct, Rule.ThresholdPct);
          Exit = 3;
        }
        continue;
      }
      bool Regressed = M.Cur > M.Base && Pct > Rule.ThresholdPct;
      if (Regressed) {
        std::fprintf(stderr,
                     "REGRESSION: %s: %g -> %g (+%.2f%% > %.2f%% "
                     "allowed)\n",
                     M.Key.c_str(), M.Base, M.Cur,
                     std::isinf(Pct) ? 100.0 : Pct, Rule.ThresholdPct);
        Exit = 3;
      }
    }
  }
  if (!O.FailOn.empty() && Exit == 0)
    std::printf("\nall %zu --fail-on gate(s) passed\n", O.FailOn.size());
  return Exit;
}
