//===- tools/dra-batch.cpp - Batch compiler with telemetry ----------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Compiles a directory (or explicit list) of `.dra` files through the
// parallel batch driver and emits a telemetry report: a per-file summary
// table on stdout, an aggregate JSON report (--json-out), and a Chrome
// trace-event timeline (--trace-out) with one span per pipeline stage per
// function, viewable in chrome://tracing or https://ui.perfetto.dev.
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "core/Features.h"
#include "core/Pipeline.h"
#include "driver/BatchCompiler.h"
#include "driver/ResultCache.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-batch [options] <dir-or-file.dra ...>\n"
    "\n"
    "Compiles every .dra file found in the given directories (plus any\n"
    "explicitly listed files) through one allocation pipeline on a worker\n"
    "pool, and reports per-file and aggregate statistics. Files are\n"
    "processed in sorted path order; results are deterministic and\n"
    "independent of --jobs.\n"
    "\n"
    "options:\n"
    "  --scheme=NAME      baseline|ospill|remap|select|coalesce\n"
    "                     (default coalesce)\n"
    "  --baseline-k=N     registers of the unmodified ISA (default 8)\n"
    "  --regn=N           differential registers (default 12)\n"
    "  --diffn=N          difference codes (default 8)\n"
    "  --diffw=N          field width in bits (default 3)\n"
    "  --remap-starts=N   remapping restarts (default 200)\n"
    "  --remap-jobs=N     shard each function's multi-start remap search\n"
    "                     over N nested pool workers (default 1; results\n"
    "                     are bit-identical at any value; prefer --jobs\n"
    "                     for batch throughput, --remap-jobs for latency\n"
    "                     of few large functions)\n"
    "  --jobs=N           pool workers (default 0 = hardware concurrency)\n"
    "  --per-task-seeds   decorrelate remap RNG streams per input\n"
    "  --trace-out=FILE   Chrome trace-event JSON (chrome://tracing)\n"
    "  --json-out=FILE    aggregate counters + per-stage timing JSON\n"
    "  --metrics-out=FILE allocator-deep metrics (per-function counters,\n"
    "                     gauges, stage histograms) as dra-metrics-v1\n"
    "                     JSON; compare runs with dra-stats\n"
    "  --cache-dir=DIR    persistent content-addressed result cache: one\n"
    "                     dra-cache-v1 file per (function, config) entry;\n"
    "                     corrupt or stale entries are quarantined, never\n"
    "                     errors. Warm runs skip compilation entirely\n"
    "  --cache-mem-mb=N   in-memory cache tier budget in MiB (default 64;\n"
    "                     0 disables the memory tier). Implies caching\n"
    "                     even without --cache-dir\n"
    "  --cache-verify=F   recompile fraction F (0..1) of cache hits and\n"
    "                     compare against the cached result byte-for-byte\n"
    "                     (exit 1 on any mismatch)\n"
    "  --portfolio=MODE   off (default) | race | choose: instead of\n"
    "                     --scheme, race the scheme portfolio per function\n"
    "                     and commit the deterministic (cost, arm-index)\n"
    "                     winner; choose consults --portfolio-table and\n"
    "                     races only on low confidence\n"
    "  --portfolio-jobs=N workers per race (default 1 = serial; results\n"
    "                     are bit-identical at any value; 0 = one per arm)\n"
    "  --portfolio-table=FILE\n"
    "                     portfolio-v1 decision table (dra-tune output)\n"
    "  --min-confidence=F chooser confidence below which a prediction\n"
    "                     falls back to racing (default 0.75)\n"
    "  --portfolio-train=FILE\n"
    "                     training-sweep mode: compile every input with\n"
    "                     every portfolio arm, extract per-function\n"
    "                     features, and write a portfolio-train-v1 JSON\n"
    "                     corpus for tools/dra-tune (ignores --scheme and\n"
    "                     --portfolio)\n"
    "  --help             show this text\n"
    "\n"
    "exit status: 0 on success, 1 when any input fails to parse/compile,\n"
    "changes semantics, or fails cache verification; 2 on a command-line\n"
    "error.\n";

struct Options {
  Scheme S = Scheme::Coalesce;
  unsigned BaselineK = 8;
  unsigned RegN = 12;
  unsigned DiffN = 8;
  unsigned DiffW = 3;
  unsigned RemapStarts = 200;
  unsigned RemapJobs = 1;
  unsigned Jobs = 0;
  bool PerTaskSeeds = false;
  bool Help = false;
  std::string TraceOut;
  std::string JsonOut;
  std::string MetricsOut;
  std::string CacheDir;
  unsigned CacheMemMb = 64;
  double CacheVerify = 0;
  bool UseCache = false;
  PortfolioMode Portfolio = PortfolioMode::Off;
  unsigned PortfolioJobs = 1;
  std::string PortfolioTable;
  double MinConfidence = 0.75;
  std::string PortfolioTrain;
  std::vector<std::string> Inputs;
};

bool parseScheme(const std::string &Name, Scheme &Out) {
  if (Name == "baseline")
    Out = Scheme::Baseline;
  else if (Name == "ospill")
    Out = Scheme::OSpill;
  else if (Name == "remap")
    Out = Scheme::Remap;
  else if (Name == "select")
    Out = Scheme::Select;
  else if (Name == "coalesce")
    Out = Scheme::Coalesce;
  else
    return false;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--scheme=")) {
      if (!parseScheme(V, O.S)) {
        std::fprintf(stderr, "error: unknown scheme '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--baseline-k=")) {
      if (!cli::parseUnsigned("--baseline-k", V, O.BaselineK))
        return false;
    } else if (const char *V = Value("--regn=")) {
      if (!cli::parseUnsigned("--regn", V, O.RegN))
        return false;
    } else if (const char *V = Value("--diffn=")) {
      if (!cli::parseUnsigned("--diffn", V, O.DiffN))
        return false;
    } else if (const char *V = Value("--diffw=")) {
      if (!cli::parseUnsigned("--diffw", V, O.DiffW))
        return false;
    } else if (const char *V = Value("--remap-starts=")) {
      if (!cli::parseUnsigned("--remap-starts", V, O.RemapStarts))
        return false;
    } else if (const char *V = Value("--remap-jobs=")) {
      if (!cli::parseUnsigned("--remap-jobs", V, O.RemapJobs))
        return false;
      if (O.RemapJobs == 0) {
        std::fprintf(stderr, "error: --remap-jobs must be >= 1\n");
        return false;
      }
    } else if (const char *V = Value("--jobs=")) {
      if (!cli::parseUnsigned("--jobs", V, O.Jobs))
        return false;
    } else if (const char *V = Value("--trace-out=")) {
      O.TraceOut = V;
    } else if (const char *V = Value("--json-out=")) {
      O.JsonOut = V;
    } else if (const char *V = Value("--metrics-out=")) {
      O.MetricsOut = V;
    } else if (const char *V = Value("--cache-dir=")) {
      O.CacheDir = V;
      O.UseCache = true;
    } else if (const char *V = Value("--cache-mem-mb=")) {
      if (!cli::parseUnsigned("--cache-mem-mb", V, O.CacheMemMb))
        return false;
      O.UseCache = true;
    } else if (const char *V = Value("--cache-verify=")) {
      if (!cli::parseDouble("--cache-verify", V, O.CacheVerify))
        return false;
      if (O.CacheVerify < 0 || O.CacheVerify > 1) {
        std::fprintf(stderr, "error: --cache-verify must be in [0, 1]\n");
        return false;
      }
      O.UseCache = true;
    } else if (const char *V = Value("--portfolio=")) {
      if (!parsePortfolioMode(V, O.Portfolio)) {
        std::fprintf(stderr,
                     "error: --portfolio must be off, race, or choose\n");
        return false;
      }
    } else if (const char *V = Value("--portfolio-jobs=")) {
      if (!cli::parseUnsigned("--portfolio-jobs", V, O.PortfolioJobs))
        return false;
    } else if (const char *V = Value("--portfolio-table=")) {
      O.PortfolioTable = V;
    } else if (const char *V = Value("--min-confidence=")) {
      if (!cli::parseDouble("--min-confidence", V, O.MinConfidence))
        return false;
      if (O.MinConfidence < 0 || O.MinConfidence > 1) {
        std::fprintf(stderr, "error: --min-confidence must be in [0, 1]\n");
        return false;
      }
    } else if (const char *V = Value("--portfolio-train=")) {
      O.PortfolioTrain = V;
    } else if (Arg == "--per-task-seeds") {
      O.PerTaskSeeds = true;
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    } else {
      O.Inputs.push_back(Arg);
    }
  }
  return true;
}

/// Expands directories into their .dra files; keeps files as given.
/// Returns false (with a diagnostic) for a path that is neither.
bool collectInputs(const std::vector<std::string> &Inputs,
                   std::vector<std::string> &Files) {
  namespace fs = std::filesystem;
  for (const std::string &In : Inputs) {
    std::error_code EC;
    if (fs::is_directory(In, EC)) {
      std::vector<std::string> Found;
      for (const fs::directory_entry &E : fs::directory_iterator(In, EC))
        if (E.is_regular_file() && E.path().extension() == ".dra")
          Found.push_back(E.path().string());
      std::sort(Found.begin(), Found.end());
      Files.insert(Files.end(), Found.begin(), Found.end());
    } else if (fs::is_regular_file(In, EC)) {
      Files.push_back(In);
    } else {
      std::fprintf(stderr, "error: '%s' is not a file or directory\n",
                   In.c_str());
      return false;
    }
  }
  return true;
}

/// --portfolio-train: compile every function with every default arm (one
/// parallel batch per arm), extract features, and write the
/// portfolio-train-v1 corpus dra-tune fits its decision table from.
int runTrainSweep(const Options &O, const PipelineConfig &Base,
                  const std::vector<std::string> &Files,
                  const std::vector<Function> &Functions,
                  const std::vector<uint64_t> &RefFp) {
  const std::vector<PortfolioArm> Arms = defaultPortfolioArms();
  Telemetry Telem;
  BatchOptions BO;
  BO.Jobs = O.Jobs;
  BO.Telem = &Telem;
  BO.PerTaskSeeds = O.PerTaskSeeds;
  BatchCompiler Batch(BO);

  bool AllOk = true;
  std::vector<std::vector<uint64_t>> Costs(Arms.size());
  for (size_t A = 0; A != Arms.size(); ++A) {
    PipelineConfig C = Base;
    C.S = Arms[A].S;
    if (Arms[A].RemapStarts)
      C.Remap.NumStarts = Arms[A].RemapStarts;
    std::vector<PipelineResult> Results = Batch.run(Functions, C);
    for (size_t I = 0; I != Results.size(); ++I) {
      if (fingerprint(interpret(Results[I].F)) != RefFp[I]) {
        std::fprintf(stderr, "error: %s: semantics changed under arm %s\n",
                     Files[I].c_str(), portfolioSchemeKey(Arms[A].S));
        AllOk = false;
      }
      Costs[A].push_back(encodedCost(Results[I]));
    }
  }

  std::ofstream Out(O.PortfolioTrain);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n",
                 O.PortfolioTrain.c_str());
    return 1;
  }
  Out << "{\"schema\":\"portfolio-train-v1\",\"features\":[";
  const std::vector<std::string> &Names = featureNames();
  for (size_t I = 0; I != Names.size(); ++I)
    Out << (I ? "," : "") << '"' << jsonEscape(Names[I]) << '"';
  Out << "],\"arms\":[";
  for (size_t A = 0; A != Arms.size(); ++A)
    Out << (A ? "," : "") << "{\"scheme\":\"" << portfolioSchemeKey(Arms[A].S)
        << "\",\"remap_starts\":" << Arms[A].RemapStarts << "}";
  Out << "],\"samples\":[";
  for (size_t I = 0; I != Functions.size(); ++I) {
    const std::string &Name =
        Functions[I].Name.empty() ? Files[I] : Functions[I].Name;
    Out << (I ? ",\n" : "\n") << "{\"function\":\"" << jsonEscape(Name)
        << "\",\"features\":[";
    std::vector<double> FV = computeFeatures(Functions[I]).asVector();
    for (size_t F = 0; F != FV.size(); ++F) {
      Out << (F ? "," : "");
      writeJsonNumber(Out, FV[F]);
    }
    // encodedCost values are exact in a double far beyond any real
    // corpus (they only lose precision past 2^53 ≈ 2M spill insts).
    Out << "],\"costs\":[";
    for (size_t A = 0; A != Arms.size(); ++A)
      Out << (A ? "," : "") << Costs[A][I];
    Out << "]}";
  }
  Out << "\n]}\n";
  if (!Out.good()) {
    std::fprintf(stderr, "error: write to '%s' failed\n",
                 O.PortfolioTrain.c_str());
    return 1;
  }

  std::vector<size_t> Wins(Arms.size(), 0);
  for (size_t I = 0; I != Functions.size(); ++I) {
    size_t Best = 0;
    for (size_t A = 1; A != Arms.size(); ++A)
      if (Costs[A][I] < Costs[Best][I])
        Best = A;
    ++Wins[Best];
  }
  std::printf("portfolio-train: %zu function(s) x %zu arm(s) -> %s\n",
              Functions.size(), Arms.size(), O.PortfolioTrain.c_str());
  for (size_t A = 0; A != Arms.size(); ++A)
    std::printf("  arm %zu (%s, remap_starts=%u): %zu win(s)\n", A,
                portfolioSchemeKey(Arms[A].S), Arms[A].RemapStarts, Wins[A]);
  return AllOk ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }
  if (O.Inputs.empty()) {
    std::fprintf(stderr, "error: no inputs (try --help)\n");
    return 2;
  }

  std::vector<std::string> Files;
  if (!collectInputs(O.Inputs, Files))
    return 2;
  if (Files.empty()) {
    std::fprintf(stderr, "error: no .dra files found\n");
    return 1;
  }

  PipelineConfig Config;
  Config.S = O.S;
  Config.BaselineK = O.BaselineK;
  Config.Enc.RegN = O.RegN;
  Config.Enc.DiffN = O.DiffN;
  Config.Enc.DiffW = O.DiffW;
  Config.Remap.NumStarts = O.RemapStarts;
  Config.Remap.Jobs = O.RemapJobs;
  if (!Config.Enc.valid()) {
    std::fprintf(stderr, "error: invalid encoding configuration "
                         "(regn/diffn/diffw)\n");
    return 2;
  }

  DecisionTable Table;
  bool HaveTable = false;
  if (!O.PortfolioTable.empty()) {
    std::ifstream In(O.PortfolioTable, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot open --portfolio-table '%s'\n",
                   O.PortfolioTable.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string TErr;
    if (!DecisionTable::fromJson(SS.str(), Table, &TErr)) {
      std::fprintf(stderr, "error: %s: %s\n", O.PortfolioTable.c_str(),
                   TErr.c_str());
      return 2;
    }
    HaveTable = true;
  }
  if (O.Portfolio != PortfolioMode::Off) {
    Config.Portfolio.Mode = O.Portfolio;
    Config.Portfolio.Jobs = O.PortfolioJobs;
    Config.Portfolio.MinConfidence = O.MinConfidence;
    Config.Portfolio.Table = HaveTable ? &Table : nullptr;
  }

  std::vector<Function> Functions;
  std::vector<uint64_t> RefFp;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::string Text(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>{});
    std::string Err;
    auto Parsed = parseFunction(Text, &Err);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s: parse failed: %s\n", File.c_str(),
                   Err.c_str());
      return 1;
    }
    if (!verifyFunction(*Parsed, &Err)) {
      std::fprintf(stderr, "error: %s: invalid function: %s\n",
                   File.c_str(), Err.c_str());
      return 1;
    }
    RefFp.push_back(fingerprint(interpret(*Parsed)));
    Functions.push_back(std::move(*Parsed));
  }

  if (!O.PortfolioTrain.empty())
    return runTrainSweep(O, Config, Files, Functions, RefFp);

  Telemetry Telem;
  MetricsRegistry Metrics;
  if (!O.MetricsOut.empty())
    Config.Metrics = &Metrics;
  std::unique_ptr<ResultCache> Cache;
  if (O.UseCache) {
    ResultCacheOptions CO;
    CO.MemBudgetBytes = static_cast<size_t>(O.CacheMemMb) << 20;
    CO.DiskDir = O.CacheDir;
    CO.VerifyFraction = O.CacheVerify;
    Cache = std::make_unique<ResultCache>(CO);
    if (!O.MetricsOut.empty())
      Cache->setMetrics(&Metrics);
  }
  BatchOptions BO;
  BO.Jobs = O.Jobs;
  BO.Telem = &Telem;
  BO.PerTaskSeeds = O.PerTaskSeeds;
  BO.Cache = Cache.get();
  BatchCompiler Batch(BO);

  uint64_t BatchBeginUs = Telem.nowUs();
  std::vector<PipelineResult> Results = Batch.run(Functions, Config);
  uint64_t BatchUs = Telem.nowUs() - BatchBeginUs;

  std::printf("%-28s %8s %8s %8s %10s %s\n", "file", "insts", "spills",
              "slr", "bytes", "semantics");
  bool AllOk = true;
  for (size_t I = 0; I != Files.size(); ++I) {
    const PipelineResult &R = Results[I];
    bool Same = fingerprint(interpret(R.F)) == RefFp[I];
    AllOk = AllOk && Same;
    std::printf("%-28s %8zu %8zu %8zu %10zu %s\n", Files[I].c_str(),
                R.NumInsts, R.SpillInsts, R.SetLastRegs, R.CodeBytes,
                Same ? "ok" : "CHANGED (bug!)");
  }

  std::printf("\nbatch: %zu files, scheme %s, %u worker(s), %.1f ms "
              "wall\n",
              Files.size(),
              O.Portfolio != PortfolioMode::Off
                  ? (O.Portfolio == PortfolioMode::Race ? "auto (race)"
                                                        : "auto (choose)")
                  : schemeName(O.S),
              Batch.pool().workerCount(),
              static_cast<double>(BatchUs) / 1000.0);
  if (Cache) {
    ResultCacheStats CS = Cache->stats();
    std::printf("cache: %llu hit(s) (%llu mem, %llu disk), %llu miss(es), "
                "%llu eviction(s), %llu load error(s), %llu verified, "
                "%llu mismatch(es)\n",
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.MemHits),
                static_cast<unsigned long long>(CS.DiskHits),
                static_cast<unsigned long long>(CS.Misses),
                static_cast<unsigned long long>(CS.Evictions),
                static_cast<unsigned long long>(CS.LoadErrors),
                static_cast<unsigned long long>(CS.VerifyRecompiles),
                static_cast<unsigned long long>(CS.VerifyMismatches));
    if (CS.VerifyMismatches != 0) {
      std::fprintf(stderr, "error: cache verification found %llu "
                           "mismatch(es) (cached != fresh)\n",
                   static_cast<unsigned long long>(CS.VerifyMismatches));
      AllOk = false;
    }
    Cache->flushMetrics(Metrics);
  }
  std::printf("%-12s %8s %12s %10s %10s %10s\n", "stage", "count",
              "total_us", "mean_us", "min_us", "max_us");
  for (const auto &[Name, S] : Telem.stageStats("stage")) {
    double Mean = S.Count == 0 ? 0.0
                               : static_cast<double>(S.TotalUs) /
                                     static_cast<double>(S.Count);
    std::printf("%-12s %8zu %12llu %10.1f %10llu %10llu\n", Name.c_str(),
                S.Count, static_cast<unsigned long long>(S.TotalUs), Mean,
                static_cast<unsigned long long>(S.MinUs),
                static_cast<unsigned long long>(S.MaxUs));
  }

  if (!O.TraceOut.empty()) {
    std::ofstream Out(O.TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", O.TraceOut.c_str());
      return 1;
    }
    Telem.writeChromeTrace(Out);
    std::fprintf(stderr, "trace written to %s\n", O.TraceOut.c_str());
  }
  if (!O.JsonOut.empty()) {
    std::ofstream Out(O.JsonOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", O.JsonOut.c_str());
      return 1;
    }
    Telem.writeJson(Out);
    std::fprintf(stderr, "report written to %s\n", O.JsonOut.c_str());
  }
  if (!O.MetricsOut.empty()) {
    std::string Err;
    if (!Metrics.writeJsonFile(O.MetricsOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", O.MetricsOut.c_str());
  }

  return AllOk ? 0 : 1;
}
