//===- tools/dra-fuzz.cpp - Differential-testing fuzz driver --------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Sweeps seeded random programs through every differential scheme and
// encoding-config variant, checking each case with the lockstep
// interpreter oracle and the structural invariants (src/fuzz/). Failing
// cases are delta-debugged to a minimal program and serialized as
// self-contained repro files that `--repro=FILE` replays exactly.
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "driver/Metrics.h"
#include "driver/ThreadPool.h"
#include "frontend/Frontend.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Repro.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-fuzz [options]\n"
    "       dra-fuzz --repro=FILE\n"
    "\n"
    "Differential-testing harness: generates seeded random programs and\n"
    "checks, for every scheme variant (remap, select, coalesce, plus\n"
    "remap-parallel — the remap pipeline with the multi-start search on\n"
    "pool workers — cache-replay, which recompiles through a warm result\n"
    "cache and requires a bit-identical replay, and csrc, which compiles\n"
    "a seeded random mini-C source file through the frontend and fuzzes\n"
    "the lowered function) and encoding\n"
    "variant ({lowend, vliw} x {src-first, dst-first} x {with, without\n"
    "special registers}), that the pipeline preserves semantics,\n"
    "that decode(encode(F)) == F field for field, that the lockstep\n"
    "interpreter oracle sees identical traces, and that the structural\n"
    "invariants hold (permutation well-formedness, interference\n"
    "preservation, move legality). Failures are minimized by delta\n"
    "debugging and written as self-contained repro files.\n"
    "\n"
    "The sweep is deterministic: case K of a given --base-seed is the\n"
    "same program and configuration at any --jobs and in any chunking.\n"
    "\n"
    "options:\n"
    "  --seeds=N          cases to run (default 90; a multiple of the\n"
    "                     36-variant scheme x config matrix covers it\n"
    "                     evenly)\n"
    "  --only=VARIANT     run only case slots of one scheme variant\n"
    "                     (remap|select|coalesce|remap-parallel|\n"
    "                     cache-replay|csrc); indices are taken from the\n"
    "                     full matrix, so each case is identical to its\n"
    "                     unfiltered run\n"
    "  --seed-start=N     first case index (default 0); resume a sweep\n"
    "                     with --seed-start=<cases already run>\n"
    "  --base-seed=N      base RNG seed for the whole sweep (default 1)\n"
    "  --jobs=N           pool workers (default 0 = hardware concurrency)\n"
    "  --time-budget=SEC  stop launching new cases after SEC seconds\n"
    "                     (default 0 = run all --seeds cases)\n"
    "  --step-limit=N     interpreter step budget per execution\n"
    "                     (default 2000000)\n"
    "  --inject-fault=F   corrupt the encoder output of every case:\n"
    "                     none|drop-join|corrupt-code|drop-delayed\n"
    "                     (mutation-tests the harness itself)\n"
    "  --no-minimize      skip delta debugging of failures\n"
    "  --repro-dir=DIR    write one .repro file per failure into DIR\n"
    "                     (created if missing); without it the repro text\n"
    "                     is printed to stdout\n"
    "  --repro=FILE       replay one repro file instead of sweeping\n"
    "  --metrics-out=FILE write fuzz.cases / fuzz.mismatches /\n"
    "                     fuzz.minimize_steps counters as dra-metrics-v1\n"
    "                     JSON (compare runs with dra-stats)\n"
    "  --help             show this text\n"
    "\n"
    "exit status: 0 when every case passes (or a replayed repro no longer\n"
    "fails), 1 when any case fails (or a replayed repro still fails), 2 on\n"
    "a command-line error.\n";

struct Options {
  uint64_t Seeds = 90;
  uint64_t SeedStart = 0;
  uint64_t BaseSeed = 1;
  unsigned Jobs = 0;
  double TimeBudgetSec = 0;
  uint64_t StepLimit = 2'000'000;
  InjectFault Fault = InjectFault::None;
  bool Minimize = true;
  bool Help = false;
  std::string Only;
  std::string ReproDir;
  std::string ReproFile;
  std::string MetricsOut;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--seeds=")) {
      if (!cli::parseU64("--seeds", V, O.Seeds))
        return false;
    } else if (const char *V = Value("--seed-start=")) {
      if (!cli::parseU64("--seed-start", V, O.SeedStart))
        return false;
    } else if (const char *V = Value("--base-seed=")) {
      if (!cli::parseU64("--base-seed", V, O.BaseSeed))
        return false;
    } else if (const char *V = Value("--jobs=")) {
      if (!cli::parseUnsigned("--jobs", V, O.Jobs))
        return false;
    } else if (const char *V = Value("--time-budget=")) {
      if (!cli::parseDouble("--time-budget", V, O.TimeBudgetSec))
        return false;
    } else if (const char *V = Value("--step-limit=")) {
      if (!cli::parseU64("--step-limit", V, O.StepLimit))
        return false;
    } else if (const char *V = Value("--inject-fault=")) {
      if (!parseInjectFault(V, O.Fault)) {
        std::fprintf(stderr, "error: unknown fault '%s'\n", V);
        return false;
      }
    } else if (Arg == "--no-minimize") {
      O.Minimize = false;
    } else if (const char *V = Value("--only=")) {
      O.Only = V;
    } else if (const char *V = Value("--repro-dir=")) {
      O.ReproDir = V;
    } else if (const char *V = Value("--repro=")) {
      O.ReproFile = V;
    } else if (const char *V = Value("--metrics-out=")) {
      O.MetricsOut = V;
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    }
  }
  return true;
}

/// Replays one repro file: the embedded program under the embedded case
/// configuration. Returns the process exit status.
int replayRepro(const Options &O) {
  std::ifstream In(O.ReproFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", O.ReproFile.c_str());
    return 2;
  }
  std::string Text(std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>{});
  FuzzCase FC;
  Function P;
  std::string Err;
  if (!loadRepro(Text, FC, P, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  std::printf("replaying %s (case %s)\n", O.ReproFile.c_str(),
              FC.name().c_str());
  if (FC.CSrc) {
    // csrc repros replay from the embedded mini-C source so the frontend
    // is part of the replayed path (the IR body is informational).
    CcDiag D;
    std::optional<Function> F = compileCSource("repro", FC.CSource, &D);
    if (!F) {
      std::printf("FAIL: frontend rejected repro source: %s\n",
                  D.render().c_str());
      return 1;
    }
    P = std::move(*F);
  }
  std::optional<std::string> Failure = checkProgram(P, FC);
  if (Failure) {
    std::printf("FAIL: %s\n", Failure->c_str());
    return 1;
  }
  std::printf("ok: repro no longer fails\n");
  return 0;
}

bool writeReproFile(const std::string &Dir, const FuzzCase &FC,
                    const Function &P, std::string &PathOut) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(Dir, EC);
  PathOut = (fs::path(Dir) / (FC.name() + ".repro")).string();
  std::ofstream Out(PathOut);
  if (!Out)
    return false;
  Out << writeRepro(FC, P);
  return static_cast<bool>(Out);
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }
  if (!O.ReproFile.empty())
    return replayRepro(O);
  if (O.Seeds == 0) {
    std::fprintf(stderr, "error: --seeds must be positive\n");
    return 2;
  }

  ThreadPool Pool(O.Jobs);
  MetricsRegistry Metrics;
  auto Begin = std::chrono::steady_clock::now();
  auto ElapsedSec = [&Begin] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Begin)
        .count();
  };

  uint64_t Ran = 0;
  uint64_t Failures = 0;
  uint64_t TotalMinimizeSteps = 0;
  uint64_t TotalDynInsts = 0;
  bool OutOfTime = false;

  // The sweep's case list: --seeds consecutive matrix indices, or with
  // --only the first --seeds indices whose scheme-variant slot matches.
  // Filtering selects indices, never redefines them, so a filtered case
  // is bit-identical to the same case in a full sweep.
  std::vector<uint64_t> CaseIndices;
  if (O.Only.empty()) {
    for (uint64_t I = 0; I != O.Seeds; ++I)
      CaseIndices.push_back(O.SeedStart + I);
  } else {
    bool Known = false;
    for (uint64_t V = 0; V != caseMatrixSize(); ++V)
      Known = Known || O.Only == caseVariantName(V);
    if (!Known) {
      std::fprintf(stderr, "error: unknown variant '%s' for --only\n",
                   O.Only.c_str());
      return 2;
    }
    for (uint64_t I = O.SeedStart; CaseIndices.size() < O.Seeds; ++I)
      if (O.Only == caseVariantName(I))
        CaseIndices.push_back(I);
  }

  // Chunked sweep: the pool drains one stripe of cases, then the time
  // budget is consulted before the next stripe launches. Case identity
  // depends only on (base seed, index), so chunk size and job count never
  // change what any case runs — only whether it runs before the budget
  // expires.
  const size_t Chunk =
      std::max<size_t>(static_cast<size_t>(Pool.workerCount()) * 4,
                       caseMatrixSize());
  for (size_t Pos = 0; Pos < CaseIndices.size();) {
    if (O.TimeBudgetSec > 0 && ElapsedSec() >= O.TimeBudgetSec) {
      OutOfTime = true;
      break;
    }
    size_t End = std::min(Pos + Chunk, CaseIndices.size());
    size_t N = End - Pos;
    std::vector<FuzzCaseResult> Results =
        Pool.parallelMap<FuzzCaseResult>(N, [&](size_t I) {
          FuzzCase FC = caseForIndex(O.BaseSeed, CaseIndices[Pos + I]);
          FC.StepLimit = O.StepLimit;
          FC.Fault = O.Fault;
          return runFuzzCase(FC, O.Minimize ? 600 : 0);
        });

    for (size_t I = 0; I != Results.size(); ++I) {
      const FuzzCaseResult &R = Results[I];
      FuzzCase FC = caseForIndex(O.BaseSeed, CaseIndices[Pos + I]);
      FC.StepLimit = O.StepLimit;
      FC.Fault = O.Fault;
      ++Ran;
      TotalDynInsts += R.OracleDynInsts;
      TotalMinimizeSteps += R.MinimizeSteps;
      MetricLabels L{{"scheme", schemeName(FC.S)},
                     {"result", R.Ok ? "ok" : "mismatch"}};
      Metrics.count("fuzz.cases", 1, L);
      if (R.Ok)
        continue;
      ++Failures;
      Metrics.count("fuzz.mismatches", 1,
                    MetricLabels{{"scheme", schemeName(FC.S)}});
      Metrics.count("fuzz.minimize_steps",
                    static_cast<double>(R.MinimizeSteps),
                    MetricLabels{{"scheme", schemeName(FC.S)}});
      std::printf("FAIL %s: %s\n", FC.name().c_str(), R.Detail.c_str());
      if (!O.ReproDir.empty()) {
        std::string Path;
        if (writeReproFile(O.ReproDir, FC, R.Program, Path))
          std::printf("  repro written to %s (%zu minimize steps)\n",
                      Path.c_str(), R.MinimizeSteps);
        else
          std::fprintf(stderr, "error: cannot write repro to %s\n",
                       Path.c_str());
      } else {
        std::printf("---- repro (replay with --repro) ----\n%s"
                    "---- end repro ----\n",
                    writeRepro(FC, R.Program).c_str());
      }
    }
    Pos = End;
  }

  double Sec = ElapsedSec();
  std::printf("dra-fuzz: %llu case(s), %llu failure(s), %u worker(s), "
              "%.1fs wall, %.1fM oracle insts%s\n",
              static_cast<unsigned long long>(Ran),
              static_cast<unsigned long long>(Failures),
              Pool.workerCount(), Sec,
              static_cast<double>(TotalDynInsts) / 1e6,
              OutOfTime ? " (time budget reached)" : "");

  if (!O.MetricsOut.empty()) {
    Metrics.gauge("fuzz.wall_seconds", Sec);
    Metrics.gauge("fuzz.oracle_dyn_insts",
                  static_cast<double>(TotalDynInsts));
    std::string Err;
    if (!Metrics.writeJsonFile(O.MetricsOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }
  return Failures == 0 ? 0 : 1;
}
