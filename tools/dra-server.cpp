//===- tools/dra-server.cpp - Compilation-as-a-service daemon -------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Persistent compile server: listens on a unix socket, answers framed
// CompileRequests (see src/server/Protocol.h) out of a shared
// content-addressed ResultCache, dispatching misses onto a thread pool.
// Responses are byte-identical to what dra-batch would cache for the same
// input. SIGINT/SIGTERM drain gracefully: in-flight requests finish,
// metrics are flushed, the socket file is removed, exit status 0.
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "driver/ResultCache.h"
#include "server/Server.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-server --socket=PATH [options]\n"
    "\n"
    "Runs the differential-register-allocation compile service on a unix\n"
    "stream socket. Clients (dra-loadgen, tests) send framed dra-req-v1\n"
    "requests; the server answers from a shared two-tier result cache,\n"
    "compiling misses on a worker pool. SIGINT/SIGTERM shut down\n"
    "gracefully: accepted requests finish, metrics flush, exit 0.\n"
    "\n"
    "options:\n"
    "  --socket=PATH          unix socket path (required)\n"
    "  --workers=N            compile workers (default 0 = hardware\n"
    "                         concurrency)\n"
    "  --queue-depth=N        admission bound: max in-flight requests\n"
    "                         before shedding (default 64; 0 sheds all)\n"
    "  --max-frame-bytes=N    per-frame payload cap (default 16 MiB)\n"
    "  --cache-dir=DIR        persistent cache tier (dra-cache-v1 files)\n"
    "  --cache-mem-mb=N       in-memory cache budget in MiB (default 64)\n"
    "  --cache-verify=F       recompile fraction F of cache hits and\n"
    "                         byte-compare against the cached result\n"
    "  --metrics-out=FILE     write server.* + cache.* metrics\n"
    "                         (dra-metrics-v1) on shutdown and every\n"
    "                         --metrics-interval\n"
    "  --metrics-interval=S   periodic metrics export period in seconds\n"
    "                         (default 0 = only on shutdown)\n"
    "  --flight-recorder=N    request records retained for dra-ctl-v1\n"
    "                         'recent' / dra-top (default 256; 0 disables)\n"
    "  --slow-request-us=N    requests at/above N microseconds keep full\n"
    "                         span detail in the flight recorder\n"
    "                         (default 100000)\n"
    "  --portfolio=MODE       how scheme=auto requests are served:\n"
    "                         off (default: structured error), race\n"
    "                         (race the scheme portfolio, commit the\n"
    "                         deterministic winner), choose (consult the\n"
    "                         --portfolio-table chooser, race on low\n"
    "                         confidence)\n"
    "  --portfolio-table=FILE portfolio-v1 decision table (dra-tune\n"
    "                         output) for --portfolio=choose\n"
    "  --portfolio-jobs=N     workers per portfolio race (default 0 =\n"
    "                         one per arm; results identical at any N)\n"
    "  --help                 show this text\n"
    "\n"
    "exit status: 0 on clean (signal-driven) shutdown, 1 on a runtime\n"
    "error, 2 on a command-line error.\n";

struct Options {
  std::string Socket;
  unsigned Workers = 0;
  unsigned QueueDepth = 64;
  size_t MaxFrameBytes = DefaultMaxFrameBytes;
  std::string CacheDir;
  unsigned CacheMemMb = 64;
  double CacheVerify = 0;
  std::string MetricsOut;
  unsigned MetricsIntervalS = 0;
  size_t FlightRecorder = 256;
  uint64_t SlowRequestUs = 100000;
  PortfolioMode Portfolio = PortfolioMode::Off;
  std::string PortfolioTable;
  unsigned PortfolioJobs = 0;
  bool Help = false;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--socket=")) {
      O.Socket = V;
    } else if (const char *V = Value("--workers=")) {
      if (!cli::parseUnsigned("--workers", V, O.Workers))
        return false;
    } else if (const char *V = Value("--queue-depth=")) {
      if (!cli::parseUnsigned("--queue-depth", V, O.QueueDepth))
        return false;
    } else if (const char *V = Value("--max-frame-bytes=")) {
      if (!cli::parseSize("--max-frame-bytes", V, O.MaxFrameBytes))
        return false;
    } else if (const char *V = Value("--cache-dir=")) {
      O.CacheDir = V;
    } else if (const char *V = Value("--cache-mem-mb=")) {
      if (!cli::parseUnsigned("--cache-mem-mb", V, O.CacheMemMb))
        return false;
    } else if (const char *V = Value("--cache-verify=")) {
      if (!cli::parseDouble("--cache-verify", V, O.CacheVerify))
        return false;
      if (O.CacheVerify < 0 || O.CacheVerify > 1) {
        std::fprintf(stderr, "error: --cache-verify must be in [0, 1]\n");
        return false;
      }
    } else if (const char *V = Value("--metrics-out=")) {
      O.MetricsOut = V;
    } else if (const char *V = Value("--metrics-interval=")) {
      if (!cli::parseUnsigned("--metrics-interval", V, O.MetricsIntervalS))
        return false;
    } else if (const char *V = Value("--flight-recorder=")) {
      if (!cli::parseSize("--flight-recorder", V, O.FlightRecorder))
        return false;
    } else if (const char *V = Value("--slow-request-us=")) {
      if (!cli::parseU64("--slow-request-us", V, O.SlowRequestUs))
        return false;
    } else if (const char *V = Value("--portfolio=")) {
      if (!parsePortfolioMode(V, O.Portfolio)) {
        std::fprintf(stderr,
                     "error: --portfolio must be off, race, or choose\n");
        return false;
      }
    } else if (const char *V = Value("--portfolio-table=")) {
      O.PortfolioTable = V;
    } else if (const char *V = Value("--portfolio-jobs=")) {
      if (!cli::parseUnsigned("--portfolio-jobs", V, O.PortfolioJobs))
        return false;
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    }
  }
  return true;
}

/// Self-pipe for signal-driven shutdown: the handler's only action is an
/// async-signal-safe write; the main thread sleeps in poll() on the read
/// end, so the drain logic runs in a normal context.
int SignalPipe[2] = {-1, -1};

void onShutdownSignal(int) {
  char Byte = 1;
  ssize_t Ignored = write(SignalPipe[1], &Byte, 1);
  (void)Ignored;
}

bool writeMetrics(const Options &O, CompileServer &Server,
                  MetricsRegistry &Metrics) {
  if (O.MetricsOut.empty())
    return true;
  Server.flushMetrics();
  std::string Err;
  if (!Metrics.writeJsonFile(O.MetricsOut, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }
  if (O.Socket.empty()) {
    std::fprintf(stderr, "error: --socket is required (try --help)\n");
    return 2;
  }

  if (pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction SA;
  std::memset(&SA, 0, sizeof SA);
  SA.sa_handler = onShutdownSignal;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
  signal(SIGPIPE, SIG_IGN);

  MetricsRegistry Metrics;
  ResultCacheOptions CO;
  CO.MemBudgetBytes = static_cast<size_t>(O.CacheMemMb) << 20;
  CO.DiskDir = O.CacheDir;
  CO.VerifyFraction = O.CacheVerify;
  ResultCache Cache(CO);
  Cache.setMetrics(&Metrics);

  // The decision table outlives the server (ServerOptions borrows it).
  DecisionTable Table;
  bool HaveTable = false;
  if (!O.PortfolioTable.empty()) {
    std::ifstream In(O.PortfolioTable, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot open --portfolio-table '%s'\n",
                   O.PortfolioTable.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string TErr;
    if (!DecisionTable::fromJson(SS.str(), Table, &TErr)) {
      std::fprintf(stderr, "error: %s: %s\n", O.PortfolioTable.c_str(),
                   TErr.c_str());
      return 2;
    }
    HaveTable = true;
  }
  if (O.Portfolio == PortfolioMode::Choose && !HaveTable)
    std::fprintf(stderr, "dra-server: --portfolio=choose without a "
                         "--portfolio-table races every request\n");

  ServerOptions SO;
  SO.SocketPath = O.Socket;
  SO.Workers = O.Workers;
  SO.QueueDepth = O.QueueDepth;
  SO.MaxFrameBytes = O.MaxFrameBytes;
  SO.Cache = &Cache;
  SO.Metrics = &Metrics;
  SO.FlightRecorderSize = O.FlightRecorder;
  SO.SlowRequestUs = O.SlowRequestUs;
  SO.Portfolio = O.Portfolio;
  SO.PortfolioTable = HaveTable ? &Table : nullptr;
  SO.PortfolioJobs = O.PortfolioJobs;
  CompileServer Server(SO);

  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr, "dra-server: listening on %s (%u worker(s), "
                       "queue depth %u)\n",
               O.Socket.c_str(), Server.workerCount(), O.QueueDepth);

  // Sleep until a shutdown signal, waking for the periodic export.
  int TimeoutMs =
      O.MetricsIntervalS ? static_cast<int>(O.MetricsIntervalS) * 1000 : -1;
  for (;;) {
    struct pollfd Pfd = {SignalPipe[0], POLLIN, 0};
    int N = poll(&Pfd, 1, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: poll: %s\n", std::strerror(errno));
      break;
    }
    if (N == 0) { // periodic flush
      writeMetrics(O, Server, Metrics);
      continue;
    }
    break; // signal arrived
  }

  std::fprintf(stderr, "dra-server: draining...\n");
  Server.stop();
  bool Ok = writeMetrics(O, Server, Metrics);
  ResultCacheStats CS = Cache.stats();
  std::fprintf(stderr,
               "dra-server: served %llu request(s) (%llu shed, %llu "
               "error(s)); cache %llu hit(s) / %llu miss(es)\n",
               static_cast<unsigned long long>(
                   Server.serverMetrics().Requests.load()),
               static_cast<unsigned long long>(Server.queue().shed()),
               static_cast<unsigned long long>(
                   Server.serverMetrics().Errors.load()),
               static_cast<unsigned long long>(CS.Hits),
               static_cast<unsigned long long>(CS.Misses));
  if (Cache.stats().VerifyMismatches != 0) {
    std::fprintf(stderr, "error: cache verification found mismatches\n");
    Ok = false;
  }
  return Ok ? 0 : 1;
}
