//===- tools/dra-tune.cpp - Offline portfolio chooser trainer -------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Fits the scheme-portfolio decision table (core/Portfolio.h) from a
// training dump produced by `dra-batch --portfolio-train`. The model is a
// small axis-aligned decision tree over the per-function feature vector
// (core/Features.h), grown greedily: each node keeps the arm with the
// lowest total encoded cost over its samples, and splits only when some
// feature threshold strictly lowers the summed best-arm cost of the two
// children. Everything is deterministic — ties break toward the lowest
// arm index, lowest feature index, lowest threshold — so retraining on
// the same dump reproduces the same table byte for byte.
//
// The output is a portfolio-v1 JSON table for `dra-server
// --portfolio=choose` / `dra-batch --portfolio-table`. `--metrics-out`
// additionally writes the training-set evaluation (dra-metrics-v1:
// portfolio.mispredict_rate gauge + portfolio.train_samples counter) for
// CI gating with dra-stats.
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "core/Portfolio.h"
#include "driver/Json.h"
#include "driver/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-tune --train=FILE --out=FILE [options]\n"
    "\n"
    "Fits a portfolio-v1 decision table from a portfolio-train-v1 dump\n"
    "(dra-batch --portfolio-train). The tree is grown greedily on total\n"
    "encoded cost and is fully deterministic: the same dump always\n"
    "produces the same table.\n"
    "\n"
    "options:\n"
    "  --train=FILE       portfolio-train-v1 training dump (required)\n"
    "  --out=FILE         portfolio-v1 decision table to write (required)\n"
    "  --metrics-out=FILE write the training-set evaluation\n"
    "                     (portfolio.mispredict_rate gauge +\n"
    "                     portfolio.train_samples) as dra-metrics-v1;\n"
    "                     gate regressions with dra-stats --fail-on\n"
    "  --max-depth=N      maximum tree depth; 0 = a single leaf\n"
    "                     (default 3)\n"
    "  --min-leaf=N       minimum samples per leaf (default 2)\n"
    "  --help             show this text\n"
    "\n"
    "exit status: 0 on success, 1 when the dump cannot be read or the\n"
    "fitted table fails validation, 2 on a command-line error.\n";

struct Options {
  std::string Train;
  std::string Out;
  std::string MetricsOut;
  unsigned MaxDepth = 3;
  unsigned MinLeaf = 2;
  bool Help = false;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--train=")) {
      O.Train = V;
    } else if (const char *V = Value("--out=")) {
      O.Out = V;
    } else if (const char *V = Value("--metrics-out=")) {
      O.MetricsOut = V;
    } else if (const char *V = Value("--max-depth=")) {
      if (!cli::parseUnsigned("--max-depth", V, O.MaxDepth))
        return false;
    } else if (const char *V = Value("--min-leaf=")) {
      if (!cli::parseUnsigned("--min-leaf", V, O.MinLeaf))
        return false;
      if (O.MinLeaf == 0) {
        std::fprintf(stderr, "error: --min-leaf must be >= 1\n");
        return false;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    }
  }
  return true;
}

/// One training sample: a feature vector plus the measured encoded cost
/// of every arm on that function.
struct Sample {
  std::string Function;
  std::vector<double> Features;
  std::vector<uint64_t> Costs;
  size_t BestArm = 0; ///< argmin over Costs, lowest index on ties.
};

struct TrainingSet {
  std::vector<std::string> Features;
  std::vector<PortfolioArm> Arms;
  std::vector<Sample> Samples;
};

bool loadErr(const std::string &File, const std::string &Msg,
             std::string *Err) {
  if (Err)
    *Err = File + ": " + Msg;
  return false;
}

/// Reads a portfolio-train-v1 dump. Strict: schema tag, parallel array
/// lengths, and cost/feature arity are all checked so a truncated or
/// hand-edited dump fails loudly instead of training a skewed table.
bool loadTrainingSet(const std::string &File, TrainingSet &TS,
                     std::string *Err) {
  std::ifstream In(File, std::ios::binary);
  if (!In)
    return loadErr(File, "cannot open", Err);
  std::string Text(std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>{});
  JsonValue Doc;
  std::string PErr;
  if (!parseJson(Text, Doc, &PErr))
    return loadErr(File, PErr, Err);
  if (Doc.K != JsonValue::Object)
    return loadErr(File, "top level is not an object", Err);
  const JsonValue *Schema = Doc.field("schema");
  if (!Schema || Schema->K != JsonValue::String ||
      Schema->Str != "portfolio-train-v1")
    return loadErr(File, "missing schema tag \"portfolio-train-v1\"", Err);

  const JsonValue *Feat = Doc.field("features");
  if (!Feat || Feat->K != JsonValue::Array || Feat->Arr.empty())
    return loadErr(File, "missing \"features\" array", Err);
  for (const JsonValue &V : Feat->Arr) {
    if (V.K != JsonValue::String)
      return loadErr(File, "non-string feature name", Err);
    TS.Features.push_back(V.Str);
  }

  const JsonValue *Arms = Doc.field("arms");
  if (!Arms || Arms->K != JsonValue::Array || Arms->Arr.empty())
    return loadErr(File, "missing \"arms\" array", Err);
  for (const JsonValue &V : Arms->Arr) {
    if (V.K != JsonValue::Object)
      return loadErr(File, "arm is not an object", Err);
    const JsonValue *S = V.field("scheme");
    PortfolioArm A;
    if (!S || S->K != JsonValue::String ||
        !parsePortfolioSchemeKey(S->Str, A.S))
      return loadErr(File, "arm has no valid \"scheme\"", Err);
    if (const JsonValue *RS = V.field("remap_starts")) {
      if (RS->K != JsonValue::Number || RS->Num < 0)
        return loadErr(File, "arm \"remap_starts\" is not a number", Err);
      A.RemapStarts = static_cast<unsigned>(RS->Num);
    }
    TS.Arms.push_back(A);
  }

  const JsonValue *Samples = Doc.field("samples");
  if (!Samples || Samples->K != JsonValue::Array)
    return loadErr(File, "missing \"samples\" array", Err);
  for (const JsonValue &V : Samples->Arr) {
    if (V.K != JsonValue::Object)
      return loadErr(File, "sample is not an object", Err);
    Sample S;
    if (const JsonValue *N = V.field("function"))
      if (N->K == JsonValue::String)
        S.Function = N->Str;
    const JsonValue *F = V.field("features");
    if (!F || F->K != JsonValue::Array || F->Arr.size() != TS.Features.size())
      return loadErr(File, "sample \"features\" arity mismatch", Err);
    for (const JsonValue &X : F->Arr) {
      if (X.K != JsonValue::Number)
        return loadErr(File, "non-numeric feature value", Err);
      S.Features.push_back(X.Num);
    }
    const JsonValue *C = V.field("costs");
    if (!C || C->K != JsonValue::Array || C->Arr.size() != TS.Arms.size())
      return loadErr(File, "sample \"costs\" arity mismatch", Err);
    for (const JsonValue &X : C->Arr) {
      if (X.K != JsonValue::Number || X.Num < 0)
        return loadErr(File, "non-numeric cost value", Err);
      S.Costs.push_back(static_cast<uint64_t>(X.Num));
    }
    for (size_t A = 1; A != S.Costs.size(); ++A)
      if (S.Costs[A] < S.Costs[S.BestArm])
        S.BestArm = A;
    TS.Samples.push_back(std::move(S));
  }
  if (TS.Samples.empty())
    return loadErr(File, "no training samples", Err);
  return true;
}

/// Total cost of serving every sample in \p Idx with arm \p Arm.
uint64_t armTotalCost(const TrainingSet &TS, const std::vector<size_t> &Idx,
                      size_t Arm) {
  uint64_t Total = 0;
  for (size_t I : Idx)
    Total += TS.Samples[I].Costs[Arm];
  return Total;
}

/// The leaf decision for \p Idx: the arm with the lowest total cost
/// (lowest index on ties), its total, and the best-arm purity.
struct LeafFit {
  size_t Arm = 0;
  uint64_t TotalCost = 0;
  double Confidence = 0;
};

LeafFit fitLeaf(const TrainingSet &TS, const std::vector<size_t> &Idx) {
  LeafFit L;
  L.TotalCost = armTotalCost(TS, Idx, 0);
  for (size_t A = 1; A != TS.Arms.size(); ++A) {
    uint64_t T = armTotalCost(TS, Idx, A);
    if (T < L.TotalCost) {
      L.TotalCost = T;
      L.Arm = A;
    }
  }
  size_t Agree = 0;
  for (size_t I : Idx)
    if (TS.Samples[I].BestArm == L.Arm)
      ++Agree;
  L.Confidence = Idx.empty() ? 0 : double(Agree) / double(Idx.size());
  return L;
}

/// Grows the tree under Nodes[Node] from the samples in \p Idx.
/// Children are appended after their parent, which is exactly the
/// acyclicity shape DecisionTable::valid() demands.
void growNode(const TrainingSet &TS, const Options &O,
              std::vector<DecisionNode> &Nodes, size_t Node,
              std::vector<size_t> Idx, unsigned Depth) {
  LeafFit Leaf = fitLeaf(TS, Idx);
  auto MakeLeaf = [&] {
    Nodes[Node].Feature = -1;
    Nodes[Node].Arm = static_cast<int>(Leaf.Arm);
    Nodes[Node].Confidence = Leaf.Confidence;
    Nodes[Node].Samples = static_cast<unsigned>(Idx.size());
  };
  if (Depth >= O.MaxDepth || Idx.size() < 2 * size_t(O.MinLeaf) ||
      Leaf.Confidence == 1.0)
    return MakeLeaf();

  // Best split: lowest summed child best-arm cost, strictly better than
  // no split at all. Candidates are the midpoints between consecutive
  // distinct values of each feature.
  int BestFeature = -1;
  double BestThreshold = 0;
  uint64_t BestScore = Leaf.TotalCost;
  std::vector<size_t> BestLeft, BestRight;
  for (size_t F = 0; F != TS.Features.size(); ++F) {
    std::vector<double> Values;
    for (size_t I : Idx)
      Values.push_back(TS.Samples[I].Features[F]);
    std::sort(Values.begin(), Values.end());
    Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
    for (size_t V = 0; V + 1 < Values.size(); ++V) {
      double Threshold = (Values[V] + Values[V + 1]) / 2;
      std::vector<size_t> Left, Right;
      for (size_t I : Idx)
        (TS.Samples[I].Features[F] <= Threshold ? Left : Right).push_back(I);
      if (Left.size() < O.MinLeaf || Right.size() < O.MinLeaf)
        continue;
      uint64_t Score = fitLeaf(TS, Left).TotalCost +
                       fitLeaf(TS, Right).TotalCost;
      if (Score < BestScore) {
        BestScore = Score;
        BestFeature = static_cast<int>(F);
        BestThreshold = Threshold;
        BestLeft = std::move(Left);
        BestRight = std::move(Right);
      }
    }
  }
  if (BestFeature < 0)
    return MakeLeaf();

  Nodes[Node].Feature = BestFeature;
  Nodes[Node].Threshold = BestThreshold;
  size_t L = Nodes.size();
  Nodes.emplace_back();
  Nodes[Node].Left = static_cast<int>(L);
  growNode(TS, O, Nodes, L, std::move(BestLeft), Depth + 1);
  size_t R = Nodes.size();
  Nodes.emplace_back();
  Nodes[Node].Right = static_cast<int>(R);
  growNode(TS, O, Nodes, R, std::move(BestRight), Depth + 1);
}

DecisionTable fitTable(const TrainingSet &TS, const Options &O) {
  DecisionTable T;
  T.Features = TS.Features;
  T.Arms = TS.Arms;
  T.Nodes.emplace_back();
  std::vector<size_t> All(TS.Samples.size());
  for (size_t I = 0; I != All.size(); ++I)
    All[I] = I;
  growNode(TS, O, T.Nodes, 0, std::move(All), 0);
  return T;
}

/// Training-set evaluation: a sample counts as mispredicted when the
/// chosen arm's cost exceeds that sample's best achievable cost (so a
/// prediction that merely ties the optimum is not an error).
struct EvalResult {
  size_t Mispredicts = 0;
  double Rate = 0;
  size_t Leaves = 0;
  unsigned Depth = 0;
};

EvalResult evaluate(const TrainingSet &TS, const DecisionTable &T) {
  EvalResult E;
  for (const Sample &S : TS.Samples) {
    DecisionPrediction P = T.predict(S.Features);
    size_t Arm = P.Arm < 0 ? 0 : size_t(P.Arm);
    if (S.Costs[Arm] > S.Costs[S.BestArm])
      ++E.Mispredicts;
  }
  E.Rate = double(E.Mispredicts) / double(TS.Samples.size());
  std::vector<std::pair<size_t, unsigned>> Stack{{0, 0}};
  while (!Stack.empty()) {
    auto [N, D] = Stack.back();
    Stack.pop_back();
    E.Depth = std::max(E.Depth, D);
    if (T.Nodes[N].Feature < 0) {
      ++E.Leaves;
      continue;
    }
    Stack.push_back({size_t(T.Nodes[N].Left), D + 1});
    Stack.push_back({size_t(T.Nodes[N].Right), D + 1});
  }
  return E;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }
  if (O.Train.empty() || O.Out.empty()) {
    std::fprintf(stderr, "error: --train and --out are required "
                         "(try --help)\n");
    return 2;
  }

  TrainingSet TS;
  std::string Err;
  if (!loadTrainingSet(O.Train, TS, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  DecisionTable Table = fitTable(TS, O);
  if (!Table.valid(&Err)) {
    std::fprintf(stderr, "error: fitted table is invalid: %s\n", Err.c_str());
    return 1;
  }
  EvalResult E = evaluate(TS, Table);

  std::ofstream Out(O.Out, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", O.Out.c_str());
    return 1;
  }
  Out << Table.toJson();
  Out.close();
  if (!Out) {
    std::fprintf(stderr, "error: write to '%s' failed\n", O.Out.c_str());
    return 1;
  }

  if (!O.MetricsOut.empty()) {
    MetricsRegistry Metrics;
    Metrics.setCount("portfolio.train_samples",
                     static_cast<double>(TS.Samples.size()));
    Metrics.setCount("portfolio.train_mispredicts",
                     static_cast<double>(E.Mispredicts));
    Metrics.gauge("portfolio.mispredict_rate", E.Rate);
    std::string MErr;
    if (!Metrics.writeJsonFile(O.MetricsOut, &MErr)) {
      std::fprintf(stderr, "error: %s\n", MErr.c_str());
      return 1;
    }
  }

  std::printf("dra-tune: %zu sample(s) x %zu arm(s) -> %s\n",
              TS.Samples.size(), TS.Arms.size(), O.Out.c_str());
  std::printf("dra-tune: tree depth %u, %zu leaf(s), mispredict rate "
              "%.1f%% (%zu/%zu)\n",
              E.Depth, E.Leaves, E.Rate * 100, E.Mispredicts,
              TS.Samples.size());
  return 0;
}
