//===- tools/CliNum.h - Strict numeric CLI-argument parsing -----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict numeric parsing for command-line values, shared by every tool.
/// Unlike atoi/atof — which silently return 0 for garbage and ignore
/// trailing junk, so `--zipf=1.o` ran as zipf 1 and `--jobs=` as 0 —
/// these helpers accept a value only when the ENTIRE string is a valid
/// number in range: no empty strings, no trailing characters, no
/// sign/overflow wraparound for unsigned flags, no inf/nan.
///
/// The Flag-taking overloads print a uniform diagnostic to stderr and
/// return false, matching the tools' parseArgs convention.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_TOOLS_CLINUM_H
#define DRA_TOOLS_CLINUM_H

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace dra {
namespace cli {

/// Parses \p S as a finite double. Accepts only a complete numeric string
/// (optional sign, decimal or exponent form); rejects empty input,
/// trailing garbage, inf/nan and out-of-range magnitudes.
inline bool parseDoubleValue(const char *S, double &Out) {
  if (!S || !*S)
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(S, &End);
  if (End == S || *End != '\0' || errno == ERANGE || !std::isfinite(V))
    return false;
  Out = V;
  return true;
}

/// Parses \p S as a base-10 uint64_t. Rejects empty input, any sign
/// character (strtoull silently wraps "-1"), trailing garbage and
/// overflow.
inline bool parseU64Value(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  if (*S == '-' || *S == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0' || errno == ERANGE)
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

/// Parses \p S as an unsigned (additionally range-checked to UINT_MAX).
inline bool parseUnsignedValue(const char *S, unsigned &Out) {
  uint64_t V;
  if (!parseU64Value(S, V) || V > UINT_MAX)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

/// Parses \p S as a size_t (range-checked on 32-bit size_t).
inline bool parseSizeValue(const char *S, size_t &Out) {
  uint64_t V;
  if (!parseU64Value(S, V) || V > SIZE_MAX)
    return false;
  Out = static_cast<size_t>(V);
  return true;
}

inline bool numError(const char *Flag, const char *S, const char *Kind) {
  std::fprintf(stderr, "error: %s expects %s, got '%s'\n", Flag, Kind, S);
  return false;
}

/// parseArgs-convention wrappers: on bad input, print
/// "error: <flag> expects ..., got '<value>'" and return false.
inline bool parseDouble(const char *Flag, const char *S, double &Out) {
  return parseDoubleValue(S, Out) || numError(Flag, S, "a number");
}

inline bool parseU64(const char *Flag, const char *S, uint64_t &Out) {
  return parseU64Value(S, Out) ||
         numError(Flag, S, "a non-negative integer");
}

inline bool parseUnsigned(const char *Flag, const char *S, unsigned &Out) {
  return parseUnsignedValue(S, Out) ||
         numError(Flag, S, "a non-negative integer");
}

inline bool parseSize(const char *Flag, const char *S, size_t &Out) {
  return parseSizeValue(S, Out) ||
         numError(Flag, S, "a non-negative integer");
}

} // namespace cli
} // namespace dra

#endif // DRA_TOOLS_CLINUM_H
