//===- tools/dra-cc.cpp - Mini-C compiler driver --------------------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Compiles mini-C source files (see DESIGN.md "Mini-C frontend") through
// the frontend and the allocation pipelines, runs the result under the
// interpreter, and checks it against the frontend IR's behavior and the
// program's `// expect: N` annotation. The --test-dir mode is the corpus
// runner behind the tests/cc/ executable test suite: every program must
// produce its annotated value under all five schemes.
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "core/Pipeline.h"
#include "frontend/Frontend.h"
#include "interp/Interpreter.h"
#include "opt/ConstantFold.h"
#include "opt/DeadCode.h"
#include "opt/SimplifyCfg.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-cc [options] [input.c ...]\n"
    "\n"
    "Compiles mini-C source (stdin when no file is given) through the\n"
    "frontend, runs the allocation pipelines on the lowered IR, and\n"
    "interprets the result. Each compiled function must behave exactly\n"
    "like the frontend IR; a '// expect: N' annotation in the source\n"
    "additionally pins main's return value.\n"
    "\n"
    "modes:\n"
    "  (default)          compile each input through the selected schemes\n"
    "                     and report 'file: scheme ... -> value'\n"
    "  --test-dir=DIR     corpus runner: compile every *.c under DIR, all\n"
    "                     five schemes; every file must carry an\n"
    "                     '// expect: N' annotation (exit 1 otherwise)\n"
    "  --emit-dir=DIR     lower only: write DIR/<stem>.dra in the textual\n"
    "                     IR syntax for dra-opt/dra-batch/dra-loadgen\n"
    "\n"
    "pipeline options:\n"
    "  --scheme=NAME      baseline|ospill|remap|select|coalesce|all\n"
    "                     (default all)\n"
    "  --baseline-k=N     registers of the unmodified ISA (default 8)\n"
    "  --regn=N           differential registers (default 12)\n"
    "  --diffn=N          difference codes (default 8)\n"
    "  --diffw=N          field width in bits (default 3)\n"
    "  --cleanup          run fold/simplify/DCE before allocation\n"
    "\n"
    "output options:\n"
    "  --expect=N         require main to return N (overrides annotation)\n"
    "  --emit-ir          print the lowered (pre-allocation) IR\n"
    "  --print-code       print each scheme's allocated function\n"
    "  --help             show this text\n"
    "\n"
    "exit status: 0 on success, 1 when compilation fails or any scheme\n"
    "changes behavior or misses the expected value, 2 on a command-line\n"
    "error.\n";

struct Options {
  bool AllSchemes = true;
  Scheme S = Scheme::Coalesce;
  unsigned BaselineK = 8;
  unsigned RegN = 12;
  unsigned DiffN = 8;
  unsigned DiffW = 3;
  bool Cleanup = false;
  bool EmitIr = false;
  bool PrintCode = false;
  bool Help = false;
  bool HaveExpect = false;
  int64_t Expect = 0;
  std::string TestDir;
  std::string EmitDir;
  std::vector<std::string> InputFiles;
};

bool parseScheme(const std::string &Name, Options &O) {
  O.AllSchemes = false;
  if (Name == "baseline")
    O.S = Scheme::Baseline;
  else if (Name == "ospill")
    O.S = Scheme::OSpill;
  else if (Name == "remap")
    O.S = Scheme::Remap;
  else if (Name == "select")
    O.S = Scheme::Select;
  else if (Name == "coalesce")
    O.S = Scheme::Coalesce;
  else if (Name == "all")
    O.AllSchemes = true;
  else
    return false;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--scheme=")) {
      if (!parseScheme(V, O)) {
        std::fprintf(stderr, "error: unknown scheme '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--baseline-k=")) {
      if (!cli::parseUnsigned("--baseline-k", V, O.BaselineK))
        return false;
    } else if (const char *V = Value("--regn=")) {
      if (!cli::parseUnsigned("--regn", V, O.RegN))
        return false;
    } else if (const char *V = Value("--diffn=")) {
      if (!cli::parseUnsigned("--diffn", V, O.DiffN))
        return false;
    } else if (const char *V = Value("--diffw=")) {
      if (!cli::parseUnsigned("--diffw", V, O.DiffW))
        return false;
    } else if (const char *V = Value("--expect=")) {
      uint64_t Mag = 0;
      bool Neg = *V == '-';
      if (!cli::parseU64("--expect", Neg ? V + 1 : V, Mag))
        return false;
      uint64_t Limit =
          Neg ? (static_cast<uint64_t>(INT64_MAX) + 1) : INT64_MAX;
      if (Mag > Limit) {
        std::fprintf(stderr, "error: --expect value out of int64 range\n");
        return false;
      }
      O.Expect = static_cast<int64_t>(Neg ? 0 - Mag : Mag);
      O.HaveExpect = true;
    } else if (const char *V = Value("--test-dir=")) {
      O.TestDir = V;
    } else if (const char *V = Value("--emit-dir=")) {
      O.EmitDir = V;
    } else if (Arg == "--cleanup") {
      O.Cleanup = true;
    } else if (Arg == "--emit-ir") {
      O.EmitIr = true;
    } else if (Arg == "--print-code") {
      O.PrintCode = true;
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    } else {
      O.InputFiles.push_back(Arg);
    }
  }
  return true;
}

std::vector<Scheme> schemesToRun(const Options &O) {
  if (O.AllSchemes)
    return {Scheme::Baseline, Scheme::OSpill, Scheme::Remap, Scheme::Select,
            Scheme::Coalesce};
  return {O.S};
}

PipelineConfig configFor(const Options &O, Scheme S) {
  PipelineConfig C;
  C.S = S;
  C.BaselineK = O.BaselineK;
  C.Enc.RegN = O.RegN;
  C.Enc.DiffN = O.DiffN;
  C.Enc.DiffW = O.DiffW;
  return C;
}

/// Compiles one source through the frontend. On failure prints the
/// positioned diagnostic and returns std::nullopt.
std::optional<Function> frontend(const std::string &Label,
                                 const std::string &Source,
                                 const Options &O) {
  CcDiag D;
  auto F = compileCSource(Label, Source, &D);
  if (!F) {
    std::fprintf(stderr, "error: %s: %s\n", Label.c_str(),
                 D.render().c_str());
    return std::nullopt;
  }
  if (O.Cleanup) {
    foldConstants(*F);
    simplifyCfg(*F);
    eliminateDeadCode(*F);
  }
  return F;
}

/// Runs every requested scheme on \p F and checks each result against
/// the frontend IR's fingerprint and (when present) \p Expect. Returns
/// false on any mismatch. \p Quiet suppresses per-scheme output lines.
bool runSchemes(const std::string &Label, const Function &F,
                const Options &O, const int64_t *Expect, bool Quiet) {
  ExecResult Ref = interpret(F);
  if (Ref.HitStepLimit) {
    std::fprintf(stderr, "error: %s: interpreter step limit hit\n",
                 Label.c_str());
    return false;
  }
  uint64_t RefFp = fingerprint(Ref);
  if (Expect && Ref.ReturnValue != *Expect) {
    std::fprintf(stderr,
                 "FAIL %s: frontend IR returned %lld, expected %lld\n",
                 Label.c_str(), static_cast<long long>(Ref.ReturnValue),
                 static_cast<long long>(*Expect));
    return false;
  }
  bool Ok = true;
  for (Scheme S : schemesToRun(O)) {
    PipelineResult R = runPipeline(F, configFor(O, S));
    ExecResult Got = interpret(R.F);
    if (fingerprint(Got) != RefFp || Got.ReturnValue != Ref.ReturnValue) {
      std::fprintf(stderr,
                   "FAIL %s: scheme %s changed behavior (returned %lld, "
                   "frontend IR returned %lld)\n",
                   Label.c_str(), schemeName(S),
                   static_cast<long long>(Got.ReturnValue),
                   static_cast<long long>(Ref.ReturnValue));
      Ok = false;
      continue;
    }
    if (!Quiet)
      std::printf("%s: %-22s -> %lld  (insts %zu, spill%% %.2f, "
                  "set_last%% %.2f)\n",
                  Label.c_str(), schemeName(S),
                  static_cast<long long>(Got.ReturnValue), R.NumInsts,
                  R.spillPercent(), R.setLastPercent());
    if (O.PrintCode)
      std::fputs(printFunction(R.F).c_str(), stdout);
  }
  return Ok;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// A source file's stem ("tests/cc/fib.c" -> "fib"), used to label
/// functions and name emitted .dra files.
std::string stemOf(const std::string &Path) {
  return std::filesystem::path(Path).stem().string();
}

int runCorpus(const Options &O) {
  std::vector<std::string> Files;
  std::error_code EC;
  for (std::filesystem::directory_iterator It(O.TestDir, EC), End;
       !EC && It != End; It.increment(EC)) {
    if (It->path().extension() == ".c")
      Files.push_back(It->path().string());
  }
  if (EC) {
    std::fprintf(stderr, "error: cannot read test dir '%s': %s\n",
                 O.TestDir.c_str(), EC.message().c_str());
    return 1;
  }
  if (Files.empty()) {
    std::fprintf(stderr, "error: no *.c files under '%s'\n",
                 O.TestDir.c_str());
    return 1;
  }
  std::sort(Files.begin(), Files.end());

  size_t Passed = 0, Failed = 0;
  for (const std::string &Path : Files) {
    std::string Source;
    if (!readFile(Path, Source)) {
      ++Failed;
      continue;
    }
    auto Expect = expectedReturnAnnotation(Source);
    if (!Expect) {
      std::fprintf(stderr,
                   "FAIL %s: missing '// expect: N' annotation (every "
                   "corpus program must pin its return value)\n",
                   Path.c_str());
      ++Failed;
      continue;
    }
    auto F = frontend(stemOf(Path), Source, O);
    if (!F) {
      ++Failed;
      continue;
    }
    if (runSchemes(Path, *F, O, &*Expect, /*Quiet=*/true)) {
      std::printf("PASS %s (expect %lld, all %zu scheme(s))\n", Path.c_str(),
                  static_cast<long long>(*Expect), schemesToRun(O).size());
      ++Passed;
    } else {
      ++Failed;
    }
  }
  std::printf("corpus: %zu passed, %zu failed (of %zu)\n", Passed, Failed,
              Files.size());
  return Failed ? 1 : 0;
}

int runEmit(const Options &O) {
  std::error_code EC;
  std::filesystem::create_directories(O.EmitDir, EC);
  if (EC) {
    std::fprintf(stderr, "error: cannot create '%s': %s\n", O.EmitDir.c_str(),
                 EC.message().c_str());
    return 1;
  }
  if (O.InputFiles.empty()) {
    std::fprintf(stderr, "error: --emit-dir requires input files\n");
    return 2;
  }
  for (const std::string &Path : O.InputFiles) {
    std::string Source;
    if (!readFile(Path, Source))
      return 1;
    auto F = frontend(stemOf(Path), Source, O);
    if (!F)
      return 1;
    std::string OutPath =
        (std::filesystem::path(O.EmitDir) / (stemOf(Path) + ".dra"))
            .string();
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
      return 1;
    }
    Out << printFunction(*F);
    std::printf("%s -> %s\n", Path.c_str(), OutPath.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }
  if (!O.TestDir.empty())
    return runCorpus(O);
  if (!O.EmitDir.empty())
    return runEmit(O);

  // Default mode: compile + run each input (stdin when none).
  std::vector<std::pair<std::string, std::string>> Sources;
  if (O.InputFiles.empty()) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Sources.emplace_back("<stdin>", Buffer.str());
  } else {
    for (const std::string &Path : O.InputFiles) {
      std::string Source;
      if (!readFile(Path, Source))
        return 1;
      Sources.emplace_back(Path, std::move(Source));
    }
  }

  bool Ok = true;
  for (const auto &[Label, Source] : Sources) {
    std::string Name = Label == "<stdin>" ? "stdin" : stemOf(Label);
    auto F = frontend(Name, Source, O);
    if (!F) {
      Ok = false;
      continue;
    }
    if (O.EmitIr)
      std::fputs(printFunction(*F).c_str(), stdout);
    // The annotation participates in the default mode too, so corpus
    // files behave identically run directly or via --test-dir.
    int64_t Expect = 0;
    const int64_t *ExpectPtr = nullptr;
    if (O.HaveExpect) {
      Expect = O.Expect;
      ExpectPtr = &Expect;
    } else if (auto Ann = expectedReturnAnnotation(Source)) {
      Expect = *Ann;
      ExpectPtr = &Expect;
    }
    if (!runSchemes(Label, *F, O, ExpectPtr, /*Quiet=*/false))
      Ok = false;
  }
  return Ok ? 0 : 1;
}
