//===- tools/dra-loadgen.cpp - Compile-service load harness ---------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Replays a corpus of .dra functions against a running dra-server (or one
// it spawns itself) with zipf-distributed request popularity, measures
// client-observed latency per cache tier, verifies a sampled fraction of
// responses byte-for-byte against a local oracle recompile, and writes a
// dra-metrics-v1 benchmark report (default BENCH_server.json) that
// dra-stats can diff and gate (`--fail-on=loadgen.latency_us{tier=miss}.p99`).
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "adt/Rng.h"
#include "adt/Statistics.h"
#include "driver/ResultCache.h"
#include "driver/Trace.h"
#include "ir/Parser.h"
#include "server/Protocol.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-loadgen --socket=PATH [options] <dir-or-file.dra ...>\n"
    "\n"
    "Drives a dra-server with zipf-distributed requests drawn from the\n"
    "given corpus, measures client-observed latency per cache tier\n"
    "(hit_mem / hit_disk / miss), optionally verifies responses against a\n"
    "local oracle recompile, and writes a dra-metrics-v1 report with\n"
    "loadgen.* counters, latency histograms and a throughput gauge.\n"
    "\n"
    "options:\n"
    "  --socket=PATH       server unix socket (required)\n"
    "  --server-bin=PATH   spawn this dra-server binary on --socket first,\n"
    "                      SIGTERM + reap it afterwards (its exit status\n"
    "                      folds into ours); for self-contained CI jobs\n"
    "  --server-opt=OPT    extra argument for the spawned server\n"
    "                      (repeatable, e.g. --server-opt=--queue-depth=0)\n"
    "  --concurrency=N     client connections driving load (default 4)\n"
    "  --requests=N        total requests to send (default 200)\n"
    "  --duration=S        stop after S seconds instead (requests becomes\n"
    "                      a cap only if explicitly given)\n"
    "  --zipf=S            zipf skew over the sorted corpus (default 1.0;\n"
    "                      0 = uniform)\n"
    "  --seed=N            base RNG seed (default 1)\n"
    "  --verify=F          fraction of ok responses recompiled locally and\n"
    "                      byte-compared against the response (default 0)\n"
    "  --trace-out=FILE    trace every request (traceid= on the wire) and\n"
    "                      write one merged Chrome trace: client rpc spans\n"
    "                      and the server's inline span summaries on a\n"
    "                      shared steady-clock timeline, linked per request\n"
    "                      by trace id (open in chrome://tracing/Perfetto)\n"
    "  --fail-on-shed      exit nonzero if any request was shed\n"
    "  --bench-out=FILE    dra-metrics-v1 report (default BENCH_server.json;\n"
    "                      empty disables)\n"
    "  --scheme=NAME       baseline|ospill|remap|select|coalesce|auto\n"
    "                      (default coalesce). auto delegates the choice\n"
    "                      to the server's scheme portfolio; --verify then\n"
    "                      recompiles with a local default-arm race, which\n"
    "                      matches a server running --portfolio=race with\n"
    "                      default arms byte-for-byte (any --portfolio-jobs)\n"
    "  --baseline-k=N      registers of the unmodified ISA (default 8)\n"
    "  --regn=N            differential registers (default 12)\n"
    "  --diffn=N           difference codes (default 8)\n"
    "  --diffw=N           field width in bits (default 3)\n"
    "  --remap-starts=N    remapping restarts (default 200)\n"
    "  --help              show this text\n"
    "\n"
    "exit status: 0 on success; 1 on any verify mismatch, protocol error,\n"
    "error response, zero completed requests, shed requests under\n"
    "--fail-on-shed, or a nonzero spawned-server exit; 2 on a\n"
    "command-line error.\n";

struct Options {
  std::string Socket;
  std::string ServerBin;
  std::vector<std::string> ServerOpts;
  unsigned Concurrency = 4;
  uint64_t Requests = 200;
  bool RequestsExplicit = false;
  unsigned DurationS = 0;
  double Zipf = 1.0;
  uint64_t Seed = 1;
  double Verify = 0;
  std::string TraceOut;
  bool FailOnShed = false;
  std::string BenchOut = "BENCH_server.json";
  Scheme S = Scheme::Coalesce;
  bool Auto = false;
  unsigned BaselineK = 8;
  unsigned RegN = 12;
  unsigned DiffN = 8;
  unsigned DiffW = 3;
  unsigned RemapStarts = 200;
  bool Help = false;
  std::vector<std::string> Inputs;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--socket=")) {
      O.Socket = V;
    } else if (const char *V = Value("--server-bin=")) {
      O.ServerBin = V;
    } else if (const char *V = Value("--server-opt=")) {
      O.ServerOpts.push_back(V);
    } else if (const char *V = Value("--concurrency=")) {
      if (!cli::parseUnsigned("--concurrency", V, O.Concurrency))
        return false;
      if (O.Concurrency == 0) {
        std::fprintf(stderr, "error: --concurrency must be >= 1\n");
        return false;
      }
    } else if (const char *V = Value("--requests=")) {
      if (!cli::parseU64("--requests", V, O.Requests))
        return false;
      O.RequestsExplicit = true;
    } else if (const char *V = Value("--duration=")) {
      if (!cli::parseUnsigned("--duration", V, O.DurationS))
        return false;
    } else if (const char *V = Value("--zipf=")) {
      if (!cli::parseDouble("--zipf", V, O.Zipf))
        return false;
      if (O.Zipf < 0) {
        std::fprintf(stderr, "error: --zipf must be >= 0\n");
        return false;
      }
    } else if (const char *V = Value("--seed=")) {
      if (!cli::parseU64("--seed", V, O.Seed))
        return false;
    } else if (const char *V = Value("--verify=")) {
      if (!cli::parseDouble("--verify", V, O.Verify))
        return false;
      if (O.Verify < 0 || O.Verify > 1) {
        std::fprintf(stderr, "error: --verify must be in [0, 1]\n");
        return false;
      }
    } else if (const char *V = Value("--trace-out=")) {
      O.TraceOut = V;
    } else if (const char *V = Value("--bench-out=")) {
      O.BenchOut = V;
    } else if (const char *V = Value("--scheme=")) {
      if (std::strcmp(V, "auto") == 0) {
        O.Auto = true;
      } else if (!parseSchemeName(V, O.S)) {
        std::fprintf(stderr, "error: unknown scheme '%s'\n", V);
        return false;
      }
    } else if (const char *V = Value("--baseline-k=")) {
      if (!cli::parseUnsigned("--baseline-k", V, O.BaselineK))
        return false;
    } else if (const char *V = Value("--regn=")) {
      if (!cli::parseUnsigned("--regn", V, O.RegN))
        return false;
    } else if (const char *V = Value("--diffn=")) {
      if (!cli::parseUnsigned("--diffn", V, O.DiffN))
        return false;
    } else if (const char *V = Value("--diffw=")) {
      if (!cli::parseUnsigned("--diffw", V, O.DiffW))
        return false;
    } else if (const char *V = Value("--remap-starts=")) {
      if (!cli::parseUnsigned("--remap-starts", V, O.RemapStarts))
        return false;
    } else if (Arg == "--fail-on-shed") {
      O.FailOnShed = true;
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    } else {
      O.Inputs.push_back(Arg);
    }
  }
  return true;
}

bool collectInputs(const std::vector<std::string> &Inputs,
                   std::vector<std::string> &Files) {
  namespace fs = std::filesystem;
  for (const std::string &In : Inputs) {
    std::error_code EC;
    if (fs::is_directory(In, EC)) {
      std::vector<std::string> Found;
      for (const fs::directory_entry &E : fs::directory_iterator(In, EC))
        if (E.is_regular_file() && E.path().extension() == ".dra")
          Found.push_back(E.path().string());
      std::sort(Found.begin(), Found.end());
      Files.insert(Files.end(), Found.begin(), Found.end());
    } else if (fs::is_regular_file(In, EC)) {
      Files.push_back(In);
    } else {
      std::fprintf(stderr, "error: '%s' is not a file or directory\n",
                   In.c_str());
      return false;
    }
  }
  return true;
}

struct CorpusEntry {
  std::string Text;
  Function Parsed;
};

/// One traced request: the client-side rpc span plus whatever span
/// summary the server echoed back. Collected only under --trace-out.
struct TracedRequest {
  uint64_t TraceId = 0;
  uint64_t ClientTid = 0; ///< OS tid of the worker thread.
  uint64_t BeginNs = 0, EndNs = 0;
  const char *Status = "ok";
  std::string Tier;
  uint64_t ServerPid = 0;
  std::vector<WireSpan> Spans;
  std::vector<std::pair<uint64_t, std::string>> ThreadNames;
};

/// One worker's tallies; merged after the join.
struct WorkerStats {
  uint64_t Sent = 0, Ok = 0, Shed = 0, ErrorResponses = 0, ProtoErrors = 0;
  uint64_t VerifyChecked = 0, VerifyMismatches = 0;
  /// (tier label, client-observed microseconds) per ok response.
  std::vector<std::pair<const char *, double>> Latencies;
  std::vector<TracedRequest> Traced;
};

const char *responseStatusLabel(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::Shed:
    return "shed";
  case ResponseStatus::Error:
    return "error";
  }
  return "?";
}

const char *internTier(const std::string &Tier) {
  if (Tier == "hit_mem")
    return "hit_mem";
  if (Tier == "hit_disk")
    return "hit_disk";
  return "miss";
}

/// Spawns `dra-server --socket=... <opts>` and waits until the socket
/// accepts. Returns the child pid, or -1.
pid_t spawnServer(const Options &O) {
  std::vector<std::string> Args;
  Args.push_back(O.ServerBin);
  Args.push_back("--socket=" + O.Socket);
  for (const std::string &Opt : O.ServerOpts)
    Args.push_back(Opt);
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  pid_t Pid = fork();
  if (Pid < 0) {
    std::fprintf(stderr, "error: fork: %s\n", std::strerror(errno));
    return -1;
  }
  if (Pid == 0) {
    execv(Argv[0], Argv.data());
    std::fprintf(stderr, "error: exec '%s': %s\n", Argv[0],
                 std::strerror(errno));
    _exit(127);
  }
  // Poll-connect until the server is accepting (or the child died).
  for (int Attempt = 0; Attempt != 500; ++Attempt) {
    int Fd = connectUnixSocket(O.Socket);
    if (Fd >= 0) {
      close(Fd);
      return Pid;
    }
    int Status = 0;
    if (waitpid(Pid, &Status, WNOHANG) == Pid) {
      std::fprintf(stderr, "error: spawned server exited during startup\n");
      return -1;
    }
    usleep(20 * 1000);
  }
  std::fprintf(stderr, "error: spawned server never started accepting\n");
  kill(Pid, SIGKILL);
  waitpid(Pid, nullptr, 0);
  return -1;
}

/// SIGTERM + reap; true when the server exited 0 (the graceful-drain
/// contract).
bool stopServer(pid_t Pid) {
  kill(Pid, SIGTERM);
  int Status = 0;
  if (waitpid(Pid, &Status, 0) != Pid)
    return false;
  return WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
}

/// Writes the merged client+server Chrome trace: one "rpc" span per traced
/// request on the client process's rows, plus the server's echoed span
/// summaries on the server process's rows, every event annotated with its
/// trace id. Both processes stamp the same machine steady clock, so the
/// only arithmetic is rebasing to the earliest event.
bool writeMergedTrace(const std::string &Path,
                      const std::vector<WorkerStats> &Stats,
                      size_t &EventsOut) {
  uint64_t MinNs = UINT64_MAX;
  for (const WorkerStats &S : Stats)
    for (const TracedRequest &T : S.Traced) {
      MinNs = std::min(MinNs, T.BeginNs);
      for (const WireSpan &Sp : T.Spans)
        MinNs = std::min(MinNs, Sp.BeginNs);
    }
  if (MinNs == UINT64_MAX)
    MinNs = 0;

  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  ChromeTraceWriter W(OS);
  const uint64_t ClientPid = osProcessId();
  W.processName(ClientPid, "dra-loadgen");
  for (size_t WI = 0; WI != Stats.size(); ++WI)
    if (!Stats[WI].Traced.empty())
      W.threadName(ClientPid, Stats[WI].Traced.front().ClientTid,
                   "client-" + std::to_string(WI));
  // Server metadata: the union of thread names echoed across responses,
  // grouped by the (normally unique) server pid.
  std::map<uint64_t, std::map<uint64_t, std::string>> ServerThreads;
  for (const WorkerStats &S : Stats)
    for (const TracedRequest &T : S.Traced)
      if (T.ServerPid)
        for (const auto &[Tid, Name] : T.ThreadNames)
          ServerThreads[T.ServerPid].emplace(Tid, Name);
  for (const auto &[Pid, Threads] : ServerThreads) {
    W.processName(Pid, "dra-server");
    for (const auto &[Tid, Name] : Threads)
      W.threadName(Pid, Tid, Name);
  }

  auto RelUs = [&](uint64_t Ns) { return double(Ns - MinNs) / 1000.0; };
  for (const WorkerStats &S : Stats)
    for (const TracedRequest &T : S.Traced) {
      std::string Hex = traceIdToHex(T.TraceId);
      W.completeEvent(ClientPid, T.ClientTid, "rpc", "client",
                      RelUs(T.BeginNs), double(T.EndNs - T.BeginNs) / 1000.0,
                      {{"traceid", Hex},
                       {"status", T.Status},
                       {"tier", T.Tier.empty() ? "none" : T.Tier}});
      for (const WireSpan &Sp : T.Spans)
        W.completeEvent(T.ServerPid ? T.ServerPid : ClientPid, Sp.Tid,
                        Sp.Name, "server", RelUs(Sp.BeginNs),
                        double(Sp.DurNs) / 1000.0, {{"traceid", Hex}});
    }
  W.finish();
  EventsOut = W.eventCount();
  return OS.good();
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }
  if (O.Socket.empty()) {
    std::fprintf(stderr, "error: --socket is required (try --help)\n");
    return 2;
  }
  if (O.Inputs.empty()) {
    std::fprintf(stderr, "error: no corpus inputs (try --help)\n");
    return 2;
  }
  signal(SIGPIPE, SIG_IGN);

  std::vector<std::string> Files;
  if (!collectInputs(O.Inputs, Files))
    return 2;
  if (Files.empty()) {
    std::fprintf(stderr, "error: no .dra files found\n");
    return 1;
  }

  std::vector<CorpusEntry> Corpus;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 1;
    }
    CorpusEntry E;
    E.Text.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>{});
    std::string Err;
    auto Parsed = parseFunction(E.Text, &Err);
    if (!Parsed || !verifyFunction(*Parsed, &Err)) {
      std::fprintf(stderr, "error: %s: %s\n", File.c_str(), Err.c_str());
      return 1;
    }
    E.Parsed = std::move(*Parsed);
    Corpus.push_back(std::move(E));
  }

  // Zipf popularity over the sorted corpus: CDF of rank^-s.
  std::vector<double> Cdf(Corpus.size());
  double Total = 0;
  for (size_t I = 0; I != Corpus.size(); ++I) {
    Total += std::pow(static_cast<double>(I + 1), -O.Zipf);
    Cdf[I] = Total;
  }
  for (double &C : Cdf)
    C /= Total;

  pid_t ServerPid = -1;
  if (!O.ServerBin.empty()) {
    ServerPid = spawnServer(O);
    if (ServerPid < 0)
      return 1;
  }

  CompileRequest Template;
  Template.S = O.S;
  Template.Auto = O.Auto;
  Template.BaselineK = O.BaselineK;
  Template.RegN = O.RegN;
  Template.DiffN = O.DiffN;
  Template.DiffW = O.DiffW;
  Template.RemapStarts = O.RemapStarts;

  uint64_t RequestCap =
      (O.DurationS && !O.RequestsExplicit) ? UINT64_MAX : O.Requests;
  uint64_t DeadlineNs =
      O.DurationS ? steadyClockNs() + uint64_t(O.DurationS) * 1000000000ull
                  : UINT64_MAX;

  std::atomic<uint64_t> NextRequest{0};
  std::vector<WorkerStats> Stats(O.Concurrency);
  std::vector<std::thread> Workers;
  uint64_t WallBeginNs = steadyClockNs();

  const bool Tracing = !O.TraceOut.empty();
  for (unsigned W = 0; W != O.Concurrency; ++W) {
    Workers.emplace_back([&, W] {
      WorkerStats &S = Stats[W];
      Rng R = Rng::forTask(O.Seed, W);
      uint64_t Tid = osThreadId();
      int Fd = connectUnixSocket(O.Socket);
      if (Fd < 0) {
        ++S.ProtoErrors;
        return;
      }
      for (;;) {
        uint64_t I = NextRequest.fetch_add(1);
        if (I >= RequestCap || steadyClockNs() >= DeadlineNs)
          break;
        double U = R.nextDouble();
        size_t Pick = size_t(std::lower_bound(Cdf.begin(), Cdf.end(), U) -
                             Cdf.begin());
        if (Pick >= Corpus.size())
          Pick = Corpus.size() - 1;
        CompileRequest Req = Template;
        Req.Body = Corpus[Pick].Text;
        // Deterministic per-request id from (seed, global index): the same
        // id lands in the server's flight recorder and in the merged
        // Chrome trace, so one grep links a slow request end to end.
        if (Tracing)
          Req.TraceId = deriveTraceId(O.Seed, I);
        std::string IdHex =
            Req.TraceId ? traceIdToHex(Req.TraceId) : std::string("-");

        ++S.Sent;
        CompileResponse Resp;
        std::string Err;
        uint64_t BeginNs = steadyClockNs();
        if (!transact(Fd, Req, Resp, &Err)) {
          ++S.ProtoErrors;
          std::fprintf(stderr,
                       "error: protocol error on request #%llu "
                       "(trace %s): %s\n",
                       static_cast<unsigned long long>(I), IdHex.c_str(),
                       Err.empty() ? "transport failure" : Err.c_str());
          break; // the connection is in an unknown state; stop this worker
        }
        uint64_t EndNs = steadyClockNs();
        double Us = double(EndNs - BeginNs) / 1000.0;
        if (Tracing) {
          TracedRequest T;
          T.TraceId = Req.TraceId;
          T.ClientTid = Tid;
          T.BeginNs = BeginNs;
          T.EndNs = EndNs;
          T.Status = responseStatusLabel(Resp.Status);
          T.Tier = Resp.Tier;
          T.ServerPid = Resp.ServerPid;
          T.Spans = std::move(Resp.Spans);
          T.ThreadNames = std::move(Resp.ThreadNames);
          S.Traced.push_back(std::move(T));
        }
        switch (Resp.Status) {
        case ResponseStatus::Ok: {
          ++S.Ok;
          S.Latencies.emplace_back(internTier(Resp.Tier), Us);
          if (O.Verify > 0 && R.nextDouble() < O.Verify) {
            ++S.VerifyChecked;
            PipelineConfig OracleCfg = Req.toConfig();
            if (Req.Auto) {
              // scheme=auto oracle: a serial default-arm race. Racing is
              // bit-identical at any Jobs, so this matches a server
              // running --portfolio=race exactly; servers in choose mode
              // need --verify=0 (a confident chooser may legitimately
              // commit a non-winning arm).
              OracleCfg.Portfolio.Mode = PortfolioMode::Race;
              OracleCfg.Portfolio.Jobs = 1;
            }
            PipelineResult Oracle =
                runPipeline(Corpus[Pick].Parsed, OracleCfg);
            if (ResultCache::serializeResult(Oracle) != Resp.Body) {
              ++S.VerifyMismatches;
              std::fprintf(stderr,
                           "error: verify mismatch on request #%llu "
                           "(trace %s, tier %s)\n",
                           static_cast<unsigned long long>(I), IdHex.c_str(),
                           Resp.Tier.c_str());
            }
          }
          break;
        }
        case ResponseStatus::Shed:
          ++S.Shed;
          break;
        case ResponseStatus::Error:
          ++S.ErrorResponses;
          break;
        }
      }
      close(Fd);
    });
  }
  for (std::thread &T : Workers)
    T.join();
  double WallUs = double(steadyClockNs() - WallBeginNs) / 1000.0;

  WorkerStats Sum;
  uint64_t TracedCount = 0;
  std::vector<double> AllUs;
  MetricsRegistry Metrics;
  for (const WorkerStats &S : Stats) {
    Sum.Sent += S.Sent;
    Sum.Ok += S.Ok;
    Sum.Shed += S.Shed;
    Sum.ErrorResponses += S.ErrorResponses;
    Sum.ProtoErrors += S.ProtoErrors;
    Sum.VerifyChecked += S.VerifyChecked;
    Sum.VerifyMismatches += S.VerifyMismatches;
    TracedCount += S.Traced.size();
    for (const auto &[Tier, Us] : S.Latencies) {
      AllUs.push_back(Us);
      Metrics.observe("loadgen.latency_us", Us, MetricLabels{{"tier", Tier}});
    }
  }

  double ThroughputRps = WallUs > 0 ? double(Sum.Ok) / (WallUs / 1e6) : 0;
  Metrics.count("loadgen.requests", double(Sum.Sent));
  Metrics.count("loadgen.ok", double(Sum.Ok));
  Metrics.count("loadgen.shed", double(Sum.Shed));
  Metrics.count("loadgen.errors", double(Sum.ErrorResponses));
  Metrics.count("loadgen.proto_errors", double(Sum.ProtoErrors));
  Metrics.count("loadgen.verify_checked", double(Sum.VerifyChecked));
  Metrics.count("loadgen.verify_mismatches", double(Sum.VerifyMismatches));
  Metrics.count("loadgen.traced", double(TracedCount));
  Metrics.gauge("loadgen.throughput_rps", ThroughputRps);
  Metrics.gauge("loadgen.concurrency", double(O.Concurrency));
  Metrics.gauge("loadgen.wall_us", WallUs);

  std::printf("loadgen: %llu request(s) over %u connection(s) in %.1f ms "
              "(%.1f req/s)\n",
              static_cast<unsigned long long>(Sum.Sent), O.Concurrency,
              WallUs / 1000.0, ThroughputRps);
  std::printf("  ok %llu, shed %llu, error %llu, protocol error %llu\n",
              static_cast<unsigned long long>(Sum.Ok),
              static_cast<unsigned long long>(Sum.Shed),
              static_cast<unsigned long long>(Sum.ErrorResponses),
              static_cast<unsigned long long>(Sum.ProtoErrors));
  if (!AllUs.empty())
    std::printf("  latency_us p50 %.1f  p90 %.1f  p95 %.1f  p99 %.1f\n",
                percentile(AllUs, 50), percentile(AllUs, 90),
                percentile(AllUs, 95), percentile(AllUs, 99));
  if (Sum.VerifyChecked)
    std::printf("  verified %llu response(s), %llu mismatch(es)\n",
                static_cast<unsigned long long>(Sum.VerifyChecked),
                static_cast<unsigned long long>(Sum.VerifyMismatches));

  bool ServerOk = true;
  if (ServerPid >= 0) {
    ServerOk = stopServer(ServerPid);
    if (!ServerOk)
      std::fprintf(stderr, "error: spawned server exited abnormally\n");
  }

  if (!O.TraceOut.empty()) {
    size_t TraceEvents = 0;
    if (!writeMergedTrace(O.TraceOut, Stats, TraceEvents))
      return 1;
    std::fprintf(stderr,
                 "trace written to %s (%llu traced request(s), %zu "
                 "event(s))\n",
                 O.TraceOut.c_str(),
                 static_cast<unsigned long long>(TracedCount), TraceEvents);
  }

  if (!O.BenchOut.empty()) {
    std::string Err;
    if (!Metrics.writeJsonFile(O.BenchOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "report written to %s\n", O.BenchOut.c_str());
  }

  bool Ok = ServerOk && Sum.Ok > 0 && Sum.VerifyMismatches == 0 &&
            Sum.ProtoErrors == 0 && Sum.ErrorResponses == 0 &&
            (!O.FailOnShed || Sum.Shed == 0);
  if (Sum.Ok == 0)
    std::fprintf(stderr, "error: no request completed successfully\n");
  return Ok ? 0 : 1;
}
