//===- tools/dra-top.cpp - Live dra-server introspection ------------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Polls a running dra-server over dra-ctl-v1 control requests (answered
// from in-memory state, never the compile path) and renders a live view:
// request throughput, per-tier latency percentiles, trace counters, and
// the flight recorder's most recent requests — slow ones flagged. With
// --json it takes a single snapshot and prints the raw stats + recent
// bodies as one JSON document for scripting.
//
//===----------------------------------------------------------------------===//

#include "CliNum.h"

#include "driver/Json.h"
#include "server/Protocol.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <signal.h>
#include <time.h>
#include <unistd.h>

using namespace dra;

namespace {

const char *UsageText =
    "usage: dra-top --socket=PATH [options]\n"
    "\n"
    "Live introspection for a running dra-server. Sends dra-ctl-v1\n"
    "control requests ('stats' and 'recent') over the compile socket —\n"
    "the server answers them from in-memory state without touching the\n"
    "compile path — and renders throughput, the per-tier latency mix\n"
    "(including the error/shed tiers), trace counters, and the flight\n"
    "recorder's most recent requests, slow ones flagged with '!'.\n"
    "\n"
    "options:\n"
    "  --socket=PATH     server unix socket (required)\n"
    "  --interval=S      seconds between refreshes (default 2)\n"
    "  --count=N         exit after N refreshes (default 0 = until ^C or\n"
    "                    the server goes away)\n"
    "  --recent=N        recent-request rows to show (default 16)\n"
    "  --json            single snapshot, printed as one JSON document\n"
    "                    {\"mono_us\": ..., \"stats\": ..., \"recent\":\n"
    "                    ...} — the control bodies verbatim (raw\n"
    "                    counters) plus a client monotonic timestamp;\n"
    "                    for scripting and CI\n"
    "  --help            show this text\n"
    "\n"
    "exit status: 0 on success, 1 when the server cannot be reached or\n"
    "answers a control request with an error, 2 on a command-line error.\n";

struct Options {
  std::string Socket;
  unsigned IntervalS = 2;
  unsigned Count = 0;
  unsigned RecentN = 16;
  bool Json = false;
  bool Help = false;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = Value("--socket=")) {
      O.Socket = V;
    } else if (const char *V = Value("--interval=")) {
      if (!cli::parseUnsigned("--interval", V, O.IntervalS))
        return false;
      if (O.IntervalS == 0) {
        std::fprintf(stderr, "error: --interval must be >= 1\n");
        return false;
      }
    } else if (const char *V = Value("--count=")) {
      if (!cli::parseUnsigned("--count", V, O.Count))
        return false;
    } else if (const char *V = Value("--recent=")) {
      if (!cli::parseUnsigned("--recent", V, O.RecentN))
        return false;
    } else if (Arg == "--json") {
      O.Json = true;
    } else if (Arg == "--help" || Arg == "-h") {
      O.Help = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   Arg.c_str());
      return false;
    }
  }
  return true;
}

/// One control exchange; false (with a diagnostic) on transport failure
/// or an error response.
bool fetch(int Fd, const std::string &Cmd, size_t RecentN,
           std::string &Body) {
  CtlRequest Req;
  Req.Cmd = Cmd;
  Req.RecentN = RecentN;
  CompileResponse Resp;
  std::string Err;
  if (!transactCtl(Fd, Req, Resp, &Err)) {
    std::fprintf(stderr, "error: control '%s': %s\n", Cmd.c_str(),
                 Err.c_str());
    return false;
  }
  if (Resp.Status != ResponseStatus::Ok) {
    std::fprintf(stderr, "error: control '%s': %s\n", Cmd.c_str(),
                 Resp.Body.c_str());
    return false;
  }
  Body = Resp.Body;
  return true;
}

double numField(const JsonValue &Obj, const char *Name) {
  const JsonValue *V = Obj.field(Name);
  return V && V->K == JsonValue::Number ? V->Num : 0;
}

std::string strField(const JsonValue &Obj, const char *Name) {
  const JsonValue *V = Obj.field(Name);
  return V && V->K == JsonValue::String ? V->Str : std::string("?");
}

/// Client-side monotonic clock in microseconds (for the --json snapshot
/// timestamp; rate rendering uses the server's own uptime_us).
uint64_t monotonicUs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000u +
         static_cast<uint64_t>(Ts.tv_nsec) / 1000u;
}

/// Renders one frame from the parsed stats/recent documents.
/// \p PrevRequests / \p PrevUptimeUs are the server.requests and
/// server.uptime_us of the previous frame (negative on the first one,
/// which suppresses the rate). The rate divides the request delta by the
/// *server's* elapsed uptime, so an interrupted sleep or a wall-clock
/// step cannot skew it; when the elapsed time is zero/near-zero or any
/// counter went backwards (server restarted behind the same socket), the
/// rate renders as '-' instead of inf/nan or a negative surprise.
void render(const JsonValue &Stats, const JsonValue &Recent,
            double PrevRequests, double PrevUptimeUs) {
  const JsonValue *Server = Stats.field("server");
  const JsonValue *Trace = Stats.field("trace");
  const JsonValue *Tiers = Stats.field("tiers");
  if (!Server || !Trace)
    return;

  double Requests = numField(*Server, "requests");
  double UptimeUs = numField(*Server, "uptime_us");
  std::printf("dra-top — pid %.0f, up %.1f s, %.0f worker(s), queue "
              "%.0f/%.0f\n",
              numField(*Server, "pid"), UptimeUs / 1e6,
              numField(*Server, "workers"),
              numField(*Server, "queue_depth"),
              numField(*Server, "queue_limit"));
  std::printf("  requests %.0f", Requests);
  if (PrevRequests >= 0) {
    double ElapsedUs = UptimeUs - PrevUptimeUs;
    // >= 1ms of server time and monotone counters, else no rate.
    if (ElapsedUs >= 1000.0 && Requests >= PrevRequests)
      std::printf(" (%+.1f/s)", (Requests - PrevRequests) /
                                    (ElapsedUs / 1e6));
    else
      std::printf(" (-/s)");
  }
  std::printf("   ctl %.0f   shed %.0f   errors %.0f   bad frames %.0f\n",
              numField(*Server, "ctl_requests"), numField(*Server, "shed"),
              numField(*Server, "errors"), numField(*Server, "bad_frames"));
  std::printf("  trace: %.0f traced, %.0f span(s), %.0f dropped, %.0f "
              "slow (>= %.0f us), flight %.0f/%.0f\n",
              numField(*Trace, "requests"), numField(*Trace, "spans"),
              numField(*Trace, "dropped_spans"),
              numField(*Trace, "slow_requests"),
              numField(*Trace, "slow_threshold_us"),
              numField(*Trace, "flight_recorded"),
              numField(*Trace, "flight_capacity"));

  if (Tiers && Tiers->K == JsonValue::Array && !Tiers->Arr.empty()) {
    std::printf("\n  %-10s %8s %10s %10s %10s %10s\n", "tier", "count",
                "p50_us", "p90_us", "p99_us", "max_us");
    for (const JsonValue &T : Tiers->Arr)
      std::printf("  %-10s %8.0f %10.1f %10.1f %10.1f %10.1f\n",
                  strField(T, "tier").c_str(), numField(T, "count"),
                  numField(T, "p50_us"), numField(T, "p90_us"),
                  numField(T, "p99_us"), numField(T, "max_us"));
  }

  const JsonValue *Records = Recent.field("records");
  if (Records && Records->K == JsonValue::Array && !Records->Arr.empty()) {
    std::printf("\n  %5s  %-16s %-5s %-8s %-8s %10s %9s %10s\n", "seq",
                "trace", "conn", "outcome", "tier", "total_us", "queue_us",
                "compile_us");
    for (const JsonValue &R : Records->Arr) {
      const JsonValue *Spans = R.field("spans");
      size_t SpanCount =
          Spans && Spans->K == JsonValue::Array ? Spans->Arr.size() : 0;
      std::printf("  %5.0f%c %-16s %-5.0f %-8s %-8s %10.1f %9.1f %10.1f",
                  numField(R, "seq"),
                  R.field("slow") && R.field("slow")->B ? '!' : ' ',
                  strField(R, "traceid").c_str(), numField(R, "conn"),
                  strField(R, "outcome").c_str(),
                  strField(R, "tier").c_str(), numField(R, "total_us"),
                  numField(R, "queue_us"), numField(R, "compile_us"));
      if (SpanCount)
        std::printf("  [%zu span(s)]", SpanCount);
      std::printf("\n");
    }
  }
  std::fflush(stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;
  if (O.Help) {
    std::fputs(UsageText, stdout);
    return 0;
  }
  if (O.Socket.empty()) {
    std::fprintf(stderr, "error: --socket is required (try --help)\n");
    return 2;
  }
  signal(SIGPIPE, SIG_IGN);

  std::string ConnErr;
  int Fd = connectUnixSocket(O.Socket, &ConnErr);
  if (Fd < 0) {
    std::fprintf(stderr, "error: %s\n", ConnErr.c_str());
    return 1;
  }

  if (O.Json) {
    std::string Stats, Recent;
    if (!fetch(Fd, "stats", O.RecentN, Stats) ||
        !fetch(Fd, "recent", O.RecentN, Recent)) {
      close(Fd);
      return 1;
    }
    close(Fd);
    // Raw control bodies verbatim (all counters untouched) plus a
    // client-side monotonic timestamp so scripts diffing successive
    // snapshots have a wall-clock-step-immune timebase.
    std::printf("{\"mono_us\": %llu, \"stats\": %s, \"recent\": %s}\n",
                static_cast<unsigned long long>(monotonicUs()),
                Stats.c_str(), Recent.c_str());
    return 0;
  }

  double PrevRequests = -1, PrevUptimeUs = -1;
  const bool Tty = isatty(STDOUT_FILENO);
  for (unsigned Frame = 0; O.Count == 0 || Frame != O.Count; ++Frame) {
    if (Frame != 0)
      sleep(O.IntervalS);
    std::string StatsBody, RecentBody;
    if (!fetch(Fd, "stats", O.RecentN, StatsBody) ||
        !fetch(Fd, "recent", O.RecentN, RecentBody)) {
      close(Fd);
      return 1;
    }
    JsonValue Stats, Recent;
    std::string Err;
    if (!parseJson(StatsBody, Stats, &Err) ||
        !parseJson(RecentBody, Recent, &Err)) {
      std::fprintf(stderr, "error: bad control body: %s\n", Err.c_str());
      close(Fd);
      return 1;
    }
    if (Tty)
      std::printf("\033[H\033[J"); // home + clear: live refresh in place
    else if (Frame != 0)
      std::printf("\n");
    render(Stats, Recent, PrevRequests, PrevUptimeUs);
    const JsonValue *Server = Stats.field("server");
    PrevRequests = Server ? numField(*Server, "requests") : -1;
    PrevUptimeUs = Server ? numField(*Server, "uptime_us") : -1;
  }
  close(Fd);
  return 0;
}
