//===- bench/bench_alloc_core.cpp - Allocator data-layout kernels ---------===//
//
// Microbenchmark for the flat-arena/bitset rework of the allocator hot
// core. Each kernel pairs the seed's data layout ("legacy": per-node
// std::unordered_set adjacency, a global unordered_set<uint64_t> edge-key
// set, std::set<RegId> worklists) against the reworked one ("flat":
// BitMatrix rows + CSR neighbor arrays + IndexSet worklists), running both
// arms on the identical workload in the SAME run on the SAME machine — so
// the ratio is pure data-structure throughput, with no checked-in timing
// baseline to rot. Every pair is checksum-verified: both arms must visit
// the same nodes in the same order (the worklist kernel replays the exact
// min-first simplify discipline the IRC core relies on for bit-identical
// output).
//
// Workloads are interference graphs of ProgramGen functions (real edge
// distributions, built through Liveness + InterferenceGraph) plus one
// larger seeded synthetic graph for scale.
//
// Modes:
//  * default: prints a kernel x arm table and writes BENCH_alloc.json
//    (gauges labeled arm=legacy|flat) in the working directory;
//  * --perf-out=DIR: writes alloc_perf_legacy.json and
//    alloc_perf_flat.json carrying the *same* unlabeled gauge keys, so
//      dra-stats --fail-on=alloc.simplify_per_sec:-33
//          alloc_perf_flat.json alloc_perf_legacy.json
//    fails unless the flat arm holds at least a 1.5x advantage on this
//    machine and run.
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include "adt/IndexSet.h"
#include "adt/Rng.h"
#include "analysis/Liveness.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/ProgramGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

using namespace dra;

namespace {

/// One undirected graph as a flat edge list (A < B), node count attached.
struct EdgeList {
  std::string Name;
  uint32_t N = 0;
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
};

uint64_t fnv1a(uint64_t H, uint64_t V) {
  for (int I = 0; I != 8; ++I) {
    H ^= (V >> (I * 8)) & 0xff;
    H *= 1099511628211ull;
  }
  return H;
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

/// Interference edges of one generated program, via the production build
/// path (Liveness + InterferenceGraph), de-duplicated and normalized.
EdgeList programEdges(const char *Name, uint64_t Seed, unsigned Pressure) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = Pressure;
  P.TopStatements = 18;
  P.OuterTrip = 2;
  Function F = generateProgram(Name, P);
  F.recomputeCFG();
  Liveness LV = Liveness::compute(F);
  InterferenceGraph G = InterferenceGraph::build(F, LV);
  EdgeList E;
  E.Name = Name;
  E.N = G.numNodes();
  for (uint32_t A = 0; A != E.N; ++A)
    for (RegId B : G.neighbors(A))
      if (A < B)
        E.Edges.emplace_back(A, B);
  return E;
}

/// Seeded sparse random graph: the scale the per-function graphs cannot
/// reach, with the allocator-typical low average degree.
EdgeList syntheticEdges(uint32_t N, uint32_t AvgDeg, uint64_t Seed) {
  EdgeList E;
  E.Name = "synthetic";
  E.N = N;
  Rng R(Seed);
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  uint64_t Target = static_cast<uint64_t>(N) * AvgDeg / 2;
  while (Seen.size() < Target) {
    uint32_t A = static_cast<uint32_t>(R.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(R.nextBelow(N));
    if (A == B)
      continue;
    if (A > B)
      std::swap(A, B);
    Seen.insert({A, B});
  }
  E.Edges.assign(Seen.begin(), Seen.end());
  return E;
}

/// The seed's adjacency layout: hashed edge-key set + per-node hashed
/// neighbor sets. Built here exactly as the pre-rework InterferenceGraph
/// did it (uint64 key, insert both directions).
struct LegacyGraph {
  std::unordered_set<uint64_t> EdgeKeys;
  std::vector<std::unordered_set<uint32_t>> Adj;
  std::vector<unsigned> Deg;

  void build(const EdgeList &E) {
    EdgeKeys.clear();
    Adj.assign(E.N, {});
    Deg.assign(E.N, 0);
    for (auto [A, B] : E.Edges) {
      uint64_t Key = (static_cast<uint64_t>(A) << 32) | B;
      if (!EdgeKeys.insert(Key).second)
        continue;
      Adj[A].insert(B);
      Adj[B].insert(A);
      ++Deg[A];
      ++Deg[B];
    }
  }

  bool interferes(uint32_t A, uint32_t B) const {
    if (A > B)
      std::swap(A, B);
    return EdgeKeys.count((static_cast<uint64_t>(A) << 32) | B) != 0;
  }
};

/// The reworked layout: packed bit rows + degree array, CSR materialized
/// once after the build (as InterferenceGraph::finalize does).
struct FlatGraph {
  BitMatrix Bits;
  std::vector<unsigned> Deg;
  std::vector<uint32_t> Off;
  std::vector<uint32_t> Nbrs;

  void build(const EdgeList &E) {
    Bits.init(E.N);
    Deg.assign(E.N, 0);
    for (auto [A, B] : E.Edges) {
      if (Bits.test(A, B))
        continue;
      Bits.setSym(A, B);
      ++Deg[A];
      ++Deg[B];
    }
  }

  void finalize(uint32_t N) {
    Off.assign(N + 1, 0);
    for (uint32_t I = 0; I != N; ++I)
      Off[I + 1] = Off[I] + Deg[I];
    Nbrs.resize(Off[N]);
    std::vector<uint32_t> Cursor(Off.begin(), Off.end() - 1);
    for (uint32_t R = 0; R != N; ++R)
      Bits.forEachInRow(R, [&](uint32_t C) { Nbrs[Cursor[R]++] = C; });
  }

  bool interferes(uint32_t A, uint32_t B) const { return Bits.test(A, B); }
};

/// Kernel 1: graph construction — all edges of every workload inserted
/// into a freshly reset structure. Checksum: degree array.
uint64_t buildLegacy(const std::vector<EdgeList> &Work, double &Edges) {
  uint64_t H = 14695981039346656037ull;
  LegacyGraph G;
  for (const EdgeList &E : Work) {
    G.build(E);
    Edges += static_cast<double>(E.Edges.size());
    for (unsigned D : G.Deg)
      H = fnv1a(H, D);
  }
  return H;
}

uint64_t buildFlat(const std::vector<EdgeList> &Work, double &Edges) {
  uint64_t H = 14695981039346656037ull;
  FlatGraph G;
  for (const EdgeList &E : Work) {
    G.build(E);
    Edges += static_cast<double>(E.Edges.size());
    for (unsigned D : G.Deg)
      H = fnv1a(H, D);
  }
  return H;
}

/// Kernel 2: coalescing-style membership probes — the George/Briggs tests
/// are adjacency queries over mostly-absent pairs. Checksum: hit count.
template <typename GraphT>
uint64_t queryKernel(const GraphT &G, uint32_t N, uint64_t Seed,
                     uint64_t Probes) {
  Rng R(Seed);
  uint64_t Hits = 0;
  for (uint64_t I = 0; I != Probes; ++I) {
    uint32_t A = static_cast<uint32_t>(R.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(R.nextBelow(N));
    if (A != B && G.interferes(A, B))
      ++Hits;
  }
  return Hits;
}

/// Kernel 3: the simplify loop — repeatedly take the minimum node from the
/// low-degree worklist (exactly *worklist.begin()), remove it, decrement
/// its still-present neighbors, and migrate any neighbor whose degree
/// drops below K from the high-degree set. Arms share the CSR adjacency;
/// only the worklist structure differs (std::set vs IndexSet), isolating
/// the structure the IRC rework swapped. Checksum: pick order.
uint64_t simplifyLegacy(const FlatGraph &G, uint32_t N, unsigned K,
                        double &Picks) {
  std::vector<unsigned> Deg = G.Deg;
  std::vector<char> Removed(N, 0);
  std::set<uint32_t> Low, High;
  for (uint32_t I = 0; I != N; ++I)
    (Deg[I] < K ? Low : High).insert(I);
  uint64_t H = 14695981039346656037ull;
  while (!Low.empty()) {
    uint32_t Node = *Low.begin();
    Low.erase(Low.begin());
    Removed[Node] = 1;
    H = fnv1a(H, Node);
    ++Picks;
    for (uint32_t I = G.Off[Node], E = G.Off[Node + 1]; I != E; ++I) {
      uint32_t Nb = G.Nbrs[I];
      if (Removed[Nb])
        continue;
      if (Deg[Nb]-- == K) {
        High.erase(Nb);
        Low.insert(Nb);
      }
    }
  }
  for (uint32_t Node : High)
    H = fnv1a(H, Node); // spill candidates, ascending — same both arms
  return H;
}

uint64_t simplifyFlat(const FlatGraph &G, uint32_t N, unsigned K,
                      double &Picks) {
  std::vector<unsigned> Deg = G.Deg;
  std::vector<char> Removed(N, 0);
  IndexSet Low(N), High(N);
  for (uint32_t I = 0; I != N; ++I)
    (Deg[I] < K ? Low : High).insert(I);
  uint64_t H = 14695981039346656037ull;
  while (!Low.empty()) {
    uint32_t Node = Low.first();
    Low.erase(Node);
    Removed[Node] = 1;
    H = fnv1a(H, Node);
    ++Picks;
    for (uint32_t I = G.Off[Node], E = G.Off[Node + 1]; I != E; ++I) {
      uint32_t Nb = G.Nbrs[I];
      if (Removed[Nb])
        continue;
      if (Deg[Nb]-- == K) {
        High.erase(Nb);
        Low.insert(Nb);
      }
    }
  }
  High.forEach([&](uint32_t Node) { H = fnv1a(H, Node); });
  return H;
}

/// One kernel's measurements for one arm.
struct KernelPerf {
  double Seconds = 0;
  double Units = 0; // edges inserted / probes / nodes simplified
  double PerSec() const { return Units / Seconds; }
};

struct ArmPerf {
  KernelPerf Build, Query, Simplify;
};

/// Runs all three kernels for both arms over \p Work; exits the process
/// on any checksum divergence.
void measure(const std::vector<EdgeList> &Work, unsigned Reps, unsigned K,
             ArmPerf &Legacy, ArmPerf &Flat) {
  // Build kernel.
  auto T0 = std::chrono::steady_clock::now();
  uint64_t HL = 0;
  for (unsigned R = 0; R != Reps; ++R)
    HL = buildLegacy(Work, Legacy.Build.Units);
  Legacy.Build.Seconds = secondsSince(T0);

  T0 = std::chrono::steady_clock::now();
  uint64_t HF = 0;
  for (unsigned R = 0; R != Reps; ++R)
    HF = buildFlat(Work, Flat.Build.Units);
  Flat.Build.Seconds = secondsSince(T0);
  if (HL != HF) {
    std::fprintf(stderr, "DIVERGED: build checksums differ\n");
    std::exit(1);
  }

  // Prebuild both graph forms once per workload for the other kernels.
  std::vector<LegacyGraph> LG(Work.size());
  std::vector<FlatGraph> FG(Work.size());
  for (size_t I = 0; I != Work.size(); ++I) {
    LG[I].build(Work[I]);
    FG[I].build(Work[I]);
    FG[I].finalize(Work[I].N);
  }

  // Query kernel: probe count scaled to graph size.
  const uint64_t ProbesPer = 200000;
  T0 = std::chrono::steady_clock::now();
  HL = 0;
  for (unsigned R = 0; R != Reps; ++R)
    for (size_t I = 0; I != Work.size(); ++I) {
      HL = fnv1a(HL, queryKernel(LG[I], Work[I].N, 77 + I, ProbesPer));
      Legacy.Query.Units += static_cast<double>(ProbesPer);
    }
  Legacy.Query.Seconds = secondsSince(T0);

  T0 = std::chrono::steady_clock::now();
  HF = 0;
  for (unsigned R = 0; R != Reps; ++R)
    for (size_t I = 0; I != Work.size(); ++I) {
      HF = fnv1a(HF, queryKernel(FG[I], Work[I].N, 77 + I, ProbesPer));
      Flat.Query.Units += static_cast<double>(ProbesPer);
    }
  Flat.Query.Seconds = secondsSince(T0);
  if (HL != HF) {
    std::fprintf(stderr, "DIVERGED: query checksums differ\n");
    std::exit(1);
  }

  // Simplify kernel.
  T0 = std::chrono::steady_clock::now();
  HL = 0;
  for (unsigned R = 0; R != Reps; ++R)
    for (size_t I = 0; I != Work.size(); ++I)
      HL = fnv1a(HL, simplifyLegacy(FG[I], Work[I].N, K,
                                    Legacy.Simplify.Units));
  Legacy.Simplify.Seconds = secondsSince(T0);

  T0 = std::chrono::steady_clock::now();
  HF = 0;
  for (unsigned R = 0; R != Reps; ++R)
    for (size_t I = 0; I != Work.size(); ++I)
      HF = fnv1a(HF,
                 simplifyFlat(FG[I], Work[I].N, K, Flat.Simplify.Units));
  Flat.Simplify.Seconds = secondsSince(T0);
  if (HL != HF) {
    std::fprintf(stderr,
                 "DIVERGED: simplify pick orders differ (worklist "
                 "discipline broken)\n");
    std::exit(1);
  }
}

void addGauges(MetricsRegistry &Reg, const ArmPerf &P,
               const MetricLabels &Labels) {
  Reg.gauge("alloc.build_edges_per_sec", P.Build.PerSec(), Labels);
  Reg.gauge("coalesce.adjacency_tests_per_sec", P.Query.PerSec(), Labels);
  Reg.gauge("alloc.simplify_per_sec", P.Simplify.PerSec(), Labels);
}

bool writePerfFile(const std::string &Path, const ArmPerf &P) {
  MetricsRegistry Reg;
  addGauges(Reg, P, {});
  std::string Err;
  if (!Reg.writeJsonFile(Path, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return false;
  }
  std::printf("wrote %s\n", Path.c_str());
  return true;
}

void printTable(const ArmPerf &Legacy, const ArmPerf &Flat) {
  struct Row {
    const char *Name;
    const KernelPerf *L, *F;
  } Rows[] = {
      {"build (edges/s)", &Legacy.Build, &Flat.Build},
      {"coalesce query (tests/s)", &Legacy.Query, &Flat.Query},
      {"simplify (nodes/s)", &Legacy.Simplify, &Flat.Simplify},
  };
  std::printf("%-26s %14s %14s %8s\n", "kernel", "legacy", "flat",
              "speedup");
  for (const Row &R : Rows)
    std::printf("%-26s %14.0f %14.0f %7.2fx\n", R.Name, R.L->PerSec(),
                R.F->PerSec(), R.F->PerSec() / R.L->PerSec());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string PerfOut;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--perf-out=", 0) == 0)
      PerfOut = Arg.substr(std::strlen("--perf-out="));
    else {
      std::fprintf(stderr, "usage: bench_alloc_core [--perf-out=DIR]\n");
      return 2;
    }
  }

  std::vector<EdgeList> Work;
  Work.push_back(programEdges("p_light", 11, 10));
  Work.push_back(programEdges("p_mid", 29, 20));
  Work.push_back(programEdges("p_heavy", 47, 32));
  Work.push_back(syntheticEdges(1024, 24, 123));

  double TotalEdges = 0;
  for (const EdgeList &E : Work)
    TotalEdges += static_cast<double>(E.Edges.size());
  std::printf("allocator core kernels: %zu graph(s), %.0f edge(s) total, "
              "both arms checksum-verified\n\n",
              Work.size(), TotalEdges);

  ArmPerf Legacy, Flat;
  measure(Work, /*Reps=*/40, /*K=*/8, Legacy, Flat);
  printTable(Legacy, Flat);

  if (!PerfOut.empty()) {
    namespace fs = std::filesystem;
    std::error_code EC;
    fs::create_directories(PerfOut, EC);
    if (!writePerfFile(
            (fs::path(PerfOut) / "alloc_perf_legacy.json").string(),
            Legacy) ||
        !writePerfFile(
            (fs::path(PerfOut) / "alloc_perf_flat.json").string(), Flat))
      return 1;
    return 0;
  }

  MetricsRegistry Reg;
  addGauges(Reg, Legacy, {{"arm", "legacy"}});
  addGauges(Reg, Flat, {{"arm", "flat"}});
  std::string Err;
  if (!Reg.writeJsonFile("BENCH_alloc.json", &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_alloc.json\n");
  return 0;
}
