//===- bench/bench_remap_search.cpp - Remap search arm comparison ---------===//
//
// Microbenchmark and acceptance harness for the incremental/parallel
// multi-start remap search (core/Remap.cpp). Three modes:
//
//  * default: times the full-recost, incident-walk, incremental, and
//    parallel-incremental arms over seeded dense graphs and prints a
//    swaps/second table (all arms evaluate the identical swap sequence,
//    so the rate compares pure evaluation throughput);
//
//  * --corpus=DIR: compiles every .dra file to physical registers and
//    checks that the incremental search — at Jobs 1, 2, 4, and 8 — returns
//    a RemapResult bit-identical to the pre-incremental incident-walk
//    reference arm, permutation, costs, and stats included. Exits 1 on the
//    first divergence; runs as the `bench_remap_corpus_identity` ctest;
//
//  * --perf-out=DIR: writes remap_perf_full.json and
//    remap_perf_incremental.json, each carrying the *same* unlabeled
//    gauge keys (remap.swaps_evaluated_per_sec, ...) for its arm, so
//      dra-stats --fail-on=remap.swaps_evaluated_per_sec:-80 \
//          remap_perf_incremental.json remap_perf_full.json
//    fails unless the incremental arm is more than 5x the full-recost
//    baseline on the same machine and run.
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include "core/Remap.h"
#include "ir/Parser.h"
#include "regalloc/GraphColoring.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace dra;

namespace {

/// Field-by-field RemapResult comparison. The incremental-only delta
/// counters are excluded when the reference is a legacy arm (which leaves
/// them zero by design).
bool sameResult(const RemapResult &A, const RemapResult &B,
                bool WithDeltaStats, std::string &Why) {
  auto Fail = [&](const char *Field) {
    Why = std::string("field ") + Field + " differs";
    return false;
  };
  if (A.Perm != B.Perm)
    return Fail("Perm");
  if (A.CostBefore != B.CostBefore)
    return Fail("CostBefore");
  if (A.CostAfter != B.CostAfter)
    return Fail("CostAfter");
  if (A.Exhaustive != B.Exhaustive)
    return Fail("Exhaustive");
  if (A.StartsRun != B.StartsRun)
    return Fail("StartsRun");
  if (A.StartsCutOff != B.StartsCutOff)
    return Fail("StartsCutOff");
  if (A.SwapsEvaluated != B.SwapsEvaluated)
    return Fail("SwapsEvaluated");
  if (A.SwapsApplied != B.SwapsApplied)
    return Fail("SwapsApplied");
  if (WithDeltaStats) {
    if (A.DeltaArcsVisited != B.DeltaArcsVisited)
      return Fail("DeltaArcsVisited");
    if (A.DeltaRecostSavings != B.DeltaRecostSavings)
      return Fail("DeltaRecostSavings");
  }
  return true;
}

/// Acceptance mode: every corpus function, compiled to physical registers,
/// must remap identically under the legacy reference and the incremental
/// search at every job count.
int runCorpusIdentity(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &Entry : fs::directory_iterator(Dir, EC))
    if (Entry.path().extension() == ".dra")
      Files.push_back(Entry.path().string());
  if (EC || Files.empty()) {
    std::fprintf(stderr, "error: no .dra files under '%s'\n", Dir.c_str());
    return 2;
  }
  std::sort(Files.begin(), Files.end());

  const unsigned JobCounts[] = {1, 2, 4, 8};
  size_t Checked = 0;
  for (const std::string &Path : Files) {
    std::ifstream In(Path);
    std::string Text(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>{});
    std::string Err;
    auto Parsed = parseFunction(Text, &Err);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
      return 2;
    }
    allocateGraphColoring(*Parsed, 12);
    EncodingConfig C = lowEndConfig(12);

    RemapOptions Legacy;
    Legacy.NumStarts = 64;
    Legacy.UseIncremental = false;
    Function FL = *Parsed;
    RemapResult RL = remapFunction(FL, C, Legacy);

    for (unsigned Jobs : JobCounts) {
      RemapOptions O;
      O.NumStarts = 64;
      O.Jobs = Jobs;
      Function FI = *Parsed;
      RemapResult RI = remapFunction(FI, C, O);
      std::string Why;
      if (!sameResult(RL, RI, /*WithDeltaStats=*/false, Why)) {
        std::fprintf(stderr,
                     "MISMATCH: %s: incremental jobs=%u vs legacy: %s\n",
                     Path.c_str(), Jobs, Why.c_str());
        return 1;
      }
      if (printFunction(FL) != printFunction(FI)) {
        std::fprintf(stderr,
                     "MISMATCH: %s: remapped function differs at jobs=%u\n",
                     Path.c_str(), Jobs);
        return 1;
      }
      ++Checked;
    }
  }
  std::printf("corpus identity: %zu file(s) x %zu job count(s), %zu "
              "comparisons, all bit-identical\n",
              Files.size(), std::size(JobCounts), Checked);
  return 0;
}

/// Writes one arm's measurements as unlabeled gauges (identical keys in
/// both files so dra-stats pairs them).
bool writePerfFile(const std::string &Path, const RemapSearchPerf &P) {
  MetricsRegistry Reg;
  Reg.gauge("remap.search_seconds", P.Seconds);
  Reg.gauge("remap.swaps_evaluated", P.SwapsEvaluated);
  Reg.gauge("remap.swaps_evaluated_per_sec", P.SwapsPerSec);
  Reg.gauge("remap.cost_after", P.CostAfter);
  Reg.gauge("remap.regn", static_cast<double>(P.RegN));
  std::string Err;
  if (!Reg.writeJsonFile(Path, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return false;
  }
  std::printf("wrote %s (%s arm, %.3g swaps/s)\n", Path.c_str(),
              P.Arm.c_str(), P.SwapsPerSec);
  return true;
}

int runPerfOut(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(Dir, EC);
  std::vector<RemapSearchPerf> Perf = measureRemapSearch(64, 24, {});
  const RemapSearchPerf *Full = nullptr, *Incremental = nullptr;
  for (const RemapSearchPerf &P : Perf) {
    if (P.Arm == "full-recost")
      Full = &P;
    if (P.Arm == "incremental" && P.Jobs == 1)
      Incremental = &P;
    if (!P.MatchesReference) {
      std::fprintf(stderr, "error: arm %s diverged from reference\n",
                   P.Arm.c_str());
      return 1;
    }
  }
  if (!Full || !Incremental)
    return 1;
  if (!writePerfFile((fs::path(Dir) / "remap_perf_full.json").string(),
                     *Full) ||
      !writePerfFile(
          (fs::path(Dir) / "remap_perf_incremental.json").string(),
          *Incremental))
    return 1;
  std::printf("incremental/full speedup: %.1fx\n",
              Incremental->SwapsPerSec / Full->SwapsPerSec);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Corpus, PerfOut;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--corpus=", 0) == 0)
      Corpus = Arg.substr(std::strlen("--corpus="));
    else if (Arg.rfind("--perf-out=", 0) == 0)
      PerfOut = Arg.substr(std::strlen("--perf-out="));
    else {
      std::fprintf(stderr,
                   "usage: bench_remap_search [--corpus=DIR | "
                   "--perf-out=DIR]\n");
      return 2;
    }
  }
  if (!Corpus.empty())
    return runCorpusIdentity(Corpus);
  if (!PerfOut.empty())
    return runPerfOut(PerfOut);

  std::printf("Remap search arms (multi-start greedy descent; identical "
              "swap sequences, so swaps/s is evaluation throughput)\n");
  for (unsigned RegN : {32u, 64u}) {
    std::vector<RemapSearchPerf> Perf = measureRemapSearch(RegN, 24, {2, 4});
    double Baseline = 0;
    for (const RemapSearchPerf &P : Perf) {
      if (P.Arm == std::string("full-recost"))
        Baseline = P.SwapsPerSec;
      std::printf("  RegN %2u  %-12s jobs %u  %9.0f swaps in %7.3fs  "
                  "%12.0f swaps/s  (%5.1fx)  cost %g%s\n",
                  P.RegN, P.Arm.c_str(), P.Jobs, P.SwapsEvaluated,
                  P.Seconds, P.SwapsPerSec,
                  Baseline > 0 ? P.SwapsPerSec / Baseline : 1.0, P.CostAfter,
                  P.MatchesReference ? "" : "  DIVERGED!");
      if (!P.MatchesReference)
        return 1;
    }
  }
  return 0;
}
