//===- bench/bench_fig11_spills.cpp - Figure 11: static spill % -----------===//
//
// Reproduces Figure 11: percentage of static spill instructions over the
// entire code, per benchmark, for baseline / remapping / select / O-spill
// / coalesce. Paper averages: 10.44 / 6.87 / 6.84 / 7.32 / 5.55 (%).
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include <cstdio>

using namespace dra;

int main(int Argc, char **Argv) {
  unsigned Starts = Argc > 1 ? std::atoi(Argv[1]) : 200;
  std::vector<ProgramMetrics> Suite = runLowEndSuite(Starts);

  std::printf("Figure 11: static spill instructions (%% of all code)\n");
  std::printf("%-14s", "benchmark");
  for (Scheme S : allSchemes())
    std::printf("%12s", schemeName(S));
  std::printf("\n");

  std::vector<double> Sums(allSchemes().size(), 0);
  for (const ProgramMetrics &PM : Suite) {
    std::printf("%-14s", PM.Name.c_str());
    size_t Idx = 0;
    for (Scheme S : allSchemes()) {
      double V = PM.PerScheme.at(S).SpillPct;
      Sums[Idx++] += V;
      std::printf("%11.2f%%", V);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "average");
  for (double Sum : Sums)
    std::printf("%11.2f%%", Sum / static_cast<double>(Suite.size()));
  std::printf("\n\npaper averages: baseline 10.44, remapping 6.87, "
              "select 6.84, O-spill 7.32, coalesce 5.55 (%%)\n");
  return 0;
}
