//===- bench/SuiteRunner.cpp - Shared experiment drivers ------------------===//

#include "SuiteRunner.h"

#include "adt/Rng.h"
#include "core/Remap.h"
#include "driver/BatchCompiler.h"
#include "driver/Metrics.h"
#include "driver/ThreadPool.h"
#include "interp/Interpreter.h"
#include "sim/LowEndSim.h"
#include "swp/SwpPipeline.h"
#include "workloads/LoopCorpus.h"
#include "workloads/MiBench.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace dra;

namespace {

/// Results are cached on disk so that the four figure benches (which share
/// the same underlying experiment) compute it once. The cache key includes
/// a version tag — bump it when the pipelines change behaviourally — and
/// the remapping restart count. Delete the file to force recomputation.
constexpr const char *CacheVersion = "dra-suite-v1";

std::string lowEndCachePath(unsigned RemapStarts) {
  return ".dra_lowend_cache_" + std::to_string(RemapStarts) + ".tsv";
}

bool loadLowEndCache(unsigned RemapStarts,
                     std::vector<ProgramMetrics> &Out) {
  std::ifstream In(lowEndCachePath(RemapStarts));
  if (!In)
    return false;
  std::string Header;
  if (!std::getline(In, Header) || Header != CacheVersion)
    return false;
  Out.clear();
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream Row(Line);
    std::string Name;
    int SchemeId;
    SchemeMetrics M;
    int Ok;
    unsigned long long Cycles;
    if (!(Row >> Name >> SchemeId >> M.SpillPct >> M.SlrPct >> M.SlrJoin >>
          M.SlrRange >> M.CodeBytes >> Cycles >> Ok))
      return false;
    M.Cycles = Cycles;
    M.SemanticsOk = Ok != 0;
    if (Out.empty() || Out.back().Name != Name) {
      Out.push_back({});
      Out.back().Name = Name;
    }
    Out.back().PerScheme[static_cast<Scheme>(SchemeId)] = M;
  }
  return Out.size() == miBenchNames().size();
}

void storeLowEndCache(unsigned RemapStarts,
                      const std::vector<ProgramMetrics> &Suite) {
  std::ofstream OutFile(lowEndCachePath(RemapStarts));
  if (!OutFile)
    return;
  OutFile << CacheVersion << "\n";
  for (const ProgramMetrics &PM : Suite)
    for (const auto &[S, M] : PM.PerScheme)
      OutFile << PM.Name << ' ' << static_cast<int>(S) << ' ' << M.SpillPct
              << ' ' << M.SlrPct << ' ' << M.SlrJoin << ' ' << M.SlrRange
              << ' ' << M.CodeBytes << ' ' << M.Cycles << ' '
              << (M.SemanticsOk ? 1 : 0) << "\n";
}

std::string vliwCachePath(unsigned LoopCount) {
  return ".dra_vliw_cache_" + std::to_string(LoopCount) + ".tsv";
}

bool loadVliwCache(unsigned LoopCount, std::vector<VliwRow> &Out) {
  std::ifstream In(vliwCachePath(LoopCount));
  if (!In)
    return false;
  std::string Header;
  if (!std::getline(In, Header) || Header != CacheVersion)
    return false;
  Out.clear();
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream Row(Line);
    VliwRow R;
    if (!(Row >> R.RegN >> R.SpeedupOptimizedPct >> R.SpeedupAllLoopsPct >>
          R.SpeedupOverallPct >> R.SpillOpsOptimized >>
          R.CodeGrowthOptimizedPct >> R.CodeGrowthAllLoopsPct >>
          R.CodeGrowthAllCodePct >> R.OptimizedLoopCount >> R.LoopCount))
      return false;
    Out.push_back(R);
  }
  return Out.size() == 5;
}

void storeVliwCache(unsigned LoopCount, const std::vector<VliwRow> &Rows) {
  std::ofstream OutFile(vliwCachePath(LoopCount));
  if (!OutFile)
    return;
  OutFile << CacheVersion << "\n";
  for (const VliwRow &R : Rows)
    OutFile << R.RegN << ' ' << R.SpeedupOptimizedPct << ' '
            << R.SpeedupAllLoopsPct << ' ' << R.SpeedupOverallPct << ' '
            << R.SpillOpsOptimized << ' ' << R.CodeGrowthOptimizedPct << ' '
            << R.CodeGrowthAllLoopsPct << ' ' << R.CodeGrowthAllCodePct
            << ' ' << R.OptimizedLoopCount << ' ' << R.LoopCount << "\n";
}

/// Folds the low-end suite's result table into \p Reg as suite.* gauges
/// labeled {program, scheme} — derivable from cached results, so available
/// on every run — and writes the snapshot to BENCH_lowend.json. \p Cached
/// records provenance: consumers (dra-stats diffs, CI gates) need to know
/// whether the deep pipeline.* counters can be expected in the snapshot.
void writeLowEndBenchJson(MetricsRegistry &Reg,
                          const std::vector<ProgramMetrics> &Suite,
                          bool Cached) {
  Reg.gauge("cache.provenance", Cached ? 1.0 : 0.0);
  for (const ProgramMetrics &PM : Suite) {
    for (const auto &[S, M] : PM.PerScheme) {
      MetricLabels L{{"program", PM.Name}, {"scheme", schemeName(S)}};
      Reg.gauge("suite.spill_pct", M.SpillPct, L);
      Reg.gauge("suite.slr_pct", M.SlrPct, L);
      Reg.gauge("suite.slr_join", static_cast<double>(M.SlrJoin), L);
      Reg.gauge("suite.slr_range", static_cast<double>(M.SlrRange), L);
      Reg.gauge("suite.code_bytes", static_cast<double>(M.CodeBytes), L);
      Reg.gauge("suite.cycles", static_cast<double>(M.Cycles), L);
      Reg.gauge("suite.semantics_ok", M.SemanticsOk ? 1.0 : 0.0, L);
    }
  }
  std::string Err;
  if (!Reg.writeJsonFile("BENCH_lowend.json", &Err))
    std::fprintf(stderr, "  [suite] metrics write failed: %s\n", Err.c_str());
  else
    std::fprintf(stderr, "  [suite] metrics written to BENCH_lowend.json\n");
}

/// Same for the VLIW sweep: one vliw.* gauge set per RegN row, written to
/// BENCH_vliw.json alongside whatever swp.* series a fresh run recorded.
void writeVliwBenchJson(MetricsRegistry &Reg,
                        const std::vector<VliwRow> &Rows, bool Cached) {
  Reg.gauge("cache.provenance", Cached ? 1.0 : 0.0);
  for (const VliwRow &R : Rows) {
    MetricLabels L{{"regn", std::to_string(R.RegN)}};
    Reg.gauge("vliw.speedup_optimized_pct", R.SpeedupOptimizedPct, L);
    Reg.gauge("vliw.speedup_all_loops_pct", R.SpeedupAllLoopsPct, L);
    Reg.gauge("vliw.speedup_overall_pct", R.SpeedupOverallPct, L);
    Reg.gauge("vliw.spill_ops_optimized",
              static_cast<double>(R.SpillOpsOptimized), L);
    Reg.gauge("vliw.code_growth_optimized_pct", R.CodeGrowthOptimizedPct, L);
    Reg.gauge("vliw.code_growth_all_loops_pct", R.CodeGrowthAllLoopsPct, L);
    Reg.gauge("vliw.code_growth_all_code_pct", R.CodeGrowthAllCodePct, L);
    Reg.gauge("vliw.optimized_loops",
              static_cast<double>(R.OptimizedLoopCount), L);
    Reg.gauge("vliw.loops", static_cast<double>(R.LoopCount), L);
  }
  std::string Err;
  if (!Reg.writeJsonFile("BENCH_vliw.json", &Err))
    std::fprintf(stderr, "  [vliw] metrics write failed: %s\n", Err.c_str());
  else
    std::fprintf(stderr, "  [vliw] metrics written to BENCH_vliw.json\n");
}

} // namespace

const std::vector<Scheme> &dra::allSchemes() {
  static const std::vector<Scheme> Schemes = {
      Scheme::Baseline, Scheme::Remap, Scheme::Select, Scheme::OSpill,
      Scheme::Coalesce};
  return Schemes;
}

std::vector<ProgramMetrics> dra::runLowEndSuite(unsigned RemapStarts,
                                                unsigned Jobs,
                                                Telemetry *Telem) {
  std::vector<ProgramMetrics> Results;
  MetricsRegistry Reg;
  if (loadLowEndCache(RemapStarts, Results)) {
    std::fprintf(stderr, "  [suite] using cached results (%s)\n",
                 lowEndCachePath(RemapStarts).c_str());
    writeLowEndBenchJson(Reg, Results, /*Cached=*/true);
    return Results;
  }
  auto WallStart = std::chrono::steady_clock::now();

  BatchOptions BO;
  BO.Jobs = Jobs;
  BO.Telem = Telem;
  BatchCompiler Batch(BO);

  // Generate the programs and their reference fingerprints in parallel.
  const std::vector<std::string> Names = miBenchNames();
  std::vector<Function> Programs(Names.size());
  std::vector<uint64_t> RefFp(Names.size());
  Batch.pool().parallelFor(Names.size(), [&](size_t I) {
    Programs[I] = miBenchProgram(Names[I]);
    RefFp[I] = fingerprint(interpret(Programs[I]));
  });

  // Flatten the programs × schemes grid into one batch; cell order (and
  // therefore every result) is fixed by the input indices alone.
  const std::vector<Scheme> &Schemes = allSchemes();
  std::vector<Function> Cells;
  std::vector<PipelineConfig> Configs;
  for (const Function &Program : Programs) {
    for (Scheme S : Schemes) {
      PipelineConfig Config;
      Config.S = S;
      Config.BaselineK = 8;
      Config.Enc = lowEndConfig(12);
      Config.Remap.NumStarts = RemapStarts;
      Config.Metrics = &Reg; // Thread-safe; series are keyed by labels.
      Cells.push_back(Program);
      Configs.push_back(Config);
    }
  }
  std::vector<PipelineResult> Compiled = Batch.run(Cells, Configs);

  // Simulate every cell on the same pool, then fold in index order.
  std::vector<SchemeMetrics> Metrics(Compiled.size());
  Batch.pool().parallelFor(Compiled.size(), [&](size_t I) {
    const PipelineResult &R = Compiled[I];
    SchemeMetrics M;
    M.SpillPct = R.spillPercent();
    M.SlrPct = R.setLastPercent();
    M.SlrJoin = R.Enc.SetLastJoin;
    M.SlrRange = R.Enc.SetLastRange;
    M.CodeBytes = R.CodeBytes;
    SimResult Sim = simulate(R.F);
    M.Cycles = Sim.Cycles;
    M.SemanticsOk = Sim.Fingerprint == RefFp[I / Schemes.size()];
    Metrics[I] = M;
  });

  for (size_t P = 0; P != Names.size(); ++P) {
    ProgramMetrics PM;
    PM.Name = Names[P];
    for (size_t S = 0; S != Schemes.size(); ++S)
      PM.PerScheme[Schemes[S]] = Metrics[P * Schemes.size() + S];
    Results.push_back(std::move(PM));
  }

  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - WallStart)
                      .count();
  std::fprintf(stderr,
               "  [suite] %zu programs x %zu schemes in %.0f ms on %u "
               "worker(s)\n",
               Names.size(), Schemes.size(), WallMs,
               Batch.pool().workerCount());
  storeLowEndCache(RemapStarts, Results);
  writeLowEndBenchJson(Reg, Results, /*Cached=*/false);
  return Results;
}

std::vector<VliwRow> dra::runVliwSuite(unsigned LoopCount, unsigned Jobs,
                                       Telemetry *Telem) {
  LoopCorpusOptions Opts;
  if (LoopCount != 0)
    Opts.Count = LoopCount;
  MetricsRegistry Reg;
  {
    std::vector<VliwRow> Cached;
    if (loadVliwCache(Opts.Count, Cached)) {
      std::fprintf(stderr, "  [vliw] using cached results (%s)\n",
                   vliwCachePath(Opts.Count).c_str());
      // The remap-search microbenchmark is cheap and cache-independent,
      // so BENCH_vliw.json always carries the remap.* throughput gauges.
      recordRemapSearchPerf(Reg, measureRemapSearch(64, 12, {2, 4}));
      writeVliwBenchJson(Reg, Cached, /*Cached=*/true);
      return Cached;
    }
  }
  auto WallStart = std::chrono::steady_clock::now();
  std::vector<LoopDdg> Corpus = generateLoopCorpus(Opts);
  VliwMachine Machine;
  ThreadPool Pool(Jobs);

  // Wraps one modulo-scheduling pipeline run with an optional telemetry
  // span ("swp", tagged with loop index and register bound).
  auto ScheduleLoop = [&](size_t I, unsigned ArchRegs,
                          const EncodingConfig *Enc) {
    uint64_t Begin = Telemetry::steadyNowNs();
    SwpResult R = pipelineLoop(Corpus[I], Machine, ArchRegs, Enc);
    {
      MetricLabels L{{"regn", std::to_string(Enc ? Enc->RegN : ArchRegs)}};
      Reg.observe("swp.ii_attempts", static_cast<double>(R.IIAttempts), L);
      Reg.observe("swp.ii", static_cast<double>(R.II), L);
      Reg.count("swp.loops", 1, L);
      Reg.count("swp.sched_rounds", static_cast<double>(R.SchedRounds), L);
      Reg.count("swp.spill_ops", static_cast<double>(R.SpillOps), L);
      Reg.count("swp.spilled_values", static_cast<double>(R.SpilledValues),
                L);
      Reg.count("swp.set_last_regs", static_cast<double>(R.SetLastRegs), L);
    }
    if (Telem) {
      TraceSpan E;
      E.Name = "swp";
      E.Category = "stage";
      E.BeginUs = Telem->toRelativeUs(Begin);
      E.DurUs = Telem->toRelativeUs(Telemetry::steadyNowNs()) - E.BeginUs;
      E.Tid = ThreadPool::currentWorker();
      E.Args = {{"loop", static_cast<double>(I)},
                {"regs", static_cast<double>(Enc ? Enc->RegN : ArchRegs)}};
      Telem->recordSpan(std::move(E));
    }
    return R;
  };

  // Baseline: every loop limited to 32 architected registers, direct
  // encoding. Also records which loops are "optimized" (register
  // requirement above 32 when given unlimited registers). Loops are
  // independent, so the corpus is striped across the pool; everything
  // below reduces the indexed vectors serially.
  struct BaselineInfo {
    SwpResult At32;
    bool NeedsMore = false;
  };
  std::vector<BaselineInfo> Base(Corpus.size());
  Pool.parallelFor(Corpus.size(), [&](size_t I) {
    Base[I].At32 = ScheduleLoop(I, 32, nullptr);
    SwpResult Unlimited = pipelineLoop(Corpus[I], Machine, 1 << 20);
    Base[I].NeedsMore = Unlimited.RegsUsed > 32;
  });

  std::vector<VliwRow> Rows;
  for (unsigned RegN : {32u, 40u, 48u, 56u, 64u}) {
    VliwRow Row;
    Row.RegN = RegN;
    Row.LoopCount = Corpus.size();

    // Differential encoding is enabled selectively (Section 8.2) for
    // loops whose requirement exceeds the 32 architected registers.
    std::vector<SwpResult> New(Corpus.size());
    Pool.parallelFor(Corpus.size(), [&](size_t I) {
      if (RegN > 32 && Base[I].NeedsMore) {
        EncodingConfig Enc = vliwConfig(RegN);
        New[I] = ScheduleLoop(I, 32, &Enc);
      } else {
        New[I] = Base[I].At32;
      }
    });

    uint64_t BaseCyclesOpt = 0, NewCyclesOpt = 0;
    uint64_t BaseCyclesAll = 0, NewCyclesAll = 0;
    size_t BaseCodeOpt = 0, NewCodeOpt = 0;
    size_t BaseCodeAll = 0, NewCodeAll = 0;

    for (size_t I = 0; I != Corpus.size(); ++I) {
      const SwpResult &B = Base[I].At32;
      const SwpResult &N = New[I];
      if (RegN == 32 && Base[I].NeedsMore) {
        // Baseline row: report the spill ops the 32-register schedules of
        // the to-be-optimized loops contain, for Table 3's reference.
        ++Row.OptimizedLoopCount;
        Row.SpillOpsOptimized += B.SpillOps;
      }
      if (RegN > 32 && Base[I].NeedsMore) {
        ++Row.OptimizedLoopCount;
        Row.SpillOpsOptimized += N.SpillOps;
        BaseCyclesOpt += B.Cycles;
        NewCyclesOpt += N.Cycles;
        BaseCodeOpt += B.CodeInsts;
        NewCodeOpt += N.CodeInsts;
      }
      BaseCyclesAll += B.Cycles;
      NewCyclesAll += N.Cycles;
      BaseCodeAll += B.CodeInsts;
      NewCodeAll += N.CodeInsts;
    }

    auto Pct = [](double NewV, double BaseV) {
      return BaseV == 0 ? 0.0 : 100.0 * (NewV / BaseV - 1.0);
    };
    Row.SpeedupOptimizedPct =
        NewCyclesOpt == 0
            ? 0.0
            : 100.0 * (static_cast<double>(BaseCyclesOpt) /
                           static_cast<double>(NewCyclesOpt) -
                       1.0);
    Row.SpeedupAllLoopsPct =
        100.0 * (static_cast<double>(BaseCyclesAll) /
                     static_cast<double>(NewCyclesAll) -
                 1.0);
    // Loops account for ~80% of execution (the paper's corpus statistic);
    // the remaining 20% is unaffected.
    double LoopSpeedup = 1.0 + Row.SpeedupAllLoopsPct / 100.0;
    Row.SpeedupOverallPct = 100.0 * (1.0 / (0.2 + 0.8 / LoopSpeedup) - 1.0);

    Row.CodeGrowthOptimizedPct =
        Pct(static_cast<double>(NewCodeOpt), static_cast<double>(BaseCodeOpt));
    Row.CodeGrowthAllLoopsPct =
        Pct(static_cast<double>(NewCodeAll), static_cast<double>(BaseCodeAll));
    // Loop bodies are ~25% of the whole binary (documented model): growth
    // dilutes accordingly.
    Row.CodeGrowthAllCodePct = Row.CodeGrowthAllLoopsPct * 0.25;
    Rows.push_back(Row);
    std::fprintf(stderr, "  [vliw] RegN=%u done\n", RegN);
  }
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - WallStart)
                      .count();
  std::fprintf(stderr, "  [vliw] %zu loops x 5 rows in %.0f ms on %u "
                       "worker(s)\n",
               Corpus.size(), WallMs, Pool.workerCount());
  storeVliwCache(Opts.Count, Rows);
  recordRemapSearchPerf(Reg, measureRemapSearch(64, 12, {2, 4}));
  writeVliwBenchJson(Reg, Rows, /*Cached=*/false);
  return Rows;
}

std::vector<RemapSearchPerf>
dra::measureRemapSearch(unsigned RegN, unsigned NumStarts,
                        const std::vector<unsigned> &ParallelJobs) {
  EncodingConfig C = vliwConfig(RegN);
  // Dense seeded graph with small integer weights: every cost and delta
  // is an exactly representable double, so all arms walk the identical
  // descent trajectory and the permutations must match bit for bit.
  Rng R(0x5eedbead ^ RegN);
  AdjacencyGraph G(RegN);
  for (unsigned E = 0; E != RegN * 8; ++E) {
    RegId A = static_cast<RegId>(R.nextBelow(RegN));
    RegId B = static_cast<RegId>(R.nextBelow(RegN));
    if (A != B)
      G.addWeight(A, B, static_cast<double>(1 + R.nextBelow(9)));
  }

  struct ArmSpec {
    const char *Name;
    bool Incremental;
    bool FullRecost;
    unsigned Jobs;
  };
  std::vector<ArmSpec> Arms = {{"full-recost", false, true, 1},
                               {"incident", false, false, 1},
                               {"incremental", true, false, 1}};
  for (unsigned J : ParallelJobs)
    if (J > 1)
      Arms.push_back({"incremental", true, false, J});

  std::vector<RemapSearchPerf> Out;
  std::vector<RegId> Reference;
  for (const ArmSpec &A : Arms) {
    RemapOptions O;
    O.NumStarts = NumStarts;
    O.UseIncremental = A.Incremental;
    O.FullRecost = A.FullRecost;
    O.Jobs = A.Jobs;
    auto T0 = std::chrono::steady_clock::now();
    RemapResult RR = findRemap(G, C, O);
    double Sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    if (Reference.empty())
      Reference = RR.Perm;
    RemapSearchPerf P;
    P.Arm = A.Name;
    P.RegN = RegN;
    P.Jobs = A.Jobs;
    P.Seconds = Sec;
    P.SwapsEvaluated = static_cast<double>(RR.SwapsEvaluated);
    P.SwapsPerSec = P.SwapsEvaluated / std::max(Sec, 1e-9);
    P.CostAfter = RR.CostAfter;
    P.MatchesReference = RR.Perm == Reference;
    Out.push_back(std::move(P));
  }
  return Out;
}

void dra::recordRemapSearchPerf(MetricsRegistry &Reg,
                                const std::vector<RemapSearchPerf> &Perf) {
  for (const RemapSearchPerf &P : Perf) {
    MetricLabels L{{"arm", P.Arm},
                   {"jobs", std::to_string(P.Jobs)},
                   {"regn", std::to_string(P.RegN)}};
    Reg.gauge("remap.search_seconds", P.Seconds, L);
    Reg.gauge("remap.swaps_evaluated", P.SwapsEvaluated, L);
    Reg.gauge("remap.swaps_evaluated_per_sec", P.SwapsPerSec, L);
    Reg.gauge("remap.cost_after", P.CostAfter, L);
    Reg.gauge("remap.matches_reference", P.MatchesReference ? 1.0 : 0.0, L);
  }
}
