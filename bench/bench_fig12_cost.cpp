//===- bench/bench_fig12_cost.cpp - Figure 12: set_last_reg cost ----------===//
//
// Reproduces Figure 12: static set_last_reg instructions as a percentage
// of all code, for the three differential schemes. Paper averages:
// remapping 10.41, select 4.21, coalesce 3.04 (%).
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include <cstdio>

using namespace dra;

int main(int Argc, char **Argv) {
  unsigned Starts = Argc > 1 ? std::atoi(Argv[1]) : 200;
  std::vector<ProgramMetrics> Suite = runLowEndSuite(Starts);
  const Scheme DiffSchemes[] = {Scheme::Remap, Scheme::Select,
                                Scheme::Coalesce};

  std::printf("Figure 12: set_last_reg instructions (%% of all code)\n");
  std::printf("%-14s%12s%12s%12s\n", "benchmark", "remapping", "select",
              "coalesce");
  double Sums[3] = {0, 0, 0};
  for (const ProgramMetrics &PM : Suite) {
    std::printf("%-14s", PM.Name.c_str());
    for (int I = 0; I != 3; ++I) {
      const SchemeMetrics &M = PM.PerScheme.at(DiffSchemes[I]);
      Sums[I] += M.SlrPct;
      std::printf("%11.2f%%", M.SlrPct);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "average");
  for (double Sum : Sums)
    std::printf("%11.2f%%", Sum / static_cast<double>(Suite.size()));
  std::printf("\n");

  std::printf("\nbreakdown (join repairs vs out-of-range repairs, static "
              "counts summed over programs):\n");
  for (int I = 0; I != 3; ++I) {
    size_t Join = 0, Range = 0;
    for (const ProgramMetrics &PM : Suite) {
      Join += PM.PerScheme.at(DiffSchemes[I]).SlrJoin;
      Range += PM.PerScheme.at(DiffSchemes[I]).SlrRange;
    }
    std::printf("  %-10s join %6zu   range %6zu\n",
                schemeName(DiffSchemes[I]), Join, Range);
  }
  std::printf("\npaper averages: remapping 10.41, select 4.21, coalesce "
              "3.04 (%%)\n");
  return 0;
}
