//===- bench/bench_driver_scaling.cpp - Parallel driver scaling -----------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Measures the wall-clock scaling of the batch-compilation driver: the
// same workload (a trimmed VLIW loop sweep, and the low-end
// programs x schemes grid) compiled with Jobs=1 and with
// Jobs=hardware_concurrency. The compared runs produce bit-identical
// results (tests/driver_test.cpp enforces it); only the wall clock moves.
// On a machine with >= 2 cores the Jobs=N rows should run ~N/2x-Nx
// faster; on a single-core container both rows are expected to match.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchCompiler.h"
#include "driver/ThreadPool.h"
#include "swp/SwpPipeline.h"
#include "workloads/LoopCorpus.h"
#include "workloads/MiBench.h"

#include <benchmark/benchmark.h>

using namespace dra;

namespace {

/// A trimmed corpus (the full 1928-loop sweep is minutes of work; the
/// scaling curve is identical at this size).
constexpr unsigned ScalingLoopCount = 96;

const std::vector<LoopDdg> &scalingCorpus() {
  static const std::vector<LoopDdg> Corpus = [] {
    LoopCorpusOptions Opts;
    Opts.Count = ScalingLoopCount;
    return generateLoopCorpus(Opts);
  }();
  return Corpus;
}

void BM_VliwSweep(benchmark::State &State) {
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  const std::vector<LoopDdg> &Corpus = scalingCorpus();
  VliwMachine Machine;
  for (auto _ : State) {
    ThreadPool Pool(Jobs);
    std::vector<SwpResult> Results(Corpus.size());
    Pool.parallelFor(Corpus.size(), [&](size_t I) {
      Results[I] = pipelineLoop(Corpus[I], Machine, 32);
      EncodingConfig Enc = vliwConfig(48);
      if (pipelineLoop(Corpus[I], Machine, 1 << 20).RegsUsed > 32)
        Results[I] = pipelineLoop(Corpus[I], Machine, 32, &Enc);
    });
    benchmark::DoNotOptimize(Results.data());
  }
  State.counters["jobs"] = Jobs;
}

void BM_LowEndGrid(benchmark::State &State) {
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  static const std::vector<Function> Programs = miBenchSuite();
  PipelineConfig Config;
  Config.S = Scheme::Select;
  Config.Enc = lowEndConfig(12);
  Config.Remap.NumStarts = 60;
  for (auto _ : State) {
    BatchOptions BO;
    BO.Jobs = Jobs;
    BatchCompiler Batch(BO);
    std::vector<PipelineResult> Results = Batch.run(Programs, Config);
    benchmark::DoNotOptimize(Results.data());
  }
  State.counters["jobs"] = Jobs;
}

int hardwareJobs() {
  return static_cast<int>(ThreadPool::defaultWorkerCount());
}

} // namespace

BENCHMARK(BM_VliwSweep)
    ->Arg(1)
    ->Arg(hardwareJobs())
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);
BENCHMARK(BM_LowEndGrid)
    ->Arg(1)
    ->Arg(hardwareJobs())
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

BENCHMARK_MAIN();
