//===- bench/bench_table2_swp_speedup.cpp - Table 2: VLIW loop speedup ----===//
//
// Reproduces Table 2: speedup of software-pipelined loops when
// differential encoding exposes RegN in {40, 48, 56, 64} registers through
// the 5-bit fields (DiffN = 32), applied selectively to loops whose
// register requirement exceeds 32. Paper: optimized loops speed up by
// >70%, all loops by 10.23% (RegN=40) to 17.24% (RegN=64), overall close
// to the all-loop number, with saturation past RegN = 48.
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include <cstdio>
#include <cstdlib>

using namespace dra;

int main(int Argc, char **Argv) {
  unsigned Loops = Argc > 1 ? std::atoi(Argv[1]) : 1928;
  std::vector<VliwRow> Rows = runVliwSuite(Loops);

  std::printf("Table 2: VLIW software-pipelining speedup (DiffN = 32)\n");
  std::printf("%6s%20s%16s%16s\n", "RegN", "optimized loops", "all loops",
              "overall");
  for (const VliwRow &Row : Rows) {
    if (Row.RegN == 32) {
      std::printf("%6u%19s%%%15s%%%15s%% (baseline)\n", Row.RegN, "0.00",
                  "0.00", "0.00");
      continue;
    }
    std::printf("%6u%19.2f%%%15.2f%%%15.2f%%\n", Row.RegN,
                Row.SpeedupOptimizedPct, Row.SpeedupAllLoopsPct,
                Row.SpeedupOverallPct);
  }
  if (!Rows.empty())
    std::printf("\ncorpus: %zu loops, %zu (%.1f%%) need more than 32 "
                "registers\n",
                Rows.back().LoopCount, Rows.back().OptimizedLoopCount,
                100.0 * static_cast<double>(Rows.back().OptimizedLoopCount) /
                    static_cast<double>(Rows.back().LoopCount));
  std::printf("paper: optimized loops >70%%; all loops 10.23%% (RegN=40) "
              "to 17.24%% (RegN=64); saturates past RegN=48\n");
  return 0;
}
