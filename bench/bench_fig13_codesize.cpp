//===- bench/bench_fig13_codesize.cpp - Figure 13: code size --------------===//
//
// Reproduces Figure 13: code size normalized to the baseline. Paper:
// remapping grows code ~7%, select stays within 1%, O-spill shrinks it
// ~4%, coalesce ~2%.
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include <cstdio>

using namespace dra;

int main(int Argc, char **Argv) {
  unsigned Starts = Argc > 1 ? std::atoi(Argv[1]) : 200;
  std::vector<ProgramMetrics> Suite = runLowEndSuite(Starts);

  std::printf("Figure 13: code size (normalized to baseline)\n");
  std::printf("%-14s", "benchmark");
  for (Scheme S : allSchemes())
    std::printf("%12s", schemeName(S));
  std::printf("\n");

  std::vector<double> Sums(allSchemes().size(), 0);
  for (const ProgramMetrics &PM : Suite) {
    std::printf("%-14s", PM.Name.c_str());
    size_t Idx = 0;
    for (Scheme S : allSchemes()) {
      double Ratio = PM.codeRatio(S);
      Sums[Idx++] += Ratio;
      std::printf("%12.3f", Ratio);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "average");
  for (double Sum : Sums)
    std::printf("%12.3f", Sum / static_cast<double>(Suite.size()));
  std::printf("\n\npaper averages: remapping ~1.07, select ~1.01, O-spill "
              "~0.96, coalesce ~0.98 (normalized)\n");
  return 0;
}
