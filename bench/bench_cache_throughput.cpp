//===- bench/bench_cache_throughput.cpp - Result-cache cold/warm bench ----===//
//
// Acceptance harness and microbenchmark for the content-addressed result
// cache (driver/ResultCache.h). Two modes:
//
//  * --corpus=DIR: compiles every .dra file under DIR through the batch
//    driver for all five schemes at Jobs 1 and 8, three passes per arm —
//    cold (all misses), warm (all hits, repeated and averaged), and a
//    verify pass at fraction 1.0 (every hit recompiled and byte-compared).
//    Requires bit-identical warm payloads, zero verify mismatches, and a
//    suite-level warm throughput of at least 5x cold; writes per-arm
//    measurements as cache.* gauges labeled {scheme, jobs} to
//    BENCH_cache.json. Runs as the `bench_cache_throughput_corpus` ctest
//    (pass marker: "warm at least 5x cold overall").
//
//  * --provenance-smoke: runs the low-end suite twice in a scratch
//    directory and asserts the cache.provenance gauge in
//    BENCH_lowend.json reads 0 on the fresh run and 1 on the replay from
//    the suite's on-disk TSV cache. Runs as the
//    `bench_cache_provenance` ctest (pass marker: "provenance flips").
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include "driver/BatchCompiler.h"
#include "driver/ResultCache.h"
#include "ir/Parser.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace dra;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

std::vector<Function> loadCorpus(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &Entry : fs::directory_iterator(Dir, EC))
    if (Entry.path().extension() == ".dra")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  std::vector<Function> Out;
  for (const std::string &Path : Files) {
    std::ifstream In(Path);
    std::string Text(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>{});
    std::string Err;
    auto Parsed = parseFunction(Text, &Err);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
      return {};
    }
    Out.push_back(std::move(*Parsed));
  }
  return Out;
}

int runCorpus(const std::string &Dir) {
  std::vector<Function> Programs = loadCorpus(Dir);
  if (Programs.empty()) {
    std::fprintf(stderr, "error: no .dra files under '%s'\n", Dir.c_str());
    return 2;
  }

  const Scheme Schemes[] = {Scheme::Baseline, Scheme::OSpill, Scheme::Remap,
                            Scheme::Select, Scheme::Coalesce};
  const unsigned JobCounts[] = {1, 8};
  // Warm passes are microseconds each; averaging over many keeps the
  // measurement above timer noise.
  const unsigned WarmPasses = 20;

  MetricsRegistry Bench;
  double MinSpeedup = -1;
  double TotalColdSec = 0, TotalWarmSec = 0;
  uint64_t Mismatches = 0;

  std::printf("Result-cache throughput (%zu program(s), %u warm pass "
              "average)\n",
              Programs.size(), WarmPasses);
  for (Scheme S : Schemes) {
    for (unsigned Jobs : JobCounts) {
      PipelineConfig Config;
      Config.S = S;
      Config.Enc = lowEndConfig(12);
      Config.Remap.NumStarts = 200;

      ResultCache Cache;
      BatchOptions BO;
      BO.Jobs = Jobs;
      BO.Cache = &Cache;
      BatchCompiler Batch(BO);

      auto T0 = std::chrono::steady_clock::now();
      std::vector<PipelineResult> Cold = Batch.run(Programs, Config);
      double ColdSec = secondsSince(T0);
      if (Cache.stats().Misses != Programs.size()) {
        std::fprintf(stderr, "error: cold run was not all misses\n");
        return 1;
      }

      T0 = std::chrono::steady_clock::now();
      std::vector<PipelineResult> Warm;
      for (unsigned P = 0; P != WarmPasses; ++P)
        Warm = Batch.run(Programs, Config);
      double WarmSec = secondsSince(T0) / WarmPasses;
      ResultCacheStats St = Cache.stats();
      if (St.Hits != Programs.size() * WarmPasses) {
        std::fprintf(stderr, "error: warm runs were not all hits\n");
        return 1;
      }
      for (size_t I = 0; I != Programs.size(); ++I)
        if (ResultCache::serializeResult(Warm[I]) !=
            ResultCache::serializeResult(Cold[I])) {
          std::fprintf(stderr, "error: warm result differs from cold for "
                               "program %zu\n",
                       I);
          return 1;
        }

      // Verify pass: every hit is hijacked into a recompile whose result
      // must be byte-identical to the cached payload.
      Cache.setVerifyFraction(1.0);
      Batch.run(Programs, Config);
      Cache.setVerifyFraction(0.0);
      St = Cache.stats();
      if (St.VerifyRecompiles != Programs.size()) {
        std::fprintf(stderr, "error: verify pass recompiled %llu of %zu\n",
                     static_cast<unsigned long long>(St.VerifyRecompiles),
                     Programs.size());
        return 1;
      }
      Mismatches += St.VerifyMismatches;

      double Speedup = WarmSec > 0 ? ColdSec / WarmSec : 1e9;
      if (MinSpeedup < 0 || Speedup < MinSpeedup)
        MinSpeedup = Speedup;
      TotalColdSec += ColdSec;
      TotalWarmSec += WarmSec;
      MetricLabels L{{"scheme", schemeName(S)},
                     {"jobs", std::to_string(Jobs)}};
      Bench.gauge("cache.cold_seconds", ColdSec, L);
      Bench.gauge("cache.warm_seconds", WarmSec, L);
      Bench.gauge("cache.warm_speedup", Speedup, L);
      Bench.gauge("cache.verify_mismatches",
                  static_cast<double>(St.VerifyMismatches), L);
      std::printf("  %-9s jobs %u  cold %8.3f ms  warm %8.3f ms  "
                  "%7.1fx  verify %llu/%llu mismatch\n",
                  schemeName(S), Jobs, ColdSec * 1e3, WarmSec * 1e3, Speedup,
                  static_cast<unsigned long long>(St.VerifyMismatches),
                  static_cast<unsigned long long>(St.VerifyRecompiles));
    }
  }

  // The acceptance gate is suite-level: the cheapest schemes compile the
  // tiny example programs in tens of microseconds, where the measurement
  // is dominated by batch dispatch overhead rather than cache cost, so a
  // per-arm floor would gate on timer noise. Per-arm speedups are still
  // recorded as gauges for dra-stats diffs.
  double Overall = TotalWarmSec > 0 ? TotalColdSec / TotalWarmSec : 1e9;
  Bench.gauge("cache.warm_speedup_overall", Overall);

  std::string Err;
  if (!Bench.writeJsonFile("BENCH_cache.json", &Err))
    std::fprintf(stderr, "warning: BENCH_cache.json: %s\n", Err.c_str());
  else
    std::printf("metrics written to BENCH_cache.json\n");
  if (Mismatches != 0) {
    std::fprintf(stderr, "FAIL: %llu verify mismatch(es)\n",
                 static_cast<unsigned long long>(Mismatches));
    return 1;
  }
  if (Overall < 5.0) {
    std::fprintf(stderr, "FAIL: warm throughput only %.1fx cold overall "
                         "(acceptance floor is 5x)\n",
                 Overall);
    return 1;
  }
  std::printf("cache throughput: warm at least 5x cold overall (%.1fx, "
              "slowest arm %.1fx), 0 verify mismatches\n",
              Overall, MinSpeedup);
  return 0;
}

/// Reads the cache.provenance gauge out of BENCH_lowend.json in the
/// current directory; returns -1 when absent or unreadable.
double readProvenance() {
  std::ifstream In("BENCH_lowend.json");
  MetricsFileData Data;
  if (!In || !loadMetricsJson(In, Data))
    return -1;
  for (const auto &[Key, Value] : Data.Gauges)
    if (Key == "cache.provenance" ||
        Key.rfind("cache.provenance{", 0) == 0)
      return Value;
  return -1;
}

int runProvenanceSmoke() {
  namespace fs = std::filesystem;
  // Scratch directory: the suite writes its TSV cache and BENCH json into
  // the working directory, and this mode must not disturb real bench
  // outputs.
  std::error_code EC;
  fs::create_directories("cache_provenance_smoke", EC);
  fs::current_path("cache_provenance_smoke", EC);
  if (EC) {
    std::fprintf(stderr, "error: cannot enter scratch directory\n");
    return 2;
  }
  // An off-default restart count keeps the TSV cache file distinct from
  // any real suite run; remove it so the first run is genuinely fresh.
  const unsigned RemapStarts = 5;
  fs::remove(".dra_lowend_cache_" + std::to_string(RemapStarts) + ".tsv",
             EC);

  runLowEndSuite(RemapStarts);
  double Fresh = readProvenance();
  runLowEndSuite(RemapStarts);
  double Cached = readProvenance();

  std::printf("cache.provenance: fresh run %.0f, replayed run %.0f\n", Fresh,
              Cached);
  if (Fresh != 0 || Cached != 1) {
    std::fprintf(stderr, "FAIL: expected 0 then 1\n");
    return 1;
  }
  std::printf("provenance flips 0 -> 1 across the suite cache\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Corpus;
  bool ProvenanceSmoke = false;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--corpus=", 0) == 0)
      Corpus = Arg.substr(std::strlen("--corpus="));
    else if (Arg == "--provenance-smoke")
      ProvenanceSmoke = true;
    else {
      std::fprintf(stderr, "usage: bench_cache_throughput [--corpus=DIR | "
                           "--provenance-smoke]\n");
      return 2;
    }
  }
  if (ProvenanceSmoke)
    return runProvenanceSmoke();
  if (!Corpus.empty())
    return runCorpus(Corpus);
  std::fprintf(stderr, "usage: bench_cache_throughput [--corpus=DIR | "
                       "--provenance-smoke]\n");
  return 2;
}
