//===- bench/bench_fig14_speedup.cpp - Figure 14: speedup -----------------===//
//
// Reproduces Figure 14: speedup over the baseline, measured on the
// interpreter-driven 5-stage pipeline model with I/D caches. Paper
// averages: remapping 4.5%, select 9.7%, coalesce 12.1%, O-spill 4.1%.
// Every run also re-checks that the transformed code computes the same
// result as the original program.
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include <cstdio>

using namespace dra;

int main(int Argc, char **Argv) {
  unsigned Starts = Argc > 1 ? std::atoi(Argv[1]) : 200;
  std::vector<ProgramMetrics> Suite = runLowEndSuite(Starts);
  const Scheme Shown[] = {Scheme::Remap, Scheme::Select, Scheme::OSpill,
                          Scheme::Coalesce};

  std::printf("Figure 14: speedup over baseline (pipeline simulation)\n");
  std::printf("%-14s%12s%12s%12s%12s\n", "benchmark", "remapping", "select",
              "O-spill", "coalesce");
  double Sums[4] = {0, 0, 0, 0};
  bool AllOk = true;
  for (const ProgramMetrics &PM : Suite) {
    std::printf("%-14s", PM.Name.c_str());
    for (int I = 0; I != 4; ++I) {
      double V = PM.speedupPct(Shown[I]);
      Sums[I] += V;
      std::printf("%+11.2f%%", V);
      AllOk &= PM.PerScheme.at(Shown[I]).SemanticsOk;
    }
    std::printf("\n");
  }
  std::printf("%-14s", "average");
  for (double Sum : Sums)
    std::printf("%+11.2f%%", Sum / static_cast<double>(Suite.size()));
  std::printf("\n\nsemantics preserved on every run: %s\n",
              AllOk ? "yes" : "NO - INVESTIGATE");
  std::printf("paper averages: remapping 4.5, select 9.7, O-spill 4.1, "
              "coalesce 12.1 (%%)\n");
  return AllOk ? 0 : 1;
}
