//===- bench/bench_micro_throughput.cpp - Compile-time microbenchmarks ----===//
//
// Google-benchmark timings for the compile-time components, backing the
// paper's claim that compilation cost is "tens of seconds" at worst (with
// the ILP solver dominating): allocator rounds, encoding, remapping and
// the ILP spill solve, on a representative benchmark program.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "core/DiffSelectHook.h"
#include "core/Encoder.h"
#include "core/OptimalSpill.h"
#include "core/Pipeline.h"
#include "core/Remap.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/MiBench.h"

#include <benchmark/benchmark.h>

using namespace dra;

namespace {

const Function &program() {
  // dijkstra is mid-sized: large enough to be representative, small
  // enough that the full-pipeline benchmarks finish in seconds.
  static const Function F = miBenchProgram("dijkstra");
  return F;
}

void BM_LivenessAndBuild(benchmark::State &State) {
  Function F = program();
  F.recomputeCFG();
  for (auto _ : State) {
    Liveness LV = Liveness::compute(F);
    InterferenceGraph G = InterferenceGraph::build(F, LV);
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_LivenessAndBuild);

void BM_BaselineAllocation(benchmark::State &State) {
  for (auto _ : State) {
    Function F = program();
    AllocResult R = allocateGraphColoring(F, 8);
    benchmark::DoNotOptimize(R.SpillLoads);
  }
}
BENCHMARK(BM_BaselineAllocation)->Unit(benchmark::kMillisecond);

void BM_DifferentialSelectAllocation(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  for (auto _ : State) {
    Function F = program();
    DiffSelectHook Hook(C);
    AllocResult R = allocateGraphColoring(F, 12, &Hook);
    benchmark::DoNotOptimize(R.SpillLoads);
  }
}
BENCHMARK(BM_DifferentialSelectAllocation)->Unit(benchmark::kMillisecond);

void BM_OptimalSpillILP(benchmark::State &State) {
  for (auto _ : State) {
    Function F = program();
    OptimalSpillResult R = optimalSpill(F, 8);
    benchmark::DoNotOptimize(R.SpilledRanges);
  }
}
BENCHMARK(BM_OptimalSpillILP)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Encode(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  Function F = program();
  allocateGraphColoring(F, 12);
  for (auto _ : State) {
    EncodedFunction E = encodeFunction(F, C);
    benchmark::DoNotOptimize(E.Stats.setLastTotal());
  }
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  Function F = program();
  allocateGraphColoring(F, 12);
  EncodedFunction E = encodeFunction(F, C);
  for (auto _ : State) {
    Function D = decodeFunction(E, C);
    benchmark::DoNotOptimize(D.NumRegs);
  }
}
BENCHMARK(BM_Decode);

void BM_RemapPerStart(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  Function F = program();
  allocateGraphColoring(F, 12);
  Function Widened = F;
  Widened.NumRegs = C.RegN;
  Widened.recomputeCFG();
  AdjacencyGraph G = AdjacencyGraph::build(Widened, C);
  RemapOptions O;
  O.NumStarts = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    RemapResult R = findRemap(G, C, O);
    benchmark::DoNotOptimize(R.CostAfter);
  }
}
BENCHMARK(BM_RemapPerStart)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Iterations(3);

void BM_FullPipeline(benchmark::State &State) {
  PipelineConfig Cfg;
  Cfg.S = static_cast<Scheme>(State.range(0));
  Cfg.Remap.NumStarts = 50;
  const Function &F = program();
  for (auto _ : State) {
    PipelineResult R = runPipeline(F, Cfg);
    benchmark::DoNotOptimize(R.NumInsts);
  }
}
BENCHMARK(BM_FullPipeline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(static_cast<int>(Scheme::Baseline))
    ->Arg(static_cast<int>(Scheme::Remap))
    ->Arg(static_cast<int>(Scheme::Select))
    ->Arg(static_cast<int>(Scheme::Coalesce));

} // namespace

BENCHMARK_MAIN();
