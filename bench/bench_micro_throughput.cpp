//===- bench/bench_micro_throughput.cpp - Compile-time microbenchmarks ----===//
//
// Google-benchmark timings for the compile-time components, backing the
// paper's claim that compilation cost is "tens of seconds" at worst (with
// the ILP solver dominating): allocator rounds, encoding, remapping and
// the ILP spill solve, on a representative benchmark program.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "core/DiffSelectHook.h"
#include "core/Encoder.h"
#include "core/OptimalSpill.h"
#include "core/Pipeline.h"
#include "core/Remap.h"
#include "driver/Metrics.h"
#include "driver/Trace.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/MiBench.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

using namespace dra;

namespace {

const Function &program() {
  // dijkstra is mid-sized: large enough to be representative, small
  // enough that the full-pipeline benchmarks finish in seconds.
  static const Function F = miBenchProgram("dijkstra");
  return F;
}

void BM_LivenessAndBuild(benchmark::State &State) {
  Function F = program();
  F.recomputeCFG();
  for (auto _ : State) {
    Liveness LV = Liveness::compute(F);
    InterferenceGraph G = InterferenceGraph::build(F, LV);
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_LivenessAndBuild);

void BM_BaselineAllocation(benchmark::State &State) {
  for (auto _ : State) {
    Function F = program();
    AllocResult R = allocateGraphColoring(F, 8);
    benchmark::DoNotOptimize(R.SpillLoads);
  }
}
BENCHMARK(BM_BaselineAllocation)->Unit(benchmark::kMillisecond);

void BM_DifferentialSelectAllocation(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  for (auto _ : State) {
    Function F = program();
    DiffSelectHook Hook(C);
    AllocResult R = allocateGraphColoring(F, 12, &Hook);
    benchmark::DoNotOptimize(R.SpillLoads);
  }
}
BENCHMARK(BM_DifferentialSelectAllocation)->Unit(benchmark::kMillisecond);

void BM_OptimalSpillILP(benchmark::State &State) {
  for (auto _ : State) {
    Function F = program();
    OptimalSpillResult R = optimalSpill(F, 8);
    benchmark::DoNotOptimize(R.SpilledRanges);
  }
}
BENCHMARK(BM_OptimalSpillILP)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Encode(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  Function F = program();
  allocateGraphColoring(F, 12);
  for (auto _ : State) {
    EncodedFunction E = encodeFunction(F, C);
    benchmark::DoNotOptimize(E.Stats.setLastTotal());
  }
}
BENCHMARK(BM_Encode);

// Special-register classification is the innermost operation of encoding,
// decoding-order analysis and operand swapping — every register field of
// every instruction asks "is this special?". The pair below times the two
// implementations on the same config: the O(|SpecialRegs|) linear scan
// that EncodingConfig::isSpecial keeps for one-off callers, and the
// precomputed SpecialRegLookup table the hot paths now build once per
// pass. The argument is the number of special registers.
EncodingConfig specialsConfig(unsigned NumSpecials) {
  EncodingConfig C = vliwConfig(32);
  C.DiffN = 32 - NumSpecials; // Keep DiffN + specials within 2^DiffW.
  for (unsigned I = 0; I != NumSpecials; ++I)
    C.SpecialRegs.push_back(static_cast<RegId>(31 - I));
  return C;
}

void BM_SpecialScanLinear(benchmark::State &State) {
  EncodingConfig C = specialsConfig(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    for (RegId R = 0; R != C.RegN; ++R)
      benchmark::DoNotOptimize(C.isSpecial(R));
}
BENCHMARK(BM_SpecialScanLinear)->Arg(1)->Arg(4)->Arg(8);

void BM_SpecialScanTable(benchmark::State &State) {
  EncodingConfig C = specialsConfig(static_cast<unsigned>(State.range(0)));
  SpecialRegLookup Special(C);
  for (auto _ : State)
    for (RegId R = 0; R != C.RegN; ++R)
      benchmark::DoNotOptimize(Special.isSpecial(R));
}
BENCHMARK(BM_SpecialScanTable)->Arg(1)->Arg(4)->Arg(8);

void BM_EncodeWithSpecials(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 6;
  C.SpecialRegs = {10, 11};
  Function F = program();
  allocateGraphColoring(F, 12);
  for (auto _ : State) {
    EncodedFunction E = encodeFunction(F, C);
    benchmark::DoNotOptimize(E.Stats.setLastTotal());
  }
}
BENCHMARK(BM_EncodeWithSpecials);

void BM_Decode(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  Function F = program();
  allocateGraphColoring(F, 12);
  EncodedFunction E = encodeFunction(F, C);
  for (auto _ : State) {
    Function D = decodeFunction(E, C);
    benchmark::DoNotOptimize(D.NumRegs);
  }
}
BENCHMARK(BM_Decode);

void BM_RemapPerStart(benchmark::State &State) {
  EncodingConfig C = lowEndConfig(12);
  Function F = program();
  allocateGraphColoring(F, 12);
  Function Widened = F;
  Widened.NumRegs = C.RegN;
  Widened.recomputeCFG();
  AdjacencyGraph G = AdjacencyGraph::build(Widened, C);
  RemapOptions O;
  O.NumStarts = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    RemapResult R = findRemap(G, C, O);
    benchmark::DoNotOptimize(R.CostAfter);
  }
}
BENCHMARK(BM_RemapPerStart)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Iterations(3);

void BM_FullPipeline(benchmark::State &State) {
  PipelineConfig Cfg;
  Cfg.S = static_cast<Scheme>(State.range(0));
  Cfg.Remap.NumStarts = 50;
  const Function &F = program();
  for (auto _ : State) {
    PipelineResult R = runPipeline(F, Cfg);
    benchmark::DoNotOptimize(R.NumInsts);
  }
}
BENCHMARK(BM_FullPipeline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(static_cast<int>(Scheme::Baseline))
    ->Arg(static_cast<int>(Scheme::Remap))
    ->Arg(static_cast<int>(Scheme::Select))
    ->Arg(static_cast<int>(Scheme::Coalesce));

void BM_FullPipelineWithMetrics(benchmark::State &State) {
  PipelineConfig Cfg;
  Cfg.S = Scheme::Coalesce;
  Cfg.Remap.NumStarts = 50;
  MetricsRegistry Reg;
  Cfg.Metrics = &Reg;
  const Function &F = program();
  for (auto _ : State) {
    PipelineResult R = runPipeline(F, Cfg);
    benchmark::DoNotOptimize(R.NumInsts);
  }
}
BENCHMARK(BM_FullPipelineWithMetrics)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Asserts the zero-cost-when-disabled contract: the instrumented pipeline
/// with PipelineConfig::Metrics == nullptr must run no measurably slower
/// than the enabled one is expected to differ from. Best-of-N wall times
/// suppress scheduler noise; the bound is generous because one pipeline
/// run is only tens of milliseconds.
int runMetricsOverheadCheck() {
  PipelineConfig Off;
  Off.S = Scheme::Coalesce;
  Off.Remap.NumStarts = 50;
  PipelineConfig On = Off;
  MetricsRegistry Reg;
  On.Metrics = &Reg;
  const Function &F = program();

  auto BestOf = [&](const PipelineConfig &Cfg) {
    double BestMs = 1e300;
    for (int Rep = 0; Rep != 5; ++Rep) {
      uint64_t T0 = steadyClockNs();
      PipelineResult R = runPipeline(F, Cfg);
      benchmark::DoNotOptimize(R.NumInsts);
      BestMs = std::min(
          BestMs, static_cast<double>(steadyClockNs() - T0) / 1e6);
    }
    return BestMs;
  };

  BestOf(Off); // Warm caches before measuring.
  double OffMs = BestOf(Off);
  double OnMs = BestOf(On);
  double OverheadPct = OffMs == 0 ? 0 : 100.0 * (OffMs / OnMs - 1.0);
  // The disabled path must not be slower than the enabled path by more
  // than measurement noise; 25% of a ~10ms run is far above any real
  // flush cost, so a FAIL here means the null-registry fast path broke.
  bool Ok = OffMs <= OnMs * 1.25;
  std::printf("metrics-overhead-check: %s (metrics off %.2f ms, on %.2f "
              "ms, disabled-path overhead %+.1f%%)\n",
              Ok ? "PASS" : "FAIL", OffMs, OnMs, OverheadPct);
  return Ok ? 0 : 1;
}

/// Same contract for request tracing: a null PipelineConfig::Trace must
/// cost nothing detectable next to a traced run (whose span recording is
/// itself only a handful of mutex-protected appends per request).
int runTraceOverheadCheck() {
  PipelineConfig Off;
  Off.S = Scheme::Coalesce;
  Off.Remap.NumStarts = 50;
  const Function &F = program();

  auto BestOf = [&](bool Traced) {
    double BestMs = 1e300;
    for (int Rep = 0; Rep != 5; ++Rep) {
      TraceContext TC(deriveTraceId(1, static_cast<uint64_t>(Rep)));
      PipelineConfig Cfg = Off;
      Cfg.Trace = Traced ? &TC : nullptr;
      uint64_t T0 = steadyClockNs();
      PipelineResult R = runPipeline(F, Cfg);
      benchmark::DoNotOptimize(R.NumInsts);
      BestMs = std::min(
          BestMs, static_cast<double>(steadyClockNs() - T0) / 1e6);
    }
    return BestMs;
  };

  BestOf(false); // Warm caches before measuring.
  double OffMs = BestOf(false);
  double OnMs = BestOf(true);
  double OverheadPct = OffMs == 0 ? 0 : 100.0 * (OffMs / OnMs - 1.0);
  bool Ok = OffMs <= OnMs * 1.25;
  std::printf("trace-overhead-check: %s (trace off %.2f ms, on %.2f ms, "
              "disabled-path overhead %+.1f%%)\n",
              Ok ? "PASS" : "FAIL", OffMs, OnMs, OverheadPct);
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return runMetricsOverheadCheck() + runTraceOverheadCheck();
}
