//===- bench/bench_portfolio.cpp - Portfolio race latency + identity ------===//
//
// Acceptance harness for the scheme-portfolio race (core/Portfolio.h).
// Two modes:
//
//  * --corpus=DIR: compiles every .dra file (plus a spread of generated
//    programs) through the race at Jobs 1, 2, 8, and one-worker-per-arm,
//    and checks each committed result is byte-identical — via
//    ResultCache::serializeResult — to the best sequential single-scheme
//    arm under the (encoded-cost, arm-index) winner rule. Exits 1 on the
//    first divergence; runs as the `bench_portfolio_identity` ctest;
//
//  * --perf-out=DIR: times, at batch depth 1 (one function in flight,
//    the latency case the portfolio exists for), the sequential
//    all-arms sweep versus the concurrent race on the same function
//    set, and writes portfolio_perf_seq.json / portfolio_perf_race.json
//    carrying the *same* unlabeled gauge key (portfolio.wall_us), so
//      dra-stats --fail-on=portfolio.wall_us:-25 \
//          portfolio_perf_seq.json portfolio_perf_race.json
//    fails unless racing cuts single-function latency by more than 25%
//    over compiling the arms back to back on the same machine and run.
//    Every timed race is also byte-checked against its sequential sweep.
//
//    The timed portfolio is {select, remap x48, remap x96} — arms with
//    *comparable* costs, so the measurement isolates what racing buys:
//    overlapping arms hides all but the slowest. The default portfolio's
//    coalesce arm would drown the comparison (its ILP search is ~100x
//    the other arms on these shapes), making any wall-clock gate read on
//    one arm's runtime rather than on concurrency.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Portfolio.h"
#include "driver/Metrics.h"
#include "driver/ResultCache.h"
#include "ir/Parser.h"
#include "workloads/ProgramGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

using namespace dra;

namespace {

PipelineConfig raceConfig() {
  PipelineConfig C;
  C.Enc = lowEndConfig(12);
  // Enough restart budget that every arm does real work; the race's win
  // is hiding the slowest arm behind the others, not skipping work.
  C.Remap.NumStarts = 24;
  C.Portfolio.Mode = PortfolioMode::Race;
  return C;
}

/// The sequential reference: each resolved arm compiled alone, strict
/// (cost, index) minimum kept.
PipelineResult bestSequentialArm(const Function &F, const PipelineConfig &C,
                                 size_t *WinnerArm = nullptr) {
  std::vector<PortfolioArm> Arms = resolvedPortfolioArms(C.Portfolio);
  PipelineResult Best;
  uint64_t BestCost = UINT64_MAX;
  size_t BestIdx = 0;
  for (size_t A = 0; A != Arms.size(); ++A) {
    PipelineConfig AC = C;
    AC.Portfolio = PortfolioConfig();
    AC.S = Arms[A].S;
    if (Arms[A].RemapStarts != 0)
      AC.Remap.NumStarts = Arms[A].RemapStarts;
    PipelineResult R = runPipeline(F, AC);
    uint64_t Cost = encodedCost(R);
    if (Cost < BestCost) {
      BestCost = Cost;
      BestIdx = A;
      Best = std::move(R);
    }
  }
  if (WinnerArm)
    *WinnerArm = BestIdx;
  return Best;
}

std::vector<std::pair<std::string, Function>>
loadCorpus(const std::string &Dir, bool *Ok) {
  namespace fs = std::filesystem;
  *Ok = true;
  std::vector<std::pair<std::string, Function>> Corpus;
  if (!Dir.empty()) {
    std::vector<std::string> Files;
    std::error_code EC;
    for (const auto &Entry : fs::directory_iterator(Dir, EC))
      if (Entry.path().extension() == ".dra")
        Files.push_back(Entry.path().string());
    if (EC || Files.empty()) {
      std::fprintf(stderr, "error: no .dra files under '%s'\n", Dir.c_str());
      *Ok = false;
      return Corpus;
    }
    std::sort(Files.begin(), Files.end());
    for (const std::string &Path : Files) {
      std::ifstream In(Path);
      std::string Text(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>{});
      std::string Err;
      auto F = parseFunction(Text, &Err);
      if (!F) {
        std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
        *Ok = false;
        return Corpus;
      }
      Corpus.emplace_back(Path, std::move(*F));
    }
  }
  // Generated shapes with real pressure, so arm costs actually diverge
  // and the slowest arm dominates a sequential sweep.
  for (uint64_t Seed : {7u, 23u, 61u, 101u}) {
    ProgramProfile P;
    P.Seed = Seed;
    P.TopStatements = 12;
    P.BodyStatements = 7;
    P.PressureVars = 8;
    Corpus.emplace_back("gen" + std::to_string(Seed),
                        generateProgram("gen" + std::to_string(Seed), P));
  }
  return Corpus;
}

int runCorpusIdentity(const std::string &Dir) {
  bool Ok = false;
  auto Corpus = loadCorpus(Dir, &Ok);
  if (!Ok)
    return 2;

  const unsigned JobCounts[] = {1, 2, 8, 0};
  size_t Checked = 0;
  for (auto &[Name, F] : Corpus) {
    PipelineConfig C = raceConfig();
    std::string Ref = ResultCache::serializeResult(bestSequentialArm(F, C));
    for (unsigned Jobs : JobCounts) {
      C.Portfolio.Jobs = Jobs;
      PortfolioOutcome Out;
      PipelineResult R = runPortfolio(F, C, nullptr, &Out);
      if (ResultCache::serializeResult(R) != Ref) {
        std::fprintf(stderr,
                     "MISMATCH: %s: race jobs=%u (winner arm %u) differs "
                     "from best sequential arm\n",
                     Name.c_str(), Jobs, Out.WinnerArm);
        return 1;
      }
      ++Checked;
    }
  }
  std::printf("portfolio identity: %zu function(s) x %zu job count(s), "
              "%zu comparisons, all bit-identical\n",
              Corpus.size(), std::size(JobCounts), Checked);
  return 0;
}

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool writeWallUs(const std::string &Path, double WallUs, double Functions) {
  MetricsRegistry Reg;
  Reg.gauge("portfolio.wall_us", WallUs);
  Reg.gauge("portfolio.functions", Functions);
  std::string Err;
  if (!Reg.writeJsonFile(Path, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return false;
  }
  return true;
}

int runPerfOut(const std::string &Dir, const std::string &Corpus) {
  std::filesystem::create_directories(Dir);
  bool Ok = false;
  auto Functions = loadCorpus(Corpus, &Ok);
  if (!Ok)
    return 2;

  // Batch depth 1: one function in flight at a time — the interactive
  // request-latency shape, where a sequential sweep pays the sum of the
  // arm times and the race pays roughly the max.
  const int Iters = 3;
  double SeqUs = 0, RaceUs = 0;
  for (int It = 0; It != Iters; ++It) {
    for (auto &[Name, F] : Functions) {
      PipelineConfig C = raceConfig();
      C.Portfolio.Arms = {{Scheme::Select, 0},
                          {Scheme::Remap, 48},
                          {Scheme::Remap, 96}};
      C.Portfolio.Jobs = 0; // One worker per arm.

      double T0 = nowUs();
      PipelineResult Seq = bestSequentialArm(F, C);
      double T1 = nowUs();
      PipelineResult Raced = runPortfolio(F, C);
      double T2 = nowUs();
      SeqUs += T1 - T0;
      RaceUs += T2 - T1;

      if (ResultCache::serializeResult(Raced) !=
          ResultCache::serializeResult(Seq)) {
        std::fprintf(stderr, "MISMATCH: %s: raced result differs from "
                             "sequential sweep\n",
                     Name.c_str());
        return 1;
      }
    }
  }

  if (!writeWallUs(Dir + "/portfolio_perf_seq.json", SeqUs,
                   double(Functions.size())) ||
      !writeWallUs(Dir + "/portfolio_perf_race.json", RaceUs,
                   double(Functions.size())))
    return 2;
  std::printf("portfolio perf: %zu function(s) x %d iteration(s): "
              "sequential sweep %.0f us, race %.0f us (%.2fx); wrote %s\n",
              Functions.size(), Iters, SeqUs, RaceUs,
              RaceUs > 0 ? SeqUs / RaceUs : 0.0,
              (Dir + "/portfolio_perf_{seq,race}.json").c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Corpus, PerfOut;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--corpus=", 0) == 0)
      Corpus = Arg.substr(std::strlen("--corpus="));
    else if (Arg.rfind("--perf-out=", 0) == 0)
      PerfOut = Arg.substr(std::strlen("--perf-out="));
    else {
      std::fprintf(stderr, "usage: bench_portfolio [--corpus=DIR] "
                           "[--perf-out=DIR]\n");
      return 2;
    }
  }
  if (!PerfOut.empty())
    return runPerfOut(PerfOut, Corpus);
  return runCorpusIdentity(Corpus);
}
