//===- bench/bench_ablation_remap.cpp - Remapping/ordering ablations ------===//
//
// Ablations for the design choices DESIGN.md calls out:
//  1. Greedy multi-start remapping vs. restart count (the paper uses 1000
//     initial register vectors; how much do they buy?).
//  2. Access-order alternative of Section 9.4 (dst-first vs src-first).
//  3. Register-level remapping vs live-range recoloring (this repo's
//     strengthening) on the same allocations.
//
//===----------------------------------------------------------------------===//

#include "core/DiffSelectHook.h"
#include "core/Encoder.h"
#include "core/Recolor.h"
#include "core/Remap.h"
#include "regalloc/GraphColoring.h"
#include "workloads/MiBench.h"

#include <cstdio>

using namespace dra;

int main() {
  std::printf("Ablation 1: remapping restart count (adjacency cost after "
              "remap, summed over benchmarks)\n");
  for (unsigned Starts : {1u, 4u, 16u, 64u, 256u, 1000u}) {
    double TotalBefore = 0, TotalAfter = 0;
    for (const std::string &Name : miBenchNames()) {
      Function F = miBenchProgram(Name);
      allocateGraphColoring(F, 12);
      EncodingConfig C = lowEndConfig(12);
      RemapOptions O;
      O.NumStarts = Starts;
      Function Copy = F;
      RemapResult R = remapFunction(Copy, C, O);
      TotalBefore += R.CostBefore;
      TotalAfter += R.CostAfter;
    }
    std::printf("  starts %4u   cost %8.1f -> %8.1f  (-%4.1f%%)\n", Starts,
                TotalBefore, TotalAfter,
                100.0 * (1.0 - TotalAfter / TotalBefore));
  }

  std::printf("\nAblation 2: access order (static set_last_reg count after "
              "select+recolor+remap+encode)\n");
  for (AccessOrder Order : {AccessOrder::SrcFirst, AccessOrder::DstFirst}) {
    size_t TotalSlr = 0, TotalInsts = 0;
    for (const std::string &Name : miBenchNames()) {
      EncodingConfig C = lowEndConfig(12);
      C.Order = Order;
      Function F = miBenchProgram(Name);
      DiffSelectHook Hook(C);
      std::vector<RegId> ColorOf;
      allocateGraphColoring(F, 12, &Hook, 60, &ColorOf);
      recolorColoring(F, C, ColorOf);
      rewriteToPhysical(F, ColorOf, 12);
      RemapOptions O;
      O.NumStarts = 100;
      remapFunction(F, C, O);
      EncodedFunction E = encodeFunction(F, C);
      TotalSlr += E.Stats.setLastTotal();
      TotalInsts += E.Stats.NumInsts;
    }
    std::printf("  %-9s set_last_reg %6zu (%.2f%% of %zu insts)\n",
                Order == AccessOrder::SrcFirst ? "src-first" : "dst-first",
                TotalSlr,
                100.0 * static_cast<double>(TotalSlr) /
                    static_cast<double>(TotalInsts),
                TotalInsts);
  }

  std::printf("\nAblation 3: register-level remap vs live-range recolor "
              "(adjacency cost on identical allocations)\n");
  double SumIdent = 0, SumRemap = 0, SumRecolor = 0;
  for (const std::string &Name : miBenchNames()) {
    EncodingConfig C = lowEndConfig(12);
    Function F = miBenchProgram(Name);
    std::vector<RegId> ColorOf;
    allocateGraphColoring(F, 12, nullptr, 60, &ColorOf);

    // (a) plain rewrite + remap.
    Function Remapped = F;
    std::vector<RegId> ColorA = ColorOf;
    rewriteToPhysical(Remapped, ColorA, 12);
    RemapOptions O;
    O.NumStarts = 100;
    RemapResult RR = remapFunction(Remapped, C, O);
    SumIdent += RR.CostBefore;
    SumRemap += RR.CostAfter;

    // (b) recolor then rewrite.
    std::vector<RegId> ColorB = ColorOf;
    RecolorStats RS = recolorColoring(F, C, ColorB);
    SumRecolor += RS.CostAfter;
  }
  std::printf("  identity %8.1f   remap %8.1f   recolor %8.1f\n", SumIdent,
              SumRemap, SumRecolor);
  std::printf("  (recolor operates on live ranges and should dominate "
              "register-level remapping)\n");
  return 0;
}
