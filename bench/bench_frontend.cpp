//===- bench/bench_frontend.cpp - Mini-C frontend throughput --------------===//
//
// Google-benchmark timings for the mini-C frontend stages (tokenize,
// parse, lower, and the seeded source generator), so frontend cost stays
// visible next to the compile-time microbenchmarks: the dra-cc corpus
// runner and the csrc fuzz variant both sit on this path.
//
//===----------------------------------------------------------------------===//

#include "frontend/CSourceGen.h"
#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"

#include <benchmark/benchmark.h>

using namespace dra;

namespace {

/// A mid-sized generated program (fixed seed): representative of what the
/// csrc fuzz variant feeds the frontend, with helpers, loops and arrays.
const std::string &source() {
  static const std::string Src = generateCSource(csrcProfileFor(23));
  return Src;
}

void BM_Tokenize(benchmark::State &State) {
  const std::string &Src = source();
  std::vector<Token> Toks;
  for (auto _ : State) {
    Toks.clear();
    bool Ok = tokenize(Src, Toks);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Src.size()));
}
BENCHMARK(BM_Tokenize);

void BM_Parse(benchmark::State &State) {
  const std::string &Src = source();
  std::vector<Token> Toks;
  tokenize(Src, Toks);
  for (auto _ : State) {
    std::optional<CProgram> P = parseCProgram(Toks);
    benchmark::DoNotOptimize(P.has_value());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Src.size()));
}
BENCHMARK(BM_Parse);

void BM_Lower(benchmark::State &State) {
  std::optional<CProgram> P = parseCSource(source());
  for (auto _ : State) {
    std::optional<Function> F = lowerCProgram(*P, "bench");
    benchmark::DoNotOptimize(F.has_value());
  }
}
BENCHMARK(BM_Lower);

void BM_CompileCSource(benchmark::State &State) {
  // The full tokenize+parse+lower path dra-cc runs per input file.
  const std::string &Src = source();
  for (auto _ : State) {
    std::optional<Function> F = compileCSource("bench", Src);
    benchmark::DoNotOptimize(F.has_value());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Src.size()));
}
BENCHMARK(BM_CompileCSource);

void BM_GenerateCSource(benchmark::State &State) {
  // Source generation cost bounds the csrc sweep's per-case overhead.
  uint64_t Seed = 0;
  for (auto _ : State) {
    std::string Src = generateCSource(csrcProfileFor(Seed++));
    benchmark::DoNotOptimize(Src.size());
  }
}
BENCHMARK(BM_GenerateCSource);

} // namespace

BENCHMARK_MAIN();
