//===- bench/bench_table1_config.cpp - Table 1: machine configuration -----===//
//
// The paper's Table 1 lists the low-end machine configuration used for
// Figures 11-14 (a 5-stage in-order processor in the ARM/THUMB mold whose
// ISA exposes 8 registers while the core has 16). This binary prints the
// reproduction's equivalent configuration so the simulated machine is
// documented next to the results.
//
//===----------------------------------------------------------------------===//

#include "core/EncodingConfig.h"
#include "sim/LowEndSim.h"

#include <cstdio>

using namespace dra;

int main() {
  LowEndMachine M;
  EncodingConfig Base = lowEndConfig(8);
  EncodingConfig Diff = lowEndConfig(12);

  std::printf("Table 1: low-end machine configuration (reproduction)\n");
  std::printf("------------------------------------------------------\n");
  std::printf("pipeline            5-stage, in-order, single issue\n");
  std::printf("instruction width   %u bytes (THUMB-like)\n", M.BytesPerInst);
  std::printf("ISA registers       8 (baseline, direct 3-bit fields)\n");
  std::printf("diff. registers     %u addressable (DiffN=%u, DiffW=%u)\n",
              Diff.RegN, Diff.DiffN, Diff.DiffW);
  std::printf("I-cache             %u B, %u-way, %u B lines, miss %u cyc\n",
              M.ICacheBytes, M.ICacheWays, M.ICacheLineBytes,
              M.ICacheMissPenalty);
  std::printf("D-cache             %u B, %u-way, %u B lines, miss %u cyc\n",
              M.DCacheBytes, M.DCacheWays, M.DCacheLineBytes,
              M.DCacheMissPenalty);
  std::printf("load-use penalty    %u cycle(s)\n", M.LoadExtraCycles);
  std::printf("mul / div extra     %u / %u cycles\n", M.MulExtraCycles,
              M.DivExtraCycles);
  std::printf("taken branch        %u cycles\n", M.TakenBranchPenalty);
  std::printf("set_last_reg        1 fetch/decode slot (killed at decode)\n");
  std::printf("direct RegW needed  %u bits for 12 regs (vs DiffW=%u)\n",
              Diff.directWidth(), Diff.DiffW);
  (void)Base;
  return 0;
}
