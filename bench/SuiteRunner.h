//===- bench/SuiteRunner.h - Shared experiment drivers ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared drivers for the paper-reproduction benchmarks. Each bench binary
/// regenerates one table/figure; the underlying experiment (all five
/// pipelines over the ten MiBench-like programs, or the 1928-loop VLIW
/// sweep) is identical across binaries, so it lives here.
///
/// Besides the human-readable tables each binary prints, every suite run
/// also writes a machine-readable metrics snapshot — BENCH_lowend.json /
/// BENCH_vliw.json in the working directory — in the dra-metrics-v1 schema
/// (driver/Metrics.h), consumable by tools/dra-stats. Suite-level result
/// gauges (suite.* / vliw.*) are written even when the on-disk result
/// cache is hit; the allocator-deep counters and stage timing histograms
/// require a fresh (uncached) run. Which of the two a snapshot is can be
/// read off the snapshot itself: every BENCH_*.json carries a
/// `cache.provenance` gauge — 0 when the experiment was computed fresh
/// (deep counters present), 1 when it was replayed from the on-disk
/// result cache (suite-level gauges only).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_BENCH_SUITERUNNER_H
#define DRA_BENCH_SUITERUNNER_H

#include "core/Pipeline.h"
#include "driver/Metrics.h"
#include "driver/Telemetry.h"

#include <map>
#include <string>
#include <vector>

namespace dra {

/// Metrics of one (program, scheme) cell of the low-end evaluation.
struct SchemeMetrics {
  double SpillPct = 0;      // Fig. 11.
  double SlrPct = 0;        // Fig. 12.
  size_t SlrJoin = 0;       // Breakdown of the above.
  size_t SlrRange = 0;
  size_t CodeBytes = 0;     // Fig. 13 numerator.
  uint64_t Cycles = 0;      // Fig. 14 input.
  bool SemanticsOk = false; // Fingerprint preserved end to end.
};

/// One program's row across all five schemes.
struct ProgramMetrics {
  std::string Name;
  std::map<Scheme, SchemeMetrics> PerScheme;

  double codeRatio(Scheme S) const {
    return static_cast<double>(PerScheme.at(S).CodeBytes) /
           static_cast<double>(PerScheme.at(Scheme::Baseline).CodeBytes);
  }
  double speedupPct(Scheme S) const {
    return 100.0 *
           (static_cast<double>(PerScheme.at(Scheme::Baseline).Cycles) /
                static_cast<double>(PerScheme.at(S).Cycles) -
            1.0);
  }
};

/// All five schemes, in the paper's presentation order.
const std::vector<Scheme> &allSchemes();

/// Runs the complete low-end experiment (Section 10.1): ten programs,
/// five pipelines, pipeline simulation. \p RemapStarts trades experiment
/// fidelity for time (the paper uses 1000 restarts). The programs×schemes
/// grid is compiled through the parallel BatchCompiler on \p Jobs workers
/// (0 = hardware concurrency, 1 = serial); results are deterministic and
/// independent of the worker count. \p Telem, when non-null, receives
/// per-stage spans and batch counters.
std::vector<ProgramMetrics> runLowEndSuite(unsigned RemapStarts = 200,
                                           unsigned Jobs = 0,
                                           Telemetry *Telem = nullptr);

/// One row of the VLIW evaluation (Tables 2 and 3) for a given RegN.
struct VliwRow {
  unsigned RegN = 32;
  double SpeedupOptimizedPct = 0; // Loops that needed > 32 registers.
  double SpeedupAllLoopsPct = 0;
  double SpeedupOverallPct = 0;   // Loops are 80% of execution time.
  size_t SpillOpsOptimized = 0;   // Table 3, column 2.
  double CodeGrowthOptimizedPct = 0;
  double CodeGrowthAllLoopsPct = 0;
  double CodeGrowthAllCodePct = 0; // Loops are ~25% of static code.
  size_t OptimizedLoopCount = 0;
  size_t LoopCount = 0;
};

/// Runs the VLIW sweep (Section 10.2): schedules every corpus loop at the
/// 32-register baseline and at each differential RegN in {40,48,56,64},
/// applying differential encoding only to loops that need more than 32
/// registers (Section 8.2 selective enabling). \p LoopCount trims the
/// corpus for quick runs (0 = the paper's 1928). Loops are scheduled
/// across \p Jobs pool workers (0 = hardware concurrency, 1 = serial);
/// per-loop results are reduced in index order, so every row is
/// bit-identical to the serial run. \p Telem, when non-null, receives one
/// "swp" span per (loop, RegN) schedule.
std::vector<VliwRow> runVliwSuite(unsigned LoopCount = 0, unsigned Jobs = 0,
                                  Telemetry *Telem = nullptr);

/// One measured arm of the remap-search microbenchmark
/// (bench_remap_search; also folded into BENCH_vliw.json by the VLIW
/// suite as remap.* gauges).
struct RemapSearchPerf {
  std::string Arm;     ///< "full-recost", "incident", or "incremental".
  unsigned RegN = 0;
  unsigned Jobs = 1;   ///< RemapOptions::Jobs of this arm.
  double Seconds = 0;  ///< Wall time of the findRemap call.
  double SwapsEvaluated = 0;
  double SwapsPerSec = 0; ///< The throughput metric CI gates on.
  double CostAfter = 0;
  /// Permutation identical to the first arm's (all arms are exact on the
  /// integer-weight graph, so any divergence is a bug).
  bool MatchesReference = true;
};

/// Times the multi-start greedy remap search over a seeded dense synthetic
/// adjacency graph at \p RegN (vliwConfig, integer weights): the
/// full-recost baseline, the pre-incremental incident-walk arm, the
/// incremental arm, and the incremental arm again at each worker count in
/// \p ParallelJobs. Every arm evaluates the identical swap sequence, so
/// swaps/second compares pure evaluation throughput.
std::vector<RemapSearchPerf>
measureRemapSearch(unsigned RegN, unsigned NumStarts,
                   const std::vector<unsigned> &ParallelJobs);

/// Folds \p Perf into \p Reg as remap.* gauges labeled {arm, jobs, regn}.
void recordRemapSearchPerf(MetricsRegistry &Reg,
                           const std::vector<RemapSearchPerf> &Perf);

} // namespace dra

#endif // DRA_BENCH_SUITERUNNER_H
