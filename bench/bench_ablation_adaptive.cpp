//===- bench/bench_ablation_adaptive.cpp - Section 8.2 ablation -----------===//
//
// Ablation of *selectively enabling* differential encoding (Section 8.2):
// compares always-on differential select against the adaptive mode that
// falls back to the baseline when the statically estimated benefit
// (frequency-weighted spills saved) does not cover the set_last_reg
// overhead. The adaptive mode should never lose to min(baseline, select)
// by more than the estimation error, and should rescue the low-pressure
// programs where differential encoding is pure overhead.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sim/LowEndSim.h"
#include "workloads/MiBench.h"

#include <cstdio>

using namespace dra;

int main() {
  std::printf("Ablation: adaptive enabling of differential encoding "
              "(Section 8.2)\n");
  std::printf("%-14s%12s%12s%12s%10s\n", "benchmark", "baseline",
              "select", "adaptive", "chose");

  double SumBase = 0, SumSel = 0, SumAda = 0;
  for (const std::string &Name : miBenchNames()) {
    Function F = miBenchProgram(Name);

    PipelineConfig Cfg;
    Cfg.BaselineK = 8;
    Cfg.Enc = lowEndConfig(12);
    Cfg.Remap.NumStarts = 100;

    Cfg.S = Scheme::Baseline;
    uint64_t Base = simulate(runPipeline(F, Cfg).F).Cycles;

    Cfg.S = Scheme::Select;
    uint64_t Sel = simulate(runPipeline(F, Cfg).F).Cycles;

    Cfg.AdaptiveEnable = true;
    PipelineResult Ada = runPipeline(F, Cfg);
    uint64_t AdaCycles = simulate(Ada.F).Cycles;

    SumBase += static_cast<double>(Base);
    SumSel += static_cast<double>(Sel);
    SumAda += static_cast<double>(AdaCycles);
    std::printf("%-14s%12llu%12llu%12llu%10s\n", Name.c_str(),
                static_cast<unsigned long long>(Base),
                static_cast<unsigned long long>(Sel),
                static_cast<unsigned long long>(AdaCycles),
                Ada.AdaptiveFellBack ? "baseline" : "diff");
  }
  std::printf("%-14s%12.0f%12.0f%12.0f\n", "total", SumBase, SumSel, SumAda);
  std::printf("\nadaptive vs always-select: %+.2f%%   adaptive vs baseline: "
              "%+.2f%%\n",
              100.0 * (SumSel / SumAda - 1.0),
              100.0 * (SumBase / SumAda - 1.0));
  return 0;
}
