//===- bench/bench_table3_swp_codegrowth.cpp - Table 3: spills/code -------===//
//
// Reproduces Table 3: number of spill operations remaining in the
// optimized loops and static code growth (optimized loops / all loops /
// all code) per RegN. Paper: spills drop sharply from RegN=32 to 40/48;
// overall code growth stays within 1.13%, and RegN=40 actually shrinks
// the code because spill savings exceed the set_last_reg cost.
//
//===----------------------------------------------------------------------===//

#include "SuiteRunner.h"

#include <cstdio>
#include <cstdlib>

using namespace dra;

int main(int Argc, char **Argv) {
  unsigned Loops = Argc > 1 ? std::atoi(Argv[1]) : 1928;
  std::vector<VliwRow> Rows = runVliwSuite(Loops);

  std::printf("Table 3: spills in optimized loops and code growth\n");
  std::printf("%6s%14s%18s%16s%14s\n", "RegN", "spill ops",
              "optimized loops", "all loops", "all code");
  for (const VliwRow &Row : Rows) {
    if (Row.RegN == 32) {
      std::printf("%6u%14zu%17s%%%15s%%%13s%%  (baseline)\n", Row.RegN,
                  Row.SpillOpsOptimized, "0.00", "0.00", "0.00");
      continue;
    }
    std::printf("%6u%14zu%17.2f%%%15.2f%%%13.2f%%\n", Row.RegN,
                Row.SpillOpsOptimized, Row.CodeGrowthOptimizedPct,
                Row.CodeGrowthAllLoopsPct, Row.CodeGrowthAllCodePct);
  }
  std::printf("\npaper: spills fall steeply from RegN=32 to 48; overall "
              "code growth <= 1.13%%; RegN=40 shrinks code\n");
  return 0;
}
