//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Builds a small program, runs every allocation pipeline on it (baseline
// direct encoding with 8 registers vs. the three differential schemes with
// RegN = 12 addressed through the same 3-bit fields), checks that all of
// them compute the same result, and prints the static and dynamic numbers
// the paper's evaluation is about.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "sim/LowEndSim.h"
#include "workloads/ProgramGen.h"

#include <cstdio>

using namespace dra;

int main() {
  // A synthetic program with enough register pressure that 8 registers
  // force spills (PressureVars accumulators stay live across the loop
  // nest).
  ProgramProfile Profile;
  Profile.Seed = 42;
  Profile.PressureVars = 10;
  Profile.TopStatements = 10;
  Function Program = generateProgram("quickstart", Profile);

  ExecResult Reference = interpret(Program);
  std::printf("program: %zu instructions, returns %lld\n",
              Program.numInsts(),
              static_cast<long long>(Reference.ReturnValue));

  uint64_t BaselineCycles = 0;
  for (Scheme S : {Scheme::Baseline, Scheme::OSpill, Scheme::Remap,
                   Scheme::Select, Scheme::Coalesce}) {
    PipelineConfig Config;
    Config.S = S;
    Config.BaselineK = 8;          // The unmodified ISA addresses 8 regs.
    Config.Enc = lowEndConfig(12); // Differential: 12 regs in 3-bit fields.
    Config.Remap.NumStarts = 200;  // Faster than the paper's 1000 for demo.

    PipelineResult R = runPipeline(Program, Config);

    // Semantic check: the allocated+encoded code must compute the same
    // result as the virtual-register program.
    ExecResult After = interpret(R.F);
    bool Same = fingerprint(After) == fingerprint(Reference);

    SimResult Sim = simulate(R.F);
    if (S == Scheme::Baseline)
      BaselineCycles = Sim.Cycles;
    double Speedup =
        BaselineCycles == 0
            ? 0
            : 100.0 * (static_cast<double>(BaselineCycles) /
                           static_cast<double>(Sim.Cycles) -
                       1.0);

    std::printf("%-10s spills %5.2f%%  set_last_reg %5.2f%%  code %5zu B  "
                "cycles %8llu  speedup %+5.1f%%  %s\n",
                schemeName(S), R.spillPercent(), R.setLastPercent(),
                R.CodeBytes, static_cast<unsigned long long>(Sim.Cycles),
                Speedup, Same ? "OK" : "MISMATCH");
    if (!Same)
      return 1;
  }
  return 0;
}
