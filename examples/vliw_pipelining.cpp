//===- examples/vliw_pipelining.cpp - Software-pipelined loop walkthrough -===//
//
// Part of the differential-register-allocation reproduction library.
//
// A high-ILP loop (eight parallel multiply-accumulate chains, the shape of
// an unrolled dot product) is modulo-scheduled for the 4-issue VLIW
// machine. With only 32 architected registers the kernel's register
// requirement forces spills, which add memory traffic and stretch the
// initiation interval; differential encoding exposes 40-64 registers
// through the same 5-bit fields (Section 10.2). The example prints II,
// MaxLive, MVE, spills and cycles for each configuration.
//
//===----------------------------------------------------------------------===//

#include "core/EncodingConfig.h"
#include "swp/SwpPipeline.h"

#include <cstdio>

using namespace dra;

namespace {

/// Twelve parallel load-mul-add chains with a loop-carried accumulator.
/// Half the chains reuse their loaded value two iterations later (the
/// shape an unroll-and-jam pass produces), so loaded values stay live for
/// more than two initiation intervals — the kernel's register requirement
/// lands well above the 32 architected registers.
LoopDdg buildMacLoop() {
  LoopDdg L;
  L.Name = "mac12";
  L.TripCount = 1000;
  for (int Chain = 0; Chain != 12; ++Chain) {
    auto AddOp = [&](FuKind Kind, unsigned Latency) {
      DdgOp Op;
      Op.Kind = Kind;
      Op.Latency = Latency;
      L.Ops.push_back(Op);
      return static_cast<uint32_t>(L.Ops.size() - 1);
    };
    uint32_t LoadA = AddOp(FuKind::Mem, 2);
    uint32_t LoadB = AddOp(FuKind::Mem, 2);
    uint32_t Mul = AddOp(FuKind::Mul, 3);
    uint32_t Acc = AddOp(FuKind::Alu, 1);
    L.Edges.push_back({LoadA, Mul, 2, 0, true});
    L.Edges.push_back({LoadB, Mul, 2, 0, true});
    L.Edges.push_back({Mul, Acc, 3, 0, true});
    // Accumulator recurrence across iterations.
    L.Edges.push_back({Acc, Acc, 1, 1, true});
    // Cross-iteration reuse of the loaded value (distance 2).
    if (Chain % 2 == 0)
      L.Edges.push_back({LoadA, Acc, 2, 2, true});
  }
  return L;
}

} // namespace

int main() {
  VliwMachine Machine;
  LoopDdg Loop = buildMacLoop();
  std::printf("loop '%s': %zu ops (%zu mem, %zu mul), MinII = %u\n\n",
              Loop.Name.c_str(), Loop.Ops.size(),
              Loop.countKind(FuKind::Mem), Loop.countKind(FuKind::Mul),
              minII(Loop, Machine));

  std::printf("%8s%6s%9s%6s%8s%10s%12s%8s\n", "config", "II", "MaxLive",
              "MVE", "spills", "cycles", "code insts", "slr");

  // Baseline: 32 architected registers, direct encoding.
  SwpResult Base = pipelineLoop(Loop, Machine, 32);
  std::printf("%8s%6u%9u%6u%8zu%10llu%12zu%8zu\n", "32/dir", Base.II,
              Base.MaxLive, Base.Mve, Base.SpillOps,
              static_cast<unsigned long long>(Base.Cycles), Base.CodeInsts,
              Base.SetLastRegs);

  // Differential encoding: RegN registers through 5-bit fields.
  for (unsigned RegN : {40u, 48u, 56u, 64u}) {
    EncodingConfig Enc = vliwConfig(RegN);
    SwpResult R = pipelineLoop(Loop, Machine, 32, &Enc);
    double Speedup = 100.0 * (static_cast<double>(Base.Cycles) /
                                  static_cast<double>(R.Cycles) -
                              1.0);
    std::printf("%7u/d%6u%9u%6u%8zu%10llu%12zu%8zu  (%+.1f%%)\n", RegN,
                R.II, R.MaxLive, R.Mve, R.SpillOps,
                static_cast<unsigned long long>(R.Cycles), R.CodeInsts,
                R.SetLastRegs, Speedup);
  }

  std::printf("\nThe spills at 32 registers are pure register-pressure "
              "artifacts; once differential encoding\nexposes enough "
              "registers the kernel schedules at its resource-bound II "
              "with no memory overhead.\n");
  return 0;
}
