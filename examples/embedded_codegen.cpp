//===- examples/embedded_codegen.cpp - FIR kernel on a THUMB-like core ----===//
//
// Part of the differential-register-allocation reproduction library.
//
// A hand-written FIR filter kernel (the archetypal embedded workload the
// paper's low-end evaluation motivates) is compiled with the baseline
// 8-register allocator and with differential coalesce at RegN = 12, and
// the resulting machine code is printed side by side — including the
// per-field difference codes and any set_last_reg repairs, i.e. exactly
// what the modified decoder would see.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "sim/LowEndSim.h"

#include <cstdio>

using namespace dra;

namespace {

/// y[i] = sum_{k < Taps} h[k] * x[i + k] over a wrapped signal buffer.
Function buildFirKernel(unsigned Taps, unsigned Samples) {
  Function F;
  F.Name = "fir";
  F.MemWords = 512; // x at [0..), h at [256..), y written back over x.
  uint32_t Entry = F.makeBlock();
  uint32_t OuterBody = F.makeBlock();
  uint32_t InnerBody = F.makeBlock();
  uint32_t InnerExit = F.makeBlock();
  uint32_t Done = F.makeBlock();
  IRBuilder B(F);

  B.setBlock(Entry);
  // Seed the signal and coefficients so the kernel computes something.
  RegId Seed = B.createMovImm(0x1234);
  RegId InitI = B.createMovImm(64);
  uint32_t InitBody = F.makeBlock();
  uint32_t InitExit = F.makeBlock();
  B.createJmp(InitBody);
  B.setBlock(InitBody);
  B.createBinImmTo(Opcode::MulI, Seed, Seed, 75);
  B.createBinImmTo(Opcode::AddI, Seed, Seed, 74);
  B.createBinImmTo(Opcode::AndI, Seed, Seed, 0xffff);
  B.createStore(InitI, 0, Seed);
  B.createStore(InitI, 256, Seed);
  B.createBinImmTo(Opcode::AddI, InitI, InitI, -1);
  B.createBr(InitI, InitBody, InitExit);
  B.setBlock(InitExit);

  RegId I = B.createMovImm(Samples);
  RegId Acc0 = B.createMovImm(0);
  B.createJmp(OuterBody);

  B.setBlock(OuterBody);
  // Four partial sums (a 4-way unrolled reduction): together with the
  // loop counters and addresses they push peak pressure past the
  // 8-register baseline ISA but comfortably inside the differential 12.
  RegId Acc = B.createMovImm(0);
  RegId AccB = B.createMovImm(0);
  RegId AccC = B.createMovImm(0);
  RegId AccD = B.createMovImm(0);
  RegId K = B.createMovImm(Taps);
  B.createJmp(InnerBody);

  B.setBlock(InnerBody);
  RegId Xi = B.createBin(Opcode::Add, I, K);
  RegId XAddr = B.createBinImm(Opcode::AndI, Xi, 255);
  RegId X = B.createLoad(XAddr, 0);
  RegId HAddr = B.createBinImm(Opcode::AndI, K, 255);
  RegId H = B.createLoad(HAddr, 256);
  RegId Prod = B.createBin(Opcode::Mul, X, H);
  B.createBinTo(Opcode::Add, Acc, Acc, Prod);
  RegId Prod2 = B.createBin(Opcode::Add, X, H);
  B.createBinTo(Opcode::Add, AccB, AccB, Prod2);
  RegId Prod3 = B.createBin(Opcode::Xor, X, H);
  B.createBinTo(Opcode::Add, AccC, AccC, Prod3);
  RegId Prod4 = B.createBin(Opcode::Sub, X, H);
  B.createBinTo(Opcode::Xor, AccD, AccD, Prod4);
  B.createBinImmTo(Opcode::AddI, K, K, -1);
  B.createBr(K, InnerBody, InnerExit);

  B.setBlock(InnerExit);
  RegId YAddr = B.createBinImm(Opcode::AndI, I, 255);
  RegId Merged = B.createBin(Opcode::Add, Acc, AccB);
  B.createBinTo(Opcode::Add, Merged, Merged, AccC);
  B.createBinTo(Opcode::Xor, Merged, Merged, AccD);
  RegId Scaled = B.createBinImm(Opcode::ShrI, Merged, 6);
  B.createStore(YAddr, 0, Scaled);
  B.createBinTo(Opcode::Xor, Acc0, Acc0, Scaled);
  B.createBinImmTo(Opcode::AddI, I, I, -1);
  B.createBr(I, OuterBody, Done);

  B.setBlock(Done);
  B.createRet(Acc0);
  F.recomputeCFG();
  return F;
}

void printEncodedListing(const EncodedFunction &E, unsigned MaxInsts) {
  unsigned Shown = 0;
  for (uint32_t Blk = 0; Blk != E.Annotated.Blocks.size(); ++Blk) {
    std::printf("bb%u:\n", Blk);
    const auto &Insts = E.Annotated.Blocks[Blk].Insts;
    for (uint32_t Idx = 0; Idx != Insts.size(); ++Idx) {
      std::printf("  %-28s ; codes:", toString(Insts[Idx]).c_str());
      for (uint8_t Code : E.Codes[Blk][Idx])
        std::printf(" %u", Code);
      std::printf("\n");
      if (++Shown == MaxInsts) {
        std::printf("  ... (truncated)\n");
        return;
      }
    }
  }
}

} // namespace

int main() {
  Function Fir = buildFirKernel(/*Taps=*/12, /*Samples=*/128);
  ExecResult Reference = interpret(Fir);
  std::printf("FIR kernel: %zu instructions, %u virtual registers, "
              "checksum %llx\n\n",
              Fir.numInsts(), Fir.NumRegs,
              static_cast<unsigned long long>(fingerprint(Reference)));

  // Baseline: the unmodified 8-register ISA.
  PipelineConfig BaseCfg;
  BaseCfg.S = Scheme::Baseline;
  PipelineResult Base = runPipeline(Fir, BaseCfg);
  SimResult BaseSim = simulate(Base.F);
  std::printf("baseline (8 regs, direct): %zu insts, %zu spill insts, "
              "%llu cycles\n",
              Base.NumInsts, Base.SpillInsts,
              static_cast<unsigned long long>(BaseSim.Cycles));

  // Differential coalesce: 12 registers through the same 3-bit fields.
  PipelineConfig DiffCfg;
  DiffCfg.S = Scheme::Coalesce;
  DiffCfg.Enc = lowEndConfig(12);
  DiffCfg.Remap.NumStarts = 200;
  PipelineResult Diff = runPipeline(Fir, DiffCfg);
  SimResult DiffSim = simulate(Diff.F);
  std::printf("coalesce (12 regs, diff):  %zu insts, %zu spill insts, "
              "%zu set_last_reg, %llu cycles (%+.1f%%)\n\n",
              Diff.NumInsts, Diff.SpillInsts, Diff.SetLastRegs,
              static_cast<unsigned long long>(DiffSim.Cycles),
              100.0 * (static_cast<double>(BaseSim.Cycles) /
                           static_cast<double>(DiffSim.Cycles) -
                       1.0));

  if (BaseSim.Fingerprint != fingerprint(Reference) ||
      DiffSim.Fingerprint != fingerprint(Reference)) {
    std::printf("ERROR: transformed kernel computes a different result\n");
    return 1;
  }

  // Show what the decoder sees.
  std::printf("encoded listing (first 24 instructions):\n");
  EncodedFunction E = encodeFunction(stripSetLastReg(Diff.F), DiffCfg.Enc);
  printEncodedListing(E, 24);
  return 0;
}
