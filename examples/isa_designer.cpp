//===- examples/isa_designer.cpp - Encoding-space design exploration ------===//
//
// Part of the differential-register-allocation reproduction library.
//
// An ISA designer's view of differential encoding: for a fixed register
// field width (3 bits, the THUMB-class budget), how many architected
// registers can differential encoding usefully expose? The example sweeps
// RegN from 8 (pure direct encoding) to 16 and reports spills,
// set_last_reg overhead, code size and simulated cycles on the benchmark
// suite — the trade-off curve behind the paper's choice of RegN = 12.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "sim/LowEndSim.h"
#include "workloads/MiBench.h"

#include <cstdio>

using namespace dra;

int main() {
  const std::vector<std::string> Programs = {"basicmath", "susan", "sha",
                                             "dijkstra"};

  // Baseline once per program.
  std::vector<Function> Sources;
  std::vector<uint64_t> BaseCycles;
  std::vector<size_t> BaseCodeBytes;
  for (const std::string &Name : Programs) {
    Function F = miBenchProgram(Name);
    PipelineConfig Cfg;
    Cfg.S = Scheme::Baseline;
    PipelineResult R = runPipeline(F, Cfg);
    BaseCycles.push_back(simulate(R.F).Cycles);
    BaseCodeBytes.push_back(R.CodeBytes);
    Sources.push_back(std::move(F));
  }

  std::printf("3-bit register fields (DiffN = 8), differential select "
              "pipeline, %zu programs\n\n",
              Programs.size());
  std::printf("%6s%10s%10s%12s%12s\n", "RegN", "spill%", "slr%",
              "code ratio", "speedup");

  for (unsigned RegN : {8u, 10u, 12u, 14u, 16u}) {
    double SpillPct = 0, SlrPct = 0, CodeRatio = 0, Speedup = 0;
    for (size_t I = 0; I != Sources.size(); ++I) {
      PipelineConfig Cfg;
      Cfg.S = RegN == 8 ? Scheme::Baseline : Scheme::Select;
      Cfg.Enc = lowEndConfig(RegN);
      Cfg.Remap.NumStarts = 60;
      PipelineResult R = runPipeline(Sources[I], Cfg);
      SimResult Sim = simulate(R.F);
      SpillPct += R.spillPercent();
      SlrPct += R.setLastPercent();
      CodeRatio += static_cast<double>(R.CodeBytes) /
                   static_cast<double>(BaseCodeBytes[I]);
      Speedup += 100.0 * (static_cast<double>(BaseCycles[I]) /
                              static_cast<double>(Sim.Cycles) -
                          1.0);
    }
    double N = static_cast<double>(Sources.size());
    std::printf("%6u%9.2f%%%9.2f%%%12.3f%+11.2f%%\n", RegN, SpillPct / N,
                SlrPct / N, CodeRatio / N, Speedup / N);
  }

  std::printf("\nRegN = 8 is the direct-encoding baseline. Growing RegN "
              "buys spill reductions until the\nset_last_reg overhead of "
              "wrapping a 12-plus-register circle through 8 difference "
              "codes\ncatches up — the knee the paper picks RegN = 12 "
              "at.\n");
  return 0;
}
