//===- tests/encoding_test.cpp - Differential encoding tests --------------===//

#include "core/AccessSequence.h"
#include "core/AdjacencyGraph.h"
#include "core/Encoder.h"
#include "core/EncodingConfig.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "regalloc/GraphColoring.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// True if A and B have identical opcodes and register fields everywhere.
bool sameRegisterFields(const Function &A, const Function &B) {
  if (A.Blocks.size() != B.Blocks.size())
    return false;
  for (size_t Blk = 0; Blk != A.Blocks.size(); ++Blk) {
    const auto &IA = A.Blocks[Blk].Insts;
    const auto &IB = B.Blocks[Blk].Insts;
    if (IA.size() != IB.size())
      return false;
    for (size_t I = 0; I != IA.size(); ++I) {
      if (IA[I].Op != IB[I].Op)
        return false;
      if (IA[I].numRegFields() != IB[I].numRegFields())
        return false;
      for (unsigned Fld = 0; Fld != IA[I].numRegFields(); ++Fld)
        if (IA[I].regField(Fld) != IB[I].regField(Fld))
          return false;
    }
  }
  return true;
}

/// An allocated random program over C.RegN registers.
Function allocatedProgram(uint64_t Seed, const EncodingConfig &C) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = 5;
  P.TopStatements = 6;
  P.OuterTrip = 3;
  Function F = generateProgram("enc", P);
  allocateGraphColoring(F, C.RegN);
  return F;
}

} // namespace

TEST(EncodingConfig, PaperExampleDiffs) {
  // Figure 1: RegN = 7-ish circle; use the paper's Section 2 example with
  // RegN = 12 semantics checked separately. Here: diff(1, 3) = 2,
  // diff(3, 8) = 5 with RegN = 10.
  EncodingConfig C;
  C.RegN = 10;
  C.DiffN = 8;
  C.DiffW = 3;
  EXPECT_EQ(C.diffOf(1, 3), 2u);
  EXPECT_EQ(C.diffOf(3, 8), 5u);
  EXPECT_EQ(C.diffOf(8, 3), 5u); // (3-8) mod 10.
  EXPECT_EQ(C.diffOf(5, 5), 0u);
}

TEST(EncodingConfig, Condition3) {
  EncodingConfig C = lowEndConfig(12); // DiffN = 8.
  EXPECT_TRUE(C.encodable(0, 7));   // diff 7.
  EXPECT_FALSE(C.encodable(0, 8));  // diff 8.
  EXPECT_FALSE(C.encodable(1, 0));  // diff 11: backward step violates.
  EXPECT_TRUE(C.encodable(8, 3));   // diff 7.
  EXPECT_TRUE(C.encodable(4, 4));   // diff 0.
}

TEST(EncodingConfig, Validity) {
  EncodingConfig C = lowEndConfig(12);
  EXPECT_TRUE(C.valid());
  C.DiffN = 9; // 9 codes do not fit with DiffW = 3.
  EXPECT_FALSE(C.valid());
  C = lowEndConfig(12);
  C.SpecialRegs = {11};
  EXPECT_FALSE(C.valid()); // 8 + 1 codes > 2^3.
  C.DiffN = 7;
  EXPECT_TRUE(C.valid());
  EXPECT_EQ(C.specialCode(11), 7u);
}

TEST(EncodingConfig, DirectWidth) {
  EXPECT_EQ(lowEndConfig(12).directWidth(), 4u);
  EXPECT_EQ(lowEndConfig(8).directWidth(), 3u);
  EXPECT_EQ(vliwConfig(64).directWidth(), 6u);
}

TEST(AccessSequence, SrcFirstOrder) {
  Function F;
  F.NumRegs = 4;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 3;
  I.Src1 = 1;
  I.Src2 = 2;
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 3;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodingConfig C = lowEndConfig(12);
  std::vector<Access> Seq = accessSequence(F, C);
  ASSERT_EQ(Seq.size(), 4u);
  EXPECT_EQ(Seq[0].Reg, 1u);
  EXPECT_EQ(Seq[1].Reg, 2u);
  EXPECT_EQ(Seq[2].Reg, 3u);
  EXPECT_EQ(Seq[3].Reg, 3u);
}

TEST(AccessSequence, DstFirstOrder) {
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 3;
  I.Src1 = 1;
  I.Src2 = 2;
  std::vector<unsigned> Order = fieldOrder(I, AccessOrder::DstFirst);
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(I.regField(Order[0]), 3u);
  EXPECT_EQ(I.regField(Order[1]), 1u);
  EXPECT_EQ(I.regField(Order[2]), 2u);
}

TEST(AccessSequence, SpecialRegistersSkipped) {
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 5;
  I.Src1 = 11; // Special.
  I.Src2 = 2;
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 5;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 7;
  C.SpecialRegs = {11};
  std::vector<Access> Seq = accessSequence(F, C);
  ASSERT_EQ(Seq.size(), 3u);
  EXPECT_EQ(Seq[0].Reg, 2u);
  EXPECT_EQ(Seq[0].FieldIdx, 1u); // Position counts the skipped field.
}

TEST(AdjacencyGraph, PaperFigure5Shape) {
  // Access sequence L1 L2 L1 L2 L3 L2 L5 L3 L4 L4 L1 L4 L6 — simplified:
  // verify weights accumulate and self edges are dropped.
  AdjacencyGraph G(6);
  G.addWeight(0, 1, 1); // L1 -> L2
  G.addWeight(0, 1, 1); // Again: weight 2.
  G.addWeight(1, 1, 5); // Self edge ignored.
  EXPECT_DOUBLE_EQ(G.weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(G.weight(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(G.weight(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(G.totalWeight(), 2.0);
}

TEST(AdjacencyGraph, CostUsesCondition3) {
  EncodingConfig C;
  C.RegN = 3;
  C.DiffN = 2;
  C.DiffW = 1;
  ASSERT_TRUE(C.valid());
  AdjacencyGraph G(3);
  G.addWeight(0, 1, 4); // diff 1 < 2 OK.
  G.addWeight(1, 0, 3); // diff 2 >= 2 violated.
  std::vector<RegId> Identity = {0, 1, 2};
  EXPECT_DOUBLE_EQ(G.cost(Identity, C), 3.0);
  EXPECT_DOUBLE_EQ(G.identityCost(C), 3.0);
}

TEST(AdjacencyGraph, MergePreservesWeights) {
  AdjacencyGraph G(4);
  G.addWeight(0, 2, 1);
  G.addWeight(1, 2, 2);
  G.addWeight(3, 0, 5);
  G.mergeInto(1, 0); // 1 -> 0.
  EXPECT_DOUBLE_EQ(G.weight(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(G.weight(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(G.weight(3, 0), 5.0);
  EXPECT_DOUBLE_EQ(G.totalWeight(), 8.0);
}

TEST(AdjacencyGraph, MergeDropsSelfEdges) {
  AdjacencyGraph G(3);
  G.addWeight(0, 1, 2);
  G.addWeight(1, 0, 3);
  G.mergeInto(1, 0);
  EXPECT_DOUBLE_EQ(G.totalWeight(), 0.0);
}

TEST(AdjacencyGraph, CrossBlockWeightSharedAcrossPreds) {
  // Two predecessors ending in r0/r1, join starting with r2: each edge
  // gets weight 1/2.
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t BThen = F.makeBlock();
  uint32_t BElse = F.makeBlock();
  uint32_t BJoin = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Src1 = 0;
  Br.Target0 = BThen;
  Br.Target1 = BElse;
  F.Blocks[B0].Insts.push_back(Br);
  B.setBlock(BThen);
  B.createMovImmTo(0, 1);
  B.createJmp(BJoin);
  B.setBlock(BElse);
  B.createMovImmTo(1, 2);
  B.createJmp(BJoin);
  B.setBlock(BJoin);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 2;
  F.Blocks[BJoin].Insts.push_back(Ret);
  F.recomputeCFG();
  AdjacencyGraph G =
      AdjacencyGraph::build(F, lowEndConfig(12), WeightMode::Static);
  EXPECT_DOUBLE_EQ(G.weight(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(G.weight(1, 2), 0.5);
}

TEST(Encoder, PaperSection2Example) {
  // Figure 2: RegN = 4, DiffN = 2, DiffW = 1, access order src1 src2 dst.
  // Code: R1 = R0 + R1 would be out of range; the paper's example encodes
  // R2 = R1 + R2; R3 = R2 + R3 style sequences with codes 0/1 only.
  EncodingConfig C;
  C.RegN = 4;
  C.DiffN = 2;
  C.DiffW = 1;
  ASSERT_TRUE(C.valid());
  Function F;
  F.NumRegs = 4;
  F.MemWords = 4;
  F.makeBlock();
  auto Add = [&](RegId D, RegId S1, RegId S2) {
    Instruction I;
    I.Op = Opcode::Add;
    I.Dst = D;
    I.Src1 = S1;
    I.Src2 = S2;
    F.Blocks[0].Insts.push_back(I);
  };
  Add(2, 1, 2); // Access 1,2,2: diffs 1,1,0.
  Add(3, 2, 3); // diffs 0... from last=2: 2->2? access 2,3,3 => 0,1,0.
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 3;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodedFunction E = encodeFunction(F, C);
  // First access: from the n0 = 0 convention to R1 is diff 1.
  ASSERT_EQ(E.Codes[0][0].size(), 3u);
  EXPECT_EQ(E.Codes[0][0][0], 1u);
  EXPECT_EQ(E.Codes[0][0][1], 1u);
  EXPECT_EQ(E.Codes[0][0][2], 0u);
  EXPECT_EQ(E.Stats.setLastTotal(), 0u);
  // All codes fit DiffW bits.
  for (const auto &Block : E.Codes)
    for (const auto &Inst : Block)
      for (uint8_t Code : Inst)
        EXPECT_LT(Code, 1u << C.DiffW);
}

TEST(Encoder, OutOfRangeGetsDelayedSetLastReg) {
  EncodingConfig C;
  C.RegN = 4;
  C.DiffN = 2;
  C.DiffW = 1;
  Function F;
  F.NumRegs = 4;
  F.MemWords = 4;
  F.makeBlock();
  // R1 = R0 + R2: accesses 0, 2, 1. From n0=0: diff(0,0)=0 ok;
  // diff(0,2)=2 out of range -> set_last_reg(2, 1); diff(2,1)=3 out of
  // range -> set_last_reg(1, 2).
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 1;
  I.Src1 = 0;
  I.Src2 = 2;
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 1;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodedFunction E = encodeFunction(F, C);
  EXPECT_EQ(E.Stats.SetLastRange, 2u);
  // The add must be preceded by two slr instructions with delays 1 and 2.
  const auto &Insts = E.Annotated.Blocks[0].Insts;
  ASSERT_GE(Insts.size(), 3u);
  EXPECT_EQ(Insts[0].Op, Opcode::SetLastReg);
  EXPECT_EQ(Insts[0].Imm, 2);
  EXPECT_EQ(Insts[0].Aux, 1u);
  EXPECT_EQ(Insts[1].Op, Opcode::SetLastReg);
  EXPECT_EQ(Insts[1].Imm, 1);
  EXPECT_EQ(Insts[1].Aux, 2u);
}

TEST(Encoder, JoinInconsistencyRepaired) {
  // Figure 3 scenario: two predecessors leave different last_reg values.
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t BThen = F.makeBlock();
  uint32_t BElse = F.makeBlock();
  uint32_t BJoin = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Src1 = 0;
  Br.Target0 = BThen;
  Br.Target1 = BElse;
  F.Blocks[B0].Insts.push_back(Br);
  B.setBlock(BThen);
  B.createMovImmTo(1, 7);
  B.createJmp(BJoin);
  B.setBlock(BElse);
  B.createMovImmTo(2, 9);
  B.createJmp(BJoin);
  B.setBlock(BJoin);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 3;
  F.Blocks[BJoin].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  EXPECT_EQ(E.Stats.SetLastJoin, 1u);
  EXPECT_EQ(E.Annotated.Blocks[BJoin].Insts[0].Op, Opcode::SetLastReg);
  std::string Err;
  EXPECT_TRUE(verifyDecodable(E.Annotated, lowEndConfig(12), &Err)) << Err;
}

TEST(Encoder, AgreeingPredsNeedNoRepair) {
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t BThen = F.makeBlock();
  uint32_t BElse = F.makeBlock();
  uint32_t BJoin = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Src1 = 0;
  Br.Target0 = BThen;
  Br.Target1 = BElse;
  F.Blocks[B0].Insts.push_back(Br);
  B.setBlock(BThen);
  B.createMovImmTo(1, 7); // Last access: r1.
  B.createJmp(BJoin);
  B.setBlock(BElse);
  B.createMovImmTo(1, 9); // Last access: r1 as well.
  B.createJmp(BJoin);
  B.setBlock(BJoin);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 2;
  F.Blocks[BJoin].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  EXPECT_EQ(E.Stats.SetLastJoin, 0u);
}

TEST(Encoder, SpecialRegisterDirectCode) {
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 7;
  C.SpecialRegs = {11};
  ASSERT_TRUE(C.valid());
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 2;
  I.Src1 = 11; // Special: direct code 7, does not move last_reg.
  I.Src2 = 1;
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 11;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodedFunction E = encodeFunction(F, C);
  EXPECT_EQ(E.Codes[0][0][0], 7u); // Reserved code.
  EXPECT_EQ(E.Codes[0][0][1], 1u); // diff(0 -> 1): special didn't move it.
  Function Decoded = decodeFunction(E, C);
  EXPECT_TRUE(sameRegisterFields(Decoded, E.Annotated));
}

TEST(Encoder, StripSetLastRegInvertsAnnotation) {
  Function F = allocatedProgram(11, lowEndConfig(12));
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  Function Stripped = stripSetLastReg(E.Annotated);
  EXPECT_TRUE(sameRegisterFields(Stripped, F));
  EXPECT_EQ(Stripped.numInsts(), F.numInsts());
}

TEST(Encoder, AnnotatedFunctionExecutesIdentically) {
  Function F = allocatedProgram(13, lowEndConfig(12));
  ExecResult Before = interpret(F);
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  ExecResult After = interpret(E.Annotated);
  EXPECT_EQ(fingerprint(Before), fingerprint(After));
}

TEST(Encoder, CodeSizeModelCountsSlr) {
  Function F = allocatedProgram(17, lowEndConfig(12));
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  EXPECT_EQ(codeSizeBytes(E.Annotated),
            2 * (F.numInsts() + E.Stats.setLastTotal()));
}

/// Round-trip property over random programs and both access orders.
class EncoderRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, AccessOrder>> {};

TEST_P(EncoderRoundTrip, DecodeRecoversEveryField) {
  auto [Seed, Order] = GetParam();
  EncodingConfig C = lowEndConfig(12);
  C.Order = Order;
  Function F = allocatedProgram(static_cast<uint64_t>(Seed) * 31 + 5, C);
  EncodedFunction E = encodeFunction(F, C);
  std::string Err;
  ASSERT_TRUE(verifyDecodable(E.Annotated, C, &Err)) << Err;
  Function Decoded = decodeFunction(E, C);
  EXPECT_TRUE(sameRegisterFields(Decoded, E.Annotated));
  // Every code fits the field width.
  for (const auto &Block : E.Codes)
    for (const auto &Inst : Block)
      for (uint8_t Code : Inst)
        EXPECT_LT(Code, 1u << C.DiffW);
  // Encoder cost bookkeeping matches the function contents.
  EXPECT_EQ(E.Annotated.numSetLastRegs(), E.Stats.setLastTotal());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncoderRoundTrip,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(AccessOrder::SrcFirst,
                                         AccessOrder::DstFirst)));

/// Round-trip with special registers reserved.
class EncoderSpecialRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncoderSpecialRoundTrip, DecodeRecoversEveryField) {
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 7;
  C.SpecialRegs = {11};
  Function F =
      allocatedProgram(static_cast<uint64_t>(GetParam()) * 13 + 3, C);
  EncodedFunction E = encodeFunction(F, C);
  std::string Err;
  ASSERT_TRUE(verifyDecodable(E.Annotated, C, &Err)) << Err;
  Function Decoded = decodeFunction(E, C);
  EXPECT_TRUE(sameRegisterFields(Decoded, E.Annotated));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderSpecialRoundTrip,
                         ::testing::Range(0, 6));
