//===- tests/ilp_test.cpp - Cover-ILP solver tests ------------------------===//

#include "ilp/CoverSolver.h"

#include "adt/Rng.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// Checks feasibility of a solution.
bool feasible(const CoverProblem &P, const std::vector<uint8_t> &Sel) {
  for (const CoverConstraint &C : P.Constraints) {
    int Got = 0;
    for (uint32_t V : C.Vars)
      Got += Sel[V];
    if (Got < C.Need)
      return false;
  }
  return true;
}

double costOf(const CoverProblem &P, const std::vector<uint8_t> &Sel) {
  double Total = 0;
  for (size_t V = 0; V != Sel.size(); ++V)
    if (Sel[V])
      Total += P.Cost[V];
  return Total;
}

/// Brute force over all 2^n assignments (n <= 20).
double bruteForceOptimum(const CoverProblem &P) {
  size_t N = P.Cost.size();
  double Best = 1e300;
  for (uint32_t Mask = 0; Mask != (1u << N); ++Mask) {
    std::vector<uint8_t> Sel(N);
    for (size_t V = 0; V != N; ++V)
      Sel[V] = (Mask >> V) & 1;
    if (feasible(P, Sel))
      Best = std::min(Best, costOf(P, Sel));
  }
  return Best;
}

} // namespace

TEST(CoverSolver, EmptyProblemTriviallyOptimal) {
  CoverProblem P;
  CoverSolution S = solveCover(P);
  EXPECT_TRUE(S.Optimal);
  EXPECT_DOUBLE_EQ(S.TotalCost, 0.0);
}

TEST(CoverSolver, SingleConstraintPicksCheapest) {
  CoverProblem P;
  P.Cost = {5.0, 1.0, 3.0};
  P.Constraints.push_back({{0, 1, 2}, 1});
  CoverSolution S = solveCover(P);
  EXPECT_TRUE(S.Optimal);
  EXPECT_DOUBLE_EQ(S.TotalCost, 1.0);
  EXPECT_TRUE(S.Selected[1]);
}

TEST(CoverSolver, NeedTwoPicksTwoCheapest) {
  CoverProblem P;
  P.Cost = {5.0, 1.0, 3.0, 10.0};
  P.Constraints.push_back({{0, 1, 2, 3}, 2});
  CoverSolution S = solveCover(P);
  EXPECT_TRUE(S.Optimal);
  EXPECT_DOUBLE_EQ(S.TotalCost, 4.0);
}

TEST(CoverSolver, SharedVariableIsReused) {
  // Var 2 covers both constraints; picking it alone (cost 3) beats picking
  // the per-constraint cheapest (3.2 + 2.5).
  CoverProblem P;
  P.Cost = {3.2, 2.5, 3.0};
  P.Constraints.push_back({{0, 2}, 1});
  P.Constraints.push_back({{1, 2}, 1});
  CoverSolution S = solveCover(P);
  EXPECT_TRUE(S.Optimal);
  EXPECT_DOUBLE_EQ(S.TotalCost, 3.0);
  EXPECT_TRUE(S.Selected[2]);
}

TEST(CoverSolver, ForcedSelection) {
  CoverProblem P;
  P.Cost = {1.0, 1.0};
  P.Constraints.push_back({{0, 1}, 2});
  CoverSolution S = solveCover(P);
  EXPECT_TRUE(S.Optimal);
  EXPECT_TRUE(S.Selected[0]);
  EXPECT_TRUE(S.Selected[1]);
}

TEST(CoverSolver, SatisfiedConstraintIgnored) {
  CoverProblem P;
  P.Cost = {1.0};
  P.Constraints.push_back({{0}, 0});
  CoverSolution S = solveCover(P);
  EXPECT_TRUE(S.Optimal);
  EXPECT_DOUBLE_EQ(S.TotalCost, 0.0);
}

TEST(CoverSolver, BudgetExhaustionStillFeasible) {
  // A big random instance with a tiny budget: the greedy incumbent must
  // still be feasible.
  Rng R(99);
  CoverProblem P;
  for (int V = 0; V != 60; ++V)
    P.Cost.push_back(1.0 + static_cast<double>(R.nextBelow(100)));
  for (int C = 0; C != 40; ++C) {
    CoverConstraint Con;
    std::vector<uint32_t> Pool;
    for (uint32_t V = 0; V != 60; ++V)
      if (R.withChance(1, 3))
        Pool.push_back(V);
    if (Pool.size() < 4)
      Pool = {0, 1, 2, 3};
    Con.Vars = Pool;
    Con.Need = 1 + static_cast<int>(R.nextBelow(3));
    P.Constraints.push_back(Con);
  }
  CoverSolution S = solveCover(P, /*NodeBudget=*/10);
  EXPECT_TRUE(feasible(P, S.Selected));
}

/// Randomized optimality check against brute force on small instances.
class CoverSolverRandom : public ::testing::TestWithParam<int> {};

TEST_P(CoverSolverRandom, MatchesBruteForce) {
  Rng R(1000 + GetParam());
  CoverProblem P;
  size_t NumVars = 6 + R.nextBelow(7); // 6..12.
  for (size_t V = 0; V != NumVars; ++V)
    P.Cost.push_back(1.0 + static_cast<double>(R.nextBelow(20)));
  size_t NumCons = 2 + R.nextBelow(5);
  for (size_t C = 0; C != NumCons; ++C) {
    CoverConstraint Con;
    for (uint32_t V = 0; V != NumVars; ++V)
      if (R.withChance(1, 2))
        Con.Vars.push_back(V);
    if (Con.Vars.empty())
      Con.Vars.push_back(0);
    Con.Need = 1 + static_cast<int>(
                       R.nextBelow(std::min<uint64_t>(Con.Vars.size(), 3)));
    P.Constraints.push_back(Con);
  }
  CoverSolution S = solveCover(P);
  ASSERT_TRUE(S.Optimal);
  ASSERT_TRUE(feasible(P, S.Selected));
  EXPECT_NEAR(S.TotalCost, bruteForceOptimum(P), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverSolverRandom, ::testing::Range(0, 25));
