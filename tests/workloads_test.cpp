//===- tests/workloads_test.cpp - Workload generator tests ----------------===//

#include "analysis/Liveness.h"
#include "interp/Interpreter.h"
#include "workloads/LoopCorpus.h"
#include "workloads/MiBench.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(ProgramGen, Deterministic) {
  ProgramProfile P;
  P.Seed = 7;
  Function A = generateProgram("same", P);
  Function B = generateProgram("same", P);
  EXPECT_EQ(printFunction(A), printFunction(B));
}

TEST(ProgramGen, DifferentSeedsDiffer) {
  ProgramProfile P;
  P.Seed = 7;
  Function A = generateProgram("a", P);
  P.Seed = 8;
  Function B = generateProgram("a", P);
  EXPECT_NE(printFunction(A), printFunction(B));
}

TEST(ProgramGen, VerifiesAndTerminates) {
  ProgramProfile P;
  P.Seed = 123;
  Function F = generateProgram("t", P);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  ExecResult R = interpret(F);
  EXPECT_FALSE(R.HitStepLimit);
  EXPECT_GT(R.DynInsts, 100u);
}

TEST(ProgramGen, PressureScalesWithPool) {
  ProgramProfile Small, Large;
  Small.Seed = Large.Seed = 5;
  Small.PressureVars = 4;
  Small.HotPct = 0;
  Large.PressureVars = 12;
  Large.HotPct = 0;
  Function A = generateProgram("s", Small);
  Function B = generateProgram("l", Large);
  A.recomputeCFG();
  B.recomputeCFG();
  unsigned PA = Liveness::compute(A).maxPressure(A);
  unsigned PB = Liveness::compute(B).maxPressure(B);
  EXPECT_LT(PA, PB);
}

TEST(ProgramGen, HotRegionsRaisePeakPressure) {
  ProgramProfile Cold, Hot;
  Cold.Seed = Hot.Seed = 9;
  Cold.HotPct = 0;
  Hot.HotPct = 30;
  Hot.HotWidth = 12;
  Function A = generateProgram("c", Cold);
  Function B = generateProgram("h", Hot);
  A.recomputeCFG();
  B.recomputeCFG();
  EXPECT_LT(Liveness::compute(A).maxPressure(A),
            Liveness::compute(B).maxPressure(B));
}

TEST(MiBench, TenNames) {
  EXPECT_EQ(miBenchNames().size(), 10u);
}

class MiBenchPrograms : public ::testing::TestWithParam<std::string> {};

TEST_P(MiBenchPrograms, GeneratesVerifiedTerminatingProgram) {
  Function F = miBenchProgram(GetParam());
  EXPECT_EQ(F.Name, GetParam());
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  ExecResult R = interpret(F);
  EXPECT_FALSE(R.HitStepLimit);
}

INSTANTIATE_TEST_SUITE_P(All, MiBenchPrograms,
                         ::testing::ValuesIn(miBenchNames()));

TEST(LoopCorpus, DeterministicPerIndex) {
  LoopDdg A = generateLoop(1, 17);
  LoopDdg B = generateLoop(1, 17);
  EXPECT_EQ(A.Ops.size(), B.Ops.size());
  EXPECT_EQ(A.Edges.size(), B.Edges.size());
  EXPECT_EQ(A.TripCount, B.TripCount);
}

TEST(LoopCorpus, CorpusHasRequestedCount) {
  LoopCorpusOptions O;
  O.Count = 50;
  EXPECT_EQ(generateLoopCorpus(O).size(), 50u);
}

TEST(LoopCorpus, EdgesWellFormed) {
  for (unsigned I = 0; I != 40; ++I) {
    LoopDdg L = generateLoop(3, I);
    EXPECT_FALSE(L.Ops.empty());
    for (const DdgEdge &E : L.Edges) {
      EXPECT_LT(E.Src, L.Ops.size());
      EXPECT_LT(E.Dst, L.Ops.size());
      // Intra-iteration edges must be acyclic (forward by construction).
      if (E.Distance == 0) {
        EXPECT_LT(E.Src, E.Dst);
      }
    }
  }
}

TEST(LoopCorpus, HasStore) {
  LoopDdg L = generateLoop(3, 5);
  bool HasStore = false;
  for (const DdgOp &Op : L.Ops)
    HasStore |= Op.Kind == FuKind::Mem && !Op.Defines;
  EXPECT_TRUE(HasStore);
}

TEST(LoopCorpus, SizeClassesProduceSpread) {
  LoopCorpusOptions O;
  O.Count = 200;
  std::vector<LoopDdg> Corpus = generateLoopCorpus(O);
  size_t MinOps = ~size_t(0), MaxOps = 0;
  for (const LoopDdg &L : Corpus) {
    MinOps = std::min(MinOps, L.Ops.size());
    MaxOps = std::max(MaxOps, L.Ops.size());
  }
  EXPECT_LT(MinOps, 12u);
  EXPECT_GT(MaxOps, 50u);
}
