//===- tests/remap_test.cpp - Differential remapping tests ----------------===//

#include "core/Encoder.h"
#include "core/Recolor.h"
#include "core/Remap.h"
#include "interp/Interpreter.h"
#include "regalloc/GraphColoring.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dra;

namespace {

bool isPermutation(const std::vector<RegId> &Perm, unsigned N) {
  if (Perm.size() != N)
    return false;
  std::vector<RegId> Sorted = Perm;
  std::sort(Sorted.begin(), Sorted.end());
  for (RegId R = 0; R != N; ++R)
    if (Sorted[R] != R)
      return false;
  return true;
}

Function allocated(uint64_t Seed, unsigned RegN) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = 5;
  P.TopStatements = 6;
  P.OuterTrip = 3;
  Function F = generateProgram("r", P);
  allocateGraphColoring(F, RegN);
  return F;
}

} // namespace

TEST(Remap, FigureSixStyleZeroCostExists) {
  // Three registers, DiffN = 2: the adjacency cycle 0->1->2->0 has diffs
  // 1,1,1 which are all encodable, so some permutation reaches cost 0.
  EncodingConfig C;
  C.RegN = 3;
  C.DiffN = 2;
  C.DiffW = 1;
  AdjacencyGraph G(3);
  G.addWeight(0, 2, 1); // diff 2: violated under identity.
  G.addWeight(2, 1, 1); // diff 2 under identity.
  G.addWeight(1, 0, 1); // diff 2 under identity.
  RemapResult R = findRemap(G, C);
  EXPECT_TRUE(R.Exhaustive);
  EXPECT_DOUBLE_EQ(R.CostBefore, 3.0);
  EXPECT_DOUBLE_EQ(R.CostAfter, 0.0);
  EXPECT_TRUE(isPermutation(R.Perm, 3));
}

TEST(Remap, NeverWorseThanIdentity) {
  EncodingConfig C = lowEndConfig(12);
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    Function F = allocated(Seed, C.RegN);
    Function Widened = F;
    Widened.recomputeCFG();
    AdjacencyGraph G = AdjacencyGraph::build(Widened, C);
    RemapOptions O;
    O.NumStarts = 20;
    RemapResult R = findRemap(G, C, O);
    EXPECT_LE(R.CostAfter, R.CostBefore);
    EXPECT_TRUE(isPermutation(R.Perm, C.RegN));
  }
}

TEST(Remap, GreedyMatchesExhaustiveOnSmallGraphs) {
  EncodingConfig C;
  C.RegN = 6;
  C.DiffN = 4;
  C.DiffW = 2;
  for (uint64_t Seed = 0; Seed != 5; ++Seed) {
    // Random small adjacency graph.
    AdjacencyGraph G(6);
    uint64_t X = Seed * 99 + 7;
    for (int E = 0; E != 10; ++E) {
      X = X * 6364136223846793005ull + 1442695040888963407ull;
      RegId A = (X >> 20) % 6;
      RegId B = (X >> 40) % 6;
      if (A != B)
        G.addWeight(A, B, 1 + ((X >> 50) % 3));
    }
    RemapOptions Exh;
    Exh.ExhaustiveLimit = 6;
    RemapResult Opt = findRemap(G, C, Exh);
    ASSERT_TRUE(Opt.Exhaustive);
    RemapOptions Greedy;
    Greedy.ExhaustiveLimit = 0;
    Greedy.NumStarts = 300;
    RemapResult H = findRemap(G, C, Greedy);
    EXPECT_FALSE(H.Exhaustive);
    // The multi-start greedy should reach the optimum on graphs this
    // small (this is a property of the search, checked empirically with
    // fixed seeds).
    EXPECT_DOUBLE_EQ(H.CostAfter, Opt.CostAfter);
  }
}

TEST(Remap, SpecialRegistersPinned) {
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 7;
  C.SpecialRegs = {11};
  AdjacencyGraph G(12);
  G.addWeight(0, 8, 3);
  G.addWeight(11, 0, 2);
  RemapOptions O;
  O.NumStarts = 50;
  RemapResult R = findRemap(G, C, O);
  EXPECT_TRUE(isPermutation(R.Perm, 12));
  EXPECT_EQ(R.Perm[11], 11u);
}

TEST(Remap, ApplyPermutationRewritesAllFields) {
  Function F = allocated(9, 8);
  std::vector<RegId> Perm = {7, 6, 5, 4, 3, 2, 1, 0};
  Function G = F;
  applyPermutation(G, Perm);
  for (size_t B = 0; B != F.Blocks.size(); ++B)
    for (size_t I = 0; I != F.Blocks[B].Insts.size(); ++I) {
      const Instruction &Old = F.Blocks[B].Insts[I];
      const Instruction &New = G.Blocks[B].Insts[I];
      for (unsigned Fld = 0; Fld != Old.numRegFields(); ++Fld)
        EXPECT_EQ(New.regField(Fld), Perm[Old.regField(Fld)]);
    }
}

TEST(Remap, RemapFunctionPreservesSemantics) {
  EncodingConfig C = lowEndConfig(12);
  for (uint64_t Seed = 20; Seed != 25; ++Seed) {
    Function F = allocated(Seed, C.RegN);
    ExecResult Before = interpret(F);
    RemapOptions O;
    O.NumStarts = 30;
    RemapResult R = remapFunction(F, C, O);
    EXPECT_LE(R.CostAfter, R.CostBefore);
    EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
    // The reported post-remap cost must equal the adjacency cost measured
    // on the rewritten function (remapFunction optimizes the
    // frequency-weighted graph).
    Function Widened = F;
    Widened.recomputeCFG();
    AdjacencyGraph G =
        AdjacencyGraph::build(Widened, C, WeightMode::Frequency);
    EXPECT_NEAR(G.identityCost(C), R.CostAfter, 1e-9);
  }
}

TEST(Remap, CostMatchesEncoderRangeRepairsOnStraightLine) {
  // On a single-block function with no joins, the adjacency cost equals
  // the number of range set_last_regs the encoder emits (entry edge from
  // the n0 = 0 convention excluded by construction: first access is r0).
  EncodingConfig C = lowEndConfig(12);
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  auto Add = [&](RegId D, RegId S1, RegId S2) {
    Instruction I;
    I.Op = Opcode::Add;
    I.Dst = D;
    I.Src1 = S1;
    I.Src2 = S2;
    F.Blocks[0].Insts.push_back(I);
  };
  Add(5, 0, 9);  // 0->9 violated (9 >= 8): one repair... diff(0,9)=9>=8.
  Add(2, 5, 11); // 5->11 diff 6 ok; 11->2 diff 3 ok.
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 2;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  AdjacencyGraph G = AdjacencyGraph::build(F, C);
  EncodedFunction E = encodeFunction(F, C);
  EXPECT_DOUBLE_EQ(G.identityCost(C),
                   static_cast<double>(E.Stats.SetLastRange));
}

TEST(Recolor, ReducesOrKeepsCost) {
  EncodingConfig C = lowEndConfig(12);
  for (uint64_t Seed = 40; Seed != 44; ++Seed) {
    ProgramProfile P;
    P.Seed = Seed;
    P.PressureVars = 5;
    P.TopStatements = 6;
    P.OuterTrip = 3;
    Function F = generateProgram("rc", P);
    ExecResult Before = interpret(F);
    std::vector<RegId> ColorOf;
    allocateGraphColoring(F, C.RegN, nullptr, 60, &ColorOf);
    RecolorStats S = recolorColoring(F, C, ColorOf);
    EXPECT_LE(S.CostAfter, S.CostBefore);
    rewriteToPhysical(F, ColorOf, C.RegN);
    EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
  }
}

TEST(Recolor, KeepsCoalescedMovesCoalesced) {
  EncodingConfig C = lowEndConfig(12);
  ProgramProfile P;
  P.Seed = 77;
  P.PressureVars = 5;
  P.TopStatements = 8;
  P.OuterTrip = 3;
  P.MovePct = 25;
  Function F = generateProgram("rc2", P);
  std::vector<RegId> ColorOf;
  allocateGraphColoring(F, C.RegN, nullptr, 60, &ColorOf);
  // Count moves that would be deleted (same color) before and after.
  auto CountDead = [&]() {
    size_t Dead = 0;
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::Mov && ColorOf[I.Dst] == ColorOf[I.Src1])
          ++Dead;
    return Dead;
  };
  size_t DeadBefore = CountDead();
  recolorColoring(F, C, ColorOf);
  EXPECT_EQ(CountDead(), DeadBefore);
}

TEST(Remap, PinnedRegistersStayPut) {
  // Section 9.3: pinning calling-convention registers (here r4, r5, r6)
  // keeps the convention intact while the rest still permutes.
  EncodingConfig C = lowEndConfig(12);
  AdjacencyGraph G(12);
  G.addWeight(0, 8, 5); // Violated under identity (diff 8).
  G.addWeight(4, 5, 1);
  RemapOptions O;
  O.NumStarts = 60;
  O.PinnedRegs = {4, 5, 6};
  RemapResult R = findRemap(G, C, O);
  EXPECT_TRUE(isPermutation(R.Perm, 12));
  EXPECT_EQ(R.Perm[4], 4u);
  EXPECT_EQ(R.Perm[5], 5u);
  EXPECT_EQ(R.Perm[6], 6u);
  EXPECT_LE(R.CostAfter, R.CostBefore);
}
