//===- tests/encoding_edge_test.cpp - Encoder edge cases ------------------===//

#include "core/Encoder.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "regalloc/GraphColoring.h"
#include "sim/LowEndSim.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// Diamond whose arms leave different last_reg values.
Function divergingDiamond() {
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t BThen = F.makeBlock();
  uint32_t BElse = F.makeBlock();
  uint32_t BJoin = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Src1 = 0;
  Br.Target0 = BThen;
  Br.Target1 = BElse;
  F.Blocks[B0].Insts.push_back(Br);
  B.setBlock(BThen);
  B.createMovImmTo(3, 1);
  B.createJmp(BJoin);
  B.setBlock(BElse);
  B.createMovImmTo(5, 2);
  B.createJmp(BJoin);
  B.setBlock(BJoin);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 4;
  F.Blocks[BJoin].Insts.push_back(Ret);
  F.recomputeCFG();
  return F;
}

} // namespace

TEST(EncoderEdge, JoinRepairNeededEvenWhenEveryDiffFits) {
  // With DiffN == RegN every difference is representable, yet a join whose
  // predecessors disagree still needs a set_last_reg: the *encoded code*
  // fixes one difference value, and decoding from the other predecessor
  // would produce a different register.
  EncodingConfig C;
  C.RegN = 8;
  C.DiffN = 8;
  C.DiffW = 3;
  ASSERT_TRUE(C.valid());
  Function F = divergingDiamond();
  F.NumRegs = 8;
  for (BasicBlock &BB : F.Blocks)
    for (Instruction &I : BB.Insts)
      for (unsigned Fld = 0; Fld != I.numRegFields(); ++Fld)
        I.setRegField(Fld, I.regField(Fld) % 8);
  EncodedFunction E = encodeFunction(F, C);
  EXPECT_EQ(E.Stats.SetLastRange, 0u);
  EXPECT_EQ(E.Stats.SetLastJoin, 1u);
  std::string Err;
  EXPECT_TRUE(verifyDecodable(E.Annotated, C, &Err)) << Err;
}

TEST(EncoderEdge, UnreachableBlockStillDecodable) {
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t Dead = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  RegId V = B.createMovImm(7);
  B.createRet(V);
  B.setBlock(Dead);
  B.createMovImmTo(9, 1); // Never executed; still must encode sanely.
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 9;
  F.Blocks[Dead].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodingConfig C = lowEndConfig(12);
  EncodedFunction E = encodeFunction(F, C);
  std::string Err;
  EXPECT_TRUE(verifyDecodable(E.Annotated, C, &Err)) << Err;
  // Unreachable blocks get a defensive head repair.
  EXPECT_GE(E.Stats.SetLastJoin, 1u);
}

TEST(EncoderEdge, EmptyAccessBlockForwardsState) {
  // bb1 contains only a jmp (no register accesses): bb2's entry state must
  // flow through it from bb0's exit.
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t Mid = F.makeBlock();
  uint32_t End = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  B.createMovImmTo(4, 1); // Exit state: r4.
  B.createJmp(Mid);
  B.setBlock(Mid);
  B.createJmp(End);
  B.setBlock(End);
  B.createMovImmTo(5, 2); // diff(4, 5) = 1: encodable without repair.
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 5;
  F.Blocks[End].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  EXPECT_EQ(E.Stats.setLastTotal(), 0u);
}

TEST(EncoderEdge, SelfLoopEntryConsistent) {
  // Block 0 loops on itself: its entry state is the meet of the n0 = 0
  // convention and its own exit. The encoder must repair if they differ.
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  B.createMovImmTo(6, 1); // Exit state r6 != convention 0 -> conflict.
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Src1 = 6;
  Br.Target0 = B0;
  Br.Target1 = Exit;
  F.Blocks[B0].Insts.push_back(Br);
  B.setBlock(Exit);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 6;
  F.Blocks[Exit].Insts.push_back(Ret);
  F.recomputeCFG();
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  EXPECT_GE(E.Stats.SetLastJoin, 1u);
  std::string Err;
  EXPECT_TRUE(verifyDecodable(E.Annotated, lowEndConfig(12), &Err)) << Err;
  // And running it must be unaffected.
  EXPECT_EQ(interpret(E.Annotated).ReturnValue, interpret(F).ReturnValue);
}

TEST(EncoderEdge, VerifyRejectsHandBrokenAnnotation) {
  Function F = divergingDiamond();
  EncodedFunction E = encodeFunction(F, lowEndConfig(12));
  // Strip the join repair the encoder inserted: verification must fail.
  Function Broken = E.Annotated;
  auto &JoinInsts = Broken.Blocks[3].Insts;
  ASSERT_EQ(JoinInsts.front().Op, Opcode::SetLastReg);
  JoinInsts.erase(JoinInsts.begin());
  Broken.recomputeCFG();
  std::string Err;
  EXPECT_FALSE(verifyDecodable(Broken, lowEndConfig(12), &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(EncoderEdge, SlrCostPoliciesOrdered) {
  // Full is an upper bound for both relaxed front-end models. (HalfAligned
  // and Absorbed are not mutually ordered: parity hides every other slr of
  // a run, while Absorbed hides only the first.)
  Function F;
  F.NumRegs = 12;
  F.MemWords = 16;
  uint32_t Entry = F.makeBlock();
  uint32_t Body = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId I = B.createMovImm(200);
  B.createJmp(Body);
  B.setBlock(Body);
  for (int SlrIdx = 0; SlrIdx != 3; ++SlrIdx) {
    Instruction Slr;
    Slr.Op = Opcode::SetLastReg;
    Slr.Imm = SlrIdx;
    F.Blocks[Body].Insts.push_back(Slr);
  }
  B.createBinImmTo(Opcode::AddI, I, I, -1);
  B.createBr(I, Body, Exit);
  B.setBlock(Exit);
  B.createRet(I);
  F.recomputeCFG();

  LowEndMachine M;
  M.SlrCostPolicy = LowEndMachine::SlrCost::Full;
  uint64_t Full = simulate(F, M).Cycles;
  M.SlrCostPolicy = LowEndMachine::SlrCost::HalfAligned;
  uint64_t Half = simulate(F, M).Cycles;
  M.SlrCostPolicy = LowEndMachine::SlrCost::Absorbed;
  uint64_t Absorbed = simulate(F, M).Cycles;
  EXPECT_GE(Full, Half);
  EXPECT_GE(Full, Absorbed);
  EXPECT_GT(Full, std::min(Half, Absorbed));
}

TEST(EncoderEdge, SpecialRegisterPipelineRecipe) {
  // Section 9.2 end to end: reserve r11 (a "stack pointer"), allocate the
  // program onto the remaining 11 registers, renumber colors around the
  // reserved register, then encode with a reserved direct code for it.
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 7;
  C.SpecialRegs = {11};
  ASSERT_TRUE(C.valid());

  Function F;
  F.MemWords = 16;
  F.makeBlock();
  {
    IRBuilder B(F);
    B.setBlock(0);
    RegId A = B.createMovImm(3);
    RegId D = B.createBinImm(Opcode::MulI, A, 5);
    RegId E2 = B.createBin(Opcode::Add, A, D);
    B.createStore(A, 0, E2);
    B.createRet(E2);
    F.recomputeCFG();
  }
  ExecResult Before = interpret(F);

  // Allocate with 11 colors; colors 0..10 map to machine regs 0..10 (r11
  // stays free for the special register). With a special register in the
  // middle of the range the map would skip it; identity suffices here.
  allocateGraphColoring(F, 11);
  F.NumRegs = 12;
  F.recomputeCFG();

  // Simulate a stack-pointer-relative store by rewriting one operand to
  // the special register (semantically a different address; re-baseline).
  F.Blocks[0].Insts[3].Src1 = 11;
  ExecResult Reference = interpret(F);
  (void)Before;

  EncodedFunction E = encodeFunction(F, C);
  std::string Err;
  ASSERT_TRUE(verifyDecodable(E.Annotated, C, &Err)) << Err;
  Function Decoded = decodeFunction(E, C);
  // The special register decodes through its reserved code.
  EXPECT_EQ(Decoded.Blocks[0].Insts.back().Op, Opcode::Ret);
  bool SawSpecial = false;
  for (uint32_t B = 0; B != E.Annotated.Blocks.size(); ++B)
    for (uint32_t I = 0; I != E.Annotated.Blocks[B].Insts.size(); ++I)
      for (uint8_t Code : E.Codes[B][I])
        SawSpecial |= Code == C.specialCode(11);
  EXPECT_TRUE(SawSpecial);
  EXPECT_EQ(fingerprint(interpret(E.Annotated)), fingerprint(Reference));
}

TEST(EncoderEdge, ZeroBlockFunctionIsVacuouslyDecodable) {
  // Regression: verifyDecodable seeded its reachability worklist with
  // block 0 unconditionally, indexing out of bounds for a function with
  // no blocks at all. Such a function has no register fields, so it is
  // vacuously decodable; the whole encode path must tolerate it.
  Function F;
  F.NumRegs = 12;
  EncodingConfig C = lowEndConfig(12);
  std::string Err;
  EXPECT_TRUE(verifyDecodable(F, C, &Err)) << Err;
  EncodedFunction E = encodeFunction(F, C);
  EXPECT_TRUE(E.Annotated.Blocks.empty());
  EXPECT_TRUE(E.Codes.empty());
  EXPECT_EQ(E.Stats.setLastTotal(), 0u);
}

TEST(EncoderEdge, VerifyRejectsOverDelayedSlr) {
  // Regression: the decoder clears pending delayed assignments after
  // every real instruction, so a set_last_reg whose delay is >= the next
  // instruction's register-field count silently never applies.
  // verifyDecodable must reject the annotation instead of letting decode
  // diverge from the stated last_reg.
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  Instruction Slr;
  Slr.Op = Opcode::SetLastReg;
  Slr.Imm = 5;
  Slr.Aux = 2; // Would apply before field 2 — but ret has only one field.
  F.Blocks[B0].Insts.push_back(Slr);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 0;
  F.Blocks[B0].Insts.push_back(Ret);
  F.recomputeCFG();
  std::string Err;
  EXPECT_FALSE(verifyDecodable(F, lowEndConfig(12), &Err));
  EXPECT_NE(Err.find("never applies"), std::string::npos) << Err;
}

TEST(EncoderEdge, VerifyRejectsDanglingDelayedSlr) {
  // A delayed set_last_reg as the final instruction of a block has no
  // following instruction to apply at.
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  B.createMovImmTo(0, 7);
  Instruction Slr;
  Slr.Op = Opcode::SetLastReg;
  Slr.Imm = 5;
  Slr.Aux = 1;
  F.Blocks[B0].Insts.push_back(Slr);
  F.recomputeCFG();
  std::string Err;
  EXPECT_FALSE(verifyDecodable(F, lowEndConfig(12), &Err));
  EXPECT_NE(Err.find("dangles"), std::string::npos) << Err;
}

TEST(EncoderEdge, RoundTripPropertyAcrossOrdersAndSpecials) {
  // Seeded property check: for random allocated programs and every
  // encoding variant, stripSetLastReg(decode(encode(F))) must equal F
  // textually and semantically. This is the same identity dra-fuzz
  // sweeps at scale; a handful of seeds keeps it in the unit suite.
  EncodingConfig Src = lowEndConfig(12);
  EncodingConfig Dst = lowEndConfig(12);
  Dst.Order = AccessOrder::DstFirst;
  EncodingConfig Sp = lowEndConfig(12);
  Sp.DiffN = 7;
  Sp.SpecialRegs = {11};
  ASSERT_TRUE(Sp.valid());

  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    ProgramProfile P;
    P.Seed = Seed;
    P.TopStatements = 6;
    P.OuterTrip = 2;
    P.MemWords = 32;
    Function F = generateProgram("prop" + std::to_string(Seed), P);
    // Allocate onto 11 colors so r11 stays free to act as the special
    // register in the Sp config (it simply never occurs).
    allocateGraphColoring(F, 11);
    F.NumRegs = 12;
    F.recomputeCFG();
    uint64_t RefFp = fingerprint(interpret(F));

    for (const EncodingConfig &C : {Src, Dst, Sp}) {
      EncodedFunction E = encodeFunction(F, C);
      std::string Err;
      ASSERT_TRUE(verifyDecodable(E.Annotated, C, &Err))
          << "seed " << Seed << ": " << Err;
      Function Decoded = decodeFunction(E, C);
      Function Stripped = stripSetLastReg(Decoded);
      EXPECT_EQ(printFunction(Stripped), printFunction(F))
          << "seed " << Seed;
      EXPECT_EQ(fingerprint(interpret(Decoded)), RefFp) << "seed " << Seed;
    }
  }
}
