//===- tests/remap_search_test.cpp - Incremental/parallel remap search ----===//
//
// Property and determinism coverage for the incremental delta-cost remap
// search (core/Remap.cpp):
//
//  * RemapCostModel::swapDelta must equal a full recost difference for
//    every candidate — including after every applied swap of a random
//    walk — across the RegN matrix {8, 12, 32, 40, 64};
//  * the incremental arm must be bit-identical to the pre-incremental
//    (incident-walk) reference arm;
//  * the parallel multi-start search must return an identical RemapResult
//    for Jobs in {1, 2, 8} — the TSan CI job runs this binary so the
//    shared best-bound and zero-cost cutoff are race-checked;
//  * the exhaustive arm must report real search stats (regression test:
//    it used to report all zeros).
//
// Graph weights are small integers, so every cost and delta is an exactly
// representable double and the comparisons below are exact, not
// tolerance-based.
//
//===----------------------------------------------------------------------===//

#include "adt/Rng.h"
#include "core/Remap.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dra;

namespace {

const unsigned RegNMatrix[] = {8, 12, 32, 40, 64};

/// An encoding config with a non-trivial violated-difference range for
/// each matrix RegN (DiffN == RegN would make every assignment free).
EncodingConfig cfgFor(unsigned RegN) {
  switch (RegN) {
  case 8: {
    EncodingConfig C;
    C.RegN = 8;
    C.DiffN = 4;
    C.DiffW = 2;
    return C;
  }
  case 12:
    return lowEndConfig(12);
  case 32: {
    EncodingConfig C = vliwConfig(32);
    C.DiffN = 16; // Half the differences violate, as in the 64-reg case.
    C.DiffW = 4;
    return C;
  }
  default:
    return vliwConfig(RegN);
  }
}

/// Seeded random adjacency graph with integer weights in [1, 9].
AdjacencyGraph randomGraph(uint64_t Seed, unsigned RegN, unsigned Edges) {
  Rng R(Seed);
  AdjacencyGraph G(RegN);
  for (unsigned E = 0; E != Edges; ++E) {
    RegId A = static_cast<RegId>(R.nextBelow(RegN));
    RegId B = static_cast<RegId>(R.nextBelow(RegN));
    if (A != B)
      G.addWeight(A, B, static_cast<double>(1 + R.nextBelow(9)));
  }
  return G;
}

bool isPermutation(const std::vector<RegId> &Perm, unsigned N) {
  if (Perm.size() != N)
    return false;
  std::vector<RegId> Sorted = Perm;
  std::sort(Sorted.begin(), Sorted.end());
  for (RegId R = 0; R != N; ++R)
    if (Sorted[R] != R)
      return false;
  return true;
}

/// Field-by-field equality of two results, exact on the doubles. The
/// incremental-only counters are compared when \p WithDeltaStats (legacy
/// arms leave them zero by design).
void expectSameResult(const RemapResult &A, const RemapResult &B,
                      bool WithDeltaStats) {
  EXPECT_EQ(A.Perm, B.Perm);
  EXPECT_EQ(A.CostBefore, B.CostBefore);
  EXPECT_EQ(A.CostAfter, B.CostAfter);
  EXPECT_EQ(A.Exhaustive, B.Exhaustive);
  EXPECT_EQ(A.StartsRun, B.StartsRun);
  EXPECT_EQ(A.StartsCutOff, B.StartsCutOff);
  EXPECT_EQ(A.SwapsEvaluated, B.SwapsEvaluated);
  EXPECT_EQ(A.SwapsApplied, B.SwapsApplied);
  if (WithDeltaStats) {
    EXPECT_EQ(A.DeltaArcsVisited, B.DeltaArcsVisited);
    EXPECT_EQ(A.DeltaRecostSavings, B.DeltaRecostSavings);
  }
}

} // namespace

TEST(RemapCostModel, DeltaEqualsFullRecostAfterEveryAppliedSwap) {
  for (unsigned RegN : RegNMatrix) {
    EncodingConfig C = cfgFor(RegN);
    for (uint64_t Seed = 1; Seed != 4; ++Seed) {
      AdjacencyGraph G = randomGraph(Seed * 71 + RegN, RegN, RegN * 6);
      RemapCostModel Model(G, C);

      // Random walk of applied swaps: at every step the incremental
      // delta must equal the difference of two full recosts, exactly.
      std::vector<RegId> Perm(RegN);
      for (RegId R = 0; R != RegN; ++R)
        Perm[R] = R;
      Rng Walk(Seed ^ 0xabcdef);
      Walk.shuffle(Perm);
      double Cost = G.cost(Perm, C);
      for (int Step = 0; Step != 200; ++Step) {
        RegId U = static_cast<RegId>(Walk.nextBelow(RegN));
        RegId V = static_cast<RegId>(Walk.nextBelow(RegN));
        if (U == V)
          continue;
        double Delta = Model.swapDelta(Perm, U, V);
        std::swap(Perm[U], Perm[V]);
        double Recost = G.cost(Perm, C);
        ASSERT_EQ(Delta, Recost - Cost)
            << "RegN=" << RegN << " seed=" << Seed << " step=" << Step;
        Cost = Recost; // Keep the swap applied; the model must stay exact.
      }
    }
  }
}

TEST(RemapSearch, IncrementalIsBitIdenticalToLegacyArm) {
  for (unsigned RegN : RegNMatrix) {
    EncodingConfig C = cfgFor(RegN);
    AdjacencyGraph G = randomGraph(900 + RegN, RegN, RegN * 5);

    RemapOptions Legacy;
    Legacy.ExhaustiveLimit = 0;
    Legacy.NumStarts = RegN >= 40 ? 6 : 16;
    Legacy.UseIncremental = false;

    RemapOptions Inc = Legacy;
    Inc.UseIncremental = true;

    RemapResult A = findRemap(G, C, Legacy);
    RemapResult B = findRemap(G, C, Inc);
    expectSameResult(A, B, /*WithDeltaStats=*/false);
    EXPECT_TRUE(isPermutation(B.Perm, RegN));
    EXPECT_LE(B.CostAfter, B.CostBefore);
    EXPECT_GT(B.SwapsEvaluated, 0u);
    EXPECT_GT(B.DeltaArcsVisited, 0u);
  }
}

TEST(RemapSearch, ResultIdenticalForJobs1_2_8) {
  for (unsigned RegN : {12u, 64u}) {
    EncodingConfig C = cfgFor(RegN);
    AdjacencyGraph G = randomGraph(77 + RegN, RegN, RegN * 5);

    RemapOptions O;
    O.ExhaustiveLimit = 0;
    O.NumStarts = 16;

    RemapResult Ref;
    for (unsigned Jobs : {1u, 2u, 8u}) {
      O.Jobs = Jobs;
      RemapResult R = findRemap(G, C, O);
      if (Jobs == 1)
        Ref = R;
      else
        expectSameResult(Ref, R, /*WithDeltaStats=*/true);
    }
    EXPECT_TRUE(isPermutation(Ref.Perm, RegN));
  }
}

TEST(RemapSearch, SpecialsAndPinnedStayFixedUnderParallelSearch) {
  EncodingConfig C = vliwConfig(32);
  C.DiffN = 30;
  C.DiffW = 5;
  C.SpecialRegs = {31, 30};
  AdjacencyGraph G = randomGraph(4242, 32, 180);

  RemapOptions O;
  O.ExhaustiveLimit = 0;
  O.NumStarts = 12;
  O.Jobs = 4;
  O.PinnedRegs = {0, 7};
  RemapResult R = findRemap(G, C, O);
  EXPECT_TRUE(isPermutation(R.Perm, 32));
  for (RegId Fixed : {31u, 30u, 0u, 7u})
    EXPECT_EQ(R.Perm[Fixed], Fixed);

  O.Jobs = 1;
  expectSameResult(findRemap(G, C, O), R, /*WithDeltaStats=*/true);
}

TEST(RemapSearch, ZeroCostCutoffMatchesSequentialAtEveryJobCount) {
  // A single violated edge: the very first descent reaches cost zero, so
  // the remaining starts must be cut off — and StartsRun/StartsCutOff
  // must say so identically at every worker count and in the legacy arm.
  EncodingConfig C = cfgFor(8);
  AdjacencyGraph G(8);
  G.addWeight(0, 5, 3); // diff 5 >= DiffN=4: violated under identity.

  RemapOptions O;
  O.ExhaustiveLimit = 0;
  O.NumStarts = 32;

  RemapOptions Legacy = O;
  Legacy.UseIncremental = false;
  RemapResult Ref = findRemap(G, C, Legacy);
  EXPECT_EQ(Ref.CostAfter, 0.0);
  EXPECT_LT(Ref.StartsRun, 32u);
  EXPECT_EQ(Ref.StartsCutOff, 32u - Ref.StartsRun);

  for (unsigned Jobs : {1u, 2u, 8u}) {
    O.Jobs = Jobs;
    RemapResult R = findRemap(G, C, O);
    expectSameResult(Ref, R, /*WithDeltaStats=*/false);
  }
}

TEST(RemapExhaustive, ReportsEnumerationStats) {
  // Regression: the exhaustive arm used to return all-zero stats. With 4
  // movable registers it must report exactly 4! = 24 permutations
  // evaluated, one enumeration run, and at least one improvement.
  EncodingConfig C;
  C.RegN = 4;
  C.DiffN = 2;
  C.DiffW = 1;
  AdjacencyGraph G(4);
  G.addWeight(0, 2, 2); // diff 2: violated under identity.
  G.addWeight(1, 3, 1); // diff 2: violated under identity.

  RemapResult R = findRemap(G, C); // ExhaustiveLimit=7 routes to exhaustive.
  ASSERT_TRUE(R.Exhaustive);
  EXPECT_EQ(R.StartsRun, 1u);
  EXPECT_EQ(R.StartsCutOff, 0u);
  EXPECT_EQ(R.SwapsEvaluated, 24u);
  EXPECT_GE(R.SwapsApplied, 1u);
  EXPECT_LE(R.CostAfter, R.CostBefore);
}

TEST(RemapSearch, GreedyArmsReportStatsAndValidCosts) {
  for (unsigned RegN : RegNMatrix) {
    EncodingConfig C = cfgFor(RegN);
    AdjacencyGraph G = randomGraph(31 + RegN, RegN, RegN * 4);
    RemapOptions O;
    O.ExhaustiveLimit = 0;
    O.NumStarts = 8;
    O.Jobs = 2;
    RemapResult R = findRemap(G, C, O);
    EXPECT_TRUE(isPermutation(R.Perm, RegN));
    EXPECT_GE(R.StartsRun, 1u);
    EXPECT_EQ(R.StartsRun + R.StartsCutOff, 8u);
    EXPECT_GT(R.SwapsEvaluated, 0u);
    EXPECT_LE(R.CostAfter, R.CostBefore);
    // Integer weights make the incrementally maintained cost exact: it
    // must equal a from-scratch recost of the returned permutation.
    EXPECT_EQ(R.CostAfter, G.cost(R.Perm, C));
    // The whole point of the delta rows: far fewer arc visits than
    // recosting every candidate from scratch would have needed.
    EXPECT_GT(R.DeltaRecostSavings, 0u);
  }
}
