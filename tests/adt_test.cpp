//===- tests/adt_test.cpp - Rng/BitVector/Statistics unit tests -----------===//

#include "adt/Arena.h"
#include "adt/BitMatrix.h"
#include "adt/BitVector.h"
#include "adt/IndexSet.h"
#include "adt/Rng.h"
#include "adt/Statistics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

using namespace dra;

TEST(Rng, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.nextBelow(13);
    EXPECT_LT(V, 13u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 500; ++I)
    Seen.insert(R.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, WithChanceAlwaysAndNever) {
  Rng R(5);
  for (int I = 0; I != 50; ++I) {
    EXPECT_TRUE(R.withChance(10, 10));
    EXPECT_FALSE(R.withChance(0, 10));
  }
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng R(17);
  for (int I = 0; I != 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, PickWeightedRespectsZeros) {
  Rng R(21);
  std::vector<double> W = {0.0, 1.0, 0.0};
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(R.pickWeighted(W), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng R(31);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Shuffled = V;
  R.shuffle(Shuffled);
  std::sort(Shuffled.begin(), Shuffled.end());
  EXPECT_EQ(V, Shuffled);
}

TEST(BitVector, SetTestReset) {
  BitVector BV(130);
  EXPECT_FALSE(BV.test(0));
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_EQ(BV.count(), 3u);
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVector, ResizeWithValue) {
  BitVector BV(10, true);
  EXPECT_EQ(BV.count(), 10u);
  BV.resize(100, true);
  EXPECT_EQ(BV.count(), 100u);
  BV.resize(5);
  EXPECT_EQ(BV.count(), 5u);
}

TEST(BitVector, UnionChanges) {
  BitVector A(70), B(70);
  A.set(1);
  B.set(65);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(65));
  EXPECT_FALSE(A.unionWith(B)); // No change the second time.
}

TEST(BitVector, SubtractAndIntersect) {
  BitVector A(70), B(70);
  for (size_t I : {3ul, 20ul, 66ul})
    A.set(I);
  B.set(20);
  BitVector C = A;
  C.subtract(B);
  EXPECT_TRUE(C.test(3));
  EXPECT_FALSE(C.test(20));
  A.intersectWith(B);
  EXPECT_EQ(A.count(), 1u);
  EXPECT_TRUE(A.test(20));
}

TEST(BitVector, AnyCommon) {
  BitVector A(70), B(70);
  A.set(69);
  EXPECT_FALSE(A.anyCommon(B));
  B.set(69);
  EXPECT_TRUE(A.anyCommon(B));
}

TEST(BitVector, FindNextAndForEach) {
  BitVector BV(200);
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findNext(0), 0u);
  EXPECT_EQ(BV.findNext(1), 63u);
  EXPECT_EQ(BV.findNext(65), 199u);
  EXPECT_EQ(BV.findNext(200), BitVector::npos);
  std::vector<uint32_t> Bits = BV.toVector();
  EXPECT_EQ(Bits, (std::vector<uint32_t>{0, 63, 64, 199}));
}

TEST(BitVector, NoneAndClear) {
  BitVector BV(40);
  EXPECT_TRUE(BV.none());
  BV.set(17);
  EXPECT_FALSE(BV.none());
  BV.clear();
  EXPECT_TRUE(BV.none());
}

TEST(Statistics, Mean) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
}

TEST(Statistics, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4, 16}), 8.0);
}

TEST(Statistics, Percentile) {
  std::vector<double> V = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 5.0);
}

TEST(Statistics, Stddev) {
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena A;
  char *C1 = static_cast<char *>(A.allocate(3, 1));
  double *D = A.allocArray<double>(5);
  char *C2 = static_cast<char *>(A.allocate(1, 1));
  uint64_t *U = A.allocArray<uint64_t>(7);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(D) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(U) % alignof(uint64_t), 0u);
  // Writing every byte of every allocation must not alias another one.
  std::memset(C1, 0xa1, 3);
  for (int I = 0; I != 5; ++I)
    D[I] = 1.5 * I;
  *C2 = 0x7f;
  for (int I = 0; I != 7; ++I)
    U[I] = 0x0101010101010101ull * static_cast<uint64_t>(I);
  EXPECT_EQ(C1[0], static_cast<char>(0xa1));
  EXPECT_EQ(C1[2], static_cast<char>(0xa1));
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(D[I], 1.5 * I);
  EXPECT_EQ(*C2, 0x7f);
  for (int I = 0; I != 7; ++I)
    EXPECT_EQ(U[I], 0x0101010101010101ull * static_cast<uint64_t>(I));
}

TEST(Arena, GrowsAcrossChunksAndResetRetainsCapacity) {
  Arena A;
  // Far beyond the first chunk: force several growth steps.
  for (int I = 0; I != 64; ++I) {
    char *P = static_cast<char *>(A.allocate(8192, 8));
    std::memset(P, 0x5c, 8192);
  }
  size_t Reserved = A.bytesReserved();
  EXPECT_GE(A.bytesUsed(), size_t(64 * 8192));
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  // reset() keeps (coalesced) capacity so steady-state reuse is heap-free.
  EXPECT_GE(A.bytesReserved(), Reserved);
  size_t ReservedAfterReset = A.bytesReserved();
  for (int I = 0; I != 64; ++I)
    A.allocate(8192, 8);
  EXPECT_EQ(A.bytesReserved(), ReservedAfterReset);
}

TEST(Arena, ZeroedArrayIsZero) {
  Arena A;
  // Dirty the arena first so the zeroing is observable.
  std::memset(A.allocate(4096, 8), 0xff, 4096);
  A.reset();
  uint32_t *Z = A.allocZeroedArray<uint32_t>(1024);
  for (int I = 0; I != 1024; ++I)
    EXPECT_EQ(Z[I], 0u) << I;
}

//===----------------------------------------------------------------------===//
// IndexSet
//===----------------------------------------------------------------------===//

TEST(IndexSet, MirrorsStdSetOrderedOperations) {
  IndexSet S;
  S.init(200);
  std::set<unsigned> Ref;
  Rng R(99);
  for (int Step = 0; Step != 2000; ++Step) {
    unsigned V = static_cast<unsigned>(R.nextBelow(200));
    if (R.nextBelow(3) == 0) {
      S.erase(V);
      Ref.erase(V);
    } else {
      S.insert(V);
      Ref.insert(V);
    }
    ASSERT_EQ(S.size(), Ref.size());
    ASSERT_EQ(S.empty(), Ref.empty());
    // first() must equal *begin() of the ordered reference — the worklist
    // determinism contract of the allocator rework.
    if (!Ref.empty())
      ASSERT_EQ(S.first(), *Ref.begin());
    else
      ASSERT_EQ(S.first(), IndexSet::npos);
  }
  std::vector<unsigned> Got;
  S.forEach([&](unsigned V) { Got.push_back(V); });
  std::vector<unsigned> Want(Ref.begin(), Ref.end());
  EXPECT_EQ(Got, Want);
}

TEST(IndexSet, InsertEraseIdempotentAndMembership) {
  IndexSet S;
  S.init(70);
  EXPECT_TRUE(S.insert(65));
  EXPECT_FALSE(S.insert(65)); // second insert is a no-op
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.contains(65));
  EXPECT_FALSE(S.contains(64));
  EXPECT_TRUE(S.erase(65));
  EXPECT_FALSE(S.erase(65)); // second erase is a no-op
  EXPECT_EQ(S.size(), 0u);
  EXPECT_EQ(S.first(), IndexSet::npos);
}

TEST(IndexSet, FindNextScansAscending) {
  IndexSet S;
  S.init(130);
  for (unsigned V : {3u, 64u, 65u, 127u})
    S.insert(V);
  EXPECT_EQ(S.findNext(0), 3u);
  EXPECT_EQ(S.findNext(3), 3u);
  EXPECT_EQ(S.findNext(4), 64u);
  EXPECT_EQ(S.findNext(65), 65u);
  EXPECT_EQ(S.findNext(66), 127u);
  EXPECT_EQ(S.findNext(128), IndexSet::npos);
}

TEST(IndexSet, ArenaBackedBehavesIdentically) {
  Arena A;
  IndexSet S;
  S.init(A, 100);
  for (unsigned V = 0; V < 100; V += 7)
    S.insert(V);
  EXPECT_EQ(S.first(), 0u);
  S.erase(0);
  EXPECT_EQ(S.first(), 7u);
  EXPECT_EQ(S.size(), 14u);
}

//===----------------------------------------------------------------------===//
// BitMatrix
//===----------------------------------------------------------------------===//

TEST(BitMatrix, SymmetricSetAndTest) {
  BitMatrix M;
  M.init(150);
  EXPECT_FALSE(M.test(3, 140));
  M.setSym(3, 140);
  EXPECT_TRUE(M.test(3, 140));
  EXPECT_TRUE(M.test(140, 3));
  EXPECT_FALSE(M.test(3, 139));
  EXPECT_EQ(M.rowCount(3), 1u);
  EXPECT_EQ(M.rowCount(140), 1u);
  EXPECT_EQ(M.rowCount(0), 0u);
}

TEST(BitMatrix, ForEachInRowAscending) {
  BitMatrix M;
  M.init(200);
  std::set<uint32_t> Ref;
  Rng R(5);
  for (int I = 0; I != 60; ++I) {
    uint32_t V = static_cast<uint32_t>(R.nextBelow(200));
    if (V != 17) {
      M.setSym(17, V);
      Ref.insert(V);
    }
  }
  std::vector<uint32_t> Got;
  M.forEachInRow(17, [&](uint32_t V) { Got.push_back(V); });
  std::vector<uint32_t> Want(Ref.begin(), Ref.end());
  EXPECT_EQ(Got, Want); // ascending, no duplicates
  EXPECT_EQ(M.rowCount(17), Want.size());
}

TEST(BitMatrix, ArenaBackedRowsStartZero) {
  Arena A;
  std::memset(A.allocate(1 << 16, 8), 0xff, 1 << 16);
  A.reset();
  BitMatrix M;
  M.init(A, 300);
  for (uint32_t I = 0; I != 300; ++I)
    EXPECT_EQ(M.rowCount(I), 0u) << I;
}
