//===- tests/adt_test.cpp - Rng/BitVector/Statistics unit tests -----------===//

#include "adt/BitVector.h"
#include "adt/Rng.h"
#include "adt/Statistics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace dra;

TEST(Rng, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.nextBelow(13);
    EXPECT_LT(V, 13u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 500; ++I)
    Seen.insert(R.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, WithChanceAlwaysAndNever) {
  Rng R(5);
  for (int I = 0; I != 50; ++I) {
    EXPECT_TRUE(R.withChance(10, 10));
    EXPECT_FALSE(R.withChance(0, 10));
  }
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng R(17);
  for (int I = 0; I != 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, PickWeightedRespectsZeros) {
  Rng R(21);
  std::vector<double> W = {0.0, 1.0, 0.0};
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(R.pickWeighted(W), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng R(31);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Shuffled = V;
  R.shuffle(Shuffled);
  std::sort(Shuffled.begin(), Shuffled.end());
  EXPECT_EQ(V, Shuffled);
}

TEST(BitVector, SetTestReset) {
  BitVector BV(130);
  EXPECT_FALSE(BV.test(0));
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_EQ(BV.count(), 3u);
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVector, ResizeWithValue) {
  BitVector BV(10, true);
  EXPECT_EQ(BV.count(), 10u);
  BV.resize(100, true);
  EXPECT_EQ(BV.count(), 100u);
  BV.resize(5);
  EXPECT_EQ(BV.count(), 5u);
}

TEST(BitVector, UnionChanges) {
  BitVector A(70), B(70);
  A.set(1);
  B.set(65);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(65));
  EXPECT_FALSE(A.unionWith(B)); // No change the second time.
}

TEST(BitVector, SubtractAndIntersect) {
  BitVector A(70), B(70);
  for (size_t I : {3ul, 20ul, 66ul})
    A.set(I);
  B.set(20);
  BitVector C = A;
  C.subtract(B);
  EXPECT_TRUE(C.test(3));
  EXPECT_FALSE(C.test(20));
  A.intersectWith(B);
  EXPECT_EQ(A.count(), 1u);
  EXPECT_TRUE(A.test(20));
}

TEST(BitVector, AnyCommon) {
  BitVector A(70), B(70);
  A.set(69);
  EXPECT_FALSE(A.anyCommon(B));
  B.set(69);
  EXPECT_TRUE(A.anyCommon(B));
}

TEST(BitVector, FindNextAndForEach) {
  BitVector BV(200);
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findNext(0), 0u);
  EXPECT_EQ(BV.findNext(1), 63u);
  EXPECT_EQ(BV.findNext(65), 199u);
  EXPECT_EQ(BV.findNext(200), BitVector::npos);
  std::vector<uint32_t> Bits = BV.toVector();
  EXPECT_EQ(Bits, (std::vector<uint32_t>{0, 63, 64, 199}));
}

TEST(BitVector, NoneAndClear) {
  BitVector BV(40);
  EXPECT_TRUE(BV.none());
  BV.set(17);
  EXPECT_FALSE(BV.none());
  BV.clear();
  EXPECT_TRUE(BV.none());
}

TEST(Statistics, Mean) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
}

TEST(Statistics, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4, 16}), 8.0);
}

TEST(Statistics, Percentile) {
  std::vector<double> V = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 5.0);
}

TEST(Statistics, Stddev) {
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
}
