//===- tests/trace_test.cpp - Request-tracing tests -----------------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Covers the tracing layer bottom-up: trace-id hex round-trips (strict
// parsing), the splitmix64 id derivation, TraceContext's bounded span
// collection (overflow counts dropped spans instead of growing), the
// Chrome trace-event writer (output must parse back as the schema
// dra-stats --validate-trace enforces), and the server's flight recorder
// (ring eviction, newest-first ordering, slow-request span escalation).
//
//===----------------------------------------------------------------------===//

#include "driver/Json.h"
#include "driver/Trace.h"
#include "server/FlightRecorder.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace dra;

namespace {

//===----------------------------------------------------------------------===//
// Trace ids
//===----------------------------------------------------------------------===//

TEST(TraceId, HexRoundTrip) {
  for (uint64_t Id : {1ull, 0xdeadbeefull, 0xffffffffffffffffull,
                      0x0123456789abcdefull}) {
    std::string Hex = traceIdToHex(Id);
    EXPECT_EQ(16u, Hex.size());
    uint64_t Back = 0;
    ASSERT_TRUE(traceIdFromHex(Hex, Back)) << Hex;
    EXPECT_EQ(Id, Back);
  }
  EXPECT_EQ("0000000000000001", traceIdToHex(1));
}

TEST(TraceId, FromHexIsStrict) {
  uint64_t Out = 0;
  EXPECT_FALSE(traceIdFromHex("", Out));
  EXPECT_FALSE(traceIdFromHex("abc", Out));                  // too short
  EXPECT_FALSE(traceIdFromHex("00000000000000012", Out));    // too long
  EXPECT_FALSE(traceIdFromHex("000000000000000G", Out));     // bad charset
  EXPECT_FALSE(traceIdFromHex("000000000000000F", Out));     // uppercase
  EXPECT_TRUE(traceIdFromHex("000000000000000f", Out));
  EXPECT_EQ(0xfu, Out);
}

TEST(TraceId, DeriveIsNonzeroDeterministicAndMixed) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I != 1000; ++I) {
    uint64_t Id = deriveTraceId(42, I);
    EXPECT_NE(0u, Id);
    EXPECT_EQ(Id, deriveTraceId(42, I)); // deterministic
    Seen.insert(Id);
  }
  EXPECT_EQ(1000u, Seen.size()); // no collisions over a small range
  EXPECT_NE(deriveTraceId(42, 0), deriveTraceId(43, 0)); // seed matters
}

//===----------------------------------------------------------------------===//
// TraceContext
//===----------------------------------------------------------------------===//

TEST(TraceContext, RecordsSpansWithDepthAndTid) {
  TraceContext TC(deriveTraceId(1, 0));
  TC.record("request", 100, 200, 0);
  TC.record("compile", 120, 190, 1);
  TC.recordOn(777, "queue_wait", 100, 120, 1);
  ASSERT_EQ(3u, TC.spanCount());
  std::vector<TraceRecord> R = TC.records();
  EXPECT_EQ("request", R[0].Name);
  EXPECT_EQ(0u, R[0].Depth);
  EXPECT_EQ(osThreadId(), R[0].Tid);
  EXPECT_EQ(777u, R[2].Tid); // explicit attribution wins
  EXPECT_EQ(0u, TC.droppedSpans());
}

TEST(TraceContext, OverflowDropsAndCounts) {
  TraceContext TC(1, /*MaxSpans=*/4);
  for (int I = 0; I != 10; ++I)
    TC.record("s", I, I + 1);
  EXPECT_EQ(4u, TC.spanCount());
  EXPECT_EQ(6u, TC.droppedSpans());
}

TEST(TraceContext, ThreadNamesDeduplicateByTid) {
  TraceContext TC(1);
  TC.nameThread(10, "conn-1");
  TC.nameThread(11, "worker-0");
  TC.nameThread(10, "conn-1"); // repeat is a no-op
  EXPECT_EQ(2u, TC.threadNames().size());
}

TEST(TraceContext, ConcurrentRecordingIsSafe) {
  TraceContext TC(1);
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&TC] {
      for (int I = 0; I != 100; ++I)
        TC.record("span", I, I + 1, 2);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(400u, TC.spanCount());
  EXPECT_EQ(0u, TC.droppedSpans());
}

TEST(TraceContext, ScopedSpanOnNullContextIsANoop) {
  { ScopedTraceSpan Span(nullptr, "nothing", 3); } // must not crash
  TraceContext TC(1);
  { ScopedTraceSpan Span(&TC, "real", 1); }
  ASSERT_EQ(1u, TC.spanCount());
  EXPECT_EQ("real", TC.records()[0].Name);
  EXPECT_LE(TC.records()[0].BeginNs, TC.records()[0].EndNs);
}

//===----------------------------------------------------------------------===//
// ChromeTraceWriter
//===----------------------------------------------------------------------===//

TEST(ChromeTraceWriter, OutputParsesBackWithExpectedEvents) {
  std::ostringstream OS;
  ChromeTraceWriter W(OS);
  W.processName(100, "dra-loadgen");
  W.threadName(100, 5, "client-0");
  W.completeEvent(100, 5, "rpc", "client", 0.0, 1234.5,
                  {{"traceid", "00000000000000ff"}, {"tier", "miss"}});
  W.completeEvent(200, 9, "compile", "server", 10.0, 1000.0);
  W.finish();
  EXPECT_EQ(4u, W.eventCount());

  JsonValue Root;
  std::string Err;
  ASSERT_TRUE(parseJson(OS.str(), Root, &Err)) << Err;
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(nullptr, Events);
  ASSERT_EQ(JsonValue::Array, Events->K);
  ASSERT_EQ(4u, Events->Arr.size());

  const JsonValue &Meta = Events->Arr[0];
  EXPECT_EQ("process_name", Meta.field("name")->Str);
  EXPECT_EQ("M", Meta.field("ph")->Str);
  EXPECT_EQ(100.0, Meta.field("pid")->Num);

  const JsonValue &Rpc = Events->Arr[2];
  EXPECT_EQ("rpc", Rpc.field("name")->Str);
  EXPECT_EQ("X", Rpc.field("ph")->Str);
  EXPECT_EQ(5.0, Rpc.field("tid")->Num);
  EXPECT_EQ(1234.5, Rpc.field("dur")->Num);
  const JsonValue *Args = Rpc.field("args");
  ASSERT_NE(nullptr, Args);
  EXPECT_EQ("00000000000000ff", Args->field("traceid")->Str);
  EXPECT_EQ("miss", Args->field("tier")->Str);
}

TEST(ChromeTraceWriter, EscapesNamesAndEmptyDocumentIsValid) {
  {
    std::ostringstream OS;
    ChromeTraceWriter W(OS);
    W.finish();
    JsonValue Root;
    std::string Err;
    ASSERT_TRUE(parseJson(OS.str(), Root, &Err)) << Err;
    EXPECT_EQ(0u, Root.field("traceEvents")->Arr.size());
  }
  std::ostringstream OS;
  ChromeTraceWriter W(OS);
  W.completeEvent(1, 1, "weird \"name\"\n", "cat", 0, 1);
  W.finish();
  JsonValue Root;
  std::string Err;
  ASSERT_TRUE(parseJson(OS.str(), Root, &Err)) << Err;
  EXPECT_EQ("weird \"name\"\n",
            Root.field("traceEvents")->Arr[0].field("name")->Str);
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

RequestRecord makeRecord(double TotalUs, const char *Outcome = "ok") {
  RequestRecord R;
  R.TraceId = deriveTraceId(7, uint64_t(TotalUs));
  R.Scheme = "coalesce";
  R.Outcome = Outcome;
  R.Tier = "miss";
  R.TotalUs = TotalUs;
  R.Spans.push_back({"request", 0, 1000, 0, 1});
  R.Spans.push_back({"compile", 100, 900, 1, 2});
  R.ThreadNames.push_back({1, "conn-1"});
  return R;
}

TEST(FlightRecorder, KeepsNewestAndAssignsSequence) {
  FlightRecorder FR(/*Capacity=*/8, /*SlowUs=*/1000000);
  for (int I = 1; I <= 20; ++I)
    FR.record(makeRecord(double(I)));
  EXPECT_EQ(20u, FR.recorded());
  std::vector<RequestRecord> R = FR.recent(8);
  ASSERT_EQ(8u, R.size());
  EXPECT_EQ(20u, R.front().Seq); // newest first
  for (size_t I = 1; I != R.size(); ++I)
    EXPECT_GT(R[I - 1].Seq, R[I].Seq);
  // Capacity bounds retention even when asking for more.
  EXPECT_LE(FR.recent(1000).size(), 8u + FlightRecorder::NumShards);
}

TEST(FlightRecorder, SlowRequestsKeepSpanDetail) {
  FlightRecorder FR(/*Capacity=*/16, /*SlowUs=*/500);
  FR.record(makeRecord(10));   // fast: span detail cleared
  FR.record(makeRecord(9000)); // slow: escalated, detail kept
  EXPECT_EQ(1u, FR.slowCount());
  std::vector<RequestRecord> R = FR.recent(2);
  ASSERT_EQ(2u, R.size());
  EXPECT_TRUE(R[0].Slow);
  EXPECT_EQ(2u, R[0].Spans.size());
  EXPECT_EQ(1u, R[0].ThreadNames.size());
  EXPECT_FALSE(R[1].Slow);
  EXPECT_TRUE(R[1].Spans.empty());
  EXPECT_TRUE(R[1].ThreadNames.empty());
}

TEST(FlightRecorder, ZeroCapacityDisablesRetentionButStillCounts) {
  FlightRecorder FR(0, 100);
  EXPECT_FALSE(FR.enabled());
  FR.record(makeRecord(500));
  EXPECT_EQ(1u, FR.recorded());
  EXPECT_EQ(1u, FR.slowCount());
  EXPECT_TRUE(FR.recent(10).empty());
}

TEST(FlightRecorder, ConcurrentRecordersKeepDistinctSequences) {
  FlightRecorder FR(64, 1000000);
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&FR] {
      for (int I = 0; I != 50; ++I)
        FR.record(makeRecord(double(I)));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(200u, FR.recorded());
  std::vector<RequestRecord> R = FR.recent(64);
  std::set<uint64_t> Seqs;
  for (const RequestRecord &Rec : R)
    Seqs.insert(Rec.Seq);
  EXPECT_EQ(R.size(), Seqs.size()); // no duplicate sequence numbers
}

} // namespace
