//===- tests/opswap_test.cpp - Commutative operand swapping tests ---------===//

#include "core/Encoder.h"
#include "core/OperandSwap.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "regalloc/GraphColoring.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(OperandSwap, CommutativityTable) {
  EXPECT_TRUE(isCommutative(Opcode::Add));
  EXPECT_TRUE(isCommutative(Opcode::Mul));
  EXPECT_TRUE(isCommutative(Opcode::Xor));
  EXPECT_TRUE(isCommutative(Opcode::CmpEQ));
  EXPECT_FALSE(isCommutative(Opcode::Sub));
  EXPECT_FALSE(isCommutative(Opcode::DivS));
  EXPECT_FALSE(isCommutative(Opcode::CmpLT));
  EXPECT_FALSE(isCommutative(Opcode::Shl));
  EXPECT_FALSE(isCommutative(Opcode::Store));
}

TEST(OperandSwap, FixesSourcePairViolation) {
  // r5 = r4 + r0 with RegN=12/DiffN=8 and entry last_reg = 0: the chain
  // 0 -> 4 -> 0 -> 5 has one violation (4 -> 0 is diff 8), while the
  // swapped chain 0 -> 0 -> 4 -> 5 has none.
  EncodingConfig C = lowEndConfig(12);
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 5;
  I.Src1 = 4;
  I.Src2 = 0;
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 5;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  size_t Swapped = swapCommutativeOperands(F, C);
  EXPECT_EQ(Swapped, 1u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Src1, 0u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Src2, 4u);
  EncodedFunction E = encodeFunction(F, C);
  EXPECT_EQ(E.Stats.SetLastRange, 0u);
}

TEST(OperandSwap, LeavesImprovementFreeCodeAlone) {
  EncodingConfig C = lowEndConfig(12);
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 3;
  I.Src1 = 1;
  I.Src2 = 2; // 1->2->3: all diffs 1.
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 3;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EXPECT_EQ(swapCommutativeOperands(F, C), 0u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Src1, 1u);
}

TEST(OperandSwap, NonCommutativeNeverTouched) {
  EncodingConfig C = lowEndConfig(12);
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Sub;
  I.Dst = 0;
  I.Src1 = 0;
  I.Src2 = 9; // Violated but not swappable.
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 0;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EXPECT_EQ(swapCommutativeOperands(F, C), 0u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Src1, 0u);
  EXPECT_EQ(F.Blocks[0].Insts[0].Src2, 9u);
}

TEST(OperandSwap, NoOpForDstFirstOrder) {
  EncodingConfig C = lowEndConfig(12);
  C.Order = AccessOrder::DstFirst;
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 0;
  I.Src1 = 0;
  I.Src2 = 9;
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 0;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  EXPECT_EQ(swapCommutativeOperands(F, C), 0u);
}

/// Property: swapping never changes semantics and never increases the
/// encoder's out-of-range repair count.
class OperandSwapRandom : public ::testing::TestWithParam<int> {};

TEST_P(OperandSwapRandom, SemanticsAndRepairsMonotone) {
  EncodingConfig C = lowEndConfig(12);
  ProgramProfile P;
  P.Seed = static_cast<uint64_t>(GetParam()) * 53 + 11;
  P.PressureVars = 5;
  P.TopStatements = 6;
  P.OuterTrip = 3;
  Function F = generateProgram("os", P);
  allocateGraphColoring(F, C.RegN);
  ExecResult Before = interpret(F);
  EncodedFunction EBefore = encodeFunction(F, C);

  size_t Swapped = swapCommutativeOperands(F, C);
  (void)Swapped;
  ExecResult After = interpret(F);
  EXPECT_EQ(fingerprint(Before), fingerprint(After));
  EncodedFunction EAfter = encodeFunction(F, C);
  EXPECT_LE(EAfter.Stats.SetLastRange, EBefore.Stats.SetLastRange);
  std::string Err;
  EXPECT_TRUE(verifyDecodable(EAfter.Annotated, C, &Err)) << Err;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperandSwapRandom, ::testing::Range(0, 10));
