//===- tests/classed_test.cpp - Multi-class encoding tests (S9.1) ---------===//

#include "core/AccessSequence.h"
#include "core/ClassedEncoder.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "regalloc/GraphColoring.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// Two classes over a 16-register machine: "int" r0..r9 and "addr"
/// r10..r15 (an artificial partition standing in for int/float files).
ClassedConfig twoClassConfig() {
  ClassedConfig C;
  RegClass Ints;
  Ints.Name = "int";
  for (RegId R = 0; R != 10; ++R)
    Ints.Members.push_back(R);
  Ints.DiffN = 8;
  Ints.DiffW = 3;
  RegClass Addrs;
  Addrs.Name = "addr";
  for (RegId R = 10; R != 16; ++R)
    Addrs.Members.push_back(R);
  Addrs.DiffN = 4;
  Addrs.DiffW = 2;
  C.Classes = {Ints, Addrs};
  return C;
}

bool sameRegisterFields(const Function &A, const Function &B) {
  if (A.Blocks.size() != B.Blocks.size())
    return false;
  for (size_t Blk = 0; Blk != A.Blocks.size(); ++Blk) {
    if (A.Blocks[Blk].Insts.size() != B.Blocks[Blk].Insts.size())
      return false;
    for (size_t I = 0; I != A.Blocks[Blk].Insts.size(); ++I) {
      const Instruction &IA = A.Blocks[Blk].Insts[I];
      const Instruction &IB = B.Blocks[Blk].Insts[I];
      if (IA.Op != IB.Op)
        return false;
      for (unsigned Fld = 0; Fld != IA.numRegFields(); ++Fld)
        if (IA.regField(Fld) != IB.regField(Fld))
          return false;
    }
  }
  return true;
}

/// A random program allocated onto 16 registers.
Function allocated16(uint64_t Seed) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = 5;
  P.TopStatements = 6;
  P.OuterTrip = 3;
  Function F = generateProgram("cl", P);
  allocateGraphColoring(F, 16);
  return F;
}

} // namespace

TEST(ClassedConfig, ValidityChecks) {
  ClassedConfig C = twoClassConfig();
  EXPECT_TRUE(C.valid(16));
  EXPECT_EQ(C.totalRegs(), 16u);
  EXPECT_EQ(C.classOf(3), 0u);
  EXPECT_EQ(C.classOf(12), 1u);
  EXPECT_EQ(C.localIndex(12), 2u);
  // Overlapping membership is rejected.
  C.Classes[1].Members.push_back(0);
  EXPECT_FALSE(C.valid(16));
  // Unassigned registers are rejected.
  ClassedConfig D = twoClassConfig();
  D.Classes[1].Members.pop_back();
  EXPECT_FALSE(D.valid(16));
}

TEST(ClassedEncoder, ClassesKeepIndependentState) {
  // Interleaved accesses to the two classes: each class's chain must be
  // differenced against its own last access, not the other class's.
  ClassedConfig C = twoClassConfig();
  Function F;
  F.NumRegs = 16;
  F.MemWords = 4;
  F.makeBlock();
  auto Mov = [&](RegId Dst, RegId Src) {
    Instruction I;
    I.Op = Opcode::Mov;
    I.Dst = Dst;
    I.Src1 = Src;
    F.Blocks[0].Insts.push_back(I);
  };
  Mov(1, 0);   // int: 0 -> 1 (diffs 0, 1 from the entry convention).
  Mov(11, 10); // addr: local 0 -> local 1.
  Mov(2, 1);   // int continues from 1, unaffected by the addr accesses.
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 2;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();

  ClassedEncodedFunction E = encodeClassedFunction(F, C);
  EXPECT_EQ(E.Stats.setLastTotal(), 0u);
  // mov r1, r0: codes 0 (src, diff 0 from entry), 1 (dst).
  EXPECT_EQ(E.Codes[0][0][0], 0u);
  EXPECT_EQ(E.Codes[0][0][1], 1u);
  // mov r11, r10: addr class also starts at local 0.
  EXPECT_EQ(E.Codes[0][1][0], 0u);
  EXPECT_EQ(E.Codes[0][1][1], 1u);
  // mov r2, r1: int last was r1 (local 1): codes 0, 1.
  EXPECT_EQ(E.Codes[0][2][0], 0u);
  EXPECT_EQ(E.Codes[0][2][1], 1u);
}

TEST(ClassedEncoder, OutOfRangeRepairedWithinClass) {
  ClassedConfig C = twoClassConfig(); // addr class: 6 members, DiffN 4.
  Function F;
  F.NumRegs = 16;
  F.MemWords = 4;
  F.makeBlock();
  Instruction I;
  I.Op = Opcode::Mov;
  I.Dst = 10; // local 0; from local 5 the diff is (0-5) mod 6 = 1 — fine;
  I.Src1 = 15; // first access local 5: diff from entry local 0 is 5 >= 4.
  F.Blocks[0].Insts.push_back(I);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  Ret.Src1 = 10;
  F.Blocks[0].Insts.push_back(Ret);
  F.recomputeCFG();
  ClassedEncodedFunction E = encodeClassedFunction(F, C);
  EXPECT_EQ(E.Stats.PerClass[1].SetLastRange, 1u);
  EXPECT_EQ(E.Stats.PerClass[0].SetLastRange, 0u);
  std::string Err;
  EXPECT_TRUE(verifyClassedDecodable(E.Annotated, C, &Err)) << Err;
}

/// Round-trip property across random allocated programs.
class ClassedRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ClassedRoundTrip, DecodeRecoversEveryField) {
  ClassedConfig C = twoClassConfig();
  Function F = allocated16(static_cast<uint64_t>(GetParam()) * 41 + 3);
  ExecResult Before = interpret(F);
  ClassedEncodedFunction E = encodeClassedFunction(F, C);
  std::string Err;
  ASSERT_TRUE(verifyClassedDecodable(E.Annotated, C, &Err)) << Err;
  Function Decoded = decodeClassedFunction(E, C);
  EXPECT_TRUE(sameRegisterFields(Decoded, E.Annotated));
  // Codes fit each class's field width.
  for (uint32_t B = 0; B != E.Annotated.Blocks.size(); ++B)
    for (uint32_t I = 0; I != E.Annotated.Blocks[B].Insts.size(); ++I) {
      const Instruction &Inst = E.Annotated.Blocks[B].Insts[I];
      if (Inst.Op == Opcode::SetLastReg)
        continue;
      std::vector<unsigned> Fields = fieldOrder(Inst, C.Order);
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        unsigned Cls = C.classOf(Inst.regField(Fields[Pos]));
        EXPECT_LT(E.Codes[B][I][Pos], 1u << C.Classes[Cls].DiffW);
      }
    }
  // The annotation is architecturally inert.
  EXPECT_EQ(fingerprint(interpret(E.Annotated)), fingerprint(Before));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassedRoundTrip, ::testing::Range(0, 8));
