//===- tests/opt_test.cpp - SimplifyCfg + ConstantFold tests --------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "opt/ConstantFold.h"
#include "opt/DeadCode.h"
#include "opt/SimplifyCfg.h"
#include "workloads/MiBench.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(SimplifyCfg, MergesJumpChains) {
  Function F;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t B1 = F.makeBlock();
  uint32_t B2 = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  RegId V = B.createMovImm(1);
  B.createJmp(B1);
  B.setBlock(B1);
  RegId W = B.createBinImm(Opcode::AddI, V, 2);
  B.createJmp(B2);
  B.setBlock(B2);
  B.createRet(W);
  F.recomputeCFG();
  SimplifyCfgStats S = simplifyCfg(F);
  EXPECT_EQ(S.BlocksMerged, 2u);
  EXPECT_EQ(F.Blocks.size(), 1u);
  EXPECT_EQ(interpret(F).ReturnValue, 3);
}

TEST(SimplifyCfg, FoldsSameTargetBranch) {
  Function F;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t B1 = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  RegId V = B.createMovImm(1);
  B.createBr(V, B1, B1);
  B.setBlock(B1);
  B.createRet(V);
  F.recomputeCFG();
  SimplifyCfgStats S = simplifyCfg(F);
  EXPECT_EQ(S.BranchesFolded, 1u);
  // Folding the branch makes B1 single-pred-merged too.
  EXPECT_EQ(F.Blocks.size(), 1u);
}

TEST(SimplifyCfg, RemovesUnreachable) {
  Function F;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t Dead = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  RegId V = B.createMovImm(4);
  B.createRet(V);
  B.setBlock(Dead);
  B.createRet(V);
  F.recomputeCFG();
  SimplifyCfgStats S = simplifyCfg(F);
  EXPECT_EQ(S.UnreachableRemoved, 1u);
  EXPECT_EQ(F.Blocks.size(), 1u);
  (void)Dead;
}

TEST(SimplifyCfg, KeepsLoops) {
  Function F;
  F.MemWords = 4;
  uint32_t Entry = F.makeBlock();
  uint32_t Body = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId I = B.createMovImm(5);
  B.createJmp(Body);
  B.setBlock(Body);
  B.createBinImmTo(Opcode::AddI, I, I, -1);
  B.createBr(I, Body, Exit);
  B.setBlock(Exit);
  B.createRet(I);
  F.recomputeCFG();
  int64_t Before = interpret(F).ReturnValue;
  simplifyCfg(F);
  EXPECT_EQ(interpret(F).ReturnValue, Before);
  // The loop body cannot merge into the entry (two predecessors).
  EXPECT_GE(F.Blocks.size(), 2u);
}

TEST(ConstantFold, FoldsArithmeticChains) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(6);
  RegId C = B.createMovImm(7);
  RegId D = B.createBin(Opcode::Mul, A, C);  // 42, foldable.
  RegId E2 = B.createBinImm(Opcode::AddI, D, -2); // 40, foldable.
  B.createRet(E2);
  F.recomputeCFG();
  ConstantFoldStats S = foldConstants(F);
  EXPECT_EQ(S.InstsFolded, 2u);
  EXPECT_EQ(F.Blocks[0].Insts[2].Op, Opcode::MovI);
  EXPECT_EQ(F.Blocks[0].Insts[2].Imm, 42);
  EXPECT_EQ(interpret(F).ReturnValue, 40);
}

TEST(ConstantFold, FoldsKnownBranch) {
  Function F;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t TrueB = F.makeBlock();
  uint32_t FalseB = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  RegId Z = B.createMovImm(0);
  B.createBr(Z, TrueB, FalseB);
  B.setBlock(TrueB);
  B.createRet(B.createMovImm(1));
  B.setBlock(FalseB);
  B.createRet(B.createMovImm(2));
  F.recomputeCFG();
  ConstantFoldStats S = foldConstants(F);
  EXPECT_EQ(S.BranchesFolded, 1u);
  EXPECT_EQ(F.Blocks[B0].Insts.back().Op, Opcode::Jmp);
  EXPECT_EQ(interpret(F).ReturnValue, 2);
}

TEST(ConstantFold, UnknownOperandsUntouched) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId X = B.createLoad(B.createMovImm(0), 0); // Unknown value.
  RegId Y = B.createBinImm(Opcode::AddI, X, 1);
  B.createRet(Y);
  F.recomputeCFG();
  ConstantFoldStats S = foldConstants(F);
  EXPECT_EQ(S.InstsFolded, 0u);
  EXPECT_EQ(F.Blocks[0].Insts[2].Op, Opcode::AddI);
}

TEST(ConstantFold, RedefinitionInvalidates) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(1);
  RegId Addr = B.createMovImm(0);
  Instruction Ld; // A = load(...) — A is no longer the constant 1.
  Ld.Op = Opcode::Load;
  Ld.Dst = A;
  Ld.Src1 = Addr;
  F.Blocks[0].Insts.push_back(Ld);
  RegId C = B.createBinImm(Opcode::AddI, A, 1);
  B.createRet(C);
  F.recomputeCFG();
  ConstantFoldStats S = foldConstants(F);
  EXPECT_EQ(S.InstsFolded, 0u);
}

/// The full cleanup pipeline (fold -> simplify -> DCE) preserves semantics
/// on whole benchmark programs.
class CleanupPipeline : public ::testing::TestWithParam<std::string> {};

TEST_P(CleanupPipeline, PreservesSemantics) {
  Function F = miBenchProgram(GetParam());
  ExecResult Before = interpret(F);
  foldConstants(F);
  simplifyCfg(F);
  eliminateDeadCode(F);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  ExecResult After = interpret(F);
  EXPECT_EQ(fingerprint(Before), fingerprint(After));
}

INSTANTIATE_TEST_SUITE_P(Suite, CleanupPipeline,
                         ::testing::Values("crc32", "qsort", "dijkstra",
                                           "stringsearch", "patricia"));
