//===- tests/regalloc_test.cpp - Register allocator tests -----------------===//

#include "analysis/Liveness.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "regalloc/GraphColoring.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// Checks that no two simultaneously-live registers share a physical
/// number in the allocated function (all operands are phys regs < K).
bool allocationIsSound(const Function &F, unsigned K) {
  if (F.NumRegs != K)
    return false;
  Function Copy = F;
  Copy.recomputeCFG();
  Liveness LV = Liveness::compute(Copy);
  // With whole-register live ranges, soundness means: at every def, the
  // defined phys reg is not in the live-after set unless this instruction
  // (re)defines that same value. Equivalent check: build the interference
  // graph and verify no self-conflicts arise — every node is its own
  // color, so it suffices that no instruction defines a register that is
  // live-after through a *different* value. That cannot be observed
  // directly post-rewrite, so instead we verify the program semantics in
  // the tests that use allocationIsSound alongside fingerprint equality.
  for (const BasicBlock &BB : Copy.Blocks)
    for (const Instruction &I : BB.Insts)
      for (unsigned Field = 0; Field != I.numRegFields(); ++Field)
        if (I.regField(Field) >= K)
          return false;
  return true;
}

Function pressureProgram(uint64_t Seed, unsigned Pool) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = Pool;
  P.TopStatements = 6;
  P.OuterTrip = 4;
  return generateProgram("p", P);
}

} // namespace

TEST(InterferenceGraph, BuildsExpectedEdges) {
  // r0 and r1 overlap; r2 is disjoint from r0.
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(1);          // r0
  RegId C = B.createMovImm(2);          // r1, r0 live
  RegId D = B.createBin(Opcode::Add, A, C); // r2, kills r0/r1 afterwards
  B.createRet(D);
  F.recomputeCFG();
  Liveness LV = Liveness::compute(F);
  InterferenceGraph G = InterferenceGraph::build(F, LV);
  EXPECT_TRUE(G.interferes(A, C));
  EXPECT_FALSE(G.interferes(A, D));
  EXPECT_FALSE(G.interferes(C, D));
}

TEST(InterferenceGraph, MoveDoesNotInterfereWithSource) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(1);
  RegId C = B.createMov(A); // C copies A; A unused afterwards... keep A
  RegId D = B.createBin(Opcode::Add, C, A);
  B.createRet(D);
  F.recomputeCFG();
  Liveness LV = Liveness::compute(F);
  InterferenceGraph G = InterferenceGraph::build(F, LV);
  // A is live after the move (used by add), but a move's destination does
  // not interfere with its source by the Chaitin rule.
  EXPECT_FALSE(G.interferes(A, C));
  ASSERT_EQ(G.moves().size(), 1u);
  EXPECT_EQ(G.moves()[0].Dst, C);
  EXPECT_EQ(G.moves()[0].Src, A);
}

TEST(InterferenceGraph, ValidColoringCheck) {
  InterferenceGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  EXPECT_TRUE(G.isValidColoring({0, 1, 0}));
  EXPECT_FALSE(G.isValidColoring({0, 0, 1}));
}

TEST(InterferenceGraph, NoSelfOrDuplicateEdges) {
  InterferenceGraph G(4);
  G.addEdge(1, 1); // Ignored.
  G.addEdge(1, 2);
  G.addEdge(2, 1); // Duplicate.
  EXPECT_EQ(G.degree(1), 1u);
  EXPECT_EQ(G.degree(2), 1u);
  EXPECT_FALSE(G.interferes(1, 1));
}

TEST(GraphColoring, NoSpillWhenRegistersSuffice) {
  Function F = pressureProgram(3, 3);
  F.recomputeCFG();
  unsigned Pressure = Liveness::compute(F).maxPressure(F);
  ExecResult Before = interpret(F);
  // Give the allocator comfortably more registers than the peak pressure;
  // no spill may then occur.
  unsigned K = Pressure + 4;
  AllocResult R = allocateGraphColoring(F, K);
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.SpillLoads + R.SpillStores, 0u);
  EXPECT_TRUE(allocationIsSound(F, K));
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

TEST(GraphColoring, SpillsUnderPressureAndStaysCorrect) {
  Function F = pressureProgram(5, 12);
  ExecResult Before = interpret(F);
  AllocResult R = allocateGraphColoring(F, 6);
  EXPECT_TRUE(R.Success);
  EXPECT_GT(R.SpilledRanges, 0u);
  EXPECT_GT(R.SpillLoads + R.SpillStores, 0u);
  EXPECT_TRUE(allocationIsSound(F, 6));
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

TEST(GraphColoring, CoalescingRemovesMoves) {
  // A chain of moves between non-interfering values should coalesce away.
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(5);
  RegId C = B.createMov(A); // A dead after.
  RegId D = B.createMov(C); // C dead after.
  RegId E = B.createBinImm(Opcode::AddI, D, 1);
  B.createRet(E);
  F.recomputeCFG();
  AllocResult R = allocateGraphColoring(F, 8);
  EXPECT_EQ(R.MovesRemoved, 2u);
  EXPECT_EQ(R.MovesRemaining, 0u);
  EXPECT_EQ(interpret(F).ReturnValue, 6);
}

TEST(GraphColoring, NoRewriteModeLeavesVRegs) {
  Function F = pressureProgram(7, 4);
  uint32_t VRegsBefore = F.NumRegs;
  std::vector<RegId> ColorOf;
  AllocResult R = allocateGraphColoring(F, 8, nullptr, 60, &ColorOf);
  EXPECT_TRUE(R.Success);
  EXPECT_GE(F.NumRegs, VRegsBefore); // Still virtual universe.
  ASSERT_EQ(ColorOf.size(), F.NumRegs);
  for (RegId V = 0; V != F.NumRegs; ++V)
    EXPECT_LT(ColorOf[V], 8u);
  // The coloring must respect interference.
  F.recomputeCFG();
  Liveness LV = Liveness::compute(F);
  InterferenceGraph G = InterferenceGraph::build(F, LV);
  EXPECT_TRUE(G.isValidColoring(ColorOf));
  // And rewriting must preserve semantics.
  Function Rewritten = F;
  rewriteToPhysical(Rewritten, ColorOf, 8);
  EXPECT_TRUE(allocationIsSound(Rewritten, 8));
}

TEST(GraphColoring, SpillCodeInserterBracketsUses) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(3);
  RegId C = B.createBinImm(Opcode::AddI, A, 4);
  B.createRet(C);
  F.recomputeCFG();
  ExecResult Before = interpret(F);
  std::vector<RegId> Temps = insertSpillCode(F, A);
  EXPECT_EQ(F.NumSpillSlots, 1u);
  EXPECT_EQ(Temps.size(), 2u); // One def temp, one use temp.
  EXPECT_EQ(F.numSpillInsts(), 2u);
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

/// Allocation soundness + semantic preservation over random programs and
/// register counts.
class GraphColoringRandom
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(GraphColoringRandom, PreservesSemantics) {
  auto [Seed, K] = GetParam();
  Function F = pressureProgram(static_cast<uint64_t>(Seed) * 77 + 1, 8);
  ExecResult Before = interpret(F);
  AllocResult R = allocateGraphColoring(F, K);
  ASSERT_TRUE(R.Success);
  EXPECT_TRUE(allocationIsSound(F, K));
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GraphColoringRandom,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(6u, 8u, 12u, 16u)));

//===----------------------------------------------------------------------===//
// IRC worklist invariants (self-check instrumentation)
//===----------------------------------------------------------------------===//

// With the self-check enabled, every worklist step of the IRC core
// validates its structural invariants: each node sits in exactly one of
// {simplify, freeze, spill, select stack, coalesced, colored}; worklist
// members' cached degree equals their live adjacency count; spill-worklist
// members have significant (>= K) degree. A violation would mean the flat
// bitset/CSR rework broke the George-Appel worklist discipline.
TEST(GraphColoring, WorklistInvariantsHoldAcrossCorpus) {
  setIrcSelfCheck(true);
  size_t Before = ircSelfCheckViolations();
  for (uint64_t Seed : {3u, 17u, 42u, 99u}) {
    for (unsigned Pool : {3u, 8u, 14u}) {
      Function F = pressureProgram(Seed, Pool);
      F.recomputeCFG();
      AllocResult R = allocateGraphColoring(F, 8);
      EXPECT_TRUE(R.Success);
      EXPECT_TRUE(allocationIsSound(F, 8));
    }
  }
  setIrcSelfCheck(false);
  EXPECT_EQ(ircSelfCheckViolations() - Before, 0u)
      << "IRC structural invariants violated during allocation";
}

// Tight-K runs force spills and multiple rounds; the invariants must hold
// through spill-code insertion and rebuilds too.
TEST(GraphColoring, WorklistInvariantsHoldUnderSpillPressure) {
  setIrcSelfCheck(true);
  size_t Before = ircSelfCheckViolations();
  for (uint64_t Seed : {7u, 23u}) {
    Function F = pressureProgram(Seed, 16);
    F.recomputeCFG();
    AllocResult R = allocateGraphColoring(F, 4);
    EXPECT_TRUE(R.Success);
    EXPECT_GT(R.SpilledRanges, 0u);
    EXPECT_TRUE(allocationIsSound(F, 4));
  }
  setIrcSelfCheck(false);
  EXPECT_EQ(ircSelfCheckViolations() - Before, 0u)
      << "IRC structural invariants violated under spill pressure";
}
