//===- tests/interp_test.cpp - Interpreter semantics tests ----------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// Builds a single-block function computing `Body` and returning a reg.
template <typename BodyT> Function straightLine(BodyT Body) {
  Function F;
  F.Name = "t";
  F.MemWords = 16;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId Result = Body(B);
  B.createRet(Result);
  F.recomputeCFG();
  return F;
}

} // namespace

TEST(Interp, Arithmetic) {
  Function F = straightLine([](IRBuilder &B) {
    RegId A = B.createMovImm(20);
    RegId C = B.createMovImm(22);
    return B.createBin(Opcode::Add, A, C);
  });
  EXPECT_EQ(interpret(F).ReturnValue, 42);
}

TEST(Interp, SubMulShift) {
  Function F = straightLine([](IRBuilder &B) {
    RegId A = B.createMovImm(7);
    RegId C = B.createMovImm(3);
    RegId D = B.createBin(Opcode::Sub, A, C);  // 4
    RegId E = B.createBin(Opcode::Mul, D, A);  // 28
    return B.createBinImm(Opcode::ShlI, E, 1); // 56
  });
  EXPECT_EQ(interpret(F).ReturnValue, 56);
}

TEST(Interp, DivisionByZeroIsZero) {
  Function F = straightLine([](IRBuilder &B) {
    RegId A = B.createMovImm(5);
    RegId Z = B.createMovImm(0);
    return B.createBin(Opcode::DivS, A, Z);
  });
  EXPECT_EQ(interpret(F).ReturnValue, 0);
}

TEST(Interp, RemainderOverflowGuard) {
  Function F = straightLine([](IRBuilder &B) {
    RegId A = B.createMovImm(INT64_MIN);
    RegId M = B.createMovImm(-1);
    return B.createBin(Opcode::Rem, A, M);
  });
  EXPECT_EQ(interpret(F).ReturnValue, 0);
}

TEST(Interp, Comparisons) {
  Function F = straightLine([](IRBuilder &B) {
    RegId A = B.createMovImm(3);
    RegId C = B.createMovImm(4);
    RegId Lt = B.createBin(Opcode::CmpLT, A, C); // 1
    RegId Eq = B.createBin(Opcode::CmpEQ, A, C); // 0
    RegId Le = B.createBin(Opcode::CmpLE, C, C); // 1
    RegId S = B.createBin(Opcode::Add, Lt, Eq);
    return B.createBin(Opcode::Add, S, Le); // 2
  });
  EXPECT_EQ(interpret(F).ReturnValue, 2);
}

TEST(Interp, LoadStoreRoundTrip) {
  Function F = straightLine([](IRBuilder &B) {
    RegId Base = B.createMovImm(3);
    RegId V = B.createMovImm(99);
    B.createStore(Base, 2, V); // mem[5] = 99.
    return B.createLoad(Base, 2);
  });
  EXPECT_EQ(interpret(F).ReturnValue, 99);
}

TEST(Interp, LoadWrapsAddress) {
  Function F = straightLine([](IRBuilder &B) {
    RegId Base = B.createMovImm(-1); // Wraps to MemWords - 1.
    RegId V = B.createMovImm(7);
    B.createStore(Base, 0, V);
    return B.createLoad(B.createMovImm(15), 0); // MemWords = 16.
  });
  EXPECT_EQ(interpret(F).ReturnValue, 7);
}

TEST(Interp, SpillSlotRoundTrip) {
  Function F;
  F.MemWords = 4;
  F.NumSpillSlots = 2;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId V = B.createMovImm(1234);
  Instruction St;
  St.Op = Opcode::SpillSt;
  St.Src1 = V;
  St.Imm = 1;
  F.Blocks[0].Insts.push_back(St);
  Instruction Ld;
  Ld.Op = Opcode::SpillLd;
  Ld.Dst = F.makeReg();
  Ld.Imm = 1;
  F.Blocks[0].Insts.push_back(Ld);
  B.createRet(Ld.Dst);
  F.recomputeCFG();
  EXPECT_EQ(interpret(F).ReturnValue, 1234);
}

TEST(Interp, LoopSumsCorrectly) {
  // sum = 0; for (i = 10; i != 0; --i) sum += i;  -> 55.
  Function F;
  F.MemWords = 4;
  uint32_t Entry = F.makeBlock();
  uint32_t Body = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId Sum = B.createMovImm(0);
  RegId I = B.createMovImm(10);
  B.createJmp(Body);
  B.setBlock(Body);
  B.createBinTo(Opcode::Add, Sum, Sum, I);
  B.createBinImmTo(Opcode::AddI, I, I, -1);
  B.createBr(I, Body, Exit);
  B.setBlock(Exit);
  B.createRet(Sum);
  F.recomputeCFG();
  ExecResult R = interpret(F);
  EXPECT_EQ(R.ReturnValue, 55);
  EXPECT_FALSE(R.HitStepLimit);
}

TEST(Interp, StepLimitStopsRunaway) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  B.createMovImm(1);
  B.createJmp(0); // Infinite loop.
  F.recomputeCFG();
  ExecResult R = interpret(F, 1000);
  EXPECT_TRUE(R.HitStepLimit);
  EXPECT_GE(R.DynInsts, 1000u);
}

TEST(Interp, SetLastRegIsArchitecturallyInert) {
  Function Plain = straightLine([](IRBuilder &B) {
    RegId A = B.createMovImm(5);
    return B.createBinImm(Opcode::MulI, A, 3);
  });
  Function WithSlr = Plain;
  Instruction Slr;
  Slr.Op = Opcode::SetLastReg;
  Slr.Imm = 0;
  WithSlr.Blocks[0].Insts.insert(WithSlr.Blocks[0].Insts.begin(), Slr);
  ExecResult A = interpret(Plain), B = interpret(WithSlr);
  EXPECT_EQ(fingerprint(A), fingerprint(B));
  EXPECT_EQ(A.DynInsts, B.DynInsts); // slr not counted as executed.
}

TEST(Interp, TraceEventsMatchExecution) {
  Function F = straightLine([](IRBuilder &B) {
    RegId A = B.createMovImm(1);
    RegId C = B.createLoad(A, 0);
    return B.createBin(Opcode::Add, A, C);
  });
  std::vector<Opcode> Seen;
  uint64_t LoadAddr = ~0ull;
  interpret(F, 1000, [&](const TraceEvent &Ev) {
    Seen.push_back(Ev.Inst->Op);
    if (Ev.Inst->Op == Opcode::Load)
      LoadAddr = Ev.MemAddr;
  });
  ASSERT_EQ(Seen.size(), 4u);
  EXPECT_EQ(Seen[1], Opcode::Load);
  EXPECT_EQ(LoadAddr, 1u);
  EXPECT_EQ(Seen[3], Opcode::Ret);
}

TEST(Interp, BranchTakenFlagsFallthrough) {
  // bb0 -> br to bb1 (fallthrough) or bb2 (taken).
  Function F;
  F.MemWords = 4;
  uint32_t B0 = F.makeBlock();
  uint32_t B1 = F.makeBlock();
  uint32_t B2 = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  RegId Z = B.createMovImm(0);
  B.createBr(Z, B2, B1); // Condition false -> Target1 = bb1 = fallthrough.
  B.setBlock(B1);
  B.createRet(Z);
  B.setBlock(B2);
  B.createRet(Z);
  F.recomputeCFG();
  bool SawBranch = false, Taken = true;
  interpret(F, 100, [&](const TraceEvent &Ev) {
    if (Ev.Inst->Op == Opcode::Br) {
      SawBranch = true;
      Taken = Ev.BranchTaken;
    }
  });
  EXPECT_TRUE(SawBranch);
  EXPECT_FALSE(Taken); // Fell through to the next block in layout.
}

TEST(Interp, FingerprintSensitiveToMemory) {
  Function A = straightLine([](IRBuilder &B) {
    RegId V = B.createMovImm(1);
    B.createStore(V, 0, V);
    return V;
  });
  Function C = straightLine([](IRBuilder &B) {
    RegId V = B.createMovImm(1);
    B.createStore(V, 1, V); // Different address.
    return V;
  });
  EXPECT_NE(fingerprint(interpret(A)), fingerprint(interpret(C)));
}
