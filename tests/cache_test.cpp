//===- tests/cache_test.cpp - Content-addressed result cache tests --------===//
//
// Covers the ResultCache tentpole: key derivation (content addressing,
// config sensitivity, the deliberate Remap.Jobs exclusion), payload
// round trips, the sharded LRU memory tier, the dra-cache-v1 disk tier's
// corruption handling (truncate / bit-flip / version-bump must read as
// quarantined misses, never as errors or wrong results), hit
// verification, and the "cached == fresh" invariant through runPipeline
// and a parallel BatchCompiler.
//
//===----------------------------------------------------------------------===//

#include "driver/ResultCache.h"

#include "core/Features.h"
#include "core/Portfolio.h"
#include "driver/BatchCompiler.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace dra;
namespace fs = std::filesystem;

namespace {

/// Fresh empty scratch directory under the system temp dir.
std::string freshDir(const std::string &Name) {
  fs::path P = fs::temp_directory_path() / "dra_cache_test" / Name;
  fs::remove_all(P);
  fs::create_directories(P);
  return P.string();
}

/// Small deterministic program with some register pressure.
Function testProgram(uint64_t Seed) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = 6;
  P.TopStatements = 6;
  P.MaxLoopDepth = 1;
  P.BodyStatements = 4;
  P.ExprWidth = 3;
  P.TripMin = 2;
  P.TripMax = 4;
  P.OuterTrip = 3;
  P.MemWords = 32;
  P.LoopPct = 20;
  P.IfPct = 15;
  P.MemPct = 20;
  P.MovePct = 15;
  return generateProgram("cache" + std::to_string(Seed), P);
}

/// Tiny straight-line function (sub-kilobyte payload) for LRU tests.
Function tinyProgram(int64_t Tag) {
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  B.createMovImmTo(0, Tag);
  B.createRet(0);
  F.recomputeCFG();
  return F;
}

PipelineConfig smallConfig(Scheme S = Scheme::Coalesce) {
  PipelineConfig C;
  C.S = S;
  C.Remap.NumStarts = 10;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Key derivation
//===----------------------------------------------------------------------===//

TEST(CacheKey, ContentAddressedIgnoresNameAndRemapJobs) {
  Function A = testProgram(1);
  Function B = A;
  B.Name = "completely-different-name";
  PipelineConfig C = smallConfig();
  EXPECT_EQ(ResultCache::cacheKey(A, C), ResultCache::cacheKey(B, C));

  // Remap.Jobs is a wall-clock knob with bit-identical results; caching
  // must not fragment on it.
  PipelineConfig CJ = C;
  CJ.Remap.Jobs = 8;
  EXPECT_EQ(ResultCache::cacheKey(A, C), ResultCache::cacheKey(A, CJ));
}

TEST(CacheKey, BodyAndConfigChangesChangeTheKey) {
  Function A = testProgram(1);
  PipelineConfig C = smallConfig();
  uint64_t Base = ResultCache::cacheKey(A, C);

  Function B = A;
  B.Blocks[0].Insts[0].Imm ^= 1;
  EXPECT_NE(ResultCache::cacheKey(B, C), Base);

  PipelineConfig C2 = C;
  C2.S = Scheme::Remap;
  EXPECT_NE(ResultCache::cacheKey(A, C2), Base);
  C2 = C;
  C2.Enc.DiffN -= 1;
  EXPECT_NE(ResultCache::cacheKey(A, C2), Base);
  C2 = C;
  C2.Remap.NumStarts += 1;
  EXPECT_NE(ResultCache::cacheKey(A, C2), Base);
  C2 = C;
  C2.Remap.Seed ^= 1;
  EXPECT_NE(ResultCache::cacheKey(A, C2), Base);
  C2 = C;
  C2.Coalesce.MaxSteps += 1;
  EXPECT_NE(ResultCache::cacheKey(A, C2), Base);
}

TEST(CacheKey, PortfolioConfigJoinsTheKeyButJobsDoesNot) {
  Function A = testProgram(1);
  PipelineConfig C = smallConfig();
  uint64_t Off = ResultCache::cacheKey(A, C);

  // Turning the race on is a different request.
  PipelineConfig Race = C;
  Race.Portfolio.Mode = PortfolioMode::Race;
  uint64_t RaceKey = ResultCache::cacheKey(A, Race);
  EXPECT_NE(RaceKey, Off);

  // Empty arms means defaultPortfolioArms(): spelling the default out
  // explicitly must hash identically, a different arm set must not.
  PipelineConfig Explicit = Race;
  Explicit.Portfolio.Arms = defaultPortfolioArms();
  EXPECT_EQ(ResultCache::cacheKey(A, Explicit), RaceKey);
  PipelineConfig OtherArms = Race;
  OtherArms.Portfolio.Arms = {{Scheme::Remap, 0}, {Scheme::Select, 0}};
  EXPECT_NE(ResultCache::cacheKey(A, OtherArms), RaceKey);
  PipelineConfig OtherStarts = Race;
  OtherStarts.Portfolio.Arms = defaultPortfolioArms();
  OtherStarts.Portfolio.Arms[2].RemapStarts = 50;
  EXPECT_NE(ResultCache::cacheKey(A, OtherStarts), RaceKey);

  // Jobs is a wall-clock knob with bit-identical results — excluded,
  // like Remap.Jobs, so a 1-worker and an 8-worker race share entries.
  PipelineConfig Jobs = Race;
  Jobs.Portfolio.Jobs = 8;
  EXPECT_EQ(ResultCache::cacheKey(A, Jobs), RaceKey);

  // Choose mode adds the chooser knobs: mode, threshold, and the loaded
  // table's content fingerprint all shift the key.
  PipelineConfig Choose = Race;
  Choose.Portfolio.Mode = PortfolioMode::Choose;
  uint64_t ChooseKey = ResultCache::cacheKey(A, Choose);
  EXPECT_NE(ChooseKey, RaceKey);
  PipelineConfig Conf = Choose;
  Conf.Portfolio.MinConfidence = 0.5;
  EXPECT_NE(ResultCache::cacheKey(A, Conf), ChooseKey);

  DecisionTable T;
  T.Features = featureNames();
  T.Arms = defaultPortfolioArms();
  DecisionNode Leaf;
  Leaf.Feature = -1;
  Leaf.Arm = 0;
  Leaf.Confidence = 1.0;
  T.Nodes.push_back(Leaf);
  PipelineConfig WithTable = Choose;
  WithTable.Portfolio.Table = &T;
  uint64_t TableKey = ResultCache::cacheKey(A, WithTable);
  EXPECT_NE(TableKey, ChooseKey);
  DecisionTable T2 = T;
  T2.Nodes[0].Arm = 1;
  PipelineConfig WithTable2 = Choose;
  WithTable2.Portfolio.Table = &T2;
  EXPECT_NE(ResultCache::cacheKey(A, WithTable2), TableKey);
}

//===----------------------------------------------------------------------===//
// Payload round trip
//===----------------------------------------------------------------------===//

TEST(CachePayload, SerializeRoundTripsPipelineResult) {
  Function P = testProgram(2);
  PipelineResult R = runPipeline(P, smallConfig());

  std::string Payload = ResultCache::serializeResult(R);
  PipelineResult Out;
  ASSERT_TRUE(ResultCache::deserializeResult(Payload, Out));

  // The machine code and every stage counter must survive; the strongest
  // check is that re-serialization is byte-identical (what the verify
  // pass compares).
  EXPECT_EQ(ResultCache::serializeResult(Out), Payload);
  Out.F.Name = R.F.Name; // Names travel outside the payload.
  EXPECT_EQ(printFunction(Out.F), printFunction(R.F));
  EXPECT_EQ(Out.NumInsts, R.NumInsts);
  EXPECT_EQ(Out.CodeBytes, R.CodeBytes);
  EXPECT_EQ(Out.SetLastRegs, R.SetLastRegs);
  EXPECT_EQ(Out.Remap.Perm, R.Remap.Perm);
  EXPECT_EQ(Out.Remap.CostAfter, R.Remap.CostAfter);
  EXPECT_EQ(Out.Coalesce.FinalAdjCost, R.Coalesce.FinalAdjCost);
  EXPECT_EQ(Out.Coalesce.OracleCalls, R.Coalesce.OracleCalls);
  EXPECT_EQ(Out.DiffEncoded, R.DiffEncoded);
}

TEST(CachePayload, DeserializeRejectsMalformedInput) {
  Function P = testProgram(2);
  PipelineResult R = runPipeline(P, smallConfig());
  std::string Good = ResultCache::serializeResult(R);

  PipelineResult Out;
  EXPECT_FALSE(ResultCache::deserializeResult("", Out));
  EXPECT_FALSE(ResultCache::deserializeResult("garbage", Out));
  // Every truncation point must fail cleanly, never crash.
  for (size_t Len : {Good.size() / 4, Good.size() / 2, Good.size() - 4})
    EXPECT_FALSE(ResultCache::deserializeResult(Good.substr(0, Len), Out));
  // A non-numeric token in the middle.
  std::string Bad = Good;
  Bad.replace(Bad.find("counts ") + 7, 1, "x");
  EXPECT_FALSE(ResultCache::deserializeResult(Bad, Out));
}

//===----------------------------------------------------------------------===//
// Memory tier
//===----------------------------------------------------------------------===//

TEST(CacheMemTier, HitReplaysBitIdenticalResult) {
  Function P = testProgram(3);
  ResultCache Cache;
  PipelineConfig C = smallConfig();
  C.Cache = &Cache;

  PipelineResult Cold = runPipeline(P, C);
  PipelineResult Warm = runPipeline(P, C);
  ResultCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemHits, 1u);
  EXPECT_EQ(S.Stores, 1u);

  EXPECT_EQ(printFunction(Warm.F), printFunction(Cold.F));
  EXPECT_EQ(ResultCache::serializeResult(Warm),
            ResultCache::serializeResult(Cold));
  EXPECT_EQ(fingerprint(interpret(Warm.F)), fingerprint(interpret(Cold.F)));
}

TEST(CacheMemTier, LruEvictsWithinByteBudget) {
  ResultCacheOptions O;
  O.Shards = 1;
  O.MemBudgetBytes = 2048;
  ResultCache Cache(O);
  PipelineConfig C = smallConfig(Scheme::Remap);

  // Tiny handcrafted results so several fit before the budget trips.
  for (int I = 0; I != 16; ++I) {
    Function F = tinyProgram(I);
    PipelineResult R;
    R.F = F;
    Cache.store(F, C, R);
  }
  ResultCacheStats S = Cache.stats();
  EXPECT_EQ(S.Stores, 16u);
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Bytes, O.MemBudgetBytes);

  // The most recent key must still be resident; the oldest must be gone.
  PipelineResult Out;
  EXPECT_TRUE(Cache.lookup(tinyProgram(15), C, Out));
  EXPECT_FALSE(Cache.lookup(tinyProgram(0), C, Out));
}

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

TEST(CacheDiskTier, PersistsAcrossInstances) {
  std::string Dir = freshDir("persist");
  Function P = testProgram(4);
  PipelineConfig C = smallConfig();

  ResultCacheOptions O;
  O.DiskDir = Dir;
  PipelineResult Cold;
  {
    ResultCache Writer(O);
    C.Cache = &Writer;
    Cold = runPipeline(P, C);
    EXPECT_EQ(Writer.stats().Stores, 1u);
  }
  ResultCache Reader(O);
  C.Cache = &Reader;
  PipelineResult Warm = runPipeline(P, C);
  ResultCacheStats S = Reader.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(printFunction(Warm.F), printFunction(Cold.F));

  // The disk hit was promoted: a second warm lookup is a memory hit.
  runPipeline(P, C);
  EXPECT_EQ(Reader.stats().MemHits, 1u);
}

TEST(CacheDiskTier, CorruptEntriesQuarantineAsMisses) {
  std::string Dir = freshDir("corrupt");
  PipelineConfig C = smallConfig();
  std::vector<Function> Programs = {testProgram(10), testProgram(11),
                                    testProgram(12)};
  std::vector<PipelineResult> Cold;
  {
    ResultCacheOptions O;
    O.DiskDir = Dir;
    ResultCache Writer(O);
    C.Cache = &Writer;
    for (const Function &P : Programs)
      Cold.push_back(runPipeline(P, C));
  }

  // Corrupt all three stored entries three different ways.
  std::string Paths[3];
  for (int I = 0; I != 3; ++I)
    Paths[I] = ResultCache::entryPath(Dir, ResultCache::cacheKey(
                                               Programs[static_cast<size_t>(I)], C));
  // 1: truncate mid-payload.
  fs::resize_file(Paths[0], fs::file_size(Paths[0]) / 2);
  // 2: flip one payload byte (header intact, checksum now wrong).
  {
    std::fstream F(Paths[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(-10, std::ios::end);
    char B;
    F.get(B);
    F.seekp(-10, std::ios::end);
    F.put(static_cast<char>(B ^ 0x40));
  }
  // 3: bump the format version line.
  {
    std::ifstream In(Paths[2], std::ios::binary);
    std::string Data((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>{});
    In.close();
    Data.replace(0, Data.find('\n'), "dra-cache-v999");
    std::ofstream Out(Paths[2], std::ios::binary | std::ios::trunc);
    Out << Data;
  }

  // Every lookup must read as a miss (then recompile correctly), never
  // crash, never serve a wrong result.
  ResultCacheOptions O;
  O.DiskDir = Dir;
  ResultCache Cache(O);
  C.Cache = &Cache;
  for (size_t I = 0; I != Programs.size(); ++I) {
    PipelineResult R = runPipeline(Programs[I], C);
    EXPECT_EQ(printFunction(R.F), printFunction(Cold[I].F));
  }
  ResultCacheStats S = Cache.stats();
  EXPECT_EQ(S.LoadErrors, 3u);
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 0u);

  // The bad files moved to quarantine/ and were re-stored cleanly.
  size_t Quarantined = 0;
  for (const auto &E : fs::directory_iterator(fs::path(Dir) / "quarantine"))
    Quarantined += E.is_regular_file();
  EXPECT_EQ(Quarantined, 3u);
  ResultCache Fresh(O);
  C.Cache = &Fresh;
  for (const Function &P : Programs)
    runPipeline(P, C);
  EXPECT_EQ(Fresh.stats().DiskHits, 3u);
  EXPECT_EQ(Fresh.stats().LoadErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Hit verification
//===----------------------------------------------------------------------===//

TEST(CacheVerify, CleanHitsVerifyWithZeroMismatches) {
  Function P = testProgram(5);
  ResultCacheOptions O;
  O.VerifyFraction = 1.0;
  ResultCache Cache(O);
  PipelineConfig C = smallConfig();
  C.Cache = &Cache;

  PipelineResult Cold = runPipeline(P, C);
  PipelineResult Warm = runPipeline(P, C); // Hit hijacked into a recompile.
  ResultCacheStats S = Cache.stats();
  EXPECT_EQ(S.VerifyRecompiles, 1u);
  EXPECT_EQ(S.VerifyMismatches, 0u);
  EXPECT_EQ(S.Hits, 0u); // The verified hit is accounted as a miss.
  EXPECT_EQ(printFunction(Warm.F), printFunction(Cold.F));
}

TEST(CacheVerify, DetectsTamperedEntry) {
  Function P = testProgram(6);
  PipelineConfig C = smallConfig();
  PipelineResult R = runPipeline(P, C);

  // Plant a subtly-wrong result under the true key (valid header and
  // checksum — only byte-compare verification can catch this).
  std::string Dir = freshDir("tamper");
  ResultCacheOptions O;
  O.DiskDir = Dir;
  {
    ResultCache Writer(O);
    PipelineResult Tampered = R;
    Tampered.CodeBytes += 2;
    Writer.store(P, C, Tampered);
  }

  O.VerifyFraction = 1.0;
  ResultCache Cache(O);
  C.Cache = &Cache;
  PipelineResult Out = runPipeline(P, C);
  ResultCacheStats S = Cache.stats();
  EXPECT_EQ(S.VerifyRecompiles, 1u);
  EXPECT_EQ(S.VerifyMismatches, 1u);
  // The caller still gets the fresh (correct) result.
  EXPECT_EQ(Out.CodeBytes, R.CodeBytes);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(CacheMetrics, FlushEmitsEverySeriesEvenAtZero) {
  ResultCache Cache;
  MetricsRegistry Reg;
  Cache.flushMetrics(Reg);
  const char *Expected[] = {
      "cache.hits",        "cache.hits_mem",   "cache.hits_disk",
      "cache.misses",      "cache.stores",     "cache.evictions",
      "cache.load_errors", "cache.verify_recompiles",
      "cache.verify_mismatches"};
  auto Counters = Reg.counters();
  for (const char *Name : Expected) {
    bool Found = false;
    for (const auto &CS : Counters)
      if (CS.Name == Name) {
        Found = true;
        EXPECT_EQ(CS.Value, 0.0) << Name;
      }
    EXPECT_TRUE(Found) << Name << " missing — dra-stats --fail-on gates "
                                  "would reject the file";
  }
}

TEST(CacheMetrics, HitLatencyHistogramRecorded) {
  Function P = testProgram(7);
  ResultCache Cache;
  MetricsRegistry Reg;
  Cache.setMetrics(&Reg);
  PipelineConfig C = smallConfig();
  C.Cache = &Cache;
  runPipeline(P, C);
  runPipeline(P, C);
  bool Found = false;
  for (const auto &H : Reg.histograms())
    if (H.Name == "cache.hit_us") {
      Found = true;
      EXPECT_EQ(H.Count, 1u);
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Portfolio (scheme=auto) caching
//===----------------------------------------------------------------------===//

TEST(CachePortfolio, WarmRaceHitIsBitIdenticalAndTierLabeled) {
  Function P = testProgram(8);
  ResultCache Cache;
  MetricsRegistry Reg;
  Cache.setMetrics(&Reg);
  PipelineConfig C = smallConfig();
  C.Portfolio.Mode = PortfolioMode::Race;
  C.Portfolio.Jobs = 2;
  C.Cache = &Cache;

  PipelineResult Cold = runPipeline(P, C);
  PipelineResult Warm = runPipeline(P, C);
  ResultCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemHits, 1u);
  // One cold race stores twice: under the portfolio key and under the
  // winning arm's concrete single-scheme key.
  EXPECT_EQ(S.Stores, 2u);
  EXPECT_EQ(ResultCache::serializeResult(Warm),
            ResultCache::serializeResult(Cold));

  // The warm hit is tier-labeled in the latency histogram.
  bool Found = false;
  for (const auto &H : Reg.histograms())
    if (H.Name == "cache.hit_us")
      for (const auto &[K, V] : H.Labels.entries())
        if (K == "tier" && V == "mem")
          Found = true;
  EXPECT_TRUE(Found) << "warm auto hit missing cache.hit_us{tier=mem}";
}

TEST(CachePortfolio, WinnerDoubleStoreServesDirectSchemeRequests) {
  Function P = testProgram(9);
  ResultCache Cache;
  PipelineConfig C = smallConfig();
  C.Portfolio.Mode = PortfolioMode::Race;
  C.Cache = &Cache;

  PortfolioOutcome Out;
  PipelineConfig WinnerCfg;
  // Race once through runPipeline (which does the double store), and
  // learn the winner via a cache-less rerun of the same race.
  PipelineResult Raced = runPipeline(P, C);
  PipelineConfig NoCache = C;
  NoCache.Cache = nullptr;
  runPortfolio(P, NoCache, &WinnerCfg, &Out);
  ASSERT_EQ(Cache.stats().Stores, 2u);

  // A direct request for the winning scheme (portfolio off) must hit the
  // stored entry, not recompile — and replay the raced bytes.
  WinnerCfg.Cache = &Cache;
  PipelineResult Direct = runPipeline(P, WinnerCfg);
  EXPECT_EQ(Cache.stats().MemHits, 1u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(ResultCache::serializeResult(Direct),
            ResultCache::serializeResult(Raced));

  // A *losing* arm's key must not have been populated.
  std::vector<PortfolioArm> Arms = resolvedPortfolioArms(C.Portfolio);
  unsigned DirectMisses = 0;
  for (size_t A = 0; A != Arms.size(); ++A) {
    if (A == Out.WinnerArm)
      continue;
    PipelineConfig AC = C;
    AC.Portfolio = PortfolioConfig();
    AC.S = Arms[A].S;
    if (Arms[A].RemapStarts != 0)
      AC.Remap.NumStarts = Arms[A].RemapStarts;
    PipelineResult R;
    if (!Cache.lookup(P, AC, R))
      ++DirectMisses;
  }
  EXPECT_EQ(DirectMisses, Arms.size() - 1);
}

//===----------------------------------------------------------------------===//
// Concurrent batch integration
//===----------------------------------------------------------------------===//

TEST(CacheBatch, WarmParallelBatchIsBitIdenticalToCold) {
  std::vector<Function> Programs;
  for (uint64_t S = 20; S != 28; ++S)
    Programs.push_back(testProgram(S));
  PipelineConfig C = smallConfig();

  ResultCache Cache;
  BatchOptions BO;
  BO.Jobs = 4;
  BO.Cache = &Cache;
  BatchCompiler Batch(BO);

  std::vector<PipelineResult> Cold = Batch.run(Programs, C);
  EXPECT_EQ(Cache.stats().Misses, Programs.size());
  std::vector<PipelineResult> Warm = Batch.run(Programs, C);
  EXPECT_EQ(Cache.stats().Hits, Programs.size());

  // Warm parallel results must match cold ones entry for entry, and both
  // must match an uncached serial reference.
  BatchCompiler Ref{BatchOptions{}};
  std::vector<PipelineResult> Fresh = Ref.run(Programs, C);
  for (size_t I = 0; I != Programs.size(); ++I) {
    EXPECT_EQ(ResultCache::serializeResult(Warm[I]),
              ResultCache::serializeResult(Cold[I]));
    EXPECT_EQ(printFunction(Warm[I].F), printFunction(Fresh[I].F));
  }
}
