//===- tests/sim_test.cpp - Cache and pipeline simulator tests ------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "sim/Cache.h"
#include "sim/LowEndSim.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(Cache, HitAfterFill) {
  Cache C(1024, 32, 2);
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(31)); // Same line.
  EXPECT_FALSE(C.access(32)); // Next line.
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(Cache, LruEviction) {
  // 2-way, 32B lines, 2 sets (128 bytes): lines 0, 2, 4 map to set 0.
  Cache C(128, 32, 2);
  EXPECT_FALSE(C.access(0));       // Fill way 0.
  EXPECT_FALSE(C.access(2 * 32));  // Fill way 1.
  EXPECT_TRUE(C.access(0));        // Hit; 2*32 becomes LRU.
  EXPECT_FALSE(C.access(4 * 32));  // Evicts 2*32.
  EXPECT_FALSE(C.access(2 * 32));  // Miss again.
  EXPECT_TRUE(C.access(0) || true); // 0 may or may not survive; count only.
}

TEST(Cache, SetsAreIndependent) {
  Cache C(128, 32, 2);
  EXPECT_FALSE(C.access(0));  // Set 0.
  EXPECT_FALSE(C.access(32)); // Set 1.
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(32));
}

TEST(Cache, StatsReset) {
  Cache C(1024, 32, 2);
  C.access(0);
  C.resetStats();
  EXPECT_EQ(C.hits(), 0u);
  EXPECT_EQ(C.misses(), 0u);
}

namespace {

Function tinyLoop(unsigned Trip, bool WithSpill, bool WithSlr) {
  Function F;
  F.MemWords = 64;
  F.NumSpillSlots = WithSpill ? 1 : 0;
  uint32_t Entry = F.makeBlock();
  uint32_t Body = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId Sum = B.createMovImm(0);
  RegId I = B.createMovImm(Trip);
  B.createJmp(Body);
  B.setBlock(Body);
  if (WithSlr) {
    Instruction Slr;
    Slr.Op = Opcode::SetLastReg;
    Slr.Imm = 0;
    F.Blocks[Body].Insts.push_back(Slr);
  }
  B.createBinTo(Opcode::Add, Sum, Sum, I);
  if (WithSpill) {
    Instruction St;
    St.Op = Opcode::SpillSt;
    St.Src1 = Sum;
    St.Imm = 0;
    F.Blocks[Body].Insts.push_back(St);
    Instruction Ld;
    Ld.Op = Opcode::SpillLd;
    Ld.Dst = Sum;
    Ld.Imm = 0;
    F.Blocks[Body].Insts.push_back(Ld);
  }
  B.createBinImmTo(Opcode::AddI, I, I, -1);
  B.createBr(I, Body, Exit);
  B.setBlock(Exit);
  B.createRet(Sum);
  F.recomputeCFG();
  return F;
}

} // namespace

TEST(LowEndSim, CyclesAtLeastInstructions) {
  Function F = tinyLoop(100, false, false);
  SimResult R = simulate(F);
  EXPECT_GE(R.Cycles, R.DynInsts);
  EXPECT_GT(R.DynInsts, 300u);
  EXPECT_FALSE(R.HitStepLimit);
}

TEST(LowEndSim, SpillsCostCycles) {
  Function Plain = tinyLoop(500, false, false);
  Function Spilled = tinyLoop(500, true, false);
  SimResult A = simulate(Plain);
  SimResult B = simulate(Spilled);
  EXPECT_GT(B.Cycles, A.Cycles);
  EXPECT_EQ(B.SpillAccesses, 1000u); // One store + one load per iteration.
  EXPECT_EQ(A.SpillAccesses, 0u);
}

TEST(LowEndSim, SetLastRegCostsOneSlotPerDecode) {
  Function Plain = tinyLoop(500, false, false);
  Function WithSlr = tinyLoop(500, false, true);
  LowEndMachine M;
  M.SlrCostPolicy = LowEndMachine::SlrCost::Full;
  SimResult A = simulate(Plain, M);
  SimResult B = simulate(WithSlr, M);
  EXPECT_EQ(B.SlrSlots, 500u);
  EXPECT_EQ(B.DynInsts, A.DynInsts); // Not architecturally executed.
  // Each slr costs at least its fetch/decode cycle.
  EXPECT_GE(B.Cycles, A.Cycles + 500);
}

TEST(LowEndSim, DualFetchAbsorbsIsolatedSlr) {
  // An isolated slr per loop iteration is hidden by the dual-fetch front
  // end; only back-to-back slrs stall.
  Function Plain = tinyLoop(500, false, false);
  Function WithSlr = tinyLoop(500, false, true);
  LowEndMachine M;
  M.SlrCostPolicy = LowEndMachine::SlrCost::Absorbed;
  SimResult A = simulate(Plain, M);
  SimResult B = simulate(WithSlr, M);
  EXPECT_EQ(B.SlrSlots, 500u);
  // The only extra cycles may come from I-cache effects of the larger
  // loop body, not from the slr decode slots themselves.
  EXPECT_LT(B.Cycles, A.Cycles + 500);
}

TEST(LowEndSim, ICachePressureFromCodeSize) {
  // A program larger than the I-cache must miss more than a tiny loop.
  ProgramProfile P;
  P.Seed = 31;
  P.TopStatements = 14;
  P.OuterTrip = 6;
  Function Big = generateProgram("big", P);
  LowEndMachine M;
  SimResult A = simulate(tinyLoop(200, false, false), M);
  SimResult B = simulate(Big, M);
  EXPECT_GT(B.ICacheMisses, A.ICacheMisses);
}

TEST(LowEndSim, FingerprintMatchesInterpreter) {
  Function F = tinyLoop(50, true, true);
  SimResult S = simulate(F);
  ExecResult E = interpret(F);
  EXPECT_EQ(S.Fingerprint, fingerprint(E));
}

TEST(LowEndSim, TakenBranchesCost) {
  // Same dynamic instruction count, different taken-branch counts: a loop
  // whose Br falls through to the next block vs. one that jumps back.
  LowEndMachine M;
  M.TakenBranchPenalty = 5;
  Function F = tinyLoop(300, false, false);
  SimResult A = simulate(F, M);
  M.TakenBranchPenalty = 0;
  SimResult B = simulate(F, M);
  EXPECT_GT(A.Cycles, B.Cycles);
}

TEST(LowEndSim, DCacheMissesTracked) {
  // Touch a strided range larger than the D-cache.
  Function F;
  F.MemWords = 4096;
  uint32_t Entry = F.makeBlock();
  uint32_t Body = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId Idx = B.createMovImm(4095);
  B.createJmp(Body);
  B.setBlock(Body);
  B.createStore(Idx, 0, Idx);
  B.createBinImmTo(Opcode::AddI, Idx, Idx, -16);
  RegId Cond = B.createBinImm(Opcode::ShrI, Idx, 63); // Sign bit.
  RegId NotDone = B.createBinImm(Opcode::XorI, Cond, 1);
  B.createBr(NotDone, Body, Exit);
  B.setBlock(Exit);
  B.createRet(Idx);
  F.recomputeCFG();
  SimResult R = simulate(F);
  EXPECT_GT(R.DCacheMisses, 30u);
}
