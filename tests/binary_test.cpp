//===- tests/binary_test.cpp - Bitstream + binary emitter tests -----------===//

#include "adt/BitStream.h"
#include "core/BinaryEmitter.h"
#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "regalloc/GraphColoring.h"
#include "workloads/MiBench.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(BitStream, RoundTripFields) {
  BitWriter W;
  W.write(0b101, 3);
  W.write(0, 0);
  W.write(0x1234, 16);
  W.write(1, 1);
  W.write(0xffffffffffffffffull, 64);
  BitReader R(W.bytes());
  EXPECT_EQ(R.read(3), 0b101u);
  EXPECT_EQ(R.read(0), 0u);
  EXPECT_EQ(R.read(16), 0x1234u);
  EXPECT_EQ(R.read(1), 1u);
  EXPECT_EQ(R.read(64), 0xffffffffffffffffull);
}

TEST(BitStream, BitCountAndAlignment) {
  BitWriter W;
  W.write(1, 5);
  EXPECT_EQ(W.bitCount(), 5u);
  W.alignToByte();
  EXPECT_EQ(W.bitCount(), 8u);
  EXPECT_EQ(W.bytes().size(), 1u);
}

TEST(BitStream, ReaderExhaustion) {
  BitWriter W;
  W.write(0x7, 3);
  BitReader R(W.bytes());
  EXPECT_FALSE(R.exhausted(8));
  R.read(8);
  EXPECT_TRUE(R.exhausted(1));
}

namespace {

Function allocatedProgram(uint64_t Seed, unsigned K) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = 5;
  P.TopStatements = 6;
  P.OuterTrip = 3;
  Function F = generateProgram("bin", P);
  allocateGraphColoring(F, K);
  return F;
}

bool sameRegisterFields(const Function &A, const Function &B) {
  if (A.Blocks.size() != B.Blocks.size())
    return false;
  for (size_t Blk = 0; Blk != A.Blocks.size(); ++Blk) {
    if (A.Blocks[Blk].Insts.size() != B.Blocks[Blk].Insts.size())
      return false;
    for (size_t I = 0; I != A.Blocks[Blk].Insts.size(); ++I) {
      const Instruction &IA = A.Blocks[Blk].Insts[I];
      const Instruction &IB = B.Blocks[Blk].Insts[I];
      if (IA.Op != IB.Op || IA.Imm != IB.Imm ||
          IA.Target0 != IB.Target0 || IA.Target1 != IB.Target1)
        return false;
      for (unsigned Fld = 0; Fld != IA.numRegFields(); ++Fld)
        if (IA.regField(Fld) != IB.regField(Fld))
          return false;
    }
  }
  return true;
}

} // namespace

TEST(BinaryEmitter, DirectRoundTrip) {
  Function F = allocatedProgram(3, 12);
  BinaryModule M = emitDirect(F);
  EXPECT_EQ(M.FieldWidth, 4u); // 12 registers need 4 bits.
  std::string Err;
  auto Decoded = decodeDirect(M, &Err);
  ASSERT_TRUE(Decoded.has_value()) << Err;
  EXPECT_TRUE(sameRegisterFields(F, *Decoded));
  EXPECT_EQ(fingerprint(interpret(*Decoded)), fingerprint(interpret(F)));
}

TEST(BinaryEmitter, DifferentialRoundTrip) {
  EncodingConfig C = lowEndConfig(12);
  Function F = allocatedProgram(5, 12);
  EncodedFunction E = encodeFunction(F, C);
  BinaryModule M = emitDifferential(E, C);
  EXPECT_EQ(M.FieldWidth, 3u);
  std::string Err;
  auto Decoded = decodeDifferential(M, C, &Err);
  ASSERT_TRUE(Decoded.has_value()) << Err;
  // The hardware-style decode must reconstruct every register number.
  EXPECT_TRUE(sameRegisterFields(E.Annotated, Decoded->Annotated));
}

TEST(BinaryEmitter, DifferentialFieldsAreNarrower) {
  // The paper's core claim, measured on real emitted bits: the same
  // program addressing 12 registers spends 3 bits per field
  // differentially vs 4 bits directly.
  EncodingConfig C = lowEndConfig(12);
  Function F = allocatedProgram(7, 12);
  BinaryModule Direct = emitDirect(F);
  EncodedFunction E = encodeFunction(F, C);
  BinaryModule Diff = emitDifferential(E, C);
  EXPECT_LT(Diff.RegFieldBits,
            Direct.RegFieldBits); // 3/4 of the field bits...
  EXPECT_EQ(Direct.RegFieldBits % 4, 0u);
  // ...although set_last_reg words eat some of it back.
  double FieldSavings = static_cast<double>(Direct.RegFieldBits) -
                        static_cast<double>(Diff.RegFieldBits);
  EXPECT_GT(FieldSavings, 0.0);
}

TEST(BinaryEmitter, TruncatedInputRejected) {
  Function F = allocatedProgram(9, 8);
  BinaryModule M = emitDirect(F);
  M.Bytes.resize(M.Bytes.size() / 2);
  std::string Err;
  EXPECT_FALSE(decodeDirect(M, &Err).has_value());
  EXPECT_FALSE(Err.empty());
}

TEST(BinaryEmitter, DeterministicBytes) {
  Function F = allocatedProgram(11, 12);
  BinaryModule A = emitDirect(F);
  BinaryModule B = emitDirect(F);
  EXPECT_EQ(A.Bytes, B.Bytes);
  EXPECT_EQ(A.BitCount, B.BitCount);
}

/// Differential binary round trip across seeds (covers forced blocks,
/// delayed slr, joins).
class BinaryDifferentialRandom : public ::testing::TestWithParam<int> {};

TEST_P(BinaryDifferentialRandom, HardwareDecodeMatches) {
  EncodingConfig C = lowEndConfig(12);
  Function F =
      allocatedProgram(static_cast<uint64_t>(GetParam()) * 67 + 29, 12);
  EncodedFunction E = encodeFunction(F, C);
  BinaryModule M = emitDifferential(E, C);
  std::string Err;
  auto Decoded = decodeDifferential(M, C, &Err);
  ASSERT_TRUE(Decoded.has_value()) << Err;
  EXPECT_TRUE(sameRegisterFields(E.Annotated, Decoded->Annotated));
  EXPECT_EQ(fingerprint(interpret(Decoded->Annotated)),
            fingerprint(interpret(F)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryDifferentialRandom,
                         ::testing::Range(0, 10));

/// Integration: a full differential pipeline result survives bit-exact
/// emission and hardware-style decode.
class BinaryPipelineIntegration
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BinaryPipelineIntegration, EmitDecodeMatchesPipelineOutput) {
  EncodingConfig C = lowEndConfig(12);
  PipelineConfig Cfg;
  Cfg.S = Scheme::Select;
  Cfg.Enc = C;
  Cfg.Remap.NumStarts = 20;
  Function Source = miBenchProgram(GetParam());
  PipelineResult R = runPipeline(Source, Cfg);

  // Re-encode the stripped function to get the code stream, emit to bits,
  // decode like the hardware, and compare against the pipeline's output.
  Function Stripped = stripSetLastReg(R.F);
  EncodedFunction E = encodeFunction(Stripped, C);
  BinaryModule M = emitDifferential(E, C);
  std::string Err;
  auto Decoded = decodeDifferential(M, C, &Err);
  ASSERT_TRUE(Decoded.has_value()) << Err;
  EXPECT_TRUE(sameRegisterFields(E.Annotated, Decoded->Annotated));
  EXPECT_EQ(fingerprint(interpret(Decoded->Annotated)),
            fingerprint(interpret(Source)));
}

INSTANTIATE_TEST_SUITE_P(Suite, BinaryPipelineIntegration,
                         ::testing::Values("crc32", "stringsearch",
                                           "dijkstra"));
