//===- tests/parser_test.cpp - Textual IR parser tests --------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "workloads/MiBench.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(Parser, ParsesSimpleLoop) {
  const char *Text = R"(
func sum regs=2 mem=4 spills=0
bb0:
  movi r0, 10
  movi r1, 0
  jmp bb1
bb1:
  add r1, r1, r0
  addi r0, r0, -1
  br r0, bb1, bb2
bb2:
  ret r1
)";
  std::string Err;
  auto F = parseFunction(Text, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  EXPECT_EQ(F->Name, "sum");
  EXPECT_EQ(F->NumRegs, 2u);
  EXPECT_EQ(F->Blocks.size(), 3u);
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err;
  EXPECT_EQ(interpret(*F).ReturnValue, 55);
}

TEST(Parser, ParsesAllInstructionForms) {
  const char *Text = R"(
func forms regs=6 mem=16 spills=2
bb0:
  movi r0, 3
  mov r1, r0
  add r2, r0, r1
  ; comment-only lines are ignored by the parser
  addi r3, r2, -7
  load r4, [r0 + 2]
  store [r0 + 2], r4
  spill.st slot1, r2
  spill.ld r5, slot1
  set_last_reg(3)
  set_last_reg(2, 1)
  cmplt r5, r2, r3
  ret r5
)";
  std::string Err;
  auto F = parseFunction(Text, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  const auto &Insts = F->Blocks[0].Insts;
  EXPECT_EQ(Insts[3].Op, Opcode::AddI);
  EXPECT_EQ(Insts[3].Imm, -7);
  EXPECT_EQ(Insts[4].Op, Opcode::Load);
  EXPECT_EQ(Insts[5].Op, Opcode::Store);
  EXPECT_EQ(Insts[6].Op, Opcode::SpillSt);
  EXPECT_EQ(Insts[6].Imm, 1);
  EXPECT_EQ(Insts[8].Op, Opcode::SetLastReg);
  EXPECT_EQ(Insts[8].Aux, 0u);
  EXPECT_EQ(Insts[9].Aux, 1u);
}

TEST(Parser, RejectsUnknownMnemonic) {
  std::string Err;
  auto F = parseFunction("func f regs=1 mem=1 spills=0\nbb0:\n  bogus r0\n",
                         &Err);
  EXPECT_FALSE(F.has_value());
  EXPECT_NE(Err.find("unknown mnemonic"), std::string::npos);
}

TEST(Parser, RejectsMissingHeader) {
  std::string Err;
  auto F = parseFunction("bb0:\n  ret r0\n", &Err);
  EXPECT_FALSE(F.has_value());
}

TEST(Parser, RejectsInstructionBeforeLabel) {
  std::string Err;
  auto F = parseFunction("func f regs=1 mem=1 spills=0\n  ret r0\n", &Err);
  EXPECT_FALSE(F.has_value());
  EXPECT_NE(Err.find("before any block"), std::string::npos);
}

TEST(Parser, ForwardBlockReferences) {
  const char *Text = R"(
func fwd regs=1 mem=1 spills=0
bb0:
  movi r0, 1
  jmp bb2
bb1:
  ret r0
bb2:
  jmp bb1
)";
  std::string Err;
  auto F = parseFunction(Text, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  EXPECT_EQ(F->Blocks.size(), 3u);
  EXPECT_EQ(interpret(*F).ReturnValue, 1);
}

/// Print -> parse -> print round trip over the benchmark suite.
class ParserRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ParserRoundTrip, PrintParsePrintIsStable) {
  Function F = miBenchProgram(GetParam());
  std::string Once = printFunction(F);
  std::string Err;
  auto Parsed = parseFunction(Once, &Err);
  ASSERT_TRUE(Parsed.has_value()) << Err;
  EXPECT_EQ(printFunction(*Parsed), Once);
  EXPECT_EQ(fingerprint(interpret(*Parsed)), fingerprint(interpret(F)));
}

INSTANTIATE_TEST_SUITE_P(Suite, ParserRoundTrip,
                         ::testing::Values("crc32", "dijkstra",
                                           "stringsearch", "qsort"));
