//===- tests/parser_test.cpp - Textual IR parser tests --------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "workloads/MiBench.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(Parser, ParsesSimpleLoop) {
  const char *Text = R"(
func sum regs=2 mem=4 spills=0
bb0:
  movi r0, 10
  movi r1, 0
  jmp bb1
bb1:
  add r1, r1, r0
  addi r0, r0, -1
  br r0, bb1, bb2
bb2:
  ret r1
)";
  std::string Err;
  auto F = parseFunction(Text, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  EXPECT_EQ(F->Name, "sum");
  EXPECT_EQ(F->NumRegs, 2u);
  EXPECT_EQ(F->Blocks.size(), 3u);
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err;
  EXPECT_EQ(interpret(*F).ReturnValue, 55);
}

TEST(Parser, ParsesAllInstructionForms) {
  const char *Text = R"(
func forms regs=6 mem=16 spills=2
bb0:
  movi r0, 3
  mov r1, r0
  add r2, r0, r1
  ; comment-only lines are ignored by the parser
  addi r3, r2, -7
  load r4, [r0 + 2]
  store [r0 + 2], r4
  spill.st slot1, r2
  spill.ld r5, slot1
  set_last_reg(3)
  set_last_reg(2, 1)
  cmplt r5, r2, r3
  ret r5
)";
  std::string Err;
  auto F = parseFunction(Text, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  const auto &Insts = F->Blocks[0].Insts;
  EXPECT_EQ(Insts[3].Op, Opcode::AddI);
  EXPECT_EQ(Insts[3].Imm, -7);
  EXPECT_EQ(Insts[4].Op, Opcode::Load);
  EXPECT_EQ(Insts[5].Op, Opcode::Store);
  EXPECT_EQ(Insts[6].Op, Opcode::SpillSt);
  EXPECT_EQ(Insts[6].Imm, 1);
  EXPECT_EQ(Insts[8].Op, Opcode::SetLastReg);
  EXPECT_EQ(Insts[8].Aux, 0u);
  EXPECT_EQ(Insts[9].Aux, 1u);
}

TEST(Parser, RejectsUnknownMnemonic) {
  std::string Err;
  auto F = parseFunction("func f regs=1 mem=1 spills=0\nbb0:\n  bogus r0\n",
                         &Err);
  EXPECT_FALSE(F.has_value());
  EXPECT_NE(Err.find("unknown mnemonic"), std::string::npos);
}

TEST(Parser, RejectsMissingHeader) {
  std::string Err;
  auto F = parseFunction("bb0:\n  ret r0\n", &Err);
  EXPECT_FALSE(F.has_value());
}

TEST(Parser, RejectsInstructionBeforeLabel) {
  std::string Err;
  auto F = parseFunction("func f regs=1 mem=1 spills=0\n  ret r0\n", &Err);
  EXPECT_FALSE(F.has_value());
  EXPECT_NE(Err.find("before any block"), std::string::npos);
}

TEST(Parser, ForwardBlockReferences) {
  const char *Text = R"(
func fwd regs=1 mem=1 spills=0
bb0:
  movi r0, 1
  jmp bb2
bb1:
  ret r0
bb2:
  jmp bb1
)";
  std::string Err;
  auto F = parseFunction(Text, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  EXPECT_EQ(F->Blocks.size(), 3u);
  EXPECT_EQ(interpret(*F).ReturnValue, 1);
}

TEST(Parser, EveryFailureCarriesADiagnostic) {
  // One representative per malformed-input class. The contract is that
  // parseFunction never throws and never returns nullopt with an empty
  // Err — these historically crashed (std::stoll/stoul out-of-range) or
  // parsed silently.
  static const char *Head = "func f regs=2 mem=1 spills=0\nbb0:\n";
  struct Row {
    const char *Name;
    std::string Text;
    const char *ErrPart;
  };
  const Row Rows[] = {
      {"imm-overflow", std::string(Head) + "  movi r0, 99999999999999999999\n",
       "out of range"},
      {"imm-underflow",
       std::string(Head) + "  movi r0, -99999999999999999999\n",
       "out of range"},
      {"label-not-a-number", std::string(Head) + "bbx:\n  ret r0\n",
       "malformed block label"},
      {"label-trailing-digits-garbage",
       std::string(Head) + "bb5x:\n  ret r0\n", "malformed block label"},
      {"label-overflow",
       std::string(Head) + "bb99999999999999999999:\n  ret r0\n",
       "out of range"},
      {"label-trailing-garbage", std::string(Head) + "bb1: junk\n  ret r0\n",
       "trailing characters"},
      {"target-overflow", std::string(Head) + "  jmp bb4000000000\n",
       "out of range"},
      {"negative-register", std::string(Head) + "  ret r-1\n",
       "expected register number"},
      {"register-overflow", std::string(Head) + "  ret r99999999999999\n",
       "out of range"},
      {"trailing-garbage-inst", std::string(Head) + "  ret r0 extra\n",
       "trailing characters"},
      {"trailing-garbage-header",
       "func f regs=2 mem=1 spills=0 extra\nbb0:\n  ret r0\n",
       "trailing characters"},
      {"negative-header-field",
       "func f regs=-2 mem=1 spills=0\nbb0:\n  ret r0\n", "expected regs="},
      {"header-field-overflow",
       "func f regs=9999999999 mem=1 spills=0\nbb0:\n  ret r0\n",
       "out of range"},
      {"missing-operand", std::string(Head) + "  add r0, r1\n", "expected"},
      {"store-missing-bracket", std::string(Head) + "  store r0 + 0], r1\n",
       "expected '['"},
  };
  for (const Row &R : Rows) {
    std::string Err;
    std::optional<Function> F = parseFunction(R.Text, &Err);
    EXPECT_FALSE(F.has_value()) << R.Name;
    EXPECT_FALSE(Err.empty()) << R.Name;
    EXPECT_NE(Err.find(R.ErrPart), std::string::npos)
        << R.Name << " -> " << Err;
    EXPECT_NE(Err.find("line "), std::string::npos)
        << R.Name << " -> " << Err;
  }
}

TEST(Parser, BoundaryLiteralsStillParse) {
  // The overflow guard must not reject the extremes the printer emits.
  std::string Text = "func f regs=1 mem=1 spills=0\nbb0:\n"
                     "  movi r0, 9223372036854775807\n"
                     "  addi r0, r0, -9223372036854775808\n"
                     "  ret r0\n";
  std::string Err;
  std::optional<Function> F = parseFunction(Text, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  EXPECT_EQ(F->Blocks[0].Insts[0].Imm, INT64_MAX);
  EXPECT_EQ(F->Blocks[0].Insts[1].Imm, INT64_MIN);
}

/// Print -> parse -> print round trip over the benchmark suite.
class ParserRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ParserRoundTrip, PrintParsePrintIsStable) {
  Function F = miBenchProgram(GetParam());
  std::string Once = printFunction(F);
  std::string Err;
  auto Parsed = parseFunction(Once, &Err);
  ASSERT_TRUE(Parsed.has_value()) << Err;
  EXPECT_EQ(printFunction(*Parsed), Once);
  EXPECT_EQ(fingerprint(interpret(*Parsed)), fingerprint(interpret(F)));
}

INSTANTIATE_TEST_SUITE_P(Suite, ParserRoundTrip,
                         ::testing::Values("crc32", "dijkstra",
                                           "stringsearch", "qsort"));
