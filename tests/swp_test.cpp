//===- tests/swp_test.cpp - Modulo scheduling / SWP pipeline tests --------===//

#include "swp/Ddg.h"
#include "swp/ModuloScheduler.h"
#include "swp/SwpPipeline.h"
#include "workloads/LoopCorpus.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// A simple chain a -> b -> c (latencies 1).
LoopDdg chainLoop(unsigned Len, unsigned Latency = 1) {
  LoopDdg L;
  L.Name = "chain";
  for (unsigned I = 0; I != Len; ++I) {
    DdgOp Op;
    Op.Kind = FuKind::Alu;
    Op.Latency = Latency;
    L.Ops.push_back(Op);
    if (I != 0)
      L.Edges.push_back({I - 1, I, Latency, 0, true});
  }
  return L;
}

/// Validates a schedule: every dependence satisfied modulo II, every
/// resource row within limits.
void checkSchedule(const LoopDdg &L, const VliwMachine &M,
                   const ModuloSchedule &S) {
  ASSERT_EQ(S.TimeOf.size(), L.Ops.size());
  for (const DdgEdge &E : L.Edges) {
    long Lhs = static_cast<long>(S.TimeOf[E.Dst]) +
               static_cast<long>(S.II) * E.Distance;
    long Rhs = static_cast<long>(S.TimeOf[E.Src]) + E.Latency;
    EXPECT_GE(Lhs, Rhs) << "dependence " << E.Src << "->" << E.Dst;
  }
  std::vector<unsigned> Slots(S.II, 0), Mem(S.II, 0), Mul(S.II, 0);
  for (uint32_t Op = 0; Op != L.Ops.size(); ++Op) {
    unsigned Row = S.TimeOf[Op] % S.II;
    ++Slots[Row];
    if (L.Ops[Op].Kind == FuKind::Mem)
      ++Mem[Row];
    if (L.Ops[Op].Kind == FuKind::Mul)
      ++Mul[Row];
  }
  for (unsigned Row = 0; Row != S.II; ++Row) {
    EXPECT_LE(Slots[Row], M.IssueSlots);
    EXPECT_LE(Mem[Row], M.MemPorts);
    EXPECT_LE(Mul[Row], M.MulUnits);
  }
}

} // namespace

TEST(Ddg, ResMiiCountsResources) {
  VliwMachine M;
  LoopDdg L;
  for (int I = 0; I != 8; ++I) {
    DdgOp Op;
    Op.Kind = I < 5 ? FuKind::Mem : FuKind::Alu;
    L.Ops.push_back(Op);
  }
  // 8 ops / 4 slots = 2; 5 mem / 2 ports = 3.
  EXPECT_EQ(resMii(L, M), 3u);
}

TEST(Ddg, RecMiiOfRecurrence) {
  // A self-recurrence: a -> a with latency 3, distance 1 forces II >= 3.
  LoopDdg L;
  DdgOp Op;
  Op.Latency = 3;
  L.Ops.push_back(Op);
  L.Edges.push_back({0, 0, 3, 1, true});
  EXPECT_EQ(recMii(L), 3u);
}

TEST(Ddg, RecMiiAcyclicIsOne) {
  LoopDdg L = chainLoop(5);
  EXPECT_EQ(recMii(L), 1u);
}

TEST(Ddg, MinIICombines) {
  VliwMachine M;
  LoopDdg L = chainLoop(9); // 9 ops / 4 slots -> ResMII 3.
  EXPECT_EQ(minII(L, M), 3u);
}

TEST(ModuloScheduler, SchedulesChainAtMinII) {
  VliwMachine M;
  LoopDdg L = chainLoop(6);
  ModuloSchedule S = scheduleLoop(L, M);
  EXPECT_EQ(S.II, minII(L, M));
  checkSchedule(L, M, S);
}

TEST(ModuloScheduler, RespectsRecurrences) {
  VliwMachine M;
  LoopDdg L = chainLoop(4);
  // Loop-carried edge from tail to head, latency 2 distance 1.
  L.Edges.push_back({3, 0, 2, 1, true});
  ModuloSchedule S = scheduleLoop(L, M);
  checkSchedule(L, M, S);
  EXPECT_GE(S.II, recMii(L));
}

TEST(ModuloScheduler, ResourceLimitedLoop) {
  VliwMachine M;
  LoopDdg L;
  for (int I = 0; I != 10; ++I) {
    DdgOp Op;
    Op.Kind = FuKind::Mem;
    Op.Latency = 2;
    L.Ops.push_back(Op);
  }
  ModuloSchedule S = scheduleLoop(L, M);
  EXPECT_GE(S.II, 5u); // 10 mem ops / 2 ports.
  checkSchedule(L, M, S);
}

TEST(ModuloScheduler, StageCount) {
  VliwMachine M;
  LoopDdg L = chainLoop(6, 2); // Long chain, small II -> several stages.
  ModuloSchedule S = scheduleLoop(L, M);
  checkSchedule(L, M, S);
  EXPECT_GE(S.stageCount(), 2u);
}

TEST(RegRequirement, LongLifetimesRaiseMaxLive) {
  VliwMachine M;
  // Wide independent chains: many values alive simultaneously.
  LoopDdg Wide;
  for (int C = 0; C != 8; ++C) {
    uint32_t Prev = ~0u;
    for (int I = 0; I != 3; ++I) {
      DdgOp Op;
      Op.Latency = 2;
      Wide.Ops.push_back(Op);
      uint32_t Cur = static_cast<uint32_t>(Wide.Ops.size() - 1);
      if (Prev != ~0u)
        Wide.Edges.push_back({Prev, Cur, 2, 0, true});
      Prev = Cur;
    }
  }
  ModuloSchedule S = scheduleLoop(Wide, M);
  RegRequirement R = computeRegRequirement(Wide, S);
  EXPECT_GT(R.MaxLive, 4u);
  EXPECT_GE(R.Mve, 1u);
}

TEST(RegRequirement, MveMatchesSpans) {
  VliwMachine M;
  LoopDdg L = chainLoop(2);
  // Value 0 consumed 5 iterations later: span > II forces MVE > 1.
  L.Edges.push_back({0, 1, 1, 5, true});
  ModuloSchedule S = scheduleLoop(L, M);
  RegRequirement R = computeRegRequirement(L, S);
  EXPECT_GT(R.Mve, 1u);
}

TEST(SpillValue, AddsStoreAndLoads) {
  LoopDdg L = chainLoop(3);
  size_t OpsBefore = L.Ops.size();
  size_t Added = spillValue(L, 0);
  EXPECT_EQ(Added, 2u); // One store, one load (one consumer).
  EXPECT_EQ(L.Ops.size(), OpsBefore + 2);
  // The original data edge 0 -> 1 must be gone.
  for (const DdgEdge &E : L.Edges)
    EXPECT_FALSE(E.IsData && E.Src == 0 && E.Dst == 1);
}

TEST(SpillValue, MultiUseGetsLoadPerUse) {
  LoopDdg L;
  for (int I = 0; I != 4; ++I)
    L.Ops.push_back({FuKind::Alu, 1, true});
  L.Edges.push_back({0, 1, 1, 0, true});
  L.Edges.push_back({0, 2, 1, 0, true});
  L.Edges.push_back({0, 3, 1, 0, true});
  size_t Added = spillValue(L, 0);
  EXPECT_EQ(Added, 4u); // Store + three loads.
}

TEST(SwpPipeline, NoSpillWhenRegistersSuffice) {
  VliwMachine M;
  LoopDdg L = chainLoop(6);
  SwpResult R = pipelineLoop(L, M, 32);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.SpillOps, 0u);
  EXPECT_LE(R.RegsUsed, 32u);
  EXPECT_GT(R.Cycles, 0u);
}

TEST(SwpPipeline, SpillsWhenRegistersTight) {
  VliwMachine M;
  // Eight independent long-latency chains: requirement far above 6 regs.
  LoopDdg L;
  for (int Chain = 0; Chain != 8; ++Chain) {
    uint32_t Prev = ~0u;
    for (int I = 0; I != 3; ++I) {
      L.Ops.push_back({FuKind::Alu, 2, true});
      uint32_t Cur = static_cast<uint32_t>(L.Ops.size() - 1);
      if (Prev != ~0u)
        L.Edges.push_back({Prev, Cur, 2, 0, true});
      Prev = Cur;
    }
  }
  SwpResult Wide = pipelineLoop(L, M, 64);
  ASSERT_GT(Wide.RegsUsed, 6u);
  SwpResult Tight = pipelineLoop(L, M, 6);
  EXPECT_GE(Tight.SpillOps, 1u);
}

TEST(SwpPipeline, MoreArchRegsNeverMoreCycles) {
  VliwMachine M;
  for (unsigned Idx = 0; Idx != 12; ++Idx) {
    LoopDdg L = generateLoop(777, Idx);
    SwpResult R32 = pipelineLoop(L, M, 32);
    SwpResult R64 = pipelineLoop(L, M, 64);
    EXPECT_LE(R64.Cycles, R32.Cycles) << "loop " << Idx;
  }
}

TEST(SwpPipeline, DifferentialEncodingReportsRepairs) {
  VliwMachine M;
  LoopDdg L = generateLoop(5150, 7);
  EncodingConfig C = vliwConfig(48);
  SwpResult R = pipelineLoop(L, M, 32, &C);
  // With DiffN = 32 and RegN = 48 some repairs may remain, but at least
  // the loop-entry repair is always counted.
  EXPECT_GE(R.SetLastRegs, 1u);
  EXPECT_LE(R.RegsUsed, 48u);
}

TEST(SwpPipeline, CyclesFormula) {
  VliwMachine M;
  LoopDdg L = chainLoop(4);
  L.TripCount = 100;
  SwpResult R = pipelineLoop(L, M, 32);
  EXPECT_EQ(R.Cycles, static_cast<uint64_t>(R.II) * 100 +
                          static_cast<uint64_t>(R.StageCount - 1) * R.II);
}

/// Schedule validity across the generated corpus (a slice of it).
class CorpusSchedules : public ::testing::TestWithParam<int> {};

TEST_P(CorpusSchedules, ValidAtChosenII) {
  VliwMachine M;
  LoopDdg L = generateLoop(0x10057c0de, GetParam());
  ModuloSchedule S = scheduleLoop(L, M);
  checkSchedule(L, M, S);
  RegRequirement R = computeRegRequirement(L, S);
  EXPECT_GE(R.MaxLive, 1u);
}

INSTANTIATE_TEST_SUITE_P(Slice, CorpusSchedules, ::testing::Range(0, 30));
