//===- tests/driver_test.cpp - Parallel driver tests ----------------------===//
//
// ThreadPool scheduling, telemetry aggregation, and — most importantly —
// the determinism guard: the batch compiler must produce bit-identical
// results at every worker count. The TSan CI job runs this binary to
// catch data races in the pool and the telemetry sinks.
//
//===----------------------------------------------------------------------===//

#include "adt/Rng.h"
#include "adt/Statistics.h"
#include "driver/BatchCompiler.h"
#include "driver/Telemetry.h"
#include "driver/ThreadPool.h"
#include "ir/Function.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace dra;

namespace {

/// A small ProgramGen corpus with heterogeneous pressure: some programs
/// spill at RegN = 12, some do not, so the batch tasks are imbalanced the
/// way real compilation units are.
std::vector<Function> testCorpus(size_t Count = 8) {
  std::vector<Function> Corpus;
  for (size_t I = 0; I != Count; ++I) {
    ProgramProfile P;
    P.Seed = 100 + I;
    P.PressureVars = 4 + static_cast<unsigned>(I % 5) * 2;
    P.TopStatements = 8;
    P.BodyStatements = 6;
    P.OuterTrip = 4;
    Corpus.push_back(
        generateProgram("gen" + std::to_string(I), P));
  }
  return Corpus;
}

PipelineConfig coalesceConfig() {
  PipelineConfig C;
  C.S = Scheme::Coalesce;
  C.Enc = lowEndConfig(12);
  C.Remap.NumStarts = 25;
  return C;
}

/// Tracks brace/bracket nesting outside string literals; a structurally
/// sound JSON document starts at depth 0, never goes negative, and ends
/// at depth 0.
bool jsonStructurallySound(const std::string &Text) {
  int Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : Text) {
    if (InString) {
      if (Escaped)
        Escaped = false;
      else if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']') {
      if (--Depth < 0)
        return false;
    }
  }
  return Depth == 0 && !InString;
}

} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  Pool.parallelFor(64, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    EXPECT_EQ(ThreadPool::currentWorker(), 0u);
  });
}

TEST(ThreadPool, ParallelMapOrdersResultsByIndex) {
  ThreadPool Pool(4);
  std::vector<size_t> Squares = Pool.parallelMap<size_t>(
      257, [](size_t I) { return I * I; });
  ASSERT_EQ(Squares.size(), 257u);
  for (size_t I = 0; I != Squares.size(); ++I)
    EXPECT_EQ(Squares[I], I * I);
}

TEST(ThreadPool, WorkerIdsStayWithinPool) {
  ThreadPool Pool(3);
  std::mutex Mtx;
  std::set<unsigned> Seen;
  Pool.parallelFor(1000, [&](size_t) {
    unsigned W = ThreadPool::currentWorker();
    std::lock_guard<std::mutex> Lock(Mtx);
    Seen.insert(W);
  });
  for (unsigned W : Seen)
    EXPECT_LT(W, 3u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(100,
                                [](size_t I) {
                                  if (I == 57)
                                    throw std::runtime_error("task 57");
                                }),
               std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(100, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool Pool(4);
  std::atomic<size_t> Total{0};
  for (int Round = 0; Round != 50; ++Round)
    Pool.parallelFor(97, [&](size_t) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 50u * 97u);
}

TEST(ThreadPool, ReentrantParallelForRunsInline) {
  ThreadPool Pool(4);
  std::atomic<size_t> Inner{0};
  Pool.parallelFor(8, [&](size_t) {
    Pool.parallelFor(16, [&](size_t) { Inner.fetch_add(1); });
  });
  EXPECT_EQ(Inner.load(), 8u * 16u);
}

TEST(ThreadPool, DistinctPoolsNestWithoutInlining) {
  // Reentrancy detection is per pool: a nested loop on a *different*
  // pool (the remap search pool inside a batch task) schedules normally
  // and keeps its parallelism instead of collapsing to the caller
  // thread. Two nested iterations observing each other in flight proves
  // the nested pool really ran them concurrently — impossible if the
  // nested call had been treated as reentrant and inlined.
  ThreadPool Outer(2);
  std::atomic<size_t> Total{0};
  std::atomic<bool> Concurrent{false};
  Outer.parallelFor(2, [&](size_t) {
    ThreadPool Nested(2);
    std::atomic<int> InFlight{0};
    Nested.parallelFor(2, [&](size_t) {
      Total.fetch_add(1);
      InFlight.fetch_add(1);
      auto Deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (InFlight.load() != 2 &&
             std::chrono::steady_clock::now() < Deadline)
        std::this_thread::yield();
      if (InFlight.load() == 2)
        Concurrent = true;
      InFlight.fetch_sub(1);
    });
  });
  EXPECT_EQ(Total.load(), 4u);
  EXPECT_TRUE(Concurrent.load());
}

TEST(ThreadPool, SubmitRunsDetachedTasks) {
  ThreadPool Pool(4);
  constexpr size_t N = 500;
  std::atomic<size_t> Ran{0};
  for (size_t I = 0; I != N; ++I)
    Pool.submit([&] { Ran.fetch_add(1); });
  // No join primitive on detached tasks; the destructor is the barrier.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (Ran.load() != N && std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  EXPECT_EQ(Ran.load(), N);
}

TEST(ThreadPool, SubmitOnSingleWorkerPoolRunsInline) {
  ThreadPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  bool Ran = false;
  Pool.submit([&] {
    Ran = true;
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
  EXPECT_TRUE(Ran); // inline: completed before submit returned
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  // SIGTERM-driven server shutdown destroys the pool with compile tasks
  // still queued; every one of them must run (responses are in flight
  // behind them), not be dropped. The tasks outnumber the workers so the
  // queue is genuinely non-empty when the destructor starts.
  constexpr size_t N = 64;
  std::atomic<size_t> Ran{0};
  {
    ThreadPool Pool(3);
    for (size_t I = 0; I != N; ++I)
      Pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        Ran.fetch_add(1);
      });
  } // destructor: drain, then join
  EXPECT_EQ(Ran.load(), N);
}

TEST(ThreadPool, TasksSubmittedByTasksAreDrained) {
  std::atomic<size_t> Ran{0};
  {
    ThreadPool Pool(2);
    for (size_t I = 0; I != 8; ++I)
      Pool.submit([&, I] {
        Ran.fetch_add(1);
        if (I % 2 == 0)
          Pool.submit([&] { Ran.fetch_add(1); });
      });
  }
  EXPECT_EQ(Ran.load(), 8u + 4u);
}

TEST(ThreadPool, SubmitAndParallelForCoexist) {
  ThreadPool Pool(4);
  std::atomic<size_t> TaskRuns{0}, LoopRuns{0};
  for (int Round = 0; Round != 20; ++Round) {
    Pool.submit([&] { TaskRuns.fetch_add(1); });
    Pool.parallelFor(50, [&](size_t) { LoopRuns.fetch_add(1); });
  }
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (TaskRuns.load() != 20 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  EXPECT_EQ(LoopRuns.load(), 20u * 50u);
  EXPECT_EQ(TaskRuns.load(), 20u);
}

//===----------------------------------------------------------------------===//
// Rng task seeding & StatAccumulator (thread-safety satellites)
//===----------------------------------------------------------------------===//

TEST(Rng, TaskSeedIsPureAndDecorrelated) {
  EXPECT_EQ(Rng::taskSeed(7, 3), Rng::taskSeed(7, 3));
  std::set<uint64_t> Seeds;
  for (uint64_t I = 0; I != 1000; ++I)
    Seeds.insert(Rng::taskSeed(0xdeadbeef, I));
  EXPECT_EQ(Seeds.size(), 1000u) << "adjacent task seeds collided";
  EXPECT_NE(Rng::taskSeed(1, 0), Rng::taskSeed(2, 0));
  // Streams from adjacent tasks diverge immediately.
  Rng A = Rng::forTask(42, 0), B = Rng::forTask(42, 1);
  EXPECT_NE(A.next(), B.next());
}

TEST(StatAccumulator, ConcurrentAddsAreLossless) {
  StatAccumulator Acc;
  ThreadPool Pool(4);
  constexpr size_t N = 20000;
  Pool.parallelFor(N, [&](size_t I) {
    Acc.add(static_cast<double>(I % 10));
  });
  EXPECT_EQ(Acc.count(), N);
  EXPECT_DOUBLE_EQ(Acc.sum(), static_cast<double>(N / 10) * 45.0);
}

TEST(StatAccumulator, SamplesAreSortedAndMergeable) {
  StatAccumulator A, B;
  A.add(3);
  A.add(1);
  B.add(2);
  A.merge(B);
  std::vector<double> S = A.samples();
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 1);
  EXPECT_EQ(S[1], 2);
  EXPECT_EQ(S[2], 3);
  EXPECT_DOUBLE_EQ(A.mean(), 2.0);
}

//===----------------------------------------------------------------------===//
// Determinism guard (satellite): Jobs=1 vs Jobs=4 bit-identical
//===----------------------------------------------------------------------===//

namespace {

/// Compares every externally visible metric plus the printed final code.
void expectIdenticalResults(const std::vector<PipelineResult> &A,
                            const std::vector<PipelineResult> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    SCOPED_TRACE("function " + std::to_string(I));
    EXPECT_EQ(A[I].NumInsts, B[I].NumInsts);
    EXPECT_EQ(A[I].SpillInsts, B[I].SpillInsts);
    EXPECT_EQ(A[I].SetLastRegs, B[I].SetLastRegs);
    EXPECT_EQ(A[I].CodeBytes, B[I].CodeBytes);
    EXPECT_EQ(A[I].Enc.SetLastJoin, B[I].Enc.SetLastJoin);
    EXPECT_EQ(A[I].Enc.SetLastRange, B[I].Enc.SetLastRange);
    EXPECT_EQ(printFunction(A[I].F), printFunction(B[I].F));
  }
}

std::vector<PipelineResult> compileWithJobs(const std::vector<Function> &Fns,
                                            const PipelineConfig &C,
                                            unsigned Jobs,
                                            bool PerTaskSeeds = false) {
  BatchOptions BO;
  BO.Jobs = Jobs;
  BO.PerTaskSeeds = PerTaskSeeds;
  BatchCompiler Batch(BO);
  return Batch.run(Fns, C);
}

} // namespace

TEST(BatchCompiler, SerialAndParallelAreBitIdentical) {
  std::vector<Function> Corpus = testCorpus();
  PipelineConfig C = coalesceConfig();
  expectIdenticalResults(compileWithJobs(Corpus, C, 1),
                         compileWithJobs(Corpus, C, 4));
}

TEST(BatchCompiler, SelectSchemeIsDeterministicToo) {
  std::vector<Function> Corpus = testCorpus(6);
  PipelineConfig C = coalesceConfig();
  C.S = Scheme::Select;
  expectIdenticalResults(compileWithJobs(Corpus, C, 1),
                         compileWithJobs(Corpus, C, 4));
}

TEST(BatchCompiler, PerTaskSeedsDependOnIndexNotSchedule) {
  std::vector<Function> Corpus = testCorpus(6);
  PipelineConfig C = coalesceConfig();
  expectIdenticalResults(compileWithJobs(Corpus, C, 1, true),
                         compileWithJobs(Corpus, C, 4, true));
}

TEST(BatchCompiler, PerConfigBatchMatchesIndividualRuns) {
  std::vector<Function> Corpus = testCorpus(4);
  std::vector<PipelineConfig> Configs;
  for (size_t I = 0; I != Corpus.size(); ++I) {
    PipelineConfig C = coalesceConfig();
    C.S = I % 2 == 0 ? Scheme::Baseline : Scheme::Remap;
    Configs.push_back(C);
  }
  BatchOptions BO;
  BO.Jobs = 3;
  BatchCompiler Batch(BO);
  std::vector<PipelineResult> Batched = Batch.run(Corpus, Configs);
  for (size_t I = 0; I != Corpus.size(); ++I) {
    PipelineResult Solo = runPipeline(Corpus[I], Configs[I]);
    EXPECT_EQ(printFunction(Batched[I].F), printFunction(Solo.F));
    EXPECT_EQ(Batched[I].CodeBytes, Solo.CodeBytes);
  }
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

TEST(Telemetry, ConcurrentCountersAreLossless) {
  Telemetry T;
  ThreadPool Pool(4);
  Pool.parallelFor(5000, [&](size_t) { T.addCounter("ticks", 1); });
  EXPECT_DOUBLE_EQ(T.counters().at("ticks"), 5000.0);
}

TEST(Telemetry, BatchRecordsOneTaskAndStageSpansPerFunction) {
  std::vector<Function> Corpus = testCorpus(5);
  Telemetry T;
  BatchOptions BO;
  BO.Jobs = 2;
  BO.Telem = &T;
  BatchCompiler Batch(BO);
  Batch.run(Corpus, coalesceConfig());

  EXPECT_DOUBLE_EQ(T.counters().at("functions"), 5.0);
  size_t TaskSpans = 0;
  for (const TraceSpan &E : T.events())
    if (std::string(E.Category) == "task")
      ++TaskSpans;
  EXPECT_EQ(TaskSpans, 5u);
  // The coalesce pipeline runs ospill, coalesce, remap, encode on every
  // function: one stage span each.
  std::map<std::string, Telemetry::StageStats> Stages = T.stageStats("stage");
  for (const char *Stage : {"ospill", "coalesce", "remap", "encode"}) {
    ASSERT_TRUE(Stages.count(Stage)) << Stage;
    EXPECT_EQ(Stages.at(Stage).Count, 5u) << Stage;
  }
}

TEST(Telemetry, ChromeTraceIsStructurallySoundJson) {
  std::vector<Function> Corpus = testCorpus(3);
  Telemetry T;
  BatchOptions BO;
  BO.Jobs = 2;
  BO.Telem = &T;
  BatchCompiler Batch(BO);
  Batch.run(Corpus, coalesceConfig());

  std::ostringstream Trace, Report;
  T.writeChromeTrace(Trace);
  T.writeJson(Report);
  EXPECT_TRUE(jsonStructurallySound(Trace.str())) << Trace.str();
  EXPECT_TRUE(jsonStructurallySound(Report.str())) << Report.str();
  EXPECT_NE(Trace.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.str().find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Report.str().find("\"counters\""), std::string::npos);
}

TEST(Telemetry, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

//===----------------------------------------------------------------------===//
// Scaling smoke: logs Jobs=1 vs Jobs=N wall clock (asserts only with
// enough hardware; single-core CI just records the numbers).
//===----------------------------------------------------------------------===//

TEST(BatchCompiler, ParallelSpeedupLogged) {
  std::vector<Function> Corpus = testCorpus(8);
  PipelineConfig C = coalesceConfig();
  C.Remap.NumStarts = 60;

  auto TimeRun = [&](unsigned Jobs) {
    auto Start = std::chrono::steady_clock::now();
    compileWithJobs(Corpus, C, Jobs);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };
  TimeRun(1); // warm caches before timing
  double SerialMs = TimeRun(1);
  unsigned HwJobs = ThreadPool::defaultWorkerCount();
  double ParallelMs = TimeRun(HwJobs);
  double Speedup = ParallelMs > 0 ? SerialMs / ParallelMs : 0;
  std::printf("[scaling] jobs=1: %.1f ms, jobs=%u: %.1f ms, speedup "
              "%.2fx\n",
              SerialMs, HwJobs, ParallelMs, Speedup);
  if (HwJobs < 4)
    GTEST_SKIP() << "only " << HwJobs
                 << " hardware thread(s); speedup assertion needs >= 4";
  EXPECT_GT(Speedup, 1.5) << "parallel batch failed to scale";
}
