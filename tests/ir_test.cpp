//===- tests/ir_test.cpp - Instruction/Function/IRBuilder unit tests ------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Instruction.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// A minimal two-block function: bb0 computes and branches, bb1 returns.
Function makeDiamond() {
  Function F;
  F.Name = "diamond";
  F.MemWords = 8;
  uint32_t B0 = F.makeBlock();
  uint32_t BThen = F.makeBlock();
  uint32_t BElse = F.makeBlock();
  uint32_t BJoin = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(B0);
  RegId X = B.createMovImm(1);
  RegId Y = B.createMovImm(2);
  RegId C = B.createBin(Opcode::CmpLT, X, Y);
  B.createBr(C, BThen, BElse);
  B.setBlock(BThen);
  RegId T = B.createBin(Opcode::Add, X, Y);
  B.createStore(X, 0, T);
  B.createJmp(BJoin);
  B.setBlock(BElse);
  RegId E = B.createBin(Opcode::Sub, X, Y);
  B.createStore(X, 1, E);
  B.createJmp(BJoin);
  B.setBlock(BJoin);
  B.createRet(X);
  F.recomputeCFG();
  return F;
}

} // namespace

TEST(Instruction, DefAndUses) {
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 3;
  I.Src1 = 1;
  I.Src2 = 2;
  EXPECT_EQ(I.def(), 3u);
  RegId Uses[2];
  unsigned N;
  I.uses(Uses, N);
  ASSERT_EQ(N, 2u);
  EXPECT_EQ(Uses[0], 1u);
  EXPECT_EQ(Uses[1], 2u);
}

TEST(Instruction, StoreHasNoDef) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Src1 = 4;
  I.Src2 = 5;
  EXPECT_EQ(I.def(), NoReg);
  RegId Uses[2];
  unsigned N;
  I.uses(Uses, N);
  ASSERT_EQ(N, 2u);
  EXPECT_EQ(I.numRegFields(), 2u);
}

TEST(Instruction, SpillLdHasOnlyDef) {
  Instruction I;
  I.Op = Opcode::SpillLd;
  I.Dst = 7;
  I.Imm = 2;
  EXPECT_EQ(I.def(), 7u);
  EXPECT_EQ(I.numRegFields(), 1u);
  EXPECT_EQ(I.regField(0), 7u);
}

TEST(Instruction, SetLastRegHasNoFields) {
  Instruction I;
  I.Op = Opcode::SetLastReg;
  I.Imm = 5;
  EXPECT_EQ(I.numRegFields(), 0u);
  EXPECT_EQ(I.def(), NoReg);
}

TEST(Instruction, RegFieldRoundTrip) {
  Instruction I;
  I.Op = Opcode::Mul;
  I.Dst = 9;
  I.Src1 = 4;
  I.Src2 = 6;
  ASSERT_EQ(I.numRegFields(), 3u);
  EXPECT_EQ(I.regField(0), 4u);
  EXPECT_EQ(I.regField(1), 6u);
  EXPECT_EQ(I.regField(2), 9u);
  I.setRegField(0, 11);
  I.setRegField(2, 12);
  EXPECT_EQ(I.Src1, 11u);
  EXPECT_EQ(I.Dst, 12u);
}

TEST(Instruction, TerminatorPredicate) {
  Instruction I;
  I.Op = Opcode::Br;
  EXPECT_TRUE(I.isTerminator());
  I.Op = Opcode::Jmp;
  EXPECT_TRUE(I.isTerminator());
  I.Op = Opcode::Ret;
  EXPECT_TRUE(I.isTerminator());
  I.Op = Opcode::Add;
  EXPECT_FALSE(I.isTerminator());
}

TEST(Instruction, MemoryAndSpillPredicates) {
  Instruction I;
  I.Op = Opcode::Load;
  EXPECT_TRUE(I.isMemory());
  EXPECT_FALSE(I.isSpill());
  I.Op = Opcode::SpillSt;
  EXPECT_TRUE(I.isMemory());
  EXPECT_TRUE(I.isSpill());
}

TEST(Instruction, ToStringSmoke) {
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = 1;
  I.Src1 = 2;
  I.Src2 = 3;
  EXPECT_EQ(toString(I), "add r1, r2, r3");
  I.Op = Opcode::SetLastReg;
  I.Imm = 4;
  I.Aux = 1;
  EXPECT_EQ(toString(I), "set_last_reg(4, 1)");
}

TEST(Function, RecomputeCfgEdges) {
  Function F = makeDiamond();
  ASSERT_EQ(F.Blocks.size(), 4u);
  EXPECT_EQ(F.Blocks[0].Succs.size(), 2u);
  EXPECT_EQ(F.Blocks[1].Preds.size(), 1u);
  EXPECT_EQ(F.Blocks[3].Preds.size(), 2u);
  EXPECT_TRUE(F.Blocks[3].Succs.empty());
}

TEST(Function, Counts) {
  Function F = makeDiamond();
  EXPECT_EQ(F.numInsts(), 11u);
  EXPECT_EQ(F.numSpillInsts(), 0u);
  EXPECT_EQ(F.numSetLastRegs(), 0u);
}

TEST(Function, VerifyAcceptsWellFormed) {
  Function F = makeDiamond();
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err;
}

TEST(Function, VerifyRejectsMissingTerminator) {
  Function F = makeDiamond();
  F.Blocks[3].Insts.pop_back(); // Drop the ret.
  std::string Err;
  EXPECT_FALSE(verifyFunction(F, &Err));
}

TEST(Function, VerifyRejectsMidBlockTerminator) {
  Function F = makeDiamond();
  Instruction J;
  J.Op = Opcode::Jmp;
  J.Target0 = 0;
  F.Blocks[1].Insts.insert(F.Blocks[1].Insts.begin(), J);
  EXPECT_FALSE(verifyFunction(F));
}

TEST(Function, VerifyRejectsOutOfRangeRegister) {
  Function F = makeDiamond();
  F.Blocks[0].Insts[0].Dst = F.NumRegs + 5;
  EXPECT_FALSE(verifyFunction(F));
}

TEST(Function, VerifyRejectsBadBranchTarget) {
  Function F = makeDiamond();
  F.Blocks[0].Insts.back().Target0 = 99;
  EXPECT_FALSE(verifyFunction(F));
}

TEST(Function, VerifyRejectsBadSpillSlot) {
  Function F = makeDiamond();
  Instruction I;
  I.Op = Opcode::SpillLd;
  I.Dst = 0;
  I.Imm = 3; // NumSpillSlots == 0.
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(), I);
  EXPECT_FALSE(verifyFunction(F));
}

TEST(Function, PrintContainsBlocksAndOps) {
  Function F = makeDiamond();
  std::string Text = printFunction(F);
  EXPECT_NE(Text.find("bb0:"), std::string::npos);
  EXPECT_NE(Text.find("bb3:"), std::string::npos);
  EXPECT_NE(Text.find("cmplt"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(IRBuilder, FreshRegistersAreDense) {
  Function F;
  F.makeBlock();
  IRBuilder B(F);
  RegId A = B.createMovImm(1);
  RegId C = B.createMovImm(2);
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(C, 1u);
  EXPECT_EQ(F.NumRegs, 2u);
}

TEST(IRBuilder, OpcodeNamesUnique) {
  // Smoke-check a few names; duplicates would break the textual printer.
  EXPECT_STREQ(opcodeName(Opcode::Add), "add");
  EXPECT_STREQ(opcodeName(Opcode::SpillSt), "spill.st");
  EXPECT_STREQ(opcodeName(Opcode::SetLastReg), "set_last_reg");
}
