//===- tests/alloc_identity_test.cpp - Allocator golden bit-identity ------===//
//
// Guards the flat-arena/bitset rework of the allocator hot core: every
// scheme's complete pipeline result — machine code, spill decisions, and
// all deterministic stage counters — must stay byte-identical to the
// pre-rework allocator. The golden fingerprints in
// tests/data/golden_alloc_identity.txt were generated with the
// hash/tree-based (std::unordered_set / std::set) implementation this PR
// replaced; ResultCache::serializeResult is the canonical byte encoding
// (doubles as hex bit patterns, so the comparison is exact).
//
// Regenerate after an *intentional* behavior change with:
//   DRA_REGEN_GOLDEN=1 ./build/tests/alloc_identity_test
// which rewrites the checked-in file in the source tree.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "driver/ResultCache.h"
#include "ir/Parser.h"
#include "workloads/ProgramGen.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef DRA_SOURCE_DIR
#error "DRA_SOURCE_DIR must be defined by the build"
#endif

using namespace dra;

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// The fixed corpus: every checked-in example plus a spread of generated
/// programs covering the shapes the allocator sees (pressure spikes, deep
/// loops, heavy move chains). All deterministic.
std::vector<std::pair<std::string, Function>> buildCorpus() {
  std::vector<std::pair<std::string, Function>> Corpus;

  const char *Examples[] = {"branchy", "memsum", "poly", "pressure"};
  for (const char *Name : Examples) {
    std::string Path =
        std::string(DRA_SOURCE_DIR) + "/examples/dra/" + Name + ".dra";
    std::ifstream In(Path);
    EXPECT_TRUE(In.good()) << "cannot open " << Path;
    std::stringstream SS;
    SS << In.rdbuf();
    std::string Err;
    auto F = parseFunction(SS.str(), &Err);
    EXPECT_TRUE(F.has_value()) << Path << ": " << Err;
    if (F)
      Corpus.emplace_back(Name, std::move(*F));
  }

  for (uint64_t Seed : {3u, 17u, 99u}) {
    ProgramProfile P;
    P.Seed = Seed;
    P.TopStatements = 10;
    P.BodyStatements = 6;
    Corpus.emplace_back("gen" + std::to_string(Seed),
                        generateProgram("gen" + std::to_string(Seed), P));
  }
  {
    // High-pressure profile: forces spill rounds in every scheme.
    ProgramProfile P;
    P.Seed = 42;
    P.PressureVars = 10;
    P.HotPct = 30;
    P.HotWidth = 11;
    P.TopStatements = 8;
    Corpus.emplace_back("genhot", generateProgram("genhot", P));
  }
  {
    // Move-heavy profile: exercises the coalesce worklists.
    ProgramProfile P;
    P.Seed = 7;
    P.MovePct = 40;
    P.TopStatements = 9;
    Corpus.emplace_back("genmove", generateProgram("genmove", P));
  }
  return Corpus;
}

const Scheme AllSchemes[] = {Scheme::Baseline, Scheme::OSpill, Scheme::Remap,
                             Scheme::Select, Scheme::Coalesce};

std::string goldenPath() {
  return std::string(DRA_SOURCE_DIR) + "/tests/data/golden_alloc_identity.txt";
}

/// Runs the whole matrix and returns "scheme function full-hash code-hash"
/// lines. The full hash covers the complete serialized result (every
/// counter and cost gauge, doubles as exact bit patterns); the code hash
/// covers only the final-code section ("\nfunc ..." onward) plus the
/// static counts — the paper-visible encoded output. The code hash is the
/// hard bit-identity criterion; the full hash additionally pins every
/// deterministic stage counter.
std::vector<std::string> computeLines() {
  std::vector<std::string> Lines;
  auto Corpus = buildCorpus();
  for (Scheme S : AllSchemes) {
    for (const auto &[Name, F] : Corpus) {
      PipelineConfig C;
      C.S = S;
      PipelineResult R = runPipeline(F, C);
      std::string Full = ResultCache::serializeResult(R);
      size_t CodeAt = Full.find("\ncounts ");
      EXPECT_NE(CodeAt, std::string::npos) << "serialized stream format";
      std::string Code =
          CodeAt == std::string::npos ? Full : Full.substr(CodeAt);
      char Buf[160];
      std::snprintf(Buf, sizeof Buf, "%s %s %016llx %016llx", schemeName(S),
                    Name.c_str(),
                    static_cast<unsigned long long>(fnv1a(Full)),
                    static_cast<unsigned long long>(fnv1a(Code)));
      Lines.push_back(Buf);
    }
  }
  return Lines;
}

TEST(AllocIdentity, GoldenCorpusAllSchemes) {
  std::vector<std::string> Lines = computeLines();

  if (std::getenv("DRA_REGEN_GOLDEN")) {
    std::ofstream Out(goldenPath());
    ASSERT_TRUE(Out.good()) << "cannot write " << goldenPath();
    for (const std::string &L : Lines)
      Out << L << "\n";
    GTEST_SKIP() << "regenerated " << goldenPath();
  }

  std::ifstream In(goldenPath());
  ASSERT_TRUE(In.good())
      << "missing " << goldenPath()
      << " (run with DRA_REGEN_GOLDEN=1 to create it)";
  // "scheme function" -> "fullhash codehash" (the last two fields).
  std::map<std::string, std::string> Golden;
  std::string Line;
  auto SplitHashes = [](const std::string &L) {
    size_t H2 = L.rfind(' ');
    size_t H1 = L.rfind(' ', H2 - 1);
    return std::pair<std::string, std::string>(L.substr(0, H1),
                                               L.substr(H1 + 1));
  };
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    ASSERT_GE(std::count(Line.begin(), Line.end(), ' '), 3)
        << "malformed golden line: " << Line;
    auto [Key, Hashes] = SplitHashes(Line);
    Golden[Key] = Hashes;
  }
  ASSERT_EQ(Golden.size(), Lines.size())
      << "golden file entry count mismatch — corpus changed without "
         "regenerating";

  for (const std::string &L : Lines) {
    auto [Key, Hashes] = SplitHashes(L);
    auto It = Golden.find(Key);
    ASSERT_NE(It, Golden.end()) << "no golden entry for '" << Key << "'";
    size_t Mid = Hashes.find(' ');
    size_t GoldMid = It->second.find(' ');
    // Hard criterion: the final code (and its static counts) is
    // byte-identical to the pre-rework allocator.
    EXPECT_EQ(It->second.substr(GoldMid + 1), Hashes.substr(Mid + 1))
        << Key << ": encoded output diverged from the pre-rework "
        << "allocator (bit-identity broken)";
    // Full-stream criterion: every stage counter and cost gauge matches
    // too (bit patterns of doubles included).
    EXPECT_EQ(It->second.substr(0, GoldMid), Hashes.substr(0, Mid))
        << Key << ": stage counters / cost gauges diverged from the "
        << "pre-rework allocator";
  }
}

/// The serialized stream itself must be stable run to run within one
/// build (guards against nondeterministic containers sneaking back in).
TEST(AllocIdentity, RepeatRunsBitIdentical) {
  auto Corpus = buildCorpus();
  for (Scheme S : {Scheme::Select, Scheme::Coalesce}) {
    const auto &[Name, F] = Corpus[3]; // pressure.dra: spills + moves
    PipelineConfig C;
    C.S = S;
    std::string A = ResultCache::serializeResult(runPipeline(F, C));
    std::string B = ResultCache::serializeResult(runPipeline(F, C));
    EXPECT_EQ(A, B) << schemeName(S) << " nondeterministic on " << Name;
  }
}

} // namespace
