//===- tests/portfolio_test.cpp - Scheme-portfolio racing guarantees ------===//
//
// The portfolio's headline contract is determinism: a race committed at
// any Jobs count is bit-identical to the best sequential single-scheme
// compile under the (encoded-cost, arm-index) winner rule. These tests
// pin that contract over the full checked-in example corpus plus
// generated programs, and cover the tie break, the zero-cost
// cancellation cutoff, the chooser's confident/fallback split, and the
// portfolio-v1 decision-table serialization.
//
// Byte identity is checked through ResultCache::serializeResult — the
// canonical encoding of a PipelineResult (machine code, spill decisions,
// all deterministic counters) — so "identical" means exact, not
// cost-equal.
//
//===----------------------------------------------------------------------===//

#include "core/Features.h"
#include "core/Pipeline.h"
#include "core/Portfolio.h"
#include "driver/ResultCache.h"
#include "fuzz/Invariants.h"
#include "ir/Parser.h"
#include "workloads/ProgramGen.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#ifndef DRA_SOURCE_DIR
#error "DRA_SOURCE_DIR must be defined by the build"
#endif

using namespace dra;

namespace {

/// Every checked-in example plus a few generated shapes, so the race is
/// exercised on functions where different arms actually win.
std::vector<std::pair<std::string, Function>> buildCorpus() {
  std::vector<std::pair<std::string, Function>> Corpus;
  const char *Examples[] = {"branchy", "memsum", "poly", "pressure"};
  for (const char *Name : Examples) {
    std::string Path =
        std::string(DRA_SOURCE_DIR) + "/examples/dra/" + Name + ".dra";
    std::ifstream In(Path);
    EXPECT_TRUE(In.good()) << "cannot open " << Path;
    std::stringstream SS;
    SS << In.rdbuf();
    std::string Err;
    auto F = parseFunction(SS.str(), &Err);
    EXPECT_TRUE(F.has_value()) << Path << ": " << Err;
    if (F)
      Corpus.emplace_back(Name, std::move(*F));
  }
  for (uint64_t Seed : {5u, 41u, 203u}) {
    ProgramProfile P;
    P.Seed = Seed;
    P.TopStatements = 9;
    P.BodyStatements = 5;
    Corpus.emplace_back("gen" + std::to_string(Seed),
                        generateProgram("gen" + std::to_string(Seed), P));
  }
  return Corpus;
}

PipelineConfig raceConfig() {
  PipelineConfig C;
  C.Enc = lowEndConfig(12);
  C.Remap.NumStarts = 4;
  C.Portfolio.Mode = PortfolioMode::Race;
  return C;
}

/// The sequential oracle the race must match: compile every resolved arm
/// alone, in index order, keep the strict (cost, index) minimum.
struct SequentialBest {
  size_t Arm = 0;
  uint64_t Cost = UINT64_MAX;
  PipelineResult R;
  std::vector<uint64_t> Costs;
};

SequentialBest bestSequentialArm(const Function &F, const PipelineConfig &C) {
  SequentialBest Best;
  std::vector<PortfolioArm> Arms = resolvedPortfolioArms(C.Portfolio);
  for (size_t A = 0; A != Arms.size(); ++A) {
    PipelineConfig AC = C;
    AC.Portfolio = PortfolioConfig();
    AC.S = Arms[A].S;
    if (Arms[A].RemapStarts != 0)
      AC.Remap.NumStarts = Arms[A].RemapStarts;
    PipelineResult R = runPipeline(F, AC);
    uint64_t Cost = encodedCost(R);
    Best.Costs.push_back(Cost);
    if (Cost < Best.Cost) {
      Best.Cost = Cost;
      Best.Arm = A;
      Best.R = std::move(R);
    }
  }
  return Best;
}

} // namespace

//===----------------------------------------------------------------------===//
// Race mode
//===----------------------------------------------------------------------===//

// The tentpole guarantee: a race at Jobs 1, 2, 8, and one-worker-per-arm
// commits exactly the best sequential arm — same winner index, same cost,
// and byte-identical serialized result — over the whole corpus.
TEST(PortfolioRace, MatchesBestSequentialAtAnyJobs) {
  for (auto &[Name, F] : buildCorpus()) {
    PipelineConfig C = raceConfig();
    SequentialBest Best = bestSequentialArm(F, C);
    std::string BestBytes = ResultCache::serializeResult(Best.R);
    for (unsigned Jobs : {1u, 2u, 8u, 0u}) {
      C.Portfolio.Jobs = Jobs;
      PortfolioOutcome Out;
      PipelineConfig WinnerCfg;
      PipelineResult R = runPortfolio(F, C, &WinnerCfg, &Out);
      EXPECT_EQ(Out.WinnerArm, Best.Arm) << Name << " jobs=" << Jobs;
      EXPECT_EQ(Out.WinnerCost, Best.Cost) << Name << " jobs=" << Jobs;
      EXPECT_EQ(ResultCache::serializeResult(R), BestBytes)
          << Name << " jobs=" << Jobs
          << ": raced bytes differ from best sequential arm";
      // The winner config must be the concrete single-scheme config.
      EXPECT_EQ(WinnerCfg.Portfolio.Mode, PortfolioMode::Off);
      EXPECT_EQ(WinnerCfg.S, resolvedPortfolioArms(C.Portfolio)[Best.Arm].S);
      // Arms that ran must report the sequential costs (cancelled arms
      // are UINT64_MAX and may only be *worse-indexed* than the winner).
      ASSERT_EQ(Out.ArmCosts.size(), Best.Costs.size());
      for (size_t A = 0; A != Out.ArmCosts.size(); ++A) {
        if (Out.ArmCosts[A] == UINT64_MAX) {
          EXPECT_GT(A, size_t(Out.WinnerArm))
              << Name << ": cancelled arm at or before the winner";
          continue;
        }
        EXPECT_EQ(Out.ArmCosts[A], Best.Costs[A]) << Name << " arm " << A;
      }
    }
  }
}

// Identical arms produce identical costs; the committed winner must be
// the lowest index, and its bytes must equal that arm's lone compile.
TEST(PortfolioRace, TieBreaksToLowestArmIndex) {
  ProgramProfile P;
  P.Seed = 77;
  P.TopStatements = 8;
  P.BodyStatements = 5;
  Function F = generateProgram("tie", P);

  PipelineConfig C = raceConfig();
  C.Portfolio.Arms = {{Scheme::Select, 0}, {Scheme::Select, 0},
                      {Scheme::Select, 0}};
  C.Portfolio.Jobs = 0; // One worker per arm: maximum scheduling freedom.
  PortfolioOutcome Out;
  PipelineResult R = runPortfolio(F, C, nullptr, &Out);
  EXPECT_EQ(Out.WinnerArm, 0u);

  PipelineConfig Lone = C;
  Lone.Portfolio = PortfolioConfig();
  Lone.S = Scheme::Select;
  EXPECT_EQ(ResultCache::serializeResult(R),
            ResultCache::serializeResult(runPipeline(F, Lone)));
}

// The zero-cost cutoff: when arm 0 finishes with cost 0, later arms are
// skipped — and skipping them never changes what is committed. A
// two-instruction function costs 0 under every scheme, so the serial
// race must cancel both trailing arms; the parallel race may cancel
// fewer, but both must commit arm 0's exact bytes.
TEST(PortfolioRace, CancellationNeverChangesCommittedResult) {
  std::string Err;
  auto F = parseFunction("func tiny regs=10 mem=0 spills=0\n"
                         "bb0:\n"
                         "  movi r0, 7\n"
                         "  ret r0\n",
                         &Err);
  ASSERT_TRUE(F.has_value()) << Err;

  PipelineConfig C = raceConfig();
  PipelineConfig Lone = C;
  Lone.Portfolio = PortfolioConfig();
  Lone.S = resolvedPortfolioArms(C.Portfolio)[0].S;
  PipelineResult Arm0 = runPipeline(*F, Lone);
  ASSERT_EQ(encodedCost(Arm0), 0u)
      << "corpus assumption broken: tiny function is no longer cost 0";
  std::string Arm0Bytes = ResultCache::serializeResult(Arm0);

  // Serial race: arm 0 completes before arms 1 and 2 start, so the
  // cutoff must skip both.
  C.Portfolio.Jobs = 1;
  PortfolioOutcome Serial;
  PipelineResult RS = runPortfolio(*F, C, nullptr, &Serial);
  EXPECT_EQ(Serial.WinnerArm, 0u);
  EXPECT_EQ(Serial.ArmsCancelled, 2u);
  EXPECT_EQ(Serial.ArmsRun, 1u);
  EXPECT_EQ(Serial.ArmCosts[1], UINT64_MAX);
  EXPECT_EQ(Serial.ArmCosts[2], UINT64_MAX);
  EXPECT_EQ(ResultCache::serializeResult(RS), Arm0Bytes);

  // Parallel race: cancellation is best-effort, the commit is not.
  C.Portfolio.Jobs = 0;
  PortfolioOutcome Par;
  PipelineResult RP = runPortfolio(*F, C, nullptr, &Par);
  EXPECT_EQ(Par.WinnerArm, 0u);
  EXPECT_EQ(ResultCache::serializeResult(RP), Arm0Bytes);
  EXPECT_EQ(Par.ArmsRun + Par.ArmsCancelled, 3u);
}

//===----------------------------------------------------------------------===//
// Chooser
//===----------------------------------------------------------------------===//

namespace {

/// A single-leaf table that always predicts \p Arm at \p Confidence.
DecisionTable constantTable(int Arm, double Confidence) {
  DecisionTable T;
  T.Features = featureNames();
  T.Arms = defaultPortfolioArms();
  DecisionNode Leaf;
  Leaf.Feature = -1;
  Leaf.Arm = Arm;
  Leaf.Confidence = Confidence;
  Leaf.Samples = 12;
  T.Nodes.push_back(Leaf);
  return T;
}

} // namespace

// Choose mode without a table, and with a below-threshold table, must
// fall back to racing — committing bytes identical to forced Race mode.
TEST(PortfolioChooser, FallbackMatchesForcedRace) {
  for (auto &[Name, F] : buildCorpus()) {
    PipelineConfig Race = raceConfig();
    Race.Portfolio.Jobs = 2;
    std::string RaceBytes =
        ResultCache::serializeResult(runPortfolio(F, Race));

    PipelineConfig NoTable = Race;
    NoTable.Portfolio.Mode = PortfolioMode::Choose;
    PortfolioOutcome Out;
    PipelineResult R = runPortfolio(F, NoTable, nullptr, &Out);
    EXPECT_TRUE(Out.ChooserRaced) << Name;
    EXPECT_FALSE(Out.ChooserConfident) << Name;
    EXPECT_EQ(ResultCache::serializeResult(R), RaceBytes) << Name;

    DecisionTable Timid = constantTable(/*Arm=*/1, /*Confidence=*/0.5);
    PipelineConfig LowConf = NoTable;
    LowConf.Portfolio.Table = &Timid;
    LowConf.Portfolio.MinConfidence = 0.75;
    PortfolioOutcome Out2;
    PipelineResult R2 = runPortfolio(F, LowConf, nullptr, &Out2);
    EXPECT_TRUE(Out2.ChooserRaced) << Name;
    EXPECT_EQ(Out2.PredictedArm, 1) << Name;
    EXPECT_EQ(ResultCache::serializeResult(R2), RaceBytes) << Name;
  }
}

// A confident prediction compiles exactly one arm, and the committed
// bytes equal that arm's lone single-scheme compile.
TEST(PortfolioChooser, ConfidentPredictionRunsSingleArm) {
  ProgramProfile P;
  P.Seed = 19;
  P.TopStatements = 8;
  P.BodyStatements = 5;
  Function F = generateProgram("conf", P);

  DecisionTable T = constantTable(/*Arm=*/1, /*Confidence=*/0.9);
  PipelineConfig C = raceConfig();
  C.Portfolio.Mode = PortfolioMode::Choose;
  C.Portfolio.Table = &T;
  C.Portfolio.MinConfidence = 0.75;

  PortfolioOutcome Out;
  PipelineConfig WinnerCfg;
  PipelineResult R = runPortfolio(F, C, &WinnerCfg, &Out);
  EXPECT_TRUE(Out.ChooserConfident);
  EXPECT_FALSE(Out.ChooserRaced);
  EXPECT_EQ(Out.PredictedArm, 1);
  EXPECT_EQ(Out.WinnerArm, 1u);
  EXPECT_EQ(Out.ArmsRun, 1u);

  PortfolioArm Arm = resolvedPortfolioArms(C.Portfolio)[1];
  PipelineConfig Lone = C;
  Lone.Portfolio = PortfolioConfig();
  Lone.S = Arm.S;
  if (Arm.RemapStarts != 0)
    Lone.Remap.NumStarts = Arm.RemapStarts;
  EXPECT_EQ(ResultCache::serializeResult(R),
            ResultCache::serializeResult(runPipeline(F, Lone)));
  EXPECT_EQ(WinnerCfg.S, Arm.S);

  std::string Why;
  EXPECT_TRUE(functionsIdentical(R.F, runPipeline(F, Lone).F, &Why)) << Why;
}

//===----------------------------------------------------------------------===//
// Decision-table serialization (portfolio-v1)
//===----------------------------------------------------------------------===//

TEST(DecisionTableJson, RoundTripsAndFingerprintIsStable) {
  DecisionTable T;
  T.Features = featureNames();
  T.Arms = {{Scheme::Coalesce, 0}, {Scheme::Remap, 8}, {Scheme::Select, 0}};
  DecisionNode Root;
  Root.Feature = 4; // max_pressure
  Root.Threshold = 6.5;
  Root.Left = 1;
  Root.Right = 2;
  DecisionNode L, R;
  L.Feature = -1;
  L.Arm = 2;
  L.Confidence = 0.8;
  L.Samples = 5;
  R.Feature = -1;
  R.Arm = 1;
  R.Confidence = 1.0;
  R.Samples = 9;
  T.Nodes = {Root, L, R};
  std::string Err;
  ASSERT_TRUE(T.valid(&Err)) << Err;

  std::string Doc = T.toJson();
  DecisionTable Back;
  ASSERT_TRUE(DecisionTable::fromJson(Doc, Back, &Err)) << Err;
  EXPECT_EQ(Back.Arms, T.Arms);
  EXPECT_EQ(Back.Features, T.Features);
  ASSERT_EQ(Back.Nodes.size(), 3u);
  EXPECT_EQ(Back.fingerprint(), T.fingerprint());
  EXPECT_EQ(Back.toJson(), Doc); // Serialization is canonical.

  // Both routes predict identically.
  std::vector<double> Low(featureNames().size(), 0.0);
  std::vector<double> High(featureNames().size(), 0.0);
  High[4] = 9.0;
  EXPECT_EQ(Back.predict(Low).Arm, 2);
  EXPECT_DOUBLE_EQ(Back.predict(Low).Confidence, 0.8);
  EXPECT_EQ(Back.predict(High).Arm, 1);

  // Any change to the document changes the cache-key fingerprint.
  DecisionTable Other = T;
  Other.Nodes[1].Confidence = 0.9;
  EXPECT_NE(Other.fingerprint(), T.fingerprint());
}

TEST(DecisionTableJson, RejectsMalformedDocuments) {
  DecisionTable T;
  std::string Err;

  EXPECT_FALSE(DecisionTable::fromJson("{not json", T, &Err));

  EXPECT_FALSE(DecisionTable::fromJson(
      "{\"schema\":\"portfolio-v2\",\"features\":[],\"arms\":[],"
      "\"nodes\":[]}",
      T, &Err));

  // Wrong feature schema must be rejected, not silently misread.
  DecisionTable Good = constantTable(0, 0.9);
  DecisionTable BadFeat = Good;
  BadFeat.Features[0] = "num_bananas";
  EXPECT_FALSE(DecisionTable::fromJson(BadFeat.toJson(), T, &Err));
  EXPECT_NE(Err.find("feature"), std::string::npos) << Err;

  // Leaf arm index out of range.
  DecisionTable BadArm = Good;
  BadArm.Nodes[0].Arm = 99;
  EXPECT_FALSE(DecisionTable::fromJson(BadArm.toJson(), T, &Err));

  // A child that does not strictly follow its parent would make predict
  // loop; valid() (and therefore fromJson) must refuse it.
  DecisionTable Cyclic = Good;
  DecisionNode Root;
  Root.Feature = 0;
  Root.Threshold = 1;
  Root.Left = 0; // Self-reference.
  Root.Right = 1;
  Cyclic.Nodes.insert(Cyclic.Nodes.begin(), Root);
  EXPECT_FALSE(DecisionTable::fromJson(Cyclic.toJson(), T, &Err));
}

//===----------------------------------------------------------------------===//
// Features
//===----------------------------------------------------------------------===//

TEST(Features, DeterministicAndSchemaAligned) {
  for (auto &[Name, F] : buildCorpus()) {
    FunctionFeatures A = computeFeatures(F);
    FunctionFeatures B = computeFeatures(F);
    std::vector<double> VA = A.asVector(), VB = B.asVector();
    EXPECT_EQ(VA, VB) << Name << ": features not deterministic";
    ASSERT_EQ(VA.size(), featureNames().size()) << Name;
    EXPECT_GT(A.NumBlocks, 0.0) << Name;
    EXPECT_GT(A.NumInsts, 0.0) << Name;
    EXPECT_GE(A.AdjDensity, 0.0) << Name;
    EXPECT_LE(A.AdjDensity, 1.0) << Name;
    EXPECT_GE(A.MoveDensity, 0.0) << Name;
    EXPECT_LE(A.MoveDensity, 1.0) << Name;
  }
  // Extraction must not mutate its input.
  ProgramProfile P;
  P.Seed = 11;
  Function F = generateProgram("pure", P);
  Function Copy = F;
  (void)computeFeatures(F);
  std::string Why;
  EXPECT_TRUE(functionsIdentical(F, Copy, &Why)) << Why;
}
