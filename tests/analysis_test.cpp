//===- tests/analysis_test.cpp - Liveness and loop-info tests -------------===//

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// entry -> loop body (self loop) -> exit.
Function makeLoop() {
  Function F;
  F.MemWords = 4;
  uint32_t Entry = F.makeBlock();
  uint32_t Body = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId Sum = B.createMovImm(0);
  RegId I = B.createMovImm(5);
  B.createJmp(Body);
  B.setBlock(Body);
  B.createBinTo(Opcode::Add, Sum, Sum, I);
  B.createBinImmTo(Opcode::AddI, I, I, -1);
  B.createBr(I, Body, Exit);
  B.setBlock(Exit);
  B.createRet(Sum);
  F.recomputeCFG();
  return F;
}

} // namespace

TEST(Liveness, StraightLine) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(1); // r0
  RegId C = B.createMovImm(2); // r1
  RegId D = B.createBin(Opcode::Add, A, C);
  B.createRet(D);
  F.recomputeCFG();
  Liveness LV = Liveness::compute(F);
  EXPECT_TRUE(LV.liveIn(0).none());
  EXPECT_TRUE(LV.liveOut(0).none());
  // After the first movi, r0 is live (used by add).
  std::vector<size_t> LiveCounts;
  LV.forEachInstBackward(F, 0, [&](size_t, const BitVector &Live) {
    LiveCounts.push_back(Live.count());
  });
  // Backward order: ret(live-after {}), add({D}), movi r1({A,C}), movi
  // r0({A}).
  ASSERT_EQ(LiveCounts.size(), 4u);
  EXPECT_EQ(LiveCounts[0], 0u);
  EXPECT_EQ(LiveCounts[1], 1u);
  EXPECT_EQ(LiveCounts[2], 2u);
  EXPECT_EQ(LiveCounts[3], 1u);
}

TEST(Liveness, LoopCarriedValuesLiveAroundBackEdge) {
  Function F = makeLoop();
  Liveness LV = Liveness::compute(F);
  // Sum (r0) and I (r1) are live into and out of the body.
  EXPECT_TRUE(LV.liveIn(1).test(0));
  EXPECT_TRUE(LV.liveIn(1).test(1));
  EXPECT_TRUE(LV.liveOut(1).test(0));
  // Sum is live into the exit block (returned).
  EXPECT_TRUE(LV.liveIn(2).test(0));
  EXPECT_FALSE(LV.liveIn(2).test(1));
}

TEST(Liveness, MaxPressureLoop) {
  Function F = makeLoop();
  Liveness LV = Liveness::compute(F);
  EXPECT_EQ(LV.maxPressure(F), 2u);
}

TEST(Liveness, DeadDefNotLiveBefore) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId A = B.createMovImm(1);
  B.createMovImm(99); // Dead.
  B.createRet(A);
  F.recomputeCFG();
  Liveness LV = Liveness::compute(F);
  bool DeadIsLive = false;
  LV.forEachInstBackward(F, 0, [&](size_t Idx, const BitVector &Live) {
    if (Idx == 0)
      DeadIsLive = Live.test(1);
  });
  EXPECT_FALSE(DeadIsLive);
}

TEST(LoopInfo, StraightLineHasDepthZero) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  B.createRet(B.createMovImm(0));
  F.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(F);
  EXPECT_EQ(LI.depth(0), 0u);
  EXPECT_DOUBLE_EQ(LI.frequency(0), 1.0);
}

TEST(LoopInfo, SimpleLoopDepths) {
  Function F = makeLoop();
  LoopInfo LI = LoopInfo::compute(F);
  EXPECT_EQ(LI.depth(0), 0u);
  EXPECT_EQ(LI.depth(1), 1u);
  EXPECT_EQ(LI.depth(2), 0u);
  EXPECT_DOUBLE_EQ(LI.frequency(1), 10.0);
  ASSERT_EQ(LI.headers().size(), 1u);
  EXPECT_EQ(LI.headers()[0], 1u);
}

TEST(LoopInfo, NestedLoopDepthTwo) {
  // entry -> outer(header) -> inner(self) -> latch -> outer | exit.
  Function F;
  F.MemWords = 4;
  uint32_t Entry = F.makeBlock();
  uint32_t Outer = F.makeBlock();
  uint32_t Inner = F.makeBlock();
  uint32_t Latch = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId N = B.createMovImm(3);
  B.createJmp(Outer);
  B.setBlock(Outer);
  RegId M = B.createMovImm(2);
  B.createJmp(Inner);
  B.setBlock(Inner);
  B.createBinImmTo(Opcode::AddI, M, M, -1);
  B.createBr(M, Inner, Latch);
  B.setBlock(Latch);
  B.createBinImmTo(Opcode::AddI, N, N, -1);
  B.createBr(N, Outer, Exit);
  B.setBlock(Exit);
  B.createRet(N);
  F.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(F);
  EXPECT_EQ(LI.depth(Entry), 0u);
  EXPECT_EQ(LI.depth(Outer), 1u);
  EXPECT_EQ(LI.depth(Inner), 2u);
  EXPECT_EQ(LI.depth(Latch), 1u);
  EXPECT_EQ(LI.depth(Exit), 0u);
  EXPECT_DOUBLE_EQ(LI.frequency(Inner), 100.0);
}

TEST(LoopInfo, Dominance) {
  Function F = makeLoop();
  LoopInfo LI = LoopInfo::compute(F);
  EXPECT_TRUE(LI.dominates(0, 1));
  EXPECT_TRUE(LI.dominates(0, 2));
  EXPECT_TRUE(LI.dominates(1, 2));
  EXPECT_FALSE(LI.dominates(2, 1));
  EXPECT_TRUE(LI.dominates(1, 1));
}

TEST(LoopInfo, MultiLatchLoopCountedOnce) {
  // A loop with two back edges to the same header must yield depth 1, not
  // 2, for the shared body.
  Function F;
  F.MemWords = 4;
  uint32_t Entry = F.makeBlock();
  uint32_t Header = F.makeBlock();
  uint32_t Split = F.makeBlock();
  uint32_t LatchA = F.makeBlock();
  uint32_t LatchB = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId N = B.createMovImm(4);
  B.createJmp(Header);
  B.setBlock(Header);
  B.createBinImmTo(Opcode::AddI, N, N, -1);
  B.createBr(N, Split, Exit);
  B.setBlock(Split);
  RegId C = B.createBinImm(Opcode::AndI, N, 1);
  B.createBr(C, LatchA, LatchB);
  B.setBlock(LatchA);
  B.createJmp(Header);
  B.setBlock(LatchB);
  B.createJmp(Header);
  B.setBlock(Exit);
  B.createRet(N);
  F.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(F);
  EXPECT_EQ(LI.depth(Header), 1u);
  EXPECT_EQ(LI.depth(Split), 1u);
  EXPECT_EQ(LI.depth(LatchA), 1u);
  EXPECT_EQ(LI.headers().size(), 1u);
}
