//===- tests/metrics_test.cpp - Metrics registry tests --------------------===//

#include "driver/Json.h"
#include "driver/Metrics.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

using namespace dra;

namespace {

TEST(MetricLabels, CanonicalOrderAndKey) {
  MetricLabels L{{"scheme", "coalesce"}, {"function", "poly"}};
  ASSERT_EQ(L.entries().size(), 2u);
  EXPECT_EQ(L.entries()[0].first, "function"); // sorted, not insertion order
  EXPECT_EQ(L.key(), "function=poly,scheme=coalesce");

  L.set("scheme", "remap"); // last writer wins
  EXPECT_EQ(L.key(), "function=poly,scheme=remap");
  EXPECT_EQ(MetricLabels{}.key(), "");
}

TEST(MetricsRegistry, CountersAccumulatePerLabelSet) {
  MetricsRegistry Reg;
  EXPECT_TRUE(Reg.empty());
  Reg.count("x", 2, {{"scheme", "baseline"}});
  Reg.count("x", 3, {{"scheme", "baseline"}});
  Reg.count("x", 7, {{"scheme", "remap"}});
  Reg.count("a", 1);
  EXPECT_FALSE(Reg.empty());

  auto Counters = Reg.counters();
  ASSERT_EQ(Counters.size(), 3u);
  // Sorted by (name, label key).
  EXPECT_EQ(Counters[0].Name, "a");
  EXPECT_EQ(Counters[0].Value, 1);
  EXPECT_EQ(Counters[1].Name, "x");
  EXPECT_EQ(Counters[1].Labels.key(), "scheme=baseline");
  EXPECT_EQ(Counters[1].Value, 5);
  EXPECT_EQ(Counters[2].Labels.key(), "scheme=remap");
  EXPECT_EQ(Counters[2].Value, 7);
}

TEST(MetricsRegistry, SetCountIsIdempotentAcrossFlushes) {
  // The non-destructive flush path: a subsystem snapshots its own
  // monotonic totals into the registry repeatedly (the compile server's
  // periodic metrics export); the exported value must track the latest
  // snapshot, not the sum of every flush.
  MetricsRegistry Reg;
  Reg.setCount("server.requests", 10, {{"tier", "hit_mem"}});
  Reg.setCount("server.requests", 10, {{"tier", "hit_mem"}}); // re-flush
  Reg.setCount("server.requests", 25, {{"tier", "hit_mem"}}); // progress
  auto Counters = Reg.counters();
  ASSERT_EQ(Counters.size(), 1u);
  EXPECT_EQ(Counters[0].Value, 25);

  // setCount and count compose: an absolute snapshot replaces whatever
  // deltas accumulated, and later deltas build on top of it.
  Reg.count("server.requests", 5, {{"tier", "hit_mem"}});
  EXPECT_EQ(Reg.counters()[0].Value, 30);
  Reg.setCount("server.requests", 7, {{"tier", "hit_mem"}});
  EXPECT_EQ(Reg.counters()[0].Value, 7);
}

TEST(MetricsRegistry, GaugesLastWriterWins) {
  MetricsRegistry Reg;
  Reg.gauge("g", 1.5);
  Reg.gauge("g", 2.5);
  auto Gauges = Reg.gauges();
  ASSERT_EQ(Gauges.size(), 1u);
  EXPECT_EQ(Gauges[0].Value, 2.5);
}

TEST(MetricsRegistry, ConcurrentCountsAreExact) {
  MetricsRegistry Reg;
  constexpr int Threads = 8, PerThread = 5000;
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&Reg] {
      for (int I = 0; I != PerThread; ++I) {
        Reg.count("hits", 1, {{"scheme", "coalesce"}});
        Reg.observe("lat", 1.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();

  auto Counters = Reg.counters();
  ASSERT_EQ(Counters.size(), 1u);
  // Integer-valued doubles add exactly, so the result is deterministic
  // regardless of interleaving.
  EXPECT_EQ(Counters[0].Value, Threads * PerThread);
  auto Hists = Reg.histograms();
  ASSERT_EQ(Hists.size(), 1u);
  EXPECT_EQ(Hists[0].Count, static_cast<size_t>(Threads * PerThread));
  EXPECT_EQ(Hists[0].Sum, Threads * PerThread);
}

TEST(MetricsRegistry, HistogramBucketEdges) {
  MetricsRegistry Reg;
  Reg.defineBuckets("h", {1, 10, 100});
  // A value equal to an upper bound belongs to that bound's bucket
  // (half-open lower side: (prev, bound]).
  Reg.observe("h", 1);    // bucket le=1
  Reg.observe("h", 1.5);  // bucket le=10
  Reg.observe("h", 10);   // bucket le=10
  Reg.observe("h", 100);  // bucket le=100
  Reg.observe("h", 101);  // +inf overflow
  Reg.observe("h", -5);   // below everything -> first bucket

  auto Hists = Reg.histograms();
  ASSERT_EQ(Hists.size(), 1u);
  const auto &H = Hists[0];
  ASSERT_EQ(H.UpperBounds.size(), 3u);
  ASSERT_EQ(H.BucketCounts.size(), 4u);
  EXPECT_EQ(H.BucketCounts[0], 2u); // 1 and -5
  EXPECT_EQ(H.BucketCounts[1], 2u); // 1.5 and 10
  EXPECT_EQ(H.BucketCounts[2], 1u); // 100
  EXPECT_EQ(H.BucketCounts[3], 1u); // 101
  EXPECT_EQ(H.Count, 6u);
  EXPECT_EQ(H.Min, -5);
  EXPECT_EQ(H.Max, 101);
}

TEST(MetricsRegistry, HistogramPercentiles) {
  MetricsRegistry Reg;
  for (int I = 1; I <= 100; ++I)
    Reg.observe("p", I);
  auto Hists = Reg.histograms();
  ASSERT_EQ(Hists.size(), 1u);
  const auto &H = Hists[0];
  // adt/Statistics linear interpolation over 1..100.
  EXPECT_NEAR(H.P50, 50.5, 1e-9);
  EXPECT_NEAR(H.P90, 90.1, 1e-9);
  EXPECT_NEAR(H.P95, 95.05, 1e-9);
  EXPECT_NEAR(H.P99, 99.01, 1e-9);
  EXPECT_EQ(H.Sum, 5050);

  // Single-sample histogram: all percentiles collapse onto the sample.
  MetricsRegistry One;
  One.observe("p", 42);
  const auto H1 = One.histograms().at(0);
  EXPECT_EQ(H1.P50, 42);
  EXPECT_EQ(H1.P99, 42);
  EXPECT_EQ(H1.Min, 42);
  EXPECT_EQ(H1.Max, 42);
}

TEST(JsonEscape, QuotesBackslashesControlChars) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(WriteJsonNumber, LosslessIntegersAndDoubles) {
  auto Str = [](double V) {
    std::ostringstream OS;
    writeJsonNumber(OS, V);
    return OS.str();
  };
  EXPECT_EQ(Str(0), "0");
  EXPECT_EQ(Str(-3), "-3");
  // The satellite bug: default ostream precision printed this as
  // 1.23457e+14. Integral doubles must round-trip exactly.
  EXPECT_EQ(Str(123456789012345.0), "123456789012345");
  EXPECT_EQ(Str(0.5), "0.5");
  EXPECT_EQ(Str(std::nan("")), "0");          // JSON has no NaN
  EXPECT_EQ(Str(HUGE_VAL), "0");              // ... or Infinity
  double Big = std::ldexp(1.0, 60);           // beyond 2^53: not exact
  EXPECT_EQ(std::stod(Str(Big)), Big);        // but still round-trips
}

TEST(MetricsRegistry, JsonGolden) {
  MetricsRegistry Reg;
  Reg.count("batch.fns", 2, {{"scheme", "remap"}});
  Reg.gauge("cost", 1.5);
  Reg.defineBuckets("lat", {10, 20});
  Reg.observe("lat", 5);
  Reg.observe("lat", 25);

  std::ostringstream OS;
  Reg.writeJson(OS);
  EXPECT_EQ(OS.str(),
            "{\n"
            "  \"schema\": \"dra-metrics-v1\",\n"
            "  \"counters\": [\n"
            "    {\"name\": \"batch.fns\", \"labels\": {\"scheme\": "
            "\"remap\"}, \"value\": 2}\n"
            "  ],\n"
            "  \"gauges\": [\n"
            "    {\"name\": \"cost\", \"labels\": {}, \"value\": 1.5}\n"
            "  ],\n"
            "  \"histograms\": [\n"
            "    {\"name\": \"lat\", \"labels\": {}, \"count\": 2, \"sum\": "
            "30, \"min\": 5, \"max\": 25, \"p50\": 15, \"p90\": 23, "
            "\"p95\": 24, \"p99\": 24.8,\n"
            "     \"buckets\": [{\"le\": 10, \"count\": 1}, {\"le\": 20, "
            "\"count\": 0}, {\"le\": \"+inf\", \"count\": 1}]}\n"
            "  ]\n"
            "}\n");
}

TEST(LoadMetricsJson, RoundTripsRegistryOutput) {
  MetricsRegistry Reg;
  Reg.count("c\"tricky\\name", 3, {{"fn", "a b"}});
  Reg.gauge("g", -2.25);
  Reg.observe("h", 7, {{"stage", "alloc"}});

  std::ostringstream OS;
  Reg.writeJson(OS);
  std::istringstream In(OS.str());
  MetricsFileData Data;
  std::string Err;
  ASSERT_TRUE(loadMetricsJson(In, Data, &Err)) << Err;
  EXPECT_EQ(Data.Schema, "dra-metrics-v1");
  ASSERT_EQ(Data.Counters.size(), 1u);
  EXPECT_EQ(Data.Counters.at("c\"tricky\\name{fn=a b}"), 3);
  EXPECT_EQ(Data.Gauges.at("g"), -2.25);
  ASSERT_EQ(Data.Histograms.size(), 1u);
  const auto &H = Data.Histograms.at("h{stage=alloc}");
  EXPECT_EQ(H.Count, 1);
  EXPECT_EQ(H.Sum, 7);
  EXPECT_EQ(H.P50, 7);
  EXPECT_EQ(H.P95, 7);
}

TEST(LoadMetricsJson, AcceptsHistogramsWithoutP95) {
  // Metrics files written before the p95 field existed (the checked-in CI
  // baselines) must keep loading; the missing percentile reads as 0.
  std::istringstream In(
      "{\"schema\": \"dra-metrics-v1\", \"counters\": [], \"gauges\": [],"
      " \"histograms\": [{\"name\": \"h\", \"labels\": {}, \"count\": 1,"
      " \"sum\": 4, \"min\": 4, \"max\": 4, \"p50\": 4, \"p90\": 4,"
      " \"p99\": 4, \"buckets\": [{\"le\": \"+inf\", \"count\": 1}]}]}");
  MetricsFileData Data;
  std::string Err;
  ASSERT_TRUE(loadMetricsJson(In, Data, &Err)) << Err;
  EXPECT_EQ(Data.Histograms.at("h").P99, 4);
  EXPECT_EQ(Data.Histograms.at("h").P95, 0);
}

TEST(LoadMetricsJson, RejectsBadDocuments) {
  auto Load = [](const std::string &Text, std::string *Err = nullptr) {
    std::istringstream In(Text);
    MetricsFileData Data;
    return loadMetricsJson(In, Data, Err);
  };
  std::string Err;
  EXPECT_FALSE(Load("{not json", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(Load("{\"schema\": \"other-v9\", \"counters\": [], "
                    "\"gauges\": [], \"histograms\": []}",
                    &Err));
  // A histogram whose bucket counts do not add up to its count.
  EXPECT_FALSE(Load(
      "{\"schema\": \"dra-metrics-v1\", \"counters\": [], \"gauges\": [],"
      " \"histograms\": [{\"name\": \"h\", \"labels\": {}, \"count\": 5,"
      " \"sum\": 1, \"min\": 0, \"max\": 1, \"p50\": 0, \"p90\": 0,"
      " \"p99\": 0, \"buckets\": [{\"le\": 1, \"count\": 1}, {\"le\":"
      " \"+inf\", \"count\": 1}]}]}",
      &Err));
  // Counter samples must carry a name.
  EXPECT_FALSE(Load(
      "{\"schema\": \"dra-metrics-v1\", \"counters\": [{\"labels\": {},"
      " \"value\": 1}], \"gauges\": [], \"histograms\": []}",
      &Err));
}

TEST(ScopedSpanTest, NullSinkRecordsNothingNonNullNests) {
  { ScopedSpan Off(nullptr, "x"); } // must be a no-op
  std::vector<StageSpan> Spans;
  {
    ScopedSpan Outer(&Spans, "alloc", 0);
    { ScopedSpan Inner(&Spans, "alloc.round", 1); }
  }
  ASSERT_EQ(Spans.size(), 2u);
  // Inner scopes close first.
  EXPECT_STREQ(Spans[0].Stage, "alloc.round");
  EXPECT_EQ(Spans[0].Depth, 1u);
  EXPECT_STREQ(Spans[1].Stage, "alloc");
  EXPECT_EQ(Spans[1].Depth, 0u);
  EXPECT_LE(Spans[1].BeginNs, Spans[0].BeginNs);
  EXPECT_GE(Spans[1].EndNs, Spans[0].EndNs);
}

TEST(MetricsRegistry, SnapshotFlushRacesWithWorkerIncrements) {
  // The server's flushMetrics idiom: an atomic source counter mirrored
  // into the registry with setCount while workers keep incrementing and
  // other counters accumulate via count(). Snapshots taken mid-race must
  // be internally consistent, and two consecutive flushes after
  // quiescence must agree exactly — setCount is idempotent, so nothing is
  // lost or double-counted no matter how the flush interleaved.
  MetricsRegistry Reg;
  std::atomic<uint64_t> Source{0};
  std::atomic<bool> Stop{false};
  constexpr int Workers = 4, PerWorker = 5000;

  std::thread Flusher([&] {
    double LastSeen = 0;
    while (!Stop.load()) {
      Reg.setCount("server.requests", double(Source.load()));
      for (const auto &C : Reg.counters()) // concurrent snapshot
        if (C.Name == "server.requests") {
          EXPECT_GE(C.Value, LastSeen); // mirror never goes backwards
          LastSeen = C.Value;
        }
    }
  });
  std::vector<std::thread> Producers;
  for (int W = 0; W != Workers; ++W)
    Producers.emplace_back([&] {
      for (int I = 0; I != PerWorker; ++I) {
        Source.fetch_add(1);
        Reg.count("worker.ops", 1.0);
      }
    });
  for (std::thread &T : Producers)
    T.join();
  Stop.store(true);
  Flusher.join();

  auto ValueOf = [&](const char *Name) {
    for (const auto &C : Reg.counters())
      if (C.Name == Name)
        return C.Value;
    return -1.0;
  };
  const double Expected = double(Workers) * PerWorker;
  Reg.setCount("server.requests", double(Source.load()));
  EXPECT_EQ(Expected, ValueOf("server.requests"));
  EXPECT_EQ(Expected, ValueOf("worker.ops"));
  Reg.setCount("server.requests", double(Source.load())); // second flush
  EXPECT_EQ(Expected, ValueOf("server.requests")); // unchanged, not doubled
  EXPECT_EQ(Expected, ValueOf("worker.ops"));
}

TEST(ParseJson, ReadsOurFormatsAndRejectsGarbage) {
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(
      "{\"a\": [1, 2.5, -3], \"b\": {\"s\": \"x\\n\"}, "
      "\"t\": true, \"n\": null}",
      V, &Err))
      << Err;
  ASSERT_EQ(JsonValue::Object, V.K);
  ASSERT_NE(nullptr, V.field("a"));
  EXPECT_EQ(3u, V.field("a")->Arr.size());
  EXPECT_EQ(2.5, V.field("a")->Arr[1].Num);
  EXPECT_EQ("x\n", V.field("b")->field("s")->Str);
  EXPECT_TRUE(V.field("t")->B);
  EXPECT_EQ(JsonValue::Null, V.field("n")->K);
  EXPECT_EQ(nullptr, V.field("missing"));

  EXPECT_FALSE(parseJson("", V, &Err));
  EXPECT_FALSE(parseJson("{", V, &Err));
  EXPECT_FALSE(parseJson("{} trailing", V, &Err)); // complete doc only
  EXPECT_FALSE(parseJson("{\"a\": }", V, &Err));
  EXPECT_FALSE(parseJson("[1, 2,]", V, &Err));
  EXPECT_FALSE(parseJson("nope", V, &Err));
  EXPECT_FALSE(Err.empty()); // offset diagnostic populated
}

} // namespace
