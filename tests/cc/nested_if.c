// Nested conditions classifying a point: x=3,y=-2 -> quadrant 4 code.
// expect: 4
int main() {
  int x = 3;
  int y = -2;
  int q = 0;
  if (x > 0) {
    if (y > 0) {
      q = 1;
    } else {
      q = 4;
    }
  } else {
    if (y > 0) {
      q = 2;
    } else {
      q = 3;
    }
  }
  return q;
}
