// Helpers calling helpers (still acyclic): square uses mul, poly uses
// both. poly(x) = x^2 + 3x + 1 at x=6 -> 36+18+1 = 55.
// expect: 55
int mul(int a, int b) {
  return a * b;
}
int square(int x) {
  return mul(x, x);
}
int poly(int x) {
  return square(x) + mul(3, x) + 1;
}
int main() {
  return poly(6);
}
