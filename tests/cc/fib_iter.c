// Iterative Fibonacci: fib(20) = 6765.
// expect: 6765
int main() {
  int a = 0;
  int b = 1;
  for (int i = 0; i < 20; i = i + 1) {
    int t = a + b;
    a = b;
    b = t;
  }
  return a;
}
