// if/else chains, including a dangling else bound to the nearest if.
// expect: 21
int main() {
  int x = 7;
  int r = 0;
  if (x > 10)
    r = 1;
  else if (x > 5)
    r = 21;
  else
    r = 3;
  if (x == 7)
    if (x > 100)
      r = 4;
  return r;
}
