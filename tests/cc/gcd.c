// Euclid in a helper function (inlined at the call site): gcd(252,105)=21.
// expect: 21
int gcd(int a, int b) {
  while (b != 0) {
    int t = a % b;
    a = b;
    b = t;
  }
  return a;
}
int main() {
  return gcd(252, 105);
}
