// Insertion sort in a helper taking the array by reference; main checks
// sortedness and returns the median element (sorted: 2 4 6 7 9 11 13).
// expect: 7
int sort(int a[], int n) {
  for (int i = 1; i < n; i = i + 1) {
    int key = a[i];
    int j = i - 1;
    while (j >= 0 && a[j] > key) {
      a[j + 1] = a[j];
      j = j - 1;
    }
    a[j + 1] = key;
  }
  return 0;
}
int main() {
  int a[7];
  a[0] = 13;
  a[1] = 6;
  a[2] = 2;
  a[3] = 11;
  a[4] = 4;
  a[5] = 9;
  a[6] = 7;
  sort(a, 7);
  for (int i = 1; i < 7; i = i + 1) {
    if (a[i - 1] > a[i])
      return 100;
  }
  return a[3];
}
