// Classic while loop: sum 1..10 = 55.
// expect: 55
int main() {
  int s = 0;
  int i = 1;
  while (i <= 10) {
    s = s + i;
    i = i + 1;
  }
  return s;
}
