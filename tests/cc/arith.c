// Basic arithmetic on locals. 6*7 - 100/4 + 17%5 = 42 - 25 + 2 = 19.
// expect: 19
int main() {
  int a = 6 * 7;
  int b = 100 / 4;
  int c = 17 % 5;
  return a - b + c;
}
