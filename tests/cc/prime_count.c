// Trial-division prime counting: 25 primes below 100.
// expect: 25
int is_prime(int n) {
  if (n < 2)
    return 0;
  for (int d = 2; d * d <= n; d = d + 1) {
    if (n % d == 0)
      return 0;
  }
  return 1;
}
int main() {
  int count = 0;
  for (int n = 2; n < 100; n = n + 1) {
    count = count + is_prime(n);
  }
  return count;
}
