// Bucket a pseudo-sequence mod 4 and return the weighted bucket sum.
// Values i*7%16 for i in 0..15 hit each residue class mod 4 exactly 4
// times, so the histogram is flat: 4 + 2*4 + 3*4 + 4*4 = 40.
// expect: 40
int main() {
  int h[4];
  for (int i = 0; i < 4; i = i + 1) {
    h[i] = 0;
  }
  for (int i = 0; i < 16; i = i + 1) {
    int v = i * 7 % 16;
    h[v % 4] = h[v % 4] + 1;
  }
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) {
    s = s + (i + 1) * h[i];
  }
  return s;
}
