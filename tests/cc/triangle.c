// Triangle-shaped inner loop: sum over i of (number of j<i) = 0+1+..+7.
// expect: 28
int main() {
  int c = 0;
  for (int i = 0; i < 8; i = i + 1) {
    for (int j = 0; j < i; j = j + 1) {
      c = c + 1;
    }
  }
  return c;
}
