// C operator precedence: 2+3*4 = 14, (2+3)*4 = 20, 1<<2+1 = 8,
// 7&3|4 = 7, 14 - 20 + 8 + 7 = 9.
// expect: 9
int main() {
  int a = 2 + 3 * 4;
  int b = (2 + 3) * 4;
  int c = 1 << 2 + 1;
  int d = 7 & 3 | 4;
  return a - b + c + d;
}
