// && and || must not evaluate their right side when the left decides:
// the guarded assignments would otherwise flip t. Also checks 0/1
// normalization of truthy values.
// expect: 12
int main() {
  int t = 10;
  int a = 0 && (t = 1);
  int b = 1 || (t = 2);
  int c = 7 && 9;
  int d = 0 || 0;
  return t + a + b + c + d;
}
