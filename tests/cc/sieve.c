// Sieve of Eratosthenes over [2, 50): 15 primes below 50.
// expect: 15
int main() {
  int composite[50];
  for (int i = 0; i < 50; i = i + 1) {
    composite[i] = 0;
  }
  for (int p = 2; p < 50; p = p + 1) {
    if (composite[p] == 0) {
      for (int m = p * 2; m < 50; m = m + p) {
        composite[m] = 1;
      }
    }
  }
  int count = 0;
  for (int i = 2; i < 50; i = i + 1) {
    if (composite[i] == 0)
      count = count + 1;
  }
  return count;
}
