// Inner declarations shadow outer ones and scope out at the brace.
// expect: 113
int main() {
  int x = 100;
  int s = 0;
  {
    int x = 1;
    s = s + x;
  }
  for (int x = 0; x < 3; x = x + 1) {
    int y = x * 2;
    s = s + y;
  }
  s = s + x;
  return s + 6;
}
