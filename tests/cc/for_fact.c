// for loop with init declaration: 7! = 5040.
// expect: 5040
int main() {
  int f = 1;
  for (int i = 2; i <= 7; i = i + 1) {
    f = f * i;
  }
  return f;
}
