// 3x3 matrix product in flat arrays: C = A*B with A[i][j] = i+j and
// B[i][j] = i*3+j (row-major). Returns the trace of C.
// C[0][0]=0*0+1*3+2*6=15, C[1][1]=1*1+2*4+3*7=30, C[2][2]=2*2+3*5+4*8=51;
// trace = 96.
// expect: 96
int main() {
  int a[9];
  int b[9];
  int c[9];
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 3; j = j + 1) {
      a[i * 3 + j] = i + j;
      b[i * 3 + j] = i * 3 + j;
    }
  }
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 3; j = j + 1) {
      int s = 0;
      for (int k = 0; k < 3; k = k + 1) {
        s = s + a[i * 3 + k] * b[k * 3 + j];
      }
      c[i * 3 + j] = s;
    }
  }
  return c[0] + c[4] + c[8];
}
