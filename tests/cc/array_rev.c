// In-place reversal, then check the permutation landed: a[i] = 7-i.
// expect: 1
int main() {
  int a[8];
  for (int i = 0; i < 8; i = i + 1) {
    a[i] = i;
  }
  int lo = 0;
  int hi = 7;
  while (lo < hi) {
    int t = a[lo];
    a[lo] = a[hi];
    a[hi] = t;
    lo = lo + 1;
    hi = hi - 1;
  }
  int ok = 1;
  for (int i = 0; i < 8; i = i + 1) {
    if (a[i] != 7 - i)
      ok = 0;
  }
  return ok;
}
