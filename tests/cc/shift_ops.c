// Shifts on non-negative values (where logical and arithmetic agree):
// (1<<10) + (1024>>3) + (5<<2>>1) = 1024 + 128 + 10 = 1162.
// expect: 1162
int main() {
  int a = 1 << 10;
  int b = 1024 >> 3;
  int c = 5 << 2 >> 1;
  return a + b + c;
}
