// 64-bit arithmetic: values far beyond 32 bits stay exact.
// 3000000000 * 3 + 1 = 9000000001 (needs 34 bits).
// expect: 9000000001
int main() {
  int big = 3000000000;
  int r = big * 3 + 1;
  return r;
}
