// break leaves only the innermost loop; continue skips to the step.
// Trace: i=0 adds j=0,1 -> 0+1; i=1 continues; i=2 adds 20+21; i=3
// breaks before its inner loop. Total 1 + 41 = 42.
// expect: 42
int main() {
  int s = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if (i == 1)
      continue;
    if (i == 3)
      break;
    for (int j = 0; j < 4; j = j + 1) {
      if (j == 2)
        continue;
      if (j == 3)
        break;
      s = s + i * 10 + j;
    }
  }
  return s;
}
