// Nested counted loops: sum of i*j over 1..4 x 1..4 = (1+2+3+4)^2 = 100.
// expect: 100
int main() {
  int s = 0;
  for (int i = 1; i <= 4; i = i + 1) {
    for (int j = 1; j <= 4; j = j + 1) {
      s = s + i * j;
    }
  }
  return s;
}
