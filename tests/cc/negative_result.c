// Negative return values round-trip through every scheme.
// expect: -273
int main() {
  int freezing = 0;
  int r = freezing - 273;
  return r;
}
