// Array parameters bind by reference: fill writes the caller's array,
// sum reads it back. sum of 3*i+1 for i in 0..5 = 3*15+6 = 51.
// expect: 51
int fill(int a[], int n) {
  for (int i = 0; i < n; i = i + 1) {
    a[i] = 3 * i + 1;
  }
  return 0;
}
int sum(int a[], int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
int main() {
  int a[6];
  fill(a, 6);
  return sum(a, 6);
}
