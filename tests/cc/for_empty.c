// for with empty init/step clauses and a side-effecting condition.
// expect: 10
int main() {
  int i = 0;
  int s = 0;
  for (; i < 5;) {
    s = s + 2;
    i = i + 1;
  }
  return s;
}
