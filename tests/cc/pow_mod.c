// Square-and-multiply modular exponentiation: 7^13 mod 1000 = 407.
// expect: 407
int pow_mod(int base, int exp, int mod) {
  int r = 1;
  base = base % mod;
  while (exp > 0) {
    if (exp % 2 == 1)
      r = r * base % mod;
    base = base * base % mod;
    exp = exp / 2;
  }
  return r;
}
int main() {
  return pow_mod(7, 13, 1000);
}
