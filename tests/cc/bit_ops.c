// Bitwise and/or/xor on positive patterns: (0xF0&0x3C)|(0x0F^0x05)
// = 0x30 | 0x0A = 0x3A = 58.
// expect: 58
int main() {
  int a = 240 & 60;
  int b = 15 ^ 5;
  return a | b;
}
