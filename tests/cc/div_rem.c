// Division semantics are the IR's total ones: truncation toward zero
// like C, but division or remainder by zero yields 0 instead of
// trapping (so this file has no C-compiler oracle).
// -7/2 = -3, -7%2 = -1, 9/0 = 0, 9%0 = 0 -> -3 + -1 + 0 + 0 + 10 = 6.
// expect: 6
int main() {
  int z = 0;
  int a = -7 / 2;
  int b = -7 % 2;
  int c = 9 / z;
  int d = 9 % z;
  return a + b + c + d + 10;
}
