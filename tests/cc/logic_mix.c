// Mixed logical/bitwise expressions: (1&&2)|4 = 5, (3||0)&1 = 1,
// !(5&&0) = 1 -> 5 + 1 + 1 = 7.
// expect: 7
int main() {
  int a = (1 && 2) | 4;
  int b = (3 || 0) & 1;
  int c = !(5 && 0);
  return a + b + c;
}
