// Deliberately malformed: missing semicolon. Used by the ctest entry
// that asserts dra-cc rejects bad input with a positioned diagnostic.
// (Kept in bad/, which the corpus runner's non-recursive scan skips.)
int main() {
  int x = 1
  return x;
}
