// The smallest corpus program: main returns a constant.
// expect: 0
int main() {
  return 0;
}
