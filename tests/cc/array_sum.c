// Fill an array with squares and sum it: 0+1+4+...+81 = 285.
// expect: 285
int main() {
  int a[10];
  for (int i = 0; i < 10; i = i + 1) {
    a[i] = i * i;
  }
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
