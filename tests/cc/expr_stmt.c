// Assignments are expressions: chained a = b = c, and a value-producing
// assignment inside a condition. a=b=5 -> both 5; (x = a+b) == 10 holds.
// expect: 30
int main() {
  int a = 0;
  int b = 0;
  int x = 0;
  a = b = 5;
  if ((x = a + b) == 10) {
    return a + b + x + 10;
  }
  return 0;
}
