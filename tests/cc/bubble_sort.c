// Bubble sort, then a checksum weighting each element by its slot.
// Sorted: 1 2 3 5 8 9; checksum = sum (i+1)*a[i] = 1+4+9+20+40+54=128.
// expect: 128
int main() {
  int a[6];
  a[0] = 9;
  a[1] = 3;
  a[2] = 8;
  a[3] = 1;
  a[4] = 5;
  a[5] = 2;
  for (int i = 0; i < 5; i = i + 1) {
    for (int j = 0; j < 5 - i; j = j + 1) {
      if (a[j] > a[j + 1]) {
        int t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
    }
  }
  int s = 0;
  for (int i = 0; i < 6; i = i + 1) {
    s = s + (i + 1) * a[i];
  }
  return s;
}
