// Collatz steps from 27 (a classic long chain): 111 steps to reach 1.
// expect: 111
int main() {
  int n = 27;
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  return steps;
}
