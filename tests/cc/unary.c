// Unary minus, logical not, bitwise not. -(-5)=5, !0=1, !7=0, ~0=-1,
// 5 + 1 + 0 + (-1) + 10 = 15.
// expect: 15
int main() {
  int a = -(-5);
  int b = !0;
  int c = !7;
  int d = ~0;
  return a + b + c + d + 10;
}
