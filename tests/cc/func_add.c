// Simple scalar helpers; calls are inlined so each call site gets its
// own copy. add(3,4)+add(10,20)+twice(6) = 7 + 30 + 12 = 49.
// expect: 49
int add(int a, int b) {
  return a + b;
}
int twice(int x) {
  return x + x;
}
int main() {
  return add(3, 4) + add(10, 20) + twice(6);
}
