// Comparison operators produce 0/1. 1+0+1+1+0+1 = 4.
// expect: 4
int main() {
  int x = 5;
  return (x < 9) + (x < 5) + (x <= 5) + (x > -1) + (x >= 6) + (x == 5);
}
