//===- tests/pipeline_test.cpp - End-to-end pipeline tests ----------------===//

#include "core/Encoder.h"
#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "workloads/MiBench.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

PipelineConfig fastConfig(Scheme S) {
  PipelineConfig C;
  C.S = S;
  C.BaselineK = 8;
  C.Enc = lowEndConfig(12);
  C.Remap.NumStarts = 30;
  return C;
}

} // namespace

/// Every scheme must preserve program semantics on every benchmark.
class PipelineSemantics
    : public ::testing::TestWithParam<std::tuple<std::string, Scheme>> {};

TEST_P(PipelineSemantics, FingerprintPreserved) {
  auto [Name, S] = GetParam();
  Function F = miBenchProgram(Name);
  ExecResult Before = interpret(F);
  PipelineResult R = runPipeline(F, fastConfig(S));
  std::string Err;
  ASSERT_TRUE(verifyFunction(R.F, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(R.F)), fingerprint(Before));
  EXPECT_EQ(R.NumInsts, R.F.numInsts());
  EXPECT_EQ(R.SpillInsts, R.F.numSpillInsts());
  EXPECT_EQ(R.SetLastRegs, R.F.numSetLastRegs());
  EXPECT_EQ(R.CodeBytes, 2 * R.NumInsts);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllSchemes, PipelineSemantics,
    ::testing::Combine(
        ::testing::Values("basicmath", "qsort", "dijkstra", "crc32",
                          "stringsearch"),
        ::testing::Values(Scheme::Baseline, Scheme::OSpill, Scheme::Remap,
                          Scheme::Select, Scheme::Coalesce)));

TEST(Pipeline, BaselineUsesDirectEncoding) {
  Function F = miBenchProgram("crc32");
  PipelineResult R = runPipeline(F, fastConfig(Scheme::Baseline));
  EXPECT_FALSE(R.DiffEncoded);
  EXPECT_EQ(R.SetLastRegs, 0u);
  EXPECT_EQ(R.F.NumRegs, 8u);
}

TEST(Pipeline, DifferentialSchemesAddressTwelveRegisters) {
  Function F = miBenchProgram("crc32");
  for (Scheme S : {Scheme::Remap, Scheme::Select, Scheme::Coalesce}) {
    PipelineResult R = runPipeline(F, fastConfig(S));
    EXPECT_TRUE(R.DiffEncoded);
    EXPECT_EQ(R.F.NumRegs, 12u) << schemeName(S);
    // The encoding must be decodable along all paths.
    std::string Err;
    EXPECT_TRUE(verifyDecodable(R.F, lowEndConfig(12), &Err))
        << schemeName(S) << ": " << Err;
  }
}

TEST(Pipeline, MoreRegistersMeanFewerSpills) {
  Function F = miBenchProgram("susan");
  PipelineResult Base = runPipeline(F, fastConfig(Scheme::Baseline));
  PipelineResult Sel = runPipeline(F, fastConfig(Scheme::Select));
  EXPECT_LT(Sel.SpillInsts, Base.SpillInsts);
}

TEST(Pipeline, SelectCostsNoMoreThanRemap) {
  // Approach 2 subsumes approach 1 (remapping runs as its post-pass), so
  // its set_last_reg count must not exceed remapping's.
  Function F = miBenchProgram("basicmath");
  PipelineResult Remap = runPipeline(F, fastConfig(Scheme::Remap));
  PipelineResult Sel = runPipeline(F, fastConfig(Scheme::Select));
  EXPECT_LE(Sel.SetLastRegs, Remap.SetLastRegs);
}

TEST(Pipeline, OSpillSpillsNoMoreThanBaseline) {
  Function F = miBenchProgram("susan");
  PipelineResult Base = runPipeline(F, fastConfig(Scheme::Baseline));
  PipelineResult OS = runPipeline(F, fastConfig(Scheme::OSpill));
  EXPECT_LE(OS.SpillInsts, Base.SpillInsts);
}

TEST(Pipeline, AdaptiveNeverLosesToBaselineEstimate) {
  // With AdaptiveEnable, the result is either the differential scheme (it
  // paid off) or the baseline (flagged as fallback).
  PipelineConfig C = fastConfig(Scheme::Select);
  C.AdaptiveEnable = true;
  Function F = miBenchProgram("crc32");
  PipelineResult R = runPipeline(F, C);
  if (R.AdaptiveFellBack) {
    EXPECT_FALSE(R.DiffEncoded);
    EXPECT_EQ(R.SetLastRegs, 0u);
  } else {
    EXPECT_TRUE(R.DiffEncoded);
  }
}

TEST(Pipeline, SchemeNames) {
  EXPECT_STREQ(schemeName(Scheme::Baseline), "baseline");
  EXPECT_STREQ(schemeName(Scheme::OSpill), "O-spill");
  EXPECT_STREQ(schemeName(Scheme::Remap), "remapping");
  EXPECT_STREQ(schemeName(Scheme::Select), "select");
  EXPECT_STREQ(schemeName(Scheme::Coalesce), "coalesce");
}

TEST(Pipeline, StatsPercentagesConsistent) {
  Function F = miBenchProgram("dijkstra");
  PipelineResult R = runPipeline(F, fastConfig(Scheme::Coalesce));
  EXPECT_NEAR(R.spillPercent(),
              100.0 * double(R.SpillInsts) / double(R.NumInsts), 1e-9);
  EXPECT_NEAR(R.setLastPercent(),
              100.0 * double(R.SetLastRegs) / double(R.NumInsts), 1e-9);
}

/// Invariants must hold across the whole encoding-parameter plane, not
/// just the paper's RegN = 12 point.
class PipelineConfigSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::string>> {};

TEST_P(PipelineConfigSweep, SelectPipelineSoundForAnyRegN) {
  auto [RegN, Name] = GetParam();
  Function F = miBenchProgram(Name);
  ExecResult Before = interpret(F);
  PipelineConfig C;
  C.S = Scheme::Select;
  C.BaselineK = 8;
  C.Enc = lowEndConfig(RegN);
  C.Remap.NumStarts = 20;
  PipelineResult R = runPipeline(F, C);
  EXPECT_EQ(R.F.NumRegs, RegN);
  std::string Err;
  ASSERT_TRUE(verifyFunction(R.F, &Err)) << Err;
  ASSERT_TRUE(verifyDecodable(R.F, C.Enc, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(R.F)), fingerprint(Before));
}

INSTANTIATE_TEST_SUITE_P(
    RegNPlane, PipelineConfigSweep,
    ::testing::Combine(::testing::Values(9u, 10u, 12u, 14u, 16u),
                       ::testing::Values("crc32", "stringsearch")));

TEST(Pipeline, DstFirstOrderAlsoDecodable) {
  Function F = miBenchProgram("crc32");
  ExecResult Before = interpret(F);
  PipelineConfig C;
  C.S = Scheme::Select;
  C.Enc = lowEndConfig(12);
  C.Enc.Order = AccessOrder::DstFirst;
  C.Remap.NumStarts = 20;
  PipelineResult R = runPipeline(F, C);
  std::string Err;
  ASSERT_TRUE(verifyDecodable(R.F, C.Enc, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(R.F)), fingerprint(Before));
}
