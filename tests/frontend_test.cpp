//===- tests/frontend_test.cpp - Mini-C frontend unit tests ---------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"

#include "fuzz/Invariants.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

/// Compiles \p Src (must succeed) and returns main's return value under
/// the interpreter.
int64_t run(const std::string &Src) {
  CcDiag D;
  std::optional<Function> F = compileCSource("t", Src, &D);
  EXPECT_TRUE(F.has_value()) << D.render() << "\n" << Src;
  if (!F)
    return INT64_MIN;
  ExecResult R = interpret(*F);
  EXPECT_FALSE(R.HitStepLimit);
  return R.ReturnValue;
}

/// Compiles \p Src expecting failure; returns the rendered diagnostic.
std::string expectReject(const std::string &Src) {
  CcDiag D;
  std::optional<Function> F = compileCSource("t", Src, &D);
  EXPECT_FALSE(F.has_value()) << "compiled unexpectedly:\n" << Src;
  return D.render();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokensCarryPositions) {
  std::vector<Token> T;
  CcDiag D;
  ASSERT_TRUE(tokenize("int x = 42;\n  x;", T, &D)) << D.render();
  ASSERT_EQ(T.size(), 8u); // int x = 42 ; x ; eof
  EXPECT_EQ(T[0].Kind, TokKind::Ident);
  EXPECT_EQ(T[0].Text, "int");
  EXPECT_EQ(T[0].Line, 1u);
  EXPECT_EQ(T[0].Col, 1u);
  EXPECT_EQ(T[3].Kind, TokKind::Num);
  EXPECT_EQ(T[3].Num, 42);
  EXPECT_EQ(T[3].Col, 9u);
  EXPECT_EQ(T[5].Text, "x");
  EXPECT_EQ(T[5].Line, 2u);
  EXPECT_EQ(T[5].Col, 3u);
  EXPECT_EQ(T.back().Kind, TokKind::Eof);
}

TEST(Lexer, MultiCharOperatorsAreSingleTokens) {
  std::vector<Token> T;
  ASSERT_TRUE(tokenize("<= >= == != && || << >>", T));
  ASSERT_EQ(T.size(), 9u);
  const char *Expected[] = {"<=", ">=", "==", "!=", "&&", "||", "<<", ">>"};
  for (size_t I = 0; I != 8; ++I) {
    EXPECT_EQ(T[I].Kind, TokKind::Punct);
    EXPECT_EQ(T[I].Text, Expected[I]);
  }
}

TEST(Lexer, CommentsAreSkippedAndTracked) {
  std::vector<Token> T;
  ASSERT_TRUE(tokenize("a // to line end\n/* multi\nline */ b", T));
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  // The block comment spans two lines: b sits on line 3 after "line */ ".
  EXPECT_EQ(T[1].Line, 3u);
  EXPECT_EQ(T[1].Col, 9u);
}

TEST(Lexer, LiteralOverflowIsAnError) {
  std::vector<Token> T;
  CcDiag D;
  // INT64_MAX lexes; one more does not (no silent wrap).
  ASSERT_TRUE(tokenize("9223372036854775807", T, &D)) << D.render();
  EXPECT_EQ(T[0].Num, INT64_MAX);
  EXPECT_FALSE(tokenize("9223372036854775808", T, &D));
  EXPECT_NE(D.Message.find("out of range"), std::string::npos) << D.render();
  EXPECT_EQ(D.Line, 1u);
}

TEST(Lexer, UnterminatedBlockCommentIsAnError) {
  std::vector<Token> T;
  CcDiag D;
  EXPECT_FALSE(tokenize("a /* never closed", T, &D));
  EXPECT_NE(D.Message.find("comment"), std::string::npos) << D.render();
}

TEST(Lexer, RejectsUnknownCharacter) {
  std::vector<Token> T;
  CcDiag D;
  EXPECT_FALSE(tokenize("int @x;", T, &D));
  EXPECT_EQ(D.Line, 1u);
  EXPECT_EQ(D.Col, 5u);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, PrecedenceAndAssociativity) {
  // Each row is (expression, value): computed through the full
  // tokenize/parse/lower/interpret path, so a mis-bound operator changes
  // the observable result.
  struct Row {
    const char *Expr;
    int64_t Expected;
  };
  static const Row Rows[] = {
      {"1 + 2 * 3", 7},          // * over +
      {"(1 + 2) * 3", 9},        // parens
      {"10 - 4 - 3", 3},         // - left-assoc
      {"100 / 10 / 5", 2},       // / left-assoc
      {"1 << 2 + 1", 8},         // + over <<
      {"7 & 3 == 3", 1},         // == over & (the C gotcha)
      {"1 | 2 ^ 2", 1},          // ^ over |
      {"2 + 3 < 6", 1},          // + over <
      {"1 < 2 == 1", 1},         // < over ==
      {"0 || 1 && 0", 0},        // && over ||
      {"-2 * 3", -6},            // unary binds tighter than *
      {"!0 + 1", 2},             // unary over +
      {"~0 & 7", 7},             // unary over &
      {"-(3 - 5)", 2},           //
      {"64 >> 2 >> 1", 8},       // >> left-assoc
  };
  for (const Row &R : Rows)
    EXPECT_EQ(run(std::string("int main() { return ") + R.Expr + "; }"),
              R.Expected)
        << R.Expr;
}

TEST(Parser, AssignmentIsRightAssociative) {
  EXPECT_EQ(run("int main() { int a; int b; a = b = 5; return a + b; }"),
            10);
  // Assignment is an expression and yields the stored value.
  EXPECT_EQ(run("int main() { int a; return (a = 7) + a; }"), 14);
}

TEST(Parser, AstShapeForPrecedence) {
  // Spot-check the tree itself: 1 + 2 * 3 must parse as 1 + (2 * 3).
  std::optional<CProgram> P =
      parseCSource("int main() { return 1 + 2 * 3; }");
  ASSERT_TRUE(P.has_value());
  const CStmt &Body = *P->Funcs[0].Body;
  ASSERT_EQ(Body.Body.size(), 1u);
  const CExpr &E = *Body.Body[0]->Init;
  ASSERT_EQ(E.K, CExpr::Kind::Binary);
  EXPECT_EQ(E.Bin, CBinOp::Add);
  ASSERT_EQ(E.Rhs->K, CExpr::Kind::Binary);
  EXPECT_EQ(E.Rhs->Bin, CBinOp::Mul);
}

TEST(Parser, DiagnosticsCarryPositions) {
  struct Row {
    const char *Src;
    const char *MsgPart;
    uint32_t Line, Col;
  };
  static const Row Rows[] = {
      {"int main() { return 1 }", "expected ';'", 1, 23},
      {"int main() { return (1; }", "expected ')'", 1, 23},
      {"int main() { if 1) {} }", "expected '('", 1, 17},
      {"int main() { int 5; }", "expected a variable name", 1, 18},
      {"int main() {", "expected '}'", 1, 12},
      {"int main() { int a[]; }", "array length", 1, 20},
      {"main() { }", "expected 'int'", 1, 1},
  };
  for (const Row &R : Rows) {
    CcDiag D;
    std::optional<CProgram> P = parseCSource(R.Src, &D);
    EXPECT_FALSE(P.has_value()) << R.Src;
    EXPECT_NE(D.Message.find(R.MsgPart), std::string::npos)
        << R.Src << " -> " << D.render();
    EXPECT_EQ(D.Line, R.Line) << R.Src << " -> " << D.render();
    EXPECT_EQ(D.Col, R.Col) << R.Src << " -> " << D.render();
  }
}

TEST(Parser, AllStatementFormsParse) {
  const char *Src = "int f(int p, int q[]) { return p + q[0]; }\n"
                    "int main() {\n"
                    "  int a[4];\n"
                    "  int x = 1;\n"
                    "  ;\n"
                    "  x;\n"
                    "  if (x) { x = 2; } else { x = 3; }\n"
                    "  while (x > 2) { x = x - 1; }\n"
                    "  for (int i = 0; i < 4; i = i + 1) {\n"
                    "    if (i == 3) break;\n"
                    "    if (i == 1) continue;\n"
                    "    a[i] = i;\n"
                    "  }\n"
                    "  { int y = f(x, a); x = y; }\n"
                    "  return x;\n"
                    "}\n";
  CcDiag D;
  std::optional<CProgram> P = parseCSource(Src, &D);
  ASSERT_TRUE(P.has_value()) << D.render();
  EXPECT_EQ(P->Funcs.size(), 2u);
  EXPECT_TRUE(P->Funcs[0].Params[1].IsArray);
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

TEST(Lower, GoldensRoundTripThroughIrParser) {
  // The lowered function must print to text the IR parser accepts and
  // reproduce identically — lowering output is plain IR, not a dialect.
  const char *Sources[] = {
      "int main() { return 41 + 1; }",
      "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1)\n"
      "  s = s + i; return s; }",
      "int g(int n) { return n * n; }\n"
      "int main() { int a[3]; a[1] = g(4); return a[1] + a[2]; }",
      "int main() { int x = 3; return x > 2 && x < 9; }",
  };
  for (const char *Src : Sources) {
    CcDiag D;
    std::optional<Function> F = compileCSource("golden", Src, &D);
    ASSERT_TRUE(F.has_value()) << D.render();
    std::string Text = printFunction(*F);
    std::string Err;
    std::optional<Function> Re = parseFunction(Text, &Err);
    ASSERT_TRUE(Re.has_value()) << Err << "\n" << Text;
    std::string Why;
    EXPECT_TRUE(functionsIdentical(*F, *Re, &Why)) << Why;
    EXPECT_EQ(fingerprint(interpret(*F)), fingerprint(interpret(*Re)));
  }
}

TEST(Lower, SemanticsMatchTheIr) {
  // Total semantics inherited from the IR: div/rem by zero produce 0,
  // >> is a logical shift, arithmetic wraps at 64 bits.
  EXPECT_EQ(run("int main() { return 7 / 0; }"), 0);
  EXPECT_EQ(run("int main() { return 7 % 0; }"), 0);
  EXPECT_EQ(run("int main() { return (0 - 8) >> 1; }"),
            static_cast<int64_t>(0xfffffffffffffff8ull >> 1));
  EXPECT_EQ(run("int main() { int x = 9223372036854775807; "
                "return x + 1 < 0; }"),
            1);
  // Uninitialized scalars read 0 (defined, unlike C).
  EXPECT_EQ(run("int main() { int x; return x; }"), 0);
}

TEST(Lower, ShortCircuitSkipsSideEffects) {
  // && must not evaluate its rhs when the lhs is 0; an array store in
  // the rhs is the observable side effect.
  EXPECT_EQ(run("int main() { int a[1]; a[0] = 7;\n"
                "  0 && (a[0] = 1); 1 || (a[0] = 2); return a[0]; }"),
            7);
  EXPECT_EQ(run("int main() { int a[1]; 1 && (a[0] = 5); return a[0]; }"),
            5);
}

TEST(Lower, CallsInlineWithValueAndReferenceParams) {
  // Scalar params copy; array params alias the caller's storage.
  EXPECT_EQ(run("int bump(int x) { x = x + 1; return x; }\n"
                "int main() { int v = 10; int w = bump(v); "
                "return v * 100 + w; }"),
            1011);
  EXPECT_EQ(run("int fill(int b[], int n) {\n"
                "  for (int i = 0; i < n; i = i + 1) b[i] = i * i;\n"
                "  return 0; }\n"
                "int main() { int a[4]; fill(a, 4); "
                "return a[3] + a[2] + a[1]; }"),
            14);
}

TEST(Lower, DeclInitializerWithCallKeepsScope) {
  // Regression: lowering a call in a declaration's initializer grows the
  // scope stack, and the insertion point must be re-fetched afterwards —
  // a stale reference dropped the variable from its scope (found by the
  // csrc fuzz variant).
  EXPECT_EQ(run("int h(int a) { return a + 1; }\n"
                "int main() {\n"
                "  int v = h(h(5));\n"
                "  { int w = v + 1; v = w; }\n"
                "  return v;\n"
                "}"),
            8);
}

TEST(Lower, DiagnosticsCarryPositionsAndContext) {
  EXPECT_EQ(expectReject("int main() { return nope; }"),
            "line 1, col 21: undeclared identifier 'nope'");
  EXPECT_EQ(expectReject("int main() { int a; int a; return 0; }"),
            "line 1, col 21: redeclaration of 'a' in this scope");
  EXPECT_EQ(expectReject("int main() { break; }"),
            "line 1, col 14: 'break' outside of a loop");
  EXPECT_EQ(expectReject("int main() { return f(1); }"),
            "line 1, col 21: call to undefined function 'f'");
  std::string R = expectReject("int f(int n) { return f(n); }\n"
                               "int main() { return f(1); }");
  EXPECT_NE(R.find("recursi"), std::string::npos) << R;
  EXPECT_NE(R.find("main -> f -> f"), std::string::npos) << R;
  R = expectReject("int f(int a, int b) { return a; }\n"
                   "int main() { return f(1); }");
  EXPECT_NE(R.find("expects 2 argument(s), got 1"), std::string::npos) << R;
  R = expectReject("int f(int a[]) { return a[0]; }\n"
                   "int main() { return f(3); }");
  EXPECT_NE(R.find("must name an array"), std::string::npos) << R;
  // Scoping is C's: a block-local is gone at '}'.
  R = expectReject("int main() { { int x = 1; } return x; }");
  EXPECT_NE(R.find("undeclared identifier 'x'"), std::string::npos) << R;
}

TEST(Lower, ArraysOccupyMemWords) {
  CcDiag D;
  std::optional<Function> F = compileCSource(
      "t", "int main() { int a[5]; int b[3]; b[2] = 9; return b[2]; }", &D);
  ASSERT_TRUE(F.has_value()) << D.render();
  EXPECT_EQ(F->MemWords, 8u); // bump-allocated: 5 + 3
  EXPECT_EQ(interpret(*F).ReturnValue, 9);
}

TEST(Lower, GrowthCapsAreEnforced) {
  LowerOptions O;
  O.MaxMemWords = 4;
  CcDiag D;
  EXPECT_FALSE(
      compileCSource("t", "int main() { int a[8]; return 0; }", &D, O)
          .has_value());
  EXPECT_NE(D.Message.find("data-memory budget"), std::string::npos)
      << D.render();

  // A call chain that multiplies past the block cap is an error with a
  // position, not an OOM: f2 splices f1 four times, f1 splices f0 four
  // times, and each f0 body carries branches.
  LowerOptions Tight;
  Tight.MaxBlocks = 32;
  const char *Deep =
      "int f0(int x) { if (x) { x = x + 1; } return x; }\n"
      "int f1(int x) { return f0(x) + f0(x) + f0(x) + f0(x); }\n"
      "int f2(int x) { return f1(x) + f1(x) + f1(x) + f1(x); }\n"
      "int main() { return f2(1); }";
  EXPECT_FALSE(compileCSource("t", Deep, &D, Tight).has_value());
  EXPECT_NE(D.Message.find("too large"), std::string::npos) << D.render();
  // The default caps admit the same program.
  EXPECT_TRUE(compileCSource("t", Deep, &D).has_value()) << D.render();
}

//===----------------------------------------------------------------------===//
// Corpus annotation
//===----------------------------------------------------------------------===//

TEST(Frontend, ExpectedReturnAnnotation) {
  EXPECT_EQ(expectedReturnAnnotation("// expect: 42\nint main(){}"), 42);
  EXPECT_EQ(expectedReturnAnnotation("/* head */\n// expect: -7\n"), -7);
  EXPECT_EQ(expectedReturnAnnotation("// expect: 9223372036854775807\n"),
            INT64_MAX);
  EXPECT_EQ(expectedReturnAnnotation("// expect: -9223372036854775808\n"),
            INT64_MIN);
  EXPECT_FALSE(expectedReturnAnnotation("int main() { return 0; }")
                   .has_value());
  // Overflowing annotations are rejected, not wrapped.
  EXPECT_FALSE(expectedReturnAnnotation("// expect: 9223372036854775808\n")
                   .has_value());
}
