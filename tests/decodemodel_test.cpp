//===- tests/decodemodel_test.cpp - Parallel decode model tests (S2.1) ----===//

#include "adt/Rng.h"
#include "core/DecodeModel.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(DecodeModel, SequentialMatchesEquationTwo) {
  EncodingConfig C = lowEndConfig(12);
  // From last = 10 with codes {3, 0, 7}: 10->1->1->8 (mod 12).
  std::vector<RegId> Out = sequentialDecodeFields(10, {3, 0, 7}, C);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0], 1u);
  EXPECT_EQ(Out[1], 1u);
  EXPECT_EQ(Out[2], 8u);
}

TEST(DecodeModel, ParallelFormulaPaperExample) {
  // Section 2.1: n1 = (last + d1) mod RegN, n2 = (last + d1 + d2) mod RegN.
  EncodingConfig C = lowEndConfig(12);
  std::vector<RegId> Par = parallelDecodeFields(9, {5, 6}, C);
  EXPECT_EQ(Par[0], (9u + 5) % 12);
  EXPECT_EQ(Par[1], (9u + 5 + 6) % 12);
}

TEST(DecodeModel, SpecialCodesBypassTheChain) {
  EncodingConfig C = lowEndConfig(12);
  C.DiffN = 7;
  C.SpecialRegs = {11};
  // Codes: diff 2, special (7), diff 3. The special must not advance the
  // running state.
  std::vector<RegId> Seq = sequentialDecodeFields(1, {2, 7, 3}, C);
  EXPECT_EQ(Seq[0], 3u);
  EXPECT_EQ(Seq[1], 11u);
  EXPECT_EQ(Seq[2], 6u);
  EXPECT_EQ(parallelDecodeFields(1, {2, 7, 3}, C), Seq);
}

/// Exhaustive equivalence for the paper's two configurations over random
/// code vectors.
class DecodeEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecodeEquivalence, ParallelEqualsSequential) {
  EncodingConfig C =
      GetParam() < 100 ? lowEndConfig(12) : vliwConfig(GetParam());
  Rng R(GetParam() * 7919 + 13);
  for (int Trial = 0; Trial != 500; ++Trial) {
    RegId Last = static_cast<RegId>(R.nextBelow(C.RegN));
    std::vector<uint8_t> Codes;
    size_t Len = 1 + R.nextBelow(3);
    for (size_t I = 0; I != Len; ++I)
      Codes.push_back(static_cast<uint8_t>(R.nextBelow(C.DiffN)));
    EXPECT_EQ(parallelDecodeFields(Last, Codes, C),
              sequentialDecodeFields(Last, Codes, C));
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, DecodeEquivalence,
                         ::testing::Values(12u, 40u, 48u, 56u, 64u));

TEST(DecodeModel, HardwareCostMatchesPaperBallpark) {
  // The paper: for 16 registers and 3 operands, a 12-bit-input 4-bit-output
  // two-level circuit, "less than 2k transistors".
  EncodingConfig C;
  C.RegN = 16;
  C.DiffN = 8;
  C.DiffW = 3;
  DecodeHardwareCost Cost = estimateDecodeHardware(C, 3);
  EXPECT_EQ(Cost.ModuloAdders, 3u);
  EXPECT_EQ(Cost.AdderOutputBits, 4u);
  EXPECT_EQ(Cost.WidestAdderInputBits, 4u + 9u);
  EXPECT_LT(Cost.TransistorEstimate, 2500ul);
  EXPECT_GT(Cost.TransistorEstimate, 500ul);
}

TEST(DecodeModel, VliwCostStillSmall) {
  // 128 registers (Itanium-style): 7-bit adders, still trivially small
  // next to a 64-bit datapath.
  EncodingConfig C;
  C.RegN = 128;
  C.DiffN = 64;
  C.DiffW = 6;
  DecodeHardwareCost Cost = estimateDecodeHardware(C, 3);
  EXPECT_EQ(Cost.AdderOutputBits, 7u);
  EXPECT_LT(Cost.TransistorEstimate, 25000ul);
}
