//===- tests/coalesce_test.cpp - Optimal spill + diff coalesce tests ------===//

#include "analysis/Liveness.h"
#include "core/DiffCoalesce.h"
#include "core/OptimalSpill.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "workloads/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dra;

namespace {

Function pressureProgram(uint64_t Seed, unsigned Pool) {
  ProgramProfile P;
  P.Seed = Seed;
  P.PressureVars = Pool;
  P.TopStatements = 6;
  P.OuterTrip = 3;
  return generateProgram("c", P);
}

unsigned maxPressureOf(const Function &F) {
  Function Copy = F;
  Copy.recomputeCFG();
  return Liveness::compute(Copy).maxPressure(Copy);
}

} // namespace

TEST(OptimalSpill, NoopWhenPressureFits) {
  Function F = pressureProgram(1, 3);
  size_t InstsBefore = F.numInsts();
  OptimalSpillResult R = optimalSpill(F, 16);
  EXPECT_EQ(R.SpilledRanges, 0u);
  EXPECT_EQ(F.numInsts(), InstsBefore);
}

TEST(OptimalSpill, ReducesPressureBelowK) {
  Function F = pressureProgram(2, 12);
  ASSERT_GT(maxPressureOf(F), 8u);
  ExecResult Before = interpret(F);
  OptimalSpillResult R = optimalSpill(F, 8);
  EXPECT_GT(R.SpilledRanges, 0u);
  EXPECT_LE(maxPressureOf(F), 8u);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

TEST(OptimalSpill, SpillsFewerRangesThanPressureExcess) {
  // The ILP should spill a targeted set, not everything live.
  Function F = pressureProgram(3, 11);
  uint32_t TotalRanges = F.NumRegs;
  OptimalSpillResult R = optimalSpill(F, 8);
  EXPECT_LT(R.SpilledRanges, TotalRanges / 4);
}

TEST(OptimalSpill, HigherKSpillsLess) {
  Function A = pressureProgram(4, 12);
  Function B = A;
  OptimalSpillResult R8 = optimalSpill(A, 8);
  OptimalSpillResult R12 = optimalSpill(B, 12);
  EXPECT_LE(R12.SpilledRanges, R8.SpilledRanges);
  EXPECT_LE(B.numSpillInsts(), A.numSpillInsts());
}

TEST(DiffCoalesce, ColorsWithinRegN) {
  EncodingConfig C = lowEndConfig(12);
  Function F = pressureProgram(5, 8);
  optimalSpill(F, C.RegN);
  ExecResult Before = interpret(F);
  CoalesceResult R = coalesceAndColor(F, C);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(F.NumRegs, C.RegN);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

TEST(DiffCoalesce, CoalescesMovesWhenPossible) {
  EncodingConfig C = lowEndConfig(12);
  ProgramProfile P;
  P.Seed = 6;
  P.PressureVars = 5;
  P.TopStatements = 8;
  P.OuterTrip = 3;
  P.MovePct = 20;
  Function F = generateProgram("cm", P);
  size_t MovesBefore = 0;
  for (const BasicBlock &BB : F.Blocks)
    for (const Instruction &I : BB.Insts)
      MovesBefore += I.Op == Opcode::Mov;
  ASSERT_GT(MovesBefore, 0u);
  optimalSpill(F, C.RegN);
  CoalesceResult R = coalesceAndColor(F, C);
  ASSERT_TRUE(R.Success);
  // Most assignment moves have dead targets and coalesce away.
  EXPECT_GT(R.MovesCoalesced + (MovesBefore - R.MovesRemaining), 0u);
  EXPECT_LT(R.MovesRemaining, MovesBefore);
}

TEST(DiffCoalesce, NonDiffModeIgnoresAdjacency) {
  // O-spill arm: DiffAware = false must still produce a valid coloring.
  EncodingConfig C;
  C.RegN = 8;
  C.DiffN = 8;
  C.DiffW = 3;
  Function F = pressureProgram(7, 10);
  optimalSpill(F, 8);
  ExecResult Before = interpret(F);
  CoalesceOptions O;
  O.DiffAware = false;
  CoalesceResult R = coalesceAndColor(F, C, O);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(F.NumRegs, 8u);
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

TEST(DiffCoalesce, ExtraSpillFallbackKeepsSemantics) {
  // Tight K with high pressure exercises the uncolorable -> spill path.
  EncodingConfig C;
  C.RegN = 6;
  C.DiffN = 4;
  C.DiffW = 2;
  Function F = pressureProgram(8, 10);
  optimalSpill(F, 6);
  ExecResult Before = interpret(F);
  CoalesceResult R = coalesceAndColor(F, C);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

/// Property sweep: the full optimal-spill + coalesce pipeline preserves
/// semantics and respects RegN across seeds.
class CoalescePipelineRandom : public ::testing::TestWithParam<int> {};

TEST_P(CoalescePipelineRandom, EndToEnd) {
  EncodingConfig C = lowEndConfig(12);
  Function F =
      pressureProgram(static_cast<uint64_t>(GetParam()) * 101 + 9, 9);
  ExecResult Before = interpret(F);
  optimalSpill(F, C.RegN);
  CoalesceResult R = coalesceAndColor(F, C);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(F.NumRegs, C.RegN);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  EXPECT_EQ(fingerprint(interpret(F)), fingerprint(Before));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePipelineRandom,
                         ::testing::Range(0, 8));
