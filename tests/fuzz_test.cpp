//===- tests/fuzz_test.cpp - Differential-testing harness unit tests ------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Invariants.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "fuzz/Repro.h"

#include "core/Encoder.h"
#include "frontend/CSourceGen.h"
#include "frontend/Frontend.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <set>

using namespace dra;

namespace {

/// Straight-line program: r0 = 10; r1 = r0 * 3; mem[0] = r1; ret r1.
Function simpleProgram() {
  Function F;
  F.NumRegs = 12;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  B.createMovImmTo(0, 10);
  Instruction Mul;
  Mul.Op = Opcode::MulI;
  Mul.Dst = 1;
  Mul.Src1 = 0;
  Mul.Imm = 3;
  F.Blocks[0].Insts.push_back(Mul);
  B.createStore(0, 0, 1);
  B.createRet(1);
  F.recomputeCFG();
  return F;
}

} // namespace

TEST(Oracle, IdenticalProgramsMatch) {
  Function F = simpleProgram();
  OracleResult R = compareLockstep(F, F);
  EXPECT_TRUE(R.Match) << R.Divergence;
}

TEST(Oracle, SetLastRegIsInvisible) {
  // The annotated function (with slr pseudo-instructions) must compare
  // equal to its stripped form: slr neither executes nor shifts the trace.
  Function F = simpleProgram();
  EncodingConfig C = lowEndConfig(12);
  EncodedFunction E = encodeFunction(F, C);
  OracleResult R = compareLockstep(F, E.Annotated);
  EXPECT_TRUE(R.Match) << R.Divergence;
}

TEST(Oracle, DetectsWrongRegisterOperand) {
  Function A = simpleProgram();
  Function B = simpleProgram();
  // Return r0 (10) instead of r1 (30): the traces agree until the final
  // state, and the return value differs.
  B.Blocks[0].Insts.back().Src1 = 0;
  OracleResult R = compareLockstep(A, B);
  EXPECT_FALSE(R.Match);
  EXPECT_FALSE(R.Divergence.empty());
}

TEST(Oracle, DetectsDivergingMemoryAccess) {
  Function A = simpleProgram();
  Function B = simpleProgram();
  B.Blocks[0].Insts[2].Imm = 1; // Store to mem[1] instead of mem[0].
  OracleResult R = compareLockstep(A, B);
  EXPECT_FALSE(R.Match);
  EXPECT_NE(R.Divergence.find("event"), std::string::npos) << R.Divergence;
}

TEST(Invariants, FunctionsIdenticalReportsFirstDifference) {
  Function A = simpleProgram();
  Function B = simpleProgram();
  EXPECT_TRUE(functionsIdentical(A, B));
  B.Blocks[0].Insts[1].Src1 = 2;
  std::string Why;
  EXPECT_FALSE(functionsIdentical(A, B, &Why));
  EXPECT_NE(Why.find("bb0[1]"), std::string::npos) << Why;
}

TEST(Invariants, PermutationChecks) {
  EncodingConfig C = lowEndConfig(12);
  std::vector<RegId> Perm(12);
  for (RegId R = 0; R != 12; ++R)
    Perm[R] = R;
  std::string Why;
  EXPECT_TRUE(checkPermutation(Perm, C, &Why)) << Why;
  Perm[3] = 4; // r4 hit twice: not a bijection.
  EXPECT_FALSE(checkPermutation(Perm, C, &Why));
  Perm[3] = 3;
  C.SpecialRegs = {11};
  C.DiffN = 7;
  std::swap(Perm[10], Perm[11]); // Special register must stay pinned.
  EXPECT_FALSE(checkPermutation(Perm, C, &Why));
  EXPECT_NE(Why.find("special"), std::string::npos) << Why;
}

TEST(Invariants, MoveLegality) {
  Function F = simpleProgram();
  std::string Why;
  EXPECT_TRUE(checkMoveLegality(F, &Why)) << Why;
  Instruction Mov;
  Mov.Op = Opcode::Mov;
  Mov.Dst = 2;
  Mov.Src1 = 2;
  F.Blocks[0].Insts.insert(F.Blocks[0].Insts.begin(), Mov);
  EXPECT_FALSE(checkMoveLegality(F, &Why));
  EXPECT_NE(Why.find("identity move"), std::string::npos) << Why;
}

TEST(Minimizer, ShrinksUnderSyntheticPredicate) {
  // Predicate: "the program still contains a Mul instruction". The
  // minimizer must slice away everything else while keeping the program
  // well-formed.
  FuzzCase FC = caseForIndex(1, 0);
  Function P = generateProgram("min", FC.Profile);
  size_t OriginalInsts = 0;
  for (const BasicBlock &BB : P.Blocks)
    OriginalInsts += BB.Insts.size();

  auto HasMul = [](const Function &F) {
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::Mul || I.Op == Opcode::MulI)
          return true;
    return false;
  };
  ASSERT_TRUE(HasMul(P));

  MinimizeResult M = minimizeProgram(P, HasMul, 400);
  size_t ReducedInsts = 0;
  for (const BasicBlock &BB : M.Reduced.Blocks)
    ReducedInsts += BB.Insts.size();
  EXPECT_TRUE(HasMul(M.Reduced));
  EXPECT_TRUE(verifyFunction(M.Reduced));
  EXPECT_LT(ReducedInsts, OriginalInsts);
  EXPECT_GT(M.Steps, 0u);
}

TEST(FuzzCase, MatrixCoversSchemesAndConfigs) {
  std::set<std::string> Names;
  std::set<Scheme> Schemes;
  unsigned ParallelCases = 0;
  unsigned CacheReplayCases = 0;
  unsigned CSrcCases = 0;
  unsigned PortfolioCases = 0;
  for (uint64_t I = 0; I != caseMatrixSize(); ++I) {
    FuzzCase FC = caseForIndex(7, I);
    Names.insert(FC.name());
    Schemes.insert(FC.S);
    EXPECT_GE(FC.RemapJobs, 1u);
    if (FC.RemapJobs > 1) {
      ++ParallelCases;
      // The parallel variant is the remap pipeline on pool workers and
      // is named distinctly so repros identify the search path.
      EXPECT_EQ(FC.S, Scheme::Remap);
      EXPECT_NE(FC.name().find("remap-parallel"), std::string::npos);
    }
    if (FC.CacheReplay) {
      ++CacheReplayCases;
      // The cache-replay variant recompiles the heaviest pipeline through
      // a warm ResultCache; named distinctly for the same reason.
      EXPECT_EQ(FC.S, Scheme::Coalesce);
      EXPECT_NE(FC.name().find("cache-replay"), std::string::npos);
    }
    if (FC.CSrc) {
      ++CSrcCases;
      // The csrc variant's program comes from the mini-C frontend: the
      // case carries the source itself and rotates the differential
      // scheme by seed.
      EXPECT_FALSE(FC.CSource.empty());
      EXPECT_NE(FC.name().find("csrc"), std::string::npos);
    }
    if (FC.Portfolio) {
      ++PortfolioCases;
      // The portfolio variant races the default arms on two workers and
      // cross-checks the winner against a sequential arm sweep.
      EXPECT_EQ(FC.PortfolioJobs, 2u);
      EXPECT_NE(FC.name().find("portfolio"), std::string::npos);
    }
  }
  // 6 config variants x 7 scheme variants (remap, select, coalesce,
  // remap-parallel, cache-replay, csrc, portfolio); one remap-parallel,
  // one cache-replay, one csrc and one portfolio case per config
  // variant.
  EXPECT_EQ(caseMatrixSize(), 42u);
  EXPECT_EQ(Names.size(), caseMatrixSize());
  EXPECT_EQ(Schemes.size(), 3u);
  EXPECT_EQ(ParallelCases, 6u);
  EXPECT_EQ(CacheReplayCases, 6u);
  EXPECT_EQ(CSrcCases, 6u);
  EXPECT_EQ(PortfolioCases, 6u);
}

TEST(FuzzCase, VariantNameIsPureInIndex) {
  // caseVariantName drives --only filtering: it must agree with the
  // variant slot caseForIndex assigns, for any index.
  static const char *Expected[7] = {"remap",        "select",
                                    "coalesce",     "remap-parallel",
                                    "cache-replay", "csrc",
                                    "portfolio"};
  for (uint64_t I = 0; I != 15; ++I) {
    EXPECT_STREQ(caseVariantName(I), Expected[I % 7]) << "index " << I;
    FuzzCase FC = caseForIndex(5, I);
    EXPECT_NE(FC.name().find(caseVariantName(I)), std::string::npos)
        << FC.name();
  }
}

TEST(FuzzCase, DeterministicDerivation) {
  FuzzCase A = caseForIndex(42, 5);
  FuzzCase B = caseForIndex(42, 5);
  EXPECT_EQ(A.Seed, B.Seed);
  EXPECT_EQ(A.name(), B.name());
  EXPECT_EQ(A.Profile.TopStatements, B.Profile.TopStatements);
  // Different indices give decorrelated seeds.
  EXPECT_NE(A.Seed, caseForIndex(42, 6).Seed);
}

TEST(Repro, RoundTripsCaseAndProgram) {
  // Index 24 is a remap-parallel case (24 % 7 == 3), so RemapJobs
  // round-trips a non-default value (a dropped directive would silently
  // load as 1).
  FuzzCase FC = caseForIndex(9, 24);
  ASSERT_GT(FC.RemapJobs, 1u);
  FC.Fault = InjectFault::CorruptFieldCode;
  Function P = generateProgram("rt", FC.Profile);

  std::string Text = writeRepro(FC, P);
  FuzzCase Loaded;
  Function Q;
  std::string Err;
  ASSERT_TRUE(loadRepro(Text, Loaded, Q, &Err)) << Err;
  EXPECT_EQ(Loaded.Seed, FC.Seed);
  EXPECT_EQ(Loaded.Index, FC.Index);
  EXPECT_EQ(Loaded.S, FC.S);
  EXPECT_EQ(Loaded.StepLimit, FC.StepLimit);
  EXPECT_EQ(Loaded.Fault, FC.Fault);
  EXPECT_EQ(Loaded.RemapJobs, FC.RemapJobs);
  EXPECT_EQ(Loaded.Enc.RegN, FC.Enc.RegN);
  EXPECT_EQ(Loaded.Enc.DiffN, FC.Enc.DiffN);
  EXPECT_EQ(Loaded.Enc.Order, FC.Enc.Order);
  EXPECT_EQ(Loaded.Enc.SpecialRegs, FC.Enc.SpecialRegs);
  EXPECT_EQ(printFunction(Q), printFunction(P));
}

TEST(Repro, RoundTripsCacheReplayFlag) {
  // Index 25 is a cache-replay case (25 % 7 == 4): the flag must survive
  // the directive round trip, or a replayed repro would silently skip the
  // warm-cache comparison.
  FuzzCase FC = caseForIndex(9, 25);
  ASSERT_TRUE(FC.CacheReplay);
  Function P = generateProgram("cr", FC.Profile);
  std::string Text = writeRepro(FC, P);
  EXPECT_NE(Text.find("# cachereplay: 1"), std::string::npos);
  FuzzCase Loaded;
  Function Q;
  std::string Err;
  ASSERT_TRUE(loadRepro(Text, Loaded, Q, &Err)) << Err;
  EXPECT_TRUE(Loaded.CacheReplay);
  EXPECT_EQ(Loaded.S, FC.S);

  // And the default stays off when the directive is absent (old repros).
  FuzzCase Plain = caseForIndex(9, 0);
  ASSERT_FALSE(Plain.CacheReplay);
  ASSERT_TRUE(loadRepro(writeRepro(Plain, P), Loaded, Q, &Err)) << Err;
  EXPECT_FALSE(Loaded.CacheReplay);
}

TEST(Repro, RoundTripsCSource) {
  // Index 26 is a csrc case (26 % 7 == 5): the mini-C source is the
  // ground truth of the case, so every line must survive the `# csrc:`
  // directive round trip byte for byte — including indentation, which a
  // token-based reader would eat.
  FuzzCase FC = caseForIndex(9, 26);
  ASSERT_TRUE(FC.CSrc);
  ASSERT_FALSE(FC.CSource.empty());
  CcDiag D;
  std::optional<Function> F = compileCSource("rtcs", FC.CSource, &D);
  ASSERT_TRUE(F.has_value()) << D.render();

  std::string Text = writeRepro(FC, *F);
  EXPECT_NE(Text.find("# csrc: "), std::string::npos);
  FuzzCase Loaded;
  Function Q;
  std::string Err;
  ASSERT_TRUE(loadRepro(Text, Loaded, Q, &Err)) << Err;
  EXPECT_TRUE(Loaded.CSrc);
  EXPECT_EQ(Loaded.CSource, FC.CSource);
  // The IR body is informational but still round-trips.
  EXPECT_EQ(printFunction(Q), printFunction(*F));

  // Non-csrc repros must not grow the directive or set the flag.
  FuzzCase Plain = caseForIndex(9, 0);
  ASSERT_FALSE(Plain.CSrc);
  Function P = generateProgram("rt", Plain.Profile);
  std::string PlainText = writeRepro(Plain, P);
  EXPECT_EQ(PlainText.find("# csrc:"), std::string::npos);
  ASSERT_TRUE(loadRepro(PlainText, Loaded, Q, &Err)) << Err;
  EXPECT_FALSE(Loaded.CSrc);
  EXPECT_TRUE(Loaded.CSource.empty());
}

TEST(Repro, RoundTripsPortfolioDirective) {
  // Index 27 is a portfolio case (27 % 7 == 6): the race config must
  // survive the `# portfolio:` directive round trip, or a replayed repro
  // would silently degrade to a plain coalesce compile.
  FuzzCase FC = caseForIndex(9, 27);
  ASSERT_TRUE(FC.Portfolio);
  ASSERT_EQ(FC.PortfolioJobs, 2u);
  Function P = generateProgram("pf", FC.Profile);
  std::string Text = writeRepro(FC, P);
  EXPECT_NE(Text.find("# portfolio: race jobs=2"), std::string::npos);
  FuzzCase Loaded;
  Function Q;
  std::string Err;
  ASSERT_TRUE(loadRepro(Text, Loaded, Q, &Err)) << Err;
  EXPECT_TRUE(Loaded.Portfolio);
  EXPECT_EQ(Loaded.PortfolioJobs, 2u);
  EXPECT_EQ(printFunction(Q), printFunction(P));

  // And the default stays off when the directive is absent (old repros).
  FuzzCase Plain = caseForIndex(9, 0);
  ASSERT_FALSE(Plain.Portfolio);
  std::string PlainText = writeRepro(Plain, P);
  EXPECT_EQ(PlainText.find("# portfolio:"), std::string::npos);
  ASSERT_TRUE(loadRepro(PlainText, Loaded, Q, &Err)) << Err;
  EXPECT_FALSE(Loaded.Portfolio);
}

TEST(Repro, RejectsMalformedPortfolioDirective) {
  const char *Magic = "# dra-fuzz repro v1\n";
  FuzzCase FC;
  Function P;
  std::string Err;
  // Unknown mode token.
  EXPECT_FALSE(loadRepro(std::string(Magic) +
                             "# portfolio: turbo jobs=2\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("portfolio mode"), std::string::npos) << Err;
  // Zero jobs.
  EXPECT_FALSE(loadRepro(std::string(Magic) +
                             "# portfolio: race jobs=0\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("jobs"), std::string::npos) << Err;
  // Non-numeric / trailing-garbage jobs.
  EXPECT_FALSE(loadRepro(std::string(Magic) +
                             "# portfolio: race jobs=2x\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("jobs"), std::string::npos) << Err;
  // A bare token without '='.
  EXPECT_FALSE(loadRepro(std::string(Magic) +
                             "# portfolio: race fast\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("portfolio token"), std::string::npos) << Err;
  // Unknown key=value tokens are ignored (forward compatibility).
  FuzzCase Base = caseForIndex(3, 2);
  Function Prog = generateProgram("pt", Base.Profile);
  std::string Text = writeRepro(Base, Prog);
  Text.insert(Text.find('\n') + 1, "# portfolio: race jobs=3 flux=88\n");
  ASSERT_TRUE(loadRepro(Text, FC, P, &Err)) << Err;
  EXPECT_TRUE(FC.Portfolio);
  EXPECT_EQ(FC.PortfolioJobs, 3u);
}

TEST(Repro, RejectsGarbage) {
  FuzzCase FC;
  Function P;
  std::string Err;
  EXPECT_FALSE(loadRepro("not a repro", FC, P, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Repro, RejectsTruncatedHeader) {
  // A file cut off before the magic line must not load, even when the
  // remaining directives look plausible.
  FuzzCase FC;
  Function P;
  std::string Err;
  EXPECT_FALSE(loadRepro("", FC, P, &Err));
  EXPECT_NE(Err.find("header"), std::string::npos) << Err;
  EXPECT_FALSE(
      loadRepro("# seed: 12\n# index: 3\n# scheme: remap\n", FC, P, &Err));
  EXPECT_NE(Err.find("header"), std::string::npos) << Err;
}

TEST(Repro, IgnoresUnknownDirectives) {
  // Unknown directives are informational by contract (forward
  // compatibility): a repro from a newer harness still loads.
  FuzzCase FC = caseForIndex(3, 2);
  Function P = generateProgram("ud", FC.Profile);
  std::string Text = writeRepro(FC, P);
  size_t AfterMagic = Text.find('\n') + 1;
  Text.insert(AfterMagic, "# flux-capacitor: 88\n# case: renamed\n");
  FuzzCase Loaded;
  Function Q;
  std::string Err;
  ASSERT_TRUE(loadRepro(Text, Loaded, Q, &Err)) << Err;
  EXPECT_EQ(Loaded.Seed, FC.Seed);
  EXPECT_EQ(printFunction(Q), printFunction(P));
}

TEST(Repro, RejectsGarbageBody) {
  // Valid directives, rubbish IR: the function parser's diagnostic must
  // surface through loadRepro instead of a crash or a silent default.
  std::string Text = "# dra-fuzz repro v1\n"
                     "# seed: 7\n"
                     "# scheme: coalesce\n"
                     "func @x {\n  this is not ir\n}\n";
  FuzzCase FC;
  Function P;
  std::string Err;
  EXPECT_FALSE(loadRepro(Text, FC, P, &Err));
  EXPECT_NE(Err.find("repro:"), std::string::npos) << Err;
}

TEST(Repro, RejectsMalformedDirectiveValues) {
  const char *Magic = "# dra-fuzz repro v1\n";
  FuzzCase FC;
  Function P;
  std::string Err;
  // Unknown scheme name.
  EXPECT_FALSE(loadRepro(std::string(Magic) + "# scheme: turbo\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("scheme"), std::string::npos) << Err;
  // Zero remap jobs.
  EXPECT_FALSE(loadRepro(std::string(Magic) + "# remapjobs: 0\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("remapjobs"), std::string::npos) << Err;
  // Out-of-range cache-replay flag.
  EXPECT_FALSE(loadRepro(std::string(Magic) + "# cachereplay: 2\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("cachereplay"), std::string::npos) << Err;
  // Malformed enc token.
  EXPECT_FALSE(loadRepro(std::string(Magic) +
                             "# enc: regn=twelve diffn=8\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("enc"), std::string::npos) << Err;
  // Enc config that parses but cannot encode (DiffN > 2^DiffW).
  EXPECT_FALSE(loadRepro(std::string(Magic) +
                             "# enc: regn=12 diffn=9 diffw=3\nret r0\n",
                         FC, P, &Err));
  EXPECT_NE(Err.find("invalid"), std::string::npos) << Err;
}

TEST(Harness, CleanCasesPass) {
  // The first seven sweep cases (one per scheme variant, including
  // cache-replay, csrc and portfolio) must pass end to end — the same
  // guarantee the CI smoke job checks at larger scale.
  for (uint64_t I = 0; I != 7; ++I) {
    FuzzCase FC = caseForIndex(1, I);
    FuzzCaseResult R = runFuzzCase(FC, /*MinimizeBudget=*/0);
    EXPECT_TRUE(R.Ok) << FC.name() << ": " << R.Detail;
  }
}

TEST(Harness, InjectedFaultIsCaughtAndMinimized) {
  // Mutation test: a deliberately corrupted encoder output must be
  // caught, and the minimizer must shrink the witness program.
  FuzzCase FC = caseForIndex(1, 0);
  FC.Fault = InjectFault::CorruptFieldCode;
  FuzzCaseResult R = runFuzzCase(FC, /*MinimizeBudget=*/120);
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.Detail.empty());
  EXPECT_GT(R.MinimizeSteps, 0u);
  // The minimized program still fails the same case deterministically —
  // the property --repro replay relies on.
  std::optional<std::string> Again = checkProgram(R.Program, FC);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(*Again, R.Detail);
}

TEST(Harness, DroppedJoinRepairIsCaught) {
  // Find a sweep case whose encoding actually inserts a join repair, then
  // drop it: verifyDecodable (or the decode comparison) must object.
  for (uint64_t I = 0; I != 12; ++I) {
    FuzzCase FC = caseForIndex(1, I);
    Function P = generateProgram("dj", FC.Profile);
    PipelineConfig Cfg;
    Cfg.S = FC.S;
    Cfg.Enc = FC.Enc;
    Cfg.Remap.NumStarts = 10;
    PipelineResult PR = runPipeline(P, Cfg);
    if (!PR.DiffEncoded)
      continue;
    EncodedFunction E = encodeFunction(stripSetLastReg(PR.F), FC.Enc);
    if (E.Stats.SetLastJoin == 0)
      continue;
    FC.Fault = InjectFault::DropJoinRepair;
    std::optional<std::string> Failure = checkProgram(P, FC);
    ASSERT_TRUE(Failure.has_value())
        << FC.name() << ": dropped join repair went unnoticed";
    return;
  }
  GTEST_SKIP() << "no sweep case with a join repair in the first 12";
}

TEST(Harness, CSrcGenerationIsDeterministic) {
  // csrc ground truth is (seed -> source): parallel and serial sweeps,
  // and repro replay, all assume regeneration is bit-identical.
  CSourceProfile P1 = csrcProfileFor(17);
  CSourceProfile P2 = csrcProfileFor(17);
  EXPECT_EQ(P1.NumHelpers, P2.NumHelpers);
  EXPECT_EQ(P1.MaxLoopTrip, P2.MaxLoopTrip);
  EXPECT_EQ(generateCSource(P1), generateCSource(P2));
  // Different seeds decorrelate the source.
  EXPECT_NE(generateCSource(P1), generateCSource(csrcProfileFor(18)));
}

TEST(Harness, CSrcGeneratedSourcesCompile) {
  // Every generated source must make it through the frontend: a csrc
  // case that fails to compile is a generator bug, and the sweep treats
  // it as a failure rather than skipping it silently.
  for (uint64_t Seed = 0; Seed != 24; ++Seed) {
    std::string Src = generateCSource(csrcProfileFor(Seed));
    CcDiag D;
    std::optional<Function> F = compileCSource("gen", Src, &D);
    ASSERT_TRUE(F.has_value()) << "seed " << Seed << ": " << D.render()
                               << "\n" << Src;
    EXPECT_TRUE(verifyFunction(*F));
  }
}

TEST(Harness, PortfolioInjectedFaultIsCaught) {
  // Mutation test for the portfolio axis: the raced winner goes through
  // the same encode/decode oracle, so a corrupted encoder must still be
  // caught when the compile came out of a race.
  FuzzCase FC = caseForIndex(1, 6); // 6 % 7 == 6: portfolio.
  ASSERT_TRUE(FC.Portfolio);
  FC.Fault = InjectFault::CorruptFieldCode;
  FuzzCaseResult R = runFuzzCase(FC, /*MinimizeBudget=*/0);
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.Detail.empty());
}

TEST(Harness, CSrcInjectedFaultIsCaught) {
  // Mutation test for the csrc axis: the frontend-shaped program must
  // still catch a corrupted encoder, or the new variant isn't guarding
  // anything ProgramGen doesn't already cover.
  FuzzCase FC = caseForIndex(1, 5); // 5 % 7 == 5: csrc.
  ASSERT_TRUE(FC.CSrc);
  FC.Fault = InjectFault::CorruptFieldCode;
  FuzzCaseResult R = runFuzzCase(FC);
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.Detail.empty());
  // csrc failures skip delta debugging: the source is the repro.
  EXPECT_EQ(R.MinimizeSteps, 0u);
}
