//===- tests/deadcode_test.cpp - Dead code elimination tests --------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "opt/DeadCode.h"
#include "workloads/MiBench.h"

#include <gtest/gtest.h>

using namespace dra;

TEST(DeadCode, RemovesUnusedDef) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId Live = B.createMovImm(1);
  B.createMovImm(99); // Dead.
  B.createRet(Live);
  F.recomputeCFG();
  EXPECT_EQ(eliminateDeadCode(F), 1u);
  EXPECT_EQ(F.numInsts(), 2u);
  EXPECT_EQ(interpret(F).ReturnValue, 1);
}

TEST(DeadCode, CascadesThroughChains) {
  // t0 -> t1 -> t2 all dead: one fixpoint run removes the whole chain.
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId Live = B.createMovImm(7);
  RegId T0 = B.createMovImm(1);
  RegId T1 = B.createBinImm(Opcode::AddI, T0, 2);
  B.createBinImm(Opcode::MulI, T1, 3); // T2, dead.
  B.createRet(Live);
  F.recomputeCFG();
  EXPECT_EQ(eliminateDeadCode(F), 3u);
  EXPECT_EQ(F.numInsts(), 2u);
}

TEST(DeadCode, KeepsStores) {
  Function F;
  F.MemWords = 4;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId V = B.createMovImm(5);
  B.createStore(V, 0, V); // Side effect: kept, keeps V alive.
  B.createRet(V);
  F.recomputeCFG();
  EXPECT_EQ(eliminateDeadCode(F), 0u);
  EXPECT_EQ(F.numInsts(), 3u);
}

TEST(DeadCode, RemovesDeadLoadButKeepsUsedOne) {
  Function F;
  F.MemWords = 8;
  F.makeBlock();
  IRBuilder B(F);
  B.setBlock(0);
  RegId Base = B.createMovImm(0);
  RegId Used = B.createLoad(Base, 1);
  B.createLoad(Base, 2); // Dead load.
  B.createRet(Used);
  F.recomputeCFG();
  EXPECT_EQ(eliminateDeadCode(F), 1u);
}

TEST(DeadCode, LoopCarriedValuesKept) {
  Function F;
  F.MemWords = 4;
  uint32_t Entry = F.makeBlock();
  uint32_t Body = F.makeBlock();
  uint32_t Exit = F.makeBlock();
  IRBuilder B(F);
  B.setBlock(Entry);
  RegId Sum = B.createMovImm(0);
  RegId I = B.createMovImm(5);
  B.createJmp(Body);
  B.setBlock(Body);
  B.createBinTo(Opcode::Add, Sum, Sum, I);
  B.createBinImmTo(Opcode::AddI, I, I, -1);
  B.createBr(I, Body, Exit);
  B.setBlock(Exit);
  B.createRet(Sum);
  F.recomputeCFG();
  EXPECT_EQ(eliminateDeadCode(F), 0u);
  EXPECT_EQ(interpret(F).ReturnValue, 15);
}

/// Property: DCE never changes observable behaviour on the suite.
class DeadCodeSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(DeadCodeSuite, PreservesSemantics) {
  Function F = miBenchProgram(GetParam());
  ExecResult Before = interpret(F);
  size_t Deleted = eliminateDeadCode(F);
  (void)Deleted;
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, &Err)) << Err;
  ExecResult After = interpret(F);
  EXPECT_EQ(fingerprint(Before), fingerprint(After));
  EXPECT_LE(After.DynInsts, Before.DynInsts);
}

INSTANTIATE_TEST_SUITE_P(Suite, DeadCodeSuite,
                         ::testing::Values("crc32", "dijkstra",
                                           "stringsearch"));
