//===- tests/server_test.cpp - Compile-service tests ----------------------===//
//
// Part of the differential-register-allocation reproduction library.
//
// Covers the service subsystem bottom-up: payload encode/decode (strict
// rejection of malformed documents), framing over a socketpair (clean
// EOF, truncation, bad magic, oversize prefixes, garbage payloads — a
// structured error or a dropped connection, never a crash), the
// admission queue's bounds and drain barrier, and the full CompileServer
// on a real unix socket: response bytes identical to a local compile,
// cache-tier reporting, overload shedding, client-disconnect survival,
// and graceful-stop draining.
//
//===----------------------------------------------------------------------===//

#include "core/Features.h"
#include "core/Portfolio.h"
#include "server/FlightRecorder.h"
#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "server/Server.h"

#include "driver/Json.h"
#include "driver/ResultCache.h"
#include "driver/Trace.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace dra;

namespace {

const char *TinyFunc = "func tiny regs=8 mem=8 spills=0\n"
                       "bb0:\n"
                       "  movi r0, 3\n"
                       "  movi r1, 4\n"
                       "  add r2, r0, r1\n"
                       "  mul r3, r2, r0\n"
                       "  ret r3\n";

/// A request that compiles quickly (few remap restarts).
CompileRequest tinyRequest() {
  CompileRequest Req;
  Req.RemapStarts = 8;
  Req.Body = TinyFunc;
  return Req;
}

std::string leHeader(uint32_t Magic, uint32_t Len) {
  std::string H(8, '\0');
  for (int I = 0; I != 4; ++I) {
    H[I] = char((Magic >> (8 * I)) & 0xff);
    H[4 + I] = char((Len >> (8 * I)) & 0xff);
  }
  return H;
}

void sendRaw(int Fd, const std::string &Bytes) {
  ASSERT_EQ(ssize_t(Bytes.size()),
            send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL));
}

} // namespace

//===----------------------------------------------------------------------===//
// Payload encode/decode
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrip) {
  CompileRequest Req;
  Req.S = Scheme::Remap;
  Req.BaselineK = 7;
  Req.RegN = 14;
  Req.DiffN = 9;
  Req.DiffW = 4;
  Req.RemapStarts = 31;
  Req.Body = "arbitrary bytes, not even IR \n\n with blank lines";

  CompileRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeRequest(encodeRequest(Req), Out, &Err)) << Err;
  EXPECT_EQ(Req.S, Out.S);
  EXPECT_EQ(Req.BaselineK, Out.BaselineK);
  EXPECT_EQ(Req.RegN, Out.RegN);
  EXPECT_EQ(Req.DiffN, Out.DiffN);
  EXPECT_EQ(Req.DiffW, Out.DiffW);
  EXPECT_EQ(Req.RemapStarts, Out.RemapStarts);
  EXPECT_EQ(Req.Body, Out.Body);
}

TEST(Protocol, RequestToConfigMirrorsKnobs) {
  CompileRequest Req;
  Req.S = Scheme::Select;
  Req.BaselineK = 6;
  Req.RegN = 13;
  Req.DiffN = 10;
  Req.DiffW = 4;
  Req.RemapStarts = 17;
  PipelineConfig C = Req.toConfig();
  EXPECT_EQ(Scheme::Select, C.S);
  EXPECT_EQ(6u, C.BaselineK);
  EXPECT_EQ(13u, C.Enc.RegN);
  EXPECT_EQ(10u, C.Enc.DiffN);
  EXPECT_EQ(4u, C.Enc.DiffW);
  EXPECT_EQ(17u, C.Remap.NumStarts);
  EXPECT_EQ(nullptr, C.Cache);
  EXPECT_EQ(nullptr, C.Metrics);
}

TEST(Protocol, ResponseRoundTrip) {
  for (auto [St, Tier] : {std::pair<ResponseStatus, const char *>(
                              ResponseStatus::Ok, "hit_disk"),
                          {ResponseStatus::Shed, "none"},
                          {ResponseStatus::Error, "none"}}) {
    CompileResponse Resp;
    Resp.Status = St;
    Resp.Tier = Tier;
    Resp.Body = St == ResponseStatus::Shed ? "" : "payload bytes";
    CompileResponse Out;
    std::string Err;
    ASSERT_TRUE(decodeResponse(encodeResponse(Resp), Out, &Err)) << Err;
    EXPECT_EQ(Resp.Status, Out.Status);
    EXPECT_EQ(Resp.Tier, Out.Tier);
    EXPECT_EQ(Resp.Body, Out.Body);
  }
}

TEST(Protocol, DecodeRequestRejectsMalformedDocuments) {
  CompileRequest Out;
  // Version tag wrong or absent.
  EXPECT_FALSE(decodeRequest("dra-req-v2\nbody=0\n", Out));
  EXPECT_FALSE(decodeRequest("scheme=remap\nbody=0\n", Out));
  EXPECT_FALSE(decodeRequest("", Out));
  // Unknown key, unknown scheme, non-numeric value.
  EXPECT_FALSE(decodeRequest("dra-req-v1\nbogus=1\nbody=0\n", Out));
  EXPECT_FALSE(decodeRequest("dra-req-v1\nscheme=turbo\nbody=0\n", Out));
  EXPECT_FALSE(decodeRequest("dra-req-v1\nregn=twelve\nbody=0\n", Out));
  // Body count missing, malformed, or inconsistent with the payload.
  EXPECT_FALSE(decodeRequest("dra-req-v1\nscheme=remap\n", Out));
  EXPECT_FALSE(decodeRequest("dra-req-v1\nbody=abc\n", Out));
  EXPECT_FALSE(decodeRequest("dra-req-v1\nbody=5\nabc", Out));
  EXPECT_FALSE(decodeRequest("dra-req-v1\nbody=2\nabc", Out)); // trailing
  // Garbage that is not even line-structured.
  EXPECT_FALSE(decodeRequest(std::string(64, '\xff'), Out));
  std::string Err;
  EXPECT_FALSE(decodeRequest("dra-req-v1\nbogus=1\nbody=0\n", Out, &Err));
  EXPECT_NE(std::string::npos, Err.find("bogus"));
}

TEST(Protocol, DecodeResponseRejectsMalformedDocuments) {
  CompileResponse Out;
  EXPECT_FALSE(decodeResponse("dra-resp-v9\nstatus=ok\nbody=0\n", Out));
  EXPECT_FALSE(decodeResponse("dra-resp-v1\nbody=0\n", Out)); // no status
  EXPECT_FALSE(decodeResponse("dra-resp-v1\nstatus=maybe\nbody=0\n", Out));
  EXPECT_FALSE(
      decodeResponse("dra-resp-v1\nstatus=ok\ntier=l2\nbody=0\n", Out));
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(Framing, RoundTripAndCleanEof) {
  int Fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  std::string Payload = "hello frame \x01\x02 with binary";
  ASSERT_TRUE(writeFrame(Fds[0], Payload));
  ASSERT_TRUE(writeFrame(Fds[0], "")); // empty payload is a valid frame
  std::string Got;
  EXPECT_EQ(FrameStatus::Ok, readFrame(Fds[1], Got));
  EXPECT_EQ(Payload, Got);
  EXPECT_EQ(FrameStatus::Ok, readFrame(Fds[1], Got));
  EXPECT_EQ("", Got);
  close(Fds[0]);
  EXPECT_EQ(FrameStatus::Eof, readFrame(Fds[1], Got));
  close(Fds[1]);
}

TEST(Framing, TruncatedHeaderAndPayload) {
  int Fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  sendRaw(Fds[0], leHeader(FrameMagic, 100).substr(0, 5)); // partial header
  close(Fds[0]);
  std::string Got;
  EXPECT_EQ(FrameStatus::Truncated, readFrame(Fds[1], Got));
  close(Fds[1]);

  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  sendRaw(Fds[0], leHeader(FrameMagic, 100) + "only ten b"); // partial body
  close(Fds[0]);
  EXPECT_EQ(FrameStatus::Truncated, readFrame(Fds[1], Got));
  close(Fds[1]);
}

TEST(Framing, BadMagicAndOversizePrefix) {
  int Fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  sendRaw(Fds[0], "XXXXYYYY");
  std::string Got;
  EXPECT_EQ(FrameStatus::BadMagic, readFrame(Fds[1], Got));

  // A hostile length prefix is rejected before any allocation; the bytes
  // after the header are never read.
  sendRaw(Fds[0], leHeader(FrameMagic, 0x40000000u));
  EXPECT_EQ(FrameStatus::Oversize, readFrame(Fds[1], Got));
  close(Fds[0]);
  close(Fds[1]);
}

TEST(Framing, GarbagePayloadIsAFrameButNotARequest) {
  int Fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  std::string Garbage(256, '\xfe');
  ASSERT_TRUE(writeFrame(Fds[0], Garbage));
  std::string Got;
  EXPECT_EQ(FrameStatus::Ok, readFrame(Fds[1], Got));
  EXPECT_EQ(Garbage, Got);
  CompileRequest Req;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Got, Req, &Err)); // structured error, no crash
  EXPECT_FALSE(Err.empty());
  close(Fds[0]);
  close(Fds[1]);
}

TEST(Framing, WriteToClosedPeerFailsWithoutSignal) {
  int Fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  close(Fds[1]);
  // First write may be swallowed into the buffer; the second observes the
  // reset. Either way the process survives (MSG_NOSIGNAL, no SIGPIPE).
  bool First = writeFrame(Fds[0], "into the void");
  bool Second = writeFrame(Fds[0], "into the void");
  EXPECT_FALSE(First && Second);
  close(Fds[0]);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(AdmissionQueue, BoundsInFlightAndCounts) {
  AdmissionQueue Q(2);
  EXPECT_EQ(2u, Q.limit());
  EXPECT_TRUE(Q.tryAdmit());
  EXPECT_TRUE(Q.tryAdmit());
  EXPECT_FALSE(Q.tryAdmit()); // full -> shed
  EXPECT_EQ(2u, Q.depth());
  Q.release();
  EXPECT_TRUE(Q.tryAdmit()); // a release frees a slot
  Q.release();
  Q.release();
  EXPECT_EQ(0u, Q.depth());
  EXPECT_EQ(3u, Q.admitted());
  EXPECT_EQ(1u, Q.shed());
}

TEST(AdmissionQueue, ZeroLimitShedsEverything) {
  AdmissionQueue Q(0);
  EXPECT_FALSE(Q.tryAdmit());
  EXPECT_FALSE(Q.tryAdmit());
  EXPECT_EQ(0u, Q.admitted());
  EXPECT_EQ(2u, Q.shed());
}

TEST(AdmissionQueue, DrainWaitsForEveryRelease) {
  AdmissionQueue Q(4);
  ASSERT_TRUE(Q.tryAdmit());
  ASSERT_TRUE(Q.tryAdmit());
  std::atomic<bool> Released{false};
  std::thread T([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Q.release();
    Released.store(true);
    Q.release();
  });
  Q.drain();
  EXPECT_TRUE(Released.load()); // drain returned only after the releases
  EXPECT_EQ(0u, Q.depth());
  T.join();
}

//===----------------------------------------------------------------------===//
// CompileServer end to end
//===----------------------------------------------------------------------===//

TEST(CompileServer, ResponsesMatchLocalCompileAcrossTiers) {
  MetricsRegistry Metrics;
  ResultCache Cache;
  ServerOptions SO;
  SO.SocketPath = "server_test_parity.sock";
  SO.Workers = 2;
  SO.QueueDepth = 8;
  SO.Cache = &Cache;
  SO.Metrics = &Metrics;
  CompileServer Server(SO);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  int Fd = connectUnixSocket(SO.SocketPath, &Err);
  ASSERT_GE(Fd, 0) << Err;

  CompileRequest Req = tinyRequest();
  auto F = parseFunction(Req.Body, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  PipelineResult Local = runPipeline(*F, Req.toConfig());
  std::string LocalBytes = ResultCache::serializeResult(Local);

  CompileResponse Resp;
  ASSERT_TRUE(transact(Fd, Req, Resp, &Err)) << Err;
  EXPECT_EQ(ResponseStatus::Ok, Resp.Status);
  EXPECT_EQ("miss", Resp.Tier);
  EXPECT_EQ(LocalBytes, Resp.Body); // byte-identical to a local compile

  ASSERT_TRUE(transact(Fd, Req, Resp, &Err)) << Err;
  EXPECT_EQ(ResponseStatus::Ok, Resp.Status);
  EXPECT_EQ("hit_mem", Resp.Tier); // second compile served from cache
  EXPECT_EQ(LocalBytes, Resp.Body);

  close(Fd);
  Server.stop();

  EXPECT_EQ(2u, Server.serverMetrics().Requests.load());
  EXPECT_EQ(2u, Server.queue().admitted());
  EXPECT_EQ(0u, Server.queue().shed());
  EXPECT_EQ(0u, Server.queue().depth());

  // stop() flushed server.* (even all-zero series) and the latency
  // histograms into the registry.
  bool SawRequests = false, SawBadFrames = false;
  for (const auto &C : Metrics.counters()) {
    if (C.Name == "server.requests") {
      SawRequests = true;
      EXPECT_EQ(2, C.Value);
    }
    if (C.Name == "server.bad_frames") {
      SawBadFrames = true;
      EXPECT_EQ(0, C.Value);
    }
  }
  EXPECT_TRUE(SawRequests);
  EXPECT_TRUE(SawBadFrames);
  bool SawMiss = false, SawHit = false;
  for (const auto &H : Metrics.histograms()) {
    if (H.Name != "server.latency_us")
      continue;
    for (const auto &[K, V] : H.Labels.entries()) {
      SawMiss = SawMiss || V == "miss";
      SawHit = SawHit || V == "hit_mem";
    }
  }
  EXPECT_TRUE(SawMiss);
  EXPECT_TRUE(SawHit);
}

TEST(CompileServer, StructuredErrorsNeverKillTheServer) {
  ServerOptions SO;
  SO.SocketPath = "server_test_errors.sock";
  SO.Workers = 1;
  CompileServer Server(SO);
  ASSERT_TRUE(Server.start());

  int Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);

  // A frame whose payload is not a request document.
  ASSERT_TRUE(writeFrame(Fd, "utterly not a request"));
  std::string Payload;
  ASSERT_EQ(FrameStatus::Ok, readFrame(Fd, Payload));
  CompileResponse Resp;
  ASSERT_TRUE(decodeResponse(Payload, Resp));
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);
  EXPECT_NE(std::string::npos, Resp.Body.find("bad request"));

  // A well-formed request whose body does not parse as IR.
  CompileRequest Req = tinyRequest();
  Req.Body = "func broken\n  this is not IR\n";
  ASSERT_TRUE(transact(Fd, Req, Resp));
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);
  EXPECT_NE(std::string::npos, Resp.Body.find("parse error"));

  // The same connection still serves a good request afterwards.
  ASSERT_TRUE(transact(Fd, tinyRequest(), Resp));
  EXPECT_EQ(ResponseStatus::Ok, Resp.Status);
  close(Fd);

  // Bad magic: structured error, then the connection is dropped.
  Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);
  sendRaw(Fd, "XXXXYYYYGARBAGE");
  ASSERT_EQ(FrameStatus::Ok, readFrame(Fd, Payload));
  ASSERT_TRUE(decodeResponse(Payload, Resp));
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);
  EXPECT_NE(std::string::npos, Resp.Body.find("bad-magic"));
  // The server dropped the connection. Our unread garbage bytes may turn
  // its close into a reset, so both a clean EOF and a connection error
  // are within contract here.
  FrameStatus After = readFrame(Fd, Payload);
  EXPECT_TRUE(After == FrameStatus::Eof || After == FrameStatus::IoError ||
              After == FrameStatus::Truncated);
  close(Fd);

  // Oversize length prefix: same contract.
  Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);
  sendRaw(Fd, leHeader(FrameMagic, 0x7f000000u));
  ASSERT_EQ(FrameStatus::Ok, readFrame(Fd, Payload));
  ASSERT_TRUE(decodeResponse(Payload, Resp));
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);
  EXPECT_NE(std::string::npos, Resp.Body.find("oversize"));
  close(Fd);

  // A client that dies mid-frame. The server drops the connection.
  Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);
  sendRaw(Fd, leHeader(FrameMagic, 1000) + "partial");
  close(Fd);

  // And one that disconnects after sending a full request, before
  // reading its response: the compile completes, the response write
  // fails, the server survives.
  Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(writeFrame(Fd, encodeRequest(tinyRequest())));
  close(Fd);

  // Server is still healthy on a fresh connection.
  Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(transact(Fd, tinyRequest(), Resp));
  EXPECT_EQ(ResponseStatus::Ok, Resp.Status);
  close(Fd);

  Server.stop();
  EXPECT_GE(Server.serverMetrics().BadFrames.load(), 3u);
  EXPECT_GE(Server.serverMetrics().Errors.load(), 2u);
}

TEST(CompileServer, ZeroQueueDepthShedsWithEmptyBody) {
  MetricsRegistry Metrics;
  ServerOptions SO;
  SO.SocketPath = "server_test_shed.sock";
  SO.Workers = 1;
  SO.QueueDepth = 0;
  SO.Metrics = &Metrics;
  CompileServer Server(SO);
  ASSERT_TRUE(Server.start());

  int Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);
  CompileResponse Resp;
  for (int I = 0; I != 3; ++I) {
    ASSERT_TRUE(transact(Fd, tinyRequest(), Resp));
    EXPECT_EQ(ResponseStatus::Shed, Resp.Status);
    EXPECT_EQ("none", Resp.Tier);
    EXPECT_TRUE(Resp.Body.empty());
  }
  close(Fd);
  Server.stop();

  EXPECT_EQ(3u, Server.queue().shed());
  EXPECT_EQ(0u, Server.queue().admitted());
  bool SawShed = false;
  for (const auto &C : Metrics.counters())
    if (C.Name == "server.shed") {
      SawShed = true;
      EXPECT_EQ(3, C.Value);
    }
  EXPECT_TRUE(SawShed);
}

TEST(CompileServer, HandleRequestDirectlyWithoutASocket) {
  ServerOptions SO;
  SO.SocketPath = "server_test_direct.sock"; // never started
  SO.Workers = 1;
  CompileServer Server(SO);

  CompileResponse Resp = Server.handleRequest("not a document");
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);

  Resp = Server.handleRequest(encodeRequest(tinyRequest()));
  EXPECT_EQ(ResponseStatus::Ok, Resp.Status);
  EXPECT_EQ("miss", Resp.Tier); // no cache wired: always a fresh compile
  PipelineResult Out;
  EXPECT_TRUE(ResultCache::deserializeResult(Resp.Body, Out));
}

//===----------------------------------------------------------------------===//
// scheme=auto (portfolio)
//===----------------------------------------------------------------------===//

TEST(Protocol, AutoSchemeRoundTrip) {
  CompileRequest Req = tinyRequest();
  Req.Auto = true;
  std::string Doc = encodeRequest(Req);
  EXPECT_NE(Doc.find("scheme=auto"), std::string::npos);

  CompileRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeRequest(Doc, Out, &Err)) << Err;
  EXPECT_TRUE(Out.Auto);
  EXPECT_EQ(Req.Body, Out.Body);

  // A concrete scheme decodes with Auto off.
  ASSERT_TRUE(decodeRequest(encodeRequest(tinyRequest()), Out, &Err)) << Err;
  EXPECT_FALSE(Out.Auto);
}

TEST(CompileServer, AutoRaceMatchesLocalPortfolio) {
  ServerOptions SO;
  SO.SocketPath = "server_test_auto_race.sock"; // never started
  SO.Workers = 2;
  SO.Portfolio = PortfolioMode::Race;
  SO.PortfolioJobs = 2;
  CompileServer Server(SO);

  CompileRequest Req = tinyRequest();
  Req.Auto = true;
  CompileResponse Resp = Server.handleRequest(encodeRequest(Req));
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);
  EXPECT_EQ("miss", Resp.Tier);

  // Byte parity with a local race under the same knobs.
  std::string Err;
  auto F = parseFunction(Req.Body, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  PipelineConfig C = Req.toConfig();
  C.Portfolio.Mode = PortfolioMode::Race;
  C.Portfolio.Jobs = 2;
  EXPECT_EQ(Resp.Body,
            ResultCache::serializeResult(runPortfolio(*F, C)));
}

TEST(CompileServer, AutoChooseMatchesLocalPortfolio) {
  DecisionTable T;
  T.Features = featureNames();
  T.Arms = defaultPortfolioArms();
  DecisionNode Leaf;
  Leaf.Feature = -1;
  Leaf.Arm = 1;
  Leaf.Confidence = 0.9;
  Leaf.Samples = 7;
  T.Nodes.push_back(Leaf);
  std::string TErr;
  ASSERT_TRUE(T.valid(&TErr)) << TErr;

  ServerOptions SO;
  SO.SocketPath = "server_test_auto_choose.sock"; // never started
  SO.Workers = 1;
  SO.Portfolio = PortfolioMode::Choose;
  SO.PortfolioTable = &T;
  CompileServer Server(SO);

  CompileRequest Req = tinyRequest();
  Req.Auto = true;
  CompileResponse Resp = Server.handleRequest(encodeRequest(Req));
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);

  std::string Err;
  auto F = parseFunction(Req.Body, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  PipelineConfig C = Req.toConfig();
  C.Portfolio.Mode = PortfolioMode::Choose;
  C.Portfolio.Table = &T;
  PortfolioOutcome Out;
  PipelineResult Local = runPortfolio(*F, C, nullptr, &Out);
  EXPECT_TRUE(Out.ChooserConfident);
  EXPECT_EQ(Resp.Body, ResultCache::serializeResult(Local));
}

TEST(CompileServer, AutoRejectedWhenPortfolioIsOff) {
  ServerOptions SO;
  SO.SocketPath = "server_test_auto_off.sock"; // never started
  SO.Workers = 1;
  CompileServer Server(SO);

  CompileRequest Req = tinyRequest();
  Req.Auto = true;
  CompileResponse Resp = Server.handleRequest(encodeRequest(Req));
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);
  EXPECT_NE(Resp.Body.find("scheme=auto requires a server started with"),
            std::string::npos)
      << Resp.Body;
  // The concrete-scheme path still works on the same server.
  EXPECT_EQ(ResponseStatus::Ok,
            Server.handleRequest(encodeRequest(tinyRequest())).Status);
}

TEST(CompileServer, AutoWinnerDoubleStoreServesDirectRequests) {
  ResultCache Cache;
  ServerOptions SO;
  SO.SocketPath = "server_test_auto_cache.sock"; // never started
  SO.Workers = 1;
  SO.Portfolio = PortfolioMode::Race;
  SO.Cache = &Cache;
  CompileServer Server(SO);

  CompileRequest Req = tinyRequest();
  Req.Auto = true;
  CompileResponse Cold = Server.handleRequest(encodeRequest(Req));
  ASSERT_EQ(ResponseStatus::Ok, Cold.Status);
  EXPECT_EQ("miss", Cold.Tier);

  // Warm auto request: memory-tier hit, byte-identical body.
  CompileResponse Warm = Server.handleRequest(encodeRequest(Req));
  EXPECT_EQ("hit_mem", Warm.Tier);
  EXPECT_EQ(Cold.Body, Warm.Body);

  // The race's winner was also stored under its concrete scheme key, so
  // a direct request for that scheme hits without compiling.
  std::string Err;
  auto F = parseFunction(Req.Body, &Err);
  ASSERT_TRUE(F.has_value()) << Err;
  PipelineConfig C = Req.toConfig();
  C.Portfolio.Mode = PortfolioMode::Race;
  PipelineConfig WinnerCfg;
  runPortfolio(*F, C, &WinnerCfg);

  CompileRequest Direct = tinyRequest();
  Direct.S = WinnerCfg.S;
  CompileResponse DirectResp = Server.handleRequest(encodeRequest(Direct));
  ASSERT_EQ(ResponseStatus::Ok, DirectResp.Status);
  EXPECT_EQ("hit_mem", DirectResp.Tier);
  EXPECT_EQ(Cold.Body, DirectResp.Body);
}

TEST(CompileServer, ConcurrentClientsAndGracefulStop) {
  MetricsRegistry Metrics;
  ResultCache Cache;
  ServerOptions SO;
  SO.SocketPath = "server_test_concurrent.sock";
  SO.Workers = 2;
  SO.QueueDepth = 16;
  SO.Cache = &Cache;
  SO.Metrics = &Metrics;
  CompileServer Server(SO);
  ASSERT_TRUE(Server.start());

  constexpr int Clients = 4, PerClient = 5;
  std::atomic<int> OkCount{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C != Clients; ++C)
    Threads.emplace_back([&] {
      int Fd = connectUnixSocket(SO.SocketPath);
      ASSERT_GE(Fd, 0);
      for (int I = 0; I != PerClient; ++I) {
        CompileResponse Resp;
        ASSERT_TRUE(transact(Fd, tinyRequest(), Resp));
        if (Resp.Status == ResponseStatus::Ok)
          OkCount.fetch_add(1);
      }
      close(Fd);
    });
  for (std::thread &T : Threads)
    T.join();
  Server.stop();
  Server.stop(); // idempotent

  EXPECT_EQ(Clients * PerClient, OkCount.load());
  EXPECT_EQ(unsigned(Clients * PerClient),
            unsigned(Server.serverMetrics().Requests.load()));
  EXPECT_EQ(0u, Server.queue().depth()); // graceful stop drained
  // One compile, the rest cache hits.
  ResultCacheStats CS = Cache.stats();
  EXPECT_EQ(uint64_t(Clients * PerClient), CS.Hits + CS.Misses);
  EXPECT_GE(CS.Hits, uint64_t(Clients * PerClient - Clients));
}

TEST(CompileServer, StopWithoutStartAndRestart) {
  ServerOptions SO;
  SO.SocketPath = "server_test_restart.sock";
  SO.Workers = 1;
  {
    CompileServer Server(SO);
    Server.stop(); // never started: no-op
    ASSERT_TRUE(Server.start());
    int Fd = connectUnixSocket(SO.SocketPath);
    ASSERT_GE(Fd, 0);
    CompileResponse Resp;
    ASSERT_TRUE(transact(Fd, tinyRequest(), Resp));
    EXPECT_EQ(ResponseStatus::Ok, Resp.Status);
    close(Fd);
  } // destructor stops and unlinks
  EXPECT_LT(connectUnixSocket(SO.SocketPath), 0); // socket gone
}

//===----------------------------------------------------------------------===//
// Tracing on the wire
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestTraceIdRoundTripAndStrictness) {
  CompileRequest Req = tinyRequest();
  Req.TraceId = 0xabcdef0123456789ull;
  CompileRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeRequest(encodeRequest(Req), Out, &Err)) << Err;
  EXPECT_EQ(Req.TraceId, Out.TraceId);
  EXPECT_EQ(Req.Body, Out.Body);

  // An untraced request never mentions traceid on the wire.
  Req.TraceId = 0;
  EXPECT_EQ(std::string::npos, encodeRequest(Req).find("traceid"));
  ASSERT_TRUE(decodeRequest(encodeRequest(Req), Out, &Err)) << Err;
  EXPECT_EQ(0u, Out.TraceId);

  // Malformed ids are rejected outright: wrong length, charset, or the
  // reserved all-zero id.
  EXPECT_FALSE(decodeRequest("dra-req-v1\ntraceid=abc\nbody=0\n", Out));
  EXPECT_FALSE(decodeRequest(
      "dra-req-v1\ntraceid=ABCDEF0123456789\nbody=0\n", Out));
  EXPECT_FALSE(decodeRequest(
      "dra-req-v1\ntraceid=0000000000000000\nbody=0\n", Out));
}

TEST(Protocol, ResponseSpanSummaryRoundTrip) {
  CompileResponse Resp;
  Resp.Status = ResponseStatus::Ok;
  Resp.Tier = "miss";
  Resp.Body = "result bytes; with ; semicolons\n";
  Resp.TraceId = deriveTraceId(3, 9);
  Resp.ServerPid = 4242;
  Resp.Spans.push_back({"request", 101, 0, 1000000, 900000});
  Resp.Spans.push_back({"cache.miss; tricky name", 102, 2, 1000100, 50});
  Resp.ThreadNames.push_back({101, "conn-1"});
  Resp.ThreadNames.push_back({102, "worker-0"});

  CompileResponse Out;
  std::string Err;
  ASSERT_TRUE(decodeResponse(encodeResponse(Resp), Out, &Err)) << Err;
  EXPECT_EQ(Resp.TraceId, Out.TraceId);
  EXPECT_EQ(Resp.ServerPid, Out.ServerPid);
  EXPECT_EQ(Resp.Body, Out.Body);
  ASSERT_EQ(2u, Out.Spans.size());
  EXPECT_EQ("request", Out.Spans[0].Name);
  EXPECT_EQ(101u, Out.Spans[0].Tid);
  EXPECT_EQ(1000000u, Out.Spans[0].BeginNs);
  EXPECT_EQ(900000u, Out.Spans[0].DurNs);
  // Span names may contain ';' — only the first four fields split.
  EXPECT_EQ("cache.miss; tricky name", Out.Spans[1].Name);
  EXPECT_EQ(2u, Out.Spans[1].Depth);
  ASSERT_EQ(2u, Out.ThreadNames.size());
  EXPECT_EQ("worker-0", Out.ThreadNames[1].second);

  // A response without a trace id never emits the trace lines.
  Resp.TraceId = 0;
  std::string Wire = encodeResponse(Resp);
  EXPECT_EQ(std::string::npos, Wire.find("span="));
  EXPECT_EQ(std::string::npos, Wire.find("pid="));

  // Malformed span lines are rejected, not skipped.
  EXPECT_FALSE(decodeResponse(
      "dra-resp-v1\nstatus=ok\nspan=1;2;3\nbody=0\n", Out));
  EXPECT_FALSE(decodeResponse(
      "dra-resp-v1\nstatus=ok\nspan=x;0;1;2;name\nbody=0\n", Out));
  EXPECT_FALSE(decodeResponse(
      "dra-resp-v1\nstatus=ok\nspan=1;0;1;2;\nbody=0\n", Out));
  EXPECT_FALSE(decodeResponse(
      "dra-resp-v1\nstatus=ok\ntname=7\nbody=0\n", Out));
}

TEST(Protocol, CtlRoundTripAndStrictness) {
  CtlRequest Req;
  Req.Cmd = "recent";
  Req.RecentN = 5;
  std::string Wire = encodeCtlRequest(Req);
  EXPECT_TRUE(isCtlPayload(Wire));
  EXPECT_FALSE(isCtlPayload(encodeRequest(tinyRequest())));
  CtlRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeCtlRequest(Wire, Out, &Err)) << Err;
  EXPECT_EQ("recent", Out.Cmd);
  EXPECT_EQ(5u, Out.RecentN);

  // 'stats'/'health' omit n=.
  Req.Cmd = "stats";
  EXPECT_EQ(std::string::npos, encodeCtlRequest(Req).find("n="));

  // Unknown keys, missing cmd, and nonempty bodies are rejected.
  EXPECT_FALSE(decodeCtlRequest("dra-ctl-v1\nbogus=1\nbody=0\n", Out));
  EXPECT_FALSE(decodeCtlRequest("dra-ctl-v1\nbody=0\n", Out));
  EXPECT_FALSE(
      decodeCtlRequest("dra-ctl-v1\ncmd=stats\nbody=3\nabc", Out));
  EXPECT_FALSE(decodeCtlRequest("dra-req-v1\ncmd=stats\nbody=0\n", Out));
}

TEST(CompileServer, ControlRequestsAnswerWithoutCompiling) {
  MetricsRegistry Metrics;
  ServerOptions SO;
  SO.SocketPath = "server_test_ctl.sock";
  SO.Workers = 1;
  SO.Metrics = &Metrics;
  CompileServer Server(SO);
  ASSERT_TRUE(Server.start());

  int Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);

  // One compile so stats have something to show.
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(transact(Fd, tinyRequest(), Resp, &Err)) << Err;
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);

  CtlRequest Ctl;
  Ctl.Cmd = "health";
  ASSERT_TRUE(transactCtl(Fd, Ctl, Resp, &Err)) << Err;
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);
  EXPECT_EQ("none", Resp.Tier);
  JsonValue Health;
  ASSERT_TRUE(parseJson(Resp.Body, Health, &Err)) << Err;
  EXPECT_EQ("ok", Health.field("status")->Str);
  EXPECT_GT(Health.field("pid")->Num, 0);

  Ctl.Cmd = "stats";
  ASSERT_TRUE(transactCtl(Fd, Ctl, Resp, &Err)) << Err;
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);
  JsonValue Stats;
  ASSERT_TRUE(parseJson(Resp.Body, Stats, &Err)) << Err;
  const JsonValue *Srv = Stats.field("server");
  ASSERT_NE(nullptr, Srv);
  EXPECT_EQ(1.0, Srv->field("requests")->Num); // ctl is not a request
  EXPECT_GE(Srv->field("ctl_requests")->Num, 2.0);
  const JsonValue *Trace = Stats.field("trace");
  ASSERT_NE(nullptr, Trace);
  EXPECT_EQ(0.0, Trace->field("dropped_spans")->Num);
  const JsonValue *Tiers = Stats.field("tiers");
  ASSERT_NE(nullptr, Tiers);
  ASSERT_EQ(JsonValue::Array, Tiers->K);
  ASSERT_EQ(1u, Tiers->Arr.size());
  EXPECT_EQ("miss", Tiers->Arr[0].field("tier")->Str);
  EXPECT_EQ(1.0, Tiers->Arr[0].field("count")->Num);

  Ctl.Cmd = "recent";
  Ctl.RecentN = 8;
  ASSERT_TRUE(transactCtl(Fd, Ctl, Resp, &Err)) << Err;
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);
  JsonValue Recent;
  ASSERT_TRUE(parseJson(Resp.Body, Recent, &Err)) << Err;
  const JsonValue *Records = Recent.field("records");
  ASSERT_NE(nullptr, Records);
  ASSERT_EQ(1u, Records->Arr.size());
  EXPECT_EQ("ok", Records->Arr[0].field("outcome")->Str);
  EXPECT_EQ("miss", Records->Arr[0].field("tier")->Str);
  EXPECT_EQ(16u, Records->Arr[0].field("traceid")->Str.size());

  // An unknown command is a structured error that counts as one.
  Ctl.Cmd = "explode";
  ASSERT_TRUE(transactCtl(Fd, Ctl, Resp, &Err)) << Err;
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);
  EXPECT_NE(std::string::npos, Resp.Body.find("explode"));

  close(Fd);
  Server.stop();
  EXPECT_EQ(1u, Server.serverMetrics().Requests.load());
  EXPECT_EQ(4u, Server.serverMetrics().CtlRequests.load());
}

TEST(CompileServer, TracedRequestEchoesSpanSummary) {
  ResultCache Cache;
  ServerOptions SO;
  SO.SocketPath = "server_test_traced.sock";
  SO.Workers = 1;
  SO.Cache = &Cache;
  CompileServer Server(SO);
  ASSERT_TRUE(Server.start());

  int Fd = connectUnixSocket(SO.SocketPath);
  ASSERT_GE(Fd, 0);

  // An untraced request gets no trace attachments even though the flight
  // recorder collects spans server-side.
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(transact(Fd, tinyRequest(), Resp, &Err)) << Err;
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);
  EXPECT_EQ(0u, Resp.TraceId);
  EXPECT_TRUE(Resp.Spans.empty());

  // A traced one echoes the id and the span tree.
  CompileRequest Req = tinyRequest();
  Req.TraceId = deriveTraceId(11, 7);
  ASSERT_TRUE(transact(Fd, Req, Resp, &Err)) << Err;
  ASSERT_EQ(ResponseStatus::Ok, Resp.Status);
  EXPECT_EQ("hit_mem", Resp.Tier); // same body as the first request
  EXPECT_EQ(Req.TraceId, Resp.TraceId);
  EXPECT_GT(Resp.ServerPid, 0u);
  ASSERT_FALSE(Resp.Spans.empty());

  auto HasSpan = [&](const char *Name, unsigned Depth) {
    for (const WireSpan &S : Resp.Spans)
      if (S.Name == Name && S.Depth == Depth)
        return true;
    return false;
  };
  EXPECT_TRUE(HasSpan("request", 0));
  EXPECT_TRUE(HasSpan("parse", 1));
  EXPECT_TRUE(HasSpan("queue_wait", 1));
  EXPECT_TRUE(HasSpan("compile", 1));
  EXPECT_TRUE(HasSpan("cache.hit_mem", 2));
  EXPECT_FALSE(Resp.ThreadNames.empty());

  // The whole-request span contains every other span in time.
  const WireSpan *Request = nullptr;
  for (const WireSpan &S : Resp.Spans)
    if (S.Name == "request")
      Request = &S;
  ASSERT_NE(nullptr, Request);
  for (const WireSpan &S : Resp.Spans) {
    EXPECT_GE(S.BeginNs, Request->BeginNs);
    EXPECT_LE(S.BeginNs + S.DurNs, Request->BeginNs + Request->DurNs);
  }

  close(Fd);
  Server.stop();
  EXPECT_EQ(1u, Server.serverMetrics().TracedRequests.load());
  EXPECT_EQ(0u, Server.serverMetrics().TraceDropped.load());
}

TEST(CompileServer, ErrorAndShedResponsesLandInLatencyTiers) {
  // Shed tier: a zero-depth queue sheds everything.
  {
    MetricsRegistry Metrics;
    ServerOptions SO;
    SO.SocketPath = "server_test_tier_shed.sock"; // unused: direct calls
    SO.Workers = 1;
    SO.QueueDepth = 0;
    SO.Metrics = &Metrics;
    CompileServer Server(SO);
    CompileResponse Resp =
        Server.handleRequest(encodeRequest(tinyRequest()));
    EXPECT_EQ(ResponseStatus::Shed, Resp.Status);
    Server.flushMetrics();
    bool SawShedTier = false;
    for (const auto &H : Metrics.histograms()) {
      if (H.Name != "server.latency_us")
        continue;
      for (const auto &[K, V] : H.Labels.entries())
        SawShedTier = SawShedTier || V == "shed";
    }
    EXPECT_TRUE(SawShedTier);
  }
  // Error tier: a payload that fails to decode.
  MetricsRegistry Metrics;
  ServerOptions SO;
  SO.SocketPath = "server_test_tier_error.sock";
  SO.Workers = 1;
  SO.Metrics = &Metrics;
  CompileServer Server(SO);
  CompileResponse Resp = Server.handleRequest("not a request");
  EXPECT_EQ(ResponseStatus::Error, Resp.Status);
  Server.flushMetrics();
  bool SawErrorTier = false, SawTraceCounters = false;
  for (const auto &H : Metrics.histograms()) {
    if (H.Name != "server.latency_us")
      continue;
    for (const auto &[K, V] : H.Labels.entries())
      SawErrorTier = SawErrorTier || V == "error";
  }
  // trace.* counters flush zeros-included, so CI can gate dropped_spans
  // at 0 without special-casing its absence.
  for (const auto &C : Metrics.counters())
    if (C.Name == "trace.dropped_spans") {
      SawTraceCounters = true;
      EXPECT_EQ(0, C.Value);
    }
  EXPECT_TRUE(SawErrorTier);
  EXPECT_TRUE(SawTraceCounters);
}

TEST(CompileServer, FlightRecorderCapturesOutcomesAndSlowDetail) {
  ServerOptions SO;
  SO.SocketPath = "server_test_recorder.sock"; // unused: direct calls
  SO.Workers = 1;
  SO.FlightRecorderSize = 32;
  SO.SlowRequestUs = 0; // everything is "slow": span detail always kept
  CompileServer Server(SO);

  EXPECT_EQ(ResponseStatus::Ok,
            Server.handleRequest(encodeRequest(tinyRequest()), 1).Status);
  EXPECT_EQ(ResponseStatus::Error,
            Server.handleRequest("garbage", 2).Status);

  const FlightRecorder &FR = Server.flightRecorder();
  EXPECT_EQ(2u, FR.recorded());
  EXPECT_EQ(2u, FR.slowCount());
  std::vector<RequestRecord> R = FR.recent(10);
  ASSERT_EQ(2u, R.size());
  // Newest first: the error.
  EXPECT_EQ("error", R[0].Outcome);
  EXPECT_EQ("error", R[0].Tier);
  EXPECT_EQ("?", R[0].Scheme); // never decoded
  EXPECT_FALSE(R[0].Error.empty());
  EXPECT_EQ(2u, R[0].ConnId);
  EXPECT_TRUE(R[0].Slow);
  EXPECT_FALSE(R[0].Spans.empty()); // slow: detail kept

  EXPECT_EQ("ok", R[1].Outcome);
  EXPECT_EQ("miss", R[1].Tier);
  EXPECT_EQ("coalesce", R[1].Scheme);
  EXPECT_GT(R[1].TotalUs, 0);
  EXPECT_GE(R[1].TotalUs, R[1].CompileUs);
  EXPECT_NE(0u, R[1].TraceId); // server-derived id, never zero
  EXPECT_FALSE(R[1].ClientTraced);

  // With recording disabled (capacity 0) and no client trace id, requests
  // take the null-context fast path and leave nothing behind.
  ServerOptions SO2;
  SO2.SocketPath = "server_test_recorder_off.sock";
  SO2.Workers = 1;
  SO2.FlightRecorderSize = 0;
  CompileServer Server2(SO2);
  EXPECT_EQ(ResponseStatus::Ok,
            Server2.handleRequest(encodeRequest(tinyRequest())).Status);
  EXPECT_FALSE(Server2.flightRecorder().enabled());
  EXPECT_TRUE(Server2.flightRecorder().recent(10).empty());
  EXPECT_EQ(0u, Server2.serverMetrics().TraceSpans.load());
}
