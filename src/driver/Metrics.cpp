//===- driver/Metrics.cpp - Labeled metrics registry ----------------------===//

#include "driver/Metrics.h"

#include "adt/Statistics.h"
#include "driver/Json.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

using namespace dra;

uint64_t dra::steadyClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string dra::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void dra::writeJsonNumber(std::ostream &OS, double V) {
  if (!std::isfinite(V)) {
    OS << 0; // JSON has no NaN/inf; metrics never legitimately produce them.
    return;
  }
  // 2^53: the largest range in which every integer is exactly a double.
  constexpr double ExactLimit = 9007199254740992.0;
  if (V == std::rint(V) && std::fabs(V) < ExactLimit) {
    OS << static_cast<long long>(V);
    return;
  }
  // Shortest representation that still round-trips: try increasing
  // precision up to max_digits10 (17), at which round-tripping is
  // guaranteed; most values (e.g. 24.8) already survive at 15 digits and
  // stay readable.
  char Buf[64];
  for (int Precision = 15;; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
    if (std::strtod(Buf, nullptr) == V ||
        Precision >= std::numeric_limits<double>::max_digits10)
      break;
  }
  OS << Buf;
}

//===----------------------------------------------------------------------===//
// MetricLabels
//===----------------------------------------------------------------------===//

void MetricLabels::set(std::string Key, std::string Value) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Key,
      [](const auto &E, const std::string &K) { return E.first < K; });
  if (It != Entries.end() && It->first == Key)
    It->second = std::move(Value);
  else
    Entries.insert(It, {std::move(Key), std::move(Value)});
}

std::string MetricLabels::key() const {
  std::string Out;
  for (const auto &[K, V] : Entries) {
    if (!Out.empty())
      Out += ',';
    Out += K;
    Out += '=';
    Out += V;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

const std::vector<double> &MetricsRegistry::defaultBuckets() {
  // Exponential 1-2.5-5 decades; chosen so stage durations in microseconds
  // land in the middle of the range.
  static const std::vector<double> Bounds = {
      1,    2,    5,     10,    25,    50,     100,    250,    500,
      1000, 2500, 5000,  10000, 25000, 50000,  100000, 250000, 500000,
      1000000};
  return Bounds;
}

MetricsRegistry::Series &MetricsRegistry::seriesFor(Metric &M,
                                                    const MetricLabels &L) {
  std::string Key = L.key();
  auto It = M.ByLabel.find(Key);
  if (It == M.ByLabel.end())
    It = M.ByLabel.emplace(std::move(Key), Series{L, 0, {}}).first;
  return It->second;
}

void MetricsRegistry::count(std::string_view Name, double Delta,
                            const MetricLabels &Labels) {
  std::lock_guard<std::mutex> Lock(Mtx);
  seriesFor(Counters[std::string(Name)], Labels).Value += Delta;
}

void MetricsRegistry::setCount(std::string_view Name, double Value,
                               const MetricLabels &Labels) {
  std::lock_guard<std::mutex> Lock(Mtx);
  seriesFor(Counters[std::string(Name)], Labels).Value = Value;
}

void MetricsRegistry::gauge(std::string_view Name, double Value,
                            const MetricLabels &Labels) {
  std::lock_guard<std::mutex> Lock(Mtx);
  seriesFor(Gauges[std::string(Name)], Labels).Value = Value;
}

void MetricsRegistry::observe(std::string_view Name, double Value,
                              const MetricLabels &Labels) {
  std::lock_guard<std::mutex> Lock(Mtx);
  Metric &M = Histograms[std::string(Name)];
  if (M.UpperBounds.empty())
    M.UpperBounds = defaultBuckets();
  seriesFor(M, Labels).Samples.push_back(Value);
}

void MetricsRegistry::defineBuckets(std::string_view Name,
                                    std::vector<double> UpperBounds) {
  assert(std::is_sorted(UpperBounds.begin(), UpperBounds.end()) &&
         "bucket bounds must ascend");
  std::lock_guard<std::mutex> Lock(Mtx);
  Metric &M = Histograms[std::string(Name)];
  if (M.ByLabel.empty())
    M.UpperBounds = std::move(UpperBounds);
}

std::vector<MetricsRegistry::CounterSample> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  std::vector<CounterSample> Out;
  for (const auto &[Name, M] : Counters)
    for (const auto &[Key, S] : M.ByLabel)
      Out.push_back({Name, S.Labels, S.Value});
  return Out;
}

std::vector<MetricsRegistry::CounterSample> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  std::vector<CounterSample> Out;
  for (const auto &[Name, M] : Gauges)
    for (const auto &[Key, S] : M.ByLabel)
      Out.push_back({Name, S.Labels, S.Value});
  return Out;
}

std::vector<MetricsRegistry::HistogramSample>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  std::vector<HistogramSample> Out;
  for (const auto &[Name, M] : Histograms) {
    for (const auto &[Key, S] : M.ByLabel) {
      HistogramSample H;
      H.Name = Name;
      H.Labels = S.Labels;
      H.Count = S.Samples.size();
      H.UpperBounds = M.UpperBounds;
      H.BucketCounts.assign(M.UpperBounds.size() + 1, 0);
      std::vector<double> Sorted = S.Samples;
      std::sort(Sorted.begin(), Sorted.end());
      if (!Sorted.empty()) {
        H.Min = Sorted.front();
        H.Max = Sorted.back();
      }
      for (double V : Sorted) {
        H.Sum += V;
        // First bound >= V; values above every bound fall in the +inf
        // overflow bucket (a value exactly equal to a bound belongs to
        // that bound's bucket).
        size_t B = std::lower_bound(M.UpperBounds.begin(),
                                    M.UpperBounds.end(), V) -
                   M.UpperBounds.begin();
        ++H.BucketCounts[B];
      }
      H.P50 = percentile(Sorted, 50);
      H.P90 = percentile(Sorted, 90);
      H.P95 = percentile(Sorted, 95);
      H.P99 = percentile(Sorted, 99);
      Out.push_back(std::move(H));
    }
  }
  return Out;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  return Counters.empty() && Gauges.empty() && Histograms.empty();
}

namespace {

void writeLabels(std::ostream &OS, const MetricLabels &L) {
  OS << "{";
  bool First = true;
  for (const auto &[K, V] : L.entries()) {
    OS << (First ? "" : ", ") << "\"" << jsonEscape(K) << "\": \""
       << jsonEscape(V) << "\"";
    First = false;
  }
  OS << "}";
}

void writeCounterArray(
    std::ostream &OS, const char *Kind,
    const std::vector<MetricsRegistry::CounterSample> &Samples) {
  OS << "  \"" << Kind << "\": [";
  bool First = true;
  for (const auto &S : Samples) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << "    {\"name\": \"" << jsonEscape(S.Name) << "\", \"labels\": ";
    writeLabels(OS, S.Labels);
    OS << ", \"value\": ";
    writeJsonNumber(OS, S.Value);
    OS << "}";
  }
  OS << (First ? "]" : "\n  ]");
}

} // namespace

void MetricsRegistry::writeJson(std::ostream &OS) const {
  OS << "{\n  \"schema\": \"" << SchemaVersion << "\",\n";
  writeCounterArray(OS, "counters", counters());
  OS << ",\n";
  writeCounterArray(OS, "gauges", gauges());
  OS << ",\n  \"histograms\": [";
  bool First = true;
  for (const HistogramSample &H : histograms()) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << "    {\"name\": \"" << jsonEscape(H.Name) << "\", \"labels\": ";
    writeLabels(OS, H.Labels);
    OS << ", \"count\": " << H.Count << ", \"sum\": ";
    writeJsonNumber(OS, H.Sum);
    OS << ", \"min\": ";
    writeJsonNumber(OS, H.Min);
    OS << ", \"max\": ";
    writeJsonNumber(OS, H.Max);
    OS << ", \"p50\": ";
    writeJsonNumber(OS, H.P50);
    OS << ", \"p90\": ";
    writeJsonNumber(OS, H.P90);
    OS << ", \"p95\": ";
    writeJsonNumber(OS, H.P95);
    OS << ", \"p99\": ";
    writeJsonNumber(OS, H.P99);
    OS << ",\n     \"buckets\": [";
    for (size_t I = 0; I != H.BucketCounts.size(); ++I) {
      OS << (I ? ", " : "") << "{\"le\": ";
      if (I < H.UpperBounds.size())
        writeJsonNumber(OS, H.UpperBounds[I]);
      else
        OS << "\"+inf\"";
      OS << ", \"count\": " << H.BucketCounts[I] << "}";
    }
    OS << "]}";
  }
  OS << (First ? "]" : "\n  ]") << "\n}\n";
}

bool MetricsRegistry::writeJsonFile(const std::string &Path,
                                    std::string *Err) const {
  std::ofstream Out(Path);
  if (!Out) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  writeJson(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// dra-metrics-v1 reader (JSON parsing itself lives in driver/Json.h)
//===----------------------------------------------------------------------===//

namespace {

bool setError(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Rebuilds the flat `name{k=v,...}` key for one sample object.
bool flatKeyOf(const JsonValue &Sample, std::string &Key, std::string *Err) {
  const JsonValue *Name = Sample.field("name");
  if (!Name || Name->K != JsonValue::String)
    return setError(Err, "sample is missing a string \"name\"");
  const JsonValue *Labels = Sample.field("labels");
  if (!Labels || Labels->K != JsonValue::Object)
    return setError(Err, "sample \"" + Name->Str +
                             "\" is missing a \"labels\" object");
  MetricLabels L;
  for (const auto &[K, V] : Labels->Obj) {
    if (V.K != JsonValue::String)
      return setError(Err, "label \"" + K + "\" of \"" + Name->Str +
                               "\" is not a string");
    L.set(K, V.Str);
  }
  // Unlabeled series flatten to the bare name; labeled ones carry the
  // canonical key so `name` and `name{...}` never collide in dra-stats.
  Key = L.empty() ? Name->Str : Name->Str + "{" + L.key() + "}";
  return true;
}

bool numberField(const JsonValue &Obj, const char *Field, double &Out,
                 std::string *Err) {
  const JsonValue *V = Obj.field(Field);
  if (!V || V->K != JsonValue::Number)
    return setError(Err, std::string("missing numeric field \"") + Field +
                             "\"");
  Out = V->Num;
  return true;
}

} // namespace

bool dra::loadMetricsJson(std::istream &In, MetricsFileData &Out,
                          std::string *Err) {
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  JsonValue Root;
  std::string ParseErr;
  if (!parseJson(Text, Root, &ParseErr))
    return setError(Err, "malformed JSON: " + ParseErr);
  if (Root.K != JsonValue::Object)
    return setError(Err, "top-level value is not an object");

  const JsonValue *Schema = Root.field("schema");
  if (!Schema || Schema->K != JsonValue::String)
    return setError(Err, "missing \"schema\" string");
  if (Schema->Str != MetricsRegistry::SchemaVersion)
    return setError(Err, "unsupported schema \"" + Schema->Str +
                             "\" (expected " +
                             std::string(MetricsRegistry::SchemaVersion) +
                             ")");
  Out.Schema = Schema->Str;

  auto LoadScalars = [&](const char *Kind,
                         std::map<std::string, double> &Dest) -> bool {
    const JsonValue *Arr = Root.field(Kind);
    if (!Arr || Arr->K != JsonValue::Array)
      return setError(Err, std::string("missing \"") + Kind + "\" array");
    for (const JsonValue &Sample : Arr->Arr) {
      if (Sample.K != JsonValue::Object)
        return setError(Err, std::string(Kind) + " entry is not an object");
      std::string Key;
      if (!flatKeyOf(Sample, Key, Err))
        return false;
      double Value;
      if (!numberField(Sample, "value", Value, Err))
        return setError(Err, "sample \"" + Key + "\": " +
                                 (Err ? *Err : "bad value"));
      Dest[Key] = Value;
    }
    return true;
  };

  if (!LoadScalars("counters", Out.Counters) ||
      !LoadScalars("gauges", Out.Gauges))
    return false;

  const JsonValue *Hists = Root.field("histograms");
  if (!Hists || Hists->K != JsonValue::Array)
    return setError(Err, "missing \"histograms\" array");
  for (const JsonValue &Sample : Hists->Arr) {
    if (Sample.K != JsonValue::Object)
      return setError(Err, "histogram entry is not an object");
    std::string Key;
    if (!flatKeyOf(Sample, Key, Err))
      return false;
    MetricsFileData::HistSummary H;
    if (!numberField(Sample, "count", H.Count, Err) ||
        !numberField(Sample, "sum", H.Sum, Err) ||
        !numberField(Sample, "min", H.Min, Err) ||
        !numberField(Sample, "max", H.Max, Err) ||
        !numberField(Sample, "p50", H.P50, Err) ||
        !numberField(Sample, "p90", H.P90, Err) ||
        !numberField(Sample, "p99", H.P99, Err))
      return setError(Err, "histogram \"" + Key + "\": " +
                               (Err ? *Err : "bad field"));
    // p95 postdates the v1 schema's first release; files written before
    // it load with P95 = 0 rather than failing validation.
    if (Sample.field("p95") && !numberField(Sample, "p95", H.P95, Err))
      return setError(Err, "histogram \"" + Key + "\": " +
                               (Err ? *Err : "bad field"));
    const JsonValue *Buckets = Sample.field("buckets");
    if (!Buckets || Buckets->K != JsonValue::Array || Buckets->Arr.empty())
      return setError(Err, "histogram \"" + Key +
                               "\" is missing a non-empty \"buckets\" array");
    double BucketTotal = 0;
    for (const JsonValue &B : Buckets->Arr) {
      if (B.K != JsonValue::Object)
        return setError(Err, "histogram \"" + Key + "\": bucket is not an "
                                                    "object");
      double C;
      if (!numberField(B, "count", C, Err))
        return setError(Err, "histogram \"" + Key + "\": bucket without a "
                                                    "count");
      BucketTotal += C;
    }
    if (BucketTotal != H.Count)
      return setError(Err, "histogram \"" + Key +
                               "\": bucket counts do not sum to \"count\"");
    Out.Histograms[Key] = H;
  }
  return true;
}
