//===- driver/ThreadPool.h - Fixed-size worker pool -------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the batch-compilation driver and
/// the benchmark suites. Design points:
///
///  * `parallelFor`/`parallelMap` self-schedule over a shared atomic index
///    (dynamic chunking, so imbalanced pipeline tasks — e.g. the handful of
///    VLIW loops that need spilling — do not serialize a whole stripe the
///    way static blocking would).
///  * A pool constructed with one worker runs every task inline on the
///    calling thread. `Jobs=1` therefore has *exactly* serial semantics,
///    which the determinism tests rely on when comparing against
///    `Jobs=N`.
///  * Exceptions thrown by tasks are captured and rethrown on the calling
///    thread once the loop has drained (first exception wins).
///  * `currentWorker()` returns a stable 0-based id for the executing
///    worker (0 is also the calling thread for inline pools), which the
///    telemetry layer uses as the Chrome-trace `tid`.
///  * `submit` enqueues a detached fire-and-forget task — the compile
///    server's dispatch primitive. Queued tasks are *drained, not
///    dropped*, on destruction: a pool that goes away with work still
///    queued (SIGTERM-driven shutdown) finishes every task first, so
///    callers waiting on task side effects (promises, response writes)
///    never hang.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_DRIVER_THREADPOOL_H
#define DRA_DRIVER_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dra {

class ThreadPool {
public:
  /// Creates a pool with \p Workers worker threads; 0 picks
  /// `defaultWorkerCount()`. A pool with one worker executes inline.
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of workers this pool schedules on (>= 1).
  unsigned workerCount() const { return NumWorkers; }

  /// std::thread::hardware_concurrency, clamped to >= 1.
  static unsigned defaultWorkerCount();

  /// 0-based id of the worker executing the current task; 0 on the calling
  /// thread outside any pool loop.
  static unsigned currentWorker();

  /// Runs `Body(I)` for every I in [0, N). Indices are claimed dynamically;
  /// the call returns once all N iterations have finished. Rethrows the
  /// first task exception after the loop drains. Reentrant calls from
  /// inside one of *this* pool's task bodies run inline on the
  /// already-claimed worker; calls on a different pool schedule normally,
  /// so pools nest (e.g. the remap search pool inside a batch-compilation
  /// task).
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Enqueues a detached task that runs on a worker thread as soon as one
  /// is free (loops in progress finish their claimed iterations first).
  /// On a one-worker pool the task runs inline, immediately, on the
  /// calling thread — serial semantics, like parallelFor. Tasks must
  /// handle their own errors: an escaped exception is caught and dropped
  /// (there is no caller left to rethrow to). The destructor drains every
  /// queued task — including tasks submitted by other tasks — before
  /// joining the workers.
  void submit(std::function<void()> Task);

  /// Maps `Fn(I)` over [0, N) into a vector ordered by index — the output
  /// is independent of worker count and scheduling.
  template <typename ResultT>
  std::vector<ResultT>
  parallelMap(size_t N, const std::function<ResultT(size_t)> &Fn) {
    std::vector<ResultT> Results(N);
    parallelFor(N, [&](size_t I) { Results[I] = Fn(I); });
    return Results;
  }

private:
  struct Loop;

  /// Worker-thread main: waits for a loop, helps drain it, repeats.
  void workerMain(unsigned WorkerId);

  unsigned NumWorkers = 1;
  std::vector<std::thread> Threads;

  std::mutex Mtx;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  Loop *Current = nullptr;  // Loop being drained, guarded by Mtx.
  uint64_t LoopSeq = 0;     // Bumped per posted loop, guarded by Mtx.
  std::deque<std::function<void()>> Tasks; // Detached tasks, guarded by Mtx.
  bool ShuttingDown = false;
};

} // namespace dra

#endif // DRA_DRIVER_THREADPOOL_H
