//===- driver/BatchCompiler.h - Parallel pipeline driver --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs `runPipeline` over a batch of functions on a ThreadPool.
/// Guarantees:
///
///  * **Determinism.** Results are ordered by input index and every task
///    derives its configuration (including the remapping RNG seed, when
///    `PerTaskSeeds` is set) from the task index alone — never from
///    scheduling order or worker identity. `Jobs=1` and `Jobs=N` therefore
///    produce bit-identical results; tests/driver_test.cpp enforces this.
///  * **Telemetry.** When a Telemetry sink is attached, each task records
///    one "task" span plus one span per pipeline stage (rebased from the
///    PipelineResult's steady-clock stamps), tagged with the pool worker
///    id, and bumps the shared batch counters race-free.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_DRIVER_BATCHCOMPILER_H
#define DRA_DRIVER_BATCHCOMPILER_H

#include "core/Pipeline.h"
#include "driver/Telemetry.h"
#include "driver/ThreadPool.h"

#include <vector>

namespace dra {

struct BatchOptions {
  /// Worker threads; 0 = ThreadPool::defaultWorkerCount().
  unsigned Jobs = 0;
  /// Optional telemetry sink, shared by all tasks.
  Telemetry *Telem = nullptr;
  /// Reseed each task's remapping RNG from (Config.Remap.Seed, index) via
  /// Rng::taskSeed, decorrelating the restart streams across the batch.
  /// Off by default so a batch over one shared config reproduces the
  /// serial suites' historical numbers exactly.
  bool PerTaskSeeds = false;
  /// Optional result cache (driver/ResultCache.h), shared by all tasks
  /// and consulted inside runPipeline. Overrides any per-config Cache
  /// pointer so a batch has one coherent cache view.
  PipelineCache *Cache = nullptr;
};

class BatchCompiler {
public:
  explicit BatchCompiler(const BatchOptions &O = {});

  /// Compiles every function with \p Config. Results[I] corresponds to
  /// Functions[I] regardless of the worker count.
  std::vector<PipelineResult> run(const std::vector<Function> &Functions,
                                  const PipelineConfig &Config);

  /// As above with one config per function (sizes must match).
  std::vector<PipelineResult>
  run(const std::vector<Function> &Functions,
      const std::vector<PipelineConfig> &Configs);

  ThreadPool &pool() { return Pool; }
  const BatchOptions &options() const { return Opts; }

private:
  BatchOptions Opts;
  ThreadPool Pool;
};

} // namespace dra

#endif // DRA_DRIVER_BATCHCOMPILER_H
