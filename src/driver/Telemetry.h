//===- driver/Telemetry.h - Per-stage timing & counters ---------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-safe collection of wall-clock spans and named counters for the
/// batch-compilation driver. Combinatorial allocation pipelines are
/// compile-time-heavy and heterogeneous (a few functions dominate), so
/// every scaling experiment needs to see *where* the time goes, per stage
/// and per function, not just end-to-end totals.
///
/// Two export formats:
///
///  * `writeJson` — an aggregate report: every counter, plus per-stage
///    span statistics (count, total/mean/min/max microseconds).
///  * `writeChromeTrace` — the Chrome `trace_event` format (an array of
///    phase-"X" complete events keyed by tid = pool worker), loadable in
///    `chrome://tracing` or https://ui.perfetto.dev.
///
/// All mutation is mutex-protected; spans and counters may be recorded
/// concurrently from every pool worker. Timestamps are microseconds
/// relative to the Telemetry object's construction (steady clock).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_DRIVER_TELEMETRY_H
#define DRA_DRIVER_TELEMETRY_H

#include "driver/Metrics.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dra {

/// One completed span on the shared timeline.
struct TraceSpan {
  std::string Name;        // e.g. "alloc", or the function name for tasks
  const char *Category;    // "stage" | "task" | caller-defined
  uint64_t BeginUs = 0;    // relative to Telemetry construction
  uint64_t DurUs = 0;
  unsigned Tid = 0;        // pool worker id
  /// The recording thread's OS tid; recordSpan fills it in when 0. The
  /// Chrome export keys rows by this (machine-unique) id so a merged
  /// multi-process trace never collapses two workers onto one row; the
  /// pool worker id stays the display name.
  uint64_t OsTid = 0;
  /// Free-form numeric annotations, shown in the trace viewer's detail
  /// pane (e.g. spills, set_last_regs for a task span).
  std::vector<std::pair<std::string, double>> Args;
};

class Telemetry {
public:
  Telemetry();

  /// Microseconds elapsed since construction (steady clock).
  uint64_t nowUs() const;

  /// Converts an absolute steady-clock nanosecond stamp (as recorded in
  /// PipelineResult::Spans) to this object's relative microseconds.
  /// Clamps to 0 for stamps predating construction.
  uint64_t toRelativeUs(uint64_t SteadyNs) const;

  /// Absolute steady-clock nanoseconds; the same clock core/Pipeline uses
  /// for its stage spans.
  static uint64_t steadyNowNs();

  void recordSpan(TraceSpan E);

  /// Atomically adds \p Delta to counter \p Name (creating it at 0).
  void addCounter(const std::string &Name, double Delta);

  /// Snapshot accessors (copy under the lock; cheap at report time).
  std::vector<TraceSpan> events() const;
  std::map<std::string, double> counters() const;

  /// Aggregate of all spans sharing one name.
  struct StageStats {
    size_t Count = 0;
    uint64_t TotalUs = 0;
    uint64_t MinUs = 0;
    uint64_t MaxUs = 0;
  };
  /// When \p Category is non-null, only spans with that category are
  /// aggregated (e.g. "stage" to exclude the per-function task spans).
  std::map<std::string, StageStats>
  stageStats(const char *Category = nullptr) const;

  /// Writes the aggregate JSON report.
  void writeJson(std::ostream &OS) const;

  /// Sets the `process_name` metadata of the Chrome export (default
  /// "dra"); tools pass their own name so merged traces label processes.
  void setProcessName(std::string Name);

  /// Writes Chrome trace-event JSON: one complete ("ph":"X") event per
  /// recorded span, preceded by `process_name`/`thread_name` ("M")
  /// metadata events. Events carry the real pid and OS tids.
  void writeChromeTrace(std::ostream &OS) const;

private:
  uint64_t OriginNs = 0;
  mutable std::mutex Mtx;
  std::vector<TraceSpan> Events;
  std::map<std::string, double> Counters;
  std::string ProcessName = "dra";
};

// jsonEscape lives in driver/Metrics.h (shared with the metrics writer).

} // namespace dra

#endif // DRA_DRIVER_TELEMETRY_H
