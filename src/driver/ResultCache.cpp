//===- driver/ResultCache.cpp - Content-addressed result cache ------------===//

#include "driver/ResultCache.h"

#include "driver/Telemetry.h"
#include "driver/Trace.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace dra;

namespace fs = std::filesystem;

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t fnv1a(const char *Data, size_t Len, uint64_t H = FnvOffset) {
  for (size_t I = 0; I != Len; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= FnvPrime;
  }
  return H;
}

/// SplitMix64 finalizer: decorrelates the verify-sampling decision from
/// the shard choice (both are derived from the same key).
uint64_t remix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Streaming FNV-1a over typed fields (every integer is folded in as 8
/// little-endian bytes so the key is layout- and endianness-stable).
class KeyHasher {
public:
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u32(uint32_t V) { u64(V); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void u8(uint8_t V) { u64(V); }
  void str(const char *S) {
    for (; *S; ++S)
      byte(static_cast<uint8_t>(*S));
    byte(0);
  }
  uint64_t get() const { return H; }

private:
  void byte(uint8_t B) {
    H ^= B;
    H *= FnvPrime;
  }
  uint64_t H = FnvOffset;
};

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Doubles travel as their 64-bit pattern in hex: round trips are exact
/// (the verify pass compares payloads byte-for-byte) and locale-immune.
void putDouble(std::ostream &OS, double V) {
  OS << ' ' << hex16(std::bit_cast<uint64_t>(V));
}

/// Whitespace-separated token reader over a serialized payload. Every
/// accessor is total: malformed input returns false, never throws.
class TokenReader {
public:
  explicit TokenReader(const std::string &S) : In(S) {}

  bool word(std::string &W) { return static_cast<bool>(In >> W); }

  bool expect(const char *Tag) {
    std::string W;
    return word(W) && W == Tag;
  }

  bool u64(uint64_t &V) {
    std::string W;
    if (!word(W) || W.empty())
      return false;
    errno = 0;
    char *End = nullptr;
    unsigned long long X = std::strtoull(W.c_str(), &End, 10);
    if (End != W.c_str() + W.size() || errno == ERANGE || W[0] == '-')
      return false;
    V = X;
    return true;
  }

  bool u32(uint32_t &V) {
    uint64_t X;
    if (!u64(X) || X > 0xffffffffull)
      return false;
    V = static_cast<uint32_t>(X);
    return true;
  }

  bool i64(int64_t &V) {
    std::string W;
    if (!word(W) || W.empty())
      return false;
    errno = 0;
    char *End = nullptr;
    long long X = std::strtoll(W.c_str(), &End, 10);
    if (End != W.c_str() + W.size() || errno == ERANGE)
      return false;
    V = X;
    return true;
  }

  bool boolean(bool &V) {
    uint64_t X;
    if (!u64(X) || X > 1)
      return false;
    V = X != 0;
    return true;
  }

  bool size(size_t &V) {
    uint64_t X;
    if (!u64(X))
      return false;
    V = static_cast<size_t>(X);
    return true;
  }

  bool uns(unsigned &V) {
    uint32_t X;
    if (!u32(X))
      return false;
    V = X;
    return true;
  }

  bool dbl(double &V) {
    std::string W;
    if (!word(W) || W.size() != 16)
      return false;
    errno = 0;
    char *End = nullptr;
    unsigned long long X = std::strtoull(W.c_str(), &End, 16);
    if (End != W.c_str() + 16 || errno == ERANGE)
      return false;
    V = std::bit_cast<double>(static_cast<uint64_t>(X));
    return true;
  }

private:
  std::istringstream In;
};

/// Unique-enough temp-file suffix for the atomic write (concurrent
/// writers of the *same* key write identical content, but their streams
/// must not interleave in one file before the rename).
std::string tmpSuffix() {
  return ".tmp" +
         std::to_string(std::hash<std::thread::id>{}(
                            std::this_thread::get_id()) &
                        0xffffff);
}

} // namespace

ResultCache::ResultCache(const ResultCacheOptions &O)
    : Opts(O), Shards(std::max(1u, O.Shards)) {
  ShardBudget = Opts.MemBudgetBytes / Shards.size();
  VerifyFrac.store(std::clamp(O.VerifyFraction, 0.0, 1.0),
                   std::memory_order_relaxed);
}

void ResultCache::setVerifyFraction(double F) {
  VerifyFrac.store(std::clamp(F, 0.0, 1.0), std::memory_order_relaxed);
}

bool ResultCache::shouldVerify(uint64_t Key) const {
  double F = VerifyFrac.load(std::memory_order_relaxed);
  if (F <= 0)
    return false;
  if (F >= 1)
    return true;
  // 53 uniform bits in [0, 1); deterministic per key, so a given entry is
  // either always or never sampled under a fixed fraction.
  double U = static_cast<double>(remix(Key) >> 11) * 0x1.0p-53;
  return U < F;
}

//===----------------------------------------------------------------------===//
// Key derivation
//===----------------------------------------------------------------------===//

uint64_t ResultCache::cacheKey(const Function &Src, const PipelineConfig &C) {
  KeyHasher H;
  H.str(FormatVersion);

  // Function content. The name is deliberately absent (content
  // addressing); CFG edge lists are derived state and also absent.
  H.u32(Src.NumRegs);
  H.u32(Src.MemWords);
  H.u32(Src.NumSpillSlots);
  H.u64(Src.Blocks.size());
  for (const BasicBlock &B : Src.Blocks) {
    H.u64(B.Insts.size());
    for (const Instruction &I : B.Insts) {
      H.u8(static_cast<uint8_t>(I.Op));
      H.u32(I.Dst);
      H.u32(I.Src1);
      H.u32(I.Src2);
      H.i64(I.Imm);
      H.u32(I.Target0);
      H.u32(I.Target1);
      H.u32(I.Aux);
    }
  }

  // Every config knob that steers the pipeline. Remap.Jobs is excluded
  // (bit-identical at any worker count); Metrics/Cache pointers never
  // affect the result by construction.
  H.u8(static_cast<uint8_t>(C.S));
  H.u32(C.BaselineK);
  H.u32(C.Enc.RegN);
  H.u32(C.Enc.DiffN);
  H.u32(C.Enc.DiffW);
  H.u8(static_cast<uint8_t>(C.Enc.Order));
  H.u64(C.Enc.SpecialRegs.size());
  for (RegId R : C.Enc.SpecialRegs)
    H.u32(R);
  H.u8(C.RemapPostPass);
  H.u8(C.AdaptiveEnable);
  H.u64(C.ILPNodeBudget);
  H.u8(C.Coalesce.DiffAware);
  H.u32(C.Coalesce.MaxCandidatesPerStep);
  H.u32(C.Coalesce.MaxSteps);
  H.u32(C.Remap.ExhaustiveLimit);
  H.u32(C.Remap.NumStarts);
  H.u64(C.Remap.Seed);
  H.u64(C.Remap.PinnedRegs.size());
  for (RegId R : C.Remap.PinnedRegs)
    H.u32(R);
  H.u8(C.Remap.UseIncremental);
  H.u8(C.Remap.FullRecost);

  // Portfolio block. Jobs is excluded for the same reason as Remap.Jobs:
  // the race is bit-identical at any worker count. The arm list hashes in
  // *resolved* form so an explicit default-arm list and an empty one key
  // identically. (Appending the mode tag shifts every key vs. older
  // builds; stale disk entries simply never hit, which is always safe.)
  H.u8(static_cast<uint8_t>(C.Portfolio.Mode));
  if (C.Portfolio.Mode != PortfolioMode::Off) {
    const std::vector<PortfolioArm> Arms =
        resolvedPortfolioArms(C.Portfolio);
    H.u64(Arms.size());
    for (const PortfolioArm &A : Arms) {
      H.u8(static_cast<uint8_t>(A.S));
      H.u32(A.RemapStarts);
    }
    if (C.Portfolio.Mode == PortfolioMode::Choose) {
      // Choose-mode results depend on the table's predictions, so its
      // content fingerprint (not the pointer) joins the key; a missing
      // table degenerates to racing and hashes as 0.
      uint64_t ConfBits;
      static_assert(sizeof(ConfBits) == sizeof(C.Portfolio.MinConfidence));
      std::memcpy(&ConfBits, &C.Portfolio.MinConfidence, sizeof(ConfBits));
      H.u64(ConfBits);
      H.u64(C.Portfolio.Table ? C.Portfolio.Table->fingerprint() : 0);
    }
  }
  return H.get();
}

//===----------------------------------------------------------------------===//
// Result (de)serialization
//===----------------------------------------------------------------------===//

std::string ResultCache::serializeResult(const PipelineResult &R) {
  std::ostringstream OS;
  OS << "DRARES1";
  OS << "\nflags " << (R.DiffEncoded ? 1 : 0) << ' '
     << (R.AdaptiveFellBack ? 1 : 0);

  OS << "\nalloc " << (R.Alloc.Success ? 1 : 0) << ' ' << R.Alloc.Iterations
     << ' ' << R.Alloc.SpilledRanges << ' ' << R.Alloc.SpillLoads << ' '
     << R.Alloc.SpillStores << ' ' << R.Alloc.MovesRemoved << ' '
     << R.Alloc.MovesRemaining << ' ' << R.Alloc.SimplifySteps << ' '
     << R.Alloc.CoalesceBriggs << ' ' << R.Alloc.CoalesceGeorge << ' '
     << R.Alloc.CoalesceConstrained << ' ' << R.Alloc.CoalesceDeferred
     << ' ' << R.Alloc.FreezeSteps << ' ' << R.Alloc.SpillSelects;

  OS << "\nospill " << R.OSpill.SpilledRanges << ' ' << R.OSpill.Rounds
     << ' ' << (R.OSpill.ILPOptimal ? 1 : 0) << ' '
     << R.OSpill.ILPConstraints << ' ' << R.OSpill.ILPVariables;

  OS << "\ncoalesce " << R.Coalesce.MovesCoalesced << ' '
     << R.Coalesce.MovesRemaining << ' ' << R.Coalesce.ExtraSpilledRanges;
  putDouble(OS, R.Coalesce.FinalAdjCost);
  OS << ' ' << R.Coalesce.Steps << ' ' << (R.Coalesce.Success ? 1 : 0)
     << ' ' << R.Coalesce.OracleCalls << ' ' << R.Coalesce.ProbesAttempted
     << ' ' << R.Coalesce.ProbesUncolorable << ' '
     << R.Coalesce.SpillRestarts;

  OS << "\nremap";
  putDouble(OS, R.Remap.CostBefore);
  putDouble(OS, R.Remap.CostAfter);
  OS << ' ' << (R.Remap.Exhaustive ? 1 : 0) << ' ' << R.Remap.StartsRun
     << ' ' << R.Remap.SwapsEvaluated << ' ' << R.Remap.SwapsApplied << ' '
     << R.Remap.StartsCutOff << ' ' << R.Remap.DeltaArcsVisited << ' '
     << R.Remap.DeltaRecostSavings << ' ' << R.Remap.Perm.size();
  for (RegId P : R.Remap.Perm)
    OS << ' ' << P;

  OS << "\nrecolor";
  putDouble(OS, R.Recolor.CostBefore);
  putDouble(OS, R.Recolor.CostAfter);
  OS << ' ' << R.Recolor.Sweeps << ' ' << R.Recolor.Changes << ' '
     << R.Recolor.Clusters << ' ' << R.Recolor.CandidateEvals;

  OS << "\nenc " << R.Enc.SetLastJoin << ' ' << R.Enc.SetLastRange << ' '
     << R.Enc.NumInsts << ' ' << R.Enc.FieldBits << ' ' << R.Enc.NumFields;

  OS << "\ncounts " << R.NumInsts << ' ' << R.SpillInsts << ' '
     << R.SetLastRegs << ' ' << R.CodeBytes;

  OS << "\nfunc " << R.F.NumRegs << ' ' << R.F.MemWords << ' '
     << R.F.NumSpillSlots << ' ' << R.F.Blocks.size();
  for (const BasicBlock &B : R.F.Blocks) {
    OS << "\nblock " << B.Insts.size();
    for (const Instruction &I : B.Insts)
      OS << "\ni " << static_cast<unsigned>(I.Op) << ' ' << I.Dst << ' '
         << I.Src1 << ' ' << I.Src2 << ' ' << I.Imm << ' ' << I.Target0
         << ' ' << I.Target1 << ' ' << I.Aux;
  }
  OS << "\nend\n";
  return OS.str();
}

bool ResultCache::deserializeResult(const std::string &Payload,
                                    PipelineResult &Out) {
  TokenReader T(Payload);
  PipelineResult R;
  if (!T.expect("DRARES1"))
    return false;
  if (!T.expect("flags") || !T.boolean(R.DiffEncoded) ||
      !T.boolean(R.AdaptiveFellBack))
    return false;

  if (!T.expect("alloc") || !T.boolean(R.Alloc.Success) ||
      !T.uns(R.Alloc.Iterations) || !T.size(R.Alloc.SpilledRanges) ||
      !T.size(R.Alloc.SpillLoads) || !T.size(R.Alloc.SpillStores) ||
      !T.size(R.Alloc.MovesRemoved) || !T.size(R.Alloc.MovesRemaining) ||
      !T.size(R.Alloc.SimplifySteps) || !T.size(R.Alloc.CoalesceBriggs) ||
      !T.size(R.Alloc.CoalesceGeorge) ||
      !T.size(R.Alloc.CoalesceConstrained) ||
      !T.size(R.Alloc.CoalesceDeferred) || !T.size(R.Alloc.FreezeSteps) ||
      !T.size(R.Alloc.SpillSelects))
    return false;

  if (!T.expect("ospill") || !T.size(R.OSpill.SpilledRanges) ||
      !T.uns(R.OSpill.Rounds) || !T.boolean(R.OSpill.ILPOptimal) ||
      !T.size(R.OSpill.ILPConstraints) || !T.size(R.OSpill.ILPVariables))
    return false;

  if (!T.expect("coalesce") || !T.size(R.Coalesce.MovesCoalesced) ||
      !T.size(R.Coalesce.MovesRemaining) ||
      !T.size(R.Coalesce.ExtraSpilledRanges) ||
      !T.dbl(R.Coalesce.FinalAdjCost) || !T.uns(R.Coalesce.Steps) ||
      !T.boolean(R.Coalesce.Success) || !T.size(R.Coalesce.OracleCalls) ||
      !T.size(R.Coalesce.ProbesAttempted) ||
      !T.size(R.Coalesce.ProbesUncolorable) ||
      !T.uns(R.Coalesce.SpillRestarts))
    return false;

  size_t PermSize = 0;
  if (!T.expect("remap") || !T.dbl(R.Remap.CostBefore) ||
      !T.dbl(R.Remap.CostAfter) || !T.boolean(R.Remap.Exhaustive) ||
      !T.uns(R.Remap.StartsRun) || !T.size(R.Remap.SwapsEvaluated) ||
      !T.size(R.Remap.SwapsApplied) || !T.uns(R.Remap.StartsCutOff) ||
      !T.size(R.Remap.DeltaArcsVisited) ||
      !T.size(R.Remap.DeltaRecostSavings) || !T.size(PermSize))
    return false;
  // Growth is capped by parse success, not by the announced count, so a
  // corrupted count cannot drive a huge allocation.
  for (size_t I = 0; I != PermSize; ++I) {
    RegId P;
    if (!T.u32(P))
      return false;
    R.Remap.Perm.push_back(P);
  }

  if (!T.expect("recolor") || !T.dbl(R.Recolor.CostBefore) ||
      !T.dbl(R.Recolor.CostAfter) || !T.uns(R.Recolor.Sweeps) ||
      !T.size(R.Recolor.Changes) || !T.size(R.Recolor.Clusters) ||
      !T.size(R.Recolor.CandidateEvals))
    return false;

  if (!T.expect("enc") || !T.size(R.Enc.SetLastJoin) ||
      !T.size(R.Enc.SetLastRange) || !T.size(R.Enc.NumInsts) ||
      !T.size(R.Enc.FieldBits) || !T.size(R.Enc.NumFields))
    return false;

  if (!T.expect("counts") || !T.size(R.NumInsts) || !T.size(R.SpillInsts) ||
      !T.size(R.SetLastRegs) || !T.size(R.CodeBytes))
    return false;

  size_t NumBlocks = 0;
  if (!T.expect("func") || !T.u32(R.F.NumRegs) || !T.u32(R.F.MemWords) ||
      !T.u32(R.F.NumSpillSlots) || !T.size(NumBlocks))
    return false;
  for (size_t B = 0; B != NumBlocks; ++B) {
    size_t NumInsts = 0;
    if (!T.expect("block") || !T.size(NumInsts))
      return false;
    R.F.Blocks.emplace_back();
    BasicBlock &Blk = R.F.Blocks.back();
    for (size_t I = 0; I != NumInsts; ++I) {
      Instruction Ins;
      uint32_t Op = 0;
      if (!T.expect("i") || !T.u32(Op) ||
          Op > static_cast<uint32_t>(Opcode::SetLastReg) || !T.u32(Ins.Dst) ||
          !T.u32(Ins.Src1) || !T.u32(Ins.Src2) || !T.i64(Ins.Imm) ||
          !T.u32(Ins.Target0) || !T.u32(Ins.Target1) || !T.u32(Ins.Aux))
        return false;
      Ins.Op = static_cast<Opcode>(Op);
      if ((Ins.Target0 != NoBlock && Ins.Target0 >= NumBlocks) ||
          (Ins.Target1 != NoBlock && Ins.Target1 >= NumBlocks))
        return false;
      Blk.Insts.push_back(Ins);
    }
  }
  if (!T.expect("end"))
    return false;
  R.F.recomputeCFG();
  Out = std::move(R);
  return true;
}

//===----------------------------------------------------------------------===//
// Memory tier
//===----------------------------------------------------------------------===//

namespace {
/// Fixed per-entry bookkeeping estimate (list node + map slot).
constexpr size_t EntryOverhead = 64;
} // namespace

bool ResultCache::memLookup(uint64_t Key, std::string &Payload) {
  Shard &S = Shards[remix(Key) % Shards.size()];
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Index.find(Key);
  if (It == S.Index.end())
    return false;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Payload = It->second->Payload;
  return true;
}

void ResultCache::memInsert(uint64_t Key, const std::string &Payload) {
  if (Opts.MemBudgetBytes == 0)
    return;
  size_t Cost = Payload.size() + EntryOverhead;
  if (Cost > ShardBudget)
    return; // Larger than a whole shard: caching it would only thrash.
  Shard &S = Shards[remix(Key) % Shards.size()];
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return; // Same key implies the same payload; just refresh recency.
  }
  S.Lru.push_front(Entry{Key, Payload});
  S.Index[Key] = S.Lru.begin();
  S.Bytes += Cost;
  Bytes.fetch_add(Cost, std::memory_order_relaxed);
  while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
    const Entry &Victim = S.Lru.back();
    size_t VictimCost = Victim.Payload.size() + EntryOverhead;
    S.Index.erase(Victim.Key);
    S.Lru.pop_back();
    S.Bytes -= VictimCost;
    Bytes.fetch_sub(VictimCost, std::memory_order_relaxed);
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

std::string ResultCache::entryPath(const std::string &Dir, uint64_t Key) {
  return Dir + "/" + hex16(Key) + ".drac";
}

void ResultCache::quarantine(const std::string &Path) {
  std::error_code Ec;
  fs::path Src(Path);
  fs::path QDir = Src.parent_path() / "quarantine";
  fs::create_directories(QDir, Ec);
  fs::rename(Src, QDir / Src.filename(), Ec);
  if (Ec)
    fs::remove(Src, Ec); // Last resort: never re-read a bad entry.
}

bool ResultCache::diskLookup(uint64_t Key, std::string &Payload) {
  if (Opts.DiskDir.empty())
    return false;
  std::string Path = entryPath(Opts.DiskDir, Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false; // Absent: a plain miss, not a load error.
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Data = Buf.str();

  // Header: four '\n'-terminated lines (version, key, payload length,
  // payload checksum), then exactly the announced payload bytes. Any
  // deviation — truncation, corruption, a version bump — quarantines the
  // file and reads as a miss.
  auto Reject = [&] {
    quarantine(Path);
    LoadErrors.fetch_add(1, std::memory_order_relaxed);
    return false;
  };
  size_t Pos = 0;
  auto Line = [&](std::string &Out) {
    size_t Nl = Data.find('\n', Pos);
    if (Nl == std::string::npos)
      return false;
    Out = Data.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  };
  std::string Version, KeyLine, LenLine, SumLine;
  if (!Line(Version) || !Line(KeyLine) || !Line(LenLine) || !Line(SumLine))
    return Reject();
  if (Version != FormatVersion)
    return Reject();
  if (KeyLine != "key " + hex16(Key))
    return Reject();
  if (LenLine.rfind("len ", 0) != 0)
    return Reject();
  errno = 0;
  char *End = nullptr;
  unsigned long long Len = std::strtoull(LenLine.c_str() + 4, &End, 10);
  if (End != LenLine.c_str() + LenLine.size() || errno == ERANGE)
    return Reject();
  if (Data.size() - Pos != Len)
    return Reject();
  if (SumLine != "sum " + hex16(fnv1a(Data.data() + Pos, Len)))
    return Reject();
  Payload.assign(Data, Pos, Len);
  return true;
}

void ResultCache::diskStore(uint64_t Key, const std::string &Payload) {
  std::error_code Ec;
  fs::create_directories(Opts.DiskDir, Ec);
  std::string Path = entryPath(Opts.DiskDir, Key);
  std::string Tmp = Path + tmpSuffix();
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return; // Best-effort tier: an unwritable directory is not an error.
    Out << FormatVersion << '\n'
        << "key " << hex16(Key) << '\n'
        << "len " << Payload.size() << '\n'
        << "sum " << hex16(fnv1a(Payload.data(), Payload.size())) << '\n'
        << Payload;
    if (!Out.flush()) {
      Out.close();
      fs::remove(Tmp, Ec);
      return;
    }
  }
  fs::rename(Tmp, Path, Ec);
  if (Ec)
    fs::remove(Tmp, Ec);
}

//===----------------------------------------------------------------------===//
// PipelineCache interface
//===----------------------------------------------------------------------===//

bool ResultCache::lookup(const Function &Src, const PipelineConfig &C,
                         PipelineResult &Out) {
  const char *TierUnused = nullptr;
  return lookupTiered(Src, C, Out, &TierUnused);
}

bool ResultCache::lookupTiered(const Function &Src, const PipelineConfig &C,
                               PipelineResult &Out, const char **Tier) {
  uint64_t Key = cacheKey(Src, C);
  uint64_t Begin = (Metrics || C.Trace) ? Telemetry::steadyNowNs() : 0;

  // Request-scoped trace: one span per probe, named by its outcome, so a
  // traced request shows *which* tier answered (or that nothing did).
  auto TraceProbe = [&](const char *Outcome) {
    if (C.Trace)
      C.Trace->record(std::string("cache.") + Outcome, Begin,
                      Telemetry::steadyNowNs(), /*Depth=*/2);
  };

  std::string Payload;
  bool FromDisk = false;
  if (!memLookup(Key, Payload)) {
    if (!diskLookup(Key, Payload)) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      TraceProbe("miss");
      return false;
    }
    FromDisk = true;
    memInsert(Key, Payload); // Promote so the next hit is lock-cheap.
  }

  if (!deserializeResult(Payload, Out)) {
    // Unreachable for entries we serialized ourselves; a checksummed but
    // undecodable disk entry still must not crash or mis-serve.
    if (FromDisk)
      quarantine(entryPath(Opts.DiskDir, Key));
    LoadErrors.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    TraceProbe("quarantine");
    return false;
  }

  if (shouldVerify(Key)) {
    // Hijack the hit: report a miss so the caller recompiles; store()
    // compares the fresh payload against this one.
    {
      std::lock_guard<std::mutex> Lock(PendingM);
      PendingVerify[Key] = std::move(Payload);
    }
    VerifyRecompiles.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    TraceProbe("verify_miss");
    return false;
  }

  Out.F.Name = Src.Name; // Content addressing strips the name; re-attach.
  TraceProbe(FromDisk ? "hit_disk" : "hit_mem");
  *Tier = FromDisk ? "disk" : "mem";
  (FromDisk ? DiskHits : MemHits).fetch_add(1, std::memory_order_relaxed);
  if (Metrics)
    Metrics->observe(
        "cache.hit_us",
        static_cast<double>(Telemetry::steadyNowNs() - Begin) / 1000.0,
        {{"tier", FromDisk ? "disk" : "mem"}});
  return true;
}

void ResultCache::store(const Function &Src, const PipelineConfig &C,
                        const PipelineResult &R) {
  ScopedTraceSpan Span(C.Trace, "cache.store", /*Depth=*/2);
  uint64_t Key = cacheKey(Src, C);
  std::string Payload = serializeResult(R);

  std::string Expected;
  bool HadPending = false;
  {
    std::lock_guard<std::mutex> Lock(PendingM);
    auto It = PendingVerify.find(Key);
    if (It != PendingVerify.end()) {
      Expected = std::move(It->second);
      PendingVerify.erase(It);
      HadPending = true;
    }
  }
  if (HadPending && Expected != Payload)
    VerifyMismatches.fetch_add(1, std::memory_order_relaxed);

  Stores.fetch_add(1, std::memory_order_relaxed);
  memInsert(Key, Payload);
  if (!Opts.DiskDir.empty())
    diskStore(Key, Payload);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats S;
  S.MemHits = MemHits.load(std::memory_order_relaxed);
  S.DiskHits = DiskHits.load(std::memory_order_relaxed);
  S.Hits = S.MemHits + S.DiskHits;
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Stores = Stores.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.LoadErrors = LoadErrors.load(std::memory_order_relaxed);
  S.VerifyRecompiles = VerifyRecompiles.load(std::memory_order_relaxed);
  S.VerifyMismatches = VerifyMismatches.load(std::memory_order_relaxed);
  S.Bytes = Bytes.load(std::memory_order_relaxed);
  return S;
}

void ResultCache::flushMetrics(MetricsRegistry &M) const {
  ResultCacheStats S = stats();
  // Every series is created even at zero: regression gates
  // (dra-stats --fail-on=cache.verify_mismatches) treat an absent metric
  // as a usage error, and a clean run must read as "present and zero".
  // Absolute snapshots (setCount), not deltas: the server flushes a live
  // cache on a timer, and repeated flushes must read as the latest totals.
  M.setCount("cache.hits", static_cast<double>(S.Hits));
  M.setCount("cache.hits_mem", static_cast<double>(S.MemHits));
  M.setCount("cache.hits_disk", static_cast<double>(S.DiskHits));
  M.setCount("cache.misses", static_cast<double>(S.Misses));
  M.setCount("cache.stores", static_cast<double>(S.Stores));
  M.setCount("cache.evictions", static_cast<double>(S.Evictions));
  M.setCount("cache.load_errors", static_cast<double>(S.LoadErrors));
  M.setCount("cache.verify_recompiles",
             static_cast<double>(S.VerifyRecompiles));
  M.setCount("cache.verify_mismatches",
             static_cast<double>(S.VerifyMismatches));
  M.gauge("cache.bytes", static_cast<double>(S.Bytes));
}
