//===- driver/Json.h - Minimal JSON reader ----------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The minimal JSON reader behind loadMetricsJson, hoisted out of
/// Metrics.cpp once more than one consumer needed it: `dra-stats
/// --validate-trace` checks Chrome-trace documents and `dra-top` parses
/// dra-ctl-v1 stats/recent bodies. It reads everything this repo's own
/// writers emit (objects, arrays, strings with the writer's escape set,
/// numbers, booleans, null) and rejects everything else with an offset
/// diagnostic — it is a *reader for our formats*, not a general-purpose
/// JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_DRIVER_JSON_H
#define DRA_DRIVER_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace dra {

/// One parsed JSON value; a tagged tree. Object fields keep document
/// order (metrics documents are written deterministically, so readers can
/// rely on it, but field() lookup never does).
struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  /// First field named \p Name, or null. Linear — our documents have a
  /// handful of fields per object.
  const JsonValue *field(const std::string &Name) const {
    for (const auto &[Key, V] : Obj)
      if (Key == Name)
        return &V;
    return nullptr;
  }
};

/// Parses \p Text as one complete JSON document (trailing garbage is an
/// error). Returns false with an offset diagnostic in \p Err.
bool parseJson(const std::string &Text, JsonValue &Out, std::string *Err);

} // namespace dra

#endif // DRA_DRIVER_JSON_H
