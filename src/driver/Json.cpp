//===- driver/Json.cpp - Minimal JSON reader ------------------------------===//

#include "driver/Json.h"

#include <cctype>
#include <cstring>

using namespace dra;

namespace {

class JsonParser {
public:
  JsonParser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out, std::string &Err) {
    if (!parseValue(Out, Err))
      return false;
    skipWs();
    if (Pos != Text.size()) {
      Err = "trailing garbage at offset " + std::to_string(Pos);
      return false;
    }
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(std::string &Err, const std::string &What) {
    Err = What + " at offset " + std::to_string(Pos);
    return false;
  }

  bool expect(char C, std::string &Err) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(Err, std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &Out, std::string &Err) {
    skipWs();
    if (Pos >= Text.size())
      return fail(Err, "unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out, Err);
    if (C == '[')
      return parseArray(Out, Err);
    if (C == '"') {
      Out.K = JsonValue::String;
      return parseString(Out.Str, Err);
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out, Err);
    if (C == 'n')
      return parseKeyword(Out, Err);
    return parseNumber(Out, Err);
  }

  bool parseKeyword(JsonValue &Out, std::string &Err) {
    auto Match = [&](const char *KW) {
      return Text.compare(Pos, std::strlen(KW), KW) == 0;
    };
    if (Match("true")) {
      Out.K = JsonValue::Bool;
      Out.B = true;
      Pos += 4;
      return true;
    }
    if (Match("false")) {
      Out.K = JsonValue::Bool;
      Out.B = false;
      Pos += 5;
      return true;
    }
    if (Match("null")) {
      Out.K = JsonValue::Null;
      Pos += 4;
      return true;
    }
    return fail(Err, "unknown keyword");
  }

  bool parseNumber(JsonValue &Out, std::string &Err) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail(Err, "expected a value");
    try {
      Out.K = JsonValue::Number;
      Out.Num = std::stod(Text.substr(Start, Pos - Start));
    } catch (...) {
      Pos = Start;
      return fail(Err, "malformed number");
    }
    return true;
  }

  bool parseString(std::string &Out, std::string &Err) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail(Err, "expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail(Err, "unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail(Err, "truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail(Err, "bad \\u escape digit");
        }
        // The writer only escapes control characters; decode BMP code
        // points below 0x80 directly and pass the rest through as '?'.
        Out += Code < 0x80 ? static_cast<char>(Code) : '?';
        break;
      }
      default:
        return fail(Err, "unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail(Err, "unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseArray(JsonValue &Out, std::string &Err) {
    Out.K = JsonValue::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue V;
      if (!parseValue(V, Err))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return expect(']', Err);
    }
  }

  bool parseObject(JsonValue &Out, std::string &Err) {
    Out.K = JsonValue::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      std::string Key;
      if (!parseString(Key, Err))
        return false;
      if (!expect(':', Err))
        return false;
      JsonValue V;
      if (!parseValue(V, Err))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return expect('}', Err);
    }
  }
};

} // namespace

bool dra::parseJson(const std::string &Text, JsonValue &Out,
                    std::string *Err) {
  std::string Diag;
  if (JsonParser(Text).parse(Out, Diag))
    return true;
  if (Err)
    *Err = Diag;
  return false;
}
