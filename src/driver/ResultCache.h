//===- driver/ResultCache.h - Content-addressed result cache ----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed compilation cache behind core's PipelineCache
/// interface. The key is a 64-bit FNV-1a fingerprint of everything that
/// determines a pipeline run bit-for-bit:
///
///   (cache-format version, canonicalized function IR, scheme,
///    EncodingConfig, RemapOptions minus Jobs, coalesce/ILP/adaptive knobs)
///
/// The function *name* is excluded (content addressing: two identical
/// bodies share one entry) and so is `RemapOptions::Jobs` — the parallel
/// remap search is bit-identical at any worker count (PR 4 invariant), so
/// worker count must not fragment the key space. Metrics/cache pointers
/// never enter the key by construction.
///
/// Two tiers:
///
///  * **Memory** — N-way sharded LRU of serialized results. One mutex per
///    shard, byte-budgeted (the budget is split evenly across shards),
///    designed for concurrent BatchCompiler workers: a lookup touches
///    exactly one shard lock.
///  * **Disk** (optional, `DiskDir`) — one `dra-cache-v1` file per entry,
///    named by the key, with a header carrying the key, the payload length
///    and an FNV checksum. Corrupt, truncated or version-mismatched
///    entries are never errors: they count as misses, bump
///    `cache.load_errors` and are quarantined into `DiskDir/quarantine/`
///    so a recurring bad entry cannot be re-read forever.
///
/// `VerifyFraction` turns a deterministic sample of hits into forced
/// recompiles whose serialized result is compared byte-for-byte against
/// the cached payload ("cached == fresh" is a hard invariant, not a
/// hope); divergence bumps `cache.verify_mismatches`.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_DRIVER_RESULTCACHE_H
#define DRA_DRIVER_RESULTCACHE_H

#include "core/Pipeline.h"
#include "driver/Metrics.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dra {

struct ResultCacheOptions {
  /// Memory-tier byte budget across all shards (payload bytes plus a
  /// fixed per-entry overhead estimate). 0 disables the memory tier.
  size_t MemBudgetBytes = 64u << 20;
  /// Memory-tier shard count (clamped to >= 1). More shards = less lock
  /// contention between BatchCompiler workers.
  unsigned Shards = 16;
  /// Directory of the persistent tier; empty = memory only. Created on
  /// demand (including the quarantine subdirectory).
  std::string DiskDir;
  /// Fraction of hits (deterministically sampled by key) recompiled and
  /// compared byte-for-byte against the cached payload. 0 = never,
  /// 1 = every hit.
  double VerifyFraction = 0;
};

/// Monotonic event counters, snapshot via ResultCache::stats().
struct ResultCacheStats {
  uint64_t Hits = 0;       ///< MemHits + DiskHits.
  uint64_t MemHits = 0;
  uint64_t DiskHits = 0;   ///< Served from disk (and promoted to memory).
  uint64_t Misses = 0;     ///< Includes verify-forced recompiles.
  uint64_t Stores = 0;
  uint64_t Evictions = 0;  ///< Memory-tier LRU evictions.
  uint64_t LoadErrors = 0; ///< Disk entries rejected and quarantined.
  uint64_t VerifyRecompiles = 0;
  uint64_t VerifyMismatches = 0;
  uint64_t Bytes = 0;      ///< Current memory-tier footprint.
};

class ResultCache : public PipelineCache {
public:
  /// On-disk entry header magic; bumping it invalidates every store.
  static constexpr const char *FormatVersion = "dra-cache-v1";

  explicit ResultCache(const ResultCacheOptions &O = {});

  bool lookup(const Function &Src, const PipelineConfig &C,
              PipelineResult &Out) override;
  void store(const Function &Src, const PipelineConfig &C,
             const PipelineResult &R) override;

  /// As lookup(), additionally reporting which tier served the hit:
  /// \p Tier is set to "mem" or "disk" on a hit and left untouched on a
  /// miss. The compile server uses this to label its per-request latency
  /// histograms (server.latency_us{tier=hit_mem|hit_disk|miss}).
  bool lookupTiered(const Function &Src, const PipelineConfig &C,
                    PipelineResult &Out, const char **Tier);

  ResultCacheStats stats() const;

  /// When non-null, every hit records a `cache.hit_us` histogram sample
  /// labeled {tier: mem|disk} at event time.
  void setMetrics(MetricsRegistry *M) { Metrics = M; }

  /// Replaces the verify sampling fraction (clamped to [0, 1]).
  void setVerifyFraction(double F);

  /// Flushes the counters above into \p M as cache.* counter series plus
  /// the cache.bytes gauge. Every series is emitted even at zero so
  /// `dra-stats --fail-on=cache.verify_mismatches` always finds the
  /// metric. Snapshots absolute totals (MetricsRegistry::setCount), so
  /// calling it repeatedly — the server's periodic live export — never
  /// double-counts.
  void flushMetrics(MetricsRegistry &M) const;

  /// The content-addressed fingerprint (see file comment for what is in
  /// and out of the key).
  static uint64_t cacheKey(const Function &Src, const PipelineConfig &C);

  /// Serializes everything lookup() must reproduce: every stage-report
  /// counter, the final counts, and the full machine-code function —
  /// excluding the function name (re-attached from the lookup source) and
  /// the wall-clock Spans. The encoding is a whitespace-separated token
  /// stream; doubles travel as hex bit patterns so round trips and the
  /// verify byte-comparison are exact.
  static std::string serializeResult(const PipelineResult &R);

  /// Inverse of serializeResult. False (and \p Out unspecified) on any
  /// malformed input; never throws, never crashes on garbage.
  static bool deserializeResult(const std::string &Payload,
                                PipelineResult &Out);

  /// The disk-tier path of \p Key under \p Dir (exposed for tests that
  /// corrupt entries in place).
  static std::string entryPath(const std::string &Dir, uint64_t Key);

private:
  struct Entry {
    uint64_t Key = 0;
    std::string Payload;
  };
  struct Shard {
    std::mutex M;
    /// LRU order: front = most recent. The map points into the list.
    std::list<Entry> Lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
    size_t Bytes = 0;
  };

  bool memLookup(uint64_t Key, std::string &Payload);
  void memInsert(uint64_t Key, const std::string &Payload);
  bool diskLookup(uint64_t Key, std::string &Payload);
  void diskStore(uint64_t Key, const std::string &Payload);
  void quarantine(const std::string &Path);
  bool shouldVerify(uint64_t Key) const;

  ResultCacheOptions Opts;
  size_t ShardBudget = 0;
  std::vector<Shard> Shards;
  MetricsRegistry *Metrics = nullptr;
  std::atomic<double> VerifyFrac{0};

  /// Payloads of hits hijacked for verification, keyed by fingerprint:
  /// lookup() stashes the payload and reports a miss; the recompile's
  /// store() compares against it.
  std::mutex PendingM;
  std::unordered_map<uint64_t, std::string> PendingVerify;

  mutable std::atomic<uint64_t> MemHits{0}, DiskHits{0}, Misses{0},
      Stores{0}, Evictions{0}, LoadErrors{0}, VerifyRecompiles{0},
      VerifyMismatches{0}, Bytes{0};
};

} // namespace dra

#endif // DRA_DRIVER_RESULTCACHE_H
