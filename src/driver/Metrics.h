//===- driver/Metrics.h - Labeled metrics registry --------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocator-deep observability: a thread-safe registry of labeled
/// counters, gauges, and fixed-bucket histograms, plus the shared
/// `StageSpan` type the pipeline and its inner algorithms use to report
/// nested timing spans.
///
/// This header sits *below* every other subsystem (it depends only on
/// src/adt), so the hot algorithms — iterated coalescing, the recoloring
/// descent, differential coalesce's oracle loop, ILP spilling, modulo
/// scheduling — can emit spans and counters without a layering cycle:
/// `dra_regalloc`, `dra_core`, `dra_swp` and `dra_driver` all link (or
/// header-include) `dra_metrics`.
///
/// Design rules:
///
///  * **Zero cost when disabled.** Instrumented code paths take a nullable
///    `MetricsRegistry *` / span-sink pointer; a null pointer means no
///    clock reads, no allocation, no locking. Hot-loop event counts are
///    accumulated in plain integers inside the algorithms' result structs
///    and flushed to the registry once per run.
///  * **Determinism.** Snapshots and the JSON export are ordered by
///    (metric name, canonical label key); totals are independent of the
///    thread interleaving that produced them.
///  * **Stable schema.** `writeJson` emits schema `dra-metrics-v1`
///    (documented in DESIGN.md, "Observability"); `loadMetricsJson` reads
///    it back for the `dra-stats` diff/regression tool.
///
/// Metric naming convention: `<subsystem>.<event>` in lower snake case
/// (`alloc.coalesce_briggs`, `ospill.ilp_constraints`); labels identify
/// the series (`scheme`, `function`, `stage`, `program`, `regn`).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_DRIVER_METRICS_H
#define DRA_DRIVER_METRICS_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <istream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dra {

/// Absolute steady-clock nanoseconds; the clock every StageSpan uses.
uint64_t steadyClockNs();

/// One timed (sub-)phase of a pipeline run. Timestamps are absolute
/// steady-clock nanoseconds (the driver's Telemetry layer rebases them
/// onto its own timeline); Stage points at a static string ("alloc",
/// "alloc.round", ...).
struct StageSpan {
  const char *Stage = "";
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
  /// 0 = top-level pipeline stage; >0 = nested sub-phase (one IRC round
  /// inside "alloc", one ILP refinement round inside "ospill", ...).
  /// Chrome's trace viewer nests sub-spans under the enclosing stage by
  /// time containment on the same thread track.
  unsigned Depth = 0;
};

/// Appends one StageSpan covering its own lifetime to an optional sink.
/// A null sink is the disabled fast path: no clock reads at all.
class ScopedSpan {
public:
  ScopedSpan(std::vector<StageSpan> *Sink, const char *Stage,
             unsigned Depth = 1)
      : Sink(Sink), Stage(Stage), Depth(Depth),
        BeginNs(Sink ? steadyClockNs() : 0) {}
  ~ScopedSpan() {
    if (Sink)
      Sink->push_back({Stage, BeginNs, steadyClockNs(), Depth});
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  std::vector<StageSpan> *Sink;
  const char *Stage;
  unsigned Depth;
  uint64_t BeginNs;
};

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Writes \p V to \p OS losslessly: exactly-integral values (within the
/// 2^53 double-exact range) as plain integers, everything else with
/// round-trip (max_digits10) precision. Non-finite values, which JSON
/// cannot represent, are clamped to 0. Shared by the metrics writer and
/// Telemetry's JSON exporters so large counters never round-trip lossily.
void writeJsonNumber(std::ostream &OS, double V);

/// A set of (key, value) pairs identifying one time series. Keys are kept
/// in canonical (sorted, unique — last writer wins) order.
class MetricLabels {
public:
  MetricLabels() = default;
  MetricLabels(
      std::initializer_list<std::pair<std::string, std::string>> Init) {
    for (const auto &KV : Init)
      set(KV.first, KV.second);
  }

  void set(std::string Key, std::string Value);

  const std::vector<std::pair<std::string, std::string>> &entries() const {
    return Entries;
  }
  bool empty() const { return Entries.empty(); }

  /// Canonical `k1=v1,k2=v2` form — the registry's series key and the
  /// flat-key suffix `name{k1=v1,...}` used by dra-stats.
  std::string key() const;

private:
  std::vector<std::pair<std::string, std::string>> Entries; // sorted by key
};

/// Thread-safe registry of labeled counters, gauges and histograms. All
/// mutation is mutex-protected; snapshot/export accessors copy under the
/// same lock and order deterministically.
class MetricsRegistry {
public:
  static constexpr const char *SchemaVersion = "dra-metrics-v1";

  /// Adds \p Delta to counter (\p Name, \p Labels), creating it at 0.
  void count(std::string_view Name, double Delta,
             const MetricLabels &Labels = {});

  /// Sets counter (\p Name, \p Labels) to the absolute value \p Value
  /// (last writer wins, like a gauge, but the series stays a counter in
  /// the export). This is the non-destructive flush path for subsystems
  /// that keep their own monotonic totals (ResultCacheStats, the compile
  /// server's request counters): they can snapshot into a live registry
  /// repeatedly — e.g. the server's periodic metrics export — without
  /// double-counting and without resetting their internal totals mid-run.
  void setCount(std::string_view Name, double Value,
                const MetricLabels &Labels = {});

  /// Sets gauge (\p Name, \p Labels) to \p Value (last writer wins).
  void gauge(std::string_view Name, double Value,
             const MetricLabels &Labels = {});

  /// Records one histogram sample. The bucket layout is fixed per metric
  /// name: defineBuckets() bounds if installed, the default exponential
  /// microsecond-friendly bounds otherwise.
  void observe(std::string_view Name, double Value,
               const MetricLabels &Labels = {});

  /// Installs explicit ascending bucket upper bounds for histogram
  /// \p Name (all label combinations). Must precede the first observe of
  /// that name; later calls are ignored once samples exist.
  void defineBuckets(std::string_view Name, std::vector<double> UpperBounds);

  /// The default histogram bucket upper bounds (ascending; an implicit
  /// +inf overflow bucket always follows).
  static const std::vector<double> &defaultBuckets();

  struct CounterSample {
    std::string Name;
    MetricLabels Labels;
    double Value = 0;
  };
  struct HistogramSample {
    std::string Name;
    MetricLabels Labels;
    size_t Count = 0;
    double Sum = 0, Min = 0, Max = 0;
    /// Percentiles over the raw samples (adt/Statistics interpolation).
    double P50 = 0, P90 = 0, P95 = 0, P99 = 0;
    std::vector<double> UpperBounds; // ascending
    /// BucketCounts[i] = samples in (UpperBounds[i-1], UpperBounds[i]];
    /// the final element is the +inf overflow bucket, so the size is
    /// UpperBounds.size() + 1.
    std::vector<size_t> BucketCounts;
  };

  /// Deterministic snapshots, sorted by (name, label key).
  std::vector<CounterSample> counters() const;
  std::vector<CounterSample> gauges() const;
  std::vector<HistogramSample> histograms() const;

  /// True when nothing has been recorded.
  bool empty() const;

  /// Writes the versioned JSON document (schema dra-metrics-v1).
  void writeJson(std::ostream &OS) const;

  /// writeJson to \p Path; false (with \p Err) when the file cannot be
  /// created.
  bool writeJsonFile(const std::string &Path, std::string *Err = nullptr) const;

private:
  struct Series {
    MetricLabels Labels;
    double Value = 0;                // counters/gauges
    std::vector<double> Samples;     // histograms (raw, insertion order)
  };
  struct Metric {
    std::map<std::string, Series> ByLabel; // canonical label key -> series
    std::vector<double> UpperBounds;       // histograms only
  };

  mutable std::mutex Mtx;
  std::map<std::string, Metric> Counters;
  std::map<std::string, Metric> Gauges;
  std::map<std::string, Metric> Histograms;

  static Series &seriesFor(Metric &M, const MetricLabels &Labels);
};

/// Flat, comparison-friendly view of one metrics JSON file, keyed by
/// `name{k=v,...}` (the canonical label key). Histograms are reduced to
/// their summary statistics.
struct MetricsFileData {
  std::string Schema;
  std::map<std::string, double> Counters;
  std::map<std::string, double> Gauges;
  struct HistSummary {
    double Count = 0, Sum = 0, Min = 0, Max = 0;
    /// P95 is 0 for files written before the field existed (the loader
    /// treats it as optional so older baselines keep loading).
    double P50 = 0, P90 = 0, P95 = 0, P99 = 0;
  };
  std::map<std::string, HistSummary> Histograms;
};

/// Parses a dra-metrics-v1 document. Returns false (with a diagnostic in
/// \p Err, if non-null) on malformed JSON, a missing/unknown schema tag,
/// or structurally invalid samples.
bool loadMetricsJson(std::istream &In, MetricsFileData &Out,
                     std::string *Err = nullptr);

} // namespace dra

#endif // DRA_DRIVER_METRICS_H
