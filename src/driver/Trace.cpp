//===- driver/Trace.cpp - Request-scoped tracing --------------------------===//

#include "driver/Trace.h"

#include <cstdio>

#include <sys/syscall.h>
#include <unistd.h>

using namespace dra;

uint64_t dra::osProcessId() { return uint64_t(::getpid()); }

uint64_t dra::osThreadId() {
#ifdef SYS_gettid
  // Cached per thread: gettid is a syscall, and span recording sits on
  // the traced request's hot path.
  thread_local uint64_t Cached = uint64_t(::syscall(SYS_gettid));
  return Cached;
#else
  thread_local uint64_t Cached =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return Cached;
#endif
}

std::string dra::traceIdToHex(uint64_t Id) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Id);
  return std::string(Buf, 16);
}

bool dra::traceIdFromHex(const std::string &S, uint64_t &Out) {
  if (S.size() != 16)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = unsigned(C - 'a') + 10;
    else
      return false; // strict: lowercase only, no 0x, no spaces
    V = (V << 4) | Digit;
  }
  Out = V;
  return true;
}

uint64_t dra::deriveTraceId(uint64_t Seed, uint64_t Counter) {
  // splitmix64 finalizer over the combined state; remap 0 so "untraced"
  // (id 0) is never a valid id.
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (Counter + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z = Z ^ (Z >> 31);
  return Z ? Z : 1;
}

void TraceContext::recordOn(uint64_t Tid, std::string Name, uint64_t BeginNs,
                            uint64_t EndNs, unsigned Depth) {
  std::lock_guard<std::mutex> Lock(Mtx);
  if (Records.size() >= MaxSpans) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Records.push_back({std::move(Name), BeginNs, EndNs, Depth, Tid});
}

void TraceContext::nameThread(uint64_t Tid, std::string Name) {
  std::lock_guard<std::mutex> Lock(Mtx);
  for (auto &KV : Names)
    if (KV.first == Tid) {
      KV.second = std::move(Name);
      return;
    }
  Names.emplace_back(Tid, std::move(Name));
}

std::vector<TraceRecord> TraceContext::records() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  return Records;
}

std::vector<std::pair<uint64_t, std::string>>
TraceContext::threadNames() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  return Names;
}

size_t TraceContext::spanCount() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  return Records.size();
}

//===----------------------------------------------------------------------===//
// ChromeTraceWriter
//===----------------------------------------------------------------------===//

void ChromeTraceWriter::beginEvent() {
  if (Events == 0)
    OS << "{\"traceEvents\": [\n";
  else
    OS << ",\n";
  ++Events;
}

void ChromeTraceWriter::completeEvent(
    uint64_t Pid, uint64_t Tid, const std::string &Name, const char *Category,
    double TsUs, double DurUs,
    const std::vector<std::pair<std::string, std::string>> &Args) {
  beginEvent();
  OS << "  {\"name\": \"" << jsonEscape(Name) << "\", \"cat\": \"" << Category
     << "\", \"ph\": \"X\", \"pid\": " << Pid << ", \"tid\": " << Tid
     << ", \"ts\": ";
  writeJsonNumber(OS, TsUs);
  OS << ", \"dur\": ";
  writeJsonNumber(OS, DurUs);
  if (!Args.empty()) {
    OS << ", \"args\": {";
    for (size_t I = 0; I < Args.size(); ++I)
      OS << (I ? ", " : "") << "\"" << jsonEscape(Args[I].first) << "\": \""
         << jsonEscape(Args[I].second) << "\"";
    OS << "}";
  }
  OS << "}";
}

void ChromeTraceWriter::processName(uint64_t Pid, const std::string &Name) {
  beginEvent();
  OS << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << Pid
     << ", \"tid\": 0, \"args\": {\"name\": \"" << jsonEscape(Name) << "\"}}";
}

void ChromeTraceWriter::threadName(uint64_t Pid, uint64_t Tid,
                                   const std::string &Name) {
  beginEvent();
  OS << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << Pid
     << ", \"tid\": " << Tid << ", \"args\": {\"name\": \""
     << jsonEscape(Name) << "\"}}";
}

void ChromeTraceWriter::finish() {
  if (Finished)
    return;
  Finished = true;
  if (Events == 0)
    OS << "{\"traceEvents\": [\n";
  OS << "\n]}\n";
}
