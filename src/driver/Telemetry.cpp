//===- driver/Telemetry.cpp - Per-stage timing & counters -----------------===//

#include "driver/Telemetry.h"

#include "driver/Trace.h"

#include <algorithm>

using namespace dra;

uint64_t Telemetry::steadyNowNs() { return steadyClockNs(); }

Telemetry::Telemetry() : OriginNs(steadyNowNs()) {}

uint64_t Telemetry::nowUs() const { return toRelativeUs(steadyNowNs()); }

uint64_t Telemetry::toRelativeUs(uint64_t SteadyNs) const {
  return SteadyNs <= OriginNs ? 0 : (SteadyNs - OriginNs) / 1000;
}

void Telemetry::recordSpan(TraceSpan E) {
  if (!E.OsTid)
    E.OsTid = osThreadId(); // recordSpan runs on the recording thread
  std::lock_guard<std::mutex> Lock(Mtx);
  Events.push_back(std::move(E));
}

void Telemetry::setProcessName(std::string Name) {
  std::lock_guard<std::mutex> Lock(Mtx);
  ProcessName = std::move(Name);
}

void Telemetry::addCounter(const std::string &Name, double Delta) {
  std::lock_guard<std::mutex> Lock(Mtx);
  Counters[Name] += Delta;
}

std::vector<TraceSpan> Telemetry::events() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  return Events;
}

std::map<std::string, double> Telemetry::counters() const {
  std::lock_guard<std::mutex> Lock(Mtx);
  return Counters;
}

std::map<std::string, Telemetry::StageStats>
Telemetry::stageStats(const char *Category) const {
  std::map<std::string, StageStats> Stats;
  for (const TraceSpan &E : events()) {
    if (Category && (!E.Category || std::string(Category) != E.Category))
      continue;
    StageStats &S = Stats[E.Name];
    if (S.Count == 0) {
      S.MinUs = E.DurUs;
      S.MaxUs = E.DurUs;
    } else {
      S.MinUs = std::min(S.MinUs, E.DurUs);
      S.MaxUs = std::max(S.MaxUs, E.DurUs);
    }
    ++S.Count;
    S.TotalUs += E.DurUs;
  }
  return Stats;
}

void Telemetry::writeJson(std::ostream &OS) const {
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : counters()) {
    // writeJsonNumber, not operator<<: default stream precision (6
    // significant digits) silently rounds counters past ~1e6.
    OS << (First ? "" : ",") << "\n    \"" << jsonEscape(Name) << "\": ";
    writeJsonNumber(OS, Value);
    First = false;
  }
  OS << "\n  },\n  \"stages\": {";
  First = true;
  for (const auto &[Name, S] : stageStats()) {
    double Mean = S.Count == 0
                      ? 0.0
                      : static_cast<double>(S.TotalUs) /
                            static_cast<double>(S.Count);
    OS << (First ? "" : ",") << "\n    \"" << jsonEscape(Name)
       << "\": {\"count\": " << S.Count << ", \"total_us\": " << S.TotalUs
       << ", \"mean_us\": ";
    writeJsonNumber(OS, Mean);
    OS << ", \"min_us\": " << S.MinUs << ", \"max_us\": " << S.MaxUs << "}";
    First = false;
  }
  OS << "\n  }\n}\n";
}

void Telemetry::writeChromeTrace(std::ostream &OS) const {
  const uint64_t Pid = osProcessId();
  std::vector<TraceSpan> Evs = events();
  std::string PName;
  {
    std::lock_guard<std::mutex> Lock(Mtx);
    PName = ProcessName;
  }
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  // Metadata first: the real process, and one named row per OS thread
  // (displayed as its pool worker id). Real pids/tids keep merged
  // multi-process traces from collapsing onto one synthetic row.
  OS << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << Pid
     << ", \"tid\": 0, \"args\": {\"name\": \"" << jsonEscape(PName)
     << "\"}}";
  std::map<uint64_t, unsigned> TidWorkers;
  for (const TraceSpan &E : Evs)
    TidWorkers.emplace(E.OsTid ? E.OsTid : E.Tid, E.Tid);
  for (const auto &[Tid, Worker] : TidWorkers)
    OS << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << Pid
       << ", \"tid\": " << Tid << ", \"args\": {\"name\": \"worker-"
       << Worker << "\"}}";
  for (const TraceSpan &E : Evs) {
    OS << ",\n";
    OS << "  {\"name\": \"" << jsonEscape(E.Name) << "\", \"cat\": \""
       << jsonEscape(E.Category ? E.Category : "span")
       << "\", \"ph\": \"X\", \"pid\": " << Pid
       << ", \"tid\": " << (E.OsTid ? E.OsTid : E.Tid)
       << ", \"ts\": " << E.BeginUs << ", \"dur\": " << E.DurUs;
    if (!E.Args.empty()) {
      OS << ", \"args\": {";
      bool FirstArg = true;
      for (const auto &[Key, Value] : E.Args) {
        OS << (FirstArg ? "" : ", ") << "\"" << jsonEscape(Key) << "\": ";
        writeJsonNumber(OS, Value);
        FirstArg = false;
      }
      OS << "}";
    }
    OS << "}";
  }
  OS << "\n]}\n";
}
