//===- driver/ThreadPool.cpp - Fixed-size worker pool ---------------------===//

#include "driver/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

using namespace dra;

namespace {
thread_local unsigned TlsWorkerId = 0;

// Stack of pools whose parallelFor bodies are executing on this thread,
// linked through stack frames. A nested parallelFor on the *same* pool
// must run inline (posting a second loop over the active one would
// deadlock), and the caller thread is worker 0 so its id alone cannot
// tell "inside my own loop" from "outside any loop". A nested call on a
// *different* pool is safe and schedules normally — that is how the remap
// search pool parallelizes from inside a batch-compilation task.
struct DrainFrame {
  const void *Pool;
  DrainFrame *Prev;
};
thread_local DrainFrame *TlsDrainTop = nullptr;

bool drainingPool(const void *Pool) {
  for (DrainFrame *F = TlsDrainTop; F; F = F->Prev)
    if (F->Pool == Pool)
      return true;
  return false;
}

struct InTaskScope {
  DrainFrame Frame;
  explicit InTaskScope(const void *Pool) {
    Frame.Pool = Pool;
    Frame.Prev = TlsDrainTop;
    TlsDrainTop = &Frame;
  }
  ~InTaskScope() { TlsDrainTop = Frame.Prev; }
};
} // namespace

/// One parallelFor invocation: an atomic iteration cursor plus completion
/// bookkeeping. Lives on the caller's stack for the duration of the loop.
struct ThreadPool::Loop {
  size_t N = 0;
  const std::function<void(size_t)> *Body = nullptr;
  const ThreadPool *Owner = nullptr;
  std::atomic<size_t> Next{0};
  unsigned Finished = 0; // participants done draining; pool mutex
  std::mutex ErrMtx;
  std::exception_ptr FirstError;

  /// Claims and runs iterations until the cursor runs out.
  void drain() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        InTaskScope Scope(Owner);
        (*Body)(I);
      } catch (...) {
        // Record the first failure; keep draining so the loop terminates
        // with every iteration accounted for.
        std::lock_guard<std::mutex> Lock(ErrMtx);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
  }
};

unsigned ThreadPool::defaultWorkerCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned ThreadPool::currentWorker() { return TlsWorkerId; }

ThreadPool::ThreadPool(unsigned Workers) {
  NumWorkers = Workers == 0 ? defaultWorkerCount() : Workers;
  // Worker 0 is the calling thread; only the extra workers get threads.
  for (unsigned W = 1; W < NumWorkers; ++W)
    Threads.emplace_back([this, W] { workerMain(W); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mtx);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::workerMain(unsigned WorkerId) {
  TlsWorkerId = WorkerId;
  uint64_t SeenSeq = 0;
  std::unique_lock<std::mutex> Lock(Mtx);
  for (;;) {
    // Each posted loop bumps LoopSeq; a worker joins every loop exactly
    // once (SeenSeq tracks the last one it helped drain). Detached tasks
    // fill the gaps between loops; on shutdown the queue is drained — not
    // dropped — before the worker exits.
    WorkReady.wait(Lock, [&] {
      return ShuttingDown || !Tasks.empty() ||
             (Current != nullptr && LoopSeq != SeenSeq);
    });
    if (Current != nullptr && LoopSeq != SeenSeq) {
      SeenSeq = LoopSeq;
      Loop *L = Current;
      Lock.unlock();
      L->drain();
      Lock.lock();
      ++L->Finished;
      WorkDone.notify_all();
      continue;
    }
    if (!Tasks.empty()) {
      std::function<void()> Task = std::move(Tasks.front());
      Tasks.pop_front();
      Lock.unlock();
      try {
        InTaskScope Scope(this);
        Task();
      } catch (...) {
        // Detached tasks have no caller to rethrow to; they are expected
        // to handle their own errors (documented in the header).
      }
      Lock.lock();
      continue;
    }
    if (ShuttingDown)
      return;
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  // One-worker pools have no worker threads at all; run inline for the
  // same serial semantics parallelFor has there.
  if (NumWorkers == 1) {
    try {
      InTaskScope Scope(this);
      Task();
    } catch (...) {
    }
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mtx);
    Tasks.push_back(std::move(Task));
  }
  WorkReady.notify_all();
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;

  Loop L;
  L.N = N;
  L.Body = &Body;
  L.Owner = this;

  // Inline pools (one worker) and reentrant calls from inside one of this
  // pool's own task bodies both run the whole loop on the current thread:
  // serial semantics, no locks. The drain stack (not the worker id) is
  // what detects reentrancy — the caller thread is worker 0, and a nested
  // call from its own drain must not post a second loop over the active
  // one. Loops of *other* pools are not reentrancy: they schedule
  // normally, so nested pools (remap search inside a batch task) keep
  // their parallelism.
  if (NumWorkers == 1 || drainingPool(this)) {
    L.drain();
    if (L.FirstError)
      std::rethrow_exception(L.FirstError);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mtx);
    assert(Current == nullptr && "concurrent parallelFor on one pool");
    Current = &L;
    ++LoopSeq;
  }
  WorkReady.notify_all();

  // The caller is worker 0 and helps drain its own loop.
  L.drain();

  std::unique_lock<std::mutex> Lock(Mtx);
  ++L.Finished;
  WorkDone.notify_all();
  WorkDone.wait(Lock, [&] { return L.Finished == NumWorkers; });
  Current = nullptr;

  if (L.FirstError)
    std::rethrow_exception(L.FirstError);
}
