//===- driver/BatchCompiler.cpp - Parallel pipeline driver ----------------===//

#include "driver/BatchCompiler.h"

#include "adt/Rng.h"

#include <cassert>

using namespace dra;

BatchCompiler::BatchCompiler(const BatchOptions &O) : Opts(O), Pool(O.Jobs) {}

namespace {

/// Records the telemetry of one finished task: the enclosing "task" span,
/// one "stage" span per pipeline stage (Depth-0), one "substage" span per
/// nested algorithm round (Depth > 0), and the batch counters. Substages
/// keep their own category so Telemetry::stageStats("stage") still
/// aggregates top-level stages only.
void recordTask(Telemetry &T, const Function &Src, size_t Index,
                const PipelineResult &R, uint64_t TaskBeginNs,
                uint64_t TaskEndNs) {
  unsigned Tid = ThreadPool::currentWorker();

  TraceSpan Task;
  Task.Name = Src.Name.empty() ? "fn" + std::to_string(Index) : Src.Name;
  Task.Category = "task";
  Task.BeginUs = T.toRelativeUs(TaskBeginNs);
  Task.DurUs = T.toRelativeUs(TaskEndNs) - Task.BeginUs;
  Task.Tid = Tid;
  Task.Args = {{"index", static_cast<double>(Index)},
               {"insts", static_cast<double>(R.NumInsts)},
               {"spill_insts", static_cast<double>(R.SpillInsts)},
               {"set_last_regs", static_cast<double>(R.SetLastRegs)},
               {"code_bytes", static_cast<double>(R.CodeBytes)}};
  T.recordSpan(std::move(Task));

  for (const StageSpan &S : R.Spans) {
    TraceSpan E;
    E.Name = S.Stage;
    E.Category = S.Depth == 0 ? "stage" : "substage";
    E.BeginUs = T.toRelativeUs(S.BeginNs);
    E.DurUs = T.toRelativeUs(S.EndNs) - E.BeginUs;
    E.Tid = Tid;
    T.recordSpan(std::move(E));
  }

  T.addCounter("functions", 1);
  T.addCounter("insts", static_cast<double>(R.NumInsts));
  T.addCounter("spill_insts", static_cast<double>(R.SpillInsts));
  T.addCounter("set_last_regs", static_cast<double>(R.SetLastRegs));
  T.addCounter("code_bytes", static_cast<double>(R.CodeBytes));
  T.addCounter("alloc_iterations", static_cast<double>(R.Alloc.Iterations));
  T.addCounter("ospill_rounds", static_cast<double>(R.OSpill.Rounds));
  T.addCounter("coalesce_steps", static_cast<double>(R.Coalesce.Steps));
  T.addCounter("encode_fields", static_cast<double>(R.Enc.NumFields));
  if (R.AdaptiveFellBack)
    T.addCounter("adaptive_fallbacks", 1);
}

} // namespace

std::vector<PipelineResult>
BatchCompiler::run(const std::vector<Function> &Functions,
                   const PipelineConfig &Config) {
  std::vector<PipelineConfig> Configs(Functions.size(), Config);
  return run(Functions, Configs);
}

std::vector<PipelineResult>
BatchCompiler::run(const std::vector<Function> &Functions,
                   const std::vector<PipelineConfig> &Configs) {
  assert(Functions.size() == Configs.size() &&
         "one config per function required");
  std::vector<PipelineResult> Results(Functions.size());
  Pool.parallelFor(Functions.size(), [&](size_t I) {
    PipelineConfig C = Configs[I];
    if (Opts.PerTaskSeeds)
      C.Remap.Seed = Rng::taskSeed(C.Remap.Seed, I);
    if (Opts.Cache)
      C.Cache = Opts.Cache;
    uint64_t Begin = Telemetry::steadyNowNs();
    Results[I] = runPipeline(Functions[I], C);
    if (Opts.Telem)
      recordTask(*Opts.Telem, Functions[I], I, Results[I], Begin,
                 Telemetry::steadyNowNs());
  });
  return Results;
}
