//===- driver/Trace.h - Request-scoped tracing ------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped tracing: one `TraceContext` follows a single compilation
/// across every layer it touches — the server's connection thread (decode,
/// parse, queue wait), the pool worker (compile), the result cache (tier
/// probes), and runPipeline's stage/substage spans — and collects them as
/// one span tree keyed by a 64-bit trace id.
///
/// This complements the aggregate MetricsRegistry: histograms answer "what
/// is p99", a trace answers "where did *this* request's latency go". The
/// same id appears in the wire protocol (`traceid=` on dra-req-v1/-resp-v1),
/// the server's flight recorder, and dra-loadgen's client-side spans, so
/// one grep links a slow request end to end and `--trace-out` merges both
/// processes onto one Chrome-trace timeline.
///
/// Design rules (same as Metrics.h, which this header sits beside at the
/// bottom of the layering):
///
///  * **Zero cost when disabled.** Everything that records takes a nullable
///    `TraceContext *`; null means no clock reads, no locking, no
///    allocation. `PipelineConfig::Trace` defaults to null.
///  * **Bounded.** A context holds at most MaxSpans records; overflow
///    increments a dropped-span counter that the server exports as
///    `trace.dropped_spans` (gated at 0 in CI) instead of growing without
///    bound on a pathological input.
///  * **Mergeable clocks.** Timestamps are absolute steadyClockNs()
///    (CLOCK_MONOTONIC), which is a per-machine clock shared by every
///    process — client and server spans recorded on the same host land on
///    one common timeline with no offset arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_DRIVER_TRACE_H
#define DRA_DRIVER_TRACE_H

#include "driver/Metrics.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dra {

/// The OS process id, as Chrome-trace `pid`.
uint64_t osProcessId();

/// The OS thread id of the calling thread (gettid), as Chrome-trace `tid`.
/// Unlike ThreadPool worker indices these are unique machine-wide, so
/// merged multi-process traces never collapse two threads onto one row.
uint64_t osThreadId();

/// Canonical wire form of a trace id: exactly 16 lowercase hex digits.
std::string traceIdToHex(uint64_t Id);

/// Parses the 16-hex-digit form (strict: length and charset). Returns
/// false on anything else.
bool traceIdFromHex(const std::string &S, uint64_t &Out);

/// Derives a well-mixed, nonzero trace id from (Seed, Counter) via a
/// splitmix64 finalizer. Deterministic, so test runs are reproducible.
uint64_t deriveTraceId(uint64_t Seed, uint64_t Counter);

/// One recorded span. Like StageSpan but owning its name (names cross
/// thread and process boundaries) and carrying the recording thread.
struct TraceRecord {
  std::string Name;
  uint64_t BeginNs = 0; ///< Absolute steadyClockNs().
  uint64_t EndNs = 0;
  /// Nesting depth for tabular display (Chrome nests by time containment
  /// instead). Convention: 0 = the whole request, 1 = a server phase
  /// (decode/parse/queue_wait/compile), 2 = a cache probe or pipeline
  /// stage, 3+ = pipeline sub-phases.
  unsigned Depth = 0;
  uint64_t Tid = 0; ///< osThreadId() of the recording thread.
};

/// A bounded, thread-safe span collector for one request. The server
/// creates one per traced request on the connection thread's stack; the
/// pool worker records into it through `PipelineConfig::Trace`; the
/// promise/future handoff sequences the two, and the mutex covers the
/// (rare) case of helper threads recording concurrently.
class TraceContext {
public:
  static constexpr size_t DefaultMaxSpans = 4096;

  explicit TraceContext(uint64_t Id, size_t MaxSpans = DefaultMaxSpans)
      : Id(Id), MaxSpans(MaxSpans) {}

  TraceContext(const TraceContext &) = delete;
  TraceContext &operator=(const TraceContext &) = delete;

  uint64_t traceId() const { return Id; }

  /// Records one finished span on the calling thread.
  void record(std::string Name, uint64_t BeginNs, uint64_t EndNs,
              unsigned Depth = 0) {
    recordOn(osThreadId(), std::move(Name), BeginNs, EndNs, Depth);
  }

  /// Records a span attributed to an explicit thread — used when the span
  /// conceptually belongs to another thread's track (queue wait is time
  /// the *connection* thread spent waiting, even though the worker's
  /// task-start timestamp closes it).
  void recordOn(uint64_t Tid, std::string Name, uint64_t BeginNs,
                uint64_t EndNs, unsigned Depth = 0);

  /// Registers a display name for the calling thread ("conn-3",
  /// "worker-1"); exported as Chrome `thread_name` metadata.
  void nameCurrentThread(std::string Name) {
    nameThread(osThreadId(), std::move(Name));
  }
  void nameThread(uint64_t Tid, std::string Name);

  std::vector<TraceRecord> records() const;
  std::vector<std::pair<uint64_t, std::string>> threadNames() const;

  size_t spanCount() const;
  uint64_t droppedSpans() const { return Dropped.load(); }

private:
  const uint64_t Id;
  const size_t MaxSpans;
  mutable std::mutex Mtx;
  std::vector<TraceRecord> Records;
  std::vector<std::pair<uint64_t, std::string>> Names;
  std::atomic<uint64_t> Dropped{0};
};

/// RAII span against a nullable context — the disabled path (null Ctx) is
/// one branch, no clock read.
class ScopedTraceSpan {
public:
  ScopedTraceSpan(TraceContext *Ctx, const char *Name, unsigned Depth = 0)
      : Ctx(Ctx), Name(Name), Depth(Depth),
        BeginNs(Ctx ? steadyClockNs() : 0) {}
  ~ScopedTraceSpan() {
    if (Ctx)
      Ctx->record(Name, BeginNs, steadyClockNs(), Depth);
  }
  ScopedTraceSpan(const ScopedTraceSpan &) = delete;
  ScopedTraceSpan &operator=(const ScopedTraceSpan &) = delete;

private:
  TraceContext *Ctx;
  const char *Name;
  unsigned Depth;
  uint64_t BeginNs;
};

/// Streaming Chrome trace-event writer (the JSON Array Format:
/// `{"traceEvents": [...]}` with "X" complete events and "M" metadata),
/// used by dra-loadgen's `--trace-out` merge. Timestamps are microseconds;
/// callers rebase absolute steadyClockNs() themselves so the viewer's
/// origin is the first event, not machine boot.
class ChromeTraceWriter {
public:
  explicit ChromeTraceWriter(std::ostream &OS) : OS(OS) {}

  /// One `ph:"X"` complete event. \p Args are extra string key/values
  /// (e.g. {"traceid", "1f2e..."}).
  void completeEvent(
      uint64_t Pid, uint64_t Tid, const std::string &Name,
      const char *Category, double TsUs, double DurUs,
      const std::vector<std::pair<std::string, std::string>> &Args = {});

  /// `process_name` / `thread_name` metadata events.
  void processName(uint64_t Pid, const std::string &Name);
  void threadName(uint64_t Pid, uint64_t Tid, const std::string &Name);

  /// Closes the document. Events after finish() are a bug.
  void finish();

  size_t eventCount() const { return Events; }

private:
  void beginEvent();

  std::ostream &OS;
  size_t Events = 0;
  bool Finished = false;
};

} // namespace dra

#endif // DRA_DRIVER_TRACE_H
