//===- ir/IRBuilder.h - Convenience instruction construction ----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder that appends instructions to a chosen block of a
/// Function. Used by the unit tests and the synthetic workload generators.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_IR_IRBUILDER_H
#define DRA_IR_IRBUILDER_H

#include "ir/Function.h"

namespace dra {

/// Appends instructions to the block selected with setBlock(). Every
/// *create* method returns the defined register (or void) and leaves the
/// builder positioned after the new instruction.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  /// Selects the block new instructions are appended to.
  void setBlock(uint32_t BlockIdx) {
    assert(BlockIdx < F.Blocks.size() && "block out of range");
    Cur = BlockIdx;
  }

  uint32_t currentBlock() const { return Cur; }
  Function &function() { return F; }

  /// Dst = Src1 op Src2 into a fresh register.
  RegId createBin(Opcode Op, RegId Src1, RegId Src2) {
    Instruction I;
    I.Op = Op;
    I.Dst = F.makeReg();
    I.Src1 = Src1;
    I.Src2 = Src2;
    append(I);
    return I.Dst;
  }

  /// Dst = Src1 op Imm into a fresh register.
  RegId createBinImm(Opcode Op, RegId Src1, int64_t Imm) {
    Instruction I;
    I.Op = Op;
    I.Dst = F.makeReg();
    I.Src1 = Src1;
    I.Imm = Imm;
    append(I);
    return I.Dst;
  }

  /// Dst = Imm into a fresh register.
  RegId createMovImm(int64_t Imm) {
    Instruction I;
    I.Op = Opcode::MovI;
    I.Dst = F.makeReg();
    I.Imm = Imm;
    append(I);
    return I.Dst;
  }

  /// Dst = Src into a fresh register.
  RegId createMov(RegId Src) {
    Instruction I;
    I.Op = Opcode::Mov;
    I.Dst = F.makeReg();
    I.Src1 = Src;
    append(I);
    return I.Dst;
  }

  /// Re-defines an existing register: \p Dst = \p Src.
  void createMovTo(RegId Dst, RegId Src) {
    Instruction I;
    I.Op = Opcode::Mov;
    I.Dst = Dst;
    I.Src1 = Src;
    append(I);
  }

  /// Re-defines an existing register: \p Dst = \p Src1 op \p Src2.
  void createBinTo(Opcode Op, RegId Dst, RegId Src1, RegId Src2) {
    Instruction I;
    I.Op = Op;
    I.Dst = Dst;
    I.Src1 = Src1;
    I.Src2 = Src2;
    append(I);
  }

  /// Re-defines an existing register: \p Dst = \p Src1 op \p Imm.
  void createBinImmTo(Opcode Op, RegId Dst, RegId Src1, int64_t Imm) {
    Instruction I;
    I.Op = Op;
    I.Dst = Dst;
    I.Src1 = Src1;
    I.Imm = Imm;
    append(I);
  }

  /// Re-defines an existing register with a constant.
  void createMovImmTo(RegId Dst, int64_t Imm) {
    Instruction I;
    I.Op = Opcode::MovI;
    I.Dst = Dst;
    I.Imm = Imm;
    append(I);
  }

  /// Dst = data[Base + Offset] into a fresh register.
  RegId createLoad(RegId Base, int64_t Offset) {
    Instruction I;
    I.Op = Opcode::Load;
    I.Dst = F.makeReg();
    I.Src1 = Base;
    I.Imm = Offset;
    append(I);
    return I.Dst;
  }

  /// data[Base + Offset] = Value.
  void createStore(RegId Base, int64_t Offset, RegId Value) {
    Instruction I;
    I.Op = Opcode::Store;
    I.Src1 = Base;
    I.Src2 = Value;
    I.Imm = Offset;
    append(I);
  }

  /// if (Cond != 0) goto TrueBlock else goto FalseBlock.
  void createBr(RegId Cond, uint32_t TrueBlock, uint32_t FalseBlock) {
    Instruction I;
    I.Op = Opcode::Br;
    I.Src1 = Cond;
    I.Target0 = TrueBlock;
    I.Target1 = FalseBlock;
    append(I);
  }

  /// goto Target.
  void createJmp(uint32_t Target) {
    Instruction I;
    I.Op = Opcode::Jmp;
    I.Target0 = Target;
    append(I);
  }

  /// return Value.
  void createRet(RegId Value) {
    Instruction I;
    I.Op = Opcode::Ret;
    I.Src1 = Value;
    append(I);
  }

private:
  Function &F;
  uint32_t Cur = 0;

  void append(const Instruction &I) {
    assert(Cur < F.Blocks.size() && "no current block");
    F.Blocks[Cur].Insts.push_back(I);
  }
};

} // namespace dra

#endif // DRA_IR_IRBUILDER_H
