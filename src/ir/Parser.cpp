//===- ir/Parser.cpp - Textual IR parser -----------------------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

using namespace dra;

namespace {

/// Line-oriented cursor with small parsing helpers. Each method consumes
/// leading whitespace first; failures set Failed and a message.
class LineParser {
public:
  LineParser(const std::string &Line, size_t LineNo)
      : Line(Line), LineNo(LineNo) {}

  bool failed() const { return Failed; }
  const std::string &message() const { return Message; }

  void skipSpace() {
    while (Pos < Line.size() && std::isspace(static_cast<unsigned char>(
                                    Line[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Line.size();
  }

  /// Consumes the literal \p Text.
  bool expect(const std::string &Text) {
    if (tryExpect(Text))
      return true;
    return fail("expected '" + Text + "'");
  }

  /// Consumes the literal \p Text if present; never marks failure.
  bool tryExpect(const std::string &Text) {
    skipSpace();
    if (Line.compare(Pos, Text.size(), Text) == 0) {
      Pos += Text.size();
      return true;
    }
    return false;
  }

  /// Consumes an identifier-ish word (letters, digits, '.', '_').
  std::string word() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '.' || Line[Pos] == '_'))
      ++Pos;
    if (Start == Pos)
      fail("expected a word");
    return Line.substr(Start, Pos - Start);
  }

  /// Consumes "rN" and returns N.
  RegId reg() {
    skipSpace();
    if (Pos >= Line.size() || Line[Pos] != 'r') {
      fail("expected a register");
      return NoReg;
    }
    ++Pos;
    return static_cast<RegId>(integer());
  }

  /// Consumes "bbN" and returns N.
  uint32_t blockRef() {
    skipSpace();
    if (Line.compare(Pos, 2, "bb") != 0) {
      fail("expected a block reference");
      return NoBlock;
    }
    Pos += 2;
    return static_cast<uint32_t>(integer());
  }

  /// Consumes an optionally-signed integer.
  int64_t integer() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Line.size() && (Line[Pos] == '-' || Line[Pos] == '+'))
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos == DigitsStart) {
      fail("expected an integer");
      return 0;
    }
    return std::stoll(Line.substr(Start, Pos - Start));
  }

  bool fail(const std::string &Why) {
    if (!Failed) {
      Failed = true;
      Message = "line " + std::to_string(LineNo) + ": " + Why;
    }
    return false;
  }

private:
  const std::string &Line;
  size_t LineNo;
  size_t Pos = 0;
  bool Failed = false;
  std::string Message;
};

/// Opcode table for the uniform three-operand / two-operand forms.
const std::unordered_map<std::string, Opcode> &mnemonicTable() {
  static const std::unordered_map<std::string, Opcode> Table = {
      {"add", Opcode::Add},     {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},     {"divs", Opcode::DivS},
      {"rem", Opcode::Rem},     {"and", Opcode::And},
      {"or", Opcode::Or},       {"xor", Opcode::Xor},
      {"shl", Opcode::Shl},     {"shr", Opcode::Shr},
      {"addi", Opcode::AddI},   {"muli", Opcode::MulI},
      {"andi", Opcode::AndI},   {"xori", Opcode::XorI},
      {"shli", Opcode::ShlI},   {"shri", Opcode::ShrI},
      {"cmpeq", Opcode::CmpEQ}, {"cmpne", Opcode::CmpNE},
      {"cmplt", Opcode::CmpLT}, {"cmple", Opcode::CmpLE},
      {"mov", Opcode::Mov},     {"movi", Opcode::MovI},
      {"load", Opcode::Load},   {"store", Opcode::Store},
      {"spill.ld", Opcode::SpillLd}, {"spill.st", Opcode::SpillSt},
      {"br", Opcode::Br},       {"jmp", Opcode::Jmp},
      {"ret", Opcode::Ret},
  };
  return Table;
}

bool isBinRegForm(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivS:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
    return true;
  default:
    return false;
  }
}

bool isBinImmForm(Opcode Op) {
  switch (Op) {
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
    return true;
  default:
    return false;
  }
}

} // namespace

std::optional<Function> dra::parseFunction(const std::string &Text,
                                           std::string *Err) {
  auto Fail = [&](const std::string &Msg) -> std::optional<Function> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };

  Function F;
  bool SawHeader = false;
  int CurBlock = -1;

  std::istringstream Stream(Text);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    // Strip comments.
    size_t Semi = Line.find(';');
    if (Semi != std::string::npos)
      Line.resize(Semi);
    LineParser P(Line, LineNo);
    if (P.atEnd())
      continue;

    if (!SawHeader) {
      if (!P.expect("func"))
        return Fail(P.message());
      F.Name = P.word();
      if (!P.expect("regs=") )
        return Fail(P.message());
      F.NumRegs = static_cast<uint32_t>(P.integer());
      if (!P.expect("mem="))
        return Fail(P.message());
      F.MemWords = static_cast<uint32_t>(P.integer());
      if (!P.expect("spills="))
        return Fail(P.message());
      F.NumSpillSlots = static_cast<uint32_t>(P.integer());
      if (P.failed())
        return Fail(P.message());
      SawHeader = true;
      continue;
    }

    // Block label?
    {
      LineParser Probe(Line, LineNo);
      Probe.skipSpace();
      std::string W = Probe.word();
      if (!Probe.failed() && W.size() > 2 && W.compare(0, 2, "bb") == 0 &&
          Probe.expect(":")) {
        uint32_t Idx = static_cast<uint32_t>(std::stoul(W.substr(2)));
        while (F.Blocks.size() <= Idx)
          F.makeBlock();
        CurBlock = static_cast<int>(Idx);
        continue;
      }
    }
    if (CurBlock < 0)
      return Fail("line " + std::to_string(LineNo) +
                  ": instruction before any block label");

    std::string Mnemonic = P.word();
    if (P.failed())
      return Fail(P.message());

    Instruction I;
    if (Mnemonic == "set_last_reg") {
      I.Op = Opcode::SetLastReg;
      if (!P.expect("("))
        return Fail(P.message());
      I.Imm = P.integer();
      if (P.tryExpect(","))
        I.Aux = static_cast<uint32_t>(P.integer());
      if (!P.expect(")"))
        return Fail(P.message());
    } else {
      auto It = mnemonicTable().find(Mnemonic);
      if (It == mnemonicTable().end())
        return Fail("line " + std::to_string(LineNo) +
                    ": unknown mnemonic '" + Mnemonic + "'");
      I.Op = It->second;
      if (isBinRegForm(I.Op)) {
        I.Dst = P.reg();
        P.expect(",");
        I.Src1 = P.reg();
        P.expect(",");
        I.Src2 = P.reg();
      } else if (isBinImmForm(I.Op)) {
        I.Dst = P.reg();
        P.expect(",");
        I.Src1 = P.reg();
        P.expect(",");
        I.Imm = P.integer();
      } else {
        switch (I.Op) {
        case Opcode::Mov:
          I.Dst = P.reg();
          P.expect(",");
          I.Src1 = P.reg();
          break;
        case Opcode::MovI:
          I.Dst = P.reg();
          P.expect(",");
          I.Imm = P.integer();
          break;
        case Opcode::Load:
          I.Dst = P.reg();
          P.expect(",");
          P.expect("[");
          I.Src1 = P.reg();
          P.expect("+");
          I.Imm = P.integer();
          P.expect("]");
          break;
        case Opcode::Store:
          P.expect("[");
          I.Src1 = P.reg();
          P.expect("+");
          I.Imm = P.integer();
          P.expect("]");
          P.expect(",");
          I.Src2 = P.reg();
          break;
        case Opcode::SpillLd:
          I.Dst = P.reg();
          P.expect(",");
          P.expect("slot");
          I.Imm = P.integer();
          break;
        case Opcode::SpillSt:
          P.expect("slot");
          I.Imm = P.integer();
          P.expect(",");
          I.Src1 = P.reg();
          break;
        case Opcode::Br:
          I.Src1 = P.reg();
          P.expect(",");
          I.Target0 = P.blockRef();
          P.expect(",");
          I.Target1 = P.blockRef();
          break;
        case Opcode::Jmp:
          I.Target0 = P.blockRef();
          break;
        case Opcode::Ret:
          I.Src1 = P.reg();
          break;
        default:
          return Fail("line " + std::to_string(LineNo) +
                      ": unhandled mnemonic '" + Mnemonic + "'");
        }
      }
    }
    if (P.failed())
      return Fail(P.message());
    // Ensure referenced blocks exist even if their labels come later.
    for (uint32_t T : {I.Target0, I.Target1})
      if (T != NoBlock)
        while (F.Blocks.size() <= T)
          F.makeBlock();
    F.Blocks[CurBlock].Insts.push_back(I);
  }

  if (!SawHeader)
    return Fail("missing 'func' header");
  if (F.Blocks.empty())
    return Fail("no blocks");
  F.recomputeCFG();
  return F;
}
