//===- ir/Parser.cpp - Textual IR parser -----------------------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

using namespace dra;

namespace {

/// Line-oriented cursor with small parsing helpers. Each method consumes
/// leading whitespace first; failures set Failed and a message.
class LineParser {
public:
  LineParser(const std::string &Line, size_t LineNo)
      : Line(Line), LineNo(LineNo) {}

  bool failed() const { return Failed; }
  const std::string &message() const { return Message; }

  void skipSpace() {
    while (Pos < Line.size() && std::isspace(static_cast<unsigned char>(
                                    Line[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Line.size();
  }

  /// Consumes the literal \p Text.
  bool expect(const std::string &Text) {
    if (tryExpect(Text))
      return true;
    return fail("expected '" + Text + "'");
  }

  /// Consumes the literal \p Text if present; never marks failure.
  bool tryExpect(const std::string &Text) {
    skipSpace();
    if (Line.compare(Pos, Text.size(), Text) == 0) {
      Pos += Text.size();
      return true;
    }
    return false;
  }

  /// Consumes an identifier-ish word (letters, digits, '.', '_').
  std::string word() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '.' || Line[Pos] == '_'))
      ++Pos;
    if (Start == Pos)
      fail("expected a word");
    return Line.substr(Start, Pos - Start);
  }

  /// Consumes "rN" and returns N. Register numbers are plain digit runs:
  /// a sign ("r-1") is rejected rather than wrapped through the unsigned
  /// RegId, and NoReg stays reserved as the sentinel.
  RegId reg() {
    skipSpace();
    if (Pos >= Line.size() || Line[Pos] != 'r') {
      fail("expected a register");
      return NoReg;
    }
    ++Pos;
    uint64_t N = digits("register number");
    if (N >= NoReg) {
      fail("register number out of range");
      return NoReg;
    }
    return static_cast<RegId>(N);
  }

  /// Consumes "bbN" and returns N (same digit-run rules as reg()).
  uint32_t blockRef() {
    skipSpace();
    if (Line.compare(Pos, 2, "bb") != 0) {
      fail("expected a block reference");
      return NoBlock;
    }
    Pos += 2;
    uint64_t N = digits("block number");
    // Branch targets materialize their block, so cap like block labels.
    if (N > (1u << 20)) {
      fail("block number out of range");
      return NoBlock;
    }
    return static_cast<uint32_t>(N);
  }

  /// Consumes an unsigned integer that must fit uint32 (header fields).
  uint32_t unsignedField(const char *What) {
    uint64_t N = digits(What);
    if (N > UINT32_MAX) {
      fail(std::string(What) + " out of range");
      return 0;
    }
    return static_cast<uint32_t>(N);
  }

  /// Consumes an optionally-signed int64. Out-of-range literals are a
  /// parse failure, not an exception or a silent wrap.
  int64_t integer() {
    skipSpace();
    bool Neg = false;
    if (Pos < Line.size() && (Line[Pos] == '-' || Line[Pos] == '+')) {
      Neg = Line[Pos] == '-';
      ++Pos;
    }
    uint64_t Mag = digits("an integer");
    if (Failed)
      return 0;
    uint64_t Limit =
        Neg ? uint64_t(INT64_MAX) + 1 : uint64_t(INT64_MAX);
    if (Mag > Limit) {
      fail("integer literal out of range");
      return 0;
    }
    return static_cast<int64_t>(Neg ? 0 - Mag : Mag);
  }

  bool fail(const std::string &Why) {
    if (!Failed) {
      Failed = true;
      Message = "line " + std::to_string(LineNo) + ": " + Why;
    }
    return false;
  }

private:
  /// Consumes a run of decimal digits, accumulating with overflow
  /// detection (uint64 saturates the check; callers range-check further).
  uint64_t digits(const char *What) {
    skipSpace();
    size_t Start = Pos;
    uint64_t N = 0;
    bool Overflow = false;
    while (Pos < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos]))) {
      unsigned D = static_cast<unsigned>(Line[Pos] - '0');
      if (N > (UINT64_MAX - D) / 10)
        Overflow = true;
      else
        N = N * 10 + D;
      ++Pos;
    }
    if (Pos == Start) {
      fail(std::string("expected ") + What);
      return 0;
    }
    if (Overflow) {
      fail(std::string(What) + " out of range");
      return 0;
    }
    return N;
  }

  const std::string &Line;
  size_t LineNo;
  size_t Pos = 0;
  bool Failed = false;
  std::string Message;
};

/// Opcode table for the uniform three-operand / two-operand forms.
const std::unordered_map<std::string, Opcode> &mnemonicTable() {
  static const std::unordered_map<std::string, Opcode> Table = {
      {"add", Opcode::Add},     {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},     {"divs", Opcode::DivS},
      {"rem", Opcode::Rem},     {"and", Opcode::And},
      {"or", Opcode::Or},       {"xor", Opcode::Xor},
      {"shl", Opcode::Shl},     {"shr", Opcode::Shr},
      {"addi", Opcode::AddI},   {"muli", Opcode::MulI},
      {"andi", Opcode::AndI},   {"xori", Opcode::XorI},
      {"shli", Opcode::ShlI},   {"shri", Opcode::ShrI},
      {"cmpeq", Opcode::CmpEQ}, {"cmpne", Opcode::CmpNE},
      {"cmplt", Opcode::CmpLT}, {"cmple", Opcode::CmpLE},
      {"mov", Opcode::Mov},     {"movi", Opcode::MovI},
      {"load", Opcode::Load},   {"store", Opcode::Store},
      {"spill.ld", Opcode::SpillLd}, {"spill.st", Opcode::SpillSt},
      {"br", Opcode::Br},       {"jmp", Opcode::Jmp},
      {"ret", Opcode::Ret},
  };
  return Table;
}

bool isBinRegForm(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivS:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
    return true;
  default:
    return false;
  }
}

bool isBinImmForm(Opcode Op) {
  switch (Op) {
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
    return true;
  default:
    return false;
  }
}

} // namespace

std::optional<Function> dra::parseFunction(const std::string &Text,
                                           std::string *Err) {
  auto Fail = [&](const std::string &Msg) -> std::optional<Function> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };

  Function F;
  bool SawHeader = false;
  int CurBlock = -1;

  std::istringstream Stream(Text);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    // Strip comments.
    size_t Semi = Line.find(';');
    if (Semi != std::string::npos)
      Line.resize(Semi);
    LineParser P(Line, LineNo);
    if (P.atEnd())
      continue;

    if (!SawHeader) {
      if (!P.expect("func"))
        return Fail(P.message());
      F.Name = P.word();
      if (!P.expect("regs=") )
        return Fail(P.message());
      F.NumRegs = P.unsignedField("regs=");
      if (!P.expect("mem="))
        return Fail(P.message());
      F.MemWords = P.unsignedField("mem=");
      if (!P.expect("spills="))
        return Fail(P.message());
      F.NumSpillSlots = P.unsignedField("spills=");
      if (P.failed())
        return Fail(P.message());
      if (!P.atEnd())
        return Fail("line " + std::to_string(LineNo) +
                    ": trailing characters after header");
      SawHeader = true;
      continue;
    }

    // Block label? Only an all-digit suffix counts ("bb5x:" is not a
    // quiet alias for bb5, and "bbx:" is not a crash), and the number
    // must fit — the label allocates that many blocks.
    {
      LineParser Probe(Line, LineNo);
      Probe.skipSpace();
      std::string W = Probe.word();
      if (!Probe.failed() && W.size() > 2 && W.compare(0, 2, "bb") == 0 &&
          Probe.tryExpect(":")) {
        bool AllDigits = true;
        uint64_t Idx = 0;
        for (size_t I = 2; I != W.size(); ++I) {
          if (!std::isdigit(static_cast<unsigned char>(W[I]))) {
            AllDigits = false;
            break;
          }
          Idx = Idx * 10 + static_cast<unsigned>(W[I] - '0');
          // The label allocates Idx+1 blocks, so an absurd number is an
          // error up front rather than an allocation of that size.
          if (Idx > (1u << 20))
            return Fail("line " + std::to_string(LineNo) +
                        ": block label '" + W + "' out of range");
        }
        if (!AllDigits)
          return Fail("line " + std::to_string(LineNo) +
                      ": malformed block label '" + W + "'");
        if (!Probe.atEnd())
          return Fail("line " + std::to_string(LineNo) +
                      ": trailing characters after block label");
        while (F.Blocks.size() <= Idx)
          F.makeBlock();
        CurBlock = static_cast<int>(Idx);
        continue;
      }
    }
    if (CurBlock < 0)
      return Fail("line " + std::to_string(LineNo) +
                  ": instruction before any block label");

    std::string Mnemonic = P.word();
    if (P.failed())
      return Fail(P.message());

    Instruction I;
    if (Mnemonic == "set_last_reg") {
      I.Op = Opcode::SetLastReg;
      if (!P.expect("("))
        return Fail(P.message());
      I.Imm = P.integer();
      if (P.tryExpect(","))
        I.Aux = static_cast<uint32_t>(P.integer());
      if (!P.expect(")"))
        return Fail(P.message());
    } else {
      auto It = mnemonicTable().find(Mnemonic);
      if (It == mnemonicTable().end())
        return Fail("line " + std::to_string(LineNo) +
                    ": unknown mnemonic '" + Mnemonic + "'");
      I.Op = It->second;
      if (isBinRegForm(I.Op)) {
        I.Dst = P.reg();
        P.expect(",");
        I.Src1 = P.reg();
        P.expect(",");
        I.Src2 = P.reg();
      } else if (isBinImmForm(I.Op)) {
        I.Dst = P.reg();
        P.expect(",");
        I.Src1 = P.reg();
        P.expect(",");
        I.Imm = P.integer();
      } else {
        switch (I.Op) {
        case Opcode::Mov:
          I.Dst = P.reg();
          P.expect(",");
          I.Src1 = P.reg();
          break;
        case Opcode::MovI:
          I.Dst = P.reg();
          P.expect(",");
          I.Imm = P.integer();
          break;
        case Opcode::Load:
          I.Dst = P.reg();
          P.expect(",");
          P.expect("[");
          I.Src1 = P.reg();
          P.expect("+");
          I.Imm = P.integer();
          P.expect("]");
          break;
        case Opcode::Store:
          P.expect("[");
          I.Src1 = P.reg();
          P.expect("+");
          I.Imm = P.integer();
          P.expect("]");
          P.expect(",");
          I.Src2 = P.reg();
          break;
        case Opcode::SpillLd:
          I.Dst = P.reg();
          P.expect(",");
          P.expect("slot");
          I.Imm = P.integer();
          break;
        case Opcode::SpillSt:
          P.expect("slot");
          I.Imm = P.integer();
          P.expect(",");
          I.Src1 = P.reg();
          break;
        case Opcode::Br:
          I.Src1 = P.reg();
          P.expect(",");
          I.Target0 = P.blockRef();
          P.expect(",");
          I.Target1 = P.blockRef();
          break;
        case Opcode::Jmp:
          I.Target0 = P.blockRef();
          break;
        case Opcode::Ret:
          I.Src1 = P.reg();
          break;
        default:
          return Fail("line " + std::to_string(LineNo) +
                      ": unhandled mnemonic '" + Mnemonic + "'");
        }
      }
    }
    if (P.failed())
      return Fail(P.message());
    if (!P.atEnd())
      return Fail("line " + std::to_string(LineNo) +
                  ": trailing characters after instruction");
    // Ensure referenced blocks exist even if their labels come later.
    for (uint32_t T : {I.Target0, I.Target1})
      if (T != NoBlock)
        while (F.Blocks.size() <= T)
          F.makeBlock();
    F.Blocks[CurBlock].Insts.push_back(I);
  }

  if (!SawHeader)
    return Fail("missing 'func' header");
  if (F.Blocks.empty())
    return Fail("no blocks");
  F.recomputeCFG();
  return F;
}
