//===- ir/Instruction.cpp - Three-address instructions --------------------===//

#include "ir/Instruction.h"

#include <sstream>

using namespace dra;

const char *dra::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::DivS:
    return "divs";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::AddI:
    return "addi";
  case Opcode::MulI:
    return "muli";
  case Opcode::AndI:
    return "andi";
  case Opcode::XorI:
    return "xori";
  case Opcode::ShlI:
    return "shli";
  case Opcode::ShrI:
    return "shri";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::Mov:
    return "mov";
  case Opcode::MovI:
    return "movi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::SpillLd:
    return "spill.ld";
  case Opcode::SpillSt:
    return "spill.st";
  case Opcode::Br:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Ret:
    return "ret";
  case Opcode::SetLastReg:
    return "set_last_reg";
  }
  assert(false && "unknown opcode");
  return "<bad>";
}

RegId Instruction::def() const {
  switch (Op) {
  case Opcode::Store:
  case Opcode::SpillSt:
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::SetLastReg:
    return NoReg;
  default:
    return Dst;
  }
}

void Instruction::uses(RegId Out[2], unsigned &Count) const {
  Count = 0;
  switch (Op) {
  case Opcode::MovI:
  case Opcode::Jmp:
  case Opcode::SetLastReg:
  case Opcode::SpillLd:
    return;
  case Opcode::Mov:
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
  case Opcode::Load:
  case Opcode::Br:
  case Opcode::Ret:
  case Opcode::SpillSt:
    Out[Count++] = Src1;
    return;
  case Opcode::Store:
    Out[Count++] = Src1;
    Out[Count++] = Src2;
    return;
  default:
    Out[Count++] = Src1;
    Out[Count++] = Src2;
    return;
  }
}

unsigned Instruction::numRegFields() const {
  RegId Uses[2];
  unsigned NumUses;
  uses(Uses, NumUses);
  return NumUses + (def() != NoReg ? 1 : 0);
}

RegId Instruction::regField(unsigned Idx) const {
  RegId Uses[2];
  unsigned NumUses;
  uses(Uses, NumUses);
  if (Idx < NumUses)
    return Uses[Idx];
  assert(Idx == NumUses && def() != NoReg && "register field out of range");
  return Dst;
}

void Instruction::setRegField(unsigned Idx, RegId R) {
  RegId Uses[2];
  unsigned NumUses;
  uses(Uses, NumUses);
  if (Idx == 0 && NumUses >= 1) {
    Src1 = R;
    return;
  }
  if (Idx == 1 && NumUses >= 2) {
    Src2 = R;
    return;
  }
  assert(Idx == NumUses && def() != NoReg && "register field out of range");
  Dst = R;
}

std::string dra::toString(const Instruction &I) {
  std::ostringstream OS;
  OS << opcodeName(I.Op);
  auto Reg = [](RegId R) {
    return R == NoReg ? std::string("<none>") : "r" + std::to_string(R);
  };
  switch (I.Op) {
  case Opcode::MovI:
    OS << " " << Reg(I.Dst) << ", " << I.Imm;
    break;
  case Opcode::Mov:
    OS << " " << Reg(I.Dst) << ", " << Reg(I.Src1);
    break;
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
    OS << " " << Reg(I.Dst) << ", " << Reg(I.Src1) << ", " << I.Imm;
    break;
  case Opcode::Load:
    OS << " " << Reg(I.Dst) << ", [" << Reg(I.Src1) << " + " << I.Imm << "]";
    break;
  case Opcode::Store:
    OS << " [" << Reg(I.Src1) << " + " << I.Imm << "], " << Reg(I.Src2);
    break;
  case Opcode::SpillLd:
    OS << " " << Reg(I.Dst) << ", slot" << I.Imm;
    break;
  case Opcode::SpillSt:
    OS << " slot" << I.Imm << ", " << Reg(I.Src1);
    break;
  case Opcode::Br:
    OS << " " << Reg(I.Src1) << ", bb" << I.Target0 << ", bb" << I.Target1;
    break;
  case Opcode::Jmp:
    OS << " bb" << I.Target0;
    break;
  case Opcode::Ret:
    OS << " " << Reg(I.Src1);
    break;
  case Opcode::SetLastReg:
    OS << "(" << I.Imm;
    if (I.Aux != 0)
      OS << ", " << I.Aux;
    OS << ")";
    break;
  default:
    OS << " " << Reg(I.Dst) << ", " << Reg(I.Src1) << ", " << Reg(I.Src2);
    break;
  }
  return OS.str();
}
