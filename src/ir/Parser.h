//===- ir/Parser.h - Textual IR parser ---------------------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parser for the textual form produced by printFunction(), so functions
/// round-trip through text. Used by the golden tests and by the dra-opt
/// command-line tool, which accepts hand-written programs in this syntax:
///
///   func name regs=4 mem=16 spills=0
///   bb0:
///     movi r0, 10
///     movi r1, 0
///     jmp bb1
///   bb1:
///     add r1, r1, r0
///     addi r0, r0, -1
///     br r0, bb1, bb2
///   bb2:
///     ret r1
///
//===----------------------------------------------------------------------===//

#ifndef DRA_IR_PARSER_H
#define DRA_IR_PARSER_H

#include "ir/Function.h"

#include <optional>
#include <string>

namespace dra {

/// Parses one function from \p Text. On success returns the function; on
/// failure returns std::nullopt and, if \p Err is non-null, a diagnostic
/// naming the offending line.
std::optional<Function> parseFunction(const std::string &Text,
                                      std::string *Err = nullptr);

} // namespace dra

#endif // DRA_IR_PARSER_H
