//===- ir/Function.cpp - Basic blocks, functions, modules -----------------===//

#include "ir/Function.h"

#include <sstream>

using namespace dra;

void Function::recomputeCFG() {
  for (BasicBlock &BB : Blocks) {
    BB.Succs.clear();
    BB.Preds.clear();
  }
  for (uint32_t Idx = 0, E = static_cast<uint32_t>(Blocks.size()); Idx != E;
       ++Idx) {
    const Instruction *Term = Blocks[Idx].terminator();
    if (!Term)
      continue;
    auto AddEdge = [&](uint32_t To) {
      assert(To < Blocks.size() && "branch target out of range");
      Blocks[Idx].Succs.push_back(To);
      Blocks[To].Preds.push_back(Idx);
    };
    switch (Term->Op) {
    case Opcode::Br:
      AddEdge(Term->Target0);
      if (Term->Target1 != Term->Target0)
        AddEdge(Term->Target1);
      break;
    case Opcode::Jmp:
      AddEdge(Term->Target0);
      break;
    case Opcode::Ret:
      break;
    default:
      assert(false && "non-terminator as block terminator");
    }
  }
}

size_t Function::numInsts() const {
  size_t Total = 0;
  for (const BasicBlock &BB : Blocks)
    Total += BB.Insts.size();
  return Total;
}

size_t Function::numSpillInsts() const {
  size_t Total = 0;
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &I : BB.Insts)
      Total += I.isSpill();
  return Total;
}

size_t Function::numSetLastRegs() const {
  size_t Total = 0;
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &I : BB.Insts)
      Total += I.Op == Opcode::SetLastReg;
  return Total;
}

std::string dra::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << "func " << F.Name << " regs=" << F.NumRegs << " mem=" << F.MemWords
     << " spills=" << F.NumSpillSlots << "\n";
  for (size_t BIdx = 0; BIdx != F.Blocks.size(); ++BIdx) {
    OS << "bb" << BIdx << ":\n";
    for (const Instruction &I : F.Blocks[BIdx].Insts)
      OS << "  " << toString(I) << "\n";
  }
  return OS.str();
}

bool dra::verifyFunction(const Function &F, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = "function '" + F.Name + "': " + Msg;
    return false;
  };
  if (F.Blocks.empty())
    return Fail("no blocks");
  for (size_t BIdx = 0; BIdx != F.Blocks.size(); ++BIdx) {
    const BasicBlock &BB = F.Blocks[BIdx];
    std::string Where = "bb" + std::to_string(BIdx);
    if (BB.Insts.empty())
      return Fail(Where + " is empty (no terminator)");
    for (size_t IIdx = 0; IIdx != BB.Insts.size(); ++IIdx) {
      const Instruction &I = BB.Insts[IIdx];
      bool IsLast = IIdx + 1 == BB.Insts.size();
      if (I.isTerminator() != IsLast)
        return Fail(Where + " instruction " + std::to_string(IIdx) +
                    (IsLast ? " does not end in a terminator"
                            : " has a terminator in the middle"));
      // Register operands in range.
      for (unsigned Field = 0; Field != I.numRegFields(); ++Field) {
        RegId R = I.regField(Field);
        if (R == NoReg || R >= F.NumRegs)
          return Fail(Where + ": '" + toString(I) +
                      "' references register out of range");
      }
      if (I.isSpill() &&
          (I.Imm < 0 || static_cast<uint64_t>(I.Imm) >= F.NumSpillSlots))
        return Fail(Where + ": '" + toString(I) + "' spill slot out of range");
      if (I.Op == Opcode::SetLastReg &&
          (I.Imm < 0 || static_cast<uint64_t>(I.Imm) >= F.NumRegs))
        return Fail(Where + ": set_last_reg value out of range");
      if (I.Op == Opcode::Br &&
          (I.Target0 >= F.Blocks.size() || I.Target1 >= F.Blocks.size()))
        return Fail(Where + ": branch target out of range");
      if (I.Op == Opcode::Jmp && I.Target0 >= F.Blocks.size())
        return Fail(Where + ": jump target out of range");
    }
  }
  return true;
}
