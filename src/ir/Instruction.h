//===- ir/Instruction.h - Three-address instructions ------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the reproduction IR: a RISC-flavored, non-SSA
/// three-address code with executable semantics. The same representation is
/// used before register allocation (register ids are virtual registers) and
/// after (register ids are physical register numbers), which mirrors how the
/// paper's post-pass schemes (differential remapping, encoding) consume the
/// allocator's output.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_IR_INSTRUCTION_H
#define DRA_IR_INSTRUCTION_H

#include <cassert>
#include <cstdint>
#include <string>

namespace dra {

/// Register identifier. Before allocation this is a virtual register index;
/// after allocation it is a physical register number in [0, RegN).
using RegId = uint32_t;

/// Sentinel for "no register in this operand slot".
constexpr RegId NoReg = ~RegId(0);

/// Sentinel for "no branch target".
constexpr uint32_t NoBlock = ~uint32_t(0);

/// Instruction opcodes.
///
/// Memory model: each function owns a flat word-addressed data array
/// (`Function::MemWords`) plus a separate spill area. `Load`/`Store` address
/// the data array as Src1 + Imm (wrapped modulo the array size by the
/// interpreter, so every generated program is memory-safe). `SpillLd` /
/// `SpillSt` address the spill area directly by slot index `Imm`; they model
/// SP-relative accesses and need no address register, matching how a
/// THUMB-like target spills through the (special, unallocated) stack
/// pointer.
enum class Opcode : uint8_t {
  // Dst = Src1 op Src2.
  Add,
  Sub,
  Mul,
  DivS, // Signed division; division by zero yields 0 (defined semantics).
  Rem,  // Signed remainder; remainder by zero yields 0.
  And,
  Or,
  Xor,
  Shl, // Shift amount taken modulo 64.
  Shr, // Logical shift right, amount modulo 64.
  // Dst = Src1 op Imm.
  AddI,
  MulI,
  AndI,
  XorI,
  ShlI,
  ShrI,
  // Dst = (Src1 relop Src2) ? 1 : 0.
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  // Data movement.
  Mov,  // Dst = Src1.
  MovI, // Dst = Imm.
  // Memory.
  Load,    // Dst = data[Src1 + Imm].
  Store,   // data[Src1 + Imm] = Src2.
  SpillLd, // Dst = spill[Imm].
  SpillSt, // spill[Imm] = Src1.
  // Control flow (only valid as the last instruction of a block).
  Br,  // if (Src1 != 0) goto Target0 else goto Target1.
  Jmp, // goto Target0.
  Ret, // return Src1.
  // Decode-stage pseudo instruction (Section 2.3 of the paper). Imm holds
  // the value assigned to last_reg; Aux holds the delay_num (0 for the
  // immediate form). Never enters the execute stage.
  SetLastReg,
};

/// Returns a human-readable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// A single three-address instruction. Operand slots not used by the opcode
/// hold NoReg / 0 / NoBlock.
struct Instruction {
  Opcode Op = Opcode::MovI;
  RegId Dst = NoReg;
  RegId Src1 = NoReg;
  RegId Src2 = NoReg;
  int64_t Imm = 0;
  uint32_t Target0 = NoBlock;
  uint32_t Target1 = NoBlock;
  /// SetLastReg delay_num: the number of register fields decoded before the
  /// assignment to last_reg takes effect.
  uint32_t Aux = 0;

  /// True for Br/Jmp/Ret.
  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
  }

  /// True for instructions that read or write the data array or spill area.
  bool isMemory() const {
    return Op == Opcode::Load || Op == Opcode::Store ||
           Op == Opcode::SpillLd || Op == Opcode::SpillSt;
  }

  /// True for the spill-area accesses inserted by the register allocators.
  bool isSpill() const {
    return Op == Opcode::SpillLd || Op == Opcode::SpillSt;
  }

  /// Defined register or NoReg.
  RegId def() const;

  /// Appends the used registers (at most two, in access-order position:
  /// src1 then src2) to \p Uses.
  void uses(RegId Out[2], unsigned &Count) const;

  /// Number of register fields this instruction encodes, in access order
  /// src1, src2, dst. SetLastReg has none (its payload is an immediate).
  unsigned numRegFields() const;

  /// Returns the register in access-order field \p Idx (0-based).
  RegId regField(unsigned Idx) const;

  /// Overwrites the register in access-order field \p Idx.
  void setRegField(unsigned Idx, RegId R);
};

/// Builds a compact single-line textual form, e.g. "add r1, r2, r3".
std::string toString(const Instruction &I);

} // namespace dra

#endif // DRA_IR_INSTRUCTION_H
