//===- ir/Function.h - Basic blocks, functions, modules ---------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow-graph containers for the reproduction IR. Blocks are stored
/// by index inside their Function (the index doubles as the layout order the
/// encoder uses), and edges are recomputed from terminators on demand so
/// that passes can freely rewrite instruction lists.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_IR_FUNCTION_H
#define DRA_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace dra {

/// A basic block: a straight-line instruction list ending in a terminator
/// (except possibly during construction).
struct BasicBlock {
  std::vector<Instruction> Insts;
  /// Successor/predecessor block indices; maintained by
  /// Function::recomputeCFG().
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;

  const Instruction *terminator() const {
    if (Insts.empty() || !Insts.back().isTerminator())
      return nullptr;
    return &Insts.back();
  }
};

/// A function: an entry block (index 0), a register universe, a data-memory
/// size and a spill area.
struct Function {
  std::string Name;
  std::vector<BasicBlock> Blocks;
  /// Number of registers referenced: virtual registers before allocation,
  /// or the machine RegN afterwards.
  uint32_t NumRegs = 0;
  /// Words in the per-function data array addressed by Load/Store.
  uint32_t MemWords = 0;
  /// Spill slots used by SpillLd/SpillSt.
  uint32_t NumSpillSlots = 0;

  /// Allocates a fresh (virtual) register id.
  RegId makeReg() { return NumRegs++; }

  /// Appends an empty block; returns its index.
  uint32_t makeBlock() {
    Blocks.emplace_back();
    return static_cast<uint32_t>(Blocks.size() - 1);
  }

  /// Recomputes Succs/Preds of every block from the terminators.
  void recomputeCFG();

  /// Total number of instructions across all blocks.
  size_t numInsts() const;

  /// Number of spill-area accesses (SpillLd/SpillSt) across all blocks.
  size_t numSpillInsts() const;

  /// Number of SetLastReg pseudo instructions across all blocks.
  size_t numSetLastRegs() const;
};

/// A named collection of functions. The interpreter treats the function
/// "main" (or the first function when absent) as the program entry.
struct Module {
  std::string Name;
  std::vector<Function> Funcs;
};

/// Renders \p F as human-readable text (one instruction per line).
std::string printFunction(const Function &F);

/// Structural validity check: every block ends in exactly one terminator
/// (which is its last instruction), branch targets are in range, register
/// ids are < NumRegs, spill slots are < NumSpillSlots, and SetLastReg values
/// are < NumRegs. On failure returns false and, if \p Err is non-null,
/// stores a diagnostic.
bool verifyFunction(const Function &F, std::string *Err = nullptr);

} // namespace dra

#endif // DRA_IR_FUNCTION_H
