//===- core/OperandSwap.cpp - Commutative operand swapping ----------------===//

#include "core/OperandSwap.h"

#include "core/AccessSequence.h"
#include "core/Encoder.h"

using namespace dra;

bool dra::isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
    return true;
  default:
    return false;
  }
}

namespace {

/// Violations in the access chain Prev -> Regs[0] -> Regs[1] -> ...,
/// skipping special registers (they neither consume nor update last_reg)
/// and skipping the leading edge when Prev is unknown (NoReg).
unsigned chainViolations(const EncodingConfig &C,
                         const SpecialRegLookup &Special, RegId Prev,
                         const RegId *Regs, unsigned Count) {
  unsigned Violations = 0;
  RegId Last = Prev;
  for (unsigned I = 0; I != Count; ++I) {
    RegId R = Regs[I];
    if (Special.isSpecial(R))
      continue;
    if (Last != NoReg && Last != R && !C.encodable(Last, R))
      ++Violations;
    Last = R;
  }
  return Violations;
}

} // namespace

size_t dra::swapCommutativeOperands(Function &F, const EncodingConfig &C) {
  if (C.Order != AccessOrder::SrcFirst)
    return 0;
  size_t Swapped = 0;
  SpecialRegLookup Special(C);
  std::vector<std::optional<RegId>> Entry = decodeEntryStates(F, C);
  for (uint32_t Blk = 0; Blk != F.Blocks.size(); ++Blk) {
    BasicBlock &BB = F.Blocks[Blk];
    // Seed with the encoder's entry state: transitions at the block head
    // are then evaluated exactly as the encoder will see them. Blocks the
    // encoder repairs with a head set_last_reg start unknown (the repair
    // targets the first access, so the leading edge is free either way).
    RegId Last = Entry[Blk] ? *Entry[Blk] : NoReg;
    for (Instruction &I : BB.Insts) {
      if (I.Op == Opcode::SetLastReg) {
        Last = static_cast<RegId>(I.Imm);
        continue;
      }
      if (isCommutative(I.Op) && I.Src1 != I.Src2) {
        RegId Straight[3] = {I.Src1, I.Src2, I.Dst};
        RegId SwappedOrder[3] = {I.Src2, I.Src1, I.Dst};
        unsigned CostStraight =
            chainViolations(C, Special, Last, Straight, 3);
        unsigned CostSwapped =
            chainViolations(C, Special, Last, SwappedOrder, 3);
        if (CostSwapped < CostStraight) {
          std::swap(I.Src1, I.Src2);
          ++Swapped;
        }
      }
      // Advance Last over this instruction's fields.
      for (unsigned Field = 0; Field != I.numRegFields(); ++Field) {
        RegId R = I.regField(Field);
        if (!Special.isSpecial(R))
          Last = R;
      }
    }
  }
  return Swapped;
}
