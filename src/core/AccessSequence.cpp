//===- core/AccessSequence.cpp - Register access sequences ----------------===//

#include "core/AccessSequence.h"

using namespace dra;

std::vector<unsigned> dra::fieldOrder(const Instruction &I,
                                      AccessOrder Order) {
  unsigned NumFields = I.numRegFields();
  std::vector<unsigned> Result;
  Result.reserve(NumFields);
  if (Order == AccessOrder::SrcFirst) {
    for (unsigned Idx = 0; Idx != NumFields; ++Idx)
      Result.push_back(Idx);
    return Result;
  }
  // DstFirst: the def (canonical last field) first, then the uses.
  if (NumFields != 0 && I.def() != NoReg) {
    Result.push_back(NumFields - 1);
    for (unsigned Idx = 0; Idx + 1 < NumFields; ++Idx)
      Result.push_back(Idx);
    return Result;
  }
  for (unsigned Idx = 0; Idx != NumFields; ++Idx)
    Result.push_back(Idx);
  return Result;
}

std::vector<Access> dra::blockAccessSequence(const Function &F,
                                             uint32_t Block,
                                             const EncodingConfig &C) {
  std::vector<Access> Result;
  SpecialRegLookup Special(C);
  const BasicBlock &BB = F.Blocks[Block];
  for (uint32_t IIdx = 0, E = static_cast<uint32_t>(BB.Insts.size());
       IIdx != E; ++IIdx) {
    const Instruction &I = BB.Insts[IIdx];
    std::vector<unsigned> Fields = fieldOrder(I, C.Order);
    for (uint8_t Pos = 0; Pos != Fields.size(); ++Pos) {
      RegId R = I.regField(Fields[Pos]);
      if (Special.isSpecial(R))
        continue;
      Result.push_back({R, Block, IIdx, Pos});
    }
  }
  return Result;
}

std::vector<Access> dra::accessSequence(const Function &F,
                                        const EncodingConfig &C) {
  std::vector<Access> Result;
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    std::vector<Access> BlockSeq = blockAccessSequence(F, B, C);
    Result.insert(Result.end(), BlockSeq.begin(), BlockSeq.end());
  }
  return Result;
}
