//===- core/ClassedEncoder.cpp - Multi-class differential encoding --------===//

#include "core/ClassedEncoder.h"

#include "core/AccessSequence.h"

#include <cassert>

using namespace dra;

unsigned ClassedConfig::totalRegs() const {
  unsigned Total = 0;
  for (const RegClass &Cls : Classes)
    Total += static_cast<unsigned>(Cls.Members.size());
  return Total;
}

unsigned ClassedConfig::classOf(RegId R) const {
  for (unsigned Idx = 0; Idx != Classes.size(); ++Idx)
    for (RegId M : Classes[Idx].Members)
      if (M == R)
        return Idx;
  assert(false && "register not in any class");
  return 0;
}

unsigned ClassedConfig::localIndex(RegId R) const {
  unsigned Cls = classOf(R);
  for (unsigned I = 0; I != Classes[Cls].Members.size(); ++I)
    if (Classes[Cls].Members[I] == R)
      return I;
  assert(false && "register not in its class");
  return 0;
}

bool ClassedConfig::valid(unsigned NumRegs) const {
  std::vector<int> Owner(NumRegs, -1);
  for (unsigned Idx = 0; Idx != Classes.size(); ++Idx) {
    const RegClass &Cls = Classes[Idx];
    if (Cls.Members.empty() || Cls.DiffN == 0 || Cls.DiffW == 0)
      return false;
    if (Cls.DiffN > (1u << Cls.DiffW))
      return false;
    if (Cls.DiffN > Cls.Members.size())
      return false;
    for (RegId M : Cls.Members) {
      if (M >= NumRegs || Owner[M] != -1)
        return false;
      Owner[M] = static_cast<int>(Idx);
    }
  }
  for (int O : Owner)
    if (O == -1)
      return false;
  return true;
}

namespace {

/// Per-class decode state: NoReg-as-unknown plus a conflict flag.
struct ClassState {
  enum Kind : uint8_t { Unknown, Value, Conflict } K = Unknown;
  unsigned Local = 0; // Class-local index when K == Value.

  bool operator==(const ClassState &O) const {
    return K == O.K && (K != Value || Local == O.Local);
  }
  ClassState meet(const ClassState &O) const {
    if (K == Unknown)
      return O;
    if (O.K == Unknown)
      return *this;
    if (K == Conflict || O.K == Conflict)
      return {Conflict, 0};
    return Local == O.Local ? *this : ClassState{Conflict, 0};
  }
};

/// Per-block, per-class entry states of \p F (which may contain slr).
std::vector<std::vector<ClassState>>
classedEntryStates(const Function &F, const ClassedConfig &C) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumClasses = C.Classes.size();

  // Last writer per (block, class): class-local index, or -1.
  std::vector<std::vector<int>> LastWriter(
      NumBlocks, std::vector<int>(NumClasses, -1));
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    for (const Instruction &I : F.Blocks[B].Insts) {
      if (I.Op == Opcode::SetLastReg) {
        RegId R = static_cast<RegId>(I.Imm);
        LastWriter[B][C.classOf(R)] = static_cast<int>(C.localIndex(R));
        continue;
      }
      for (unsigned FieldPos : fieldOrder(I, C.Order)) {
        RegId R = I.regField(FieldPos);
        LastWriter[B][C.classOf(R)] = static_cast<int>(C.localIndex(R));
      }
    }
  }

  std::vector<std::vector<ClassState>> Entry(
      NumBlocks, std::vector<ClassState>(NumClasses));
  auto ExitOf = [&](uint32_t B, unsigned Cls) {
    if (LastWriter[B][Cls] >= 0)
      return ClassState{ClassState::Value,
                        static_cast<unsigned>(LastWriter[B][Cls])};
    return Entry[B][Cls];
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      for (unsigned Cls = 0; Cls != NumClasses; ++Cls) {
        // Function entry initializes every class's last_reg to local 0.
        ClassState New = B == 0 ? ClassState{ClassState::Value, 0}
                                : ClassState{};
        for (uint32_t Pred : F.Blocks[B].Preds)
          New = New.meet(ExitOf(Pred, Cls));
        if (!(New == Entry[B][Cls])) {
          Entry[B][Cls] = New;
          Changed = true;
        }
      }
    }
  }
  return Entry;
}

} // namespace

ClassedEncodedFunction
dra::encodeClassedFunction(const Function &F, const ClassedConfig &C) {
  assert(C.valid(F.NumRegs) && "invalid class partition for this function");
  size_t NumClasses = C.Classes.size();

  ClassedEncodedFunction Out;
  Out.Annotated = F;
  Out.Stats.PerClass.resize(NumClasses);

  std::vector<std::vector<ClassState>> Entry = classedEntryStates(F, C);

  size_t NumBlocks = F.Blocks.size();
  Out.Codes.resize(NumBlocks);

  for (uint32_t B = 0; B != NumBlocks; ++B) {
    const BasicBlock &OldBB = F.Blocks[B];
    std::vector<Instruction> NewInsts;
    std::vector<std::vector<uint8_t>> NewCodes;

    // Establish the per-class entry state; repair ambiguous classes that
    // are actually accessed in this block.
    std::vector<int> Last(NumClasses, -1);
    for (unsigned Cls = 0; Cls != NumClasses; ++Cls)
      if (Entry[B][Cls].K == ClassState::Value)
        Last[Cls] = static_cast<int>(Entry[B][Cls].Local);

    // First access per class in this block (for head repairs).
    std::vector<int> FirstLocal(NumClasses, -1);
    for (const Instruction &I : OldBB.Insts)
      for (unsigned FieldPos : fieldOrder(I, C.Order)) {
        RegId R = I.regField(FieldPos);
        unsigned Cls = C.classOf(R);
        if (FirstLocal[Cls] < 0)
          FirstLocal[Cls] = static_cast<int>(C.localIndex(R));
      }
    for (unsigned Cls = 0; Cls != NumClasses; ++Cls) {
      if (Last[Cls] >= 0 || FirstLocal[Cls] < 0)
        continue;
      Instruction Slr;
      Slr.Op = Opcode::SetLastReg;
      Slr.Imm = C.Classes[Cls].Members[FirstLocal[Cls]];
      Slr.Aux = 0;
      NewInsts.push_back(Slr);
      NewCodes.emplace_back();
      ++Out.Stats.PerClass[Cls].SetLastJoin;
      Last[Cls] = FirstLocal[Cls];
    }

    for (const Instruction &I : OldBB.Insts) {
      assert(I.Op != Opcode::SetLastReg && "input already annotated");
      std::vector<Instruction> Pending;
      std::vector<uint8_t> FieldCodes;
      std::vector<unsigned> Fields = fieldOrder(I, C.Order);
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        RegId R = I.regField(Fields[Pos]);
        unsigned Cls = C.classOf(R);
        unsigned N = static_cast<unsigned>(C.Classes[Cls].Members.size());
        unsigned LocalIdx = C.localIndex(R);
        assert(Last[Cls] >= 0 && "class state must be known here");
        unsigned Diff =
            (LocalIdx + N - static_cast<unsigned>(Last[Cls])) % N;
        if (Diff >= C.Classes[Cls].DiffN) {
          Instruction Slr;
          Slr.Op = Opcode::SetLastReg;
          Slr.Imm = R;
          Slr.Aux = Pos;
          Pending.push_back(Slr);
          ++Out.Stats.PerClass[Cls].SetLastRange;
          Diff = 0;
        }
        FieldCodes.push_back(static_cast<uint8_t>(Diff));
        Last[Cls] = static_cast<int>(LocalIdx);
        ++Out.Stats.PerClass[Cls].NumFields;
        Out.Stats.PerClass[Cls].FieldBits += C.Classes[Cls].DiffW;
      }
      for (const Instruction &Slr : Pending) {
        NewInsts.push_back(Slr);
        NewCodes.emplace_back();
      }
      NewInsts.push_back(I);
      NewCodes.push_back(std::move(FieldCodes));
    }

    Out.Annotated.Blocks[B].Insts = std::move(NewInsts);
    Out.Codes[B] = std::move(NewCodes);
  }

  Out.Annotated.recomputeCFG();
  for (EncodeStats &S : Out.Stats.PerClass)
    S.NumInsts = Out.Annotated.numInsts();
  return Out;
}

Function dra::decodeClassedFunction(const ClassedEncodedFunction &E,
                                    const ClassedConfig &C) {
  const Function &A = E.Annotated;
  Function Out = A;
  size_t NumClasses = C.Classes.size();

  std::vector<std::vector<ClassState>> Entry = classedEntryStates(A, C);

  for (uint32_t B = 0; B != A.Blocks.size(); ++B) {
    std::vector<int> Last(NumClasses, -1);
    for (unsigned Cls = 0; Cls != NumClasses; ++Cls)
      if (Entry[B][Cls].K == ClassState::Value)
        Last[Cls] = static_cast<int>(Entry[B][Cls].Local);

    std::vector<std::pair<uint32_t, RegId>> PendingSlr;
    const BasicBlock &BB = A.Blocks[B];
    for (uint32_t IIdx = 0; IIdx != BB.Insts.size(); ++IIdx) {
      const Instruction &I = BB.Insts[IIdx];
      if (I.Op == Opcode::SetLastReg) {
        RegId R = static_cast<RegId>(I.Imm);
        if (I.Aux == 0)
          Last[C.classOf(R)] = static_cast<int>(C.localIndex(R));
        else
          PendingSlr.push_back({I.Aux, R});
        continue;
      }
      const std::vector<uint8_t> &FieldCodes = E.Codes[B][IIdx];
      std::vector<unsigned> Fields = fieldOrder(I, C.Order);
      assert(FieldCodes.size() == Fields.size() && "code/field mismatch");
      Instruction &OutInst = Out.Blocks[B].Insts[IIdx];
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        for (const auto &[Delay, Value] : PendingSlr)
          if (Delay == Pos)
            Last[C.classOf(Value)] =
                static_cast<int>(C.localIndex(Value));
        // The field's class is known statically from the opcode/field
        // position in a real ISA; here we recover it from the annotated
        // instruction (the codes alone are class-ambiguous by design).
        RegId Annotated = I.regField(Fields[Pos]);
        unsigned Cls = C.classOf(Annotated);
        unsigned N = static_cast<unsigned>(C.Classes[Cls].Members.size());
        assert(Last[Cls] >= 0 && "decoding with unknown class state");
        unsigned LocalIdx =
            (static_cast<unsigned>(Last[Cls]) + FieldCodes[Pos]) % N;
        OutInst.setRegField(Fields[Pos], C.Classes[Cls].Members[LocalIdx]);
        Last[Cls] = static_cast<int>(LocalIdx);
      }
      PendingSlr.clear();
    }
  }
  return Out;
}

bool dra::verifyClassedDecodable(const Function &Annotated,
                                 const ClassedConfig &C, std::string *Err) {
  auto Fail = [&](uint32_t Block, const std::string &Msg) {
    if (Err)
      *Err = "bb" + std::to_string(Block) + ": " + Msg;
    return false;
  };
  std::vector<std::vector<ClassState>> Entry =
      classedEntryStates(Annotated, C);

  // Reachability.
  std::vector<uint8_t> Reachable(Annotated.Blocks.size(), 0);
  std::vector<uint32_t> Work{0};
  Reachable[0] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : Annotated.Blocks[B].Succs)
      if (!Reachable[S]) {
        Reachable[S] = 1;
        Work.push_back(S);
      }
  }

  for (uint32_t B = 0; B != Annotated.Blocks.size(); ++B) {
    if (!Reachable[B])
      continue;
    std::vector<ClassState> State = Entry[B];
    std::vector<std::pair<uint32_t, RegId>> PendingSlr;
    for (const Instruction &I : Annotated.Blocks[B].Insts) {
      if (I.Op == Opcode::SetLastReg) {
        RegId R = static_cast<RegId>(I.Imm);
        if (I.Aux == 0)
          State[C.classOf(R)] = {ClassState::Value, C.localIndex(R)};
        else
          PendingSlr.push_back({I.Aux, R});
        continue;
      }
      std::vector<unsigned> Fields = fieldOrder(I, C.Order);
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        for (const auto &[Delay, Value] : PendingSlr)
          if (Delay == Pos)
            State[C.classOf(Value)] = {ClassState::Value,
                                       C.localIndex(Value)};
        RegId R = I.regField(Fields[Pos]);
        unsigned Cls = C.classOf(R);
        if (State[Cls].K != ClassState::Value)
          return Fail(B, "field decoded with ambiguous class state");
        unsigned N = static_cast<unsigned>(C.Classes[Cls].Members.size());
        unsigned Diff =
            (C.localIndex(R) + N - State[Cls].Local) % N;
        if (Diff >= C.Classes[Cls].DiffN)
          return Fail(B, "difference out of range without set_last_reg");
        State[Cls] = {ClassState::Value, C.localIndex(R)};
      }
      PendingSlr.clear();
    }
  }
  return true;
}
