//===- core/Portfolio.h - Scheme-portfolio racing + chooser -----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheme portfolio: race a configurable set of pipeline arms (scheme
/// + optional remap restart budget) over one function and commit the
/// winner by the deterministic `(encoded-cost, arm-index)` reduction rule
/// — the same shape as the remap search's `(cost, start-index)` winner
/// rule, so results are bit-identical at any `Jobs`.
///
/// **Winner rule.** Every arm's result is scored by `encodedCost()`, a
/// packed 64-bit integer over the final static overhead counts
/// (`SpillInsts` in the high half, `SetLastRegs` in the low half). The
/// committed result is the arm with the smallest cost; equal costs go to
/// the lowest arm index. The reduction runs in fixed index order over an
/// index-addressed result array, so scheduling never leaks into the
/// outcome.
///
/// **Cancellation.** The only work-skipping is the zero-cost cutoff: an
/// arm that has not started yet is skipped when a *lower-indexed* arm
/// already finished with cost 0. Cost 0 is globally minimal and the tie
/// break prefers the lower index, so no skipped arm could have won —
/// cancellation can change how much work runs, never what is committed.
/// Arms already running are never torn down (pipeline stages are not
/// interruptible); the shared bound is advisory.
///
/// **Chooser.** In `Choose` mode a trained-offline decision table
/// (portfolio-v1 JSON, fit by `tools/dra-tune` from a
/// `dra-batch --portfolio-train` corpus sweep) maps the function's
/// feature vector (core/Features.h) to a predicted-best arm. Predictions
/// at or above `MinConfidence` compile once with that arm; anything less
/// falls back to the full race, whose committed bytes are identical to
/// `Race` mode by the winner rule above.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_PORTFOLIO_H
#define DRA_CORE_PORTFOLIO_H

#include "core/Scheme.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dra {

class Function;
class MetricsRegistry;
struct PipelineConfig;
struct PipelineResult;

/// How runPipeline treats PipelineConfig::Portfolio.
enum class PortfolioMode : uint8_t {
  Off,    ///< Single-scheme pipeline; the portfolio block is inert.
  Race,   ///< Race every arm, commit the (cost, arm-index) winner.
  Choose, ///< Decision-table prediction; race below MinConfidence.
};

/// "off" / "race" / "choose".
const char *portfolioModeName(PortfolioMode M);
bool parsePortfolioMode(const std::string &Name, PortfolioMode &Out);

/// Lower-case machine name of \p S ("baseline", "ospill", "remap",
/// "select", "coalesce") — the spelling the portfolio-v1 / train-v1 JSON
/// documents and the wire protocol use, as opposed to schemeName()'s
/// display names.
const char *portfolioSchemeKey(Scheme S);
bool parsePortfolioSchemeKey(const std::string &Name, Scheme &Out);

/// One racing arm: a scheme plus an optional remap restart budget.
struct PortfolioArm {
  Scheme S = Scheme::Coalesce;
  /// Remap restart budget for this arm; 0 inherits the enclosing
  /// config's Remap.NumStarts.
  unsigned RemapStarts = 0;

  bool operator==(const PortfolioArm &O) const {
    return S == O.S && RemapStarts == O.RemapStarts;
  }
};

//===----------------------------------------------------------------------===//
// Decision table (portfolio-v1)
//===----------------------------------------------------------------------===//

/// One node of the offline-trained decision tree. Interior nodes route
/// `feature[Feature] <= Threshold` to Left, else Right; leaves carry the
/// predicted arm with its training purity and sample count.
struct DecisionNode {
  int Feature = -1;      ///< Split feature index; < 0 marks a leaf.
  double Threshold = 0;  ///< Split threshold (go left when <=).
  int Left = -1;         ///< Child node index (interior nodes).
  int Right = -1;        ///< Child node index (interior nodes).
  int Arm = -1;          ///< Leaf: predicted arm index (into Arms).
  double Confidence = 0; ///< Leaf: training purity in [0, 1].
  unsigned Samples = 0;  ///< Leaf: training samples that landed here.
};

/// Outcome of one table lookup.
struct DecisionPrediction {
  int Arm = -1; ///< Predicted arm index into DecisionTable::Arms; -1 if
                ///< the table is empty/invalid.
  double Confidence = 0;
  unsigned Samples = 0;
};

/// The trained-offline chooser model: an axis-aligned decision tree over
/// the core/Features.h vector, serialized as portfolio-v1 JSON. Fit by
/// tools/dra-tune; loaded by dra-server --portfolio-table and the
/// dra-opt/dra-batch --portfolio-table flags.
struct DecisionTable {
  /// Feature schema; must equal featureNames() to be valid.
  std::vector<std::string> Features;
  /// The arm vocabulary predictions index into.
  std::vector<PortfolioArm> Arms;
  /// Tree nodes; Nodes[0] is the root. Children always have larger
  /// indices than their parent (checked by valid()), so the tree is
  /// acyclic by construction.
  std::vector<DecisionNode> Nodes;

  /// Routes \p FeatureVector (featureNames() order) to a leaf.
  DecisionPrediction predict(const std::vector<double> &FeatureVector) const;

  /// Structural validity: non-empty, schema matches featureNames(),
  /// every index in range, children strictly after parents, leaves carry
  /// a valid arm.
  bool valid(std::string *Err = nullptr) const;

  /// FNV-1a over the full serialized content — the cache key component
  /// for choose mode, so swapping tables never replays stale results.
  uint64_t fingerprint() const;

  /// portfolio-v1 JSON document (what dra-tune writes).
  std::string toJson() const;

  /// Parses and validates a portfolio-v1 document.
  static bool fromJson(const std::string &Text, DecisionTable &Out,
                       std::string *Err);
};

//===----------------------------------------------------------------------===//
// Portfolio configuration
//===----------------------------------------------------------------------===//

/// The portfolio block of PipelineConfig.
struct PortfolioConfig {
  PortfolioMode Mode = PortfolioMode::Off;
  /// Racing arms in commitment-priority order; empty selects
  /// defaultPortfolioArms(). Part of the cache key.
  std::vector<PortfolioArm> Arms;
  /// Pool workers for one race: 0 = one worker per arm, 1 = exact serial
  /// semantics. Pure wall-clock knob — results are bit-identical at any
  /// value — and therefore excluded from the cache key, like Remap.Jobs.
  /// Each race runs on its own transient pool, so racing nests safely
  /// inside BatchCompiler / server worker tasks.
  unsigned Jobs = 1;
  /// Choose mode: predictions below this confidence fall back to racing.
  double MinConfidence = 0.75;
  /// Choose mode: the trained table (borrowed, caller keeps it alive);
  /// null falls back to racing every function. The table's fingerprint
  /// (not the pointer) joins the cache key.
  const DecisionTable *Table = nullptr;
  /// Optional sink for the portfolio.* counters (races, wins by scheme,
  /// cancelled arms, chooser hits/races/mispredicts). Falls back to
  /// PipelineConfig::Metrics when null. Not part of the cache key.
  MetricsRegistry *Metrics = nullptr;
};

/// The default racing set: the paper's three differential schemes, in
/// cost-priority order (coalesce first — the strongest scheme wins ties).
std::vector<PortfolioArm> defaultPortfolioArms();

/// \p PC's arm list with the empty-means-default rule applied.
std::vector<PortfolioArm> resolvedPortfolioArms(const PortfolioConfig &PC);

/// The deterministic scalar the winner rule minimizes: packed
/// `(SpillInsts << 32) | SetLastRegs`, each half saturated — the overhead
/// the differential encoding could not hide. Code size is deliberately
/// excluded: equal-overhead results differ only in residual moves, and
/// the fixed arm order keeps that choice deterministic.
uint64_t encodedCost(const PipelineResult &R);

/// What one portfolio invocation did (for tests and metrics).
struct PortfolioOutcome {
  unsigned WinnerArm = 0;  ///< Index into the resolved arm list.
  uint64_t WinnerCost = 0; ///< encodedCost of the committed result.
  /// Per-arm costs; UINT64_MAX marks an arm cancelled by the zero-cost
  /// cutoff (or not raced in a confident choose).
  std::vector<uint64_t> ArmCosts;
  unsigned ArmsRun = 0;
  unsigned ArmsCancelled = 0;
  bool ChooserConfident = false; ///< Choose mode compiled one arm.
  bool ChooserRaced = false;     ///< Choose mode fell back to racing.
  int PredictedArm = -1;         ///< Resolved-arm index the table
                                 ///< predicted; -1 = no usable prediction.
};

/// Runs the portfolio for \p C (C.Portfolio.Mode must not be Off) and
/// returns the committed result. Never consults or writes any cache and
/// never flushes pipeline metrics for the losing arms — each arm runs
/// with a cache-less, metrics-less copy of \p C. When \p WinnerConfig is
/// non-null it receives the committed arm's concrete single-scheme config
/// (Mode Off), whose cache key is exactly what a direct request for that
/// scheme would compute. \p Outcome (optional) receives the race record.
PipelineResult runPortfolio(const Function &Src, const PipelineConfig &C,
                            PipelineConfig *WinnerConfig = nullptr,
                            PortfolioOutcome *Outcome = nullptr);

} // namespace dra

#endif // DRA_CORE_PORTFOLIO_H
