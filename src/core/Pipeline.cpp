//===- core/Pipeline.cpp - End-to-end allocation pipelines ----------------===//

#include "core/Pipeline.h"

#include "adt/Arena.h"
#include "analysis/LoopInfo.h"
#include "core/DiffSelectHook.h"
#include "core/OperandSwap.h"
#include "driver/Trace.h"

using namespace dra;

const char *dra::schemeName(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::OSpill:
    return "O-spill";
  case Scheme::Remap:
    return "remapping";
  case Scheme::Select:
    return "select";
  case Scheme::Coalesce:
    return "coalesce";
  }
  assert(false && "unknown scheme");
  return "<bad>";
}

namespace {

/// Depth-0 stage span over the result's span list (see driver/Metrics.h).
/// The cost is two clock reads per stage — noise next to any allocation
/// stage.
class StageTimer {
public:
  StageTimer(PipelineResult &R, const char *Stage)
      : Span(&R.Spans, Stage, /*Depth=*/0) {}

private:
  ScopedSpan Span;
};

/// Fills the final static counts of \p R from R.F.
void finalizeCounts(PipelineResult &R) {
  R.NumInsts = R.F.numInsts();
  R.SpillInsts = R.F.numSpillInsts();
  R.SetLastRegs = R.F.numSetLastRegs();
  R.CodeBytes = codeSizeBytes(R.F);
}

/// Direct-encoding stand-in configuration for the coalesce driver when it
/// runs in the non-differential (O-spill) arm: every difference is
/// representable, so no encoding cost exists.
EncodingConfig directConfig(unsigned K) {
  EncodingConfig C;
  C.RegN = K;
  C.DiffN = K;
  unsigned W = 0;
  while ((1u << W) < K)
    ++W;
  C.DiffW = std::max(1u, W);
  return C;
}

/// Frequency-weighted count of instructions satisfying \p Pred — the
/// static benefit/cost estimate the adaptive mode compares (Section 8.2).
template <typename PredT>
double weightedCount(const Function &F, PredT Pred) {
  Function Copy = F;
  Copy.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(Copy);
  double Total = 0;
  for (uint32_t B = 0, E = static_cast<uint32_t>(Copy.Blocks.size()); B != E;
       ++B)
    for (const Instruction &I : Copy.Blocks[B].Insts)
      if (Pred(I))
        Total += LI.frequency(B);
  return Total;
}

PipelineResult runOnce(const Function &Src, const PipelineConfig &C) {
  PipelineResult R;
  R.F = Src;

  // One bump arena per pipeline run: every stage's graph-build scratch
  // (liveness worklists, interference bit rows) is carved from it and
  // released wholesale when the run ends.
  Arena RunArena;

  switch (C.S) {
  case Scheme::Baseline: {
    StageTimer T(R, "alloc");
    R.Alloc = allocateGraphColoring(R.F, C.BaselineK, nullptr,
                                    /*MaxIterations=*/60, nullptr, &R.Spans);
    break;
  }
  case Scheme::OSpill: {
    {
      StageTimer T(R, "ospill");
      R.OSpill = optimalSpill(R.F, C.BaselineK, C.ILPNodeBudget, &R.Spans,
                              &RunArena);
    }
    StageTimer T(R, "coalesce");
    CoalesceOptions CO = C.Coalesce;
    CO.DiffAware = false;
    R.Coalesce = coalesceAndColor(R.F, directConfig(C.BaselineK), CO,
                                  &R.Spans, &RunArena);
    break;
  }
  case Scheme::Remap: {
    {
      StageTimer T(R, "alloc");
      R.Alloc = allocateGraphColoring(R.F, C.Enc.RegN, nullptr,
                                      /*MaxIterations=*/60, nullptr,
                                      &R.Spans);
    }
    StageTimer T(R, "remap");
    R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    R.DiffEncoded = true;
    break;
  }
  case Scheme::Select: {
    DiffSelectHook Hook(C.Enc);
    std::vector<RegId> ColorOf;
    {
      StageTimer T(R, "alloc");
      R.Alloc = allocateGraphColoring(R.F, C.Enc.RegN, &Hook,
                                      /*MaxIterations=*/60, &ColorOf,
                                      &R.Spans);
    }
    // Refine the select-stage assignment at live-range granularity before
    // rewriting (see core/Recolor.h), then run the register-level
    // remapping post-pass of Section 3.
    {
      StageTimer T(R, "recolor");
      R.Recolor = recolorColoring(R.F, C.Enc, ColorOf, {}, &RunArena);
      rewriteToPhysical(R.F, ColorOf, C.Enc.RegN, &R.Alloc.MovesRemoved);
      R.F.NumRegs = C.Enc.RegN;
    }
    if (C.RemapPostPass) {
      StageTimer T(R, "remap");
      R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    }
    R.DiffEncoded = true;
    break;
  }
  case Scheme::Coalesce: {
    {
      StageTimer T(R, "ospill");
      R.OSpill = optimalSpill(R.F, C.Enc.RegN, C.ILPNodeBudget, &R.Spans,
                              &RunArena);
    }
    {
      StageTimer T(R, "coalesce");
      CoalesceOptions CO = C.Coalesce;
      CO.DiffAware = true;
      R.Coalesce = coalesceAndColor(R.F, C.Enc, CO, &R.Spans, &RunArena);
    }
    if (C.RemapPostPass) {
      StageTimer T(R, "remap");
      R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    }
    R.DiffEncoded = true;
    break;
  }
  }

  if (R.DiffEncoded) {
    // Section 9.4 access-order flexibility: commutative operand swapping
    // removes out-of-range transitions the assignment could not avoid.
    StageTimer T(R, "encode");
    swapCommutativeOperands(R.F, C.Enc);
    EncodedFunction Encoded = encodeFunction(R.F, C.Enc);
    R.Enc = Encoded.Stats;
    R.F = std::move(Encoded.Annotated);
  }
  finalizeCounts(R);
  return R;
}

/// Flushes the result's locally-accumulated event counters into \p M,
/// labeled {scheme, function}. Satellite of the zero-cost rule: all the
/// counters below were maintained as plain integers inside the
/// algorithms; the only registry traffic is this one flush per run.
void flushPipelineMetrics(MetricsRegistry &M, const PipelineConfig &C,
                          const PipelineResult &R, const Function &Src) {
  // Portfolio requests label as "auto" rather than the winning scheme:
  // the label identifies the *request* config, and keeping it stable
  // across hit/miss (a warm hit does not re-race) keeps the series
  // comparable. Which scheme won is portfolio.wins{scheme=...}'s job.
  const char *SchemeL = C.Portfolio.Mode != PortfolioMode::Off
                            ? "auto"
                            : schemeName(C.S);
  MetricLabels L{{"scheme", SchemeL},
                 {"function", Src.Name.empty() ? "<anon>" : Src.Name}};
  auto Count = [&](const char *Name, double V) { M.count(Name, V, L); };
  auto Gauge = [&](const char *Name, double V) { M.gauge(Name, V, L); };

  // Whole-pipeline outcome.
  Count("pipeline.functions", 1);
  Count("pipeline.insts", static_cast<double>(R.NumInsts));
  Count("pipeline.spill_insts", static_cast<double>(R.SpillInsts));
  Count("pipeline.set_last_regs", static_cast<double>(R.SetLastRegs));
  Count("pipeline.code_bytes", static_cast<double>(R.CodeBytes));
  Count("pipeline.adaptive_fallbacks", R.AdaptiveFellBack ? 1 : 0);

  // Iterated register coalescing (Baseline/Remap/Select arms).
  Count("alloc.rounds", R.Alloc.Iterations);
  Count("alloc.spilled_ranges", static_cast<double>(R.Alloc.SpilledRanges));
  Count("alloc.spill_loads", static_cast<double>(R.Alloc.SpillLoads));
  Count("alloc.spill_stores", static_cast<double>(R.Alloc.SpillStores));
  Count("alloc.moves_removed", static_cast<double>(R.Alloc.MovesRemoved));
  Count("alloc.moves_remaining",
        static_cast<double>(R.Alloc.MovesRemaining));
  Count("alloc.simplify_steps", static_cast<double>(R.Alloc.SimplifySteps));
  Count("alloc.freeze_steps", static_cast<double>(R.Alloc.FreezeSteps));
  Count("alloc.spill_selects", static_cast<double>(R.Alloc.SpillSelects));
  Count("alloc.coalesce_briggs",
        static_cast<double>(R.Alloc.CoalesceBriggs));
  Count("alloc.coalesce_george",
        static_cast<double>(R.Alloc.CoalesceGeorge));
  Count("alloc.coalesce_constrained",
        static_cast<double>(R.Alloc.CoalesceConstrained));
  Count("alloc.coalesce_deferred",
        static_cast<double>(R.Alloc.CoalesceDeferred));

  // Optimal spilling (OSpill/Coalesce arms).
  Count("ospill.rounds", R.OSpill.Rounds);
  Count("ospill.spilled_ranges",
        static_cast<double>(R.OSpill.SpilledRanges));
  Count("ospill.ilp_constraints",
        static_cast<double>(R.OSpill.ILPConstraints));
  Count("ospill.ilp_variables",
        static_cast<double>(R.OSpill.ILPVariables));
  Count("ospill.ilp_suboptimal", R.OSpill.ILPOptimal ? 0 : 1);

  // Differential coalesce (oracle-driven search).
  Count("coalesce.steps", R.Coalesce.Steps);
  Count("coalesce.moves_coalesced",
        static_cast<double>(R.Coalesce.MovesCoalesced));
  Count("coalesce.moves_remaining",
        static_cast<double>(R.Coalesce.MovesRemaining));
  Count("coalesce.extra_spilled_ranges",
        static_cast<double>(R.Coalesce.ExtraSpilledRanges));
  Count("coalesce.oracle_calls",
        static_cast<double>(R.Coalesce.OracleCalls));
  Count("coalesce.probes", static_cast<double>(R.Coalesce.ProbesAttempted));
  Count("coalesce.probes_uncolorable",
        static_cast<double>(R.Coalesce.ProbesUncolorable));
  Count("coalesce.spill_restarts", R.Coalesce.SpillRestarts);
  Gauge("coalesce.final_adj_cost", R.Coalesce.FinalAdjCost);

  // Recoloring descent (Select/Coalesce arms).
  Count("recolor.sweeps", R.Recolor.Sweeps);
  Count("recolor.changes", static_cast<double>(R.Recolor.Changes));
  Count("recolor.clusters", static_cast<double>(R.Recolor.Clusters));
  Count("recolor.candidate_evals",
        static_cast<double>(R.Recolor.CandidateEvals));
  Gauge("recolor.cost_before", R.Recolor.CostBefore);
  Gauge("recolor.cost_after", R.Recolor.CostAfter);

  // Remapping post-pass.
  Count("remap.starts", R.Remap.StartsRun);
  Count("remap.swaps_evaluated",
        static_cast<double>(R.Remap.SwapsEvaluated));
  Count("remap.swaps_applied", static_cast<double>(R.Remap.SwapsApplied));
  Count("remap.starts_cutoff", R.Remap.StartsCutOff);
  Count("remap.delta_arc_visits",
        static_cast<double>(R.Remap.DeltaArcsVisited));
  Count("remap.delta_recost_savings",
        static_cast<double>(R.Remap.DeltaRecostSavings));
  Count("remap.exhaustive", R.Remap.Exhaustive ? 1 : 0);
  Gauge("remap.cost_before", R.Remap.CostBefore);
  Gauge("remap.cost_after", R.Remap.CostAfter);

  // Differential encoder repairs (satellite: EncodeStats wired through).
  Count("encode.set_last_join", static_cast<double>(R.Enc.SetLastJoin));
  Count("encode.set_last_range", static_cast<double>(R.Enc.SetLastRange));
  Count("encode.fields", static_cast<double>(R.Enc.NumFields));
  Count("encode.field_bits", static_cast<double>(R.Enc.FieldBits));

  // Per-stage wall clock, one histogram series per (scheme, stage); the
  // function label is dropped to bound series cardinality.
  for (const StageSpan &S : R.Spans) {
    MetricLabels SL{{"scheme", SchemeL}, {"stage", S.Stage}};
    M.observe(S.Depth == 0 ? "stage_us" : "substage_us",
              static_cast<double>(S.EndNs - S.BeginNs) / 1000.0, SL);
  }
}

/// The pipeline proper (including the adaptive fallback), minus the
/// metrics flush.
PipelineResult runPipelineImpl(const Function &Src, const PipelineConfig &C) {
  PipelineResult R = runOnce(Src, C);
  if (!C.AdaptiveEnable || C.S == Scheme::Baseline || C.S == Scheme::OSpill)
    return R;

  // Section 8.2: compare the frequency-weighted dynamic estimate of the
  // differential scheme (spills saved) against its set_last_reg overhead;
  // fall back to the baseline when the encoding does not pay off.
  PipelineConfig BaseCfg = C;
  BaseCfg.S = Scheme::Baseline;
  BaseCfg.AdaptiveEnable = false;
  PipelineResult Base = runOnce(Src, BaseCfg);

  auto IsSpill = [](const Instruction &I) { return I.isSpill(); };
  auto IsSlr = [](const Instruction &I) {
    return I.Op == Opcode::SetLastReg;
  };
  double Benefit = weightedCount(Base.F, IsSpill) -
                   weightedCount(R.F, IsSpill) -
                   weightedCount(R.F, IsSlr);
  if (Benefit >= 0)
    return R;
  Base.AdaptiveFellBack = true;
  // The discarded differential attempt was real compile time: keep its
  // spans ahead of the baseline's so telemetry accounts for all of it.
  Base.Spans.insert(Base.Spans.begin(), R.Spans.begin(), R.Spans.end());
  return Base;
}

} // namespace

PipelineResult dra::runPipeline(const Function &Src, const PipelineConfig &C) {
  PipelineResult R;
  // Cache consult first: a hit replays the stored result (counters and
  // all), so the metrics flush below is identical on both paths; only the
  // wall-clock Spans are absent on a hit.
  bool Hit = C.Cache && C.Cache->lookup(Src, C, R);
  if (!Hit) {
    if (C.Portfolio.Mode != PortfolioMode::Off) {
      // Portfolio dispatch: race (or choose) among the arms; each arm
      // re-enters runPipeline with the portfolio stripped, so the
      // recursion is one level deep. The winner stores under the
      // portfolio key *and* under the winning arm's concrete
      // single-scheme key — a later direct request for that scheme hits
      // the same entry.
      PipelineConfig WinnerCfg;
      R = runPortfolio(Src, C, &WinnerCfg);
      if (C.Cache) {
        C.Cache->store(Src, C, R);
        C.Cache->store(Src, WinnerCfg, R);
      }
    } else {
      R = runPipelineImpl(Src, C);
      if (C.Cache)
        C.Cache->store(Src, C, R);
    }
  }
  if (C.Metrics)
    flushPipelineMetrics(*C.Metrics, C, R, Src);
  // Mirror the stage spans into the request-scoped trace (absent on the
  // hit path, where the cache layer records its probe spans instead). The
  // whole pipeline runs on the calling thread, so record() attributes
  // every span correctly; +2 rebases stage depth under the server's
  // request(0)/compile(1) spans.
  if (C.Trace)
    for (const StageSpan &S : R.Spans)
      C.Trace->record(S.Stage, S.BeginNs, S.EndNs, S.Depth + 2);
  return R;
}
