//===- core/Pipeline.cpp - End-to-end allocation pipelines ----------------===//

#include "core/Pipeline.h"

#include "analysis/LoopInfo.h"
#include "core/DiffSelectHook.h"
#include "core/OperandSwap.h"

#include <chrono>

using namespace dra;

const char *dra::schemeName(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::OSpill:
    return "O-spill";
  case Scheme::Remap:
    return "remapping";
  case Scheme::Select:
    return "select";
  case Scheme::Coalesce:
    return "coalesce";
  }
  assert(false && "unknown scheme");
  return "<bad>";
}

namespace {

uint64_t steadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Appends a StageSpan covering its own lifetime to the result. The cost
/// is two clock reads per stage — noise next to any allocation stage.
class StageTimer {
public:
  StageTimer(PipelineResult &R, const char *Stage)
      : R(R), Stage(Stage), Begin(steadyNs()) {}
  ~StageTimer() { R.Spans.push_back({Stage, Begin, steadyNs()}); }

private:
  PipelineResult &R;
  const char *Stage;
  uint64_t Begin;
};

/// Fills the final static counts of \p R from R.F.
void finalizeCounts(PipelineResult &R) {
  R.NumInsts = R.F.numInsts();
  R.SpillInsts = R.F.numSpillInsts();
  R.SetLastRegs = R.F.numSetLastRegs();
  R.CodeBytes = codeSizeBytes(R.F);
}

/// Direct-encoding stand-in configuration for the coalesce driver when it
/// runs in the non-differential (O-spill) arm: every difference is
/// representable, so no encoding cost exists.
EncodingConfig directConfig(unsigned K) {
  EncodingConfig C;
  C.RegN = K;
  C.DiffN = K;
  unsigned W = 0;
  while ((1u << W) < K)
    ++W;
  C.DiffW = std::max(1u, W);
  return C;
}

/// Frequency-weighted count of instructions satisfying \p Pred — the
/// static benefit/cost estimate the adaptive mode compares (Section 8.2).
template <typename PredT>
double weightedCount(const Function &F, PredT Pred) {
  Function Copy = F;
  Copy.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(Copy);
  double Total = 0;
  for (uint32_t B = 0, E = static_cast<uint32_t>(Copy.Blocks.size()); B != E;
       ++B)
    for (const Instruction &I : Copy.Blocks[B].Insts)
      if (Pred(I))
        Total += LI.frequency(B);
  return Total;
}

PipelineResult runOnce(const Function &Src, const PipelineConfig &C) {
  PipelineResult R;
  R.F = Src;

  switch (C.S) {
  case Scheme::Baseline: {
    StageTimer T(R, "alloc");
    R.Alloc = allocateGraphColoring(R.F, C.BaselineK);
    break;
  }
  case Scheme::OSpill: {
    {
      StageTimer T(R, "ospill");
      R.OSpill = optimalSpill(R.F, C.BaselineK, C.ILPNodeBudget);
    }
    StageTimer T(R, "coalesce");
    CoalesceOptions CO = C.Coalesce;
    CO.DiffAware = false;
    R.Coalesce = coalesceAndColor(R.F, directConfig(C.BaselineK), CO);
    break;
  }
  case Scheme::Remap: {
    {
      StageTimer T(R, "alloc");
      R.Alloc = allocateGraphColoring(R.F, C.Enc.RegN);
    }
    StageTimer T(R, "remap");
    R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    R.DiffEncoded = true;
    break;
  }
  case Scheme::Select: {
    DiffSelectHook Hook(C.Enc);
    std::vector<RegId> ColorOf;
    {
      StageTimer T(R, "alloc");
      R.Alloc = allocateGraphColoring(R.F, C.Enc.RegN, &Hook,
                                      /*MaxIterations=*/60, &ColorOf);
    }
    // Refine the select-stage assignment at live-range granularity before
    // rewriting (see core/Recolor.h), then run the register-level
    // remapping post-pass of Section 3.
    {
      StageTimer T(R, "recolor");
      R.Recolor = recolorColoring(R.F, C.Enc, ColorOf);
      rewriteToPhysical(R.F, ColorOf, C.Enc.RegN, &R.Alloc.MovesRemoved);
      R.F.NumRegs = C.Enc.RegN;
    }
    if (C.RemapPostPass) {
      StageTimer T(R, "remap");
      R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    }
    R.DiffEncoded = true;
    break;
  }
  case Scheme::Coalesce: {
    {
      StageTimer T(R, "ospill");
      R.OSpill = optimalSpill(R.F, C.Enc.RegN, C.ILPNodeBudget);
    }
    {
      StageTimer T(R, "coalesce");
      CoalesceOptions CO = C.Coalesce;
      CO.DiffAware = true;
      R.Coalesce = coalesceAndColor(R.F, C.Enc, CO);
    }
    if (C.RemapPostPass) {
      StageTimer T(R, "remap");
      R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    }
    R.DiffEncoded = true;
    break;
  }
  }

  if (R.DiffEncoded) {
    // Section 9.4 access-order flexibility: commutative operand swapping
    // removes out-of-range transitions the assignment could not avoid.
    StageTimer T(R, "encode");
    swapCommutativeOperands(R.F, C.Enc);
    EncodedFunction Encoded = encodeFunction(R.F, C.Enc);
    R.Enc = Encoded.Stats;
    R.F = std::move(Encoded.Annotated);
  }
  finalizeCounts(R);
  return R;
}

} // namespace

PipelineResult dra::runPipeline(const Function &Src, const PipelineConfig &C) {
  PipelineResult R = runOnce(Src, C);
  if (!C.AdaptiveEnable || C.S == Scheme::Baseline || C.S == Scheme::OSpill)
    return R;

  // Section 8.2: compare the frequency-weighted dynamic estimate of the
  // differential scheme (spills saved) against its set_last_reg overhead;
  // fall back to the baseline when the encoding does not pay off.
  PipelineConfig BaseCfg = C;
  BaseCfg.S = Scheme::Baseline;
  BaseCfg.AdaptiveEnable = false;
  PipelineResult Base = runOnce(Src, BaseCfg);

  auto IsSpill = [](const Instruction &I) { return I.isSpill(); };
  auto IsSlr = [](const Instruction &I) {
    return I.Op == Opcode::SetLastReg;
  };
  double Benefit = weightedCount(Base.F, IsSpill) -
                   weightedCount(R.F, IsSpill) -
                   weightedCount(R.F, IsSlr);
  if (Benefit >= 0)
    return R;
  Base.AdaptiveFellBack = true;
  // The discarded differential attempt was real compile time: keep its
  // spans ahead of the baseline's so telemetry accounts for all of it.
  Base.Spans.insert(Base.Spans.begin(), R.Spans.begin(), R.Spans.end());
  return Base;
}
