//===- core/Pipeline.cpp - End-to-end allocation pipelines ----------------===//

#include "core/Pipeline.h"

#include "analysis/LoopInfo.h"
#include "core/DiffSelectHook.h"
#include "core/OperandSwap.h"

using namespace dra;

const char *dra::schemeName(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::OSpill:
    return "O-spill";
  case Scheme::Remap:
    return "remapping";
  case Scheme::Select:
    return "select";
  case Scheme::Coalesce:
    return "coalesce";
  }
  assert(false && "unknown scheme");
  return "<bad>";
}

namespace {

/// Fills the final static counts of \p R from R.F.
void finalizeCounts(PipelineResult &R) {
  R.NumInsts = R.F.numInsts();
  R.SpillInsts = R.F.numSpillInsts();
  R.SetLastRegs = R.F.numSetLastRegs();
  R.CodeBytes = codeSizeBytes(R.F);
}

/// Direct-encoding stand-in configuration for the coalesce driver when it
/// runs in the non-differential (O-spill) arm: every difference is
/// representable, so no encoding cost exists.
EncodingConfig directConfig(unsigned K) {
  EncodingConfig C;
  C.RegN = K;
  C.DiffN = K;
  unsigned W = 0;
  while ((1u << W) < K)
    ++W;
  C.DiffW = std::max(1u, W);
  return C;
}

/// Frequency-weighted count of instructions satisfying \p Pred — the
/// static benefit/cost estimate the adaptive mode compares (Section 8.2).
template <typename PredT>
double weightedCount(const Function &F, PredT Pred) {
  Function Copy = F;
  Copy.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(Copy);
  double Total = 0;
  for (uint32_t B = 0, E = static_cast<uint32_t>(Copy.Blocks.size()); B != E;
       ++B)
    for (const Instruction &I : Copy.Blocks[B].Insts)
      if (Pred(I))
        Total += LI.frequency(B);
  return Total;
}

PipelineResult runOnce(const Function &Src, const PipelineConfig &C) {
  PipelineResult R;
  R.F = Src;

  switch (C.S) {
  case Scheme::Baseline: {
    R.Alloc = allocateGraphColoring(R.F, C.BaselineK);
    break;
  }
  case Scheme::OSpill: {
    R.OSpill = optimalSpill(R.F, C.BaselineK, C.ILPNodeBudget);
    CoalesceOptions CO = C.Coalesce;
    CO.DiffAware = false;
    R.Coalesce = coalesceAndColor(R.F, directConfig(C.BaselineK), CO);
    break;
  }
  case Scheme::Remap: {
    R.Alloc = allocateGraphColoring(R.F, C.Enc.RegN);
    R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    R.DiffEncoded = true;
    break;
  }
  case Scheme::Select: {
    DiffSelectHook Hook(C.Enc);
    std::vector<RegId> ColorOf;
    R.Alloc = allocateGraphColoring(R.F, C.Enc.RegN, &Hook,
                                    /*MaxIterations=*/60, &ColorOf);
    // Refine the select-stage assignment at live-range granularity before
    // rewriting (see core/Recolor.h), then run the register-level
    // remapping post-pass of Section 3.
    R.Recolor = recolorColoring(R.F, C.Enc, ColorOf);
    rewriteToPhysical(R.F, ColorOf, C.Enc.RegN, &R.Alloc.MovesRemoved);
    R.F.NumRegs = C.Enc.RegN;
    if (C.RemapPostPass)
      R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    R.DiffEncoded = true;
    break;
  }
  case Scheme::Coalesce: {
    R.OSpill = optimalSpill(R.F, C.Enc.RegN, C.ILPNodeBudget);
    CoalesceOptions CO = C.Coalesce;
    CO.DiffAware = true;
    R.Coalesce = coalesceAndColor(R.F, C.Enc, CO);
    if (C.RemapPostPass)
      R.Remap = remapFunction(R.F, C.Enc, C.Remap);
    R.DiffEncoded = true;
    break;
  }
  }

  if (R.DiffEncoded) {
    // Section 9.4 access-order flexibility: commutative operand swapping
    // removes out-of-range transitions the assignment could not avoid.
    swapCommutativeOperands(R.F, C.Enc);
    EncodedFunction Encoded = encodeFunction(R.F, C.Enc);
    R.Enc = Encoded.Stats;
    R.F = std::move(Encoded.Annotated);
  }
  finalizeCounts(R);
  return R;
}

} // namespace

PipelineResult dra::runPipeline(const Function &Src, const PipelineConfig &C) {
  PipelineResult R = runOnce(Src, C);
  if (!C.AdaptiveEnable || C.S == Scheme::Baseline || C.S == Scheme::OSpill)
    return R;

  // Section 8.2: compare the frequency-weighted dynamic estimate of the
  // differential scheme (spills saved) against its set_last_reg overhead;
  // fall back to the baseline when the encoding does not pay off.
  PipelineConfig BaseCfg = C;
  BaseCfg.S = Scheme::Baseline;
  BaseCfg.AdaptiveEnable = false;
  PipelineResult Base = runOnce(Src, BaseCfg);

  auto IsSpill = [](const Instruction &I) { return I.isSpill(); };
  auto IsSlr = [](const Instruction &I) {
    return I.Op == Opcode::SetLastReg;
  };
  double Benefit = weightedCount(Base.F, IsSpill) -
                   weightedCount(R.F, IsSpill) -
                   weightedCount(R.F, IsSlr);
  if (Benefit >= 0)
    return R;
  Base.AdaptiveFellBack = true;
  return Base;
}
