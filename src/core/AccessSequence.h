//===- core/AccessSequence.h - Register access sequences --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the *register access sequence* (Section 2): the registers
/// a function touches, in instruction order and, within an instruction, in
/// the nominal access order. Special registers are excluded — they carry
/// reserved direct codes and do not participate in the differential chain
/// (Section 9.2). SetLastReg pseudo instructions contribute nothing (their
/// payload is an immediate).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_ACCESSSEQUENCE_H
#define DRA_CORE_ACCESSSEQUENCE_H

#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

/// One element of the access sequence.
struct Access {
  RegId Reg;
  uint32_t Block;
  uint32_t InstIdx;
  /// Position of this register field within its instruction, counted in
  /// the configured access order (0-based).
  uint8_t FieldIdx;
};

/// Returns the register fields of \p I in the order dictated by
/// \p Order. The result holds indices into the instruction's canonical
/// field numbering (Instruction::regField), which always lists uses before
/// the def.
std::vector<unsigned> fieldOrder(const Instruction &I, AccessOrder Order);

/// Builds the access sequence of block \p Block of \p F: every non-special
/// register field, in instruction order and configured field order.
std::vector<Access> blockAccessSequence(const Function &F, uint32_t Block,
                                        const EncodingConfig &C);

/// Builds the whole-function access sequence in layout order (the order the
/// encoder walks blocks).
std::vector<Access> accessSequence(const Function &F,
                                   const EncodingConfig &C);

} // namespace dra

#endif // DRA_CORE_ACCESSSEQUENCE_H
