//===- core/Portfolio.cpp - Scheme-portfolio racing + chooser -------------===//

#include "core/Portfolio.h"

#include "core/Features.h"
#include "core/Pipeline.h"
#include "driver/Json.h"
#include "driver/Metrics.h"
#include "driver/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <sstream>

using namespace dra;

const char *dra::portfolioModeName(PortfolioMode M) {
  switch (M) {
  case PortfolioMode::Off:
    return "off";
  case PortfolioMode::Race:
    return "race";
  case PortfolioMode::Choose:
    return "choose";
  }
  return "?";
}

bool dra::parsePortfolioMode(const std::string &Name, PortfolioMode &Out) {
  if (Name == "off")
    Out = PortfolioMode::Off;
  else if (Name == "race")
    Out = PortfolioMode::Race;
  else if (Name == "choose")
    Out = PortfolioMode::Choose;
  else
    return false;
  return true;
}

const char *dra::portfolioSchemeKey(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::OSpill:
    return "ospill";
  case Scheme::Remap:
    return "remap";
  case Scheme::Select:
    return "select";
  case Scheme::Coalesce:
    return "coalesce";
  }
  return "?";
}

bool dra::parsePortfolioSchemeKey(const std::string &Name, Scheme &Out) {
  for (Scheme S : {Scheme::Baseline, Scheme::OSpill, Scheme::Remap,
                   Scheme::Select, Scheme::Coalesce})
    if (Name == portfolioSchemeKey(S)) {
      Out = S;
      return true;
    }
  return false;
}

std::vector<PortfolioArm> dra::defaultPortfolioArms() {
  // The paper's three differential schemes. Coalesce leads so the
  // strongest scheme wins cost ties under the lowest-index rule.
  return {{Scheme::Coalesce, 0}, {Scheme::Select, 0}, {Scheme::Remap, 0}};
}

std::vector<PortfolioArm> dra::resolvedPortfolioArms(const PortfolioConfig &PC) {
  return PC.Arms.empty() ? defaultPortfolioArms() : PC.Arms;
}

uint64_t dra::encodedCost(const PipelineResult &R) {
  uint64_t Spills = std::min<uint64_t>(R.SpillInsts, 0xFFFFFFFFu);
  uint64_t Slr = std::min<uint64_t>(R.SetLastRegs, 0xFFFFFFFFu);
  return (Spills << 32) | Slr;
}

//===----------------------------------------------------------------------===//
// Decision table
//===----------------------------------------------------------------------===//

static bool tableErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = "portfolio table: " + Msg;
  return false;
}

DecisionPrediction
DecisionTable::predict(const std::vector<double> &FeatureVector) const {
  DecisionPrediction P;
  if (Nodes.empty())
    return P;
  size_t I = 0;
  // valid() guarantees children strictly follow parents, so the walk
  // terminates in < Nodes.size() steps; the bound guards hand-built
  // tables that skipped validation.
  for (size_t Steps = 0; Steps != Nodes.size(); ++Steps) {
    const DecisionNode &N = Nodes[I];
    if (N.Feature < 0) {
      if (N.Arm < 0 || static_cast<size_t>(N.Arm) >= Arms.size())
        return P;
      P.Arm = N.Arm;
      P.Confidence = N.Confidence;
      P.Samples = N.Samples;
      return P;
    }
    if (static_cast<size_t>(N.Feature) >= FeatureVector.size())
      return P;
    int Next = FeatureVector[N.Feature] <= N.Threshold ? N.Left : N.Right;
    if (Next <= static_cast<int>(I) || static_cast<size_t>(Next) >= Nodes.size())
      return P;
    I = static_cast<size_t>(Next);
  }
  return P;
}

bool DecisionTable::valid(std::string *Err) const {
  if (Features != featureNames())
    return tableErr(Err, "feature schema does not match this build");
  if (Arms.empty())
    return tableErr(Err, "no arms");
  if (Nodes.empty())
    return tableErr(Err, "no nodes");
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const DecisionNode &N = Nodes[I];
    if (N.Feature < 0) {
      if (N.Arm < 0 || static_cast<size_t>(N.Arm) >= Arms.size())
        return tableErr(Err, "leaf arm index out of range");
      if (N.Confidence < 0 || N.Confidence > 1)
        return tableErr(Err, "leaf confidence outside [0, 1]");
    } else {
      if (static_cast<size_t>(N.Feature) >= Features.size())
        return tableErr(Err, "split feature index out of range");
      if (N.Left <= static_cast<int>(I) ||
          static_cast<size_t>(N.Left) >= Nodes.size() ||
          N.Right <= static_cast<int>(I) ||
          static_cast<size_t>(N.Right) >= Nodes.size())
        return tableErr(Err, "child node index must follow its parent");
    }
  }
  return true;
}

uint64_t DecisionTable::fingerprint() const {
  std::string Doc = toJson();
  uint64_t H = 1469598103934665603ull; // FNV-1a 64-bit offset basis
  for (unsigned char Ch : Doc) {
    H ^= Ch;
    H *= 1099511628211ull;
  }
  return H;
}

std::string DecisionTable::toJson() const {
  std::ostringstream OS;
  OS << "{\"schema\":\"portfolio-v1\",\"features\":[";
  for (size_t I = 0; I != Features.size(); ++I)
    OS << (I ? "," : "") << '"' << jsonEscape(Features[I]) << '"';
  OS << "],\"arms\":[";
  for (size_t I = 0; I != Arms.size(); ++I) {
    OS << (I ? "," : "") << "{\"scheme\":\"" << portfolioSchemeKey(Arms[I].S)
       << "\",\"remap_starts\":" << Arms[I].RemapStarts << "}";
  }
  OS << "],\"nodes\":[";
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const DecisionNode &N = Nodes[I];
    OS << (I ? "," : "");
    if (N.Feature < 0) {
      OS << "{\"arm\":" << N.Arm << ",\"confidence\":";
      writeJsonNumber(OS, N.Confidence);
      OS << ",\"samples\":" << N.Samples << "}";
    } else {
      OS << "{\"feature\":" << N.Feature << ",\"threshold\":";
      writeJsonNumber(OS, N.Threshold);
      OS << ",\"left\":" << N.Left << ",\"right\":" << N.Right << "}";
    }
  }
  OS << "]}";
  return OS.str();
}

/// Reads an integral JSON number field into \p Out; absent fields leave
/// \p Out untouched and report \p Required.
static bool readInt(const JsonValue &Obj, const char *Name, bool Required,
                    long long Min, long long Max, long long &Out,
                    std::string *Err) {
  const JsonValue *F = Obj.field(Name);
  if (!F)
    return Required
               ? tableErr(Err, std::string("missing field '") + Name + "'")
               : true;
  if (F->K != JsonValue::Number || F->Num != static_cast<long long>(F->Num))
    return tableErr(Err, std::string("field '") + Name +
                             "' must be an integer");
  long long V = static_cast<long long>(F->Num);
  if (V < Min || V > Max)
    return tableErr(Err, std::string("field '") + Name + "' out of range");
  Out = V;
  return true;
}

bool DecisionTable::fromJson(const std::string &Text, DecisionTable &Out,
                             std::string *Err) {
  Out = DecisionTable();
  JsonValue V;
  if (!parseJson(Text, V, Err))
    return false;
  if (V.K != JsonValue::Object)
    return tableErr(Err, "top level must be an object");
  const JsonValue *Schema = V.field("schema");
  if (!Schema || Schema->K != JsonValue::String ||
      Schema->Str != "portfolio-v1")
    return tableErr(Err, "missing or unknown schema (want portfolio-v1)");

  const JsonValue *Features = V.field("features");
  if (!Features || Features->K != JsonValue::Array)
    return tableErr(Err, "'features' must be an array");
  for (const JsonValue &F : Features->Arr) {
    if (F.K != JsonValue::String)
      return tableErr(Err, "'features' entries must be strings");
    Out.Features.push_back(F.Str);
  }

  const JsonValue *Arms = V.field("arms");
  if (!Arms || Arms->K != JsonValue::Array)
    return tableErr(Err, "'arms' must be an array");
  for (const JsonValue &A : Arms->Arr) {
    if (A.K != JsonValue::Object)
      return tableErr(Err, "'arms' entries must be objects");
    const JsonValue *S = A.field("scheme");
    PortfolioArm Arm;
    if (!S || S->K != JsonValue::String ||
        !parsePortfolioSchemeKey(S->Str, Arm.S))
      return tableErr(Err, "arm 'scheme' must name a known scheme");
    long long Starts = 0;
    if (!readInt(A, "remap_starts", /*Required=*/false, 0, 1 << 20, Starts,
                 Err))
      return false;
    Arm.RemapStarts = static_cast<unsigned>(Starts);
    Out.Arms.push_back(Arm);
  }

  const JsonValue *Nodes = V.field("nodes");
  if (!Nodes || Nodes->K != JsonValue::Array)
    return tableErr(Err, "'nodes' must be an array");
  for (const JsonValue &NV : Nodes->Arr) {
    if (NV.K != JsonValue::Object)
      return tableErr(Err, "'nodes' entries must be objects");
    DecisionNode N;
    if (NV.field("feature")) {
      long long Feature = 0, Left = 0, Right = 0;
      if (!readInt(NV, "feature", true, 0, 1 << 20, Feature, Err) ||
          !readInt(NV, "left", true, 0, 1 << 20, Left, Err) ||
          !readInt(NV, "right", true, 0, 1 << 20, Right, Err))
        return false;
      const JsonValue *T = NV.field("threshold");
      if (!T || T->K != JsonValue::Number)
        return tableErr(Err, "split node needs a numeric 'threshold'");
      N.Feature = static_cast<int>(Feature);
      N.Threshold = T->Num;
      N.Left = static_cast<int>(Left);
      N.Right = static_cast<int>(Right);
    } else {
      long long Arm = 0, Samples = 0;
      if (!readInt(NV, "arm", true, 0, 1 << 20, Arm, Err) ||
          !readInt(NV, "samples", /*Required=*/false, 0, 1ll << 40, Samples,
                   Err))
        return false;
      const JsonValue *Conf = NV.field("confidence");
      if (Conf && Conf->K != JsonValue::Number)
        return tableErr(Err, "leaf 'confidence' must be a number");
      N.Arm = static_cast<int>(Arm);
      N.Confidence = Conf ? Conf->Num : 0;
      N.Samples = static_cast<unsigned>(Samples);
    }
    Out.Nodes.push_back(N);
  }

  return Out.valid(Err);
}

//===----------------------------------------------------------------------===//
// The race
//===----------------------------------------------------------------------===//

/// The concrete single-scheme config arm \p A runs with: \p C with the
/// arm's scheme and restart budget applied and the portfolio, cache,
/// metrics, and trace hooks stripped. Strips are what make the race
/// recursion-free (arms re-enter runPipeline with Mode Off) and
/// side-effect-free (losing arms leave no cache entries or metric
/// samples behind). The cache key hashes none of the stripped pointers,
/// so the winner's config keys identically to a direct request.
static PipelineConfig armConfig(const PipelineConfig &C,
                                const PortfolioArm &A) {
  PipelineConfig AC = C;
  AC.S = A.S;
  if (A.RemapStarts)
    AC.Remap.NumStarts = A.RemapStarts;
  AC.Portfolio = PortfolioConfig();
  AC.Cache = nullptr;
  AC.Metrics = nullptr;
  AC.Trace = nullptr;
  return AC;
}

static void flushChooseMetrics(MetricsRegistry *M, bool Confident) {
  if (!M)
    return;
  M->count(Confident ? "portfolio.chooser_hits" : "portfolio.chooser_races",
           1);
}

PipelineResult dra::runPortfolio(const Function &Src, const PipelineConfig &C,
                                 PipelineConfig *WinnerConfig,
                                 PortfolioOutcome *Outcome) {
  assert(C.Portfolio.Mode != PortfolioMode::Off &&
         "runPortfolio needs an active portfolio mode");
  const std::vector<PortfolioArm> Arms = resolvedPortfolioArms(C.Portfolio);
  MetricsRegistry *M = C.Portfolio.Metrics ? C.Portfolio.Metrics : C.Metrics;

  PortfolioOutcome Out;
  Out.ArmCosts.assign(Arms.size(), UINT64_MAX);

  // Chooser: map the table's predicted arm onto this config's arm list
  // by (scheme, restart-budget) equality; a prediction for an arm we are
  // not racing is unusable and falls back to the race.
  if (C.Portfolio.Mode == PortfolioMode::Choose && C.Portfolio.Table) {
    DecisionPrediction P =
        C.Portfolio.Table->predict(computeFeatures(Src).asVector());
    if (P.Arm >= 0) {
      const PortfolioArm &Predicted = C.Portfolio.Table->Arms[P.Arm];
      for (size_t I = 0; I != Arms.size(); ++I)
        if (Arms[I] == Predicted) {
          Out.PredictedArm = static_cast<int>(I);
          break;
        }
    }
    if (Out.PredictedArm >= 0 && P.Confidence >= C.Portfolio.MinConfidence) {
      Out.ChooserConfident = true;
      unsigned I = static_cast<unsigned>(Out.PredictedArm);
      PipelineConfig AC = armConfig(C, Arms[I]);
      PipelineResult R = runPipeline(Src, AC);
      Out.WinnerArm = I;
      Out.WinnerCost = encodedCost(R);
      Out.ArmCosts[I] = Out.WinnerCost;
      Out.ArmsRun = 1;
      flushChooseMetrics(M, /*Confident=*/true);
      if (WinnerConfig)
        *WinnerConfig = AC;
      if (Outcome)
        *Outcome = Out;
      return R;
    }
  }
  if (C.Portfolio.Mode == PortfolioMode::Choose) {
    Out.ChooserRaced = true;
    flushChooseMetrics(M, /*Confident=*/false);
  }

  // The race. Results land in an index-addressed array; the only shared
  // state is FirstZero, the lowest arm index known to have finished at
  // cost 0 (the global minimum). An arm is skipped only when a
  // lower-indexed arm already holds cost 0 — that arm beats or ties every
  // skipped arm and wins the tie by index, so skipping never changes the
  // committed winner, only how much work runs.
  std::vector<PipelineResult> Results(Arms.size());
  std::vector<char> Ran(Arms.size(), 0);
  std::atomic<unsigned> FirstZero{static_cast<unsigned>(Arms.size())};
  auto RunArm = [&](size_t I) {
    if (FirstZero.load(std::memory_order_acquire) < I)
      return; // cancelled: a lower-indexed arm already hit cost 0
    Results[I] = runPipeline(Src, armConfig(C, Arms[I]));
    Ran[I] = 1;
    if (encodedCost(Results[I]) == 0) {
      unsigned Cur = FirstZero.load(std::memory_order_relaxed);
      while (I < Cur && !FirstZero.compare_exchange_weak(
                            Cur, static_cast<unsigned>(I),
                            std::memory_order_acq_rel))
        ;
    }
  };

  unsigned Jobs = C.Portfolio.Jobs ? C.Portfolio.Jobs
                                   : static_cast<unsigned>(Arms.size());
  Jobs = std::min<unsigned>(Jobs, static_cast<unsigned>(Arms.size()));
  if (Jobs <= 1) {
    for (size_t I = 0; I != Arms.size(); ++I)
      RunArm(I);
  } else {
    // A transient pool per race: pools nest (the remap search inside an
    // arm, the race inside a BatchCompiler or server worker task), and a
    // race is a handful of long tasks, so pool setup cost is noise.
    ThreadPool Pool(Jobs);
    Pool.parallelFor(Arms.size(), RunArm);
  }

  // Fixed index-order reduction with strict < — lowest index wins ties.
  bool Any = false;
  unsigned Winner = 0;
  uint64_t Best = UINT64_MAX;
  for (size_t I = 0; I != Arms.size(); ++I) {
    if (!Ran[I]) {
      ++Out.ArmsCancelled;
      continue;
    }
    uint64_t Cost = encodedCost(Results[I]);
    Out.ArmCosts[I] = Cost;
    ++Out.ArmsRun;
    if (!Any || Cost < Best) {
      Any = true;
      Best = Cost;
      Winner = static_cast<unsigned>(I);
    }
  }
  assert(Any && "at least arm 0 always runs");
  Out.WinnerArm = Winner;
  Out.WinnerCost = Best;

  if (M) {
    MetricLabels ModeL{{"mode", portfolioModeName(C.Portfolio.Mode)}};
    M->count("portfolio.races", 1, ModeL);
    M->count("portfolio.arms_run", Out.ArmsRun, ModeL);
    M->count("portfolio.arms_cancelled", Out.ArmsCancelled, ModeL);
    M->count("portfolio.wins", 1,
             MetricLabels{{"scheme", schemeName(Arms[Winner].S)}});
    if (Out.ChooserRaced && Out.PredictedArm >= 0 &&
        static_cast<unsigned>(Out.PredictedArm) != Winner)
      M->count("portfolio.chooser_mispredicts", 1);
  }

  if (WinnerConfig)
    *WinnerConfig = armConfig(C, Arms[Winner]);
  if (Outcome)
    *Outcome = Out;
  return Results[Winner];
}
