//===- core/Recolor.cpp - Differential recoloring local search ------------===//

#include "core/Recolor.h"

#include "analysis/Liveness.h"
#include "core/AdjacencyGraph.h"
#include "core/DiffSelectHook.h"
#include "regalloc/InterferenceGraph.h"

#include <algorithm>
#include <numeric>

using namespace dra;

namespace {

/// Union-find over virtual registers.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  RegId find(RegId N) {
    while (Parent[N] != N) {
      Parent[N] = Parent[Parent[N]];
      N = Parent[N];
    }
    return N;
  }
  void unite(RegId A, RegId B) { Parent[find(A)] = find(B); }

private:
  std::vector<RegId> Parent;
};

} // namespace

RecolorStats dra::recolorColoring(const Function &F, const EncodingConfig &C,
                                  std::vector<RegId> &ColorOf,
                                  const RecolorOptions &O,
                                  Arena *Scratch) {
  assert(ColorOf.size() == F.NumRegs && "coloring size mismatch");
  unsigned K = C.RegN;

  Function Work = F;
  Work.recomputeCFG();
  Liveness LV = Liveness::compute(Work, Scratch);
  InterferenceGraph IG = InterferenceGraph::build(Work, LV, Scratch);
  // Frequency weighting (Section 4: "the frequency should be reflected in
  // the edge weights") steers repairs out of hot loops; the *static*
  // set_last_reg count is reported separately by the encoder.
  AdjacencyGraph AG =
      AdjacencyGraph::build(Work, C, WeightMode::Frequency);

  RecolorStats Stats;
  Stats.CostBefore = AG.cost(ColorOf, C);

  // Tie move endpoints that currently share a color into clusters so
  // recoloring cannot reintroduce a coalesced move.
  UnionFind UF(F.NumRegs);
  for (const MovePair &MP : IG.moves())
    if (ColorOf[MP.Dst] == ColorOf[MP.Src])
      UF.unite(MP.Dst, MP.Src);

  std::vector<std::vector<RegId>> Members(F.NumRegs);
  for (RegId V = 0; V != F.NumRegs; ++V)
    Members[UF.find(V)].push_back(V);

  std::vector<RegId> Clusters;
  for (RegId V = 0; V != F.NumRegs; ++V)
    if (!Members[V].empty())
      Clusters.push_back(V);

  auto ColorOfVReg = [&](RegId V) {
    return ColorOf[V] == NoReg ? -1 : static_cast<int>(ColorOf[V]);
  };
  Stats.Clusters = Clusters.size();

  for (Stats.Sweeps = 0; Stats.Sweeps != O.MaxSweeps; ++Stats.Sweeps) {
    bool Changed = false;
    for (RegId Root : Clusters) {
      const std::vector<RegId> &Group = Members[Root];
      unsigned Current = ColorOf[Root];
      // Legal colors: not used by any interference neighbor outside the
      // cluster.
      std::vector<uint8_t> Used(K, 0);
      for (RegId V : Group)
        for (RegId N : IG.neighbors(V))
          if (UF.find(N) != Root && ColorOf[N] != NoReg)
            Used[ColorOf[N]] = 1;
      // Cost per candidate; keep the current color on ties.
      ++Stats.CandidateEvals;
      double CurCost =
          selectCost(AG, C, Group, Current, ColorOfVReg);
      if (CurCost == 0)
        continue;
      unsigned BestColor = Current;
      double BestCost = CurCost;
      for (unsigned Color = 0; Color != K; ++Color) {
        if (Used[Color] || Color == Current)
          continue;
        ++Stats.CandidateEvals;
        double Cost = selectCost(AG, C, Group, Color, ColorOfVReg);
        if (Cost < BestCost - 1e-9) {
          BestCost = Cost;
          BestColor = Color;
        }
      }
      if (BestColor != Current) {
        for (RegId V : Group)
          ColorOf[V] = BestColor;
        ++Stats.Changes;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  Stats.CostAfter = AG.cost(ColorOf, C);
  assert(IG.isValidColoring(ColorOf) && "recoloring broke interference");
  return Stats;
}
