//===- core/Remap.cpp - Differential remapping (post-pass) ----------------===//

#include "core/Remap.h"

#include "adt/Rng.h"
#include "driver/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

using namespace dra;

namespace {

/// Cost of assignment Perm on G (Perm[node] = register number).
double permCost(const AdjacencyGraph &G, const EncodingConfig &C,
                const std::vector<RegId> &Perm) {
  return G.cost(Perm, C);
}

bool isPinned(const RemapOptions &O, RegId R) {
  for (RegId P : O.PinnedRegs)
    if (P == R)
      return true;
  return false;
}

std::vector<RegId> movableRegs(const EncodingConfig &C,
                               const RemapOptions &O) {
  std::vector<RegId> Movable;
  for (RegId R = 0; R != C.RegN; ++R)
    if (!C.isSpecial(R) && !isPinned(O, R))
      Movable.push_back(R);
  return Movable;
}

/// Exhaustive search over all permutations that fix the special and pinned
/// registers. Reports its effort through the shared counters: StartsRun is
/// the one enumeration, SwapsEvaluated the permutations costed, and
/// SwapsApplied the improvements over the running best.
RemapResult exhaustiveSearch(const AdjacencyGraph &G,
                             const EncodingConfig &C,
                             const RemapOptions &O) {
  unsigned N = C.RegN;
  std::vector<RegId> Movable = movableRegs(C, O);

  std::vector<RegId> Targets = Movable; // Values assigned to movable slots.
  std::vector<RegId> Perm(N);
  for (RegId R = 0; R != N; ++R)
    Perm[R] = R;

  RemapResult Best;
  Best.Exhaustive = true;
  Best.StartsRun = 1;
  Best.CostBefore = G.identityCost(C);
  Best.CostAfter = std::numeric_limits<double>::infinity();
  do {
    for (size_t I = 0; I != Movable.size(); ++I)
      Perm[Movable[I]] = Targets[I];
    ++Best.SwapsEvaluated;
    double Cost = permCost(G, C, Perm);
    if (Cost < Best.CostAfter) {
      ++Best.SwapsApplied;
      Best.CostAfter = Cost;
      Best.Perm = Perm;
    }
  } while (std::next_permutation(Targets.begin(), Targets.end()));
  return Best;
}

/// Sum of violated-edge weights among the edges incident to node \p U or
/// node \p V under \p Perm; each edge counted once. The pre-incremental
/// candidate evaluator: one hash lookup per arc, called twice (before and
/// after the trial swap) per candidate.
double incidentCost(const AdjacencyGraph &G, const EncodingConfig &C,
                    const std::vector<RegId> &Perm, RegId U, RegId V) {
  double Total = 0;
  auto Violated = [&](RegId From, RegId To) {
    RegId FromNo = Perm[From], ToNo = Perm[To];
    return FromNo != ToNo && !C.encodable(FromNo, ToNo);
  };
  G.forEachOut(U, [&](RegId To, double W) {
    if (Violated(U, To))
      Total += W;
  });
  G.forEachIn(U, [&](RegId From, double W) {
    if (Violated(From, U))
      Total += W;
  });
  G.forEachOut(V, [&](RegId To, double W) {
    if (To != U && Violated(V, To))
      Total += W;
  });
  G.forEachIn(V, [&](RegId From, double W) {
    if (From != U && Violated(From, V))
      Total += W;
  });
  return Total;
}

/// Per-descent effort, merged into RemapResult by the search driver.
struct DescentStats {
  size_t Eval = 0;
  size_t Applied = 0;
  size_t Arcs = 0;
};

/// One greedy descent from \p Perm evaluating candidates with the legacy
/// incident-edge walk (UseIncremental = false, FullRecost = false).
double greedyDescentIncident(const AdjacencyGraph &G,
                             const EncodingConfig &C,
                             const std::vector<RegId> &Movable,
                             std::vector<RegId> &Perm, DescentStats &S) {
  double Cost = permCost(G, C, Perm);
  for (;;) {
    double BestDelta = 0;
    size_t BestI = 0, BestJ = 0;
    for (size_t I = 0; I + 1 < Movable.size(); ++I) {
      for (size_t J = I + 1; J < Movable.size(); ++J) {
        RegId U = Movable[I], V = Movable[J];
        ++S.Eval;
        double Before = incidentCost(G, C, Perm, U, V);
        std::swap(Perm[U], Perm[V]);
        double After = incidentCost(G, C, Perm, U, V);
        std::swap(Perm[U], Perm[V]);
        double Delta = After - Before;
        if (Delta < BestDelta) {
          BestDelta = Delta;
          BestI = I;
          BestJ = J;
        }
      }
    }
    if (BestDelta >= 0)
      return Cost; // Local minimum.
    std::swap(Perm[Movable[BestI]], Perm[Movable[BestJ]]);
    ++S.Applied;
    Cost += BestDelta;
  }
}

/// One greedy descent recosting the whole permutation per candidate: the
/// O(|E|)-per-candidate measurement baseline (RemapOptions::FullRecost).
double greedyDescentFullRecost(const AdjacencyGraph &G,
                               const EncodingConfig &C,
                               const std::vector<RegId> &Movable,
                               std::vector<RegId> &Perm, DescentStats &S) {
  double Cost = permCost(G, C, Perm);
  for (;;) {
    double BestDelta = 0;
    size_t BestI = 0, BestJ = 0;
    for (size_t I = 0; I + 1 < Movable.size(); ++I) {
      for (size_t J = I + 1; J < Movable.size(); ++J) {
        RegId U = Movable[I], V = Movable[J];
        ++S.Eval;
        std::swap(Perm[U], Perm[V]);
        double Delta = permCost(G, C, Perm) - Cost;
        std::swap(Perm[U], Perm[V]);
        if (Delta < BestDelta) {
          BestDelta = Delta;
          BestI = I;
          BestJ = J;
        }
      }
    }
    if (BestDelta >= 0)
      return Cost;
    std::swap(Perm[Movable[BestI]], Perm[Movable[BestJ]]);
    ++S.Applied;
    Cost += BestDelta;
  }
}

/// One greedy descent evaluating candidates against the precomputed cost
/// model: O(degree(U) + degree(V)) per candidate, no hash lookups. The
/// permutation's cost is maintained incrementally across applied swaps
/// exactly as the incident arm maintains it (same deltas, same addition
/// order), so the trajectory is bit-identical; debug builds cross-check
/// the running cost against a full recost after every applied swap.
double greedyDescentModel(const AdjacencyGraph &G, const EncodingConfig &C,
                          const RemapCostModel &M,
                          const std::vector<RegId> &Movable,
                          std::vector<RegId> &Perm, DescentStats &S) {
  double Cost = permCost(G, C, Perm);
  for (;;) {
    double BestDelta = 0;
    size_t BestI = 0, BestJ = 0;
    for (size_t I = 0; I + 1 < Movable.size(); ++I) {
      for (size_t J = I + 1; J < Movable.size(); ++J) {
        RegId U = Movable[I], V = Movable[J];
        ++S.Eval;
        S.Arcs += M.deltaArcs(U, V);
        double Delta = M.swapDelta(Perm, U, V);
        if (Delta < BestDelta) {
          BestDelta = Delta;
          BestI = I;
          BestJ = J;
        }
      }
    }
    if (BestDelta >= 0)
      return Cost;
    std::swap(Perm[Movable[BestI]], Perm[Movable[BestJ]]);
    ++S.Applied;
    Cost += BestDelta;
#ifndef NDEBUG
    double Full = permCost(G, C, Perm);
    assert(std::fabs(Full - Cost) <=
               1e-6 * std::max(1.0, std::fabs(Full)) &&
           "incremental remap cost drifted from full recost");
#endif
  }
}

/// The pre-incremental sequential multi-start search, kept as the
/// bit-identity reference (UseIncremental = false) and, with FullRecost,
/// as the benchmark's naive baseline arm.
RemapResult greedySearchSequential(const AdjacencyGraph &G,
                                   const EncodingConfig &C,
                                   const RemapOptions &O) {
  unsigned N = C.RegN;
  std::vector<RegId> Movable = movableRegs(C, O);

  std::vector<RegId> Identity(N);
  for (RegId R = 0; R != N; ++R)
    Identity[R] = R;

  RemapResult Best;
  Best.CostBefore = G.identityCost(C);
  Best.CostAfter = std::numeric_limits<double>::infinity();

  Rng Random(O.Seed);
  unsigned Starts = std::max(1u, O.NumStarts);
  for (unsigned Start = 0; Start != Starts; ++Start) {
    std::vector<RegId> Perm = Identity;
    if (Start != 0) {
      // Random initial register vector over the movable slots.
      std::vector<RegId> Targets = Movable;
      Random.shuffle(Targets);
      for (size_t I = 0; I != Movable.size(); ++I)
        Perm[Movable[I]] = Targets[I];
    }
    ++Best.StartsRun;
    DescentStats S;
    double Cost = O.FullRecost
                      ? greedyDescentFullRecost(G, C, Movable, Perm, S)
                      : greedyDescentIncident(G, C, Movable, Perm, S);
    Best.SwapsEvaluated += S.Eval;
    Best.SwapsApplied += S.Applied;
    if (Cost < Best.CostAfter) {
      Best.CostAfter = Cost;
      Best.Perm = std::move(Perm);
    }
    if (Best.CostAfter == 0)
      break; // Cannot improve further.
  }
  Best.StartsCutOff = Starts - Best.StartsRun;
  return Best;
}

/// Maps a non-NaN double to an unsigned key with the same total order, so
/// the shared best-cost bound can be a lock-free CAS-min on uint64_t.
uint64_t orderedCostBits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof B);
  return (B & (1ull << 63)) ? ~B : B | (1ull << 63);
}

/// The incremental multi-start search, optionally sharded over a thread
/// pool. Bit-identical to greedySearchSequential(UseIncremental=false) at
/// any Jobs value:
///
///  * every restart vector is drawn up front on the calling thread from
///    the one sequential Rng stream, so start k sees the same initial
///    permutation regardless of scheduling;
///  * descents are per-start deterministic and their deltas replicate the
///    incident-arm arithmetic exactly (see RemapCostModel);
///  * the only deterministic early cutoff is a provable global minimum —
///    a start finishing at cost zero — tracked as the minimum zero-cost
///    start index: StartsRun = FirstZero + 1 matches the sequential break,
///    counters sum only over starts below it, and speculatively-run
///    higher-indexed starts are discarded from stats and reduction;
///  * a shared atomic best-cost bound (CAS-min) additionally gates which
///    starts keep their permutation alive for the reduction — a start
///    whose final cost exceeds the bound at completion can never win
///    (cost, start-index) and drops its vector immediately;
///  * the winner is the lowest-cost start, earliest index on ties —
///    exactly the sequential update rule `Cost < Best.CostAfter`.
RemapResult greedySearchIncremental(const AdjacencyGraph &G,
                                    const EncodingConfig &C,
                                    const RemapOptions &O) {
  unsigned N = C.RegN;
  std::vector<RegId> Movable = movableRegs(C, O);

  std::vector<RegId> Identity(N);
  for (RegId R = 0; R != N; ++R)
    Identity[R] = R;

  RemapResult Best;
  Best.CostBefore = G.identityCost(C);
  Best.CostAfter = std::numeric_limits<double>::infinity();

  unsigned Starts = std::max(1u, O.NumStarts);
  size_t M = Movable.size();

  // Replay the sequential restart stream up front (start 0 is identity).
  std::vector<RegId> StartTargets;
  StartTargets.reserve(static_cast<size_t>(Starts - 1) * M);
  {
    Rng Random(O.Seed);
    for (unsigned Start = 1; Start < Starts; ++Start) {
      std::vector<RegId> Targets = Movable;
      Random.shuffle(Targets);
      StartTargets.insert(StartTargets.end(), Targets.begin(),
                          Targets.end());
    }
  }

  RemapCostModel Model(G, C);

  struct StartOutcome {
    double Cost = std::numeric_limits<double>::infinity();
    DescentStats Stats;
    std::vector<RegId> Perm;
    bool HasPerm = false;
    bool Ran = false;
  };
  std::vector<StartOutcome> Outcomes(Starts);

  constexpr uint64_t NoZero = std::numeric_limits<uint64_t>::max();
  std::atomic<uint64_t> FirstZero{NoZero};
  std::atomic<uint64_t> BestBound{
      orderedCostBits(std::numeric_limits<double>::infinity())};

  auto RunStart = [&](size_t Start) {
    // Early cutoff: some start at a lower index already reached the
    // provable minimum, so the sequential search would never get here.
    if (Start > FirstZero.load(std::memory_order_relaxed))
      return;
    StartOutcome &Out = Outcomes[Start];
    Out.Ran = true;
    std::vector<RegId> Perm = Identity;
    if (Start != 0) {
      const RegId *T = StartTargets.data() + (Start - 1) * M;
      for (size_t I = 0; I != M; ++I)
        Perm[Movable[I]] = T[I];
    }
    Out.Cost = greedyDescentModel(G, C, Model, Movable, Perm, Out.Stats);

    // Shared best-cost bound: CAS-min, then keep the permutation only
    // while this start is still a candidate winner under the bound.
    uint64_t MyBits = orderedCostBits(Out.Cost);
    uint64_t Cur = BestBound.load(std::memory_order_relaxed);
    while (MyBits < Cur &&
           !BestBound.compare_exchange_weak(Cur, MyBits,
                                            std::memory_order_relaxed))
      ;
    if (MyBits <= BestBound.load(std::memory_order_relaxed)) {
      Out.Perm = std::move(Perm);
      Out.HasPerm = true;
    }
    if (Out.Cost == 0) {
      uint64_t Prev = FirstZero.load(std::memory_order_relaxed);
      while (Start < Prev &&
             !FirstZero.compare_exchange_weak(Prev, Start,
                                              std::memory_order_relaxed))
        ;
    }
  };

  unsigned Jobs = std::min<unsigned>(std::max(1u, O.Jobs), Starts);
  if (Jobs == 1) {
    for (size_t Start = 0; Start != Starts; ++Start)
      RunStart(Start);
  } else {
    ThreadPool Pool(Jobs);
    Pool.parallelFor(Starts, RunStart);
  }

  // Deterministic reduction. Starts at or below the first zero-cost index
  // always ran (the cutoff only ever skips higher indices); anything the
  // pool ran beyond it is speculative work the sequential search would
  // not have done, so it contributes neither stats nor candidates.
  uint64_t FZ = FirstZero.load(std::memory_order_relaxed);
  unsigned Ran = FZ == NoZero ? Starts : static_cast<unsigned>(FZ) + 1;
  Best.StartsRun = Ran;
  Best.StartsCutOff = Starts - Ran;
  size_t Winner = SIZE_MAX;
  for (unsigned Start = 0; Start != Ran; ++Start) {
    StartOutcome &Out = Outcomes[Start];
    assert(Out.Ran && "start below the zero-cost cutoff was skipped");
    Best.SwapsEvaluated += Out.Stats.Eval;
    Best.SwapsApplied += Out.Stats.Applied;
    Best.DeltaArcsVisited += Out.Stats.Arcs;
    if (Out.Cost < Best.CostAfter) {
      Best.CostAfter = Out.Cost;
      Winner = Start;
    }
  }
  assert(Winner != SIZE_MAX && Outcomes[Winner].HasPerm &&
         "winning start did not keep its permutation");
  Best.Perm = std::move(Outcomes[Winner].Perm);

  size_t FullTerms = Best.SwapsEvaluated * Model.arcCount();
  Best.DeltaRecostSavings = FullTerms > Best.DeltaArcsVisited
                                ? FullTerms - Best.DeltaArcsVisited
                                : 0;
  return Best;
}

} // namespace

RemapCostModel::RemapCostModel(const AdjacencyGraph &G,
                               const EncodingConfig &C)
    : RegN(C.RegN), Rows(C.RegN), ViolatedDiff(C.RegN, 0) {
  // Condition (3) as a table over the modular difference: diff 0 is a
  // self-transition (always encodable) and DiffN >= 1, so "violated" is
  // exactly diff >= DiffN.
  for (unsigned D = 0; D != C.RegN; ++D)
    ViolatedDiff[D] = D >= C.DiffN ? 1 : 0;

  uint32_t Nodes = std::min<uint32_t>(G.numNodes(), C.RegN);
  for (RegId R = 0; R != Nodes; ++R) {
    G.forEachOut(R, [&](RegId To, double W) {
      Rows[R].push_back({To, W, true});
      ++NumArcs;
    });
    G.forEachIn(R, [&](RegId From, double W) {
      Rows[R].push_back({From, W, false});
    });
  }
}

double RemapCostModel::swapDelta(const std::vector<RegId> &Perm, RegId U,
                                 RegId V) const {
  double Before = 0, After = 0;
  RegId PU = Perm[U], PV = Perm[V];
  // Row U: arcs anchored at U, whose number changes PU -> PV. The far
  // endpoint keeps its number unless it is V (the shared edge). Self
  // edges are never stored, so Other != U here and Other != V below;
  // the accumulation order — row U out, row U in, row V out, row V in —
  // mirrors incidentCost's two passes addition for addition, which keeps
  // Before, After, and the returned delta bit-identical to that arm.
  for (const Arc &A : Rows[U]) {
    RegId O = Perm[A.Other];
    RegId OS = A.Other == V ? PU : O;
    if (A.IsOut) {
      if (violated(PU, O))
        Before += A.W;
      if (violated(PV, OS))
        After += A.W;
    } else {
      if (violated(O, PU))
        Before += A.W;
      if (violated(OS, PV))
        After += A.W;
    }
  }
  // Row V, skipping the shared edge already counted under row U.
  for (const Arc &A : Rows[V]) {
    if (A.Other == U)
      continue;
    RegId O = Perm[A.Other];
    if (A.IsOut) {
      if (violated(PV, O))
        Before += A.W;
      if (violated(PU, O))
        After += A.W;
    } else {
      if (violated(O, PV))
        Before += A.W;
      if (violated(O, PU))
        After += A.W;
    }
  }
  return After - Before;
}

RemapResult dra::findRemap(const AdjacencyGraph &G, const EncodingConfig &C,
                           const RemapOptions &O) {
  assert(G.numNodes() <= C.RegN && "adjacency graph larger than RegN");
  unsigned MovableCount = 0;
  for (RegId R = 0; R != C.RegN; ++R)
    MovableCount += !C.isSpecial(R) && !isPinned(O, R);
  RemapResult Result;
  if (MovableCount <= O.ExhaustiveLimit)
    Result = exhaustiveSearch(G, C, O);
  else if (O.UseIncremental)
    Result = greedySearchIncremental(G, C, O);
  else
    Result = greedySearchSequential(G, C, O);
  // Never accept a permutation worse than the identity.
  if (Result.CostAfter > Result.CostBefore) {
    Result.CostAfter = Result.CostBefore;
    Result.Perm.resize(C.RegN);
    for (RegId R = 0; R != C.RegN; ++R)
      Result.Perm[R] = R;
  }
  return Result;
}

void dra::applyPermutation(Function &F, const std::vector<RegId> &Perm) {
  for (BasicBlock &BB : F.Blocks)
    for (Instruction &I : BB.Insts)
      for (unsigned Field = 0; Field != I.numRegFields(); ++Field) {
        RegId R = I.regField(Field);
        assert(R < Perm.size() && "register outside permutation domain");
        I.setRegField(Field, Perm[R]);
      }
}

RemapResult dra::remapFunction(Function &F, const EncodingConfig &C,
                               const RemapOptions &O) {
  assert(F.NumRegs <= C.RegN && "function register universe exceeds RegN");
  Function Widened = F; // Build the graph over the full RegN universe.
  Widened.NumRegs = C.RegN;
  Widened.recomputeCFG();
  AdjacencyGraph G =
      AdjacencyGraph::build(Widened, C, WeightMode::Frequency);
  RemapResult Result = findRemap(G, C, O);
  applyPermutation(F, Result.Perm);
  F.NumRegs = C.RegN;
  return Result;
}
