//===- core/Remap.cpp - Differential remapping (post-pass) ----------------===//

#include "core/Remap.h"

#include "adt/Rng.h"

#include <algorithm>
#include <limits>

using namespace dra;

namespace {

/// Cost of assignment Perm on G (Perm[node] = register number).
double permCost(const AdjacencyGraph &G, const EncodingConfig &C,
                const std::vector<RegId> &Perm) {
  return G.cost(Perm, C);
}

bool isPinned(const RemapOptions &O, RegId R) {
  for (RegId P : O.PinnedRegs)
    if (P == R)
      return true;
  return false;
}

/// Exhaustive search over all permutations that fix the special and pinned
/// registers.
RemapResult exhaustiveSearch(const AdjacencyGraph &G,
                             const EncodingConfig &C,
                             const RemapOptions &O) {
  unsigned N = C.RegN;
  std::vector<RegId> Movable;
  for (RegId R = 0; R != N; ++R)
    if (!C.isSpecial(R) && !isPinned(O, R))
      Movable.push_back(R);

  std::vector<RegId> Targets = Movable; // Values assigned to movable slots.
  std::vector<RegId> Perm(N);
  for (RegId R = 0; R != N; ++R)
    Perm[R] = R;

  RemapResult Best;
  Best.Exhaustive = true;
  Best.CostBefore = G.identityCost(C);
  Best.CostAfter = std::numeric_limits<double>::infinity();
  do {
    for (size_t I = 0; I != Movable.size(); ++I)
      Perm[Movable[I]] = Targets[I];
    double Cost = permCost(G, C, Perm);
    if (Cost < Best.CostAfter) {
      Best.CostAfter = Cost;
      Best.Perm = Perm;
    }
  } while (std::next_permutation(Targets.begin(), Targets.end()));
  return Best;
}

/// Sum of violated-edge weights among the edges incident to node \p U or
/// node \p V under \p Perm; each edge counted once.
double incidentCost(const AdjacencyGraph &G, const EncodingConfig &C,
                    const std::vector<RegId> &Perm, RegId U, RegId V) {
  double Total = 0;
  auto Violated = [&](RegId From, RegId To) {
    RegId FromNo = Perm[From], ToNo = Perm[To];
    return FromNo != ToNo && !C.encodable(FromNo, ToNo);
  };
  G.forEachOut(U, [&](RegId To, double W) {
    if (Violated(U, To))
      Total += W;
  });
  G.forEachIn(U, [&](RegId From, double W) {
    if (Violated(From, U))
      Total += W;
  });
  G.forEachOut(V, [&](RegId To, double W) {
    if (To != U && Violated(V, To))
      Total += W;
  });
  G.forEachIn(V, [&](RegId From, double W) {
    if (From != U && Violated(From, V))
      Total += W;
  });
  return Total;
}

/// One greedy descent from \p Perm: repeatedly apply the pairwise swap with
/// the largest cost reduction until a local minimum. Swap candidates are
/// evaluated incrementally (only edges incident to the swapped registers
/// change), keeping the descent O(swaps * degree) per iteration.
double greedyDescent(const AdjacencyGraph &G, const EncodingConfig &C,
                     const std::vector<RegId> &Movable,
                     std::vector<RegId> &Perm, size_t &SwapsEvaluated,
                     size_t &SwapsApplied) {
  double Cost = permCost(G, C, Perm);
  for (;;) {
    double BestDelta = 0;
    size_t BestI = 0, BestJ = 0;
    for (size_t I = 0; I + 1 < Movable.size(); ++I) {
      for (size_t J = I + 1; J < Movable.size(); ++J) {
        RegId U = Movable[I], V = Movable[J];
        ++SwapsEvaluated;
        double Before = incidentCost(G, C, Perm, U, V);
        std::swap(Perm[U], Perm[V]);
        double After = incidentCost(G, C, Perm, U, V);
        std::swap(Perm[U], Perm[V]);
        double Delta = After - Before;
        if (Delta < BestDelta) {
          BestDelta = Delta;
          BestI = I;
          BestJ = J;
        }
      }
    }
    if (BestDelta >= 0)
      return Cost; // Local minimum.
    std::swap(Perm[Movable[BestI]], Perm[Movable[BestJ]]);
    ++SwapsApplied;
    Cost += BestDelta;
  }
}

RemapResult greedySearch(const AdjacencyGraph &G, const EncodingConfig &C,
                         const RemapOptions &O) {
  unsigned N = C.RegN;
  std::vector<RegId> Movable;
  for (RegId R = 0; R != N; ++R)
    if (!C.isSpecial(R) && !isPinned(O, R))
      Movable.push_back(R);

  std::vector<RegId> Identity(N);
  for (RegId R = 0; R != N; ++R)
    Identity[R] = R;

  RemapResult Best;
  Best.CostBefore = G.identityCost(C);
  Best.CostAfter = std::numeric_limits<double>::infinity();

  Rng Random(O.Seed);
  unsigned Starts = std::max(1u, O.NumStarts);
  for (unsigned Start = 0; Start != Starts; ++Start) {
    std::vector<RegId> Perm = Identity;
    if (Start != 0) {
      // Random initial register vector over the movable slots.
      std::vector<RegId> Targets = Movable;
      Random.shuffle(Targets);
      for (size_t I = 0; I != Movable.size(); ++I)
        Perm[Movable[I]] = Targets[I];
    }
    ++Best.StartsRun;
    double Cost = greedyDescent(G, C, Movable, Perm, Best.SwapsEvaluated,
                                Best.SwapsApplied);
    if (Cost < Best.CostAfter) {
      Best.CostAfter = Cost;
      Best.Perm = std::move(Perm);
    }
    if (Best.CostAfter == 0)
      break; // Cannot improve further.
  }
  return Best;
}

} // namespace

RemapResult dra::findRemap(const AdjacencyGraph &G, const EncodingConfig &C,
                           const RemapOptions &O) {
  assert(G.numNodes() <= C.RegN && "adjacency graph larger than RegN");
  unsigned MovableCount = 0;
  for (RegId R = 0; R != C.RegN; ++R)
    MovableCount += !C.isSpecial(R) && !isPinned(O, R);
  RemapResult Result = MovableCount <= O.ExhaustiveLimit
                           ? exhaustiveSearch(G, C, O)
                           : greedySearch(G, C, O);
  // Never accept a permutation worse than the identity.
  if (Result.CostAfter > Result.CostBefore) {
    Result.CostAfter = Result.CostBefore;
    Result.Perm.resize(C.RegN);
    for (RegId R = 0; R != C.RegN; ++R)
      Result.Perm[R] = R;
  }
  return Result;
}

void dra::applyPermutation(Function &F, const std::vector<RegId> &Perm) {
  for (BasicBlock &BB : F.Blocks)
    for (Instruction &I : BB.Insts)
      for (unsigned Field = 0; Field != I.numRegFields(); ++Field) {
        RegId R = I.regField(Field);
        assert(R < Perm.size() && "register outside permutation domain");
        I.setRegField(Field, Perm[R]);
      }
}

RemapResult dra::remapFunction(Function &F, const EncodingConfig &C,
                               const RemapOptions &O) {
  assert(F.NumRegs <= C.RegN && "function register universe exceeds RegN");
  Function Widened = F; // Build the graph over the full RegN universe.
  Widened.NumRegs = C.RegN;
  Widened.recomputeCFG();
  AdjacencyGraph G =
      AdjacencyGraph::build(Widened, C, WeightMode::Frequency);
  RemapResult Result = findRemap(G, C, O);
  applyPermutation(F, Result.Perm);
  F.NumRegs = C.RegN;
  return Result;
}
