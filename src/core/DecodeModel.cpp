//===- core/DecodeModel.cpp - Hardware decode model (S2.1) ----------------===//

#include "core/DecodeModel.h"

#include <cassert>

using namespace dra;

std::vector<RegId>
dra::sequentialDecodeFields(RegId LastReg, const std::vector<uint8_t> &Codes,
                            const EncodingConfig &C) {
  assert(C.valid() && "invalid encoding configuration");
  std::vector<RegId> Out;
  Out.reserve(Codes.size());
  RegId Last = LastReg;
  for (uint8_t Code : Codes) {
    if (Code >= C.DiffN) {
      assert(Code - C.DiffN < C.SpecialRegs.size() && "bad special code");
      Out.push_back(C.SpecialRegs[Code - C.DiffN]);
      continue;
    }
    Last = (Last + Code) % C.RegN;
    Out.push_back(Last);
  }
  return Out;
}

std::vector<RegId>
dra::parallelDecodeFields(RegId LastReg, const std::vector<uint8_t> &Codes,
                          const EncodingConfig &C) {
  assert(C.valid() && "invalid encoding configuration");
  std::vector<RegId> Out(Codes.size(), NoReg);
  // Each operand's adder sums last_reg with the prefix of difference
  // codes; special codes bypass their adder and contribute nothing to the
  // running sum (the hardware masks them out of the carry chain).
  for (size_t K = 0; K != Codes.size(); ++K) {
    if (Codes[K] >= C.DiffN) {
      assert(Codes[K] - C.DiffN < C.SpecialRegs.size() &&
             "bad special code");
      Out[K] = C.SpecialRegs[Codes[K] - C.DiffN];
      continue;
    }
    unsigned Sum = LastReg;
    for (size_t J = 0; J <= K; ++J)
      if (Codes[J] < C.DiffN)
        Sum += Codes[J];
    Out[K] = Sum % C.RegN;
  }
  return Out;
}

DecodeHardwareCost dra::estimateDecodeHardware(const EncodingConfig &C,
                                               unsigned MaxOperands) {
  DecodeHardwareCost Cost;
  Cost.ModuloAdders = MaxOperands;
  Cost.AdderOutputBits = C.directWidth();
  // Operand k sums last_reg (RegW bits) plus k codes of DiffW bits.
  Cost.WidestAdderInputBits = C.directWidth() + MaxOperands * C.DiffW;
  // Two-level logic sized by the widest adder: the paper estimates "less
  // than 2k transistors" for 12 input bits -> 4 output bits. Scale
  // quadratically in input bits times linearly in output bits with a
  // fitted constant (12 in, 4 out ~ 1.8k).
  unsigned long In = Cost.WidestAdderInputBits;
  unsigned long Outb = Cost.AdderOutputBits;
  Cost.TransistorEstimate = (In * In * Outb * 25) / 8;
  return Cost;
}
