//===- core/BinaryEmitter.h - Bit-exact instruction emission ----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-exact machine-code emission for the reproduction ISA, making the
/// paper's encoding-space argument concrete: with direct encoding, every
/// register field needs RegW = ceil(log2 NumRegs) bits; with differential
/// encoding the same code addresses RegN registers through DiffW-bit
/// fields (DiffW < RegW), at the price of the set_last_reg words the
/// encoder inserted.
///
/// The format is self-describing enough to decode back (the round-trip
/// tests rely on it):
///
///   header:  numBlocks:16  numRegs:16  memWords:16  spillSlots:16
///   block:   numInsts:16   then that many instructions
///   inst:    opcode:5  regfields (W bits each, canonical order)
///            + per-opcode payload (immediates as zigzag varints,
///              branch targets as 16-bit block indices,
///              set_last_reg as value:8 delay:4)
///
/// Direct mode stores absolute register numbers in the fields; the
/// differential mode stores the encoder's difference codes, and decoding
/// recovers the absolute numbers through the shared decode-state dataflow
/// (decodeFunction), exactly like the modified hardware would.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_BINARYEMITTER_H
#define DRA_CORE_BINARYEMITTER_H

#include "core/Encoder.h"
#include "ir/Function.h"

#include <optional>
#include <string>
#include <vector>

namespace dra {

/// An emitted function plus size accounting.
struct BinaryModule {
  std::vector<uint8_t> Bytes;
  /// Meaningful bits (before final byte padding).
  size_t BitCount = 0;
  /// Bits spent on register fields alone.
  size_t RegFieldBits = 0;
  /// Register-field width used.
  unsigned FieldWidth = 0;
};

/// Emits \p F with absolute register numbers in
/// ceil(log2 F.NumRegs)-bit fields (direct encoding).
BinaryModule emitDirect(const Function &F);

/// Emits an encoded function: difference codes in DiffW-bit fields.
BinaryModule emitDifferential(const EncodedFunction &E,
                              const EncodingConfig &C);

/// Decodes a direct-mode module back to a Function. Returns std::nullopt
/// (with a diagnostic) on malformed input.
std::optional<Function> decodeDirect(const BinaryModule &M,
                                     std::string *Err = nullptr);

/// Decodes a differential-mode module back to the (Annotated, Codes) pair;
/// pass the result through decodeFunction() to recover absolute register
/// numbers.
std::optional<EncodedFunction>
decodeDifferential(const BinaryModule &M, const EncodingConfig &C,
                   std::string *Err = nullptr);

} // namespace dra

#endif // DRA_CORE_BINARYEMITTER_H
