//===- core/EncodingConfig.h - Differential encoding parameters -*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the differential register encoding scheme (Section 2 of
/// the paper): how many architected registers exist (RegN), how many
/// distinct differences the register field can express (DiffN), the field
/// width in bits (DiffW), which registers are special-purpose (reserved
/// direct codes, Section 9.2), and the nominal register access order.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_ENCODINGCONFIG_H
#define DRA_CORE_ENCODINGCONFIG_H

#include "ir/Instruction.h"

#include <cassert>
#include <vector>

namespace dra {

/// The nominal register access order within one instruction (Section 2).
/// Both the encoder and the decoder must agree on it. SrcFirst is the
/// paper's running example (src1, src2, dst); DstFirst is the Section 9.4
/// alternative (dst, src1, src2) used by the access-order ablation.
enum class AccessOrder : uint8_t { SrcFirst, DstFirst };

/// Parameters of one register class's differential encoding.
struct EncodingConfig {
  /// Architected registers addressable by the scheme.
  unsigned RegN = 12;
  /// Distinct differences representable in a register field (excludes any
  /// codes reserved for special registers).
  unsigned DiffN = 8;
  /// Width of the register field in bits.
  unsigned DiffW = 3;
  /// Special-purpose registers (stack pointer etc.). They receive reserved
  /// direct codes DiffN, DiffN+1, ... and neither consume difference codes
  /// nor update last_reg (Section 9.2). Must be register numbers < RegN.
  std::vector<RegId> SpecialRegs;
  /// Nominal access order.
  AccessOrder Order = AccessOrder::SrcFirst;

  /// True if \p R is one of the special registers.
  bool isSpecial(RegId R) const {
    for (RegId S : SpecialRegs)
      if (S == R)
        return true;
    return false;
  }

  /// Reserved direct code for special register \p R (its index plus DiffN).
  unsigned specialCode(RegId R) const {
    for (unsigned I = 0; I != SpecialRegs.size(); ++I)
      if (SpecialRegs[I] == R)
        return DiffN + I;
    assert(false && "not a special register");
    return 0;
  }

  /// Structural sanity: all codes fit into DiffW bits, differences make
  /// sense, specials are in range.
  bool valid() const {
    if (DiffN == 0 || RegN == 0 || DiffW == 0 || DiffW > 16)
      return false;
    if (DiffN + SpecialRegs.size() > (1u << DiffW))
      return false;
    if (DiffN > RegN)
      return false;
    for (RegId S : SpecialRegs)
      if (S >= RegN)
        return false;
    return true;
  }

  /// The modular difference the field must encode for a transition from
  /// register \p Prev to register \p Next (Equation (1)).
  unsigned diffOf(RegId Prev, RegId Next) const {
    assert(Prev < RegN && Next < RegN && "register out of range");
    return (Next + RegN - Prev) % RegN;
  }

  /// Condition (3): can a Prev -> Next transition be encoded without a
  /// set_last_reg?
  bool encodable(RegId Prev, RegId Next) const {
    return diffOf(Prev, Next) < DiffN;
  }

  /// Field width a direct encoding would need for RegN registers
  /// (RegW = ceil(log2 RegN)).
  unsigned directWidth() const {
    unsigned W = 0;
    while ((1u << W) < RegN)
      ++W;
    return W;
  }
};

/// Precomputed special-register lookup: one table indexed by register
/// number, built once per configuration. `EncodingConfig::isSpecial` /
/// `specialCode` are linear scans over `SpecialRegs`; called per register
/// field on the encode hot path they dominate the walk for configs that
/// reserve registers. Build one of these next to the loop instead
/// (bench_micro_throughput's BM_EncodeWithSpecials measures the win).
class SpecialRegLookup {
public:
  SpecialRegLookup() = default;
  explicit SpecialRegLookup(const EncodingConfig &C)
      : Table(C.RegN, NotSpecial) {
    for (unsigned I = 0; I != C.SpecialRegs.size(); ++I) {
      assert(C.SpecialRegs[I] < C.RegN && "special register out of range");
      Table[C.SpecialRegs[I]] = C.DiffN + I;
    }
  }

  /// True if \p R is special. \p R may be any value (out-of-range ids are
  /// not special), so callers can query unvalidated operands.
  bool isSpecial(RegId R) const {
    return R < Table.size() && Table[R] != NotSpecial;
  }

  /// Reserved direct code of special register \p R (DiffN + index).
  unsigned specialCode(RegId R) const {
    assert(isSpecial(R) && "not a special register");
    return Table[R];
  }

private:
  static constexpr unsigned NotSpecial = ~0u;
  std::vector<unsigned> Table;
};

/// The paper's low-end configuration (Section 10.1): 3-bit fields, 8
/// differences, RegN architected registers (12 in Figures 11-14).
inline EncodingConfig lowEndConfig(unsigned RegN = 12) {
  EncodingConfig C;
  C.RegN = RegN;
  C.DiffN = 8;
  C.DiffW = 3;
  return C;
}

/// The paper's high-end/VLIW configuration (Section 10.2): 5-bit fields,
/// DiffN = 32, RegN in {32, 40, 48, 56, 64}.
inline EncodingConfig vliwConfig(unsigned RegN) {
  EncodingConfig C;
  C.RegN = RegN;
  C.DiffN = 32;
  C.DiffW = 5;
  return C;
}

} // namespace dra

#endif // DRA_CORE_ENCODINGCONFIG_H
