//===- core/Encoder.h - Differential encoding and decoding ------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential register encoder and decoder (Sections 2 and 2.3).
///
/// Encoding walks the function in layout order keeping the `last_reg`
/// decode state. Each register field is emitted as the modular difference
/// from the previous access (Equation (1)); special registers use reserved
/// direct codes. Two situations require a `set_last_reg` pseudo
/// instruction:
///
///  * difference out of range (Section 2.2.1) — patched with the delayed
///    form `set_last_reg(value, delay)` placed before the instruction, so
///    the field can then encode difference 0;
///  * multi-path inconsistency (Section 2.2.2) — when the predecessors of
///    a block disagree on `last_reg`, a `set_last_reg(value)` is placed at
///    the block head.
///
/// Decoding is the exact inverse; `decodeFunction` reconstructs every
/// register number (Equation (2)) and is used by the round-trip property
/// tests. `verifyDecodable` independently checks, by dataflow over all CFG
/// paths, that the decode state is uniquely determined at every field.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_ENCODER_H
#define DRA_CORE_ENCODER_H

#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <optional>
#include <string>
#include <vector>

namespace dra {

/// Static accounting of one encoding run.
struct EncodeStats {
  /// set_last_reg instructions inserted at block heads (join repair).
  size_t SetLastJoin = 0;
  /// set_last_reg instructions inserted for out-of-range differences.
  size_t SetLastRange = 0;
  /// Total instructions in the annotated function (including slr).
  size_t NumInsts = 0;
  /// Register-field bits emitted (NumFields * DiffW).
  size_t FieldBits = 0;
  /// Register fields encoded.
  size_t NumFields = 0;

  size_t setLastTotal() const { return SetLastJoin + SetLastRange; }
};

/// The result of encoding: the function with set_last_reg instructions
/// inserted, plus the per-field difference codes.
struct EncodedFunction {
  /// Input function plus inserted set_last_reg pseudo instructions. Its
  /// register operands are untouched (the codes below are the encoded
  /// form); interpreting it must produce the input's result.
  Function Annotated;
  /// Codes[Block][InstIdx][FieldPos] = the DiffW-bit code of that field,
  /// fields numbered in the configured access order. SetLastReg
  /// instructions have an empty field list.
  std::vector<std::vector<std::vector<uint8_t>>> Codes;
  EncodeStats Stats;
};

/// Encodes \p F (all register operands must be < C.RegN). \p C must be
/// valid().
EncodedFunction encodeFunction(const Function &F, const EncodingConfig &C);

/// Decodes \p E back into a function with absolute register numbers,
/// keeping the set_last_reg instructions in place (so the result can be
/// compared against E.Annotated field by field).
Function decodeFunction(const EncodedFunction &E, const EncodingConfig &C);

/// Checks that the decode state (`last_reg`) of \p Annotated is uniquely
/// determined at every register field along every CFG path. Returns true
/// on success; otherwise false with a diagnostic in \p Err (if non-null).
bool verifyDecodable(const Function &Annotated, const EncodingConfig &C,
                     std::string *Err = nullptr);

/// Returns a copy of \p F with every SetLastReg instruction removed.
Function stripSetLastReg(const Function &F);

/// The decode-state dataflow the encoder/decoder use: for each block, the
/// unique last_reg value at its entry, or std::nullopt when predecessors
/// disagree (the encoder then inserts a head set_last_reg) or the block is
/// unreachable. Exposed so access-order passes (core/OperandSwap.h) can
/// evaluate block-leading transitions exactly like the encoder will.
std::vector<std::optional<RegId>>
decodeEntryStates(const Function &F, const EncodingConfig &C);

/// Code-size model of the low-end target: every instruction (including
/// set_last_reg, which occupies a fetch/decode slot) is \p BytesPerInst
/// bytes.
size_t codeSizeBytes(const Function &F, unsigned BytesPerInst = 2);

} // namespace dra

#endif // DRA_CORE_ENCODER_H
