//===- core/OperandSwap.h - Commutative operand swapping --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 9.4 observes that "the access order can be more flexible" and
/// that a flexible order "may incur less cost". The cheapest instance of
/// that idea: for a commutative instruction `d = a op b`, swapping the
/// source operands replaces the transitions prev->a, a->b, b->d with
/// prev->b, b->a, a->d. Because condition (3) is asymmetric, a violated
/// a->b (difference in [DiffN, RegN)) always yields an encodable b->a when
/// RegN - DiffN <= DiffN, so swapping removes many out-of-range repairs
/// outright. The decision is purely local (the neighboring transitions
/// into and out of the instruction keep their endpoints), so one pass is
/// optimal per instruction.
///
/// Runs on an allocated function, after remapping and before encoding.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_OPERANDSWAP_H
#define DRA_CORE_OPERANDSWAP_H

#include "core/EncodingConfig.h"
#include "ir/Function.h"

namespace dra {

/// True if `a op b == b op a` for the opcode.
bool isCommutative(Opcode Op);

/// Swaps the source operands of commutative instructions wherever that
/// strictly reduces the number of violated transitions. Returns the number
/// of instructions swapped. Only meaningful for AccessOrder::SrcFirst (the
/// pass is a no-op for other orders).
size_t swapCommutativeOperands(Function &F, const EncodingConfig &C);

} // namespace dra

#endif // DRA_CORE_OPERANDSWAP_H
