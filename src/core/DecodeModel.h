//===- core/DecodeModel.h - Hardware decode model (S2.1) --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2.1 of the paper argues the decode hardware is cheap: operands
/// can be decoded *in parallel* by rewriting the sequential recurrence
///
///     n_k = (n_{k-1} + d_k) mod RegN
/// as
///     n_k = (last_reg + d_1 + ... + d_k) mod RegN,
///
/// one modulo adder per operand (wider inputs for later operands). This
/// module implements both forms — the functional equivalence is a unit
/// test — plus the paper's back-of-envelope hardware cost model (adder
/// input widths, two-level combinational logic size).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_DECODEMODEL_H
#define DRA_CORE_DECODEMODEL_H

#include "core/EncodingConfig.h"

#include <vector>

namespace dra {

/// Sequential reference decoder: applies Equation (2) field by field.
/// Special codes (>= DiffN) resolve to SpecialRegs and do not advance the
/// running state.
std::vector<RegId> sequentialDecodeFields(RegId LastReg,
                                          const std::vector<uint8_t> &Codes,
                                          const EncodingConfig &C);

/// Parallel decoder: each operand k is computed independently as
/// (last_reg + sum of the first k non-special codes) mod RegN — the
/// hardware structure of Section 2.1. Produces bit-identical results to
/// the sequential decoder.
std::vector<RegId> parallelDecodeFields(RegId LastReg,
                                        const std::vector<uint8_t> &Codes,
                                        const EncodingConfig &C);

/// The paper's hardware cost estimate for the parallel decoder.
struct DecodeHardwareCost {
  /// One modulo adder per simultaneously-decoded operand.
  unsigned ModuloAdders = 0;
  /// Input bits of the widest adder (operand k sums k DiffW-bit codes
  /// plus the RegW-bit last_reg).
  unsigned WidestAdderInputBits = 0;
  /// Output bits (RegW) of every adder.
  unsigned AdderOutputBits = 0;
  /// Rough two-level-logic transistor estimate: the paper quotes "less
  /// than 2k transistors" for the 3-operand, 16-register case; we use
  /// 4 transistors per input-output bit pair product as a crude upper
  /// bound of the same order.
  unsigned long TransistorEstimate = 0;
};

/// Cost of decoding up to \p MaxOperands operands per cycle under \p C.
DecodeHardwareCost estimateDecodeHardware(const EncodingConfig &C,
                                          unsigned MaxOperands = 3);

} // namespace dra

#endif // DRA_CORE_DECODEMODEL_H
