//===- core/AdjacencyGraph.cpp - Access-adjacency graphs ------------------===//

#include "core/AdjacencyGraph.h"

#include "analysis/LoopInfo.h"

using namespace dra;

AdjacencyGraph::HalfEdge *AdjacencyGraph::findLive(std::vector<HalfEdge> &List,
                                                   RegId Node) {
  for (HalfEdge &E : List)
    if (E.Live && E.Node == Node)
      return &E;
  return nullptr;
}

void AdjacencyGraph::killHalf(std::vector<HalfEdge> &List, RegId Node) {
  for (HalfEdge &E : List)
    if (E.Live && E.Node == Node) {
      E.Live = false;
      return;
    }
}

void AdjacencyGraph::addWeight(RegId From, RegId To, double W) {
  if (From == To || W == 0)
    return;
  assert(From < NumNodes && To < NumNodes && "node out of range");
  if (HalfEdge *OutE = findLive(Out[From], To)) {
    OutE->W += W;
    HalfEdge *InE = findLive(In[To], From);
    assert(InE && "out/in half-edge lists out of sync");
    InE->W = OutE->W;
    return;
  }
  Out[From].push_back({To, true, W});
  In[To].push_back({From, true, W});
}

double AdjacencyGraph::weight(RegId From, RegId To) const {
  for (const HalfEdge &E : Out[From])
    if (E.Live && E.Node == To)
      return E.W;
  return 0.0;
}

double AdjacencyGraph::totalWeight() const {
  double Total = 0;
  for (RegId From = 0; From != NumNodes; ++From)
    for (const HalfEdge &E : Out[From])
      if (E.Live)
        Total += E.W;
  return Total;
}

double AdjacencyGraph::cost(const std::vector<RegId> &RegNoOf,
                            const EncodingConfig &C) const {
  assert(RegNoOf.size() >= NumNodes && "assignment too small");
  double Total = 0;
  for (RegId From = 0; From != NumNodes; ++From) {
    RegId FromNo = RegNoOf[From];
    if (FromNo == NoReg)
      continue;
    for (const HalfEdge &E : Out[From]) {
      if (!E.Live)
        continue;
      RegId ToNo = RegNoOf[E.Node];
      if (ToNo == NoReg)
        continue;
      if (FromNo != ToNo && !C.encodable(FromNo, ToNo))
        Total += E.W;
    }
  }
  return Total;
}

double AdjacencyGraph::identityCost(const EncodingConfig &C) const {
  std::vector<RegId> Identity(NumNodes);
  for (RegId N = 0; N != NumNodes; ++N)
    Identity[N] = N;
  return cost(Identity, C);
}

void AdjacencyGraph::mergeInto(RegId From, RegId To) {
  assert(From != To && From < NumNodes && To < NumNodes && "bad merge");
  // Index-based walks: addWeight may grow other nodes' lists, but never
  // From's (self edges are excluded), so Out[From]/In[From] are stable.
  for (size_t I = 0, E = Out[From].size(); I != E; ++I) {
    HalfEdge &Half = Out[From][I];
    if (!Half.Live)
      continue;
    RegId X = Half.Node;
    double W = Half.W;
    Half.Live = false;
    killHalf(In[X], From);
    if (X != To)
      addWeight(To, X, W);
  }
  for (size_t I = 0, E = In[From].size(); I != E; ++I) {
    HalfEdge &Half = In[From][I];
    if (!Half.Live)
      continue;
    RegId X = Half.Node;
    double W = Half.W;
    Half.Live = false;
    killHalf(Out[X], From);
    if (X != To)
      addWeight(X, To, W);
  }
  Out[From].clear();
  In[From].clear();
}

AdjacencyGraph AdjacencyGraph::build(const Function &F,
                                     const EncodingConfig &C,
                                     WeightMode Mode) {
  AdjacencyGraph G(F.NumRegs);
  LoopInfo LI = Mode == WeightMode::Frequency ? LoopInfo::compute(F)
                                              : LoopInfo();

  // Per-block sequences plus first/last accessed register for the
  // cross-block edges.
  size_t NumBlocks = F.Blocks.size();
  std::vector<RegId> FirstReg(NumBlocks, NoReg), LastReg(NumBlocks, NoReg);
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    std::vector<Access> Seq = blockAccessSequence(F, B, C);
    double Freq = Mode == WeightMode::Frequency ? LI.frequency(B) : 1.0;
    for (size_t I = 1; I < Seq.size(); ++I)
      G.addWeight(Seq[I - 1].Reg, Seq[I].Reg, Freq);
    if (!Seq.empty()) {
      FirstReg[B] = Seq.front().Reg;
      LastReg[B] = Seq.back().Reg;
    }
  }

  // Cross-block edges: last access of each predecessor -> first access of
  // the block, weight divided by the predecessor count (one set_last_reg
  // at the block head repairs every incoming edge). Blocks without
  // accesses forward their own entry state; we approximate by skipping
  // them (they contribute no transition of their own).
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    if (FirstReg[B] == NoReg || F.Blocks[B].Preds.empty())
      continue;
    double Share = 1.0 / static_cast<double>(F.Blocks[B].Preds.size());
    double Freq = Mode == WeightMode::Frequency ? LI.frequency(B) : 1.0;
    for (uint32_t Pred : F.Blocks[B].Preds) {
      RegId PredLast = LastReg[Pred];
      if (PredLast == NoReg)
        continue;
      G.addWeight(PredLast, FirstReg[B], Share * Freq);
    }
  }
  return G;
}
