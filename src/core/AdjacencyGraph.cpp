//===- core/AdjacencyGraph.cpp - Access-adjacency graphs ------------------===//

#include "core/AdjacencyGraph.h"

#include "analysis/LoopInfo.h"

using namespace dra;

void AdjacencyGraph::addWeight(RegId From, RegId To, double W) {
  if (From == To || W == 0)
    return;
  assert(From < NumNodes && To < NumNodes && "node out of range");
  auto [It, Inserted] = Weights.try_emplace(key(From, To), 0.0);
  It->second += W;
  if (Inserted) {
    OutNbrs[From].push_back(To);
    InNbrs[To].push_back(From);
  }
}

double AdjacencyGraph::weight(RegId From, RegId To) const {
  auto It = Weights.find(key(From, To));
  return It == Weights.end() ? 0.0 : It->second;
}

double AdjacencyGraph::totalWeight() const {
  double Total = 0;
  for (const auto &[Key, W] : Weights)
    Total += W;
  return Total;
}

double AdjacencyGraph::cost(const std::vector<RegId> &RegNoOf,
                            const EncodingConfig &C) const {
  assert(RegNoOf.size() >= NumNodes && "assignment too small");
  double Total = 0;
  for (const auto &[Key, W] : Weights) {
    RegId From = static_cast<RegId>(Key >> 32);
    RegId To = static_cast<RegId>(Key & 0xffffffff);
    RegId FromNo = RegNoOf[From], ToNo = RegNoOf[To];
    if (FromNo == NoReg || ToNo == NoReg)
      continue;
    if (FromNo != ToNo && !C.encodable(FromNo, ToNo))
      Total += W;
  }
  return Total;
}

double AdjacencyGraph::identityCost(const EncodingConfig &C) const {
  std::vector<RegId> Identity(NumNodes);
  for (RegId N = 0; N != NumNodes; ++N)
    Identity[N] = N;
  return cost(Identity, C);
}

void AdjacencyGraph::mergeInto(RegId From, RegId To) {
  assert(From != To && From < NumNodes && To < NumNodes && "bad merge");
  for (RegId X : OutNbrs[From]) {
    auto It = Weights.find(key(From, X));
    if (It == Weights.end())
      continue;
    double W = It->second;
    Weights.erase(It);
    if (X != To)
      addWeight(To, X, W);
  }
  for (RegId X : InNbrs[From]) {
    auto It = Weights.find(key(X, From));
    if (It == Weights.end())
      continue;
    double W = It->second;
    Weights.erase(It);
    if (X != To)
      addWeight(X, To, W);
  }
  OutNbrs[From].clear();
  InNbrs[From].clear();
}

AdjacencyGraph AdjacencyGraph::build(const Function &F,
                                     const EncodingConfig &C,
                                     WeightMode Mode) {
  AdjacencyGraph G(F.NumRegs);
  LoopInfo LI = Mode == WeightMode::Frequency ? LoopInfo::compute(F)
                                              : LoopInfo();

  // Per-block sequences plus first/last accessed register for the
  // cross-block edges.
  size_t NumBlocks = F.Blocks.size();
  std::vector<RegId> FirstReg(NumBlocks, NoReg), LastReg(NumBlocks, NoReg);
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    std::vector<Access> Seq = blockAccessSequence(F, B, C);
    double Freq = Mode == WeightMode::Frequency ? LI.frequency(B) : 1.0;
    for (size_t I = 1; I < Seq.size(); ++I)
      G.addWeight(Seq[I - 1].Reg, Seq[I].Reg, Freq);
    if (!Seq.empty()) {
      FirstReg[B] = Seq.front().Reg;
      LastReg[B] = Seq.back().Reg;
    }
  }

  // Cross-block edges: last access of each predecessor -> first access of
  // the block, weight divided by the predecessor count (one set_last_reg
  // at the block head repairs every incoming edge). Blocks without
  // accesses forward their own entry state; we approximate by skipping
  // them (they contribute no transition of their own).
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    if (FirstReg[B] == NoReg || F.Blocks[B].Preds.empty())
      continue;
    double Share = 1.0 / static_cast<double>(F.Blocks[B].Preds.size());
    double Freq = Mode == WeightMode::Frequency ? LI.frequency(B) : 1.0;
    for (uint32_t Pred : F.Blocks[B].Preds) {
      RegId PredLast = LastReg[Pred];
      if (PredLast == NoReg)
        continue;
      G.addWeight(PredLast, FirstReg[B], Share * Freq);
    }
  }
  return G;
}
