//===- core/Remap.h - Differential remapping (post-pass) --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Approach 1 of the paper (Section 5): after any register allocator has
/// run, permute the physical register numbers to minimize the
/// differential-encoding cost on the register-level adjacency graph. The
/// permutation preserves every property a traditional allocator enforced
/// (interfering ranges keep distinct numbers).
///
/// Search strategies:
///  * exhaustive — all RegN! permutations, O(RegN^2 * RegN!), used for
///    small RegN and as the optimality oracle in tests;
///  * greedy — the paper's heuristic: repeated best-pairwise-swap descent
///    to a local minimum, restarted from a configurable number of initial
///    register vectors (the paper uses 1000).
///
/// Special registers are pinned to themselves so reserved direct codes and
/// calling conventions stay intact (Sections 9.2/9.3).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_REMAP_H
#define DRA_CORE_REMAP_H

#include "core/AdjacencyGraph.h"
#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

/// Remapping knobs.
struct RemapOptions {
  /// Use exhaustive search when RegN <= this bound.
  unsigned ExhaustiveLimit = 7;
  /// Number of random restarts for the greedy search (first start is the
  /// identity vector). The paper uses 1000.
  unsigned NumStarts = 1000;
  /// Seed for the restart generator.
  uint64_t Seed = 0xd1ffe7e9c0ffee00ull;
  /// Registers the permutation must map to themselves, in addition to the
  /// encoding config's special registers. Section 9.3: pinning the
  /// caller-/callee-saved registers keeps the calling convention intact
  /// without the paper's post-hoc set_last_reg repair of save/restore
  /// sequences.
  std::vector<RegId> PinnedRegs;
};

/// Remapping outcome.
struct RemapResult {
  /// Adjacency cost of the identity assignment (before remapping).
  double CostBefore = 0;
  /// Adjacency cost after applying the chosen permutation.
  double CostAfter = 0;
  /// The chosen permutation: register r becomes Perm[r].
  std::vector<RegId> Perm;
  /// True if the exhaustive search ran (result provably optimal).
  bool Exhaustive = false;
  /// Greedy-search effort: restarts actually run (early exit on a zero-
  /// cost permutation), pairwise swaps evaluated across all descents, and
  /// swaps applied (descent steps taken). All zero for the exhaustive arm.
  unsigned StartsRun = 0;
  size_t SwapsEvaluated = 0;
  size_t SwapsApplied = 0;
};

/// Finds a cost-minimizing permutation for the register-level adjacency
/// graph \p G (NumNodes == C.RegN). Does not touch any function.
RemapResult findRemap(const AdjacencyGraph &G, const EncodingConfig &C,
                      const RemapOptions &O = {});

/// Convenience: builds the register-level adjacency graph of the allocated
/// function \p F, finds a permutation, and rewrites F's register operands
/// in place. F.NumRegs must be <= C.RegN; it becomes C.RegN.
RemapResult remapFunction(Function &F, const EncodingConfig &C,
                          const RemapOptions &O = {});

/// Applies \p Perm to every register operand of \p F.
void applyPermutation(Function &F, const std::vector<RegId> &Perm);

} // namespace dra

#endif // DRA_CORE_REMAP_H
