//===- core/Remap.h - Differential remapping (post-pass) --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Approach 1 of the paper (Section 5): after any register allocator has
/// run, permute the physical register numbers to minimize the
/// differential-encoding cost on the register-level adjacency graph. The
/// permutation preserves every property a traditional allocator enforced
/// (interfering ranges keep distinct numbers).
///
/// Search strategies:
///  * exhaustive — all RegN! permutations, O(RegN^2 * RegN!), used for
///    small RegN and as the optimality oracle in tests;
///  * greedy — the paper's heuristic: repeated best-pairwise-swap descent
///    to a local minimum, restarted from a configurable number of initial
///    register vectors (the paper uses 1000).
///
/// The greedy search evaluates candidate swaps incrementally against a
/// `RemapCostModel` — per-register adjacency arc rows precomputed once per
/// graph, so one candidate costs O(degree(a) + degree(b)) instead of a
/// full recost — and can shard its restarts across a thread pool
/// (`RemapOptions::Jobs`). Restart vectors are drawn up front from the
/// single sequential seed stream and the winner is reduced in
/// (cost, start-index) order, so the result is bit-identical to the
/// sequential search at any worker count.
///
/// Special registers are pinned to themselves so reserved direct codes and
/// calling conventions stay intact (Sections 9.2/9.3).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_REMAP_H
#define DRA_CORE_REMAP_H

#include "core/AdjacencyGraph.h"
#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

/// Remapping knobs.
struct RemapOptions {
  /// Use exhaustive search when RegN <= this bound.
  unsigned ExhaustiveLimit = 7;
  /// Number of random restarts for the greedy search (first start is the
  /// identity vector). The paper uses 1000.
  unsigned NumStarts = 1000;
  /// Seed for the restart generator.
  uint64_t Seed = 0xd1ffe7e9c0ffee00ull;
  /// Registers the permutation must map to themselves, in addition to the
  /// encoding config's special registers. Section 9.3: pinning the
  /// caller-/callee-saved registers keeps the calling convention intact
  /// without the paper's post-hoc set_last_reg repair of save/restore
  /// sequences.
  std::vector<RegId> PinnedRegs;
  /// Worker threads for the multi-start greedy search; 1 runs on the
  /// calling thread. The result is bit-identical at any value (restart
  /// vectors come from the one sequential seed stream and the winner is
  /// reduced by (cost, start-index)), so this is purely a wall-clock
  /// knob. Ignored by the exhaustive and legacy arms.
  unsigned Jobs = 1;
  /// Evaluate candidate swaps against the precomputed RemapCostModel arc
  /// rows (the default). Off selects the pre-incremental arm that walks
  /// the adjacency graph's hash map per candidate — kept as the
  /// bit-identity reference and as a benchmark baseline.
  bool UseIncremental = true;
  /// Measurement-only, honored when UseIncremental is false: recost the
  /// whole permutation for every candidate swap — the O(|E|)-per-candidate
  /// baseline `bench_remap_search` compares the incremental arm against.
  bool FullRecost = false;
};

/// Remapping outcome.
struct RemapResult {
  /// Adjacency cost of the identity assignment (before remapping).
  double CostBefore = 0;
  /// Adjacency cost after applying the chosen permutation.
  double CostAfter = 0;
  /// The chosen permutation: register r becomes Perm[r].
  std::vector<RegId> Perm;
  /// True if the exhaustive search ran (result provably optimal).
  bool Exhaustive = false;
  /// Search effort. Greedy arms: restarts actually run (early exit once a
  /// zero-cost permutation is found), pairwise swaps evaluated across all
  /// descents, and swaps applied (descent steps taken). Exhaustive arm:
  /// StartsRun is 1 (one enumeration), SwapsEvaluated counts permutations
  /// evaluated, SwapsApplied counts improvements over the running best.
  unsigned StartsRun = 0;
  size_t SwapsEvaluated = 0;
  size_t SwapsApplied = 0;
  /// Restarts never run because a lower-indexed start already reached the
  /// provable minimum (cost zero): NumStarts - StartsRun.
  unsigned StartsCutOff = 0;
  /// Incremental arm only: adjacency arcs actually summed while
  /// evaluating swap candidates, and the arc-visit count a full recost of
  /// every candidate would have needed instead (the delta-recost saving).
  size_t DeltaArcsVisited = 0;
  size_t DeltaRecostSavings = 0;
};

/// Precomputed per-register view of an AdjacencyGraph for O(degree) swap
/// evaluation: for each register, the arcs it anchors (outgoing then
/// incoming, in the graph's neighbor order) with their weights resolved,
/// plus a table of which modular differences violate condition (3).
///
/// `swapDelta` reproduces the incident-edge walk of the pre-incremental
/// search arm addition for addition, so its deltas — and therefore every
/// descent trajectory — are bit-identical to that arm's. Instances are
/// immutable after construction and safe to share across search threads.
class RemapCostModel {
public:
  RemapCostModel(const AdjacencyGraph &G, const EncodingConfig &C);

  /// Exact change in differential cost from exchanging the register
  /// numbers of \p U and \p V under \p Perm (only arcs incident to either
  /// register can change). O(degree(U) + degree(V)).
  double swapDelta(const std::vector<RegId> &Perm, RegId U, RegId V) const;

  /// Arc terms one swapDelta(_, U, V) call sums (row sizes).
  size_t deltaArcs(RegId U, RegId V) const {
    return Rows[U].size() + Rows[V].size();
  }

  /// Directed arcs in the graph: the term count of one full recost.
  size_t arcCount() const { return NumArcs; }

private:
  struct Arc {
    RegId Other; ///< The endpoint that is not the row's register.
    double W;    ///< Edge weight.
    bool IsOut;  ///< True: row register -> Other; false: the reverse.
  };

  bool violated(RegId FromNo, RegId ToNo) const {
    unsigned D = ToNo >= FromNo ? ToNo - FromNo : ToNo + RegN - FromNo;
    return ViolatedDiff[D] != 0;
  }

  unsigned RegN = 0;
  size_t NumArcs = 0;
  std::vector<std::vector<Arc>> Rows; ///< Per-register [out..., in...].
  std::vector<uint8_t> ViolatedDiff;  ///< Indexed by modular difference.
};

/// Finds a cost-minimizing permutation for the register-level adjacency
/// graph \p G (NumNodes == C.RegN). Does not touch any function.
RemapResult findRemap(const AdjacencyGraph &G, const EncodingConfig &C,
                      const RemapOptions &O = {});

/// Convenience: builds the register-level adjacency graph of the allocated
/// function \p F, finds a permutation, and rewrites F's register operands
/// in place. F.NumRegs must be <= C.RegN; it becomes C.RegN.
RemapResult remapFunction(Function &F, const EncodingConfig &C,
                          const RemapOptions &O = {});

/// Applies \p Perm to every register operand of \p F.
void applyPermutation(Function &F, const std::vector<RegId> &Perm);

} // namespace dra

#endif // DRA_CORE_REMAP_H
