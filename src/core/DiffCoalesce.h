//===- core/DiffCoalesce.h - Differential coalesce (approach 3) -*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Approach 3 of the paper (Section 7, Figure 9): on top of the
/// optimal-spill allocator, the coalesce stage is driven by the combined
/// cost of move instructions *and* set_last_reg instructions. Each step
/// tentatively coalesces every remaining move candidate, calls the
/// rebuild&simplify + differential-select subroutine to obtain the
/// resulting coloring cost (or "uncolorable"), undoes the attempt, and
/// finally commits the candidate with the maximal cost reduction. The
/// driver then colors the merged graph with differential select and
/// rewrites the function; if the optimistic coloring fails (pressure <= K
/// does not guarantee colorability), the cheapest failing node is spilled
/// and the driver restarts — these extra spills are reported.
///
/// With DiffAware = false the same machinery reproduces a conventional
/// aggressive coalescer (move cost only, undo on uncolorable), which is the
/// "O-spill" arm of the paper's evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_DIFFCOALESCE_H
#define DRA_CORE_DIFFCOALESCE_H

#include "core/EncodingConfig.h"
#include "driver/Metrics.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

class Arena;

/// Knobs for the coalesce/color driver.
struct CoalesceOptions {
  /// Include differential-encoding cost in the coalescing objective and
  /// color with differential select.
  bool DiffAware = true;
  /// Evaluate at most this many candidates per step (highest move weight
  /// first); bounds the O(moves^2) loop on move-heavy functions.
  unsigned MaxCandidatesPerStep = 32;
  /// Upper bound on committed coalescences (safety valve).
  unsigned MaxSteps = 256;
};

/// Outcome of coalesceAndColor.
struct CoalesceResult {
  /// Moves whose endpoints were merged (instruction deleted).
  size_t MovesCoalesced = 0;
  /// Moves remaining in the final code.
  size_t MovesRemaining = 0;
  /// Ranges spilled because the optimistic coloring failed.
  size_t ExtraSpilledRanges = 0;
  /// Differential cost of the final assignment on the live-range adjacency
  /// graph (0 when !DiffAware? — still reported for comparison).
  double FinalAdjCost = 0;
  /// Coalescence steps committed.
  unsigned Steps = 0;
  /// False if coloring kept failing beyond the retry limit.
  bool Success = true;

  // Search-effort counters (always maintained; flushed to a
  // MetricsRegistry by runPipeline when one is configured).
  /// Invocations of the rebuild&simplify + select coloring oracle
  /// (colorMerged): the current-cost evaluation, one per candidate probe,
  /// and the final coloring of each restart round.
  size_t OracleCalls = 0;
  /// Tentative coalescences probed on a graph copy.
  size_t ProbesAttempted = 0;
  /// Probes whose merged graph the oracle failed to color (rejected).
  size_t ProbesUncolorable = 0;
  /// Spill-and-restart rounds taken after a failed final coloring.
  unsigned SpillRestarts = 0;
};

/// Coalesces moves and colors \p F onto K = C.RegN registers, mutating it
/// in place (register operands become physical numbers < C.RegN, identity
/// moves are deleted, F.NumRegs becomes C.RegN). The function must already
/// satisfy max-pressure <= C.RegN - small slack (run optimalSpill first).
///
/// When \p SubSpans is non-null, one Depth-1 "coalesce.round" span is
/// recorded per coalesce/color (restart) round (null = no clock reads).
/// With \p Scratch, per-round graph-build scratch (liveness worklists,
/// interference bit rows) is carved from the arena instead of the heap;
/// the arena must outlive the call.
CoalesceResult coalesceAndColor(Function &F, const EncodingConfig &C,
                                const CoalesceOptions &O = {},
                                std::vector<StageSpan> *SubSpans = nullptr,
                                Arena *Scratch = nullptr);

} // namespace dra

#endif // DRA_CORE_DIFFCOALESCE_H
