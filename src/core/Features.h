//===- core/Features.h - Per-function feature extraction --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic per-function feature vector the portfolio
/// chooser (core/Portfolio.h) keys its decision table on. The features
/// summarize exactly the properties that make the three differential
/// schemes trade places per function: register pressure (how much
/// spilling pressure the allocator faces), interference adjacency density
/// (how constrained the coloring is), loop structure (where the dynamic
/// cost concentrates), and raw size. Extraction runs one liveness pass
/// and one interference-graph build — a small fraction of any single
/// pipeline arm — so choosing is always cheaper than racing.
///
/// The vector layout is a stable contract: `featureNames()` is the schema
/// both `dra-batch --portfolio-train` (writer) and the portfolio-v1
/// decision table (consumer) carry, and a table whose feature list does
/// not match is rejected at load time rather than silently misread.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_FEATURES_H
#define DRA_CORE_FEATURES_H

#include <string>
#include <vector>

namespace dra {

class Function;

/// The extracted features, in `featureNames()` order.
struct FunctionFeatures {
  double NumBlocks = 0;    ///< Basic blocks.
  double NumInsts = 0;     ///< Instructions.
  double MaxLoopDepth = 0; ///< Deepest loop nest.
  double AvgLoopDepth = 0; ///< Mean loop depth over blocks.
  double MaxPressure = 0;  ///< Peak simultaneously-live registers.
  double AvgLiveOut = 0;   ///< Mean live-out set size over blocks
                           ///< (the pressure histogram's central summary).
  double AdjDensity = 0;   ///< Interference edges / possible pairs, in
                           ///< [0, 1] (0 for < 2 live ranges).
  double MoveDensity = 0;  ///< Move instructions / instructions.

  /// The features as a flat vector, in `featureNames()` order.
  std::vector<double> asVector() const;
};

/// Stable names of the features, index-aligned with
/// FunctionFeatures::asVector(). The schema string both the training
/// emitter and the decision-table loader carry.
const std::vector<std::string> &featureNames();

/// Extracts the features of \p F. Pure: same function, same vector, on
/// any thread. \p F itself is not modified (the CFG is recomputed on a
/// private copy).
FunctionFeatures computeFeatures(const Function &F);

} // namespace dra

#endif // DRA_CORE_FEATURES_H
