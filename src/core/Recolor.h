//===- core/Recolor.h - Differential recoloring local search ----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live-range-granularity refinement of a register assignment for
/// differential encoding. Differential remapping (Section 5) permutes
/// whole register *numbers*, which the paper itself notes is restrictive
/// because the register-level adjacency graph is dense. Recoloring applies
/// the same pairwise-improvement idea one level down: each live range (or
/// move-tied cluster of live ranges, so coalesced moves stay coalesced) is
/// re-assigned the legal color minimizing the adjacency cost, sweeping
/// until a fixpoint. This is the natural strengthening of differential
/// select used by the Select/Coalesce pipelines before the final rewrite,
/// and it strictly generalizes remapping (a permutation is one particular
/// simultaneous recoloring).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_RECOLOR_H
#define DRA_CORE_RECOLOR_H

#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

class Arena;

/// Recoloring knobs.
struct RecolorOptions {
  /// Maximum improvement sweeps over all clusters.
  unsigned MaxSweeps = 12;
};

/// Recoloring outcome.
struct RecolorStats {
  double CostBefore = 0;
  double CostAfter = 0;
  unsigned Sweeps = 0;
  /// Cluster recolorings applied.
  size_t Changes = 0;
  /// Move-tied clusters considered (the search space size).
  size_t Clusters = 0;
  /// Candidate color evaluations (selectCost calls) across all sweeps —
  /// the recoloring descent's unit of work.
  size_t CandidateEvals = 0;
};

/// Improves \p ColorOf (a complete vreg -> color map for \p F, which must
/// still be in virtual-register form) in place. Interference is respected;
/// move-tied clusters (moves whose endpoints currently share a color) are
/// recolored jointly so no coalesced move is reintroduced. The objective
/// is the static adjacency cost of condition (3) under \p C.
/// With \p Scratch, graph-build scratch (liveness worklists, interference
/// bit rows) is carved from the arena instead of the heap; the arena must
/// outlive the call.
RecolorStats recolorColoring(const Function &F, const EncodingConfig &C,
                             std::vector<RegId> &ColorOf,
                             const RecolorOptions &O = {},
                             Arena *Scratch = nullptr);

} // namespace dra

#endif // DRA_CORE_RECOLOR_H
