//===- core/DiffSelectHook.cpp - Differential select (approach 2) ---------===//

#include "core/DiffSelectHook.h"

#include <algorithm>

using namespace dra;

double dra::selectCost(const AdjacencyGraph &G, const EncodingConfig &C,
                       const std::vector<RegId> &Members, unsigned Color,
                       const std::function<int(RegId)> &ColorOfVReg) {
  double Total = 0;
  auto IsMember = [&](RegId R) {
    return std::find(Members.begin(), Members.end(), R) != Members.end();
  };
  for (RegId M : Members) {
    if (M >= G.numNodes())
      continue;
    G.forEachOut(M, [&](RegId To, double W) {
      if (IsMember(To))
        return; // Same node: difference 0, always encodable.
      int ToColor = ColorOfVReg(To);
      if (ToColor < 0)
        return;
      if (static_cast<unsigned>(ToColor) != Color &&
          !C.encodable(Color, static_cast<RegId>(ToColor)))
        Total += W;
    });
    G.forEachIn(M, [&](RegId From, double W) {
      if (IsMember(From))
        return;
      int FromColor = ColorOfVReg(From);
      if (FromColor < 0)
        return;
      if (static_cast<unsigned>(FromColor) != Color &&
          !C.encodable(static_cast<RegId>(FromColor), Color))
        Total += W;
    });
  }
  return Total;
}

void DiffSelectHook::beginFunction(const Function &F) {
  Adjacency = AdjacencyGraph::build(F, Config, WeightMode::Frequency);
}

unsigned DiffSelectHook::choose(const SelectContext &Ctx) {
  const std::vector<unsigned> &OkColors = *Ctx.OkColors;
  assert(!OkColors.empty() && "choose() with no legal colors");
  unsigned BestColor = OkColors.front();
  double BestCost = selectCost(Adjacency, Config, *Ctx.Members, BestColor,
                               Ctx.ColorOfVReg);
  for (size_t I = 1; I < OkColors.size() && BestCost > 0; ++I) {
    double Cost = selectCost(Adjacency, Config, *Ctx.Members, OkColors[I],
                             Ctx.ColorOfVReg);
    if (Cost < BestCost) {
      BestCost = Cost;
      BestColor = OkColors[I];
    }
  }
  return BestColor;
}
