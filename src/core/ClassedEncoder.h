//===- core/ClassedEncoder.h - Multi-class differential encoding -*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 9.1: when registers form multiple classes (integer, floating
/// point, ...), "the access sequence only contains registers belonging to
/// the same register class" and "during decoding, we need a separate
/// last_reg register for each class". This module generalizes the
/// single-class encoder accordingly: every register belongs to exactly one
/// class, each class numbers its members locally (differences are computed
/// modulo the class size), and the decoder keeps one last_reg per class.
/// A set_last_reg's class is implied by its value, so no new instruction
/// bits are needed.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_CLASSEDENCODER_H
#define DRA_CORE_CLASSEDENCODER_H

#include "core/Encoder.h"
#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <string>
#include <vector>

namespace dra {

/// One register class: its member registers (class-local number = index in
/// Members) and its field-encoding parameters.
struct RegClass {
  std::string Name;
  /// Machine register numbers belonging to this class, in class-local
  /// numbering order.
  std::vector<RegId> Members;
  /// Distinct differences encodable in this class's register fields.
  unsigned DiffN = 8;
  /// Field width in bits.
  unsigned DiffW = 3;
};

/// A partition of the machine registers into classes.
struct ClassedConfig {
  std::vector<RegClass> Classes;
  AccessOrder Order = AccessOrder::SrcFirst;

  /// Total registers across classes.
  unsigned totalRegs() const;
  /// Class index of register \p R (asserts when unassigned).
  unsigned classOf(RegId R) const;
  /// Class-local index of register \p R.
  unsigned localIndex(RegId R) const;
  /// True if every register below \p NumRegs belongs to exactly one class
  /// and every class's codes fit its field width.
  bool valid(unsigned NumRegs) const;
};

/// Per-class encode statistics.
struct ClassedEncodeStats {
  std::vector<EncodeStats> PerClass;
  size_t setLastTotal() const {
    size_t Total = 0;
    for (const EncodeStats &S : PerClass)
      Total += S.setLastTotal();
    return Total;
  }
};

/// Result of classed encoding: annotated function plus per-field codes
/// (same layout as EncodedFunction::Codes).
struct ClassedEncodedFunction {
  Function Annotated;
  std::vector<std::vector<std::vector<uint8_t>>> Codes;
  ClassedEncodeStats Stats;
};

/// Encodes \p F under the class partition \p C. Every register operand of
/// F must belong to some class.
ClassedEncodedFunction encodeClassedFunction(const Function &F,
                                             const ClassedConfig &C);

/// Decodes back to absolute register numbers (the inverse of
/// encodeClassedFunction; set_last_reg instructions stay in place).
Function decodeClassedFunction(const ClassedEncodedFunction &E,
                               const ClassedConfig &C);

/// Checks that every class's decode state is uniquely determined at every
/// field of that class along all CFG paths.
bool verifyClassedDecodable(const Function &Annotated,
                            const ClassedConfig &C,
                            std::string *Err = nullptr);

} // namespace dra

#endif // DRA_CORE_CLASSEDENCODER_H
