//===- core/AdjacencyGraph.h - Access-adjacency graphs ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adjacency graph of Definition 2: a directed weighted graph whose
/// nodes are live ranges (or, post-allocation, registers) and where an edge
/// vi -> vj with weight w means vj immediately follows vi in the access
/// sequence w times. Self edges are omitted (a zero difference is always
/// encodable). Cross-block adjacencies — from the last access of a
/// predecessor to the first access of a block — contribute weight divided
/// by the number of predecessors, because at most one set_last_reg repairs
/// all of a block's incoming edges (Section 4).
///
/// The differential-encoding cost of a register assignment is the sum of
/// edge weights violating condition (3):
///     0 <= (reg_no(vj) - reg_no(vi)) mod RegN < DiffN.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_ADJACENCYGRAPH_H
#define DRA_CORE_ADJACENCYGRAPH_H

#include "core/AccessSequence.h"
#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <unordered_map>
#include <vector>

namespace dra {

/// How edge weights are accumulated.
enum class WeightMode : uint8_t {
  /// One unit per occurrence — predicts the *static* number of
  /// set_last_reg instructions (the paper's evaluation metric).
  Static,
  /// Occurrences scaled by the block's static execution-frequency estimate
  /// (10^loop-depth) — available for profile-style cost estimation.
  Frequency,
};

/// Directed weighted adjacency graph over register/live-range ids.
class AdjacencyGraph {
public:
  explicit AdjacencyGraph(uint32_t NumNodes = 0) { reset(NumNodes); }

  /// Builds the graph for \p F. Nodes are F's register ids (virtual
  /// registers before allocation, physical numbers after), so the same
  /// routine serves differential select (live ranges) and differential
  /// remapping (registers).
  static AdjacencyGraph build(const Function &F, const EncodingConfig &C,
                              WeightMode Mode = WeightMode::Static);

  void reset(uint32_t NewNumNodes) {
    NumNodes = NewNumNodes;
    Weights.clear();
    OutNbrs.assign(NumNodes, {});
    InNbrs.assign(NumNodes, {});
  }

  uint32_t numNodes() const { return NumNodes; }

  /// Adds \p W to edge From -> To. Self edges are ignored.
  void addWeight(RegId From, RegId To, double W);

  /// Weight of edge From -> To (0 when absent).
  double weight(RegId From, RegId To) const;

  /// Invokes \p Fn(To, Weight) for every outgoing edge of \p N.
  template <typename FnT> void forEachOut(RegId N, FnT Fn) const {
    for (RegId To : OutNbrs[N]) {
      auto It = Weights.find(key(N, To));
      if (It != Weights.end())
        Fn(To, It->second);
    }
  }

  /// Invokes \p Fn(From, Weight) for every incoming edge of \p N.
  template <typename FnT> void forEachIn(RegId N, FnT Fn) const {
    for (RegId From : InNbrs[N]) {
      auto It = Weights.find(key(From, N));
      if (It != Weights.end())
        Fn(From, It->second);
    }
  }

  /// Sum of all edge weights.
  double totalWeight() const;

  /// Differential cost of the assignment \p RegNoOf (node -> register
  /// number): sum of weights of edges violating condition (3). Edges with
  /// either endpoint mapped to NoReg are skipped (not yet assigned).
  double cost(const std::vector<RegId> &RegNoOf,
              const EncodingConfig &C) const;

  /// Cost of the identity assignment (node id == register number); only
  /// meaningful for post-allocation graphs where nodes are registers.
  double identityCost(const EncodingConfig &C) const;

  /// Merges node \p From into node \p To: From's in/out edges are re-aimed
  /// at To (dropping resulting self edges). Used by differential coalesce.
  void mergeInto(RegId From, RegId To);

private:
  uint32_t NumNodes = 0;
  std::unordered_map<uint64_t, double> Weights;
  /// Neighbor id lists (deduplicated on insertion; entries whose edge was
  /// removed by mergeInto are skipped via the Weights lookup).
  std::vector<std::vector<RegId>> OutNbrs;
  std::vector<std::vector<RegId>> InNbrs;

  static uint64_t key(RegId From, RegId To) {
    return (static_cast<uint64_t>(From) << 32) | To;
  }
};

} // namespace dra

#endif // DRA_CORE_ADJACENCYGRAPH_H
