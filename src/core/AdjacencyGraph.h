//===- core/AdjacencyGraph.h - Access-adjacency graphs ----------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adjacency graph of Definition 2: a directed weighted graph whose
/// nodes are live ranges (or, post-allocation, registers) and where an edge
/// vi -> vj with weight w means vj immediately follows vi in the access
/// sequence w times. Self edges are omitted (a zero difference is always
/// encodable). Cross-block adjacencies — from the last access of a
/// predecessor to the first access of a block — contribute weight divided
/// by the number of predecessors, because at most one set_last_reg repairs
/// all of a block's incoming edges (Section 4).
///
/// The differential-encoding cost of a register assignment is the sum of
/// edge weights violating condition (3):
///     0 <= (reg_no(vj) - reg_no(vi)) mod RegN < DiffN.
///
/// Storage is flat per-node half-edge lists (weight carried on both the
/// out- and in-side), kept in first-insertion order; mergeInto tombstones
/// dead entries in place. No hashing on any path; per-edge accumulation
/// order — and with it every weight's exact floating-point value — matches
/// the program order of addWeight calls.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_ADJACENCYGRAPH_H
#define DRA_CORE_ADJACENCYGRAPH_H

#include "core/AccessSequence.h"
#include "core/EncodingConfig.h"
#include "ir/Function.h"

#include <vector>

namespace dra {

/// How edge weights are accumulated.
enum class WeightMode : uint8_t {
  /// One unit per occurrence — predicts the *static* number of
  /// set_last_reg instructions (the paper's evaluation metric).
  Static,
  /// Occurrences scaled by the block's static execution-frequency estimate
  /// (10^loop-depth) — available for profile-style cost estimation.
  Frequency,
};

/// Directed weighted adjacency graph over register/live-range ids.
class AdjacencyGraph {
public:
  explicit AdjacencyGraph(uint32_t NumNodes = 0) { reset(NumNodes); }

  /// Builds the graph for \p F. Nodes are F's register ids (virtual
  /// registers before allocation, physical numbers after), so the same
  /// routine serves differential select (live ranges) and differential
  /// remapping (registers).
  static AdjacencyGraph build(const Function &F, const EncodingConfig &C,
                              WeightMode Mode = WeightMode::Static);

  void reset(uint32_t NewNumNodes) {
    NumNodes = NewNumNodes;
    Out.assign(NumNodes, {});
    In.assign(NumNodes, {});
  }

  uint32_t numNodes() const { return NumNodes; }

  /// Adds \p W to edge From -> To. Self edges are ignored.
  void addWeight(RegId From, RegId To, double W);

  /// Weight of edge From -> To (0 when absent).
  double weight(RegId From, RegId To) const;

  /// Invokes \p Fn(To, Weight) for every outgoing edge of \p N, in
  /// first-insertion order.
  template <typename FnT> void forEachOut(RegId N, FnT Fn) const {
    for (const HalfEdge &E : Out[N])
      if (E.Live)
        Fn(E.Node, E.W);
  }

  /// Invokes \p Fn(From, Weight) for every incoming edge of \p N, in
  /// first-insertion order.
  template <typename FnT> void forEachIn(RegId N, FnT Fn) const {
    for (const HalfEdge &E : In[N])
      if (E.Live)
        Fn(E.Node, E.W);
  }

  /// Sum of all edge weights.
  double totalWeight() const;

  /// Differential cost of the assignment \p RegNoOf (node -> register
  /// number): sum of weights of edges violating condition (3). Edges with
  /// either endpoint mapped to NoReg are skipped (not yet assigned).
  double cost(const std::vector<RegId> &RegNoOf,
              const EncodingConfig &C) const;

  /// Cost of the identity assignment (node id == register number); only
  /// meaningful for post-allocation graphs where nodes are registers.
  double identityCost(const EncodingConfig &C) const;

  /// Merges node \p From into node \p To: From's in/out edges are re-aimed
  /// at To (dropping resulting self edges). Used by differential coalesce.
  void mergeInto(RegId From, RegId To);

private:
  /// One direction of an edge; the weight is duplicated on the out- and
  /// in-side so both iteration directions are a single linear walk.
  struct HalfEdge {
    RegId Node;  // other endpoint
    bool Live;   // false once mergeInto removed the edge
    double W;
  };

  uint32_t NumNodes = 0;
  std::vector<std::vector<HalfEdge>> Out; // Out[From] -> {To, W}
  std::vector<std::vector<HalfEdge>> In;  // In[To] -> {From, W}

  HalfEdge *findLive(std::vector<HalfEdge> &List, RegId Node);
  void killHalf(std::vector<HalfEdge> &List, RegId Node);
};

} // namespace dra

#endif // DRA_CORE_ADJACENCYGRAPH_H
