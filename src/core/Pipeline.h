//===- core/Pipeline.h - End-to-end allocation pipelines --------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five pipelines of the paper's low-end evaluation (Section 10.1),
/// exposed behind one facade:
///
///  * Baseline  — iterated register coalescing with K = BaselineK (8)
///                registers, direct encoding.
///  * OSpill    — optimal-spill allocator with K = BaselineK registers,
///                aggressive (move-cost-only) coalescing, direct encoding.
///  * Remap     — iterated register coalescing with RegN (12) registers,
///                then differential remapping, then encoding.
///  * Select    — iterated register coalescing with RegN registers and the
///                differential select stage, then remapping + encoding.
///  * Coalesce  — optimal spilling with RegN registers, differential
///                coalesce + differential select, remapping + encoding.
///
/// The differential schemes keep the instruction width of the baseline
/// (DiffW bits per register field) while addressing RegN > 2^DiffW
/// registers.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_PIPELINE_H
#define DRA_CORE_PIPELINE_H

#include "core/DiffCoalesce.h"
#include "core/Encoder.h"
#include "core/EncodingConfig.h"
#include "core/OptimalSpill.h"
#include "core/Portfolio.h"
#include "core/Recolor.h"
#include "core/Remap.h"
#include "core/Scheme.h"
#include "driver/Metrics.h"
#include "ir/Function.h"
#include "regalloc/GraphColoring.h"

#include <cstdint>
#include <vector>

namespace dra {

class PipelineCache;
class TraceContext; // driver/Trace.h; config carries only the pointer

/// Pipeline parameters.
struct PipelineConfig {
  Scheme S = Scheme::Baseline;
  /// Architected registers of the unmodified ISA (Baseline / OSpill).
  unsigned BaselineK = 8;
  /// Differential-encoding parameters for the Remap/Select/Coalesce
  /// schemes (RegN registers addressable through DiffW-bit fields).
  EncodingConfig Enc = lowEndConfig(12);
  /// Options for the remapping post-pass.
  RemapOptions Remap;
  /// Run remapping after Select/Coalesce as well (Section 3: "differential
  /// remapping can always be invoked after approach 2 or 3").
  bool RemapPostPass = true;
  /// Section 8.2: enable differential encoding only when the statically
  /// estimated benefit (frequency-weighted spills saved) exceeds the
  /// estimated set_last_reg overhead; otherwise fall back to Baseline.
  bool AdaptiveEnable = false;
  /// Coalesce-driver knobs (Coalesce/OSpill schemes).
  CoalesceOptions Coalesce;
  /// ILP node budget (OSpill/Coalesce schemes).
  uint64_t ILPNodeBudget = 20000;
  /// When non-null, runPipeline flushes allocator-deep counters (worklist
  /// rounds, coalesce-test outcomes, oracle calls, set_last_reg repairs,
  /// per-stage durations, ...) into this registry, labeled with
  /// {scheme, function}. Null (the default) is the zero-cost fast path:
  /// no registry locking and no per-round clock reads.
  MetricsRegistry *Metrics = nullptr;
  /// When non-null, runPipeline consults this cache before compiling and
  /// stores every fresh result into it. A hit returns the cached
  /// PipelineResult (bit-identical to a fresh compile by the determinism
  /// guarantees; driver/ResultCache.h is the concrete implementation) and
  /// skips the pipeline entirely — only the Spans timing record is absent
  /// on the hit path. Null (the default) compiles unconditionally.
  PipelineCache *Cache = nullptr;
  /// When non-null, runPipeline mirrors its stage/substage spans into this
  /// request-scoped trace (driver/Trace.h) and the cache layer records its
  /// tier probes there, so one server request's latency is attributable
  /// span by span. Null (the default) records nothing — the request path
  /// pays only pointer tests. Not part of the cache key (ResultCache
  /// hashes only the explicit config fields).
  TraceContext *Trace = nullptr;
  /// Scheme-portfolio racing / chooser block (core/Portfolio.h). When
  /// Mode != Off, runPipeline ignores S and instead races the configured
  /// arms (or consults the chooser table), committing the winner by the
  /// deterministic (encoded-cost, arm-index) rule. The behavioral knobs
  /// (Mode, Arms, MinConfidence, table fingerprint) join the cache key;
  /// Jobs does not.
  PortfolioConfig Portfolio;
};

// StageSpan (one timed pipeline stage or nested sub-phase) lives in
// driver/Metrics.h so the algorithm layers can emit sub-spans directly.

/// Everything the benchmarks need to know about one pipeline run.
struct PipelineResult {
  /// The final machine code: allocated, and for differential schemes
  /// annotated with set_last_reg instructions.
  Function F;
  bool DiffEncoded = false;
  /// True when AdaptiveEnable chose the baseline for this function.
  bool AdaptiveFellBack = false;

  // Stage reports (fields are meaningful per scheme).
  AllocResult Alloc;
  OptimalSpillResult OSpill;
  CoalesceResult Coalesce;
  RemapResult Remap;
  RecolorStats Recolor;
  EncodeStats Enc;

  /// Wall-clock record of every stage that ran. Depth-0 spans are the
  /// pipeline stages; Depth-1 spans are nested sub-phases (IRC rounds,
  /// ILP refinement rounds, coalesce restarts) recorded only when
  /// PipelineConfig::Metrics is set, and appear *before* their enclosing
  /// stage span (inner scopes close first). When the adaptive mode falls
  /// back to the baseline, the spans of both runs are kept (the
  /// differential attempt is real compile time).
  std::vector<StageSpan> Spans;

  // Final static counts.
  size_t NumInsts = 0;
  size_t SpillInsts = 0;
  size_t SetLastRegs = 0;
  size_t CodeBytes = 0;

  double spillPercent() const {
    return NumInsts == 0 ? 0.0
                         : 100.0 * static_cast<double>(SpillInsts) /
                               static_cast<double>(NumInsts);
  }
  double setLastPercent() const {
    return NumInsts == 0 ? 0.0
                         : 100.0 * static_cast<double>(SetLastRegs) /
                               static_cast<double>(NumInsts);
  }
};

/// Abstract result cache consulted by runPipeline (PipelineConfig::Cache).
/// The core layer owns only this interface; the concrete content-addressed
/// two-tier implementation lives in driver/ResultCache.h so the dependency
/// points driver -> core, never the reverse. Implementations must be safe
/// for concurrent lookup/store from BatchCompiler workers.
class PipelineCache {
public:
  virtual ~PipelineCache() = default;

  /// True when a result for (\p Src, \p C) is available; fills \p Out.
  /// False is always safe: the caller falls back to a fresh compile.
  virtual bool lookup(const Function &Src, const PipelineConfig &C,
                      PipelineResult &Out) = 0;

  /// Offers the freshly-compiled \p R for (\p Src, \p C).
  virtual void store(const Function &Src, const PipelineConfig &C,
                     const PipelineResult &R) = 0;
};

/// Runs pipeline \p C on a copy of \p Src and returns the outcome.
PipelineResult runPipeline(const Function &Src, const PipelineConfig &C);

} // namespace dra

#endif // DRA_CORE_PIPELINE_H
