//===- core/OptimalSpill.cpp - ILP-based near-optimal spilling ------------===//

#include "core/OptimalSpill.h"

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ilp/CoverSolver.h"
#include "regalloc/GraphColoring.h"

#include <unordered_map>
#include <unordered_set>

using namespace dra;

namespace {

/// Hash of a sorted live set, to deduplicate identical constraints.
uint64_t liveSetHash(const std::vector<uint32_t> &Regs) {
  uint64_t H = 1469598103934665603ull;
  for (uint32_t R : Regs) {
    H ^= R;
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

OptimalSpillResult dra::optimalSpill(Function &F, unsigned K,
                                     uint64_t NodeBudget,
                                     std::vector<StageSpan> *SubSpans,
                                     Arena *Scratch) {
  OptimalSpillResult Result;
  std::vector<uint8_t> IsSpillTemp(F.NumRegs, 0);

  const unsigned MaxRounds = 12;
  while (Result.Rounds < MaxRounds) {
    ScopedSpan RoundSpan(SubSpans, "ospill.round");
    ++Result.Rounds;
    F.recomputeCFG();
    Liveness LV = Liveness::compute(F, Scratch);
    LoopInfo LI = LoopInfo::compute(F);

    // Frequency-weighted spill cost of every virtual register.
    std::vector<double> CostOf(F.NumRegs, 0.0);
    for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
         ++B) {
      double Freq = LI.frequency(B);
      for (const Instruction &I : F.Blocks[B].Insts) {
        RegId Def = I.def();
        if (Def != NoReg)
          CostOf[Def] += Freq;
        RegId Uses[2];
        unsigned NumUses;
        I.uses(Uses, NumUses);
        for (unsigned U = 0; U != NumUses; ++U)
          CostOf[Uses[U]] += Freq;
      }
    }
    // Spill temporaries must essentially never be re-spilled.
    for (RegId R = 0; R != F.NumRegs; ++R) {
      if (R < IsSpillTemp.size() && IsSpillTemp[R])
        CostOf[R] = 1e12;
      CostOf[R] = std::max(CostOf[R], 1e-6);
    }

    // Collect over-pressure points; the ILP only sees virtual registers
    // that occur in at least one constraint (compaction keeps the search
    // space proportional to the over-pressure regions, not the whole
    // function).
    std::unordered_set<uint64_t> Seen;
    std::vector<std::vector<uint32_t>> RawConstraints;
    std::vector<int> RawNeeds;
    auto AddPoint = [&](const BitVector &Live) {
      size_t Pressure = Live.count();
      if (Pressure <= K)
        return;
      std::vector<uint32_t> Regs = Live.toVector();
      if (!Seen.insert(liveSetHash(Regs)).second)
        return;
      RawConstraints.push_back(std::move(Regs));
      RawNeeds.push_back(static_cast<int>(Pressure - K));
    };
    for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
         ++B) {
      AddPoint(LV.liveIn(B));
      LV.forEachInstBackward(
          F, B, [&](size_t, const BitVector &LiveAfter) {
            AddPoint(LiveAfter);
          });
    }
    if (RawConstraints.empty())
      return Result; // Pressure everywhere within K: done.

    // Compact variable indexing.
    std::unordered_map<uint32_t, uint32_t> VarOf;
    std::vector<RegId> RegOfVar;
    CoverProblem Problem;
    for (size_t CIdx = 0; CIdx != RawConstraints.size(); ++CIdx) {
      CoverConstraint Con;
      Con.Need = RawNeeds[CIdx];
      for (uint32_t R : RawConstraints[CIdx]) {
        auto [It, Inserted] =
            VarOf.try_emplace(R, static_cast<uint32_t>(RegOfVar.size()));
        if (Inserted) {
          RegOfVar.push_back(R);
          Problem.Cost.push_back(CostOf[R]);
        }
        Con.Vars.push_back(It->second);
      }
      Problem.Constraints.push_back(std::move(Con));
    }

    Result.ILPConstraints += Problem.Constraints.size();
    Result.ILPVariables += RegOfVar.size();
    CoverSolution Sol = solveCover(Problem, NodeBudget);
    Result.ILPOptimal &= Sol.Optimal;

    bool AnySpill = false;
    for (uint32_t Var = 0; Var != RegOfVar.size(); ++Var) {
      if (!Sol.Selected[Var])
        continue;
      AnySpill = true;
      ++Result.SpilledRanges;
      std::vector<RegId> Temps = insertSpillCode(F, RegOfVar[Var]);
      IsSpillTemp.resize(F.NumRegs, 0);
      for (RegId T : Temps)
        IsSpillTemp[T] = 1;
    }
    assert(AnySpill && "cover solution selected nothing for a nonempty "
                       "constraint set");
    (void)AnySpill;
  }
  return Result;
}
