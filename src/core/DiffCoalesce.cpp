//===- core/DiffCoalesce.cpp - Differential coalesce (approach 3) ---------===//

#include "core/DiffCoalesce.h"

#include "analysis/Liveness.h"
#include "core/AdjacencyGraph.h"
#include "core/DiffSelectHook.h"
#include "core/Recolor.h"
#include "regalloc/GraphColoring.h"
#include "regalloc/InterferenceGraph.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

using namespace dra;

namespace {

/// The merged view of one function's interference + adjacency graphs under
/// a set of committed coalescences. Nodes are virtual registers; merged
/// groups are represented by their union-find root.
class MergedGraph {
public:
  MergedGraph(const Function &F, const EncodingConfig &C,
              Arena *Scratch = nullptr) {
    NumVRegs = F.NumRegs;
    Parent.resize(NumVRegs);
    for (RegId R = 0; R != NumVRegs; ++R)
      Parent[R] = R;
    Members.assign(NumVRegs, {});
    for (RegId R = 0; R != NumVRegs; ++R)
      Members[R].push_back(R);

    Liveness LV = Liveness::compute(F, Scratch);
    InterferenceGraph IG = InterferenceGraph::build(F, LV, Scratch);
    Adj.assign(NumVRegs, {});
    for (RegId N = 0; N != NumVRegs; ++N) {
      InterferenceGraph::NeighborRange R = IG.neighbors(N);
      Adj[N].assign(R.begin(), R.end()); // already sorted ascending
    }
    AG = AdjacencyGraph::build(F, C, WeightMode::Frequency);

    // Distinct move pairs with accumulated (static occurrence) weight.
    for (const MovePair &MP : IG.moves()) {
      if (MP.Dst == MP.Src)
        continue;
      RegId A = std::min(MP.Dst, MP.Src), B = std::max(MP.Dst, MP.Src);
      MoveWeight[{A, B}] += 1.0;
    }
  }

  uint32_t numVRegs() const { return NumVRegs; }

  RegId find(RegId N) const {
    while (Parent[N] != N)
      N = Parent[N];
    return N;
  }

  bool interferes(RegId U, RegId V) const {
    U = find(U);
    V = find(V);
    return std::binary_search(Adj[U].begin(), Adj[U].end(), V);
  }

  /// Merges root \p V into root \p U (both must be roots, distinct,
  /// non-interfering). Adjacency lists are kept sorted and unique.
  void merge(RegId U, RegId V) {
    assert(U == find(U) && V == find(V) && U != V && "merge of non-roots");
    assert(!interferes(U, V) && "merging interfering nodes");
    Parent[V] = U;
    auto SortedErase = [](std::vector<RegId> &List, RegId Value) {
      auto It = std::lower_bound(List.begin(), List.end(), Value);
      if (It != List.end() && *It == Value)
        List.erase(It);
    };
    auto SortedInsert = [](std::vector<RegId> &List, RegId Value) {
      auto It = std::lower_bound(List.begin(), List.end(), Value);
      if (It == List.end() || *It != Value)
        List.insert(It, Value);
    };
    for (RegId N : Adj[V]) {
      SortedErase(Adj[N], V);
      if (N != U) {
        SortedInsert(Adj[N], U);
        SortedInsert(Adj[U], N);
      }
    }
    Adj[V].clear();
    Members[U].insert(Members[U].end(), Members[V].begin(),
                      Members[V].end());
    Members[V].clear();
    AG.mergeInto(V, U);
  }

  /// Remaining (cross-root) move pairs as ((rootA, rootB), weight).
  std::vector<std::pair<std::pair<RegId, RegId>, double>>
  activeMoves() const {
    std::map<std::pair<RegId, RegId>, double> Folded;
    for (const auto &[Pair, W] : MoveWeight) {
      RegId A = find(Pair.first), B = find(Pair.second);
      if (A == B)
        continue;
      if (A > B)
        std::swap(A, B);
      Folded[{A, B}] += W;
    }
    return {Folded.begin(), Folded.end()};
  }

  /// Total weight of moves whose endpoints are still distinct roots.
  double remainingMoveWeight() const {
    double Total = 0;
    for (const auto &[Pair, W] : activeMoves())
      Total += W;
    return Total;
  }

  const std::vector<RegId> &membersOf(RegId Root) const {
    return Members[Root];
  }

  const std::vector<RegId> &neighborsOf(RegId Root) const {
    return Adj[Root];
  }

  const AdjacencyGraph &adjacency() const { return AG; }

  /// All current roots, ascending.
  std::vector<RegId> roots() const {
    std::vector<RegId> Result;
    for (RegId R = 0; R != NumVRegs; ++R)
      if (find(R) == R)
        Result.push_back(R);
    return Result;
  }

private:
  uint32_t NumVRegs = 0;
  std::vector<RegId> Parent;
  std::vector<std::vector<RegId>> Members;
  /// Root-level interference; each list sorted and unique.
  std::vector<std::vector<RegId>> Adj;
  AdjacencyGraph AG;                          // Root-level adjacency.
  std::map<std::pair<RegId, RegId>, double> MoveWeight;
};

/// Result of one rebuild&simplify + select probe.
struct ColorOutcome {
  bool Colorable = false;
  double DiffCost = 0;
  /// Per-vreg colors (only meaningful when Colorable).
  std::vector<RegId> ColorOfVReg;
  /// A node that failed to receive a color (when !Colorable).
  RegId FailedRoot = NoReg;
};

/// Chaitin-Briggs simplify + (differential) select over the merged graph.
ColorOutcome colorMerged(const MergedGraph &G, const EncodingConfig &C,
                         bool UseDiffSelect) {
  unsigned K = C.RegN;
  std::vector<RegId> Roots = G.roots();

  // Degrees among roots.
  std::vector<unsigned> Degree(G.numVRegs(), 0);
  for (RegId R : Roots)
    Degree[R] = static_cast<unsigned>(G.neighborsOf(R).size());

  // Simplify: low-degree first (worklist), optimistic max-degree removal
  // when stuck (Briggs).
  std::vector<uint8_t> Removed(G.numVRegs(), 0);
  std::vector<RegId> Stack;
  std::vector<RegId> LowDegree;
  for (RegId R : Roots)
    if (Degree[R] < K)
      LowDegree.push_back(R);
  size_t RemainingCount = Roots.size();
  while (RemainingCount != 0) {
    RegId Pick = NoReg;
    while (!LowDegree.empty()) {
      RegId Candidate = LowDegree.back();
      LowDegree.pop_back();
      if (!Removed[Candidate]) {
        Pick = Candidate;
        break;
      }
    }
    if (Pick == NoReg) {
      // Optimistic (potential spill): remove the max-degree node.
      unsigned MaxDeg = 0;
      for (RegId R : Roots)
        if (!Removed[R] && (Pick == NoReg || Degree[R] > MaxDeg)) {
          MaxDeg = Degree[R];
          Pick = R;
        }
    }
    Removed[Pick] = 1;
    Stack.push_back(Pick);
    --RemainingCount;
    for (RegId N : G.neighborsOf(Pick))
      if (!Removed[N] && --Degree[N] == K - 1)
        LowDegree.push_back(N);
  }

  // Select in reverse removal order.
  ColorOutcome Out;
  Out.ColorOfVReg.assign(G.numVRegs(), NoReg);
  std::vector<RegId> RootColor(G.numVRegs(), NoReg);
  auto ColorOfVReg = [&](RegId V) {
    RegId Rep = G.find(V);
    return RootColor[Rep] == NoReg ? -1 : static_cast<int>(RootColor[Rep]);
  };

  for (size_t I = Stack.size(); I > 0; --I) {
    RegId N = Stack[I - 1];
    std::vector<uint8_t> Used(K, 0);
    for (RegId Nbr : G.neighborsOf(N))
      if (RootColor[Nbr] != NoReg)
        Used[RootColor[Nbr]] = 1;
    std::vector<unsigned> OkColors;
    for (unsigned Color = 0; Color != K; ++Color)
      if (!Used[Color])
        OkColors.push_back(Color);
    if (OkColors.empty()) {
      Out.Colorable = false;
      Out.FailedRoot = N;
      return Out;
    }
    unsigned Chosen = OkColors.front();
    if (UseDiffSelect && OkColors.size() > 1) {
      double BestCost = selectCost(G.adjacency(), C, G.membersOf(N), Chosen,
                                   ColorOfVReg);
      for (size_t CI = 1; CI < OkColors.size() && BestCost > 0; ++CI) {
        double Cost = selectCost(G.adjacency(), C, G.membersOf(N),
                                 OkColors[CI], ColorOfVReg);
        if (Cost < BestCost) {
          BestCost = Cost;
          Chosen = OkColors[CI];
        }
      }
    }
    RootColor[N] = Chosen;
  }

  Out.Colorable = true;
  for (RegId V = 0; V != G.numVRegs(); ++V)
    Out.ColorOfVReg[V] = RootColor[G.find(V)];
  // Differential cost of the complete assignment, at vreg granularity.
  Out.DiffCost = G.adjacency().cost(
      [&] {
        std::vector<RegId> RootAssign(G.numVRegs(), NoReg);
        for (RegId R : G.roots())
          RootAssign[R] = RootColor[R];
        return RootAssign;
      }(),
      C);
  return Out;
}

} // namespace

CoalesceResult dra::coalesceAndColor(Function &F, const EncodingConfig &C,
                                     const CoalesceOptions &O,
                                     std::vector<StageSpan> *SubSpans,
                                     Arena *Scratch) {
  CoalesceResult Result;
  unsigned K = C.RegN;
  assert(C.valid() && "invalid encoding configuration");

  const unsigned MaxSpillRetries = 24;
  unsigned SpillRetries = 0;

  for (;;) {
    ScopedSpan RoundSpan(SubSpans, "coalesce.round");
    F.recomputeCFG();
    MergedGraph G(F, C, Scratch);

    // Greedy best-first coalescing with undo-by-probing (Figure 9): each
    // step probes candidates on a copy of the merged graph and commits the
    // best cost reduction.
    double CurCost;
    {
      ++Result.OracleCalls;
      ColorOutcome Cur = colorMerged(G, C, O.DiffAware);
      CurCost = (Cur.Colorable && O.DiffAware ? Cur.DiffCost : 0.0) +
                G.remainingMoveWeight();
    }

    for (unsigned Step = 0; Step != O.MaxSteps; ++Step) {
      auto Candidates = G.activeMoves();
      // Drop interfering pairs; order by descending weight.
      Candidates.erase(
          std::remove_if(Candidates.begin(), Candidates.end(),
                         [&](const auto &Cand) {
                           return G.interferes(Cand.first.first,
                                               Cand.first.second);
                         }),
          Candidates.end());
      std::sort(Candidates.begin(), Candidates.end(),
                [](const auto &A, const auto &B) {
                  if (A.second != B.second)
                    return A.second > B.second;
                  return A.first < B.first;
                });
      if (Candidates.size() > O.MaxCandidatesPerStep)
        Candidates.resize(O.MaxCandidatesPerStep);
      if (Candidates.empty())
        break;

      double BestNewCost = CurCost;
      std::pair<RegId, RegId> BestPair{NoReg, NoReg};
      for (const auto &[Pair, Weight] : Candidates) {
        MergedGraph Probe = G; // Undo by discarding the copy.
        Probe.merge(Pair.first, Pair.second);
        ++Result.ProbesAttempted;
        ++Result.OracleCalls;
        ColorOutcome Probed = colorMerged(Probe, C, O.DiffAware);
        if (!Probed.Colorable) {
          ++Result.ProbesUncolorable;
          continue;
        }
        double NewCost = (O.DiffAware ? Probed.DiffCost : 0.0) +
                         Probe.remainingMoveWeight();
        if (NewCost < BestNewCost - 1e-9) {
          BestNewCost = NewCost;
          BestPair = Pair;
        }
      }
      if (BestPair.first == NoReg)
        break; // No cost reduction or everything uncolorable.
      G.merge(BestPair.first, BestPair.second);
      CurCost = BestNewCost;
      ++Result.Steps;
      ++Result.MovesCoalesced;
    }

    // Final coloring.
    ++Result.OracleCalls;
    ColorOutcome Final = colorMerged(G, C, O.DiffAware);
    if (!Final.Colorable) {
      if (++SpillRetries > MaxSpillRetries) {
        Result.Success = false;
        return Result;
      }
      ++Result.SpillRestarts;
      // Spill every member of the failing root and restart.
      std::vector<RegId> ToSpill = G.membersOf(Final.FailedRoot);
      for (RegId V : ToSpill) {
        insertSpillCode(F, V);
        ++Result.ExtraSpilledRanges;
      }
      continue;
    }

    // Live-range-granularity refinement of the final assignment (see
    // core/Recolor.h); clusters keep coalesced moves intact.
    if (O.DiffAware) {
      RecolorStats RS = recolorColoring(F, C, Final.ColorOfVReg);
      Result.FinalAdjCost = RS.CostAfter;
    } else {
      Result.FinalAdjCost = Final.DiffCost;
    }

    // Rewrite the function onto physical registers; drop identity moves.
    for (BasicBlock &BB : F.Blocks) {
      std::vector<Instruction> Kept;
      Kept.reserve(BB.Insts.size());
      for (Instruction I : BB.Insts) {
        for (unsigned Field = 0; Field != I.numRegFields(); ++Field) {
          RegId V = I.regField(Field);
          assert(Final.ColorOfVReg[V] != NoReg && "uncolored vreg");
          I.setRegField(Field, Final.ColorOfVReg[V]);
        }
        if (I.Op == Opcode::Mov && I.Dst == I.Src1)
          continue;
        Kept.push_back(I);
        Result.MovesRemaining += I.Op == Opcode::Mov;
      }
      BB.Insts = std::move(Kept);
    }
    F.NumRegs = K;
    F.recomputeCFG();
    return Result;
  }
}
