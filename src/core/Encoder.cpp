//===- core/Encoder.cpp - Differential encoding and decoding --------------===//

#include "core/Encoder.h"

#include "core/AccessSequence.h"

#include <optional>

using namespace dra;

namespace {

/// Three-valued decode-state lattice: Unknown (no information yet, only
/// from unprocessed/unreachable paths), a concrete register value, or
/// Conflict (paths disagree).
struct DecodeState {
  enum Kind : uint8_t { Unknown, Value, Conflict } K = Unknown;
  RegId Reg = NoReg;

  static DecodeState unknown() { return {}; }
  static DecodeState value(RegId R) { return {Value, R}; }
  static DecodeState conflict() { return {Conflict, NoReg}; }

  bool operator==(const DecodeState &O) const {
    return K == O.K && (K != Value || Reg == O.Reg);
  }

  /// Lattice meet.
  DecodeState meet(const DecodeState &O) const {
    if (K == Unknown)
      return O;
    if (O.K == Unknown)
      return *this;
    if (K == Conflict || O.K == Conflict)
      return conflict();
    return Reg == O.Reg ? *this : conflict();
  }
};

/// Blocks reachable from the entry block by CFG successor edges.
std::vector<uint8_t> reachableBlocks(const Function &F) {
  std::vector<uint8_t> Reachable(F.Blocks.size(), 0);
  if (F.Blocks.empty())
    return Reachable;
  std::vector<uint32_t> Work{0};
  Reachable[0] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : F.Blocks[B].Succs)
      if (!Reachable[S]) {
        Reachable[S] = 1;
        Work.push_back(S);
      }
  }
  return Reachable;
}

/// First non-special register accessed in a block, if any.
std::optional<RegId> firstAccessOf(const Function &F, uint32_t Block,
                                   const EncodingConfig &C) {
  std::vector<Access> Seq = blockAccessSequence(F, Block, C);
  if (Seq.empty())
    return std::nullopt;
  return Seq.front().Reg;
}

/// Fixpoint of the decode-state dataflow over \p F (which may or may not
/// already contain SetLastReg instructions — they set the state like the
/// hardware does). Returns per-block entry states.
std::vector<DecodeState> entryStates(const Function &F,
                                     const EncodingConfig &C) {
  size_t NumBlocks = F.Blocks.size();

  // Per-block transfer: exit = f(entry). A SetLastReg or a register access
  // overwrites the state; otherwise the entry state flows through.
  // Precompute the last "state writer" of each block.
  SpecialRegLookup Special(C);
  std::vector<std::optional<RegId>> LastWriter(NumBlocks);
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    std::optional<RegId> Last;
    const BasicBlock &BB = F.Blocks[B];
    for (const Instruction &I : BB.Insts) {
      if (I.Op == Opcode::SetLastReg) {
        Last = static_cast<RegId>(I.Imm);
        continue;
      }
      for (unsigned FieldPos : fieldOrder(I, C.Order)) {
        RegId R = I.regField(FieldPos);
        if (!Special.isSpecial(R))
          Last = R;
      }
    }
    LastWriter[B] = Last;
  }

  std::vector<DecodeState> Entry(NumBlocks, DecodeState::unknown());
  auto ExitOf = [&](uint32_t B) {
    return LastWriter[B] ? DecodeState::value(*LastWriter[B]) : Entry[B];
  };

  // last_reg is dynamic machine state: execution can never arrive at a
  // join through an unreachable predecessor, so its static exit state
  // must not constrain the meet. This matters for consistency, not just
  // precision — encodeFunction inserts a head set_last_reg into
  // unreachable blocks (their entry is Unknown), which gives them a
  // concrete exit in the *annotated* function. If that exit participated
  // in the dataflow, a reachable join that was clean before annotation
  // could become Conflict after it, and verifyDecodable would reject a
  // block the encoder (correctly) left unrepaired.
  std::vector<uint8_t> Reachable = reachableBlocks(F);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      // The hardware initializes last_reg to 0 at function entry (the
      // paper's n0 = 0 convention), modeled as a virtual predecessor of
      // block 0.
      DecodeState New =
          B == 0 ? DecodeState::value(0) : DecodeState::unknown();
      for (uint32_t Pred : F.Blocks[B].Preds)
        if (Reachable[Pred])
          New = New.meet(ExitOf(Pred));
      if (!(New == Entry[B])) {
        Entry[B] = New;
        Changed = true;
      }
    }
  }
  return Entry;
}

} // namespace

EncodedFunction dra::encodeFunction(const Function &F,
                                    const EncodingConfig &C) {
  assert(C.valid() && "invalid encoding configuration");
  assert(F.NumRegs <= C.RegN && "function uses more registers than RegN");

  EncodedFunction Out;
  Out.Annotated = F;
  // Annotated keeps the machine register universe.
  Out.Annotated.NumRegs = std::max(F.NumRegs, C.RegN);

  std::vector<DecodeState> Entry = entryStates(F, C);
  SpecialRegLookup Special(C);

  size_t NumBlocks = F.Blocks.size();
  Out.Codes.resize(NumBlocks);

  for (uint32_t B = 0; B != NumBlocks; ++B) {
    const BasicBlock &OldBB = F.Blocks[B];
    std::vector<Instruction> NewInsts;
    std::vector<std::vector<uint8_t>> NewCodes;

    // Establish the block-entry decode state.
    RegId Last;
    if (Entry[B].K == DecodeState::Value) {
      Last = Entry[B].Reg;
    } else {
      // Forced: predecessors disagree (Conflict) or the block is
      // unreachable (Unknown). Insert a head set_last_reg; aim it at the
      // block's first access so that field encodes difference 0.
      std::optional<RegId> First = firstAccessOf(F, B, C);
      Last = First.value_or(0);
      Instruction Slr;
      Slr.Op = Opcode::SetLastReg;
      Slr.Imm = Last;
      Slr.Aux = 0;
      NewInsts.push_back(Slr);
      NewCodes.emplace_back();
      ++Out.Stats.SetLastJoin;
    }

    for (const Instruction &I : OldBB.Insts) {
      assert(I.Op != Opcode::SetLastReg &&
             "input to encodeFunction already annotated");
      // Simulate field decoding, gathering out-of-range repairs.
      std::vector<Instruction> Pending;
      std::vector<uint8_t> FieldCodes;
      std::vector<unsigned> Fields = fieldOrder(I, C.Order);
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        RegId R = I.regField(Fields[Pos]);
        if (Special.isSpecial(R)) {
          FieldCodes.push_back(static_cast<uint8_t>(Special.specialCode(R)));
          continue;
        }
        assert(R < C.RegN && "register out of encodable range");
        unsigned Diff = C.diffOf(Last, R);
        if (Diff >= C.DiffN) {
          Instruction Slr;
          Slr.Op = Opcode::SetLastReg;
          Slr.Imm = R;
          Slr.Aux = Pos; // Takes effect after Pos fields are decoded.
          Pending.push_back(Slr);
          ++Out.Stats.SetLastRange;
          Diff = 0;
        }
        FieldCodes.push_back(static_cast<uint8_t>(Diff));
        Last = R;
      }
      for (const Instruction &Slr : Pending) {
        NewInsts.push_back(Slr);
        NewCodes.emplace_back();
      }
      NewInsts.push_back(I);
      NewCodes.push_back(std::move(FieldCodes));
      Out.Stats.NumFields += Fields.size();
    }

    Out.Annotated.Blocks[B].Insts = std::move(NewInsts);
    Out.Codes[B] = std::move(NewCodes);
  }

  Out.Annotated.recomputeCFG();
  Out.Stats.NumInsts = Out.Annotated.numInsts();
  Out.Stats.FieldBits = Out.Stats.NumFields * C.DiffW;
  return Out;
}

Function dra::decodeFunction(const EncodedFunction &E,
                             const EncodingConfig &C) {
  assert(C.valid() && "invalid encoding configuration");
  const Function &A = E.Annotated;
  Function Out = A;

  std::vector<DecodeState> Entry = entryStates(A, C);

  for (uint32_t B = 0, NumBlocks = static_cast<uint32_t>(A.Blocks.size());
       B != NumBlocks; ++B) {
    // Every reachable block with register fields must have a concrete
    // entry state; verifyDecodable() guards this. For robustness we fall
    // back to 0 (only possible for unreachable blocks without a head slr).
    RegId Last = Entry[B].K == DecodeState::Value ? Entry[B].Reg : 0;
    const BasicBlock &BB = A.Blocks[B];

    // Pending delayed set_last_reg assignments: (delay, value) applied
    // before the field with that position in the *next* non-slr
    // instruction.
    std::vector<std::pair<uint32_t, RegId>> PendingSlr;

    for (uint32_t IIdx = 0; IIdx != BB.Insts.size(); ++IIdx) {
      const Instruction &I = BB.Insts[IIdx];
      if (I.Op == Opcode::SetLastReg) {
        if (I.Aux == 0)
          Last = static_cast<RegId>(I.Imm);
        else
          PendingSlr.push_back({I.Aux, static_cast<RegId>(I.Imm)});
        continue;
      }
      const std::vector<uint8_t> &FieldCodes = E.Codes[B][IIdx];
      std::vector<unsigned> Fields = fieldOrder(I, C.Order);
      assert(FieldCodes.size() == Fields.size() && "code/field mismatch");
      Instruction &OutInst = Out.Blocks[B].Insts[IIdx];
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        for (const auto &[Delay, Value] : PendingSlr)
          if (Delay == Pos)
            Last = Value;
        unsigned Code = FieldCodes[Pos];
        RegId Decoded;
        if (Code >= C.DiffN) {
          // Reserved direct code for a special register.
          assert(Code - C.DiffN < C.SpecialRegs.size() &&
                 "invalid special code");
          Decoded = C.SpecialRegs[Code - C.DiffN];
        } else {
          Decoded = (Last + Code) % C.RegN;
          Last = Decoded;
        }
        OutInst.setRegField(Fields[Pos], Decoded);
      }
      PendingSlr.clear();
    }
  }
  return Out;
}

bool dra::verifyDecodable(const Function &Annotated, const EncodingConfig &C,
                          std::string *Err) {
  auto Fail = [&](uint32_t Block, const std::string &Msg) {
    if (Err)
      *Err = "bb" + std::to_string(Block) + ": " + Msg;
    return false;
  };
  // A function with no blocks has no register fields to decode; it is
  // vacuously decodable (the reachability seed below would index Blocks[0]
  // otherwise).
  if (Annotated.Blocks.empty())
    return true;
  std::vector<DecodeState> Entry = entryStates(Annotated, C);
  SpecialRegLookup Special(C);

  // Reachability, so unreachable blocks are exempt.
  std::vector<uint8_t> Reachable = reachableBlocks(Annotated);

  for (uint32_t B = 0; B != Annotated.Blocks.size(); ++B) {
    if (!Reachable[B])
      continue;
    DecodeState State = Entry[B];
    // Delayed set_last_reg forms pending application, exactly as in the
    // hardware decoder: (delay, value) applies right before the field with
    // that position in the next real instruction.
    std::vector<std::pair<uint32_t, RegId>> PendingSlr;
    for (const Instruction &I : Annotated.Blocks[B].Insts) {
      if (I.Op == Opcode::SetLastReg) {
        if (I.Aux == 0)
          State = DecodeState::value(static_cast<RegId>(I.Imm));
        else
          PendingSlr.push_back({I.Aux, static_cast<RegId>(I.Imm)});
        continue;
      }
      std::vector<unsigned> Fields = fieldOrder(I, C.Order);
      // The decoder clears pending assignments after every real
      // instruction, so a delay_num beyond this instruction's field count
      // would silently never apply — the hardware model would keep it
      // pending instead. Reject such annotations rather than letting the
      // decoder diverge from the hardware.
      for (const auto &[Delay, Value] : PendingSlr)
        if (Delay >= Fields.size())
          return Fail(B, "delayed set_last_reg (delay " +
                             std::to_string(Delay) +
                             ") never applies: next instruction has only " +
                             std::to_string(Fields.size()) +
                             " register field(s)");
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        for (const auto &[Delay, Value] : PendingSlr)
          if (Delay == Pos)
            State = DecodeState::value(Value);
        RegId R = I.regField(Fields[Pos]);
        if (Special.isSpecial(R))
          continue;
        if (State.K != DecodeState::Value)
          return Fail(B, "register field decoded with ambiguous last_reg");
        if (!C.encodable(State.Reg, R))
          return Fail(B, "difference out of range without set_last_reg");
        State = DecodeState::value(R);
      }
      PendingSlr.clear();
    }
    if (!PendingSlr.empty())
      return Fail(B, "delayed set_last_reg dangles at block end (no "
                     "following instruction)");
  }
  return true;
}

std::vector<std::optional<RegId>>
dra::decodeEntryStates(const Function &F, const EncodingConfig &C) {
  std::vector<DecodeState> States = entryStates(F, C);
  std::vector<std::optional<RegId>> Out(States.size());
  for (size_t B = 0; B != States.size(); ++B)
    if (States[B].K == DecodeState::Value)
      Out[B] = States[B].Reg;
  return Out;
}

Function dra::stripSetLastReg(const Function &F) {
  Function Out = F;
  for (BasicBlock &BB : Out.Blocks) {
    std::vector<Instruction> Kept;
    Kept.reserve(BB.Insts.size());
    for (const Instruction &I : BB.Insts)
      if (I.Op != Opcode::SetLastReg)
        Kept.push_back(I);
    BB.Insts = std::move(Kept);
  }
  Out.recomputeCFG();
  return Out;
}

size_t dra::codeSizeBytes(const Function &F, unsigned BytesPerInst) {
  return F.numInsts() * BytesPerInst;
}
