//===- core/Features.cpp - Per-function feature extraction ----------------===//

#include "core/Features.h"

#include "adt/Arena.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "regalloc/InterferenceGraph.h"

using namespace dra;

std::vector<double> FunctionFeatures::asVector() const {
  return {NumBlocks, NumInsts,   MaxLoopDepth, AvgLoopDepth,
          MaxPressure, AvgLiveOut, AdjDensity,   MoveDensity};
}

const std::vector<std::string> &dra::featureNames() {
  static const std::vector<std::string> Names = {
      "num_blocks",   "num_insts",    "max_loop_depth", "avg_loop_depth",
      "max_pressure", "avg_live_out", "adj_density",    "move_density"};
  return Names;
}

FunctionFeatures dra::computeFeatures(const Function &F) {
  FunctionFeatures FF;
  Function Copy = F;
  Copy.recomputeCFG();

  const size_t NumBlocks = Copy.Blocks.size();
  FF.NumBlocks = static_cast<double>(NumBlocks);
  FF.NumInsts = static_cast<double>(Copy.numInsts());
  if (NumBlocks == 0)
    return FF;

  LoopInfo LI = LoopInfo::compute(Copy);
  double DepthSum = 0;
  unsigned MaxDepth = 0;
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    unsigned D = LI.depth(B);
    DepthSum += D;
    MaxDepth = std::max(MaxDepth, D);
  }
  FF.MaxLoopDepth = MaxDepth;
  FF.AvgLoopDepth = DepthSum / static_cast<double>(NumBlocks);

  Arena Scratch;
  Liveness LV = Liveness::compute(Copy, &Scratch);
  FF.MaxPressure = LV.maxPressure(Copy);
  double LiveOutSum = 0;
  for (uint32_t B = 0; B != NumBlocks; ++B)
    LiveOutSum += static_cast<double>(LV.liveOut(B).count());
  FF.AvgLiveOut = LiveOutSum / static_cast<double>(NumBlocks);

  InterferenceGraph IG = InterferenceGraph::build(Copy, LV, &Scratch);
  const uint32_t N = IG.numNodes();
  if (N >= 2) {
    double DegreeSum = 0;
    for (uint32_t R = 0; R != N; ++R)
      DegreeSum += IG.degree(static_cast<RegId>(R));
    // Each edge contributes to two degrees; possible pairs = N*(N-1)/2.
    FF.AdjDensity = DegreeSum / (static_cast<double>(N) *
                                 static_cast<double>(N - 1));
  }
  if (FF.NumInsts > 0)
    FF.MoveDensity = static_cast<double>(IG.moves().size()) / FF.NumInsts;
  return FF;
}
