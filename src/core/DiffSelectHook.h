//===- core/DiffSelectHook.h - Differential select (approach 2) -*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Approach 2 of the paper (Section 6, Figure 8): the select stage of the
/// graph-coloring allocator consults the live-range adjacency graph and,
/// among the colors legal on the interference graph, picks the one with
/// the minimal differential-encoding cost against the neighbors already
/// colored. Implemented as a SelectHook for the iterated-register-
/// coalescing allocator (and reused by the differential-coalesce driver).
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_DIFFSELECTHOOK_H
#define DRA_CORE_DIFFSELECTHOOK_H

#include "core/AdjacencyGraph.h"
#include "core/EncodingConfig.h"
#include "regalloc/SelectHook.h"

namespace dra {

/// Cost of giving register number \p Color to the node whose coalesced
/// members are \p Members, judged against the adjacency graph \p G:
/// the weight of adjacency edges between a member and an already-colored
/// non-member that would violate condition (3). \p ColorOfVReg resolves a
/// vreg to its color or -1.
double selectCost(const AdjacencyGraph &G, const EncodingConfig &C,
                  const std::vector<RegId> &Members, unsigned Color,
                  const std::function<int(RegId)> &ColorOfVReg);

/// The differential select strategy.
class DiffSelectHook : public SelectHook {
public:
  explicit DiffSelectHook(EncodingConfig Config) : Config(Config) {}

  /// Rebuilds the live-range adjacency graph for \p F.
  void beginFunction(const Function &F) override;

  /// Picks the legal color with minimal differential cost (ties broken
  /// toward the lowest color, matching the default allocator).
  unsigned choose(const SelectContext &Ctx) override;

  const AdjacencyGraph &adjacency() const { return Adjacency; }

private:
  EncodingConfig Config;
  AdjacencyGraph Adjacency;
};

} // namespace dra

#endif // DRA_CORE_DIFFSELECTHOOK_H
