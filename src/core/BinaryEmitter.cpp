//===- core/BinaryEmitter.cpp - Bit-exact instruction emission ------------===//

#include "core/BinaryEmitter.h"

#include "adt/BitStream.h"
#include "core/AccessSequence.h"

#include <algorithm>

using namespace dra;

namespace {

constexpr unsigned OpcodeBits = 5;
constexpr unsigned BlockRefBits = 16;
constexpr unsigned SlrValueBits = 8;
constexpr unsigned SlrDelayBits = 4;

bool hasImmediate(Opcode Op) {
  switch (Op) {
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
  case Opcode::MovI:
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::SpillLd:
  case Opcode::SpillSt:
    return true;
  default:
    return false;
  }
}

unsigned numRegFieldsOf(Opcode Op) {
  Instruction Probe;
  Probe.Op = Op;
  Probe.Dst = 0;
  Probe.Src1 = 0;
  Probe.Src2 = 0;
  return Probe.numRegFields();
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

void writeVarint(BitWriter &W, int64_t Value) {
  uint64_t Z = zigzag(Value);
  do {
    uint64_t Group = Z & 0x7f;
    Z >>= 7;
    W.write(Group | (Z != 0 ? 0x80 : 0), 8);
  } while (Z != 0);
}

int64_t readVarint(BitReader &R) {
  uint64_t Z = 0;
  unsigned Shift = 0;
  for (;;) {
    uint64_t Byte = R.read(8);
    Z |= (Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      break;
    Shift += 7;
  }
  return unzigzag(Z);
}

unsigned directFieldWidth(unsigned NumRegs) {
  unsigned W = 1;
  while ((1u << W) < NumRegs)
    ++W;
  return W;
}

/// Emits everything but the register-field payload, which the caller
/// supplies through \p WriteFields(W, Inst).
template <typename FieldsFn>
BinaryModule emitCommon(const Function &F, unsigned FieldWidth,
                        FieldsFn WriteFields) {
  BinaryModule M;
  M.FieldWidth = FieldWidth;
  BitWriter W;
  W.write(F.Blocks.size(), 16);
  W.write(F.NumRegs, 16);
  W.write(F.MemWords, 16);
  W.write(F.NumSpillSlots, 16);
  for (const BasicBlock &BB : F.Blocks) {
    W.write(BB.Insts.size(), 16);
    for (const Instruction &I : BB.Insts) {
      W.write(static_cast<uint64_t>(I.Op), OpcodeBits);
      if (I.Op == Opcode::SetLastReg) {
        W.write(static_cast<uint64_t>(I.Imm), SlrValueBits);
        W.write(I.Aux, SlrDelayBits);
        continue;
      }
      size_t Before = W.bitCount();
      WriteFields(W, I);
      M.RegFieldBits += W.bitCount() - Before;
      if (hasImmediate(I.Op))
        writeVarint(W, I.Imm);
      if (I.Op == Opcode::Br) {
        W.write(I.Target0, BlockRefBits);
        W.write(I.Target1, BlockRefBits);
      } else if (I.Op == Opcode::Jmp) {
        W.write(I.Target0, BlockRefBits);
      }
    }
  }
  M.BitCount = W.bitCount();
  BitWriter Padded = std::move(W);
  Padded.alignToByte();
  M.Bytes = Padded.bytes();
  return M;
}

/// Parses the common layout; \p ReadFields(R, Inst) consumes the register
/// fields and fills the instruction (or records codes).
template <typename FieldsFn>
std::optional<Function> decodeCommon(const BinaryModule &M,
                                     FieldsFn ReadFields,
                                     std::string *Err) {
  auto Fail = [&](const std::string &Msg) -> std::optional<Function> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };
  BitReader R(M.Bytes);
  if (R.exhausted(64))
    return Fail("truncated header");
  Function F;
  size_t NumBlocks = R.read(16);
  F.NumRegs = static_cast<uint32_t>(R.read(16));
  F.MemWords = static_cast<uint32_t>(R.read(16));
  F.NumSpillSlots = static_cast<uint32_t>(R.read(16));
  for (size_t B = 0; B != NumBlocks; ++B) {
    F.makeBlock();
    if (R.exhausted(16))
      return Fail("truncated block header");
    size_t NumInsts = R.read(16);
    for (size_t IIdx = 0; IIdx != NumInsts; ++IIdx) {
      if (R.exhausted(OpcodeBits))
        return Fail("truncated instruction");
      Instruction I;
      uint64_t Op = R.read(OpcodeBits);
      if (Op > static_cast<uint64_t>(Opcode::SetLastReg))
        return Fail("invalid opcode");
      I.Op = static_cast<Opcode>(Op);
      if (I.Op == Opcode::SetLastReg) {
        I.Imm = static_cast<int64_t>(R.read(SlrValueBits));
        I.Aux = static_cast<uint32_t>(R.read(SlrDelayBits));
      } else {
        ReadFields(R, I);
        if (hasImmediate(I.Op))
          I.Imm = readVarint(R);
        if (I.Op == Opcode::Br) {
          I.Target0 = static_cast<uint32_t>(R.read(BlockRefBits));
          I.Target1 = static_cast<uint32_t>(R.read(BlockRefBits));
        } else if (I.Op == Opcode::Jmp) {
          I.Target0 = static_cast<uint32_t>(R.read(BlockRefBits));
        }
      }
      F.Blocks[B].Insts.push_back(I);
    }
  }
  F.recomputeCFG();
  return F;
}

} // namespace

BinaryModule dra::emitDirect(const Function &F) {
  unsigned Width = directFieldWidth(std::max(1u, F.NumRegs));
  return emitCommon(F, Width, [&](BitWriter &W, const Instruction &I) {
    for (unsigned Field = 0; Field != I.numRegFields(); ++Field)
      W.write(I.regField(Field), Width);
  });
}

std::optional<Function> dra::decodeDirect(const BinaryModule &M,
                                          std::string *Err) {
  return decodeCommon(
      M,
      [&](BitReader &R, Instruction &I) {
        for (unsigned Field = 0; Field != numRegFieldsOf(I.Op); ++Field)
          I.setRegField(Field,
                        static_cast<RegId>(R.read(M.FieldWidth)));
      },
      Err);
}

BinaryModule dra::emitDifferential(const EncodedFunction &E,
                                   const EncodingConfig &C) {
  // Codes are stored in access order (the hardware decode order); the
  // emission loop walks (block, instruction) indices explicitly to stay in
  // lockstep with E.Codes.
  const Function &F = E.Annotated;
  BinaryModule M;
  BitWriter W;
  W.write(F.Blocks.size(), 16);
  W.write(F.NumRegs, 16);
  W.write(F.MemWords, 16);
  W.write(F.NumSpillSlots, 16);
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    W.write(BB.Insts.size(), 16);
    for (uint32_t Idx = 0; Idx != BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      W.write(static_cast<uint64_t>(I.Op), OpcodeBits);
      if (I.Op == Opcode::SetLastReg) {
        W.write(static_cast<uint64_t>(I.Imm), SlrValueBits);
        W.write(I.Aux, SlrDelayBits);
        continue;
      }
      for (uint8_t Code : E.Codes[B][Idx]) {
        W.write(Code, C.DiffW);
        M.RegFieldBits += C.DiffW;
      }
      if (hasImmediate(I.Op))
        writeVarint(W, I.Imm);
      if (I.Op == Opcode::Br) {
        W.write(I.Target0, BlockRefBits);
        W.write(I.Target1, BlockRefBits);
      } else if (I.Op == Opcode::Jmp) {
        W.write(I.Target0, BlockRefBits);
      }
    }
  }
  M.BitCount = W.bitCount();
  W.alignToByte();
  M.Bytes = W.bytes();
  M.FieldWidth = C.DiffW;
  return M;
}

std::optional<EncodedFunction>
dra::decodeDifferential(const BinaryModule &M, const EncodingConfig &C,
                        std::string *Err) {
  // First parse the structure, collecting raw codes in parse order.
  std::vector<std::vector<std::vector<uint8_t>>> Codes;
  std::vector<std::vector<uint8_t>> PendingCodes;
  std::optional<Function> Skeleton = decodeCommon(
      M,
      [&](BitReader &R, Instruction &I) {
        std::vector<uint8_t> FieldCodes;
        for (unsigned Field = 0; Field != numRegFieldsOf(I.Op); ++Field)
          FieldCodes.push_back(static_cast<uint8_t>(R.read(C.DiffW)));
        // Temporarily stash the codes; block/instruction indices are
        // recovered below by re-walking the skeleton in the same order.
        PendingCodes.push_back(std::move(FieldCodes));
        // Placeholder registers (decoded for real afterwards).
        for (unsigned Field = 0; Field != numRegFieldsOf(I.Op); ++Field)
          I.setRegField(Field, 0);
      },
      Err);
  if (!Skeleton)
    return std::nullopt;
  Function &F = *Skeleton;

  // Distribute the pending code lists back onto (block, inst) slots in
  // parse order.
  Codes.resize(F.Blocks.size());
  size_t Next = 0;
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    for (const Instruction &I : F.Blocks[B].Insts) {
      if (I.Op == Opcode::SetLastReg) {
        Codes[B].emplace_back();
        continue;
      }
      Codes[B].push_back(PendingCodes[Next++]);
    }
  }
  PendingCodes.clear();

  // Now decode absolute register numbers the way the hardware would:
  // reverse-postorder over the CFG; a block's entry state is its head
  // set_last_reg, or the exit state of any already-decoded predecessor
  // (the encoder guarantees all predecessors agree).
  std::vector<int> ExitOf(F.Blocks.size(), -1);
  std::vector<uint8_t> Decoded(F.Blocks.size(), 0);

  // Reverse postorder.
  std::vector<uint32_t> Order;
  {
    std::vector<uint8_t> State(F.Blocks.size(), 0);
    std::vector<std::pair<uint32_t, size_t>> Stack{{0u, 0u}};
    State[0] = 1;
    std::vector<uint32_t> Post;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      const auto &Succs = F.Blocks[B].Succs;
      if (NextSucc < Succs.size()) {
        uint32_t S = Succs[NextSucc++];
        if (!State[S]) {
          State[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Post.push_back(B);
      Stack.pop_back();
    }
    Order.assign(Post.rbegin(), Post.rend());
  }

  for (uint32_t B : Order) {
    BasicBlock &BB = F.Blocks[B];
    int Last = -1;
    if (!BB.Insts.empty() && BB.Insts.front().Op == Opcode::SetLastReg &&
        BB.Insts.front().Aux == 0) {
      Last = static_cast<int>(BB.Insts.front().Imm);
    } else if (B == 0) {
      Last = 0; // The n0 = 0 convention.
    } else {
      for (uint32_t Pred : BB.Preds)
        if (Decoded[Pred] && ExitOf[Pred] >= 0) {
          Last = ExitOf[Pred];
          break;
        }
      if (Last < 0)
        Last = 0; // Unreachable or degenerate; harmless.
    }

    std::vector<std::pair<uint32_t, RegId>> PendingSlr;
    for (uint32_t Idx = 0; Idx != BB.Insts.size(); ++Idx) {
      Instruction &I = BB.Insts[Idx];
      if (I.Op == Opcode::SetLastReg) {
        if (I.Aux == 0)
          Last = static_cast<int>(I.Imm);
        else
          PendingSlr.push_back({I.Aux, static_cast<RegId>(I.Imm)});
        continue;
      }
      std::vector<unsigned> Fields = fieldOrder(I, C.Order);
      for (unsigned Pos = 0; Pos != Fields.size(); ++Pos) {
        for (const auto &[Delay, Value] : PendingSlr)
          if (Delay == Pos)
            Last = static_cast<int>(Value);
        unsigned Code = Codes[B][Idx][Pos];
        RegId Reg;
        if (Code >= C.DiffN) {
          if (Code - C.DiffN >= C.SpecialRegs.size()) {
            if (Err)
              *Err = "invalid special code";
            return std::nullopt;
          }
          Reg = C.SpecialRegs[Code - C.DiffN];
        } else {
          Reg = (static_cast<RegId>(Last) + Code) % C.RegN;
          Last = static_cast<int>(Reg);
        }
        I.setRegField(Fields[Pos], Reg);
      }
      PendingSlr.clear();
    }
    ExitOf[B] = Last;
    Decoded[B] = 1;
  }

  EncodedFunction Out;
  Out.Annotated = std::move(F);
  Out.Codes = std::move(Codes);
  return Out;
}
