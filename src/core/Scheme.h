//===- core/Scheme.h - Pipeline scheme identifiers --------------*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five pipeline schemes of the paper's evaluation, split out of
/// Pipeline.h so lightweight layers (the portfolio arm descriptions, the
/// chooser's decision table) can name a scheme without pulling in the
/// whole pipeline facade.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_SCHEME_H
#define DRA_CORE_SCHEME_H

#include <cstdint>

namespace dra {

/// Which pipeline to run.
enum class Scheme : uint8_t { Baseline, OSpill, Remap, Select, Coalesce };

/// Returns the paper's name for \p S.
const char *schemeName(Scheme S);

} // namespace dra

#endif // DRA_CORE_SCHEME_H
