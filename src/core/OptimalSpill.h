//===- core/OptimalSpill.h - ILP-based near-optimal spilling ----*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first stage of the paper's third pipeline: the optimal-spilling
/// register allocator of Appel & George (PLDI 2001), which decides spills
/// with an ILP so that "at each program point, at most RegN live ranges are
/// co-live". The paper ran CPLEX; we formulate the decision at live-range
/// granularity — one 0-1 variable per live range, one covering constraint
/// per over-pressure program point ("spill at least pressure-K of the
/// ranges live here") — and solve it exactly with the branch-and-bound
/// solver in src/ilp. Spill code insertion creates short-lived temporaries,
/// so a few refinement rounds run until no point exceeds K.
///
/// See DESIGN.md for why this granularity substitution preserves the
/// downstream behaviour the paper's evaluation depends on.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_CORE_OPTIMALSPILL_H
#define DRA_CORE_OPTIMALSPILL_H

#include "driver/Metrics.h"
#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace dra {

class Arena;

/// Outcome of the spill stage.
struct OptimalSpillResult {
  /// Live ranges sent to memory.
  size_t SpilledRanges = 0;
  /// Refinement rounds executed.
  unsigned Rounds = 0;
  /// True if every ILP solve proved optimality within its node budget.
  bool ILPOptimal = true;
  /// Covering constraints (deduplicated over-pressure points) and 0-1
  /// variables handed to the ILP solver, summed over all rounds — the
  /// problem size the branch-and-bound search actually faced.
  size_t ILPConstraints = 0;
  size_t ILPVariables = 0;
};

/// Inserts spill code into \p F until no program point has more than \p K
/// simultaneously-live registers. Minimizes the frequency-weighted spill
/// cost per round via the covering ILP.
///
/// When \p SubSpans is non-null, one Depth-1 "ospill.round" span is
/// recorded per refinement round (null = no clock reads). With \p Scratch,
/// per-round analysis scratch (liveness worklists) is carved from the
/// arena instead of the heap; the arena must outlive the call.
OptimalSpillResult optimalSpill(Function &F, unsigned K,
                                uint64_t NodeBudget = 20000,
                                std::vector<StageSpan> *SubSpans = nullptr,
                                Arena *Scratch = nullptr);

} // namespace dra

#endif // DRA_CORE_OPTIMALSPILL_H
