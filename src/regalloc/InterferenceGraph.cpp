//===- regalloc/InterferenceGraph.cpp - Interference graphs ---------------===//

#include "regalloc/InterferenceGraph.h"

#include "adt/Arena.h"
#include "analysis/Liveness.h"

using namespace dra;

void InterferenceGraph::reset(uint32_t NumNodes) {
  N = NumNodes;
  Bits.init(N);
  Deg.assign(N, 0);
  Off.clear();
  Nbrs.clear();
  Finalized = false;
  Moves.clear();
}

void InterferenceGraph::addEdge(RegId A, RegId B) {
  if (A == B)
    return;
  assert(A < N && B < N && "node out of range");
  if (Bits.test(A, B))
    return;
  Bits.setSym(A, B);
  ++Deg[A];
  ++Deg[B];
  Finalized = false;
}

void InterferenceGraph::finalize() const {
  Off.resize(N + 1);
  Off[0] = 0;
  for (RegId Node = 0; Node != N; ++Node)
    Off[Node + 1] = Off[Node] + Deg[Node];
  Nbrs.resize(Off[N]);
  for (RegId Node = 0; Node != N; ++Node) {
    RegId *Out = Nbrs.data() + Off[Node];
    Bits.forEachInRow(Node, [&](uint32_t M) { *Out++ = M; });
  }
  Finalized = true;
}

bool InterferenceGraph::isValidColoring(
    const std::vector<RegId> &ColorOf) const {
  assert(ColorOf.size() == N && "coloring size mismatch");
  bool Valid = true;
  for (RegId Node = 0; Node != N; ++Node)
    Bits.forEachInRow(Node, [&](uint32_t M) {
      if (Node < M && ColorOf[Node] == ColorOf[M])
        Valid = false;
    });
  return Valid;
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV,
                                           Arena *Scratch) {
  InterferenceGraph G;
  G.N = F.NumRegs;
  if (Scratch)
    G.Bits.init(*Scratch, G.N);
  else
    G.Bits.init(G.N);
  G.Deg.assign(G.N, 0);
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    const BasicBlock &BB = F.Blocks[B];
    LV.forEachInstBackward(F, B, [&](size_t Idx, const BitVector &LiveAfter) {
      const Instruction &I = BB.Insts[Idx];
      RegId Def = I.def();
      bool IsMove = I.Op == Opcode::Mov;
      if (IsMove)
        G.Moves.push_back({I.Dst, I.Src1, B, static_cast<uint32_t>(Idx)});
      if (Def == NoReg)
        return;
      LiveAfter.forEach([&](size_t Live) {
        RegId L = static_cast<RegId>(Live);
        if (IsMove && L == I.Src1)
          return; // Move source does not interfere with its destination.
        G.addEdge(Def, L);
      });
    });
  }
  G.finalize();
  return G;
}
