//===- regalloc/InterferenceGraph.cpp - Interference graphs ---------------===//

#include "regalloc/InterferenceGraph.h"

#include "analysis/Liveness.h"

using namespace dra;

void InterferenceGraph::reset(uint32_t NumNodes) {
  Adj.assign(NumNodes, {});
  EdgeSet.clear();
  Moves.clear();
}

void InterferenceGraph::addEdge(RegId A, RegId B) {
  if (A == B)
    return;
  assert(A < numNodes() && B < numNodes() && "node out of range");
  if (!EdgeSet.insert(edgeKey(A, B)).second)
    return;
  Adj[A].push_back(B);
  Adj[B].push_back(A);
}

bool InterferenceGraph::interferes(RegId A, RegId B) const {
  if (A == B)
    return false;
  return EdgeSet.count(edgeKey(A, B)) != 0;
}

bool InterferenceGraph::isValidColoring(
    const std::vector<RegId> &ColorOf) const {
  assert(ColorOf.size() == Adj.size() && "coloring size mismatch");
  for (RegId N = 0; N != numNodes(); ++N)
    for (RegId M : Adj[N])
      if (N < M && ColorOf[N] == ColorOf[M])
        return false;
  return true;
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV) {
  InterferenceGraph G(F.NumRegs);
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    const BasicBlock &BB = F.Blocks[B];
    LV.forEachInstBackward(F, B, [&](size_t Idx, const BitVector &LiveAfter) {
      const Instruction &I = BB.Insts[Idx];
      RegId Def = I.def();
      bool IsMove = I.Op == Opcode::Mov;
      if (IsMove)
        G.Moves.push_back({I.Dst, I.Src1, B, static_cast<uint32_t>(Idx)});
      if (Def == NoReg)
        return;
      LiveAfter.forEach([&](size_t Live) {
        RegId L = static_cast<RegId>(Live);
        if (IsMove && L == I.Src1)
          return; // Move source does not interfere with its destination.
        G.addEdge(Def, L);
      });
    });
  }
  return G;
}
