//===- regalloc/SelectHook.h - Color-selection extension point --*- C++ -*-===//
//
// Part of the differential-register-allocation reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The select stage of the graph-coloring allocator consults a SelectHook
/// when more than one color is legal for a node. The paper's *differential
/// select* (Section 6) is implemented as such a hook: it tracks the
/// adjacency graph over live ranges and picks the color minimizing the
/// differential-encoding cost. The default hook reproduces the conventional
/// "pick an arbitrary (lowest) color" behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef DRA_REGALLOC_SELECTHOOK_H
#define DRA_REGALLOC_SELECTHOOK_H

#include "ir/Instruction.h"

#include <functional>
#include <vector>

namespace dra {

/// Everything a hook may inspect when choosing a color.
struct SelectContext {
  /// Representative virtual register of the node being colored.
  RegId Node = NoReg;
  /// All virtual registers coalesced into this node (includes Node).
  const std::vector<RegId> *Members = nullptr;
  /// Colors legal for this node, ascending.
  const std::vector<unsigned> *OkColors = nullptr;
  /// Resolves a virtual register (through coalescing aliases) to its color,
  /// or returns -1 if that register's node is not yet colored.
  std::function<int(RegId)> ColorOfVReg;
};

/// Strategy interface for the select stage.
class SelectHook {
public:
  virtual ~SelectHook();

  /// Called once per function before selection starts, with the function in
  /// its final (post-spill) form.
  virtual void beginFunction(const struct Function &F) { (void)F; }

  /// Returns the chosen color; must be an element of *Ctx.OkColors.
  virtual unsigned choose(const SelectContext &Ctx) = 0;
};

/// Picks the lowest legal color (conventional allocator behaviour).
class FirstFitSelectHook : public SelectHook {
public:
  unsigned choose(const SelectContext &Ctx) override {
    return Ctx.OkColors->front();
  }
};

} // namespace dra

#endif // DRA_REGALLOC_SELECTHOOK_H
